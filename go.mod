module satin

go 1.22
