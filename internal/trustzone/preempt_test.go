package trustzone

import (
	"testing"
	"time"

	"satin/internal/hw"
	"satin/internal/simclock"
)

func TestRoutingModeString(t *testing.T) {
	if NonPreemptive.String() != "non-preemptive" || Preemptive.String() != "preemptive" {
		t.Error("routing names wrong")
	}
	if RoutingMode(9).String() == "" {
		t.Error("unknown mode must render")
	}
}

func TestDefaultRoutingIsNonPreemptive(t *testing.T) {
	_, _, m := newRig(t)
	if m.Routing() != NonPreemptive {
		t.Errorf("default routing = %v, want non-preemptive", m.Routing())
	}
}

// floodDuringPayload raises n NS interrupts while the payload runs and
// returns the payload's residency.
func floodDuringPayload(t *testing.T, mode RoutingMode, n int) time.Duration {
	t.Helper()
	e, p, m := newRig(t)
	m.SetRouting(mode)
	p.GIC().Configure(hw.IntSGIFlood, hw.GroupNonSecure)
	p.GIC().Register(hw.IntSGIFlood, func(int) {})

	var entered, exited simclock.Time
	p.Core(0).OnWorldChange(func(_ *hw.Core, _, w hw.World) {
		if w == hw.SecureWorld {
			entered = e.Now()
		} else {
			exited = e.Now()
		}
	})
	err := m.RequestSecure(0, func(ctx *Context) {
		ctx.Elapse(10*time.Millisecond, ctx.Exit)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Interrupts land spread through the payload window.
	for i := 0; i < n; i++ {
		e.After(time.Duration(i+1)*100*time.Microsecond, "flood", func() {
			p.GIC().Raise(hw.IntSGIFlood, 0)
		})
	}
	e.Run()
	if entered == 0 || exited == 0 {
		t.Fatal("payload never completed")
	}
	return exited.Sub(entered)
}

func TestNonPreemptiveIgnoresFlood(t *testing.T) {
	quiet := floodDuringPayload(t, NonPreemptive, 0)
	flooded := floodDuringPayload(t, NonPreemptive, 50)
	// SCR_EL3.IRQ=0: the flood pends; residency unchanged.
	if diff := flooded - quiet; diff < -time.Microsecond || diff > 5*time.Microsecond {
		t.Errorf("non-preemptive residency moved by %v under flood", diff)
	}
}

func TestPreemptiveStretchesPayload(t *testing.T) {
	quiet := floodDuringPayload(t, Preemptive, 0)
	flooded := floodDuringPayload(t, Preemptive, 50)
	// 50 preemptions × 20–45 µs each: 1.0–2.25 ms of stretch.
	stretch := flooded - quiet
	if stretch < 900*time.Microsecond || stretch > 2500*time.Microsecond {
		t.Errorf("preemptive stretch = %v, want ≈1–2.25ms for 50 preemptions", stretch)
	}
}

func TestPreemptionsCounted(t *testing.T) {
	e, p, m := newRig(t)
	m.SetRouting(Preemptive)
	p.GIC().Configure(hw.IntSGIFlood, hw.GroupNonSecure)
	delivered := 0
	p.GIC().Register(hw.IntSGIFlood, func(int) { delivered++ })
	err := m.RequestSecure(2, func(ctx *Context) {
		ctx.Elapse(time.Millisecond, ctx.Exit)
	})
	if err != nil {
		t.Fatal(err)
	}
	e.After(500*time.Microsecond, "int", func() { p.GIC().Raise(hw.IntSGIFlood, 2) })
	e.Run()
	if m.Preemptions(2) != 1 {
		t.Errorf("Preemptions = %d, want 1", m.Preemptions(2))
	}
	// In preemptive mode the handler genuinely runs (the normal world
	// briefly takes the core).
	if delivered != 1 {
		t.Errorf("handler ran %d times, want 1", delivered)
	}
}

func TestPreemptiveOnlyAffectsSecureCores(t *testing.T) {
	e, p, m := newRig(t)
	m.SetRouting(Preemptive)
	p.GIC().Configure(hw.IntSGIFlood, hw.GroupNonSecure)
	delivered := 0
	p.GIC().Register(hw.IntSGIFlood, func(int) { delivered++ })
	// Core 1 is in the normal world: plain delivery, no preemption charge.
	p.GIC().Raise(hw.IntSGIFlood, 1)
	e.Run()
	if delivered != 1 || m.Preemptions(1) != 0 {
		t.Errorf("delivered=%d preemptions=%d, want 1/0", delivered, m.Preemptions(1))
	}
}

func TestSetRoutingBackToNonPreemptive(t *testing.T) {
	_, p, m := newRig(t)
	m.SetRouting(Preemptive)
	m.SetRouting(NonPreemptive)
	p.GIC().Configure(hw.IntSGIFlood, hw.GroupNonSecure)
	p.GIC().Register(hw.IntSGIFlood, func(int) {})
	p.Core(0).SetWorld(hw.SecureWorld)
	p.GIC().Raise(hw.IntSGIFlood, 0)
	if !p.GIC().PendingOn(hw.IntSGIFlood, 0) {
		t.Error("interrupt not pended after reverting to non-preemptive")
	}
}
