package trustzone

import (
	"fmt"
	"time"
)

// Checkpoint support. The monitor schedules its world-entry, dispatch, work,
// and exit transients through handle-free ScheduleAfter calls, so it can
// never claim them — which is exactly the protocol's intent: an instant with
// a secure payload in flight is not claimable, and the checkpoint driver
// steps the engine until every core is back in the normal world. What
// remains to capture is pure state: the latency RNG, the held timer fires,
// the preemption bookkeeping, and the switch record.

// MonitorState is the monitor's state at a claimable instant.
type MonitorState struct {
	RNG          []byte          `json:"rng"`
	TimerPending []bool          `json:"timer_pending"`
	Stretch      []time.Duration `json:"stretch"`
	Preemptions  []int           `json:"preemptions"`
	Switches     []SwitchRecord  `json:"switches"`
}

// CheckpointState captures the monitor. It fails if any core is still in the
// secure world: the caller should have stepped to a claimable instant first.
func (m *Monitor) CheckpointState() (MonitorState, error) {
	for core, in := range m.inSecure {
		if in {
			return MonitorState{}, fmt.Errorf("trustzone: core %d is in the secure world at the checkpoint instant", core)
		}
	}
	rng, err := m.rng.MarshalState()
	if err != nil {
		return MonitorState{}, fmt.Errorf("trustzone: marshaling monitor rng: %w", err)
	}
	return MonitorState{
		RNG:          rng,
		TimerPending: append([]bool(nil), m.timerPending...),
		Stretch:      append([]time.Duration(nil), m.stretch...),
		Preemptions:  append([]int(nil), m.preemptions...),
		Switches:     append([]SwitchRecord(nil), m.switches...),
	}, nil
}

// RestoreState overwrites the monitor's state with a captured one.
func (m *Monitor) RestoreState(st MonitorState) error {
	if len(st.TimerPending) != len(m.timerPending) || len(st.Stretch) != len(m.stretch) || len(st.Preemptions) != len(m.preemptions) {
		return fmt.Errorf("trustzone: snapshot has %d cores, monitor has %d", len(st.TimerPending), len(m.timerPending))
	}
	if err := m.rng.RestoreState(st.RNG); err != nil {
		return fmt.Errorf("trustzone: restoring monitor rng: %w", err)
	}
	copy(m.timerPending, st.TimerPending)
	copy(m.stretch, st.Stretch)
	copy(m.preemptions, st.Preemptions)
	m.switches = append(m.switches[:0], st.Switches...)
	return nil
}
