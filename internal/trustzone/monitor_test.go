package trustzone

import (
	"testing"
	"time"

	"satin/internal/hw"
	"satin/internal/simclock"
)

func newRig(t *testing.T) (*simclock.Engine, *hw.Platform, *Monitor) {
	t.Helper()
	e := simclock.NewEngine()
	p, err := hw.NewJunoR1(e)
	if err != nil {
		t.Fatal(err)
	}
	return e, p, NewMonitor(p, 1)
}

// timerService runs a fixed-duration payload on every secure timer entry.
type timerService struct {
	work    time.Duration
	entries []int
}

func (s *timerService) OnSecureTimer(ctx *Context) {
	s.entries = append(s.entries, ctx.Core().ID())
	ctx.Elapse(s.work, ctx.Exit)
}

func armTimer(t *testing.T, p *hw.Platform, coreID int, at simclock.Time) {
	t.Helper()
	st := p.Core(coreID).SecureTimer()
	if err := st.WriteCVAL(hw.SecureWorld, at); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCTL(hw.SecureWorld, true); err != nil {
		t.Fatal(err)
	}
}

func TestSecureTimerEntryRunsServiceAndExits(t *testing.T) {
	e, p, m := newRig(t)
	svc := &timerService{work: 5 * time.Millisecond}
	m.SetService(svc)
	armTimer(t, p, 2, simclock.Time(100*time.Millisecond))

	var secureAt, normalAt simclock.Time
	p.Core(2).OnWorldChange(func(_ *hw.Core, _, newWorld hw.World) {
		if newWorld == hw.SecureWorld {
			secureAt = e.Now()
		} else {
			normalAt = e.Now()
		}
	})
	e.Run()

	if len(svc.entries) != 1 || svc.entries[0] != 2 {
		t.Fatalf("service entries = %v, want [2]", svc.entries)
	}
	// Entry happens Ts_switch after the interrupt.
	enterDelay := secureAt.Sub(simclock.Time(100 * time.Millisecond))
	if enterDelay < 2380*time.Nanosecond || enterDelay > 3600*time.Nanosecond {
		t.Errorf("entry Ts_switch = %v, want within [2.38µs, 3.6µs]", enterDelay)
	}
	// Exit happens after the payload work plus another Ts_switch.
	total := normalAt.Sub(secureAt)
	if total < 5*time.Millisecond || total > 5*time.Millisecond+4*time.Microsecond {
		t.Errorf("secure residency = %v, want 5ms + Ts_switch", total)
	}
	if m.InSecure(2) {
		t.Error("InSecure after exit")
	}
	// The switch record captured the request-to-entry latency.
	recs := m.Switches()
	if len(recs) != 1 {
		t.Fatalf("switch records = %d, want 1", len(recs))
	}
	if recs[0].Reason != ReasonSecureTimer || recs[0].CoreID != 2 {
		t.Errorf("record = %+v", recs[0])
	}
	if recs[0].SwitchTime() != enterDelay {
		t.Errorf("recorded switch %v, observed %v", recs[0].SwitchTime(), enterDelay)
	}
}

func TestOtherCoresStayInNormalWorld(t *testing.T) {
	e, p, m := newRig(t)
	svc := &timerService{work: 10 * time.Millisecond}
	m.SetService(svc)
	armTimer(t, p, 0, simclock.Time(time.Millisecond))
	e.After(5*time.Millisecond, "mid-check", func() {
		if !m.InSecure(0) {
			t.Error("core 0 should be in secure world")
		}
		for i := 1; i < p.NumCores(); i++ {
			if p.Core(i).World() != hw.NormalWorld {
				t.Errorf("core %d left normal world; the rich OS must keep running", i)
			}
		}
	})
	e.Run()
}

func TestRequestSecureSMC(t *testing.T) {
	e, _, m := newRig(t)
	ran := false
	err := m.RequestSecure(1, func(ctx *Context) {
		ran = true
		if ctx.Core().ID() != 1 {
			t.Errorf("ctx core = %d, want 1", ctx.Core().ID())
		}
		ctx.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !ran {
		t.Error("SMC payload never ran")
	}
	recs := m.Switches()
	if len(recs) != 1 || recs[0].Reason != ReasonSMC {
		t.Errorf("records = %+v", recs)
	}
}

func TestRequestSecureRejectsBusyAndBadCore(t *testing.T) {
	e, _, m := newRig(t)
	if err := m.RequestSecure(99, func(*Context) {}); err == nil {
		t.Error("bad core accepted")
	}
	if err := m.RequestSecure(-1, func(*Context) {}); err == nil {
		t.Error("negative core accepted")
	}
	err := m.RequestSecure(0, func(ctx *Context) {
		// While in the secure world, a second request must fail.
		if err := m.RequestSecure(0, func(*Context) {}); err == nil {
			t.Error("re-entry accepted")
		}
		ctx.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
}

func TestNSInterruptPendsUntilSecureExit(t *testing.T) {
	e, p, m := newRig(t)
	var delivered []simclock.Time
	p.GIC().Register(hw.IntNSTimer, func(coreID int) {
		delivered = append(delivered, e.Now())
	})
	svc := &timerService{work: 8 * time.Millisecond}
	m.SetService(svc)
	armTimer(t, p, 0, simclock.Time(time.Millisecond))
	// NS tick arrives in the middle of the secure payload.
	e.After(4*time.Millisecond, "ns-tick", func() {
		p.GIC().Raise(hw.IntNSTimer, 0)
		if len(delivered) != 0 {
			t.Error("NS interrupt delivered during non-preemptive secure execution")
		}
	})
	e.Run()
	if len(delivered) != 1 {
		t.Fatalf("NS interrupt delivered %d times, want 1 (after exit)", len(delivered))
	}
	// Delivered only when the core came back: after ~1ms + switch + 8ms + switch.
	if delivered[0].Duration() < 9*time.Millisecond {
		t.Errorf("NS interrupt delivered at %v, want after secure exit", delivered[0])
	}
}

func TestOnEnterObserver(t *testing.T) {
	e, _, m := newRig(t)
	var seen []SwitchRecord
	m.OnEnter(func(r SwitchRecord) { seen = append(seen, r) })
	if err := m.RequestSecure(3, func(ctx *Context) { ctx.Exit() }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(seen) != 1 || seen[0].CoreID != 3 {
		t.Errorf("observer saw %+v", seen)
	}
}

func TestDoubleExitPanics(t *testing.T) {
	e, _, m := newRig(t)
	err := m.RequestSecure(0, func(ctx *Context) {
		ctx.Exit()
		defer func() {
			if recover() == nil {
				t.Error("double Exit did not panic")
			}
		}()
		ctx.Exit()
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
}

func TestElapseAfterExitPanics(t *testing.T) {
	e, _, m := newRig(t)
	err := m.RequestSecure(0, func(ctx *Context) {
		ctx.Exit()
		defer func() {
			if recover() == nil {
				t.Error("Elapse after Exit did not panic")
			}
		}()
		ctx.Elapse(time.Millisecond, func() {})
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
}

func TestTimerWithoutServicePanics(t *testing.T) {
	e, p, _ := newRig(t)
	armTimer(t, p, 0, simclock.Time(time.Millisecond))
	defer func() {
		if recover() == nil {
			t.Error("secure timer with no service did not panic")
		}
	}()
	e.Run()
}

func TestSwitchTimesMatchCalibration(t *testing.T) {
	// 50 world switches, as in the paper's Ts_switch measurement (§IV-B1):
	// every sample in [2.38µs, 3.60µs].
	e, _, m := newRig(t)
	var run func(i int)
	run = func(i int) {
		if i == 50 {
			return
		}
		if err := m.RequestSecure(i%6, func(ctx *Context) {
			ctx.Exit()
			// Schedule the next entry strictly after this one exits.
			ctx.Platform().Engine().After(10*time.Microsecond, "next", func() { run(i + 1) })
		}); err != nil {
			t.Errorf("entry %d: %v", i, err)
		}
	}
	run(0)
	e.Run()
	recs := m.Switches()
	if len(recs) != 50 {
		t.Fatalf("recorded %d switches, want 50", len(recs))
	}
	for _, r := range recs {
		d := r.SwitchTime()
		if d < 2380*time.Nanosecond || d > 3600*time.Nanosecond {
			t.Errorf("Ts_switch = %v outside calibrated range", d)
		}
	}
}

func TestEntryReasonString(t *testing.T) {
	if ReasonSecureTimer.String() != "secure-timer" || ReasonSMC.String() != "smc" {
		t.Error("reason names wrong")
	}
	if EntryReason(9).String() == "" {
		t.Error("unknown reason should render")
	}
}
