// Package trustzone models the EL3 secure monitor of the paper's testbed —
// the ARM Trusted Firmware component that owns world switches. The paper's
// introspection stacks (the TSP-based baseline and SATIN) run as secure
// services (S-EL1 software) invoked by this monitor when a core's secure
// timer fires.
//
// The monitor implements the non-preemptive secure mode the paper requires
// (§II-B, §V-B): while a core executes a secure service, non-secure
// interrupts pend at the GIC (the SCR_EL3.IRQ=0 configuration) and are
// delivered only when the core returns to the normal world. Each world
// switch costs Ts_switch, drawn from the platform's calibrated model — the
// 2.38–3.60 µs the paper measured for the TSP dispatcher (§IV-B1).
package trustzone

import (
	"fmt"
	"time"

	"satin/internal/hw"
	"satin/internal/obs"
	"satin/internal/profile"
	"satin/internal/simclock"
	"satin/internal/trace"
)

// Service is the S-EL1 secure software the monitor dispatches to. The
// context is only valid until ctx.Exit is called.
type Service interface {
	// OnSecureTimer handles the core's secure timer interrupt in the
	// secure world. Implementations perform their work by scheduling
	// virtual time through ctx (Elapse) and must eventually call ctx.Exit
	// exactly once to return the core to the normal world.
	OnSecureTimer(ctx *Context)
}

// EntryReason says why a core entered the secure world.
type EntryReason int

// Entry reasons.
const (
	ReasonSecureTimer EntryReason = iota + 1
	ReasonSMC
)

// String names the reason.
func (r EntryReason) String() string {
	switch r {
	case ReasonSecureTimer:
		return "secure-timer"
	case ReasonSMC:
		return "smc"
	default:
		return fmt.Sprintf("EntryReason(%d)", int(r))
	}
}

// SwitchRecord documents one completed world entry: when it was requested
// (the interrupt assertion, t_start in the paper's Figure 3), when the
// secure payload actually started (after Ts_switch), and why.
type SwitchRecord struct {
	CoreID    int
	Reason    EntryReason
	Requested simclock.Time
	Entered   simclock.Time
}

// SwitchTime reports the measured Ts_switch of this entry.
func (r SwitchRecord) SwitchTime() time.Duration { return r.Entered.Sub(r.Requested) }

// RoutingMode is the §II-B non-secure interrupt routing configuration.
type RoutingMode int

// Routing modes.
const (
	// NonPreemptive is SATIN's SCR_EL3.IRQ=0 configuration (§V-B):
	// non-secure interrupts pend at the GIC while a core runs a secure
	// payload, so the normal world cannot interfere with a check.
	NonPreemptive RoutingMode = iota + 1
	// Preemptive is the OP-TEE-style mode: non-secure interrupts are
	// handed to the normal world immediately, each preemption adding its
	// cost to the secure payload's completion time. A normal-world
	// interrupt flood can stretch a check arbitrarily — the interference
	// SATIN's design forbids.
	Preemptive
)

// String names the mode.
func (m RoutingMode) String() string {
	switch m {
	case NonPreemptive:
		return "non-preemptive"
	case Preemptive:
		return "preemptive"
	default:
		return fmt.Sprintf("RoutingMode(%d)", int(m))
	}
}

// DefaultPreemptionCost models the secure-payload latency one preemption
// adds in Preemptive mode: world exit, the normal-world handler, and
// re-entry — roughly two Ts_switch plus handler work.
func DefaultPreemptionCost() simclock.Dist {
	return simclock.Seconds(20e-6, 30e-6, 45e-6)
}

// SwitchBuckets returns the histogram bounds (ns) for Ts_switch latencies:
// fine steps across the paper's measured 2.38–3.60 µs band.
func SwitchBuckets() []int64 {
	return []int64{2400, 2600, 2800, 3000, 3200, 3400, 3600, 4000}
}

// Monitor is the EL3 secure monitor.
type Monitor struct {
	platform *hw.Platform
	rng      *simclock.RNG
	service  Service
	inSecure []bool
	// timerPending[core] records a secure timer interrupt that arrived while
	// the core was already busy in the secure world (an SMC-driven payload):
	// EL3 masks IRQs during secure execution, so the fire is taken on exit.
	timerPending []bool
	switches     []SwitchRecord
	onEnter      []func(SwitchRecord)
	// switchPerturb, when set, returns extra secure-dispatch latency for a
	// world entry: time spent in the monitor/secure-OS entry path after the
	// core has already left the normal world but before the payload runs.
	// The fault-injection layer installs it to model entry-latency spikes
	// (the large software-path variance Amacher & Schiavoni measured); nil
	// (the default) costs nothing and schedules nothing.
	switchPerturb func(coreID int, base time.Duration) time.Duration

	// Observability (nil unless Observe was called; all nil-safe).
	bus       *obs.Bus
	entries   *obs.Counter
	enterHist *obs.Histogram
	exitHist  *obs.Histogram
	// prof receives world-switch and secure-dispatch spans (nil unless
	// SetProfiler was called; every emit is nil-safe).
	prof *profile.Profiler

	routing        RoutingMode
	preemptionCost simclock.Dist
	// stretch[core] accumulates preemption latency charged to the core's
	// current (and future) secure payloads; Context.Elapse consumes it.
	stretch []time.Duration
	// preemptions counts delivered preemptions per core.
	preemptions []int

	// Per-core event names, formatted once at construction: world switches
	// and secure work are the engine's hottest schedulers, and a Sprintf per
	// event was a measurable slice of every round.
	workNames     []string
	entryNames    []string
	exitNames     []string
	dispatchNames []string
}

// NewMonitor installs a monitor on the platform and claims the secure timer
// interrupt, fulfilling the §II-B guarantee that secure interrupts are
// always routed to EL3.
func NewMonitor(p *hw.Platform, seed uint64) *Monitor {
	m := &Monitor{
		platform:       p,
		rng:            simclock.NewRNG(seed, "trustzone.monitor"),
		inSecure:       make([]bool, p.NumCores()),
		timerPending:   make([]bool, p.NumCores()),
		routing:        NonPreemptive,
		preemptionCost: DefaultPreemptionCost(),
		stretch:        make([]time.Duration, p.NumCores()),
		preemptions:    make([]int, p.NumCores()),
		workNames:      make([]string, p.NumCores()),
		entryNames:     make([]string, p.NumCores()),
		exitNames:      make([]string, p.NumCores()),
		dispatchNames:  make([]string, p.NumCores()),
	}
	for i := 0; i < p.NumCores(); i++ {
		m.workNames[i] = fmt.Sprintf("secure-work-core%d", i)
		m.entryNames[i] = fmt.Sprintf("world-entry-core%d", i)
		m.exitNames[i] = fmt.Sprintf("world-exit-core%d", i)
		m.dispatchNames[i] = fmt.Sprintf("secure-dispatch-core%d", i)
	}
	p.GIC().Register(hw.IntSecureTimer, func(coreID int) {
		m.handleSecureTimer(coreID)
	})
	return m
}

// Observe wires the monitor into the observability layer: every completed
// world entry is published to bus as a trace event, and the per-switch
// Ts_switch costs feed enter/exit latency histograms in reg. Either
// argument may be nil.
func (m *Monitor) Observe(bus *obs.Bus, reg *obs.Registry) {
	m.bus = bus
	m.entries = reg.Counter("monitor.world_entries")
	m.enterHist = reg.Histogram("monitor.switch_enter_ns", SwitchBuckets())
	m.exitHist = reg.Histogram("monitor.switch_exit_ns", SwitchBuckets())
}

// SetProfiler attaches the causal span profiler. Each world entry opens a
// world-switch span (request → normal-world re-entry) containing a
// secure-dispatch span (request → payload start) on the core's secure
// track. Passing nil detaches; a detached monitor emits nothing and pays
// only a nil check per entry.
func (m *Monitor) SetProfiler(p *profile.Profiler) { m.prof = p }

// SetRouting configures the non-secure interrupt routing (§II-B). In
// Preemptive mode, an NS interrupt hitting a secure core is delivered
// immediately and charges PreemptionCost to the running payload.
func (m *Monitor) SetRouting(mode RoutingMode) {
	m.routing = mode
	if mode == Preemptive {
		m.platform.GIC().SetPreemptiveHook(func(_ hw.IntID, coreID int) bool {
			if !m.inSecure[coreID] {
				return false
			}
			m.stretch[coreID] += m.preemptionCost.Draw(m.rng)
			m.preemptions[coreID]++
			return true
		})
		return
	}
	m.platform.GIC().SetPreemptiveHook(nil)
}

// Routing reports the configured mode.
func (m *Monitor) Routing() RoutingMode { return m.routing }

// Preemptions reports how many times core coreID's secure payloads were
// preempted.
func (m *Monitor) Preemptions(coreID int) int { return m.preemptions[coreID] }

// SetService installs the S-EL1 payload dispatched on secure timer
// interrupts. Installing a second service replaces the first — the platform
// runs exactly one secure OS.
func (m *Monitor) SetService(s Service) { m.service = s }

// OnEnter registers fn to run whenever a core completes a world entry.
// Experiments use this to observe Ts_switch without touching internals.
func (m *Monitor) OnEnter(fn func(SwitchRecord)) {
	m.onEnter = append(m.onEnter, fn)
}

// InSecure reports whether core coreID currently executes in the secure
// world. Only simulation/instrumentation code may call this; modeled
// normal-world software must use the core-availability side channel instead.
func (m *Monitor) InSecure(coreID int) bool { return m.inSecure[coreID] }

// Switches returns the record of all completed world entries.
func (m *Monitor) Switches() []SwitchRecord { return m.switches }

// handleSecureTimer services the secure timer PPI: save the NS context,
// switch the core to the secure world (costing Ts_switch), and dispatch the
// secure service.
func (m *Monitor) handleSecureTimer(coreID int) {
	if m.service == nil {
		panic(fmt.Sprintf("trustzone: secure timer fired on core %d with no service installed", coreID))
	}
	if m.inSecure[coreID] {
		// The core is already busy in the secure world — possible only when
		// an SMC-driven payload (e.g. a SATIN re-routed round) overlaps the
		// core's own timer fire. EL3 runs with IRQs masked, so the fire is
		// held here and taken when the core exits.
		m.timerPending[coreID] = true
		return
	}
	m.enter(coreID, ReasonSecureTimer, func(ctx *Context) {
		m.service.OnSecureTimer(ctx)
	})
}

// RequestSecure switches core coreID into the secure world and runs fn
// there. It is the SMC path: normal-world software (or a test) can invoke a
// secure payload directly. It returns an error if the core is already in
// the secure world.
func (m *Monitor) RequestSecure(coreID int, fn func(ctx *Context)) error {
	if coreID < 0 || coreID >= m.platform.NumCores() {
		return fmt.Errorf("trustzone: no core %d", coreID)
	}
	if m.inSecure[coreID] {
		return fmt.Errorf("trustzone: core %d already in secure world", coreID)
	}
	if !m.platform.Core(coreID).Online() {
		return fmt.Errorf("trustzone: core %d is offline", coreID)
	}
	m.enter(coreID, ReasonSMC, fn)
	return nil
}

// SetSwitchPerturb installs a hook that adds secure-dispatch latency to
// world entries (the fault-injection layer's entry-latency spikes); nil
// removes it. The extra latency lands *after* the core leaves the normal
// world — the reporter-freeze observable TZ-Evader watches — but *before*
// the secure payload runs, so a large spike genuinely widens the evader's
// Eq. 1/2 window. Non-positive returns cost nothing.
func (m *Monitor) SetSwitchPerturb(fn func(coreID int, base time.Duration) time.Duration) {
	m.switchPerturb = fn
}

func (m *Monitor) enter(coreID int, reason EntryReason, fn func(ctx *Context)) {
	m.inSecure[coreID] = true
	requested := m.platform.Engine().Now()
	m.prof.Begin(profile.SpanWorldSwitch, coreID, -1, requested.Duration(), reason.String())
	m.prof.Begin(profile.SpanSecureDispatch, coreID, -1, requested.Duration(), "")
	switchCost := m.platform.Perf().SwitchTime(m.rng)
	m.platform.Engine().ScheduleAfter(switchCost, m.entryNames[coreID], func() {
		core := m.platform.Core(coreID)
		// The core leaves the normal world here: its reporters freeze and
		// TZ-Evader's staleness clock starts ticking.
		core.SetWorld(hw.SecureWorld)
		dispatch := func() {
			rec := SwitchRecord{
				CoreID:    coreID,
				Reason:    reason,
				Requested: requested,
				Entered:   m.platform.Engine().Now(),
			}
			m.switches = append(m.switches, rec)
			m.prof.End(profile.SpanSecureDispatch, coreID, rec.Entered.Duration())
			m.entries.Inc()
			m.enterHist.Observe(int64(rec.SwitchTime()))
			m.bus.Publish(trace.Event{
				At: rec.Entered.Duration(), Kind: trace.KindWorldEnter,
				Core: coreID, Area: -1, Detail: reason.String(),
			})
			for _, fn := range m.onEnter {
				fn(rec)
			}
			ctx := &Context{monitor: m, core: core, stretchSeen: m.stretch[coreID]}
			fn(ctx)
		}
		// Perturbed entries spend extra time in the secure dispatch path
		// before the payload starts; unperturbed entries dispatch inline,
		// with no extra engine event.
		if m.switchPerturb != nil {
			if extra := m.switchPerturb(coreID, switchCost); extra > 0 {
				m.platform.Engine().ScheduleAfter(extra, m.dispatchNames[coreID], dispatch)
				return
			}
		}
		dispatch()
	})
}

// exit returns the core to the normal world, costing another Ts_switch for
// the secure-context save and NS-context restore.
func (m *Monitor) exit(coreID int) {
	switchCost := m.platform.Perf().SwitchTime(m.rng)
	m.exitHist.Observe(int64(switchCost))
	m.platform.Engine().ScheduleAfter(switchCost, m.exitNames[coreID], func() {
		m.inSecure[coreID] = false
		m.platform.Core(coreID).SetWorld(hw.NormalWorld)
		m.prof.End(profile.SpanWorldSwitch, coreID, m.platform.Engine().Now().Duration())
		if m.timerPending[coreID] {
			// A secure timer fire was held while the core ran an SMC
			// payload; with IRQs unmasked again it traps straight back in.
			m.timerPending[coreID] = false
			m.handleSecureTimer(coreID)
		}
	})
}

// Context is the execution context of a secure payload on one core.
type Context struct {
	monitor *Monitor
	core    *hw.Core
	exited  bool
	// stretchSeen is how much of the core's accumulated preemption
	// latency this context has already absorbed.
	stretchSeen time.Duration
}

// Core returns the core the payload runs on.
func (c *Context) Core() *hw.Core { return c.core }

// Now reports the current virtual time.
func (c *Context) Now() simclock.Time { return c.monitor.platform.Engine().Now() }

// Platform exposes the hardware for register access. Payload code accesses
// secure registers with hw.SecureWorld privilege.
func (c *Context) Platform() *hw.Platform { return c.monitor.platform }

// Elapse models the payload consuming d of CPU time, then continues with
// fn. In Preemptive routing, normal-world interrupts that landed during the
// window push fn back by their accumulated cost — the interference a flood
// exploits. Calling Elapse after Exit is a payload bug and panics.
func (c *Context) Elapse(d time.Duration, fn func()) {
	if c.exited {
		panic("trustzone: Elapse after Exit")
	}
	m := c.monitor
	id := c.core.ID()
	name := m.workNames[id]
	if m.routing == NonPreemptive && m.stretch[id] == c.stretchSeen {
		// No preemption can land during the window (the GIC hook is nil in
		// NonPreemptive routing) and no earlier stretch is owed, so fn fires
		// exactly d from now — schedule it directly, with no closure. This is
		// the path every SATIN chunk read takes, thousands of times per scan.
		m.platform.Engine().ScheduleAfter(d, name, fn)
		return
	}
	var fire func()
	fire = func() {
		accrued := m.stretch[id] - c.stretchSeen
		if accrued > 0 {
			c.stretchSeen += accrued
			m.platform.Engine().ScheduleAfter(accrued, name, fire)
			return
		}
		fn()
	}
	m.platform.Engine().ScheduleAfter(d, name, fire)
}

// Exit returns the core to the normal world. It must be called exactly once
// per entry; a second call panics.
func (c *Context) Exit() {
	if c.exited {
		panic("trustzone: double Exit")
	}
	c.exited = true
	c.monitor.exit(c.core.ID())
}
