package shard_test

import (
	"reflect"
	"testing"

	"satin/internal/campaign"
	"satin/internal/shard"
	"satin/internal/spec"
)

// gridCells expands a 3-combo × 4-seed campaign (12 cells) whose combos
// differ only in their fault plan — the shape checkpoint grouping targets.
func gridCells(t *testing.T) []campaign.Cell {
	t.Helper()
	c, err := campaign.Parse([]byte(`{
		"version": 1,
		"scenario": {
			"version": 1, "seed": 1,
			"defense": {"kind": "satin", "satin": {"tgoal": "19s", "max_rounds": 19}},
			"evader": {"kind": "fast"},
			"run": {"to_completion": true}
		},
		"faults": ["", "scale:1", "scale:2"],
		"seeds": {"base": 1, "count": 4}
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cells, err := campaign.Cells(c)
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if len(cells) != 12 {
		t.Fatalf("expansion has %d cells, want 12", len(cells))
	}
	return cells
}

// seedKey groups cells by seed — the same classification CheckpointGroupKey
// gives this campaign (cells of one seed share the fault-free prefix).
func seedKey(s spec.Spec) (string, bool) {
	return string(rune('a' + int(s.Seed))), true
}

func flatten(p shard.Plan) []int {
	var all []int
	for _, s := range p.Shards {
		all = append(all, s...)
	}
	return all
}

// TestPlanCovers: every cell lands in exactly one shard, shards are
// ascending, and counts are balanced when nothing constrains them.
func TestPlanCovers(t *testing.T) {
	cells := gridCells(t)
	for _, k := range []int{1, 2, 3, 4, 5, 12, 20} {
		p, err := shard.PlanCells(cells, k, nil)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.Count() != k {
			t.Fatalf("k=%d: plan has %d shards", k, p.Count())
		}
		seen := map[int]bool{}
		for si, s := range p.Shards {
			for i := 1; i < len(s); i++ {
				if s[i] <= s[i-1] {
					t.Fatalf("k=%d shard %d not ascending: %v", k, si, s)
				}
			}
			for _, idx := range s {
				if seen[idx] {
					t.Fatalf("k=%d: cell %d in two shards", k, idx)
				}
				seen[idx] = true
			}
		}
		if len(seen) != len(cells) {
			t.Fatalf("k=%d: plan covers %d of %d cells", k, len(seen), len(cells))
		}
		// Ungrouped planning must balance to within one cell.
		min, max := len(cells), 0
		for _, s := range p.Shards {
			if len(s) < min {
				min = len(s)
			}
			if len(s) > max {
				max = len(s)
			}
		}
		if k <= len(cells) && max-min > 1 {
			t.Fatalf("k=%d: unconstrained plan imbalanced: min %d, max %d", k, min, max)
		}
	}
}

// TestPlanKeepsGroupsIntact: cells sharing a checkpoint key never split
// across shards, so fork acceleration survives sharding.
func TestPlanKeepsGroupsIntact(t *testing.T) {
	cells := gridCells(t)
	for _, k := range []int{2, 3, 4, 7} {
		p, err := shard.PlanCells(cells, k, seedKey)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		shardOf := map[int]int{}
		for si, s := range p.Shards {
			for _, idx := range s {
				shardOf[idx] = si
			}
		}
		bySeed := map[uint64][]int{}
		for _, c := range cells {
			bySeed[c.Seed] = append(bySeed[c.Seed], c.Index)
		}
		for seed, members := range bySeed {
			for _, idx := range members[1:] {
				if shardOf[idx] != shardOf[members[0]] {
					t.Fatalf("k=%d: seed %d group split across shards %d and %d",
						k, seed, shardOf[members[0]], shardOf[idx])
				}
			}
		}
	}
}

// TestPlanDeterministic: the same cells and K always produce the same plan.
func TestPlanDeterministic(t *testing.T) {
	cells := gridCells(t)
	a, err := shard.PlanCells(cells, 3, seedKey)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := shard.PlanCells(cells, 3, seedKey)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("plan differs between calls: %v vs %v", a, b)
		}
	}
}

// TestPlanSingletonGroups: a key that marks no multi-cell groups degrades
// to per-cell planning; unsupported cells (ok=false) are singletons too.
func TestPlanSingletonGroups(t *testing.T) {
	cells := gridCells(t)
	none := func(spec.Spec) (string, bool) { return "", false }
	p, err := shard.PlanCells(cells, 4, none)
	if err != nil {
		t.Fatal(err)
	}
	for si, s := range p.Shards {
		if len(s) != 3 {
			t.Fatalf("shard %d has %d cells, want 3 (12 cells over 4 shards)", si, len(s))
		}
	}
	if got := flatten(p); len(got) != 12 {
		t.Fatalf("plan covers %d cells", len(got))
	}
}

// TestPlanRejectsBadCount: zero or negative shard counts are an error.
func TestPlanRejectsBadCount(t *testing.T) {
	cells := gridCells(t)
	for _, k := range []int{0, -1} {
		if _, err := shard.PlanCells(cells, k, nil); err == nil {
			t.Fatalf("PlanCells accepted k=%d", k)
		}
	}
}

// TestPlanCellsAccounting: Plan.Cells sums shard sizes.
func TestPlanCellsAccounting(t *testing.T) {
	cells := gridCells(t)
	p, err := shard.PlanCells(cells, 5, seedKey)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells() != len(cells) {
		t.Fatalf("Plan.Cells() = %d, want %d", p.Cells(), len(cells))
	}
}
