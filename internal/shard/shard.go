// Package shard partitions a campaign's flat cell list into K shards for
// cross-process execution. The planner's one non-negotiable rule is that a
// checkpoint-key group — cells sharing a forkable prefix, the unit the
// campaign executor accelerates via checkpoint/fork — is never split across
// shards: a shard either holds the whole group or none of it, so fork
// acceleration applies within every shard exactly as it would in one
// process. Around that constraint the planner balances cell counts with a
// deterministic longest-processing-time greedy.
//
// A plan only shapes which process computes which cells; the merged result
// is byte-invariant to it (campaign.Merge sorts by cell index). Determinism
// here is still worth having — the same campaign and K always plan the same
// shards, so lease handouts and smoke runs are reproducible.
package shard

import (
	"fmt"
	"sort"

	"satin/internal/campaign"
)

// Plan is one sharding of a campaign: Shards[i] lists the cell indices
// shard i executes, each ascending. Every cell appears in exactly one
// shard; shards may be empty when K exceeds the number of atomic blocks.
type Plan struct {
	Shards [][]int
}

// Count reports the number of shards.
func (p Plan) Count() int { return len(p.Shards) }

// Cells reports the total cell count across shards.
func (p Plan) Cells() int {
	n := 0
	for _, s := range p.Shards {
		n += len(s)
	}
	return n
}

// block is one atomic scheduling unit: a checkpoint-key group, or a single
// ungrouped cell.
type block struct {
	first int // lowest cell index, the deterministic identity
	cells []int
}

// PlanCells partitions cells into k shards. key, when non-nil, classifies
// cells into checkpoint-key groups (the campaign.GroupKeyFunc contract:
// matching keys with ok=true share a forkable prefix); grouped cells are
// kept together. A nil key plans every cell independently.
func PlanCells(cells []campaign.Cell, k int, key campaign.GroupKeyFunc) (Plan, error) {
	if k < 1 {
		return Plan{}, fmt.Errorf("shard: shard count %d: need at least 1", k)
	}
	blocks := blocksOf(cells, key)

	// LPT greedy: biggest blocks first (ties by first cell index, so the
	// order — and therefore the plan — is deterministic), each onto the
	// least-loaded shard (ties by shard number).
	sort.Slice(blocks, func(i, j int) bool {
		if len(blocks[i].cells) != len(blocks[j].cells) {
			return len(blocks[i].cells) > len(blocks[j].cells)
		}
		return blocks[i].first < blocks[j].first
	})
	plan := Plan{Shards: make([][]int, k)}
	for i := range plan.Shards {
		plan.Shards[i] = []int{}
	}
	load := make([]int, k)
	for _, b := range blocks {
		best := 0
		for s := 1; s < k; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		plan.Shards[best] = append(plan.Shards[best], b.cells...)
		load[best] += len(b.cells)
	}
	for _, s := range plan.Shards {
		sort.Ints(s)
	}
	return plan, nil
}

// blocksOf groups the cells into atomic blocks: checkpoint-key groups of
// two or more stay whole, everything else is a singleton. Mirrors the
// executor's groupUnits — a group the executor would fork is exactly a
// block the planner keeps intact.
func blocksOf(cells []campaign.Cell, key campaign.GroupKeyFunc) []block {
	grouped := map[string][]int{}
	keyOf := make([]string, len(cells))
	if key != nil {
		for i, c := range cells {
			if c.Scenario == nil {
				continue
			}
			if k, ok := key(*c.Scenario); ok {
				keyOf[i] = k
				grouped[k] = append(grouped[k], c.Index)
			}
		}
	}
	var blocks []block
	emitted := map[string]bool{}
	for i, c := range cells {
		k := keyOf[i]
		if k == "" || len(grouped[k]) < 2 {
			blocks = append(blocks, block{first: c.Index, cells: []int{c.Index}})
			continue
		}
		if !emitted[k] {
			emitted[k] = true
			blocks = append(blocks, block{first: grouped[k][0], cells: grouped[k]})
		}
	}
	return blocks
}
