package syncguard

import (
	"testing"
	"time"

	"satin/internal/attack"
	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/mem"
	"satin/internal/richos"
	"satin/internal/simclock"
	"satin/internal/trustzone"
)

type rig struct {
	engine  *simclock.Engine
	plat    *hw.Platform
	image   *mem.Image
	os      *richos.OS
	monitor *trustzone.Monitor
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := simclock.NewEngine()
	p, err := hw.NewJunoR1(e)
	if err != nil {
		t.Fatal(err)
	}
	im, err := mem.NewJunoImage(42)
	if err != nil {
		t.Fatal(err)
	}
	os, err := richos.NewOS(p, im, richos.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{engine: e, plat: p, image: im, os: os, monitor: trustzone.NewMonitor(p, 3)}
}

func installedGuard(t *testing.T, r *rig) *Guard {
	t.Helper()
	g := New(r.os)
	if err := g.Install(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGuardBlocksRootkitInstall(t *testing.T) {
	r := newRig(t)
	g := installedGuard(t, r)
	rk := attack.NewRootkit(r.os, r.image)
	if err := rk.Install(0); err == nil {
		t.Fatal("rootkit installed against an active synchronous guard")
	}
	if rk.State() != attack.RootkitHidden {
		t.Error("rootkit state changed despite denial")
	}
	if g.Trapped() != 1 || len(g.Denied()) != 1 {
		t.Errorf("guard trapped %d / denied %d, want 1/1", g.Trapped(), len(g.Denied()))
	}
	// Memory untouched.
	if len(r.image.Modified()) != 0 {
		t.Error("denied install modified kernel memory")
	}
}

func TestGuardBlocksKProber1VectorHijack(t *testing.T) {
	r := newRig(t)
	installedGuard(t, r)
	buf, err := attack.NewReportBuffer(r.plat.NumCores(), attack.JunoCrossCoreNoise(), 9)
	if err != nil {
		t.Fatal(err)
	}
	kp1 := attack.NewKProber1(r.os, buf)
	if err := kp1.Install(false); err == nil {
		t.Fatal("KProber-I hijacked the protected vector table")
	}
	if kp1.Installed() {
		t.Error("KProber-I reports installed after denial")
	}
}

func TestGuardDoubleInstall(t *testing.T) {
	r := newRig(t)
	g := installedGuard(t, r)
	if err := g.Install(); err == nil {
		t.Error("double install accepted")
	}
	if !g.Installed() {
		t.Error("Installed() = false")
	}
}

func TestAPFlipBypassesGuard(t *testing.T) {
	// §VII-A end to end: denied → exploit → undetected success.
	r := newRig(t)
	g := installedGuard(t, r)
	rk := attack.NewRootkit(r.os, r.image)
	if err := rk.Install(0); err == nil {
		t.Fatal("install should be denied before the exploit")
	}
	layout := r.image.Layout()
	entry := layout.SyscallEntryAddr(mem.GettidNR)
	flipped, err := APFlipExploit(r.image, entry, mem.SyscallEntrySize)
	if err != nil {
		t.Fatal(err)
	}
	if len(flipped) != 1 {
		t.Fatalf("exploit flipped %d PTEs, want 1", len(flipped))
	}
	trappedBefore := g.Trapped()
	if err := rk.Install(1); err != nil {
		t.Fatalf("install after AP flip failed: %v", err)
	}
	if g.Trapped() != trappedBefore {
		t.Error("bypassed write still reached the screen; the guard should see nothing")
	}
	if rk.State() != attack.RootkitActive {
		t.Error("rootkit not active")
	}
}

func TestAPFlipExploitValidation(t *testing.T) {
	r := newRig(t)
	if _, err := APFlipExploit(r.image, r.image.Layout().Base, 0); err == nil {
		t.Error("zero-size exploit accepted")
	}
	if _, err := APFlipExploit(r.image, r.image.ModuleBase(), 8); err == nil {
		t.Error("exploit outside kernel accepted")
	}
	// Flipping an already-writable page is a no-op.
	flipped, err := APFlipExploit(r.image, r.image.Layout().Base, 8)
	if err != nil || len(flipped) != 0 {
		t.Errorf("no-op exploit: %v, %v", flipped, err)
	}
}

func TestAsyncIntrospectionCatchesTheBypass(t *testing.T) {
	// §VII-C: the layered-defense argument. The synchronous guard is
	// bypassed, but SATIN's next pass flags BOTH traces: the hijacked
	// syscall table (area 14) and the flipped PTE bytes (area 17).
	r := newRig(t)
	installedGuard(t, r)
	checker, err := introspect.NewChecker(r.image, r.plat.Perf(), 5, introspect.HashDjb2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// SATIN boots from the post-protection trusted image (the guard
	// already recaptured it), so a clean pass would raise nothing.
	areas, err := mem.BuildAreas(r.image.Layout(), mem.JunoAreaGroups())
	if err != nil {
		t.Fatal(err)
	}
	golden, err := introspect.GoldenTable(r.image, introspect.HashDjb2, areas)
	if err != nil {
		t.Fatal(err)
	}

	// The attack: exploit, then hijack; no evasion (the point here is the
	// trace inventory, not the race).
	entry := r.image.Layout().SyscallEntryAddr(mem.GettidNR)
	if _, err := APFlipExploit(r.image, entry, mem.SyscallEntrySize); err != nil {
		t.Fatal(err)
	}
	rk := attack.NewRootkit(r.os, r.image)
	if err := rk.Install(0); err != nil {
		t.Fatal(err)
	}

	// One asynchronous check of each area: areas 14 and 17 must mismatch.
	var dirty []int
	var scan func(i int)
	scan = func(i int) {
		if i == len(areas) {
			return
		}
		err := r.monitor.RequestSecure(4, func(ctx *trustzone.Context) {
			cerr := checker.Check(ctx, introspect.DirectHash, areas[i].Addr, areas[i].Size, func(res introspect.Result) {
				if res.Sum != golden[i] {
					dirty = append(dirty, i)
				}
				ctx.Exit()
				r.engine.After(time.Millisecond, "next", func() { scan(i + 1) })
			})
			if cerr != nil {
				t.Errorf("check %d: %v", i, cerr)
				ctx.Exit()
			}
		})
		if err != nil {
			t.Errorf("entry %d: %v", i, err)
		}
	}
	scan(0)
	r.engine.Run()
	if len(dirty) != 2 || dirty[0] != 14 || dirty[1] != 17 {
		t.Errorf("dirty areas = %v, want [14 17] (syscall table + flipped PTE)", dirty)
	}
}

func TestGuardProtectedStateHashesClean(t *testing.T) {
	// Installing the guard must not, by itself, trip asynchronous
	// introspection: the trusted image is recaptured after protection.
	r := newRig(t)
	installedGuard(t, r)
	if mod := r.image.Modified(); len(mod) != 0 {
		t.Errorf("guarded-but-unattacked image shows %d modified bytes", len(mod))
	}
}
