// Package syncguard models the synchronous introspection the paper's
// related work deploys (§II, §VII-A): a SPROBES/TZ-RKP-style guard that
// write-protects security-critical kernel structures and screens every
// trapped write from the secure world.
//
// The package exists for two of the paper's arguments:
//
//   - §VII-A: TZ-Evader's preparation steps (hijacking the IRQ vector for
//     KProber-I, hijacking the syscall table) are blocked by a synchronous
//     guard — until the attacker runs a write-what-where data attack that
//     flips the Access Permission bits of the relevant page-table entries,
//     after which the same writes sail through unmediated (the published
//     KNOX-RKP bypass the paper cites).
//   - §VII-C: the bypass leaves its own bytes behind (the flipped PTE lives
//     in kernel .data, area 17 of the Juno partition), so asynchronous
//     introspection adds exactly the layer of defense the paper argues for.
package syncguard

import (
	"fmt"

	"satin/internal/mem"
	"satin/internal/richos"
	"satin/internal/simclock"
)

// DeniedWrite records one write the guard screened and rejected.
type DeniedWrite struct {
	At   simclock.Time
	Addr uint64
	Len  int
}

// Guard is the synchronous introspection mechanism.
type Guard struct {
	os    *richos.OS
	image *mem.Image
	mmu   *mem.MMU

	installed bool
	trapped   int
	denied    []DeniedWrite
}

// New prepares a guard for the OS.
func New(os *richos.OS) *Guard {
	return &Guard{os: os, image: os.Image()}
}

// Install applies the boot-time protections: build the permission-checking
// MMU, write-protect the exception vector table and the syscall table,
// route kernel-privilege writes through the MMU, and re-capture the trusted
// image so asynchronous golden hashes describe the protected state. Mirrors
// the paper's description of TZ-RKP/SPROBES setting "the vector table as
// non-writable" (§VII-A).
func (g *Guard) Install() error {
	if g.installed {
		return fmt.Errorf("syncguard: already installed")
	}
	mmu, err := mem.NewMMU(g.image, g.screen)
	if err != nil {
		return fmt.Errorf("syncguard: %w", err)
	}
	layout := g.image.Layout()
	// The full exception vector table: 16 vectors.
	if err := mmu.Protect(layout.VBAR, 16*mem.VectorSize); err != nil {
		return fmt.Errorf("syncguard: protecting vector table: %w", err)
	}
	if err := mmu.Protect(layout.SyscallTableAddr, layout.SyscallCount*mem.SyscallEntrySize); err != nil {
		return fmt.Errorf("syncguard: protecting syscall table: %w", err)
	}
	// Trusted boot: the golden image now includes the protection bits.
	if err := g.image.RecapturePristine(); err != nil {
		return fmt.Errorf("syncguard: recapturing trusted image: %w", err)
	}
	g.os.SetMMU(mmu)
	g.mmu = mmu
	g.installed = true
	return nil
}

// screen is the secure-world inspection of a trapped write. This guard's
// policy is the simplest sound one: nothing in the normal world may
// legitimately rewrite the vector table or the syscall table at runtime, so
// every trapped write is denied.
func (g *Guard) screen(addr uint64, data []byte) error {
	g.trapped++
	g.denied = append(g.denied, DeniedWrite{
		At:   g.os.ReadCounter(),
		Addr: addr,
		Len:  len(data),
	})
	return fmt.Errorf("syncguard: write to protected structure at %#x rejected", addr)
}

// Installed reports whether the protections are active.
func (g *Guard) Installed() bool { return g.installed }

// Trapped reports how many writes reached the screen.
func (g *Guard) Trapped() int { return g.trapped }

// Denied returns the rejected-write log.
func (g *Guard) Denied() []DeniedWrite { return g.denied }

// MMU exposes the guard's MMU (tests and the exploit target it).
func (g *Guard) MMU() *mem.MMU { return g.mmu }

// APFlipExploit is the §VII-A bypass: "after getting the root privilege,
// the attack can utilize a write-what-where vulnerability to change the
// Access Permissions (AP) bits of the related page table entry from
// non-writable to writable. After that, the attacker can freely modify the
// vector table without triggering the corresponding synchronous
// introspection."
//
// The exploit's arbitrary write lands through raw physical access — the
// unmediated path the vulnerability provides — and flips the read-only bit
// of every page covering [addr, addr+size). It returns the PTE addresses it
// modified: bytes inside kernel .data that a subsequent asynchronous check
// of area 17 will flag.
func APFlipExploit(image *mem.Image, addr uint64, size int) ([]uint64, error) {
	layout := image.Layout()
	if layout.PTBase == 0 {
		return nil, fmt.Errorf("syncguard: image has no page table to attack")
	}
	if size <= 0 {
		return nil, fmt.Errorf("syncguard: exploit range size %d must be positive", size)
	}
	if addr < layout.Base || addr+uint64(size) > layout.End() {
		return nil, fmt.Errorf("syncguard: exploit range [%#x,+%d) outside the static kernel", addr, size)
	}
	var flipped []uint64
	for a := addr; a < addr+uint64(size); a += mem.PageSize {
		page := (a - layout.Base) / mem.PageSize
		pte := layout.PTBase + page
		b, err := image.Mem().ByteAt(pte)
		if err != nil {
			return nil, err
		}
		if b&mem.PTEReadOnly == 0 {
			continue // already writable; nothing to flip
		}
		if err := image.Mem().Write(pte, []byte{b &^ mem.PTEReadOnly}); err != nil {
			return nil, err
		}
		flipped = append(flipped, pte)
	}
	return flipped, nil
}
