package runner

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"satin/internal/stats"
)

// Metrics is one trial's named measurements, in report order. A slice, not
// a map: the sweep's aggregate table lists metrics in the order the first
// successful trial emitted them, which must not depend on map iteration.
type Metrics []Sample

// Sample is one named measurement.
type Sample struct {
	Name  string
	Value float64
}

// Add appends a measurement and returns the extended Metrics, in the
// append style.
func (m Metrics) Add(name string, value float64) Metrics {
	return append(m, Sample{Name: name, Value: value})
}

// Extend appends every sample of other, preserving order. It lets an
// experiment compose its base metrics with an optional add-on block (e.g.
// profiler attribution) without disturbing the report order of either.
func (m Metrics) Extend(other Metrics) Metrics {
	return append(m, other...)
}

// Failure records a trial that returned an error or panicked.
type Failure struct {
	Seed uint64
	Err  error
}

// Sweep is the deterministic aggregate of a multi-seed experiment: for each
// metric the per-seed samples in seed order, plus any failed seeds. Two
// sweeps over the same seeds render byte-identically regardless of how many
// workers produced them.
type Sweep struct {
	// Name labels the experiment (used in Render's header).
	Name string
	// Seeds lists the seeds of successful trials, ascending.
	Seeds []uint64
	// Failures lists failed trials in seed order.
	Failures []Failure

	keys    []string
	samples map[string][]float64
}

// NewSweep returns an empty sweep ready for AddTrial/AddFailure — the
// incremental construction path used by the campaign engine to merge
// checkpointed cell results back into the same aggregate form live sweeps
// produce. Callers must add trials in seed order to keep the determinism
// guarantee.
func NewSweep(name string) *Sweep {
	return &Sweep{Name: name, samples: map[string][]float64{}}
}

// AddTrial appends one successful trial's metrics. Metric columns appear in
// the order the first trial emitted them; trials must arrive in seed order.
func (s *Sweep) AddTrial(seed uint64, m Metrics) {
	s.Seeds = append(s.Seeds, seed)
	for _, sample := range m {
		if _, seen := s.samples[sample.Name]; !seen {
			s.keys = append(s.keys, sample.Name)
		}
		s.samples[sample.Name] = append(s.samples[sample.Name], sample.Value)
	}
}

// AddFailure records a failed trial.
func (s *Sweep) AddFailure(seed uint64, err error) {
	s.Failures = append(s.Failures, Failure{Seed: seed, Err: err})
}

// RunSweep executes trial for seeds baseSeed..baseSeed+n-1 across the worker
// pool and aggregates the per-seed Metrics in seed order. Trial errors and
// panics become Failures rather than failing the sweep; only a configuration
// error (n < 1) or context cancellation fails the call.
func RunSweep(ctx context.Context, name string, baseSeed uint64, n, workers int, trial func(ctx context.Context, seed uint64) (Metrics, error)) (*Sweep, error) {
	return RunSweepObserved(ctx, name, baseSeed, n, workers, nil, trial)
}

// RunSweepObserved is RunSweep with a live progress observer (may be nil);
// the observer's trial index i corresponds to seed baseSeed+i.
func RunSweepObserved(ctx context.Context, name string, baseSeed uint64, n, workers int, progress Progress, trial func(ctx context.Context, seed uint64) (Metrics, error)) (*Sweep, error) {
	if n < 1 {
		return nil, fmt.Errorf("runner: sweep %q needs at least 1 seed, got %d", name, n)
	}
	results, err := RunObserved(ctx, n, workers, progress, func(ctx context.Context, i int) (Metrics, error) {
		return trial(ctx, baseSeed+uint64(i))
	})
	if err != nil {
		return nil, fmt.Errorf("runner: sweep %q: %w", name, err)
	}
	sw := NewSweep(name)
	for _, r := range results {
		seed := baseSeed + uint64(r.Index)
		if r.Err != nil {
			sw.AddFailure(seed, r.Err)
			continue
		}
		sw.AddTrial(seed, r.Value)
	}
	return sw, nil
}

// Trials reports the total number of trials, including failures.
func (s *Sweep) Trials() int { return len(s.Seeds) + len(s.Failures) }

// Keys returns the metric names in report order.
func (s *Sweep) Keys() []string { return append([]string(nil), s.keys...) }

// Samples returns the per-seed values of one metric, in seed order, or nil
// for an unknown metric.
func (s *Sweep) Samples(key string) []float64 {
	return append([]float64(nil), s.samples[key]...)
}

// Dist returns the distribution summary of one metric over all successful
// seeds.
func (s *Sweep) Dist(key string) stats.Dist { return stats.NewDist(s.samples[key]) }

// WriteCSV exports the per-seed samples as `experiment,metric,seed,value`
// rows (with a header). Rows are ordered metric-major in report order,
// seeds ascending within a metric, so output is byte-identical for any
// worker count. Failed seeds contribute `experiment,__failed__,seed,1`
// rows at the end.
func (s *Sweep) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "metric", "seed", "value"}); err != nil {
		return fmt.Errorf("runner: writing sweep CSV: %w", err)
	}
	for _, key := range s.keys {
		for i, v := range s.samples[key] {
			rec := []string{s.Name, key, strconv.FormatUint(s.Seeds[i], 10), strconv.FormatFloat(v, 'g', -1, 64)}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("runner: writing sweep CSV: %w", err)
			}
		}
	}
	for _, f := range s.Failures {
		if err := cw.Write([]string{s.Name, "__failed__", strconv.FormatUint(f.Seed, 10), "1"}); err != nil {
			return fmt.Errorf("runner: writing sweep CSV: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("runner: writing sweep CSV: %w", err)
	}
	return nil
}

// Render prints the aggregate table: one row per metric with mean, min,
// quartiles, p90, and max over seeds, then any failed seeds.
func (s *Sweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d seeds", s.Name, s.Trials())
	if len(s.Seeds) > 0 {
		fmt.Fprintf(&b, " (%d..%d)", s.Seeds[0], s.Seeds[len(s.Seeds)-1])
	}
	if len(s.Failures) > 0 {
		fmt.Fprintf(&b, ", %d FAILED", len(s.Failures))
	}
	b.WriteString("\n")
	tbl := stats.NewTable("Metric", "Mean", "Min", "P25", "P50", "P75", "P90", "Max")
	for _, key := range s.keys {
		d := s.Dist(key)
		tbl.AddRow(key,
			fmt.Sprintf("%.4g", d.Mean),
			fmt.Sprintf("%.4g", d.Min),
			fmt.Sprintf("%.4g", d.P25),
			fmt.Sprintf("%.4g", d.P50),
			fmt.Sprintf("%.4g", d.P75),
			fmt.Sprintf("%.4g", d.P90),
			fmt.Sprintf("%.4g", d.Max))
	}
	b.WriteString(tbl.String())
	for _, f := range s.Failures {
		fmt.Fprintf(&b, "seed %d FAILED: %v\n", f.Seed, f.Err)
	}
	return b.String()
}
