package runner

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunObservedReportsEveryTrial(t *testing.T) {
	var calls int32
	var lastDone int32
	seen := make([]bool, 10)
	progress := func(done, total, index int, elapsed time.Duration, err error) {
		atomic.AddInt32(&calls, 1)
		atomic.StoreInt32(&lastDone, int32(done))
		if total != 10 {
			t.Errorf("total = %d, want 10", total)
		}
		if elapsed < 0 {
			t.Errorf("negative elapsed %v", elapsed)
		}
		if (err != nil) != (index == 3) {
			t.Errorf("index %d: err = %v", index, err)
		}
		seen[index] = true
	}
	results, err := RunObserved(context.Background(), 10, 4, progress, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			return 0, fmt.Errorf("boom")
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("%d results", len(results))
	}
	if calls != 10 || lastDone != 10 {
		t.Fatalf("progress calls=%d lastDone=%d, want 10/10", calls, lastDone)
	}
	for i, s := range seen {
		if !s {
			t.Errorf("no progress notice for trial %d", i)
		}
	}
}

func TestRunObservedNilProgress(t *testing.T) {
	results, err := RunObserved(context.Background(), 3, 2, nil, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Value != i*i {
			t.Errorf("trial %d: %d", i, r.Value)
		}
	}
}

func TestRunSweepObservedSeedIndices(t *testing.T) {
	const base = 100
	var reported int32
	progress := func(done, total, index int, _ time.Duration, err error) {
		atomic.AddInt32(&reported, 1)
		if index < 0 || index >= 5 {
			t.Errorf("index %d out of range", index)
		}
	}
	sw, err := RunSweepObserved(context.Background(), "t", base, 5, 3, progress,
		func(_ context.Context, seed uint64) (Metrics, error) {
			return Metrics{}.Add("seed", float64(seed)), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if reported != 5 {
		t.Fatalf("progress reported %d trials, want 5", reported)
	}
	for i, v := range sw.Samples("seed") {
		if v != float64(base+i) {
			t.Errorf("sample %d = %v, want %d", i, v, base+i)
		}
	}
}

func TestSweepWriteCSV(t *testing.T) {
	sw, err := RunSweep(context.Background(), "exp", 7, 3, 1,
		func(_ context.Context, seed uint64) (Metrics, error) {
			if seed == 8 {
				return nil, fmt.Errorf("bad seed")
			}
			return Metrics{}.Add("alarms", float64(seed)).Add("rounds", 19), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sw.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "experiment,metric,seed,value\n" +
		"exp,alarms,7,7\n" +
		"exp,alarms,9,9\n" +
		"exp,rounds,7,19\n" +
		"exp,rounds,9,19\n" +
		"exp,__failed__,8,1\n"
	if buf.String() != want {
		t.Fatalf("CSV:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestSweepCSVDeterministicAcrossWorkers: the export must not depend on
// completion order.
func TestSweepCSVDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		sw, err := RunSweep(context.Background(), "d", 1, 16, workers,
			func(_ context.Context, seed uint64) (Metrics, error) {
				return Metrics{}.Add("m", float64(seed*seed)), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sw.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run(1) != run(8) {
		t.Fatal("sweep CSV differs between workers=1 and workers=8")
	}
}
