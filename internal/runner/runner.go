// Package runner fans independent simulation trials out across a bounded
// worker pool and merges their results deterministically.
//
// Per DESIGN.md §4.5 every simulation in this repository is single-threaded
// internally — one discrete-event engine, one goroutine — so a multi-seed
// sweep (seed × experiment × config variant) is embarrassingly parallel.
// The runner exploits that: Run executes N trials on up to GOMAXPROCS
// goroutines, captures per-trial panics as failed trials rather than
// crashed sweeps, honors context cancellation, and always returns results
// in trial order, so aggregated output is byte-identical regardless of the
// worker count.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Result is the outcome of one trial. Exactly one of Value and Err is
// meaningful: Err is non-nil if the trial returned an error, panicked
// (a *PanicError), or was cancelled before it started (the context error).
type Result[T any] struct {
	// Index is the trial's index in 0..N-1; results are always ordered by it.
	Index int
	Value T
	Err   error
}

// PanicError wraps a panic recovered from a trial, preserving the panic
// value and the goroutine stack at the point of the panic.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value; the stack is available on the field.
func (e *PanicError) Error() string { return fmt.Sprintf("trial panicked: %v", e.Value) }

// Workers clamps an untrusted worker-count flag: values < 1 select
// GOMAXPROCS, and the count never exceeds the number of trials.
func Workers(workers, trials int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Progress receives a live completion notice for each finished trial:
// how many trials are done so far out of total, which trial index just
// finished, its wall-clock duration, and its error (nil on success).
// Notices arrive from worker goroutines, serialized under a lock, but in
// COMPLETION order, which depends on scheduling — route progress output to
// a side channel (stderr, a TUI), never into deterministic results. The
// wall-clock duration is diagnostic only and is deliberately absent from
// Sweep aggregates, which must stay byte-identical across worker counts.
type Progress func(done, total, index int, elapsed time.Duration, err error)

// Run executes trials 0..n-1 across at most `workers` goroutines (< 1 means
// GOMAXPROCS) and returns one Result per trial, ordered by index. A trial
// that panics reports a *PanicError in its Result; the sweep continues.
// When ctx is cancelled, running trials finish, unstarted trials report
// ctx's error, and Run returns ctx's error alongside the partial results.
func Run[T any](ctx context.Context, n, workers int, trial func(ctx context.Context, i int) (T, error)) ([]Result[T], error) {
	return RunObserved(ctx, n, workers, nil, trial)
}

// RunObserved is Run with a live progress observer; progress may be nil.
func RunObserved[T any](ctx context.Context, n, workers int, progress Progress, trial func(ctx context.Context, i int) (T, error)) ([]Result[T], error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative trial count %d", n)
	}
	if trial == nil {
		return nil, fmt.Errorf("runner: nil trial function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result[T], n)
	for i := range results {
		results[i].Index = i
	}
	if n == 0 {
		return results, ctx.Err()
	}
	workers = Workers(workers, n)

	var progressMu sync.Mutex
	done := 0
	report := func(i int, elapsed time.Duration, err error) {
		if progress == nil {
			return
		}
		progressMu.Lock()
		done++
		progress(done, n, i, elapsed, err)
		progressMu.Unlock()
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				start := time.Now()
				results[i].Value, results[i].Err = runTrial(ctx, i, trial)
				report(i, time.Since(start), results[i].Err)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case indices <- i:
		case <-ctx.Done():
			for ; i < n; i++ {
				results[i].Err = ctx.Err()
			}
			break feed
		}
	}
	close(indices)
	wg.Wait()
	return results, ctx.Err()
}

// runTrial runs one trial with panic capture.
func runTrial[T any](ctx context.Context, i int, trial func(ctx context.Context, i int) (T, error)) (value T, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			var zero T
			value, err = zero, &PanicError{Value: r, Stack: buf}
		}
	}()
	return trial(ctx, i)
}

// FirstErr returns the lowest-index trial error, or nil if every trial
// succeeded. Use it when one failure should fail the whole sweep.
func FirstErr[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("runner: trial %d: %w", r.Index, r.Err)
		}
	}
	return nil
}
