package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		results, err := Run(context.Background(), 50, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != 50 {
			t.Fatalf("workers=%d: %d results, want 50", workers, len(results))
		}
		for i, r := range results {
			if r.Index != i || r.Value != i*i || r.Err != nil {
				t.Fatalf("workers=%d: results[%d] = %+v", workers, i, r)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	_, err := Run(context.Background(), 64, workers, func(_ context.Context, i int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent trials, cap is %d", p, workers)
	}
}

func TestRunCapturesPanicsAsFailedTrials(t *testing.T) {
	results, err := Run(context.Background(), 10, 4, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			panic("seed exploded")
		}
		if i == 7 {
			return 0, errors.New("plain failure")
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if !errors.As(results[3].Err, &pe) {
		t.Fatalf("results[3].Err = %v, want *PanicError", results[3].Err)
	}
	if pe.Value != "seed exploded" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {%v, %d stack bytes}", pe.Value, len(pe.Stack))
	}
	if !strings.Contains(pe.Error(), "seed exploded") {
		t.Errorf("PanicError.Error() = %q", pe.Error())
	}
	if results[7].Err == nil || results[7].Err.Error() != "plain failure" {
		t.Errorf("results[7].Err = %v", results[7].Err)
	}
	for _, i := range []int{0, 1, 2, 4, 5, 6, 8, 9} {
		if results[i].Err != nil || results[i].Value != i {
			t.Errorf("healthy trial %d = %+v", i, results[i])
		}
	}
	if ferr := FirstErr(results); ferr == nil || !strings.Contains(ferr.Error(), "trial 3") {
		t.Errorf("FirstErr = %v, want trial 3's panic", ferr)
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	var once sync.Once
	results, err := Run(ctx, 100, 2, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		once.Do(func() { cancel(); close(release) })
		<-release
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if len(results) != 100 {
		t.Fatalf("%d results, want 100 (partial results on cancel)", len(results))
	}
	cancelled := 0
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no trial reported the cancellation")
	}
	if int(started.Load())+cancelled < 100 {
		t.Errorf("started %d + cancelled %d < 100: trials lost", started.Load(), cancelled)
	}
}

func TestRunEdgeCases(t *testing.T) {
	if _, err := Run(context.Background(), -1, 1, func(_ context.Context, i int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative n did not error")
	}
	if _, err := Run[int](context.Background(), 1, 1, nil); err == nil {
		t.Error("nil trial did not error")
	}
	results, err := Run(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || len(results) != 0 {
		t.Errorf("n=0: results=%v err=%v", results, err)
	}
	// A nil context is tolerated (background).
	if _, err := Run(nil, 2, 1, func(_ context.Context, i int) (int, error) { return i, nil }); err != nil { //nolint:staticcheck
		t.Errorf("nil ctx: %v", err)
	}
}

func TestWorkersClamps(t *testing.T) {
	cases := []struct{ workers, trials, wantMax int }{
		{5, 3, 3},   // never more workers than trials
		{2, 100, 2}, // explicit cap respected
		{1, 0, 1},   // at least one
	}
	for _, c := range cases {
		got := Workers(c.workers, c.trials)
		if got > c.wantMax || got < 1 {
			t.Errorf("Workers(%d, %d) = %d, want in [1, %d]", c.workers, c.trials, got, c.wantMax)
		}
	}
	if got := Workers(0, 1000); got < 1 {
		t.Errorf("Workers(0, 1000) = %d, want GOMAXPROCS-ish >= 1", got)
	}
}

func TestRunSweepAggregates(t *testing.T) {
	sw, err := RunSweep(context.Background(), "toy", 10, 5, 3, func(_ context.Context, seed uint64) (Metrics, error) {
		var m Metrics
		m = m.Add("seed", float64(seed))
		m = m.Add("double", float64(2*seed))
		return m, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sw.Keys(); len(got) != 2 || got[0] != "seed" || got[1] != "double" {
		t.Fatalf("Keys = %v", got)
	}
	if got := sw.Samples("seed"); fmt.Sprint(got) != "[10 11 12 13 14]" {
		t.Errorf("Samples(seed) = %v, want seed order", got)
	}
	d := sw.Dist("double")
	if d.N != 5 || d.Min != 20 || d.Max != 28 || d.Mean != 24 || d.P50 != 24 {
		t.Errorf("Dist(double) = %+v", d)
	}
	if sw.Trials() != 5 || len(sw.Failures) != 0 {
		t.Errorf("Trials/Failures = %d/%d", sw.Trials(), len(sw.Failures))
	}
	if out := sw.Render(); !strings.Contains(out, "toy: 5 seeds (10..14)") || !strings.Contains(out, "double") {
		t.Errorf("Render:\n%s", out)
	}
}

func TestRunSweepRecordsFailures(t *testing.T) {
	sw, err := RunSweep(context.Background(), "flaky", 0, 6, 2, func(_ context.Context, seed uint64) (Metrics, error) {
		switch seed {
		case 2:
			return nil, errors.New("bad seed")
		case 4:
			panic("boom")
		}
		return Metrics{}.Add("v", float64(seed)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Failures) != 2 || sw.Failures[0].Seed != 2 || sw.Failures[1].Seed != 4 {
		t.Fatalf("Failures = %+v", sw.Failures)
	}
	var pe *PanicError
	if !errors.As(sw.Failures[1].Err, &pe) {
		t.Errorf("seed 4 error = %v, want *PanicError", sw.Failures[1].Err)
	}
	if got := sw.Samples("v"); fmt.Sprint(got) != "[0 1 3 5]" {
		t.Errorf("Samples(v) = %v", got)
	}
	if out := sw.Render(); !strings.Contains(out, "2 FAILED") || !strings.Contains(out, "seed 2 FAILED: bad seed") {
		t.Errorf("Render:\n%s", out)
	}
}

func TestRunSweepRejectsEmpty(t *testing.T) {
	if _, err := RunSweep(context.Background(), "x", 0, 0, 1, func(_ context.Context, seed uint64) (Metrics, error) {
		return nil, nil
	}); err == nil {
		t.Error("0-seed sweep did not error")
	}
}

// TestDeterminismAcrossWorkerCounts is the runner-level half of the
// determinism guarantee: the same trial function over the same seeds must
// render byte-identically for any worker count, even when per-trial
// durations vary wildly.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	trial := func(_ context.Context, seed uint64) (Metrics, error) {
		// Vary completion order: later seeds finish first.
		time.Sleep(time.Duration(16-seed%16) * time.Millisecond)
		if seed%7 == 3 {
			return nil, fmt.Errorf("synthetic failure at seed %d", seed)
		}
		m := Metrics{}.Add("value", float64(seed*seed%101))
		return m.Add("parity", float64(seed%2)), nil
	}
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		sw, err := RunSweep(context.Background(), "det", 1, 16, workers, trial)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := sw.Render()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d output differs:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s", workers, want, workers, got)
		}
	}
}
