package runner

import "testing"

// TestMetricsExtend: Extend concatenates in order and leaves the receiver's
// samples first — the contract the profiled sweep relies on to keep its
// add-on attribution block after the base detection metrics.
func TestMetricsExtend(t *testing.T) {
	base := Metrics{}.Add("a", 1).Add("b", 2)
	extra := Metrics{}.Add("c", 3)
	got := base.Extend(extra)
	want := []Sample{{"a", 1}, {"b", 2}, {"c", 3}}
	if len(got) != len(want) {
		t.Fatalf("Extend produced %d samples, want %d", len(got), len(want))
	}
	for i, s := range want {
		if got[i] != s {
			t.Fatalf("sample %d = %+v, want %+v", i, got[i], s)
		}
	}
	if empty := Metrics(nil).Extend(nil); len(empty) != 0 {
		t.Fatalf("nil.Extend(nil) = %v, want empty", empty)
	}
}
