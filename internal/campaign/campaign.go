// Package campaign is the fleet-scale experiment driver: a versioned,
// serializable description of a grid of simulation cells — one scenario or
// registry experiment crossed with spec-field axes, fault plans, and a seed
// range — plus the machinery to expand it, execute it across the worker
// pool, checkpoint completed cells, and resume a killed run exactly where
// it stopped.
//
// The spec follows the same contract as internal/spec: Parse reads strict
// JSON (unknown keys rejected, version mandatory), Validate states every
// semantic rule with a distinct error per field class, and Canonicalize
// produces a normal form on which Marshal/Parse round trips losslessly and
// Canonicalize is idempotent. The canonical form is also the campaign's
// identity: the result file embeds it once, and resume refuses a result
// file whose embedded campaign differs from the one being run.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"satin/internal/experiment"
	"satin/internal/faultinject"
	"satin/internal/spec"
)

// CurrentVersion is the campaign format this build reads and writes.
const CurrentVersion = 1

// Spec is one complete campaign description: a template (either a scenario
// spec or a registered experiment name), the axes to cross it with, and the
// seed range every resulting combination sweeps over.
type Spec struct {
	// Version must be CurrentVersion.
	Version int `json:"version"`
	// Name labels the campaign in result rendering; purely descriptive.
	Name string `json:"name,omitempty"`
	// Experiment names a registry experiment with a per-seed trial form
	// (detection, evasion, race). Mutually exclusive with Scenario; grid
	// and fault axes need a scenario to patch.
	Experiment string `json:"experiment,omitempty"`
	// Scenario is the spec template every cell is stamped from.
	Scenario *spec.Spec `json:"scenario,omitempty"`
	// Grid lists the spec-field axes, crossed in declaration order (the
	// first axis varies slowest).
	Grid []Axis `json:"grid,omitempty"`
	// Faults is an optional axis of fault-injection plans in the -faults
	// grammar ("" = no faults), applied to the scenario's faults field.
	Faults []string `json:"faults,omitempty"`
	// Seeds is the seed range every combination runs over.
	Seeds SeedRange `json:"seeds"`
}

// Axis is one grid dimension: a dotted spec-field path and the values it
// takes. Values must be JSON scalars — the only values whose canonical
// encoding survives the spec round trip byte-identically.
type Axis struct {
	Path   string            `json:"path"`
	Values []json.RawMessage `json:"values"`
}

// SeedRange is the contiguous seed interval Base..Base+Count-1.
type SeedRange struct {
	Base  uint64 `json:"base"`
	Count int    `json:"count"`
}

// Cell is one expanded campaign point: a fully canonical scenario (or a
// registry experiment name) at one seed.
type Cell struct {
	// Index is the cell's position in the flat expansion, 0..N-1. The
	// result file keys checkpoints by it.
	Index int
	// Combo identifies the (grid × faults) combination the cell belongs
	// to; cells of one combo merge into one sweep.
	Combo int
	// ComboLabel renders the combination ("evader.kind=fast faults=-").
	ComboLabel string
	// Seed is the cell's root seed.
	Seed uint64
	// Scenario is the instantiated spec for scenario campaigns, nil for
	// experiment campaigns.
	Scenario *spec.Spec
	// Experiment is the registry name for experiment campaigns.
	Experiment string
}

// Label renders the cell for progress output.
func (c Cell) Label() string {
	return fmt.Sprintf("%s seed=%d", c.ComboLabel, c.Seed)
}

// Parse decodes a campaign from strict JSON: unknown keys, trailing data,
// and missing or mismatched versions are errors. Parse does not validate
// semantics — compose with Validate or Canonicalize.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Spec
	if err := dec.Decode(&c); err != nil {
		return Spec{}, fmt.Errorf("campaign: parse: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return Spec{}, fmt.Errorf("campaign: trailing data after the campaign object")
	}
	if c.Version == 0 {
		return Spec{}, fmt.Errorf(`campaign: missing version (this build writes "version": %d)`, CurrentVersion)
	}
	if c.Version != CurrentVersion {
		return Spec{}, fmt.Errorf("campaign: version %d unsupported (this build reads version %d)", c.Version, CurrentVersion)
	}
	return c, nil
}

// Marshal renders the campaign as indented JSON with a trailing newline —
// the committed-file form. Marshal(Canonicalize(c)) then Parse is lossless.
func Marshal(c Spec) ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: marshal: %w", err)
	}
	return append(b, '\n'), nil
}

// Validate checks every semantic rule, each field class with its own error.
// Grid axes and fault plans are validated by expanding the full cell list,
// so a typo'd path or an enum value the spec layer rejects surfaces here
// with the offending axis named.
func Validate(c Spec) error {
	if c.Version != 0 && c.Version != CurrentVersion {
		return fmt.Errorf("campaign: version %d unsupported (this build reads version %d)", c.Version, CurrentVersion)
	}
	switch {
	case c.Experiment == "" && c.Scenario == nil:
		return fmt.Errorf("campaign: needs either an experiment name or a scenario template")
	case c.Experiment != "" && c.Scenario != nil:
		return fmt.Errorf("campaign: experiment and scenario are mutually exclusive")
	case c.Experiment != "":
		def, ok := experiment.Lookup(c.Experiment)
		if !ok {
			return fmt.Errorf("campaign: unknown experiment %q (known: %s)", c.Experiment, strings.Join(experiment.Names(), ", "))
		}
		if def.Trial == nil {
			return fmt.Errorf("campaign: experiment %q has no per-seed trial form (sweepable: %s)", c.Experiment, strings.Join(trialNames(), ", "))
		}
		if len(c.Grid) > 0 {
			return fmt.Errorf("campaign: grid axes need a scenario template to patch, not an experiment")
		}
		if len(c.Faults) > 0 {
			return fmt.Errorf("campaign: a fault axis needs a scenario template to patch, not an experiment")
		}
	default:
		if c.Scenario.Export != nil {
			return fmt.Errorf("campaign: scenario.export is not allowed (cells write the result file, not per-run artifacts)")
		}
		if err := spec.Validate(*c.Scenario); err != nil {
			return fmt.Errorf("campaign: scenario: %w", err)
		}
	}
	if c.Seeds.Count < 1 {
		return fmt.Errorf("campaign: seeds.count %d: need at least 1", c.Seeds.Count)
	}
	seen := map[string]bool{}
	for i, ax := range c.Grid {
		if ax.Path == "" {
			return fmt.Errorf("campaign: grid[%d]: empty path", i)
		}
		if seen[ax.Path] {
			return fmt.Errorf("campaign: grid repeats path %q", ax.Path)
		}
		seen[ax.Path] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("campaign: grid[%d] (%s): no values", i, ax.Path)
		}
	}
	_, err := Cells(c)
	return err
}

// trialNames lists the registry experiments with a per-seed trial form.
func trialNames() []string {
	var names []string
	for _, d := range experiment.Registry() {
		if d.Trial != nil {
			names = append(names, d.Name)
		}
	}
	return names
}

// Canonicalize validates the campaign and returns its normal form: version
// filled (the scenario template's too), axis values compacted, fault plans
// rewritten to their Plan.String() fixed point. Beyond the version fill the
// scenario template is validated but kept verbatim — NOT
// spec-canonicalized — because materialized defaults would
// poison grid patches (a template canonicalized with a fast evader gains
// sleep/threshold values that an `evader.kind=none` axis value would then
// orphan). Cells canonicalize after patching, so every executed spec is
// still fully canonical. The campaign's canonical form is its identity in
// the result file.
func Canonicalize(c Spec) (Spec, error) {
	out := c
	if out.Version == 0 {
		out.Version = CurrentVersion
	}
	if c.Scenario != nil {
		s := c.Scenario.Clone()
		if s.Version == 0 {
			s.Version = spec.CurrentVersion
		}
		out.Scenario = &s
	}
	// Empty slices normalize to nil: omitempty drops them from the
	// marshaled form, so nil is the only shape that survives a round trip.
	out.Grid, out.Faults = nil, nil
	if len(c.Grid) > 0 {
		out.Grid = make([]Axis, len(c.Grid))
		for i, ax := range c.Grid {
			out.Grid[i] = Axis{Path: ax.Path, Values: make([]json.RawMessage, len(ax.Values))}
			for j, v := range ax.Values {
				var buf bytes.Buffer
				if err := json.Compact(&buf, v); err != nil {
					return Spec{}, fmt.Errorf("campaign: grid[%d] (%s) value %d: %w", i, ax.Path, j, err)
				}
				out.Grid[i].Values[j] = json.RawMessage(buf.Bytes())
			}
		}
	}
	if len(c.Faults) > 0 {
		out.Faults = make([]string, len(c.Faults))
		for i, fs := range c.Faults {
			if fs == "" {
				continue
			}
			plan, err := faultinject.ParsePlan(fs)
			if err != nil {
				return Spec{}, fmt.Errorf("campaign: faults[%d]: %w", i, err)
			}
			out.Faults[i] = plan.String()
		}
	}
	if err := Validate(out); err != nil {
		return Spec{}, err
	}
	return out, nil
}

// maxCells bounds the expansion: campaigns above it are a spec mistake
// (or a fuzzer), not a workload this driver should try to materialize.
const maxCells = 1 << 20

// countCells computes the expansion size arithmetically — before anything
// is allocated — so an absurd seed range or axis product fails fast.
func countCells(c Spec) (int, error) {
	total := c.Seeds.Count
	mul := func(n int) {
		if n > 0 && total > maxCells/n {
			total = maxCells + 1
			return
		}
		total *= n
	}
	for _, ax := range c.Grid {
		mul(len(ax.Values))
	}
	if len(c.Faults) > 0 {
		mul(len(c.Faults))
	}
	if total > maxCells {
		return 0, fmt.Errorf("campaign: expansion exceeds the %d-cell limit", maxCells)
	}
	return total, nil
}

// Cells expands the campaign into its flat cell list: grid combinations in
// row-major order (first axis slowest), crossed with the fault axis, each
// combination swept over the seed range (seeds vary fastest). The expansion
// is the campaign's execution order and the result file's index space.
func Cells(c Spec) ([]Cell, error) {
	if _, err := countCells(c); err != nil {
		return nil, err
	}
	if c.Experiment != "" {
		cells := make([]Cell, c.Seeds.Count)
		for i := range cells {
			cells[i] = Cell{
				Index:      i,
				Combo:      0,
				ComboLabel: "experiment=" + c.Experiment,
				Seed:       c.Seeds.Base + uint64(i),
				Experiment: c.Experiment,
			}
		}
		return cells, nil
	}
	if c.Scenario == nil {
		return nil, fmt.Errorf("campaign: needs either an experiment name or a scenario template")
	}
	combos, err := expandCombos(c)
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, 0, len(combos)*c.Seeds.Count)
	for ci, combo := range combos {
		for s := 0; s < c.Seeds.Count; s++ {
			seed := c.Seeds.Base + uint64(s)
			inst := spec.Instantiate(combo.spec, seed)
			cells = append(cells, Cell{
				Index:      len(cells),
				Combo:      ci,
				ComboLabel: combo.label,
				Seed:       seed,
				Scenario:   &inst,
			})
		}
	}
	return cells, nil
}

// combo is one fully-patched, canonical scenario plus its label.
type combo struct {
	label string
	spec  spec.Spec
}

// expandCombos crosses the grid axes and the fault axis over the scenario
// template, canonicalizing each combination so invalid values fail here
// with the combination named.
func expandCombos(c Spec) ([]combo, error) {
	base := *c.Scenario
	combos := []combo{{spec: base}}
	for _, ax := range c.Grid {
		next := make([]combo, 0, len(combos)*len(ax.Values))
		for _, cur := range combos {
			for _, v := range ax.Values {
				patched, err := spec.Patch(cur.spec, ax.Path, v)
				if err != nil {
					return nil, fmt.Errorf("campaign: %w", err)
				}
				next = append(next, combo{
					label: joinLabel(cur.label, ax.Path+"="+scalarLabel(v)),
					spec:  patched,
				})
			}
		}
		combos = next
	}
	if len(c.Faults) > 0 {
		next := make([]combo, 0, len(combos)*len(c.Faults))
		for _, cur := range combos {
			for _, fs := range c.Faults {
				s := cur.spec.Clone()
				s.Faults = fs
				label := fs
				if label == "" {
					label = "-"
				}
				next = append(next, combo{
					label: joinLabel(cur.label, "faults="+label),
					spec:  s,
				})
			}
		}
		combos = next
	}
	for i := range combos {
		canon, err := spec.Canonicalize(combos[i].spec)
		if err != nil {
			label := combos[i].label
			if label == "" {
				label = "base"
			}
			return nil, fmt.Errorf("campaign: combination %q: %w", label, err)
		}
		combos[i].spec = canon
		if combos[i].label == "" {
			combos[i].label = "base"
		}
	}
	return combos, nil
}

// joinLabel appends one axis assignment to a combo label.
func joinLabel(cur, part string) string {
	if cur == "" {
		return part
	}
	return cur + " " + part
}

// scalarLabel renders a grid value for labels: strings lose their quotes,
// numbers and booleans print verbatim.
func scalarLabel(v json.RawMessage) string {
	var s string
	if err := json.Unmarshal(v, &s); err == nil {
		return s
	}
	return string(v)
}
