package campaign

import (
	"bytes"
	"fmt"
	"sort"
)

// Merge combines per-shard result files into one finalized campaign result
// at outPath. Every input must embed the same canonical campaign (a shard
// file never absorbs foreign cells, and neither does a merge), and together
// the inputs must cover every cell of the expansion. The output is the
// canonical finalized form — byte-identical to a single-process Run of the
// same campaign, for any shard count and any lease or kill history.
//
// The same cell may appear in several inputs (a lease that expired mid-run
// was reassigned, and both workers eventually uploaded): cells are
// deterministic, so duplicates are tolerated as long as their records agree
// byte for byte. Records that disagree mean non-determinism or corruption,
// and fail the merge naming the cell.
func Merge(outPath string, shardPaths ...string) (int, error) {
	if len(shardPaths) == 0 {
		return 0, fmt.Errorf("campaign: merge: no shard files")
	}
	var specBytes []byte
	done := map[int]CellResult{}
	for _, path := range shardPaths {
		shardSpec, results, _, err := ReadResults(path)
		if err != nil {
			return 0, fmt.Errorf("campaign: merge: %s: %w", path, err)
		}
		if specBytes == nil {
			specBytes = shardSpec
		} else if !bytes.Equal(specBytes, shardSpec) {
			return 0, fmt.Errorf("campaign: merge: %s belongs to a different campaign than %s (embedded specs differ)", path, shardPaths[0])
		}
		for _, res := range results {
			prev, dup := done[res.Index]
			if !dup {
				done[res.Index] = res
				continue
			}
			if !bytes.Equal(encodeCell(prev), encodeCell(res)) {
				return 0, fmt.Errorf("campaign: merge: cell %d has conflicting results across shard files (%s disagrees with an earlier shard)", res.Index, path)
			}
		}
	}

	c, err := Parse(specBytes)
	if err != nil {
		return 0, fmt.Errorf("campaign: merge: embedded spec: %w", err)
	}
	cells, err := Cells(c)
	if err != nil {
		return 0, fmt.Errorf("campaign: merge: embedded spec: %w", err)
	}
	ordered := make([]CellResult, 0, len(cells))
	for i := range cells {
		res, ok := done[i]
		if !ok {
			return 0, fmt.Errorf("campaign: merge: cell %d missing (shards cover %d of %d cells)", i, len(done), len(cells))
		}
		ordered = append(ordered, res)
	}
	if len(done) > len(cells) {
		return 0, fmt.Errorf("campaign: merge: shards hold %d cells but the campaign expands to %d", len(done), len(cells))
	}
	if err := writeFinalized(outPath, specBytes, ordered); err != nil {
		return 0, fmt.Errorf("campaign: merge: %w", err)
	}
	return len(cells), nil
}

// MergeCheck verifies, without writing anything, that data is a finalized
// result file for the campaign whose canonical spec is specBytes. Servers
// use it to sanity-check a merge target; it is also handy in tests.
func MergeCheck(data, specBytes []byte) error {
	gotSpec, rest, err := decodeHeader(data)
	if err != nil {
		return err
	}
	if !bytes.Equal(gotSpec, specBytes) {
		return fmt.Errorf("campaign: merged file embeds a different campaign")
	}
	_, _, finalized, err := decodeRecords(rest, true)
	if err != nil {
		return err
	}
	if !finalized {
		return fmt.Errorf("campaign: merged file has no footer")
	}
	return nil
}

// ReadFile is ReadResults on an in-memory image — the upload-validation
// form. It returns the embedded canonical spec and the cells in index order.
func ReadFile(data []byte) (specBytes []byte, results []CellResult, finalized bool, err error) {
	specBytes, rest, err := decodeHeader(data)
	if err != nil {
		return nil, nil, false, err
	}
	done, _, finalized, err := decodeRecords(rest, true)
	if err != nil {
		return nil, nil, false, err
	}
	indices := make([]int, 0, len(done))
	for i := range done {
		indices = append(indices, i)
	}
	sort.Ints(indices)
	for _, i := range indices {
		results = append(results, done[i])
	}
	return specBytes, results, finalized, nil
}
