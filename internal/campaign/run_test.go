package campaign_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"satin/internal/campaign"
	"satin/internal/obs"
	"satin/internal/runner"
	"satin/internal/spec"
	"satin/internal/trace"
)

// fakeTrial is a deterministic stand-in for the real simulation trial: a
// pure function of the instantiated spec, fast enough to run the 24-cell
// grid hundreds of times.
func fakeTrial(s spec.Spec) (runner.Metrics, error) {
	m := runner.Metrics{}.Add("seed", float64(s.Seed))
	if s.Defense.SATIN != nil {
		m = m.Add("rounds", float64(s.Defense.SATIN.MaxRounds))
	}
	evader := 0.0
	if s.Evader.Kind == spec.EvaderFast {
		evader = 1
	}
	m = m.Add("evader", evader)
	if s.Faults != "" {
		m = m.Add("faulted", 1)
	}
	return m, nil
}

func runToFile(t *testing.T, path string, opt campaign.RunOptions) campaign.RunResult {
	t.Helper()
	if opt.SpecTrial == nil {
		opt.SpecTrial = fakeTrial
	}
	res, err := campaign.Run(context.Background(), parseGrid(t), path, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func fileBytes(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return b
}

// TestWorkerCountInvariance: the finalized result file is byte-identical
// for 1 worker and 8 workers.
func TestWorkerCountInvariance(t *testing.T) {
	dir := t.TempDir()
	serial := filepath.Join(dir, "serial.result")
	parallel := filepath.Join(dir, "parallel.result")
	resSerial := runToFile(t, serial, campaign.RunOptions{Workers: 1})
	resParallel := runToFile(t, parallel, campaign.RunOptions{Workers: 8})
	if !resSerial.Finalized || !resParallel.Finalized {
		t.Fatalf("runs not finalized: serial %v, parallel %v", resSerial.Finalized, resParallel.Finalized)
	}
	if !bytes.Equal(fileBytes(t, serial), fileBytes(t, parallel)) {
		t.Fatalf("result files differ between 1 and 8 workers")
	}
}

// TestKillResumeByteIdentical: a campaign stopped part-way (MaxCells, the
// deterministic kill) and resumed — twice, with different worker counts —
// finalizes byte-identical to an uninterrupted single-worker run.
func TestKillResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	uninterrupted := filepath.Join(dir, "full.result")
	runToFile(t, uninterrupted, campaign.RunOptions{Workers: 1})

	resumed := filepath.Join(dir, "resumed.result")
	first := runToFile(t, resumed, campaign.RunOptions{Workers: 8, MaxCells: 7})
	if first.Finalized || first.NewlyDone != 7 {
		t.Fatalf("first leg: finalized %v, newly done %d (want 7)", first.Finalized, first.NewlyDone)
	}
	second := runToFile(t, resumed, campaign.RunOptions{Workers: 3, MaxCells: 9})
	if second.Finalized || second.NewlyDone != 9 {
		t.Fatalf("second leg: finalized %v, newly done %d (want 9)", second.Finalized, second.NewlyDone)
	}
	last := runToFile(t, resumed, campaign.RunOptions{Workers: 5})
	if !last.Finalized {
		t.Fatalf("final leg did not finalize")
	}
	if last.NewlyDone != 24-7-9 {
		t.Fatalf("final leg reran cells: newly done %d, want %d", last.NewlyDone, 24-7-9)
	}
	if !bytes.Equal(fileBytes(t, uninterrupted), fileBytes(t, resumed)) {
		t.Fatalf("resumed result differs from uninterrupted run")
	}
}

// TestCorruptTailResume: a record torn mid-write by a hard kill is dropped
// on resume, its cell reruns, and the final file is still byte-identical.
func TestCorruptTailResume(t *testing.T) {
	dir := t.TempDir()
	uninterrupted := filepath.Join(dir, "full.result")
	runToFile(t, uninterrupted, campaign.RunOptions{Workers: 1})

	torn := filepath.Join(dir, "torn.result")
	runToFile(t, torn, campaign.RunOptions{Workers: 2, MaxCells: 6})
	data := fileBytes(t, torn)
	if err := os.WriteFile(torn, data[:len(data)-11], 0o644); err != nil {
		t.Fatal(err)
	}
	res := runToFile(t, torn, campaign.RunOptions{Workers: 4})
	if !res.Finalized {
		t.Fatalf("did not finalize after torn-tail resume")
	}
	if res.NewlyDone != 24-5 {
		t.Fatalf("newly done %d after tearing one record off 6, want %d", res.NewlyDone, 24-5)
	}
	if !bytes.Equal(fileBytes(t, uninterrupted), fileBytes(t, torn)) {
		t.Fatalf("torn-tail resume differs from uninterrupted run")
	}
}

// TestResultFileIdentity: a result file never absorbs cells from a
// different campaign.
func TestResultFileIdentity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.result")
	runToFile(t, path, campaign.RunOptions{Workers: 2, MaxCells: 3})

	other := parseGrid(t)
	other.Seeds.Count = 2
	_, err := campaign.Run(context.Background(), other, path, campaign.RunOptions{SpecTrial: fakeTrial})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("error = %v, want a different-campaign rejection", err)
	}
}

// TestFailedCellsCheckpointAndRender: deterministic trial failures are
// results — checkpointed, not rerun on resume, rendered as sweep failures.
func TestFailedCellsCheckpointAndRender(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.result")
	failing := func(s spec.Spec) (runner.Metrics, error) {
		if s.Seed == 2 && s.Evader.Kind == spec.EvaderNone {
			return nil, fmt.Errorf("synthetic failure")
		}
		return fakeTrial(s)
	}
	res := runToFile(t, path, campaign.RunOptions{Workers: 1, SpecTrial: failing})
	if !res.Finalized {
		t.Fatalf("failures must not block finalization")
	}
	failures := 0
	for _, r := range res.Results {
		if r.Failed() {
			failures++
		}
	}
	if failures != 4 {
		t.Fatalf("got %d failed cells, want 4 (evader=none × 2 round counts × 2 fault plans at seed 2)", failures)
	}
	sweeps := campaign.MergeSweeps(res.Cells, res.Results)
	if len(sweeps) != 8 {
		t.Fatalf("got %d sweeps, want 8 combos", len(sweeps))
	}
	rendered := 0
	for _, sw := range sweeps {
		rendered += len(sw.Failures)
	}
	if rendered != failures {
		t.Fatalf("sweeps render %d failures, want %d", rendered, failures)
	}
	// Resume reruns nothing: failures are checkpointed results.
	res2 := runToFile(t, path, campaign.RunOptions{Workers: 1, SpecTrial: failing})
	if res2.NewlyDone != 0 {
		t.Fatalf("resume after failures reran %d cells", res2.NewlyDone)
	}
}

// TestCellEventsOnBus: every completed cell publishes one KindCell event.
func TestCellEventsOnBus(t *testing.T) {
	dir := t.TempDir()
	bus := obs.NewBus()
	var events []trace.Event
	bus.Subscribe(func(e trace.Event) { events = append(events, e) })
	res := runToFile(t, filepath.Join(dir, "bus.result"), campaign.RunOptions{Workers: 1, Bus: bus})
	if len(events) != len(res.Cells) {
		t.Fatalf("got %d bus events, want %d", len(events), len(res.Cells))
	}
	seen := map[int]bool{}
	for _, e := range events {
		if e.Kind != trace.KindCell {
			t.Fatalf("event kind %q, want %q", e.Kind, trace.KindCell)
		}
		if e.Core != -1 || e.At != 0 {
			t.Fatalf("cell event has core %d at %v; campaigns have no virtual clock", e.Core, e.At)
		}
		if seen[e.Area] {
			t.Fatalf("cell %d published twice", e.Area)
		}
		seen[e.Area] = true
	}
}

// TestExperimentCampaignRuns: registry-experiment campaigns dispatch
// through the experiment's trial form without a spec trial injected.
func TestExperimentCampaignRuns(t *testing.T) {
	c, err := campaign.Parse([]byte(`{"version": 1, "experiment": "evasion", "seeds": {"base": 1, "count": 1}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	path := filepath.Join(t.TempDir(), "exp.result")
	res, err := campaign.Run(context.Background(), c, path, campaign.RunOptions{Workers: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Finalized || len(res.Results) != 1 {
		t.Fatalf("finalized %v, %d results", res.Finalized, len(res.Results))
	}
	if res.Results[0].Failed() {
		t.Fatalf("evasion cell failed: %s", res.Results[0].Err)
	}
	if len(res.Results[0].Metrics) == 0 {
		t.Fatalf("evasion cell produced no metrics")
	}
}

// TestReadResults: the standalone reader returns the embedded spec and the
// cells in index order.
func TestReadResults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "read.result")
	res := runToFile(t, path, campaign.RunOptions{Workers: 8})
	specBytes, results, finalized, err := campaign.ReadResults(path)
	if err != nil {
		t.Fatalf("ReadResults: %v", err)
	}
	if !finalized {
		t.Fatalf("reader missed the footer")
	}
	canon, err := campaign.Canonicalize(parseGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Marshal(canon)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(specBytes, want) {
		t.Fatalf("embedded spec differs from the canonical campaign")
	}
	if len(results) != len(res.Cells) {
		t.Fatalf("got %d results, want %d", len(results), len(res.Cells))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has index %d (want index order)", i, r.Index)
		}
	}
}
