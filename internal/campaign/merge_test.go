package campaign_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"satin/internal/campaign"
	"satin/internal/runner"
	"satin/internal/spec"
)

// shardPaths runs the grid campaign shard by shard (each shard a plain
// index list) into per-shard files and returns the paths. Shard sessions
// never finalize.
func shardPaths(t *testing.T, dir string, shards [][]int, opt campaign.RunOptions) []string {
	t.Helper()
	var paths []string
	for i, cells := range shards {
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.result", i))
		o := opt
		o.Only = cells
		if o.SpecTrial == nil {
			o.SpecTrial = fakeTrial
		}
		res, err := campaign.Run(context.Background(), parseGrid(t), path, o)
		if err != nil {
			t.Fatalf("shard %d: Run: %v", i, err)
		}
		if res.Finalized {
			t.Fatalf("shard %d: a shard session must never finalize", i)
		}
		paths = append(paths, path)
	}
	return paths
}

// splitIndices deals indices 0..n-1 round-robin into k shards. Shards are
// non-nil even when empty: nil means "every cell" to RunOptions.Only.
func splitIndices(n, k int) [][]int {
	shards := make([][]int, k)
	for i := range shards {
		shards[i] = []int{}
	}
	for i := 0; i < n; i++ {
		shards[i%k] = append(shards[i%k], i)
	}
	return shards
}

// TestMergeMatchesSingleProcess: for several shard counts, merging the
// per-shard files reproduces the single-process finalized bytes exactly.
func TestMergeMatchesSingleProcess(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.result")
	res := runToFile(t, single, campaign.RunOptions{Workers: 1})
	if !res.Finalized {
		t.Fatal("single-process run did not finalize")
	}
	want := fileBytes(t, single)
	n := len(res.Cells)

	for _, k := range []int{1, 2, 3, 5, n, n + 3} {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			sdir := t.TempDir()
			paths := shardPaths(t, sdir, splitIndices(n, k), campaign.RunOptions{Workers: 2})
			merged := filepath.Join(sdir, "merged.result")
			total, err := campaign.Merge(merged, paths...)
			if err != nil {
				t.Fatalf("Merge: %v", err)
			}
			if total != n {
				t.Fatalf("Merge reported %d cells, want %d", total, n)
			}
			if !bytes.Equal(fileBytes(t, merged), want) {
				t.Fatalf("merged bytes differ from the single-process run at %d shards", k)
			}
		})
	}
}

// TestMergeToleratesDuplicateShards: a lease that expired and was
// reassigned leaves the same cells in two uploads; identical duplicates
// merge cleanly, and the bytes still match the single-process run.
func TestMergeToleratesDuplicateShards(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.result")
	res := runToFile(t, single, campaign.RunOptions{Workers: 1})
	n := len(res.Cells)

	shards := splitIndices(n, 3)
	// The "dead" worker ran shard 0 partially; the replacement ran it in
	// full. Both files reach the merge.
	paths := shardPaths(t, dir, [][]int{shards[0][:2], shards[0], shards[1], shards[2]},
		campaign.RunOptions{Workers: 2})
	merged := filepath.Join(dir, "merged.result")
	if _, err := campaign.Merge(merged, paths...); err != nil {
		t.Fatalf("Merge with duplicate coverage: %v", err)
	}
	if !bytes.Equal(fileBytes(t, merged), fileBytes(t, single)) {
		t.Fatal("merged bytes with duplicate shards differ from the single-process run")
	}
}

// TestMergeRandomLeaseHistories is the property form: random shard plans
// with random re-runs and partial "dead worker" uploads always merge to the
// single-process bytes.
func TestMergeRandomLeaseHistories(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.result")
	res := runToFile(t, single, campaign.RunOptions{Workers: 1})
	want := fileBytes(t, single)
	n := len(res.Cells)

	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		k := 1 + rng.Intn(5)
		perm := rng.Perm(n)
		shards := make([][]int, k)
		for i, idx := range perm {
			shards[i%k] = append(shards[i%k], idx)
		}
		var plan [][]int
		for _, s := range shards {
			if rng.Intn(3) == 0 && len(s) > 1 {
				// A dead worker's partial upload precedes the re-lease's
				// full one.
				plan = append(plan, s[:1+rng.Intn(len(s)-1)])
			}
			plan = append(plan, s)
		}
		sdir := t.TempDir()
		paths := shardPaths(t, sdir, plan, campaign.RunOptions{Workers: 1 + rng.Intn(4)})
		merged := filepath.Join(sdir, "merged.result")
		if _, err := campaign.Merge(merged, paths...); err != nil {
			t.Fatalf("trial %d: Merge: %v", trial, err)
		}
		if !bytes.Equal(fileBytes(t, merged), want) {
			t.Fatalf("trial %d: merged bytes differ from single-process run (plan %v)", trial, plan)
		}
	}
}

// TestMergeRejections: incomplete coverage, conflicting duplicates, and
// foreign shard files all fail with a named cause.
func TestMergeRejections(t *testing.T) {
	dir := t.TempDir()
	res := runToFile(t, filepath.Join(dir, "count.result"), campaign.RunOptions{Workers: 1})
	n := len(res.Cells)
	shards := splitIndices(n, 2)

	t.Run("missing cells", func(t *testing.T) {
		sdir := t.TempDir()
		paths := shardPaths(t, sdir, [][]int{shards[0]}, campaign.RunOptions{})
		_, err := campaign.Merge(filepath.Join(sdir, "m.result"), paths...)
		if err == nil || !strings.Contains(err.Error(), "missing") {
			t.Fatalf("error = %v, want a missing-cell rejection", err)
		}
	})

	t.Run("conflicting duplicate", func(t *testing.T) {
		sdir := t.TempDir()
		paths := shardPaths(t, sdir, shards, campaign.RunOptions{})
		// Re-run shard 0 with a trial that disagrees on cell metrics.
		conflicting := filepath.Join(sdir, "conflict.result")
		_, err := campaign.Run(context.Background(), parseGrid(t), conflicting, campaign.RunOptions{
			Only: shards[0],
			SpecTrial: func(s spec.Spec) (runner.Metrics, error) {
				return runner.Metrics{}.Add("seed", -1), nil
			},
		})
		if err != nil {
			t.Fatalf("conflicting shard run: %v", err)
		}
		_, err = campaign.Merge(filepath.Join(sdir, "m.result"), append(paths, conflicting)...)
		if err == nil || !strings.Contains(err.Error(), "conflicting") {
			t.Fatalf("error = %v, want a conflicting-result rejection", err)
		}
	})

	t.Run("foreign campaign", func(t *testing.T) {
		sdir := t.TempDir()
		paths := shardPaths(t, sdir, shards, campaign.RunOptions{})
		other := parseGrid(t)
		other.Seeds.Count = 1
		foreign := filepath.Join(sdir, "foreign.result")
		if _, err := campaign.Run(context.Background(), other, foreign, campaign.RunOptions{SpecTrial: fakeTrial, MaxCells: 1}); err != nil {
			t.Fatalf("foreign run: %v", err)
		}
		_, err := campaign.Merge(filepath.Join(sdir, "m.result"), append(paths, foreign)...)
		if err == nil || !strings.Contains(err.Error(), "different campaign") {
			t.Fatalf("error = %v, want a different-campaign rejection", err)
		}
	})

	t.Run("no inputs", func(t *testing.T) {
		if _, err := campaign.Merge(filepath.Join(t.TempDir(), "m.result")); err == nil {
			t.Fatal("Merge with no shard files succeeded")
		}
	})
}

// TestOnlyValidation: out-of-range shard indices are an error, an empty
// non-nil shard is a valid no-op session, and a shard session resumes its
// own partial file.
func TestOnlyValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "only.result")
	_, err := campaign.Run(context.Background(), parseGrid(t), path, campaign.RunOptions{
		Only: []int{0, 99999}, SpecTrial: fakeTrial,
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("error = %v, want an out-of-range rejection", err)
	}

	res, err := campaign.Run(context.Background(), parseGrid(t), path, campaign.RunOptions{
		Only: []int{}, SpecTrial: fakeTrial,
	})
	if err != nil {
		t.Fatalf("empty shard: %v", err)
	}
	if res.NewlyDone != 0 || res.Finalized {
		t.Fatalf("empty shard ran %d cells, finalized %v", res.NewlyDone, res.Finalized)
	}

	// A killed shard session resumes exactly its missing cells.
	first, err := campaign.Run(context.Background(), parseGrid(t), path, campaign.RunOptions{
		Only: []int{0, 1, 2, 3}, MaxCells: 2, SpecTrial: fakeTrial,
	})
	if err != nil || first.NewlyDone != 2 {
		t.Fatalf("partial shard: newly done %d, err %v", first.NewlyDone, err)
	}
	second, err := campaign.Run(context.Background(), parseGrid(t), path, campaign.RunOptions{
		Only: []int{0, 1, 2, 3}, SpecTrial: fakeTrial,
	})
	if err != nil || second.NewlyDone != 2 {
		t.Fatalf("shard resume: newly done %d, err %v", second.NewlyDone, err)
	}
}
