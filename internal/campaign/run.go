package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"satin/internal/experiment"
	"satin/internal/obs"
	"satin/internal/runner"
	"satin/internal/spec"
	"satin/internal/trace"
)

// SpecTrialFunc runs one instantiated scenario spec and reduces it to sweep
// metrics. Injected (it is satin.RunSpecTrial in the CLIs) because this
// package must not import the facade.
type SpecTrialFunc func(spec.Spec) (runner.Metrics, error)

// GroupKeyFunc classifies one scenario spec for shared-prefix grouping:
// cells whose keys match (with ok true) share a checkpointable prefix and
// may be executed as one forked group. ok false marks a spec the checkpoint
// protocol does not support; it runs through the plain spec trial. Injected
// (satin.CheckpointGroupKey in the CLIs) because this package must not
// import the facade.
type GroupKeyFunc func(spec.Spec) (string, bool)

// GroupResult is one member's outcome from a group trial, mirroring one
// SpecTrialFunc return.
type GroupResult struct {
	Metrics runner.Metrics
	Err     error
}

// GroupTrialFunc executes a set of instantiated scenario specs that share a
// checkpointable prefix — typically by running the prefix once, snapshotting
// it, and forking one continuation per member — and returns one result per
// member, in order. The contract is equivalence: metrics and failures must
// be exactly what running the spec trial per member would produce (the
// campaign result file is byte-identical either way once finalized).
// Injected (satin.RunCheckpointGroup in the CLIs).
type GroupTrialFunc func(ctx context.Context, members []spec.Spec) []GroupResult

// RunOptions configures one campaign execution.
type RunOptions struct {
	// Workers bounds the worker pool (0 or negative = GOMAXPROCS).
	Workers int
	// MaxCells, when positive, stops the run after that many newly
	// completed cells — checkpointed, not finalized — which is how the
	// smoke targets simulate a kill deterministically.
	MaxCells int
	// Only, when non-nil, restricts this session to the listed cell
	// indices — one shard of the campaign. The result file still spans the
	// whole campaign's index space (its header is the full canonical
	// campaign), but a shard session never finalizes: Merge combines the
	// per-shard files into the finalized form. An index outside the
	// expansion is an error. A nil slice means every cell; an empty
	// non-nil slice is a valid (empty) shard.
	Only []int
	// Progress, when non-nil, observes per-cell completions live (done and
	// total count cells pending in THIS session). Completion order —
	// diagnostics only.
	Progress runner.Progress
	// Bus, when non-nil, receives one trace.KindCell event per completed
	// cell (Area = cell index, At always zero: campaigns span universes,
	// so there is no shared virtual clock).
	Bus *obs.Bus
	// SpecTrial executes scenario cells; required unless the campaign
	// names a registry experiment.
	SpecTrial SpecTrialFunc
	// GroupKey and GroupTrial, when both non-nil, enable shared-prefix
	// forking: pending scenario cells whose group keys match are executed as
	// one unit through GroupTrial instead of cell-by-cell through SpecTrial.
	// Grouping is disabled under MaxCells (a truncated session must complete
	// exactly the first pending cells, not a group's worth); the finalized
	// result file is byte-identical with grouping on or off.
	GroupKey   GroupKeyFunc
	GroupTrial GroupTrialFunc
	// CellDone, when non-nil, observes each newly checkpointed cell's
	// wall-clock cost: forked reports whether the cell ran inside a
	// multi-cell fork group (wall is then the group's trial time split
	// evenly across members). Telemetry side channel only — cancelled cells
	// are not reported and nothing here touches the result bytes. Called
	// from pool goroutines; implementations synchronize themselves.
	CellDone func(index int, wall time.Duration, forked bool)
}

// RunResult summarizes one campaign execution.
type RunResult struct {
	// Cells is the full expansion, in index order.
	Cells []Cell
	// Results holds every checkpointed cell (this session's and resumed
	// ones), in index order.
	Results []CellResult
	// NewlyDone counts cells completed by this session.
	NewlyDone int
	// Finalized reports whether every cell is done and the result file was
	// rewritten into its canonical final form.
	Finalized bool
}

// Run executes the campaign against its result file at resultPath: expand
// the cells, skip the ones already checkpointed, run the remainder on the
// worker pool (appending each completion to the checkpoint immediately),
// and — once every cell is present — finalize the file into its canonical
// byte-identical form.
func Run(ctx context.Context, c Spec, resultPath string, opt RunOptions) (RunResult, error) {
	canon, err := Canonicalize(c)
	if err != nil {
		return RunResult{}, err
	}
	specBytes, err := Marshal(canon)
	if err != nil {
		return RunResult{}, err
	}
	cells, err := Cells(canon)
	if err != nil {
		return RunResult{}, err
	}
	if canon.Experiment == "" && opt.SpecTrial == nil {
		return RunResult{}, fmt.Errorf("campaign: scenario campaigns need a spec trial function")
	}

	rf, err := CreateOrResume(resultPath, specBytes)
	if err != nil {
		return RunResult{}, err
	}
	defer rf.Close()

	var only map[int]bool
	if opt.Only != nil {
		only = make(map[int]bool, len(opt.Only))
		for _, idx := range opt.Only {
			if idx < 0 || idx >= len(cells) {
				return RunResult{}, fmt.Errorf("campaign: shard cell index %d out of range (campaign has %d cells)", idx, len(cells))
			}
			only[idx] = true
		}
	}

	var pending []Cell
	for _, cell := range cells {
		if only != nil && !only[cell.Index] {
			continue
		}
		if _, ok := rf.Done()[cell.Index]; !ok {
			pending = append(pending, cell)
		}
	}
	toRun := pending
	if opt.MaxCells > 0 && opt.MaxCells < len(toRun) {
		toRun = toRun[:opt.MaxCells]
	}

	result := RunResult{Cells: cells}
	if len(toRun) > 0 {
		units := groupUnits(toRun, opt)
		progress := cellProgress(units, len(toRun), opt.Progress)
		var mu sync.Mutex
		// busMu serializes KindCell publishes: the bus is a single-threaded
		// structure (and sinks — a progress renderer, an HTTP reporter — are
		// written as such), but completions arrive from pool goroutines.
		var busMu sync.Mutex
		var checkpointErr error
		_, runErr := runner.RunObserved(ctx, len(units), opt.Workers, progress,
			func(ctx context.Context, ui int) (struct{}, error) {
				unit := units[ui]
				unitStart := time.Now()
				var results []GroupResult
				if len(unit) == 1 {
					metrics, trialErr := runCell(ctx, unit[0], opt.SpecTrial)
					results = []GroupResult{{Metrics: metrics, Err: trialErr}}
				} else {
					members := make([]spec.Spec, len(unit))
					for i, cell := range unit {
						members[i] = *cell.Scenario
					}
					results = opt.GroupTrial(ctx, members)
					if len(results) != len(unit) {
						return struct{}{}, fmt.Errorf("campaign: group trial returned %d results for %d members", len(results), len(unit))
					}
				}
				cellWall := time.Since(unitStart) / time.Duration(len(unit))
				var firstErr error
				for i, r := range results {
					cell := unit[i]
					if r.Err != nil && isCancellation(ctx, r.Err) {
						// The trial died with the context, not on its own
						// merits: leave the cell unchecked so resume reruns
						// it.
						if firstErr == nil {
							firstErr = r.Err
						}
						continue
					}
					res := CellResult{Index: cell.Index, Seed: cell.Seed, Metrics: r.Metrics}
					if r.Err != nil {
						res.Err = r.Err.Error()
						res.Metrics = nil
						if firstErr == nil {
							firstErr = r.Err
						}
					}
					mu.Lock()
					appendErr := rf.Append(res)
					if appendErr != nil && checkpointErr == nil {
						checkpointErr = appendErr
					}
					result.NewlyDone++
					mu.Unlock()
					if appendErr != nil {
						return struct{}{}, appendErr
					}
					if opt.CellDone != nil {
						opt.CellDone(cell.Index, cellWall, len(unit) > 1)
					}
					busMu.Lock()
					publishCell(opt.Bus, cell, res)
					busMu.Unlock()
				}
				return struct{}{}, firstErr
			})
		if checkpointErr != nil {
			return RunResult{}, checkpointErr
		}
		if runErr != nil {
			return RunResult{}, fmt.Errorf("campaign: %w", runErr)
		}
	}

	// A shard session never finalizes even if its file happens to hold
	// every cell: finalization is the whole-campaign act (Merge, or a
	// full-range session).
	if opt.Only == nil && len(rf.Done()) == len(cells) {
		if err := rf.Finalize(len(cells)); err != nil {
			return RunResult{}, err
		}
		result.Finalized = true
	}
	for _, cell := range cells {
		if res, ok := rf.Done()[cell.Index]; ok {
			result.Results = append(result.Results, res)
		}
	}
	return result, nil
}

// groupUnits partitions the cells this session will run into execution
// units: with shared-prefix forking enabled, cells whose group keys match
// form one multi-cell unit (in expansion order); everything else — cells the
// checkpoint protocol does not cover, experiment cells, singleton groups —
// runs alone. Unit boundaries only shape scheduling and the order of result-
// file appends; the finalized file sorts by index and is invariant to them.
func groupUnits(cells []Cell, opt RunOptions) [][]Cell {
	if opt.GroupKey == nil || opt.GroupTrial == nil || opt.MaxCells > 0 {
		units := make([][]Cell, len(cells))
		for i, c := range cells {
			units[i] = []Cell{c}
		}
		return units
	}
	grouped := map[string][]Cell{}
	keyOf := make([]string, len(cells))
	for i, c := range cells {
		if c.Scenario == nil {
			continue
		}
		if key, ok := opt.GroupKey(*c.Scenario); ok {
			keyOf[i] = key
			grouped[key] = append(grouped[key], c)
		}
	}
	var units [][]Cell
	emitted := map[string]bool{}
	for i, c := range cells {
		key := keyOf[i]
		if key == "" || len(grouped[key]) < 2 {
			units = append(units, []Cell{c})
			continue
		}
		if !emitted[key] {
			emitted[key] = true
			units = append(units, grouped[key])
		}
	}
	return units
}

// cellProgress adapts a per-cell progress observer to per-unit completions:
// a finished unit reports each of its cells, so done/total keep counting
// cells pending in this session. The reported index is the cell's campaign
// index (diagnostic, like everything else about progress).
func cellProgress(units [][]Cell, totalCells int, p runner.Progress) runner.Progress {
	if p == nil {
		return nil
	}
	done := 0
	return func(_, _, ui int, elapsed time.Duration, err error) {
		for _, cell := range units[ui] {
			done++
			p(done, totalCells, cell.Index, elapsed, err)
		}
	}
}

// runCell dispatches one cell: registry experiments through their trial
// form, scenario cells through the injected spec trial.
func runCell(ctx context.Context, cell Cell, specTrial SpecTrialFunc) (runner.Metrics, error) {
	if cell.Experiment != "" {
		def, ok := experiment.Lookup(cell.Experiment)
		if !ok || def.Trial == nil {
			return nil, fmt.Errorf("campaign: experiment %q has no trial form", cell.Experiment)
		}
		return def.Trial(ctx, cell.Seed)
	}
	return specTrial(*cell.Scenario)
}

// isCancellation reports whether the trial failed because the run was being
// torn down rather than on the cell's own merits.
func isCancellation(ctx context.Context, err error) bool {
	return ctx.Err() != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// publishCell streams one completed cell over the bus.
func publishCell(bus *obs.Bus, cell Cell, res CellResult) {
	if bus.Subscribers() == 0 {
		return
	}
	detail := cell.Label() + " ok"
	if res.Failed() {
		detail = cell.Label() + " FAILED: " + res.Err
	}
	bus.Publish(trace.Event{Kind: trace.KindCell, Core: -1, Area: cell.Index, Detail: detail})
}

// MergeSweeps folds checkpointed cell results back into per-combination
// sweeps — the same aggregate form live multi-seed sweeps produce, built in
// cell-index order so the rendering is byte-identical no matter how the
// cells were computed.
func MergeSweeps(cells []Cell, results []CellResult) []*runner.Sweep {
	byIndex := map[int]CellResult{}
	for _, r := range results {
		byIndex[r.Index] = r
	}
	var sweeps []*runner.Sweep
	var cur *runner.Sweep
	curCombo := -1
	for _, cell := range cells {
		res, ok := byIndex[cell.Index]
		if !ok {
			continue
		}
		if cell.Combo != curCombo {
			cur = runner.NewSweep(cell.ComboLabel)
			sweeps = append(sweeps, cur)
			curCombo = cell.Combo
		}
		if res.Failed() {
			cur.AddFailure(res.Seed, errors.New(res.Err))
			continue
		}
		cur.AddTrial(res.Seed, res.Metrics)
	}
	return sweeps
}
