package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"satin/internal/experiment"
	"satin/internal/obs"
	"satin/internal/runner"
	"satin/internal/spec"
	"satin/internal/trace"
)

// SpecTrialFunc runs one instantiated scenario spec and reduces it to sweep
// metrics. Injected (it is satin.RunSpecTrial in the CLIs) because this
// package must not import the facade.
type SpecTrialFunc func(spec.Spec) (runner.Metrics, error)

// RunOptions configures one campaign execution.
type RunOptions struct {
	// Workers bounds the worker pool (0 or negative = GOMAXPROCS).
	Workers int
	// MaxCells, when positive, stops the run after that many newly
	// completed cells — checkpointed, not finalized — which is how the
	// smoke targets simulate a kill deterministically.
	MaxCells int
	// Progress, when non-nil, observes per-cell completions live (done and
	// total count cells pending in THIS session). Completion order —
	// diagnostics only.
	Progress runner.Progress
	// Bus, when non-nil, receives one trace.KindCell event per completed
	// cell (Area = cell index, At always zero: campaigns span universes,
	// so there is no shared virtual clock).
	Bus *obs.Bus
	// SpecTrial executes scenario cells; required unless the campaign
	// names a registry experiment.
	SpecTrial SpecTrialFunc
}

// RunResult summarizes one campaign execution.
type RunResult struct {
	// Cells is the full expansion, in index order.
	Cells []Cell
	// Results holds every checkpointed cell (this session's and resumed
	// ones), in index order.
	Results []CellResult
	// NewlyDone counts cells completed by this session.
	NewlyDone int
	// Finalized reports whether every cell is done and the result file was
	// rewritten into its canonical final form.
	Finalized bool
}

// Run executes the campaign against its result file at resultPath: expand
// the cells, skip the ones already checkpointed, run the remainder on the
// worker pool (appending each completion to the checkpoint immediately),
// and — once every cell is present — finalize the file into its canonical
// byte-identical form.
func Run(ctx context.Context, c Spec, resultPath string, opt RunOptions) (RunResult, error) {
	canon, err := Canonicalize(c)
	if err != nil {
		return RunResult{}, err
	}
	specBytes, err := Marshal(canon)
	if err != nil {
		return RunResult{}, err
	}
	cells, err := Cells(canon)
	if err != nil {
		return RunResult{}, err
	}
	if canon.Experiment == "" && opt.SpecTrial == nil {
		return RunResult{}, fmt.Errorf("campaign: scenario campaigns need a spec trial function")
	}

	rf, err := CreateOrResume(resultPath, specBytes)
	if err != nil {
		return RunResult{}, err
	}
	defer rf.Close()

	var pending []Cell
	for _, cell := range cells {
		if _, ok := rf.Done()[cell.Index]; !ok {
			pending = append(pending, cell)
		}
	}
	toRun := pending
	if opt.MaxCells > 0 && opt.MaxCells < len(toRun) {
		toRun = toRun[:opt.MaxCells]
	}

	result := RunResult{Cells: cells}
	if len(toRun) > 0 {
		var mu sync.Mutex
		var checkpointErr error
		_, runErr := runner.RunObserved(ctx, len(toRun), opt.Workers, opt.Progress,
			func(ctx context.Context, i int) (struct{}, error) {
				cell := toRun[i]
				metrics, trialErr := runCell(ctx, cell, opt.SpecTrial)
				if trialErr != nil && isCancellation(ctx, trialErr) {
					// The trial died with the context, not on its own
					// merits: leave the cell unchecked so resume reruns it.
					return struct{}{}, trialErr
				}
				res := CellResult{Index: cell.Index, Seed: cell.Seed, Metrics: metrics}
				if trialErr != nil {
					res.Err = trialErr.Error()
					res.Metrics = nil
				}
				mu.Lock()
				appendErr := rf.Append(res)
				if appendErr != nil && checkpointErr == nil {
					checkpointErr = appendErr
				}
				result.NewlyDone++
				mu.Unlock()
				if appendErr != nil {
					return struct{}{}, appendErr
				}
				publishCell(opt.Bus, cell, res)
				return struct{}{}, trialErr
			})
		if checkpointErr != nil {
			return RunResult{}, checkpointErr
		}
		if runErr != nil {
			return RunResult{}, fmt.Errorf("campaign: %w", runErr)
		}
	}

	if len(rf.Done()) == len(cells) {
		if err := rf.Finalize(len(cells)); err != nil {
			return RunResult{}, err
		}
		result.Finalized = true
	}
	for _, cell := range cells {
		if res, ok := rf.Done()[cell.Index]; ok {
			result.Results = append(result.Results, res)
		}
	}
	return result, nil
}

// runCell dispatches one cell: registry experiments through their trial
// form, scenario cells through the injected spec trial.
func runCell(ctx context.Context, cell Cell, specTrial SpecTrialFunc) (runner.Metrics, error) {
	if cell.Experiment != "" {
		def, ok := experiment.Lookup(cell.Experiment)
		if !ok || def.Trial == nil {
			return nil, fmt.Errorf("campaign: experiment %q has no trial form", cell.Experiment)
		}
		return def.Trial(ctx, cell.Seed)
	}
	return specTrial(*cell.Scenario)
}

// isCancellation reports whether the trial failed because the run was being
// torn down rather than on the cell's own merits.
func isCancellation(ctx context.Context, err error) bool {
	return ctx.Err() != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// publishCell streams one completed cell over the bus.
func publishCell(bus *obs.Bus, cell Cell, res CellResult) {
	if bus.Subscribers() == 0 {
		return
	}
	detail := cell.Label() + " ok"
	if res.Failed() {
		detail = cell.Label() + " FAILED: " + res.Err
	}
	bus.Publish(trace.Event{Kind: trace.KindCell, Core: -1, Area: cell.Index, Detail: detail})
}

// MergeSweeps folds checkpointed cell results back into per-combination
// sweeps — the same aggregate form live multi-seed sweeps produce, built in
// cell-index order so the rendering is byte-identical no matter how the
// cells were computed.
func MergeSweeps(cells []Cell, results []CellResult) []*runner.Sweep {
	byIndex := map[int]CellResult{}
	for _, r := range results {
		byIndex[r.Index] = r
	}
	var sweeps []*runner.Sweep
	var cur *runner.Sweep
	curCombo := -1
	for _, cell := range cells {
		res, ok := byIndex[cell.Index]
		if !ok {
			continue
		}
		if cell.Combo != curCombo {
			cur = runner.NewSweep(cell.ComboLabel)
			sweeps = append(sweeps, cur)
			curCombo = cell.Combo
		}
		if res.Failed() {
			cur.AddFailure(res.Seed, errors.New(res.Err))
			continue
		}
		cur.AddTrial(res.Seed, res.Metrics)
	}
	return sweeps
}
