package campaign_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"satin/internal/campaign"
)

// seedCampaignCorpus feeds the committed campaign specs plus handwritten
// edge cases to a fuzz target.
func seedCampaignCorpus(f *testing.F) {
	f.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "campaigns", "*.json"))
	if err != nil || len(files) == 0 {
		f.Fatalf("no seed corpus under testdata/campaigns (err %v)", err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatalf("reading %s: %v", file, err)
		}
		f.Add(data)
	}
	for _, s := range []string{
		`{}`,
		`{"version": 1}`,
		`{"version": 1, "experiment": "evasion", "seeds": {"base": 1, "count": 3}}`,
		`{"version": 1, "experiment": "detection", "seeds": {"base": 18446744073709551615, "count": 2}}`,
		`{"version": 1, "scenario": {"version": 1, "defense": {"kind": "satin", "satin": {"max_rounds": 1}}, "evader": {"kind": "none"}, "run": {"to_completion": true}}, "seeds": {"base": 0, "count": 1}}`,
		`{"version": 1, "scenario": {"version": 1, "defense": {"kind": "none"}, "evader": {"kind": "fast"}, "run": {"for": "1s"}}, "grid": [{"path": "seed", "values": [1, 2]}], "faults": ["scale:2", ""], "seeds": {"base": 1, "count": 2}}`,
		`{"version": 1, "scenario": {"version": 1, "defense": {"kind": "none"}, "evader": {"kind": "fast"}, "run": {"for": "1s"}}, "grid": [{"path": "evader.rootkit_addr", "values": [9223372036854775811]}], "seeds": {"base": 1, "count": 1}}`,
	} {
		f.Add([]byte(s))
	}
}

// FuzzParseCampaign is the campaign robustness property: any input that
// parses and validates must canonicalize, expand, and round-trip without
// panicking, and the canonical form must be a fixed point.
func FuzzParseCampaign(f *testing.F) {
	seedCampaignCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := campaign.Parse(data)
		if err != nil {
			return
		}
		if campaign.Validate(c) != nil {
			return
		}
		canon, err := campaign.Canonicalize(c)
		if err != nil {
			t.Fatalf("campaign passed Validate but failed Canonicalize: %v", err)
		}
		cells, err := campaign.Cells(canon)
		if err != nil {
			t.Fatalf("canonical campaign failed to expand: %v", err)
		}
		if len(cells) == 0 {
			t.Fatalf("valid campaign expanded to zero cells")
		}
		b, err := campaign.Marshal(canon)
		if err != nil {
			t.Fatalf("canonical campaign failed to marshal: %v", err)
		}
		reparsed, err := campaign.Parse(b)
		if err != nil {
			t.Fatalf("canonical campaign failed to reparse: %v", err)
		}
		if !reflect.DeepEqual(canon, reparsed) {
			t.Fatalf("canonical round trip lost data:\n%#v\n%#v", canon, reparsed)
		}
		again, err := campaign.Canonicalize(reparsed)
		if err != nil {
			t.Fatalf("reparsed canonical campaign failed Canonicalize: %v", err)
		}
		if !reflect.DeepEqual(canon, again) {
			t.Fatalf("Canonicalize is not idempotent")
		}
	})
}
