package campaign_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"satin/internal/campaign"
	"satin/internal/spec"
)

// gridCampaign is the canonical-shaped test campaign: 2 grid axes × 2 fault
// plans × 3 seeds = 24 cells over a SATIN-vs-fast-evader scenario.
const gridCampaign = `{
  "version": 1,
  "name": "t",
  "scenario": {
    "version": 1,
    "seed": 1,
    "defense": {"kind": "satin", "satin": {"tgoal": "4s", "max_rounds": 4}},
    "evader": {"kind": "fast"},
    "run": {"to_completion": true}
  },
  "grid": [
    {"path": "evader.kind", "values": ["fast", "none"]},
    {"path": "defense.satin.max_rounds", "values": [4, 8]}
  ],
  "faults": ["", "scale:2"],
  "seeds": {"base": 1, "count": 3}
}`

func parseGrid(t *testing.T) campaign.Spec {
	t.Helper()
	c, err := campaign.Parse([]byte(gridCampaign))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return c
}

func TestParseStrict(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown key", `{"version": 1, "experiment": "evasion", "surprise": 1, "seeds": {"base": 1, "count": 1}}`, "unknown field"},
		{"missing version", `{"experiment": "evasion", "seeds": {"base": 1, "count": 1}}`, "missing version"},
		{"future version", `{"version": 99, "experiment": "evasion", "seeds": {"base": 1, "count": 1}}`, "version 99 unsupported"},
		{"trailing data", `{"version": 1, "experiment": "evasion", "seeds": {"base": 1, "count": 1}} {}`, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := campaign.Parse([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Parse error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateRejections(t *testing.T) {
	mutate := func(f func(*campaign.Spec)) campaign.Spec {
		c := parseGrid(t)
		f(&c)
		return c
	}
	cases := []struct {
		name    string
		c       campaign.Spec
		wantErr string
	}{
		{"neither template", mutate(func(c *campaign.Spec) { c.Scenario = nil }), "either an experiment name or a scenario"},
		{"both templates", mutate(func(c *campaign.Spec) { c.Experiment = "evasion" }), "mutually exclusive"},
		{"unknown experiment", campaign.Spec{Version: 1, Experiment: "nope", Seeds: campaign.SeedRange{Base: 1, Count: 1}}, "unknown experiment"},
		{"no trial form", campaign.Spec{Version: 1, Experiment: "table1", Seeds: campaign.SeedRange{Base: 1, Count: 1}}, "no per-seed trial form"},
		{"grid without scenario", mutate(func(c *campaign.Spec) { c.Scenario, c.Experiment = nil, "evasion" }), "grid axes need a scenario"},
		{"zero seeds", mutate(func(c *campaign.Spec) { c.Seeds.Count = 0 }), "need at least 1"},
		{"empty axis path", mutate(func(c *campaign.Spec) { c.Grid[0].Path = "" }), "empty path"},
		{"duplicate axis", mutate(func(c *campaign.Spec) { c.Grid[1].Path = c.Grid[0].Path }), "repeats path"},
		{"no axis values", mutate(func(c *campaign.Spec) { c.Grid[0].Values = nil }), "no values"},
		{"unknown axis path", mutate(func(c *campaign.Spec) { c.Grid[0].Path = "evader.species" }), "unknown field"},
		{"bad axis value", mutate(func(c *campaign.Spec) { c.Grid[0].Values[0] = json.RawMessage(`"martian"`) }), "unknown evader kind"},
		{"object axis value", mutate(func(c *campaign.Spec) { c.Grid[0].Values[0] = json.RawMessage(`{"k": 1}`) }), "scalars"},
		{"bad fault plan", mutate(func(c *campaign.Spec) { c.Faults[1] = "warp:9" }), "faults"},
		{"export in scenario", mutate(func(c *campaign.Spec) { c.Scenario.Export = &spec.Export{Metrics: "m.csv"} }), "export is not allowed"},
		{"huge expansion", mutate(func(c *campaign.Spec) { c.Seeds.Count = 1 << 30 }), "cell limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := campaign.Validate(tc.c)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestCellsExpansion pins the expansion order: first axis slowest, seeds
// fastest, labels naming every assignment.
func TestCellsExpansion(t *testing.T) {
	cells, err := campaign.Cells(parseGrid(t))
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if len(cells) != 24 {
		t.Fatalf("got %d cells, want 24 (2 evaders × 2 round counts × 2 fault plans × 3 seeds)", len(cells))
	}
	first := cells[0]
	if first.ComboLabel != "evader.kind=fast defense.satin.max_rounds=4 faults=-" {
		t.Errorf("first combo label = %q", first.ComboLabel)
	}
	if first.Seed != 1 || cells[1].Seed != 2 || cells[2].Seed != 3 {
		t.Errorf("seeds vary fastest: got %d,%d,%d", first.Seed, cells[1].Seed, cells[2].Seed)
	}
	if cells[3].Combo != 1 {
		t.Errorf("cell 3 combo = %d, want 1 (new fault plan)", cells[3].Combo)
	}
	// The last combo flips both axes and takes the fault plan.
	last := cells[len(cells)-1]
	if !strings.HasPrefix(last.ComboLabel, "evader.kind=none defense.satin.max_rounds=8 faults=") ||
		strings.HasSuffix(last.ComboLabel, "faults=-") {
		t.Errorf("last combo label = %q", last.ComboLabel)
	}
	for i, cell := range cells {
		if cell.Index != i {
			t.Fatalf("cell %d has index %d", i, cell.Index)
		}
		if cell.Scenario == nil {
			t.Fatalf("cell %d has no scenario", i)
		}
		if cell.Scenario.Seed != cell.Seed {
			t.Fatalf("cell %d scenario seed %d != cell seed %d", i, cell.Scenario.Seed, cell.Seed)
		}
		// Every cell spec is canonical: defaults materialized, revalidated.
		canon, err := spec.Canonicalize(*cell.Scenario)
		if err != nil {
			t.Fatalf("cell %d (%s): %v", i, cell.Label(), err)
		}
		if !reflect.DeepEqual(canon, *cell.Scenario) {
			t.Fatalf("cell %d spec is not canonical", i)
		}
	}
	// The none-evader combos must not carry orphaned evader timing — the
	// reason the template stays raw in the canonical campaign.
	for _, cell := range cells {
		if cell.Scenario.Evader.Kind == spec.EvaderNone && cell.Scenario.Evader.Sleep != 0 {
			t.Fatalf("cell %d: evader=none kept sleep %v", cell.Index, cell.Scenario.Evader.Sleep)
		}
	}
}

// TestExperimentCampaignCells: an experiment campaign expands to one cell
// per seed, dispatching by registry name.
func TestExperimentCampaignCells(t *testing.T) {
	c, err := campaign.Parse([]byte(`{"version": 1, "experiment": "evasion", "seeds": {"base": 7, "count": 3}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := campaign.Validate(c); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cells, err := campaign.Cells(c)
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	for i, cell := range cells {
		if cell.Experiment != "evasion" || cell.Scenario != nil {
			t.Fatalf("cell %d: experiment %q, scenario %v", i, cell.Experiment, cell.Scenario)
		}
		if cell.Seed != 7+uint64(i) {
			t.Fatalf("cell %d seed = %d", i, cell.Seed)
		}
	}
}

// TestCanonicalizeRoundTrip: Marshal(Canonicalize(c)) reparses to the same
// value, and Canonicalize is idempotent — the same fixed-point contract the
// scenario spec keeps.
func TestCanonicalizeRoundTrip(t *testing.T) {
	canon, err := campaign.Canonicalize(parseGrid(t))
	if err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	if canon.Faults[1] == "scale:2" {
		t.Fatalf("fault plan not normalized: %q", canon.Faults[1])
	}
	again, err := campaign.Canonicalize(canon)
	if err != nil {
		t.Fatalf("Canonicalize(canonical): %v", err)
	}
	if !reflect.DeepEqual(canon, again) {
		t.Fatalf("Canonicalize is not idempotent:\n%#v\n%#v", canon, again)
	}
	b, err := campaign.Marshal(canon)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	reparsed, err := campaign.Parse(b)
	if err != nil {
		t.Fatalf("Parse(Marshal): %v", err)
	}
	if !reflect.DeepEqual(canon, reparsed) {
		t.Fatalf("round trip lost data:\n%#v\n%#v", canon, reparsed)
	}
}

// TestPatchPreservesUint64: grid values patch at the JSON layer, so 64-bit
// fields never round-trip through float64.
func TestPatchPreservesUint64(t *testing.T) {
	base := spec.Spec{
		Version: 1,
		Seed:    1,
		Defense: spec.Defense{Kind: spec.DefenseSATIN, SATIN: &spec.SATINConfig{MaxRounds: 1}},
		Evader:  spec.Evader{Kind: spec.EvaderFast},
		Run:     spec.Run{ToCompletion: true},
	}
	const addr = uint64(1)<<63 + 3
	patched, err := spec.Patch(base, "evader.rootkit_addr", json.RawMessage(`9223372036854775811`))
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	if patched.Evader.RootkitAddr == nil || *patched.Evader.RootkitAddr != addr {
		t.Fatalf("rootkit_addr = %v, want %d", patched.Evader.RootkitAddr, addr)
	}
}
