package campaign

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"satin/internal/runner"
)

// The result file is the campaign's checkpoint and its final artifact in
// one: a header embedding the canonical campaign spec once (cells share it
// by construction, so it is stored exactly once, never per cell), followed
// by one CRC-guarded record per completed cell.
//
// While a campaign runs, records are appended in completion order — a
// killed process loses at most the record it was writing, and resume drops
// a truncated or corrupt tail and re-runs only those cells. When the last
// cell completes, Finalize rewrites the records sorted by cell index and
// appends a footer, atomically (temp file + rename): the finalized file is
// byte-identical for any worker count, kill point, or resume history.
//
// Layout (all integers little-endian):
//
//	header:  magic "SATINCAM" | u32 version | u32 specLen | spec bytes
//	record:  u8 tag (1=cell, 2=footer) | u32 payloadLen | payload | u32 CRC32(payload)
//	cell:    u32 index | u64 seed | u8 status (0=ok, 1=failed) |
//	         ok:     u16 nMetrics | nMetrics × (u16 nameLen | name | f64 bits)
//	         failed: u16 errLen | err
//	footer:  u32 total cell count (present only in finalized files)

const (
	resultMagic   = "SATINCAM"
	resultVersion = 1

	tagCell   = 1
	tagFooter = 2
)

// CellResult is one completed cell's outcome. Exactly one of Metrics and
// Err is meaningful.
type CellResult struct {
	Index   int
	Seed    uint64
	Metrics runner.Metrics
	// Err is the trial's error text; non-empty means the cell failed
	// deterministically (a failure is a result, not a retry candidate).
	Err string
}

// Failed reports whether the cell's trial returned an error.
func (r CellResult) Failed() bool { return r.Err != "" }

// ResultFile is an open campaign result file positioned for appends.
type ResultFile struct {
	f         *os.File
	path      string
	spec      []byte
	done      map[int]CellResult
	finalized bool
}

// CreateOrResume opens the result file for the campaign whose canonical
// spec is specBytes, creating it if absent. On an existing file the header
// must match byte-for-byte — a result file never silently absorbs cells
// from a different campaign — and a truncated or corrupt record tail
// (the kill losing a partial write) is discarded so appends continue from
// the last intact record.
func CreateOrResume(path string, specBytes []byte) (*ResultFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: result file: %w", err)
	}
	r := &ResultFile{f: f, path: path, spec: append([]byte(nil), specBytes...), done: map[int]CellResult{}}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: result file: %w", err)
	}
	if info.Size() == 0 {
		if _, err := f.Write(encodeHeader(specBytes)); err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: result file: writing header: %w", err)
		}
		return r, nil
	}
	if err := r.load(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// Done returns the completed cells keyed by index. The map is live — do not
// mutate it.
func (r *ResultFile) Done() map[int]CellResult { return r.done }

// Finalized reports whether the file carries the footer (every cell done,
// records in index order).
func (r *ResultFile) Finalized() bool { return r.finalized }

// Append checkpoints one completed cell. Safe to call from the completion
// path of concurrent workers only under the caller's lock.
func (r *ResultFile) Append(res CellResult) error {
	if r.finalized {
		return fmt.Errorf("campaign: result file %s is finalized", r.path)
	}
	if _, dup := r.done[res.Index]; dup {
		return fmt.Errorf("campaign: cell %d checkpointed twice", res.Index)
	}
	if _, err := r.f.Write(encodeRecord(tagCell, encodeCell(res))); err != nil {
		return fmt.Errorf("campaign: checkpointing cell %d: %w", res.Index, err)
	}
	r.done[res.Index] = res
	return nil
}

// Finalize rewrites the file with records sorted by cell index plus the
// footer, via a temp file and an atomic rename. It requires every cell
// 0..total-1 to be checkpointed. The finalized bytes are a pure function
// of the campaign and its cell results.
func (r *ResultFile) Finalize(total int) error {
	if r.finalized {
		return nil
	}
	if len(r.done) != total {
		return fmt.Errorf("campaign: finalize: %d of %d cells checkpointed", len(r.done), total)
	}
	ordered := make([]CellResult, 0, total)
	for i := 0; i < total; i++ {
		res, ok := r.done[i]
		if !ok {
			return fmt.Errorf("campaign: finalize: cell %d missing", i)
		}
		ordered = append(ordered, res)
	}
	if err := writeFinalized(r.path, r.spec, ordered); err != nil {
		return fmt.Errorf("campaign: finalize: %w", err)
	}
	r.f.Close()
	f, err := os.Open(r.path)
	if err != nil {
		return fmt.Errorf("campaign: finalize: reopening: %w", err)
	}
	r.f = f
	r.finalized = true
	return nil
}

// finalizedBytes renders the canonical finalized form: header, every cell
// record in index order, footer. It is THE byte layout of a finished
// campaign — Finalize and Merge both emit it, which is what makes a merged
// sharded run byte-identical to a single-process one.
func finalizedBytes(specBytes []byte, ordered []CellResult) []byte {
	var buf bytes.Buffer
	buf.Write(encodeHeader(specBytes))
	for _, res := range ordered {
		buf.Write(encodeRecord(tagCell, encodeCell(res)))
	}
	var footer bytes.Buffer
	writeU32(&footer, uint32(len(ordered)))
	buf.Write(encodeRecord(tagFooter, footer.Bytes()))
	return buf.Bytes()
}

// writeFinalized writes the finalized form atomically (temp file + rename).
func writeFinalized(path string, specBytes []byte, ordered []CellResult) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, finalizedBytes(specBytes, ordered), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Close releases the file handle.
func (r *ResultFile) Close() error { return r.f.Close() }

// ReadResults parses a result file and returns the embedded canonical
// campaign spec plus the completed cells in index order.
func ReadResults(path string) (specBytes []byte, results []CellResult, finalized bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false, fmt.Errorf("campaign: reading results: %w", err)
	}
	return ReadFile(data)
}

// load parses an existing file into r, verifying the header against r.spec
// and truncating a corrupt or partial record tail.
func (r *ResultFile) load() error {
	data, err := io.ReadAll(r.f)
	if err != nil {
		return fmt.Errorf("campaign: reading result file: %w", err)
	}
	if _, err := r.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	specBytes, rest, err := decodeHeader(data)
	if err != nil {
		return err
	}
	if !bytes.Equal(specBytes, r.spec) {
		return fmt.Errorf("campaign: result file %s belongs to a different campaign (embedded spec differs; delete it or pick another -campaign-out)", r.path)
	}
	done, goodLen, finalized, err := decodeRecords(rest, false)
	if err != nil {
		return err
	}
	r.done = done
	r.finalized = finalized
	keep := int64(len(data) - len(rest) + goodLen)
	if keep < int64(len(data)) {
		if err := r.f.Truncate(keep); err != nil {
			return fmt.Errorf("campaign: dropping corrupt record tail: %w", err)
		}
	}
	if _, err := r.f.Seek(keep, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// encodeHeader renders the file header.
func encodeHeader(specBytes []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(resultMagic)
	writeU32(&buf, resultVersion)
	writeU32(&buf, uint32(len(specBytes)))
	buf.Write(specBytes)
	return buf.Bytes()
}

// decodeHeader splits data into the embedded spec and the record region.
func decodeHeader(data []byte) (specBytes, rest []byte, err error) {
	if len(data) < len(resultMagic)+8 {
		return nil, nil, fmt.Errorf("campaign: result file too short for a header")
	}
	if string(data[:len(resultMagic)]) != resultMagic {
		return nil, nil, fmt.Errorf("campaign: not a campaign result file (bad magic)")
	}
	data = data[len(resultMagic):]
	version := binary.LittleEndian.Uint32(data)
	if version != resultVersion {
		return nil, nil, fmt.Errorf("campaign: result file version %d unsupported (this build reads version %d)", version, resultVersion)
	}
	specLen := binary.LittleEndian.Uint32(data[4:])
	data = data[8:]
	if uint32(len(data)) < specLen {
		return nil, nil, fmt.Errorf("campaign: result file truncated inside the embedded spec")
	}
	return data[:specLen], data[specLen:], nil
}

// decodeRecords parses the record region. A corrupt or truncated tail is an
// error in strict mode, and silently dropped otherwise (goodLen reports how
// many bytes were intact). A footer must be the last record.
func decodeRecords(data []byte, strict bool) (done map[int]CellResult, goodLen int, finalized bool, err error) {
	done = map[int]CellResult{}
	off := 0
	for off < len(data) {
		if finalized {
			return nil, 0, false, fmt.Errorf("campaign: records after the footer")
		}
		tag, payload, n, recErr := nextRecord(data[off:])
		if recErr != nil {
			if strict {
				return nil, 0, false, recErr
			}
			return done, off, false, nil
		}
		switch tag {
		case tagCell:
			res, cellErr := decodeCell(payload)
			if cellErr != nil {
				if strict {
					return nil, 0, false, cellErr
				}
				return done, off, false, nil
			}
			if _, dup := done[res.Index]; dup {
				return nil, 0, false, fmt.Errorf("campaign: result file checkpoints cell %d twice", res.Index)
			}
			done[res.Index] = res
		case tagFooter:
			if len(payload) != 4 {
				return nil, 0, false, fmt.Errorf("campaign: malformed footer")
			}
			if total := int(binary.LittleEndian.Uint32(payload)); total != len(done) {
				return nil, 0, false, fmt.Errorf("campaign: footer says %d cells, file has %d", total, len(done))
			}
			finalized = true
		default:
			if strict {
				return nil, 0, false, fmt.Errorf("campaign: unknown record tag %d", tag)
			}
			return done, off, false, nil
		}
		off += n
	}
	return done, off, finalized, nil
}

// nextRecord decodes one record at the start of data, returning its tag,
// payload, and total encoded length. Any truncation or CRC mismatch is an
// error — the caller decides whether that fails the read or just ends it.
func nextRecord(data []byte) (tag byte, payload []byte, n int, err error) {
	if len(data) < 5 {
		return 0, nil, 0, fmt.Errorf("campaign: truncated record header")
	}
	tag = data[0]
	payloadLen := binary.LittleEndian.Uint32(data[1:])
	n = 5 + int(payloadLen) + 4
	if len(data) < n {
		return 0, nil, 0, fmt.Errorf("campaign: truncated record payload")
	}
	payload = data[5 : 5+payloadLen]
	want := binary.LittleEndian.Uint32(data[5+payloadLen:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, nil, 0, fmt.Errorf("campaign: record CRC mismatch")
	}
	return tag, payload, n, nil
}

// encodeRecord frames a payload with its tag, length, and CRC.
func encodeRecord(tag byte, payload []byte) []byte {
	var buf bytes.Buffer
	buf.WriteByte(tag)
	writeU32(&buf, uint32(len(payload)))
	buf.Write(payload)
	writeU32(&buf, crc32.ChecksumIEEE(payload))
	return buf.Bytes()
}

// encodeCell renders one cell result payload.
func encodeCell(res CellResult) []byte {
	var buf bytes.Buffer
	writeU32(&buf, uint32(res.Index))
	writeU64(&buf, res.Seed)
	if res.Failed() {
		buf.WriteByte(1)
		writeString(&buf, res.Err)
		return buf.Bytes()
	}
	buf.WriteByte(0)
	writeU16(&buf, uint16(len(res.Metrics)))
	for _, m := range res.Metrics {
		writeString(&buf, m.Name)
		writeU64(&buf, math.Float64bits(m.Value))
	}
	return buf.Bytes()
}

// decodeCell parses one cell result payload.
func decodeCell(payload []byte) (CellResult, error) {
	rd := &reader{data: payload}
	res := CellResult{Index: int(rd.u32()), Seed: rd.u64()}
	switch rd.u8() {
	case 1:
		res.Err = rd.str()
	case 0:
		n := int(rd.u16())
		for i := 0; i < n; i++ {
			name := rd.str()
			res.Metrics = append(res.Metrics, runner.Sample{Name: name, Value: math.Float64frombits(rd.u64())})
		}
	default:
		return CellResult{}, fmt.Errorf("campaign: cell %d: unknown status byte", res.Index)
	}
	if rd.err != nil || len(rd.data) != rd.off {
		return CellResult{}, fmt.Errorf("campaign: malformed cell record")
	}
	return res, nil
}

// reader is a bounds-checked little-endian cursor; the first overrun sets
// err and every later read returns zero.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.data) {
		r.err = fmt.Errorf("short read")
		return make([]byte, n)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte    { return r.take(1)[0] }
func (r *reader) u16() uint16 { return binary.LittleEndian.Uint16(r.take(2)) }
func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }
func (r *reader) str() string { return string(r.take(int(r.u16()))) }

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeString(buf *bytes.Buffer, s string) {
	writeU16(buf, uint16(len(s)))
	buf.WriteString(s)
}

// DefaultResultPath derives the conventional result path for a campaign
// file: the campaign's path with its extension replaced by ".result".
func DefaultResultPath(campaignPath string) string {
	ext := filepath.Ext(campaignPath)
	return campaignPath[:len(campaignPath)-len(ext)] + ".result"
}
