package hw

import (
	"fmt"
)

// IntID identifies an interrupt line. The two lines the paper's mechanisms
// use are private per-core peripherals (PPIs) with their conventional GIC
// numbers.
type IntID int

// Interrupt lines modeled on the platform.
const (
	// IntSecureTimer is the per-core secure physical timer PPI. It belongs
	// to the secure interrupt group: the GIC always routes it to the EL3
	// monitor, even when the core is executing in the normal world — the
	// first routing requirement of §II-B.
	IntSecureTimer IntID = 29
	// IntNSTimer is the per-core non-secure physical timer PPI that drives
	// the rich OS scheduling tick.
	IntNSTimer IntID = 30
	// IntSGIFlood is a software-generated interrupt (SGI) line the
	// interrupt-flood attack uses: a compromised rich OS can raise SGIs
	// at arbitrary rate toward any core.
	IntSGIFlood IntID = 1
)

// String names the interrupt line.
func (id IntID) String() string {
	switch id {
	case IntSecureTimer:
		return "secure-timer"
	case IntNSTimer:
		return "ns-timer"
	case IntSGIFlood:
		return "sgi-flood"
	default:
		return fmt.Sprintf("int%d", int(id))
	}
}

// Group is an interrupt security group.
type Group int

// Interrupt groups, per the ARM interrupt management framework: secure
// interrupts route to the secure world (via EL3), non-secure ones to the
// rich OS.
const (
	GroupSecure Group = iota + 1
	GroupNonSecure
)

// Handler services an interrupt on a specific core.
type Handler func(coreID int)

// GIC models the TrustZone-aware interrupt controller. Routing implements
// the two requirements of §II-B:
//
//  1. Secure interrupts are always delivered to the secure handler (the EL3
//     monitor), regardless of which world the target core is in.
//  2. Non-secure interrupts are delivered to the normal-world handler when
//     the core runs in the normal world; while the core executes in the
//     secure world with SATIN's SCR_EL3.IRQ=0 configuration, they pend at
//     the GIC and are delivered when the core returns to the normal world
//     (the non-preemptive secure mode of §II-B that SATIN requires).
type GIC struct {
	handlers map[IntID]Handler
	groups   map[IntID]Group
	cores    []*Core
	// pending[coreID] holds non-secure interrupt IDs waiting for the core
	// to return to the normal world. A set: hardware pends a level, not a
	// count.
	pending []map[IntID]bool
	// preemptive, when set, is consulted for a non-secure interrupt
	// targeting a core in the secure world: returning true delivers the
	// interrupt immediately (the preemptive secure mode of §II-B) instead
	// of pending it. The trustzone monitor installs it when configured
	// for preemptive routing.
	preemptive func(id IntID, coreID int) bool
	// intercept, when set, sees every Raise before routing. Returning true
	// consumes the assertion: the interceptor has taken ownership and will
	// complete (or retry) delivery later via Deliver. The fault-injection
	// layer installs it to model delayed and dropped interrupts; when nil
	// (the default), Raise routes directly with zero overhead.
	intercept func(id IntID, coreID int) bool
}

// newGIC wires the controller to the platform's cores.
func newGIC(cores []*Core) *GIC {
	g := &GIC{
		handlers: make(map[IntID]Handler),
		groups: map[IntID]Group{
			IntSecureTimer: GroupSecure,
			IntNSTimer:     GroupNonSecure,
		},
		cores:   cores,
		pending: make([]map[IntID]bool, len(cores)),
	}
	for i := range g.pending {
		g.pending[i] = make(map[IntID]bool)
	}
	for _, c := range cores {
		c.OnWorldChange(func(c *Core, _, newWorld World) {
			if newWorld == NormalWorld {
				g.drainPending(c.id)
			}
		})
		c.OnHotplug(func(c *Core, online bool) {
			if online {
				g.drainPending(c.id)
			}
		})
	}
	return g
}

// Configure sets the security group of an interrupt line. The platform
// pre-configures the two timer PPIs; tests use this for synthetic lines.
func (g *GIC) Configure(id IntID, group Group) {
	g.groups[id] = group
}

// Register installs the handler for an interrupt line, replacing any
// previous handler. The trustzone monitor registers for secure lines; the
// rich OS registers for non-secure lines.
func (g *GIC) Register(id IntID, h Handler) {
	g.handlers[id] = h
}

// Raise asserts interrupt id targeting core coreID and routes it according
// to the rules above. Raising a line with no registered handler is a
// platform assembly error and panics. An installed fault interceptor may
// consume the assertion (modeling wire delay or a dropped edge); it then
// completes delivery through Deliver.
func (g *GIC) Raise(id IntID, coreID int) {
	if g.intercept != nil && g.intercept(id, coreID) {
		return
	}
	g.route(id, coreID)
}

// Deliver routes interrupt id to core coreID, bypassing the fault
// interceptor. The interceptor itself uses it to complete a delayed or
// retried raise without being re-intercepted; routing rules (groups,
// secure-world pending, offline pending) still apply at delivery time.
func (g *GIC) Deliver(id IntID, coreID int) {
	g.route(id, coreID)
}

func (g *GIC) route(id IntID, coreID int) {
	group, ok := g.groups[id]
	if !ok {
		panic(fmt.Sprintf("hw: interrupt %v raised without a configured group", id))
	}
	if !g.cores[coreID].Online() {
		// An offline core takes no interrupts in either group; the GIC
		// holds the level until the core is powered back on.
		g.pending[coreID][id] = true
		return
	}
	switch group {
	case GroupSecure:
		// Secure interrupts always reach the monitor immediately.
		g.dispatch(id, coreID)
	case GroupNonSecure:
		if g.cores[coreID].World() == SecureWorld {
			if g.preemptive != nil && g.preemptive(id, coreID) {
				g.dispatch(id, coreID)
				return
			}
			g.pending[coreID][id] = true
			return
		}
		g.dispatch(id, coreID)
	default:
		panic(fmt.Sprintf("hw: interrupt %v has invalid group %d", id, int(group)))
	}
}

// SetPreemptiveHook installs the preemptive-routing decision function; nil
// restores the default non-preemptive behavior (pending).
func (g *GIC) SetPreemptiveHook(fn func(id IntID, coreID int) bool) {
	g.preemptive = fn
}

// SetRaiseInterceptor installs the fault-injection interceptor consulted at
// the top of Raise; nil (the default) removes it, restoring direct routing.
func (g *GIC) SetRaiseInterceptor(fn func(id IntID, coreID int) bool) {
	g.intercept = fn
}

// PendingOn reports whether interrupt id is pending delivery on core coreID.
func (g *GIC) PendingOn(id IntID, coreID int) bool {
	return g.pending[coreID][id]
}

func (g *GIC) dispatch(id IntID, coreID int) {
	h, ok := g.handlers[id]
	if !ok {
		panic(fmt.Sprintf("hw: interrupt %v raised on core %d with no handler", id, coreID))
	}
	h(coreID)
}

// drainPending delivers interrupts that pended while the core was in the
// secure world. Delivery order is numeric interrupt ID, matching GIC
// priority order for same-priority lines and keeping the simulation
// deterministic.
func (g *GIC) drainPending(coreID int) {
	p := g.pending[coreID]
	if len(p) == 0 {
		return
	}
	ids := make([]IntID, 0, len(p))
	for id := range p {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		delete(p, id)
		g.dispatch(id, coreID)
	}
}
