// Package hw models the hardware platform of the SATIN paper's testbed: an
// ARM Juno r1 development board with a big.LITTLE ARMv8-A processor
// (4 Cortex-A53 + 2 Cortex-A57 cores), per-core secure timers, a shared
// physical counter, and a TrustZone-aware interrupt controller.
//
// The model is timing-faithful rather than cycle-faithful: every operation
// the paper measures (world switches, per-byte hashing and snapshotting,
// attack-trace recovery) draws its latency from a distribution calibrated to
// the paper's Table I and §IV-B measurements, and the TrustZone privilege
// rules the paper's security argument relies on (normal world cannot touch
// secure timer registers, cannot observe the secure world directly) are
// enforced by the register model.
package hw

import (
	"fmt"

	"satin/internal/simclock"
)

// CoreType identifies the microarchitecture of a core. The Juno r1 board is
// big.LITTLE: power-efficient A53 cores and fast A57 cores.
type CoreType int

// Core types: the Juno r1 board's big.LITTLE pair, plus the homogeneous
// core of the §VII-D generic-TEE portability target.
const (
	CortexA53 CoreType = iota + 1
	CortexA57
	GenericCore
)

// String returns the marketing name, e.g. "A53".
func (t CoreType) String() string {
	switch t {
	case CortexA53:
		return "A53"
	case CortexA57:
		return "A57"
	case GenericCore:
		return "generic"
	default:
		return fmt.Sprintf("CoreType(%d)", int(t))
	}
}

// World is a TrustZone security state.
type World int

// The two TrustZone worlds.
const (
	NormalWorld World = iota + 1
	SecureWorld
)

// String names the world as the paper does.
func (w World) String() string {
	switch w {
	case NormalWorld:
		return "normal"
	case SecureWorld:
		return "secure"
	default:
		return fmt.Sprintf("World(%d)", int(w))
	}
}

// Core is one CPU core. Each core independently tracks which TrustZone world
// it is executing in — the ARMv8-A property that lets the rich OS keep
// running on the remaining cores while one core performs introspection, and
// that TZ-Evader's probing exploits.
type Core struct {
	id     int
	typ    CoreType
	world  World
	online bool
	timer  *SecureTimer
	// rates holds the core's current effective per-byte operation rates.
	// They start at the platform calibration for the core's type and may be
	// rescaled at runtime (DVFS steps, fault-injected jitter) — but only
	// through SetRates, which validates every mutation.
	rates     CoreRates
	observers []func(c *Core, old, new World)
	hotplug   []func(c *Core, online bool)
}

// newCore builds an online core in the normal world. Platform construction
// attaches the secure timer and the calibrated rates.
func newCore(id int, typ CoreType) *Core {
	return &Core{id: id, typ: typ, world: NormalWorld, online: true}
}

// ID reports the core's index on the platform.
func (c *Core) ID() int { return c.id }

// Type reports the core's microarchitecture.
func (c *Core) Type() CoreType { return c.typ }

// World reports which TrustZone world the core is currently executing in.
//
// Note that *simulation* code may call this freely, but *modeled normal-world
// software* must not: the whole premise of the paper's evasion attack is that
// the normal world cannot read this state and must infer it through the
// core-availability side channel. The richos and attack packages respect
// this rule; tests assert on it.
func (c *Core) World() World { return c.world }

// SecureTimer returns the core's private secure timer.
func (c *Core) SecureTimer() *SecureTimer { return c.timer }

// SetWorld transitions the core to world w, notifying observers. It is
// intended to be called only by the trustzone secure monitor (the EL3
// software that owns world switches); calling it from modeled normal-world
// code would violate the platform's security model.
func (c *Core) SetWorld(w World) {
	if w != NormalWorld && w != SecureWorld {
		panic(fmt.Sprintf("hw: invalid world %d", int(w)))
	}
	if w == c.world {
		return
	}
	old := c.world
	c.world = w
	for _, obs := range c.observers {
		obs(c, old, w)
	}
}

// OnWorldChange registers fn to run whenever the core switches worlds.
// The rich OS uses this to pause and resume the thread that was running on
// the core; experiment instrumentation uses it to record entry times.
func (c *Core) OnWorldChange(fn func(c *Core, old, new World)) {
	c.observers = append(c.observers, fn)
}

// Online reports whether the core is administratively online. Offline cores
// still exist (their registers retain state) but the GIC pends every
// interrupt targeting them until they return.
func (c *Core) Online() bool { return c.online }

// SetOnline hotplugs the core in or out, notifying hotplug observers. A core
// executing in the secure world cannot be unplugged — on real hardware the
// PSCI CPU_OFF call runs from the rich OS, which by definition is not
// scheduled while the core is in the secure world — so callers must defer
// the transition until the core has exited; violating that invariant panics.
func (c *Core) SetOnline(online bool) {
	if online == c.online {
		return
	}
	if !online && c.world == SecureWorld {
		panic(fmt.Sprintf("hw: core %d unplugged while executing in the secure world", c.id))
	}
	c.online = online
	for _, fn := range c.hotplug {
		fn(c, online)
	}
}

// OnHotplug registers fn to run whenever the core goes offline or comes back
// online. The GIC uses this to drain pended interrupts on online; SATIN uses
// it to re-route the core's introspection slot while it is away.
func (c *Core) OnHotplug(fn func(c *Core, online bool)) {
	c.hotplug = append(c.hotplug, fn)
}

// Rates returns the core's current effective per-byte rates: the Table I
// calibration for its type, times whatever runtime rescaling (DVFS, fault
// jitter) has been applied through SetRates.
func (c *Core) Rates() CoreRates { return c.rates }

// SetRates installs new effective rates for the core. This is the single
// mutation path for rates: every caller — platform assembly, DVFS steps,
// fault injection — goes through the same validation, so a rescale can never
// install zero, negative, or inverted distributions mid-run.
func (c *Core) SetRates(r CoreRates) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("hw: core %d rates: %w", c.id, err)
	}
	c.rates = r
	return nil
}

// String renders like "core2(A53)".
func (c *Core) String() string {
	return fmt.Sprintf("core%d(%s)", c.id, c.typ)
}

// CoreRates bundles the calibrated per-byte operation rates of one core
// type. All rates are in seconds per byte, as float distributions because
// the values (≈7–11 ns/byte) are too fine for nanosecond quantization.
type CoreRates struct {
	// HashPerByte is Ts_1byte for the direct-hash introspection technique
	// (paper Table I, "Hash 1-Byte").
	HashPerByte simclock.FloatDist
	// SnapshotPerByte is Ts_1byte for the snapshot-then-hash technique
	// (paper Table I, "Snapshot 1-byte").
	SnapshotPerByte simclock.FloatDist
	// RecoverPerByte is Tns_1byte, the normal-world attacker's cost to
	// restore one malicious byte to its benign value (paper §IV-B2).
	RecoverPerByte simclock.FloatDist
}

// Scaled returns a copy of the rates with every distribution multiplied by
// factor. A factor above 1 models a slower core (seconds per byte stretch);
// below 1, a faster one. The result is not validated here — feed it to
// Core.SetRates, which is.
func (r CoreRates) Scaled(factor float64) CoreRates {
	scale := func(d simclock.FloatDist) simclock.FloatDist {
		return simclock.FloatDist{Min: d.Min * factor, Avg: d.Avg * factor, Max: d.Max * factor}
	}
	return CoreRates{
		HashPerByte:     scale(r.HashPerByte),
		SnapshotPerByte: scale(r.SnapshotPerByte),
		RecoverPerByte:  scale(r.RecoverPerByte),
	}
}

// Validate checks that every rate distribution is well-formed and strictly
// positive — a per-byte time of zero (or less) would let a check finish in
// no virtual time, so rescaling paths (DVFS, fault injection) can never
// install one.
func (r CoreRates) Validate() error {
	for _, rate := range []struct {
		name string
		d    simclock.FloatDist
	}{
		{"hash rate", r.HashPerByte},
		{"snapshot rate", r.SnapshotPerByte},
		{"recover rate", r.RecoverPerByte},
	} {
		if err := rate.d.Validate(); err != nil {
			return fmt.Errorf("%s: %w", rate.name, err)
		}
		if rate.d.Min <= 0 {
			return fmt.Errorf("%s: min %v must be positive", rate.name, rate.d.Min)
		}
	}
	return nil
}
