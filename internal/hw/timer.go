package hw

import (
	"errors"
	"fmt"

	"satin/internal/simclock"
)

// ErrSecurePrivilege is returned when modeled normal-world software attempts
// to access a secure-only register. This is the hardware property SATIN's
// self-activation module relies on: the normal world can neither read the
// next wake-up time nor disarm the introspection timer.
var ErrSecurePrivilege = errors.New("hw: register requires secure world privilege")

// SecureTimer models one core's private secure physical timer: the
// CNTPS_CTL_EL1 control register and CNTPS_CVAL_EL1 compare register of
// ARMv8-A. When the timer is enabled and the shared physical counter
// (CNTPCT_EL0, which in this simulation is the virtual clock itself) reaches
// the compare value, the timer raises the secure timer PPI for its core.
type SecureTimer struct {
	core    *Core
	engine  *simclock.Engine
	gic     *GIC
	enabled bool
	cval    simclock.Time
	pending *simclock.Handle
}

func newSecureTimer(core *Core, engine *simclock.Engine, gic *GIC) *SecureTimer {
	return &SecureTimer{core: core, engine: engine, gic: gic}
}

// WriteCVAL sets the compare register (CNTPS_CVAL_EL1). Only the secure
// world may write it.
func (t *SecureTimer) WriteCVAL(w World, at simclock.Time) error {
	if w != SecureWorld {
		return ErrSecurePrivilege
	}
	t.cval = at
	t.rearm()
	return nil
}

// ReadCVAL reads the compare register. Only the secure world may read it.
func (t *SecureTimer) ReadCVAL(w World) (simclock.Time, error) {
	if w != SecureWorld {
		return 0, ErrSecurePrivilege
	}
	return t.cval, nil
}

// WriteCTL enables or disables the timer (CNTPS_CTL_EL1.ENABLE). Only the
// secure world may write it.
func (t *SecureTimer) WriteCTL(w World, enable bool) error {
	if w != SecureWorld {
		return ErrSecurePrivilege
	}
	t.enabled = enable
	t.rearm()
	return nil
}

// ReadCTL reads the enable bit. Only the secure world may read it.
func (t *SecureTimer) ReadCTL(w World) (bool, error) {
	if w != SecureWorld {
		return false, ErrSecurePrivilege
	}
	return t.enabled, nil
}

// rearm reconciles the pending fire event with the current register state.
func (t *SecureTimer) rearm() {
	t.pending.Cancel()
	t.pending = nil
	if !t.enabled {
		return
	}
	at := t.cval
	if at < t.engine.Now() {
		// Condition already met: the interrupt asserts immediately,
		// exactly as the architecture specifies for CNTPCT >= CVAL.
		at = t.engine.Now()
	}
	name := fmt.Sprintf("secure-timer-core%d", t.core.id)
	t.pending = t.engine.At(at, name, func() {
		t.pending = nil
		// Level-triggered: the handler is expected to disable the timer
		// or move CVAL forward; we model a single assertion per arm.
		t.gic.Raise(IntSecureTimer, t.core.id)
	})
}
