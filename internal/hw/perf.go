package hw

import (
	"fmt"
	"time"

	"satin/internal/simclock"
)

// PerfModel holds the calibrated timing model of the platform. The values of
// the Juno r1 preset come directly from the paper's measurements:
//
//   - WorldSwitch (Ts_switch): §IV-B1 measured the TSP dispatcher taking
//     2.38–3.60 µs to pause the normal world and enter the secure timer
//     interrupt handler, similar on A53 and A57.
//   - Per-byte rates: Table I (hash/snapshot per byte per core type) and
//     §IV-B2 (recovery of the 8-byte syscall-table entry: 5.80 ms average on
//     A53, 4.96 ms on A57, 6.13 ms worst case ⇒ per-byte rates /8).
type PerfModel struct {
	// WorldSwitch is Ts_switch: the time for the secure monitor to save the
	// normal-world context of a core and enter (or leave) the secure world.
	WorldSwitch simclock.Dist
	// Rates maps each core type to its calibrated per-byte rates.
	Rates map[CoreType]CoreRates
	// ThreadWakeLatency models the rich OS scheduler's latency between a
	// sleeping thread's timer expiring and the thread actually running on a
	// core that is free (context-switch plus runqueue work). It contributes
	// the baseline jitter of the prober's Tns_threshold.
	ThreadWakeLatency simclock.Dist
}

// Validate checks the model for internal consistency.
func (m PerfModel) Validate() error {
	if err := m.WorldSwitch.Validate(); err != nil {
		return fmt.Errorf("world switch: %w", err)
	}
	if len(m.Rates) == 0 {
		return fmt.Errorf("hw: perf model has no core rates")
	}
	for ct, r := range m.Rates {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("%v rates: %w", ct, err)
		}
	}
	if err := m.ThreadWakeLatency.Validate(); err != nil {
		return fmt.Errorf("wake latency: %w", err)
	}
	return nil
}

// RatesFor returns the rates of core type ct. It panics on an unknown type,
// which always indicates a mis-assembled platform.
func (m PerfModel) RatesFor(ct CoreType) CoreRates {
	r, ok := m.Rates[ct]
	if !ok {
		panic(fmt.Sprintf("hw: no rates for core type %v", ct))
	}
	return r
}

// HashTime draws the time for a core of type ct to directly hash n bytes of
// normal-world memory from the secure world.
func (m PerfModel) HashTime(ct CoreType, n int, g *simclock.RNG) time.Duration {
	rate := m.RatesFor(ct).HashPerByte.Draw(g)
	return secondsDuration(rate * float64(n))
}

// SnapshotTime draws the time for a core of type ct to snapshot-then-hash n
// bytes.
func (m PerfModel) SnapshotTime(ct CoreType, n int, g *simclock.RNG) time.Duration {
	rate := m.RatesFor(ct).SnapshotPerByte.Draw(g)
	return secondsDuration(rate * float64(n))
}

// RecoverTime draws Tns_recover, the time for the normal-world attacker on a
// core of type ct to restore n malicious bytes.
func (m PerfModel) RecoverTime(ct CoreType, n int, g *simclock.RNG) time.Duration {
	rate := m.RatesFor(ct).RecoverPerByte.Draw(g)
	return secondsDuration(rate * float64(n))
}

// SwitchTime draws Ts_switch.
func (m PerfModel) SwitchTime(g *simclock.RNG) time.Duration {
	return m.WorldSwitch.Draw(g)
}

func secondsDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// JunoR1PerfModel returns the performance model calibrated to the paper's
// Juno r1 measurements. See the PerfModel doc comment for provenance.
func JunoR1PerfModel() PerfModel {
	return PerfModel{
		WorldSwitch: simclock.Seconds(2.38e-6, 2.95e-6, 3.60e-6),
		Rates: map[CoreType]CoreRates{
			CortexA53: {
				HashPerByte:     simclock.FloatDist{Min: 9.23e-9, Avg: 1.07e-8, Max: 1.14e-8},
				SnapshotPerByte: simclock.FloatDist{Min: 9.24e-9, Avg: 1.08e-8, Max: 1.57e-8},
				// 5.80 ms average / 8 bytes, worst case 6.13 ms / 8 bytes.
				RecoverPerByte: simclock.FloatDist{Min: 6.80e-4, Avg: 7.25e-4, Max: 7.6625e-4},
			},
			CortexA57: {
				HashPerByte:     simclock.FloatDist{Min: 6.67e-9, Avg: 6.71e-9, Max: 7.50e-9},
				SnapshotPerByte: simclock.FloatDist{Min: 6.67e-9, Avg: 6.75e-9, Max: 7.83e-9},
				// 4.96 ms average / 8 bytes.
				RecoverPerByte: simclock.FloatDist{Min: 5.80e-4, Avg: 6.20e-4, Max: 6.60e-4},
			},
		},
		ThreadWakeLatency: simclock.Seconds(2e-6, 1.0e-5, 6e-5),
	}
}
