package hw

import (
	"errors"
	"testing"
	"time"

	"satin/internal/simclock"
)

func newTestPlatform(t *testing.T) (*simclock.Engine, *Platform) {
	t.Helper()
	e := simclock.NewEngine()
	p, err := NewJunoR1(e)
	if err != nil {
		t.Fatalf("NewJunoR1: %v", err)
	}
	return e, p
}

func TestJunoR1Topology(t *testing.T) {
	_, p := newTestPlatform(t)
	if p.NumCores() != 6 {
		t.Fatalf("NumCores = %d, want 6", p.NumCores())
	}
	if got := p.CoresOfType(CortexA53); len(got) != 4 {
		t.Errorf("A53 cores = %v, want 4 of them", got)
	}
	if got := p.CoresOfType(CortexA57); len(got) != 2 {
		t.Errorf("A57 cores = %v, want 2 of them", got)
	}
	for i, c := range p.Cores() {
		if c.ID() != i {
			t.Errorf("core %d has ID %d", i, c.ID())
		}
		if c.World() != NormalWorld {
			t.Errorf("core %d boots in %v, want normal world", i, c.World())
		}
	}
	a57, err := p.FirstCoreOfType(CortexA57)
	if err != nil || a57.ID() != 4 {
		t.Errorf("FirstCoreOfType(A57) = %v, %v; want core 4", a57, err)
	}
}

func TestNewPlatformValidation(t *testing.T) {
	e := simclock.NewEngine()
	if _, err := NewPlatform(nil, Config{CoreTypes: []CoreType{CortexA53}, Perf: JunoR1PerfModel()}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewPlatform(e, Config{Perf: JunoR1PerfModel()}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := NewPlatform(e, Config{CoreTypes: []CoreType{CortexA53}}); err == nil {
		t.Error("empty perf model accepted")
	}
	// Perf model lacking a used core type.
	perf := JunoR1PerfModel()
	delete(perf.Rates, CortexA57)
	if _, err := NewPlatform(e, Config{CoreTypes: []CoreType{CortexA57}, Perf: perf}); err == nil {
		t.Error("missing core-type rates accepted")
	}
}

func TestCoreTypeAndWorldStrings(t *testing.T) {
	if CortexA53.String() != "A53" || CortexA57.String() != "A57" {
		t.Error("core type names wrong")
	}
	if NormalWorld.String() != "normal" || SecureWorld.String() != "secure" {
		t.Error("world names wrong")
	}
	if CoreType(99).String() == "" || World(99).String() == "" {
		t.Error("unknown values should still render")
	}
}

func TestWorldChangeObserver(t *testing.T) {
	_, p := newTestPlatform(t)
	c := p.Core(0)
	var transitions []World
	c.OnWorldChange(func(_ *Core, _, newWorld World) {
		transitions = append(transitions, newWorld)
	})
	c.SetWorld(SecureWorld)
	c.SetWorld(SecureWorld) // no-op: same world
	c.SetWorld(NormalWorld)
	if len(transitions) != 2 || transitions[0] != SecureWorld || transitions[1] != NormalWorld {
		t.Errorf("transitions = %v, want [secure normal]", transitions)
	}
}

func TestSetWorldInvalidPanics(t *testing.T) {
	_, p := newTestPlatform(t)
	defer func() {
		if recover() == nil {
			t.Error("invalid world did not panic")
		}
	}()
	p.Core(0).SetWorld(World(0))
}

func TestSharedCounterTracksEngine(t *testing.T) {
	e, p := newTestPlatform(t)
	e.After(5*time.Millisecond, "probe", func() {
		if p.ReadCounter() != simclock.Time(5*time.Millisecond) {
			t.Errorf("counter = %v, want 5ms", p.ReadCounter())
		}
	})
	e.Run()
}

func TestSecureTimerPrivilege(t *testing.T) {
	_, p := newTestPlatform(t)
	st := p.Core(0).SecureTimer()
	if err := st.WriteCVAL(NormalWorld, 100); !errors.Is(err, ErrSecurePrivilege) {
		t.Errorf("normal-world CVAL write error = %v, want ErrSecurePrivilege", err)
	}
	if err := st.WriteCTL(NormalWorld, true); !errors.Is(err, ErrSecurePrivilege) {
		t.Errorf("normal-world CTL write error = %v, want ErrSecurePrivilege", err)
	}
	if _, err := st.ReadCVAL(NormalWorld); !errors.Is(err, ErrSecurePrivilege) {
		t.Errorf("normal-world CVAL read error = %v, want ErrSecurePrivilege", err)
	}
	if _, err := st.ReadCTL(NormalWorld); !errors.Is(err, ErrSecurePrivilege) {
		t.Errorf("normal-world CTL read error = %v, want ErrSecurePrivilege", err)
	}
	// Secure world has full access.
	if err := st.WriteCVAL(SecureWorld, 100); err != nil {
		t.Errorf("secure CVAL write: %v", err)
	}
	got, err := st.ReadCVAL(SecureWorld)
	if err != nil || got != 100 {
		t.Errorf("secure CVAL read = %v, %v; want 100", got, err)
	}
}

func TestSecureTimerFiresAtCVAL(t *testing.T) {
	e, p := newTestPlatform(t)
	var fired []simclock.Time
	p.GIC().Register(IntSecureTimer, func(coreID int) {
		if coreID != 2 {
			t.Errorf("interrupt on core %d, want 2", coreID)
		}
		fired = append(fired, e.Now())
	})
	st := p.Core(2).SecureTimer()
	if err := st.WriteCVAL(SecureWorld, simclock.Time(10*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCTL(SecureWorld, true); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(fired) != 1 || fired[0] != simclock.Time(10*time.Millisecond) {
		t.Errorf("fired = %v, want [10ms]", fired)
	}
}

func TestSecureTimerDisabledDoesNotFire(t *testing.T) {
	e, p := newTestPlatform(t)
	fired := 0
	p.GIC().Register(IntSecureTimer, func(int) { fired++ })
	st := p.Core(0).SecureTimer()
	if err := st.WriteCVAL(SecureWorld, simclock.Time(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// Never enabled.
	e.Run()
	if fired != 0 {
		t.Errorf("disabled timer fired %d times", fired)
	}
	// Enable then disable before the deadline.
	if err := st.WriteCTL(SecureWorld, true); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCVAL(SecureWorld, simclock.Time(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCTL(SecureWorld, false); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if fired != 0 {
		t.Errorf("timer fired %d times after disable", fired)
	}
}

func TestSecureTimerPastCVALFiresImmediately(t *testing.T) {
	e, p := newTestPlatform(t)
	fired := 0
	p.GIC().Register(IntSecureTimer, func(int) { fired++ })
	e.After(10*time.Millisecond, "arm", func() {
		st := p.Core(0).SecureTimer()
		// CVAL in the past: CNTPCT >= CVAL already holds.
		if err := st.WriteCVAL(SecureWorld, simclock.Time(time.Millisecond)); err != nil {
			t.Errorf("WriteCVAL: %v", err)
		}
		if err := st.WriteCTL(SecureWorld, true); err != nil {
			t.Errorf("WriteCTL: %v", err)
		}
	})
	e.Run()
	if fired != 1 {
		t.Errorf("past-CVAL timer fired %d times, want 1", fired)
	}
	if e.Now() != simclock.Time(10*time.Millisecond) {
		t.Errorf("fired at %v, want 10ms (immediately)", e.Now())
	}
}

func TestSecureTimerRearm(t *testing.T) {
	e, p := newTestPlatform(t)
	var fired []simclock.Time
	st := p.Core(0).SecureTimer()
	p.GIC().Register(IntSecureTimer, func(int) {
		fired = append(fired, e.Now())
		if len(fired) < 3 {
			next := e.Now().Add(10 * time.Millisecond)
			if err := st.WriteCVAL(SecureWorld, next); err != nil {
				t.Errorf("rearm: %v", err)
			}
		} else {
			if err := st.WriteCTL(SecureWorld, false); err != nil {
				t.Errorf("disable: %v", err)
			}
		}
	})
	if err := st.WriteCVAL(SecureWorld, simclock.Time(10*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCTL(SecureWorld, true); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d times, want 3: %v", len(fired), fired)
	}
	for i, want := range []time.Duration{10, 20, 30} {
		if fired[i] != simclock.Time(want*time.Millisecond) {
			t.Errorf("fire %d at %v, want %vms", i, fired[i], want)
		}
	}
}

func TestGICSecureInterruptAlwaysDelivered(t *testing.T) {
	_, p := newTestPlatform(t)
	delivered := 0
	p.GIC().Register(IntSecureTimer, func(int) { delivered++ })
	// Even with the core in the secure world, secure interrupts reach the
	// monitor's handler.
	p.Core(1).SetWorld(SecureWorld)
	p.GIC().Raise(IntSecureTimer, 1)
	if delivered != 1 {
		t.Errorf("secure interrupt delivered %d times, want 1", delivered)
	}
}

func TestGICNonSecurePendsDuringSecureWorld(t *testing.T) {
	_, p := newTestPlatform(t)
	var delivered []IntID
	p.GIC().Register(IntNSTimer, func(coreID int) {
		if coreID != 3 {
			t.Errorf("NS interrupt on core %d, want 3", coreID)
		}
		delivered = append(delivered, IntNSTimer)
	})
	c := p.Core(3)
	c.SetWorld(SecureWorld)
	// Raised twice while secure: pends as a level, delivered once.
	p.GIC().Raise(IntNSTimer, 3)
	p.GIC().Raise(IntNSTimer, 3)
	if len(delivered) != 0 {
		t.Fatalf("NS interrupt delivered during secure execution (SCR_EL3.IRQ=0 model)")
	}
	if !p.GIC().PendingOn(IntNSTimer, 3) {
		t.Error("NS interrupt not pending")
	}
	c.SetWorld(NormalWorld)
	if len(delivered) != 1 {
		t.Fatalf("NS interrupt delivered %d times after world exit, want 1", len(delivered))
	}
	if p.GIC().PendingOn(IntNSTimer, 3) {
		t.Error("interrupt still pending after delivery")
	}
}

func TestGICNonSecureImmediateInNormalWorld(t *testing.T) {
	_, p := newTestPlatform(t)
	delivered := 0
	p.GIC().Register(IntNSTimer, func(int) { delivered++ })
	p.GIC().Raise(IntNSTimer, 0)
	if delivered != 1 {
		t.Errorf("NS interrupt in normal world delivered %d times, want 1", delivered)
	}
}

func TestGICPendingDrainOrder(t *testing.T) {
	_, p := newTestPlatform(t)
	const (
		intA IntID = 40
		intB IntID = 41
	)
	p.GIC().Configure(intA, GroupNonSecure)
	p.GIC().Configure(intB, GroupNonSecure)
	var order []IntID
	p.GIC().Register(intA, func(int) { order = append(order, intA) })
	p.GIC().Register(intB, func(int) { order = append(order, intB) })
	c := p.Core(0)
	c.SetWorld(SecureWorld)
	// Raise in reverse numeric order; drain must be numeric.
	p.GIC().Raise(intB, 0)
	p.GIC().Raise(intA, 0)
	c.SetWorld(NormalWorld)
	if len(order) != 2 || order[0] != intA || order[1] != intB {
		t.Errorf("drain order = %v, want [intA intB]", order)
	}
}

func TestGICUnconfiguredInterruptPanics(t *testing.T) {
	_, p := newTestPlatform(t)
	defer func() {
		if recover() == nil {
			t.Error("unconfigured interrupt did not panic")
		}
	}()
	p.GIC().Raise(IntID(99), 0)
}

func TestGICUnhandledInterruptPanics(t *testing.T) {
	_, p := newTestPlatform(t)
	defer func() {
		if recover() == nil {
			t.Error("unhandled interrupt did not panic")
		}
	}()
	p.GIC().Raise(IntSecureTimer, 0) // configured but no handler registered
}

func TestPerfModelDraws(t *testing.T) {
	perf := JunoR1PerfModel()
	if err := perf.Validate(); err != nil {
		t.Fatalf("Juno perf model invalid: %v", err)
	}
	g := simclock.NewRNG(1, "perf")
	// Ts_switch within the measured envelope.
	for i := 0; i < 1000; i++ {
		d := perf.SwitchTime(g)
		if d < 2380*time.Nanosecond || d > 3600*time.Nanosecond {
			t.Fatalf("SwitchTime = %v outside [2.38µs, 3.60µs]", d)
		}
	}
	// Hashing 1 MiB on an A57 should take about 1 MiB * 6.71 ns/B ≈ 7 ms.
	d := perf.HashTime(CortexA57, 1<<20, g)
	if d < 6*time.Millisecond || d > 9*time.Millisecond {
		t.Errorf("HashTime(A57, 1MiB) = %v, want ≈7ms", d)
	}
	// A57 must beat A53 on average (the paper's observation 2, §IV-C).
	var a53, a57 time.Duration
	for i := 0; i < 200; i++ {
		a53 += perf.HashTime(CortexA53, 1<<20, g)
		a57 += perf.HashTime(CortexA57, 1<<20, g)
	}
	if a57 >= a53 {
		t.Errorf("A57 hashing (%v) not faster than A53 (%v)", a57/200, a53/200)
	}
	// Recovering the paper's 8-byte syscall entry: ≈5.8 ms on A53.
	rec := perf.RecoverTime(CortexA53, 8, g)
	if rec < 5*time.Millisecond || rec > 7*time.Millisecond {
		t.Errorf("RecoverTime(A53, 8B) = %v, want ≈5.8ms", rec)
	}
}

func TestPerfModelRatesForUnknownTypePanics(t *testing.T) {
	perf := JunoR1PerfModel()
	defer func() {
		if recover() == nil {
			t.Error("unknown core type did not panic")
		}
	}()
	perf.RatesFor(CoreType(42))
}

func TestPerfModelValidateCatchesBadRates(t *testing.T) {
	perf := JunoR1PerfModel()
	bad := perf.Rates[CortexA53]
	bad.HashPerByte = simclock.FloatDist{Min: 2, Avg: 1, Max: 3}
	perf.Rates[CortexA53] = bad
	if err := perf.Validate(); err == nil {
		t.Error("invalid rates passed validation")
	}
}

func TestCoreString(t *testing.T) {
	_, p := newTestPlatform(t)
	if got := p.Core(4).String(); got != "core4(A57)" {
		t.Errorf("String() = %q", got)
	}
}
