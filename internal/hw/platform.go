package hw

import (
	"fmt"

	"satin/internal/simclock"
)

// Config describes a platform to assemble.
type Config struct {
	// CoreTypes lists the cores in ID order.
	CoreTypes []CoreType
	// Perf is the timing model. Use JunoR1PerfModel for the paper's board.
	Perf PerfModel
}

// Platform is the assembled hardware: cores, their secure timers, the
// shared physical counter, and the interrupt controller.
type Platform struct {
	engine *simclock.Engine
	cores  []*Core
	gic    *GIC
	perf   PerfModel
}

// NewPlatform assembles a platform from cfg on the given engine.
func NewPlatform(engine *simclock.Engine, cfg Config) (*Platform, error) {
	if engine == nil {
		return nil, fmt.Errorf("hw: nil engine")
	}
	if len(cfg.CoreTypes) == 0 {
		return nil, fmt.Errorf("hw: platform needs at least one core")
	}
	if err := cfg.Perf.Validate(); err != nil {
		return nil, fmt.Errorf("hw: invalid perf model: %w", err)
	}
	for _, ct := range cfg.CoreTypes {
		if _, ok := cfg.Perf.Rates[ct]; !ok {
			return nil, fmt.Errorf("hw: perf model lacks rates for core type %v", ct)
		}
	}
	p := &Platform{engine: engine, perf: cfg.Perf}
	p.cores = make([]*Core, len(cfg.CoreTypes))
	for i, ct := range cfg.CoreTypes {
		p.cores[i] = newCore(i, ct)
		// Seed each core's effective rates with the type calibration; runtime
		// rescaling (DVFS, fault jitter) goes through Core.SetRates.
		if err := p.cores[i].SetRates(cfg.Perf.Rates[ct]); err != nil {
			return nil, err
		}
	}
	p.gic = newGIC(p.cores)
	for _, c := range p.cores {
		c.timer = newSecureTimer(c, engine, p.gic)
	}
	return p, nil
}

// NewJunoR1 assembles the paper's testbed: an ARM Juno r1 board with four
// Cortex-A53 cores (IDs 0–3) and two Cortex-A57 cores (IDs 4–5), with the
// timing model calibrated to the paper's measurements.
func NewJunoR1(engine *simclock.Engine) (*Platform, error) {
	return NewPlatform(engine, Config{
		CoreTypes: []CoreType{
			CortexA53, CortexA53, CortexA53, CortexA53,
			CortexA57, CortexA57,
		},
		Perf: JunoR1PerfModel(),
	})
}

// NewGenericTEE assembles the §VII-D portability target: a homogeneous
// multi-core platform that is not ARM TrustZone but offers SATIN's three
// requirements — multiple cores, a high-privileged operating mode, and a
// per-core secure timer (e.g. an SMM-based x86 design like SICE). Timing is
// a plausible homogeneous profile; nothing in SATIN or the evader depends
// on the Juno preset.
func NewGenericTEE(engine *simclock.Engine, numCores int) (*Platform, error) {
	if numCores <= 0 {
		return nil, fmt.Errorf("hw: generic TEE needs at least one core, got %d", numCores)
	}
	cores := make([]CoreType, numCores)
	for i := range cores {
		cores[i] = GenericCore
	}
	return NewPlatform(engine, Config{
		CoreTypes: cores,
		Perf: PerfModel{
			// SMM-style world entries cost more than TrustZone's.
			WorldSwitch: simclock.Seconds(8e-6, 10e-6, 14e-6),
			Rates: map[CoreType]CoreRates{
				GenericCore: {
					HashPerByte:     simclock.FloatDist{Min: 7.5e-9, Avg: 8.0e-9, Max: 9.0e-9},
					SnapshotPerByte: simclock.FloatDist{Min: 7.6e-9, Avg: 8.1e-9, Max: 9.5e-9},
					RecoverPerByte:  simclock.FloatDist{Min: 6.0e-4, Avg: 6.6e-4, Max: 7.2e-4},
				},
			},
			ThreadWakeLatency: simclock.Seconds(2e-6, 1.0e-5, 6e-5),
		},
	})
}

// Engine returns the simulation engine driving the platform.
func (p *Platform) Engine() *simclock.Engine { return p.engine }

// Cores returns the platform's cores in ID order. The slice is shared;
// callers must not mutate it.
func (p *Platform) Cores() []*Core { return p.cores }

// Core returns the core with the given ID.
func (p *Platform) Core(id int) *Core { return p.cores[id] }

// NumCores reports the core count.
func (p *Platform) NumCores() int { return len(p.cores) }

// GIC returns the interrupt controller.
func (p *Platform) GIC() *GIC { return p.gic }

// Perf returns the platform's timing model.
func (p *Platform) Perf() PerfModel { return p.perf }

// ReadCounter reads the shared physical counter CNTPCT_EL0, which both
// worlds may access. It is the "shared timer among all CPU cores" that the
// paper's probers read (§III-B1).
func (p *Platform) ReadCounter() simclock.Time { return p.engine.Now() }

// CoresOfType returns the IDs of cores with the given type, in ID order.
func (p *Platform) CoresOfType(ct CoreType) []int {
	var ids []int
	for _, c := range p.cores {
		if c.typ == ct {
			ids = append(ids, c.id)
		}
	}
	return ids
}

// FirstCoreOfType returns the lowest-numbered core of the given type, or an
// error if the platform has none.
func (p *Platform) FirstCoreOfType(ct CoreType) (*Core, error) {
	for _, c := range p.cores {
		if c.typ == ct {
			return c, nil
		}
	}
	return nil, fmt.Errorf("hw: platform has no %v core", ct)
}
