package hw

// Tests for the fault-injection hook points: validated rate mutation,
// hotplug state with interrupt pending/drain, and the GIC raise
// interceptor with its Deliver bypass.

import (
	"strings"
	"testing"

	"satin/internal/simclock"
)

func TestSetRatesValidates(t *testing.T) {
	_, p := newTestPlatform(t)
	c := p.Core(0)
	base := c.Rates()
	bad := base
	bad.HashPerByte.Avg = -1
	if err := c.SetRates(bad); err == nil {
		t.Error("negative rates accepted")
	}
	if c.Rates() != base {
		t.Error("failed SetRates mutated the core's rates")
	}
	scaled := base.Scaled(2)
	if err := c.SetRates(scaled); err != nil {
		t.Fatalf("SetRates(scaled): %v", err)
	}
	if got := c.Rates().HashPerByte.Avg; got != 2*base.HashPerByte.Avg {
		t.Errorf("scaled avg hash rate = %v, want %v", got, 2*base.HashPerByte.Avg)
	}
	if err := c.SetRates(CoreRates{}.Scaled(0)); err == nil {
		t.Error("zero rates accepted")
	}
}

func TestCoreRatesScaled(t *testing.T) {
	_, p := newTestPlatform(t)
	base := p.Core(0).Rates()
	s := base.Scaled(0.5)
	for name, pair := range map[string][2]simclock.FloatDist{
		"hash":     {base.HashPerByte, s.HashPerByte},
		"snapshot": {base.SnapshotPerByte, s.SnapshotPerByte},
		"recover":  {base.RecoverPerByte, s.RecoverPerByte},
	} {
		if pair[1].Min != 0.5*pair[0].Min || pair[1].Avg != 0.5*pair[0].Avg || pair[1].Max != 0.5*pair[0].Max {
			t.Errorf("%s rates not scaled by 0.5: %+v vs %+v", name, pair[1], pair[0])
		}
	}
}

func TestHotplugObserversAndSecureGuard(t *testing.T) {
	_, p := newTestPlatform(t)
	c := p.Core(2)
	var log []bool
	c.OnHotplug(func(_ *Core, online bool) { log = append(log, online) })
	if !c.Online() {
		t.Fatal("core boots offline")
	}
	c.SetOnline(true) // no-op: already online
	c.SetOnline(false)
	c.SetOnline(false) // no-op: already offline
	c.SetOnline(true)
	if len(log) != 2 || log[0] != false || log[1] != true {
		t.Errorf("hotplug observer log = %v, want [false true]", log)
	}

	c.SetWorld(SecureWorld)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("offlining a secure-world core did not panic")
				return
			}
			if !strings.Contains(r.(string), "secure world") {
				t.Errorf("unexpected panic: %v", r)
			}
		}()
		c.SetOnline(false)
	}()
}

func TestGICPendsToOfflineCoreAndDrainsOnReplug(t *testing.T) {
	e, p := newTestPlatform(t)
	g := p.GIC()
	g.Configure(IntSGIFlood, GroupNonSecure)
	fired := 0
	g.Register(IntSGIFlood, func(int) { fired++ })

	p.Core(1).SetOnline(false)
	g.Raise(IntSGIFlood, 1)
	e.Run()
	if fired != 0 {
		t.Fatalf("interrupt delivered to an offline core (%d fires)", fired)
	}
	p.Core(1).SetOnline(true)
	e.Run()
	if fired != 1 {
		t.Errorf("pending interrupt not drained on replug: %d fires", fired)
	}
}

func TestGICRaiseInterceptorAndDeliver(t *testing.T) {
	e, p := newTestPlatform(t)
	g := p.GIC()
	g.Configure(IntSGIFlood, GroupNonSecure)
	fired := 0
	g.Register(IntSGIFlood, func(int) { fired++ })

	intercepted := 0
	g.SetRaiseInterceptor(func(id IntID, coreID int) bool {
		intercepted++
		return intercepted == 1 // swallow the first raise only
	})
	g.Raise(IntSGIFlood, 0)
	e.Run()
	if fired != 0 {
		t.Fatalf("intercepted raise was delivered (%d fires)", fired)
	}
	g.Raise(IntSGIFlood, 0)
	e.Run()
	if fired != 1 {
		t.Fatalf("passed-through raise not delivered: %d fires", fired)
	}
	// Deliver bypasses the interceptor: no third interception, one more fire.
	g.Deliver(IntSGIFlood, 0)
	e.Run()
	if fired != 2 || intercepted != 2 {
		t.Errorf("Deliver: fired=%d intercepted=%d, want 2 and 2", fired, intercepted)
	}
	g.SetRaiseInterceptor(nil)
	g.Raise(IntSGIFlood, 0)
	e.Run()
	if fired != 3 {
		t.Errorf("raise after removing interceptor: fired=%d, want 3", fired)
	}
}
