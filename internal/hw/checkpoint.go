package hw

import (
	"fmt"

	"satin/internal/simclock"
)

// Checkpoint support. The platform's capturable state is per-core: the
// TrustZone world (which must be NormalWorld at a claimable instant), the
// online bit (which must be set — hotplug fault windows are not claimable),
// the effective rates, and the secure timer registers plus its pending fire
// event. The GIC itself carries no state at a claimable instant: pending
// interrupt sets drain synchronously when a core returns to the normal world
// or comes back online, so with every core online and in the normal world
// they are provably empty — CheckpointIdle verifies instead of serializing.

// ClaimOwnerTimer names secure-timer claims in a checkpoint.
const ClaimOwnerTimer = "hw.timer"

// TimerState is one secure timer's registers at a checkpoint.
type TimerState struct {
	Enabled bool          `json:"enabled"`
	CVAL    simclock.Time `json:"cval"`
}

// CoreState is one core's architectural state at a checkpoint.
type CoreState struct {
	Rates CoreRates  `json:"rates"`
	Timer TimerState `json:"timer"`
}

// CheckpointState captures the core's state. It fails if the core is not
// idle in the checkpoint sense (normal world, online): such instants are not
// claimable and the caller should have stepped past them.
func (c *Core) CheckpointState() (CoreState, error) {
	if c.world != NormalWorld {
		return CoreState{}, fmt.Errorf("hw: core %d is in the %v world at the checkpoint instant", c.id, c.world)
	}
	if !c.online {
		return CoreState{}, fmt.Errorf("hw: core %d is offline at the checkpoint instant", c.id)
	}
	return CoreState{
		Rates: c.rates,
		Timer: TimerState{Enabled: c.timer.enabled, CVAL: c.timer.cval},
	}, nil
}

// RestoreState overwrites the core's state with a captured one. The timer's
// pending fire event (if any) is canceled here; the claim re-arm pass
// reschedules it at its recorded instant.
func (c *Core) RestoreState(st CoreState) error {
	if err := c.SetRates(st.Rates); err != nil {
		return err
	}
	c.timer.pending.Cancel()
	c.timer.pending = nil
	c.timer.enabled = st.Timer.Enabled
	c.timer.cval = st.Timer.CVAL
	return nil
}

// Claims reports the core's pending secure-timer fire event, if armed.
func (c *Core) Claims() []simclock.Claim {
	cl, ok := c.timer.pending.Claim(ClaimOwnerTimer, int64(c.id))
	if !ok {
		return nil
	}
	return []simclock.Claim{cl}
}

// RearmTimer reschedules the secure timer's fire event at the claimed
// instant, rebuilding the callback rearm would have installed.
func (c *Core) RearmTimer(claim simclock.Claim) error {
	t := c.timer
	if t.pending != nil {
		return fmt.Errorf("hw: core %d timer already has a pending fire event", c.id)
	}
	want := fmt.Sprintf("secure-timer-core%d", c.id)
	if claim.Name != want {
		return fmt.Errorf("hw: core %d timer claim names %q, want %q", c.id, claim.Name, want)
	}
	t.pending = t.engine.At(claim.When, want, func() {
		t.pending = nil
		t.gic.Raise(IntSecureTimer, t.core.id)
	})
	return nil
}

// CheckpointIdle verifies the GIC holds no pended interrupts — true by
// construction at a claimable instant, checked rather than assumed.
func (g *GIC) CheckpointIdle() error {
	for coreID, p := range g.pending {
		for id := range p {
			return fmt.Errorf("hw: interrupt %v still pended on core %d at the checkpoint instant", id, coreID)
		}
	}
	return nil
}
