package richos

import (
	"testing"
	"time"

	"satin/internal/hw"
	"satin/internal/mem"
	"satin/internal/simclock"
)

func newRig(t *testing.T) (*simclock.Engine, *hw.Platform, *mem.Image, *OS) {
	t.Helper()
	e := simclock.NewEngine()
	p, err := hw.NewJunoR1(e)
	if err != nil {
		t.Fatal(err)
	}
	im, err := mem.NewJunoImage(42)
	if err != nil {
		t.Fatal(err)
	}
	os, err := NewOS(p, im, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return e, p, im, os
}

// busyLoop computes in fixed quanta forever.
type busyLoop struct {
	quantum time.Duration
}

func (b *busyLoop) Next(*ThreadContext) Step { return Compute(b.quantum) }

// periodic computes then sleeps, recording when each period's work ran.
type periodic struct {
	work, sleep time.Duration
	ranAt       []simclock.Time
	computing   bool
}

func (p *periodic) Next(tc *ThreadContext) Step {
	if !p.computing {
		p.ranAt = append(p.ranAt, tc.Now())
		p.computing = true
		return Compute(p.work)
	}
	p.computing = false
	return Sleep(p.sleep)
}

func TestSpawnValidation(t *testing.T) {
	_, _, _, os := newRig(t)
	prog := &busyLoop{quantum: time.Millisecond}
	cases := []struct {
		name     string
		policy   Policy
		prio     int
		affinity []int
		program  Program
	}{
		{"nil program", PolicyCFS, 0, []int{0}, nil},
		{"bad policy", Policy(9), 0, []int{0}, prog},
		{"fifo prio too low", PolicyFIFO, 0, []int{0}, prog},
		{"fifo prio too high", PolicyFIFO, 100, []int{0}, prog},
		{"cfs with prio", PolicyCFS, 10, []int{0}, prog},
		{"empty affinity", PolicyCFS, 0, nil, prog},
		{"bad core", PolicyCFS, 0, []int{99}, prog},
		{"negative core", PolicyCFS, 0, []int{-1}, prog},
		{"repeated core", PolicyCFS, 0, []int{1, 1}, prog},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := os.Spawn("x", tc.policy, tc.prio, tc.affinity, tc.program); err == nil {
				t.Error("Spawn accepted invalid arguments")
			}
		})
	}
}

func TestNewOSValidatesConfig(t *testing.T) {
	e := simclock.NewEngine()
	p, err := hw.NewJunoR1(e)
	if err != nil {
		t.Fatal(err)
	}
	im, err := mem.NewJunoImage(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOS(p, im, Config{HZ: 50}); err == nil {
		t.Error("HZ below 100 accepted")
	}
	if _, err := NewOS(p, im, Config{HZ: 2000}); err == nil {
		t.Error("HZ above 1000 accepted")
	}
	if _, err := NewOS(p, im, Config{HZ: 250, CFSSlice: -time.Millisecond}); err == nil {
		t.Error("negative CFSSlice accepted")
	}
}

func TestIdlePlatformHasNoEvents(t *testing.T) {
	// CONFIG_NO_HZ_IDLE: with no threads, no ticks ever fire and the
	// engine drains immediately.
	e, _, _, _ := newRig(t)
	e.Run()
	if e.Now() != 0 {
		t.Errorf("idle platform advanced to %v; NO_HZ_IDLE should keep it silent", e.Now())
	}
}

func TestSingleThreadConsumesCPU(t *testing.T) {
	e, _, _, os := newRig(t)
	th, err := os.Spawn("busy", PolicyCFS, 0, []int{0}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(100 * time.Millisecond)
	// The thread should have nearly all the CPU (minus switch costs).
	if th.CPUTime() < 95*time.Millisecond || th.CPUTime() > 100*time.Millisecond {
		t.Errorf("CPUTime = %v, want ≈100ms", th.CPUTime())
	}
	if th.State() != StateRunning {
		t.Errorf("state = %v, want running", th.State())
	}
	if th.LastCore() != 0 || !th.Pinned() {
		t.Errorf("core = %d, pinned = %v", th.LastCore(), th.Pinned())
	}
}

func TestPeriodicSleepWake(t *testing.T) {
	e, _, _, os := newRig(t)
	prog := &periodic{work: time.Millisecond, sleep: 10 * time.Millisecond}
	if _, err := os.Spawn("periodic", PolicyCFS, 0, []int{1}, prog); err != nil {
		t.Fatal(err)
	}
	e.RunFor(100 * time.Millisecond)
	// Period is ~11ms plus small latencies: expect ~9 runs.
	if len(prog.ranAt) < 7 || len(prog.ranAt) > 10 {
		t.Fatalf("ran %d times, want ≈9", len(prog.ranAt))
	}
	for i := 1; i < len(prog.ranAt); i++ {
		gap := prog.ranAt[i].Sub(prog.ranAt[i-1])
		if gap < 11*time.Millisecond || gap > 13*time.Millisecond {
			t.Errorf("gap %d = %v, want ≈11ms", i, gap)
		}
	}
}

func TestCFSSharesCoreFairly(t *testing.T) {
	e, _, _, os := newRig(t)
	a, err := os.Spawn("a", PolicyCFS, 0, []int{0}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.Spawn("b", PolicyCFS, 0, []int{0}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(2 * time.Second)
	total := a.CPUTime() + b.CPUTime()
	if total < 1900*time.Millisecond {
		t.Errorf("combined CPU = %v, want ≈2s", total)
	}
	ratio := float64(a.CPUTime()) / float64(b.CPUTime())
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("CFS fairness ratio = %v (a=%v b=%v)", ratio, a.CPUTime(), b.CPUTime())
	}
	if a.Schedules() < 100 {
		t.Errorf("a scheduled %d times; tick-driven round-robin expected many slices", a.Schedules())
	}
}

func TestFIFOPreemptsCFSImmediately(t *testing.T) {
	e, _, _, os := newRig(t)
	if _, err := os.Spawn("cfs", PolicyCFS, 0, []int{0}, &busyLoop{quantum: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	prog := &periodic{work: 100 * time.Microsecond, sleep: 5 * time.Millisecond}
	if _, err := os.Spawn("rt", PolicyFIFO, MaxRTPriority, []int{0}, prog); err != nil {
		t.Fatal(err)
	}
	e.RunFor(50 * time.Millisecond)
	if len(prog.ranAt) < 8 {
		t.Fatalf("RT thread ran %d times in 50ms, want ≈9 (no preemption?)", len(prog.ranAt))
	}
	// Each wake-to-run latency must be tiny (wake latency, not CFS slice).
	for i := 1; i < len(prog.ranAt); i++ {
		gap := prog.ranAt[i].Sub(prog.ranAt[i-1])
		if gap > 6*time.Millisecond {
			t.Errorf("RT period %d = %v; RT wake should preempt CFS immediately", i, gap)
		}
	}
}

func TestFIFOPriorityOrdering(t *testing.T) {
	e, _, _, os := newRig(t)
	lo, err := os.Spawn("lo", PolicyFIFO, 10, []int{0}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := os.Spawn("hi", PolicyFIFO, 90, []int{0}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(100 * time.Millisecond)
	// The high-priority busy loop never sleeps, so the low one starves.
	if hi.CPUTime() < 95*time.Millisecond {
		t.Errorf("hi CPU = %v, want ≈100ms", hi.CPUTime())
	}
	if lo.CPUTime() > 5*time.Millisecond {
		t.Errorf("lo CPU = %v, want ≈0 (starved by higher FIFO prio)", lo.CPUTime())
	}
}

func TestEqualFIFONoPreemption(t *testing.T) {
	e, _, _, os := newRig(t)
	first, err := os.Spawn("first", PolicyFIFO, 50, []int{0}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	prog := &periodic{work: time.Millisecond, sleep: 3 * time.Millisecond}
	second, err := os.Spawn("second", PolicyFIFO, 50, []int{0}, prog)
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(100 * time.Millisecond)
	// SCHED_FIFO: equal priority never preempts a running thread, and the
	// first never blocks, so the second must starve after its initial queue.
	if second.CPUTime() > time.Millisecond {
		t.Errorf("equal-priority FIFO thread got %v CPU; must not preempt", second.CPUTime())
	}
	if first.CPUTime() < 95*time.Millisecond {
		t.Errorf("first CPU = %v", first.CPUTime())
	}
}

func TestThreadsSpreadAcrossCores(t *testing.T) {
	e, _, _, os := newRig(t)
	var threads []*Thread
	for i := 0; i < 6; i++ {
		th, err := os.Spawn("w", PolicyCFS, 0, os.AllCores(), &busyLoop{quantum: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		threads = append(threads, th)
	}
	e.RunFor(200 * time.Millisecond)
	used := make(map[int]bool)
	for _, th := range threads {
		used[th.LastCore()] = true
		if th.CPUTime() < 190*time.Millisecond {
			t.Errorf("%v got %v CPU; with 6 threads on 6 cores each should own one", th, th.CPUTime())
		}
	}
	if len(used) != 6 {
		t.Errorf("threads used %d cores, want 6", len(used))
	}
}

func TestExitAction(t *testing.T) {
	e, _, _, os := newRig(t)
	step := 0
	th, err := os.Spawn("oneshot", PolicyCFS, 0, []int{0}, ProgramFunc(func(tc *ThreadContext) Step {
		step++
		if step == 1 {
			return Compute(time.Millisecond)
		}
		return Exit()
	}))
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(50 * time.Millisecond)
	if th.State() != StateExited {
		t.Errorf("state = %v, want exited", th.State())
	}
	if step != 2 {
		t.Errorf("program stepped %d times, want 2", step)
	}
	if !os.IdleCore(0) {
		t.Error("core 0 not idle after thread exit")
	}
}

func TestYieldAlternates(t *testing.T) {
	e, _, _, os := newRig(t)
	var order []string
	mk := func(name string) Program {
		return ProgramFunc(func(tc *ThreadContext) Step {
			order = append(order, name)
			if len(order) > 40 {
				return Exit()
			}
			return Yield()
		})
	}
	if _, err := os.Spawn("a", PolicyCFS, 0, []int{0}, mk("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Spawn("b", PolicyCFS, 0, []int{0}, mk("b")); err != nil {
		t.Fatal(err)
	}
	e.RunFor(time.Second)
	if len(order) < 20 {
		t.Fatalf("only %d yield rounds ran", len(order))
	}
	// Yielding CFS threads must interleave, not monopolize.
	switches := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			switches++
		}
	}
	if switches < len(order)/3 {
		t.Errorf("only %d alternations in %d yields", switches, len(order))
	}
}

func TestInvalidStepsPanic(t *testing.T) {
	cases := []struct {
		name string
		step Step
	}{
		{"zero compute", Compute(0)},
		{"negative sleep", Sleep(-time.Second)},
		{"bad kind", Step{Kind: ActionKind(77)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, _, _, os := newRig(t)
			if _, err := os.Spawn("bad", PolicyCFS, 0, []int{0}, ProgramFunc(func(*ThreadContext) Step {
				return tc.step
			})); err != nil {
				t.Fatal(err)
			}
			defer func() {
				if recover() == nil {
					t.Error("invalid step did not panic")
				}
			}()
			e.RunFor(time.Second)
		})
	}
}

func TestPolicyAndStateStrings(t *testing.T) {
	if PolicyCFS.String() != "SCHED_OTHER" || PolicyFIFO.String() != "SCHED_FIFO" {
		t.Error("policy names wrong")
	}
	for _, s := range []ThreadState{StateReady, StateRunning, StateSleeping, StateExited, ThreadState(9)} {
		if s.String() == "" {
			t.Error("state must render")
		}
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy must render")
	}
}
