package richos

import (
	"testing"
	"time"

	"satin/internal/hw"
)

func TestFIFOThreadsNotPulledByIdleBalancer(t *testing.T) {
	e, _, _, os := newRig(t)
	// Two FIFO threads queued behind each other on core 0; core 1 idle.
	// The balancer must not reshuffle the FIFO contract even though the
	// waiter could legally run on core 1... it is pinned here, so spawn an
	// unpinned FIFO waiter instead.
	if _, err := os.Spawn("holder", PolicyFIFO, 50, []int{0}, &busyLoop{quantum: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	waiter, err := os.Spawn("waiter", PolicyFIFO, 40, []int{0, 1}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(50 * time.Millisecond)
	// The unpinned lower-priority FIFO thread was initially placed on the
	// emptier core 1 and runs there — placement, not balancing. Verify it
	// runs *somewhere* and that, once running, it is never migrated by
	// the idle balancer (which only pulls CFS).
	if waiter.CPUTime() < 40*time.Millisecond {
		t.Errorf("waiter starved: %v", waiter.CPUTime())
	}
}

func TestMultipleCoresSecureSimultaneously(t *testing.T) {
	e, p, _, os := newRig(t)
	var threads []*Thread
	for c := 0; c < 6; c++ {
		th, err := os.Spawn("w", PolicyCFS, 0, []int{c}, &busyLoop{quantum: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		threads = append(threads, th)
	}
	// Take three cores at once for 20ms.
	for _, c := range []int{0, 2, 4} {
		c := c
		e.After(40*time.Millisecond, "steal", func() { p.Core(c).SetWorld(hw.SecureWorld) })
		e.After(60*time.Millisecond, "release", func() { p.Core(c).SetWorld(hw.NormalWorld) })
	}
	e.RunFor(100 * time.Millisecond)
	for i, th := range threads {
		pinnedToStolen := i == 0 || i == 2 || i == 4
		want := 100 * time.Millisecond
		if pinnedToStolen {
			want = 80 * time.Millisecond
		}
		if th.CPUTime() < want-6*time.Millisecond || th.CPUTime() > want+time.Millisecond {
			t.Errorf("thread %d CPU = %v, want ≈%v", i, th.CPUTime(), want)
		}
	}
}

func TestWakeOntoSecureCoreWaits(t *testing.T) {
	e, p, _, os := newRig(t)
	prog := &periodic{work: 100 * time.Microsecond, sleep: 30 * time.Millisecond}
	if _, err := os.Spawn("sleeper", PolicyFIFO, MaxRTPriority, []int{2}, prog); err != nil {
		t.Fatal(err)
	}
	// The thread sleeps from ~0.1ms to ~30ms. Steal its core across the
	// wake instant.
	e.After(20*time.Millisecond, "steal", func() { p.Core(2).SetWorld(hw.SecureWorld) })
	e.After(50*time.Millisecond, "release", func() { p.Core(2).SetWorld(hw.NormalWorld) })
	e.RunFor(80 * time.Millisecond)
	// First run ≈0; second run must wait for the release at 50ms.
	if len(prog.ranAt) < 2 {
		t.Fatalf("ran %d times", len(prog.ranAt))
	}
	second := prog.ranAt[1].Duration()
	if second < 50*time.Millisecond || second > 52*time.Millisecond {
		t.Errorf("woken-during-secure run at %v, want just after 50ms release", second)
	}
}

func TestCrashStopsEverything(t *testing.T) {
	e, _, im, os := newRig(t)
	a, err := os.Spawn("a", PolicyCFS, 0, []int{0}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.Spawn("b", PolicyFIFO, 50, []int{1}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the IRQ vector at 30ms: next tick panics the kernel.
	e.After(30*time.Millisecond, "corrupt", func() {
		if err := im.Mem().PutUint64(im.Layout().IRQVectorAddr(), 0xBAD); err != nil {
			t.Error(err)
		}
	})
	e.RunFor(200 * time.Millisecond)
	crashed, _ := os.Crashed()
	if !crashed {
		t.Fatal("kernel did not crash")
	}
	// Both threads stopped making progress shortly after the corruption
	// (the next per-core tick, ≤4ms later).
	if a.CPUTime() > 40*time.Millisecond || b.CPUTime() > 40*time.Millisecond {
		t.Errorf("threads ran past the crash: a=%v b=%v", a.CPUTime(), b.CPUTime())
	}
}

func TestSecureEntryDuringCrashIsHarmless(t *testing.T) {
	e, p, im, os := newRig(t)
	if _, err := os.Spawn("w", PolicyCFS, 0, []int{0}, &busyLoop{quantum: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	e.After(10*time.Millisecond, "corrupt", func() {
		if err := im.Mem().PutUint64(im.Layout().IRQVectorAddr(), 0xBAD); err != nil {
			t.Error(err)
		}
	})
	// World changes after the crash must not panic the scheduler.
	e.After(50*time.Millisecond, "steal", func() { p.Core(0).SetWorld(hw.SecureWorld) })
	e.After(60*time.Millisecond, "release", func() { p.Core(0).SetWorld(hw.NormalWorld) })
	e.RunFor(100 * time.Millisecond)
	if crashed, _ := os.Crashed(); !crashed {
		t.Fatal("kernel did not crash")
	}
}

func TestExitedThreadNeverReturns(t *testing.T) {
	e, p, _, os := newRig(t)
	runs := 0
	th, err := os.Spawn("oneshot", PolicyCFS, 0, []int{3}, ProgramFunc(func(*ThreadContext) Step {
		runs++
		if runs > 1 {
			t.Error("program stepped after Exit")
		}
		return Exit()
	}))
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(10 * time.Millisecond)
	// Secure churn on its old core must not resurrect it.
	p.Core(3).SetWorld(hw.SecureWorld)
	p.Core(3).SetWorld(hw.NormalWorld)
	e.RunFor(10 * time.Millisecond)
	if th.State() != StateExited || runs != 1 {
		t.Errorf("state=%v runs=%d", th.State(), runs)
	}
}

func TestThreadCountsAndAccessors(t *testing.T) {
	_, _, _, os := newRig(t)
	th, err := os.Spawn("x", PolicyFIFO, 7, []int{1, 2}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if th.Policy() != PolicyFIFO || th.RTPriority() != 7 {
		t.Error("policy accessors wrong")
	}
	if th.Pinned() {
		t.Error("two-core affinity reported pinned")
	}
	if got := th.Affinity(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Affinity = %v", got)
	}
	if th.Name() != "x" || th.ID() != 0 {
		t.Errorf("Name/ID = %q/%d", th.Name(), th.ID())
	}
	if th.String() == "" {
		t.Error("String empty")
	}
	if len(os.Threads()) != 1 {
		t.Error("Threads() wrong")
	}
}
