package richos

import (
	"fmt"
)

// Pipe is a bounded byte channel between threads with blocking semantics —
// the kernel object beneath UnixBench's pipe throughput and pipe-based
// context switching benchmarks. Writers block when the buffer is full,
// readers when it is empty; each side wakes the other, so a one-byte
// ping-pong across two threads exercises the scheduler exactly as the real
// benchmark does.
//
// The Program execution model is non-blocking (Next returns a Step), so
// Read and Write are *attempts*: they return ok=false when the caller must
// Block and retry after being woken. pingPong in the tests shows the idiom.
type Pipe struct {
	os  *OS
	buf []byte
	// r, w are read/write cursors into a ring of len(buf)+1 virtual
	// positions (one slot kept empty to distinguish full from empty).
	r, w int
	// waiting threads, woken on state change.
	readers []*Thread
	writers []*Thread
}

// NewPipe creates a pipe with the given buffer capacity (Linux default is
// 64 KiB; the ping-pong benchmarks use tiny payloads).
func NewPipe(os *OS, capacity int) (*Pipe, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("richos: pipe capacity %d must be positive", capacity)
	}
	return &Pipe{os: os, buf: make([]byte, capacity+1)}, nil
}

// size reports the bytes currently buffered.
func (p *Pipe) size() int {
	return (p.w - p.r + len(p.buf)) % len(p.buf)
}

// Cap reports the pipe's capacity.
func (p *Pipe) Cap() int { return len(p.buf) - 1 }

// Len reports the bytes currently buffered.
func (p *Pipe) Len() int { return p.size() }

// Write attempts to enqueue data. It writes as much as fits and returns the
// byte count; n == 0 with ok == false means the pipe was full and the
// caller registered as a waiting writer: it must Block and retry on wake.
func (p *Pipe) Write(tc *ThreadContext, data []byte) (n int, ok bool) {
	free := p.Cap() - p.size()
	if free == 0 {
		p.writers = append(p.writers, tc.Thread())
		return 0, false
	}
	if len(data) < free {
		free = len(data)
	}
	for i := 0; i < free; i++ {
		p.buf[p.w] = data[i]
		p.w = (p.w + 1) % len(p.buf)
	}
	p.wakeReaders()
	return free, true
}

// Read attempts to dequeue up to len(out) bytes. n == 0 with ok == false
// means the pipe was empty and the caller registered as a waiting reader.
func (p *Pipe) Read(tc *ThreadContext, out []byte) (n int, ok bool) {
	avail := p.size()
	if avail == 0 {
		p.readers = append(p.readers, tc.Thread())
		return 0, false
	}
	if len(out) < avail {
		avail = len(out)
	}
	for i := 0; i < avail; i++ {
		out[i] = p.buf[p.r]
		p.r = (p.r + 1) % len(p.buf)
	}
	p.wakeWriters()
	return avail, true
}

func (p *Pipe) wakeReaders() {
	waiters := p.readers
	p.readers = nil
	for _, t := range waiters {
		p.os.Wake(t)
	}
}

func (p *Pipe) wakeWriters() {
	waiters := p.writers
	p.writers = nil
	for _, t := range waiters {
		p.os.Wake(t)
	}
}
