package richos

import (
	"fmt"
	"time"

	"satin/internal/hw"
	"satin/internal/mem"
	"satin/internal/simclock"
)

// armTick schedules the next scheduling-clock tick for a core. The tick is
// raised through the GIC as the non-secure timer PPI, so while the core is
// held by the secure world the interrupt pends and the tick chain stalls —
// exactly what freezes KProber-I's reports.
func (os *OS) armTick(cs *coreState) {
	cs.tickArmed = true
	period := time.Second / time.Duration(os.cfg.HZ)
	os.platform.Engine().After(period, fmt.Sprintf("tick-core%d", cs.id), func() {
		os.platform.GIC().Raise(hw.IntNSTimer, cs.id)
	})
}

// handleTimerIRQ is the CPU's response to the non-secure timer PPI: fetch
// the IRQ exception vector from kernel memory and jump to whatever it
// points at. This is the dispatch KProber-I hijacks by rewriting the vector
// bytes — and the hijack is visible to any introspection that hashes the
// vector table's area.
func (os *OS) handleTimerIRQ(coreID int) {
	if os.crashed {
		return
	}
	vector, err := os.image.Mem().Uint64(os.image.Layout().IRQVectorAddr())
	if err != nil {
		os.crash(fmt.Sprintf("IRQ vector unreadable: %v", err))
		return
	}
	handler, ok := os.irqHandlers[vector]
	if !ok {
		// The vector points into the weeds: instant kernel panic.
		os.crash(fmt.Sprintf("IRQ vector %#x points at unmapped code", vector))
		return
	}
	handler(coreID)
}

// KernelTick is the benign timer-interrupt body: run the scheduler's tick
// work and re-arm the per-core timer. A hijacking IRQ handler that wants to
// stay stealthy must call this to resume normal interrupt handling, just as
// KProber-I's trampoline jumps back to the original handler.
func (os *OS) KernelTick(coreID int) {
	cs := os.cores[coreID]
	os.schedulerTick(cs)
	// CONFIG_NO_HZ_IDLE: keep ticking only while there is work.
	if cs.current != nil || cs.readyCount() > 0 {
		os.armTick(cs)
	} else {
		cs.tickArmed = false
	}
}

// schedulerTick is the CFS preemption check: round-robin the core among CFS
// threads once the running one has had its slice.
func (os *OS) schedulerTick(cs *coreState) {
	t := cs.current
	if t == nil || t.policy != PolicyCFS || len(cs.cfs) == 0 {
		return
	}
	ran := os.platform.Engine().Now().Sub(cs.sliceStart)
	if ran < os.cfg.CFSSlice {
		return
	}
	os.preempt(cs)
	os.dispatch(cs)
}

// dispatchSyscall performs a system call: fetch the handler pointer from the
// live syscall table in kernel memory and jump to it.
func (os *OS) dispatchSyscall(tc *ThreadContext, nr int) (uint64, error) {
	layout := os.image.Layout()
	if nr < 0 || nr >= layout.SyscallCount {
		return 0, fmt.Errorf("richos: syscall %d out of range", nr)
	}
	target, err := os.image.Mem().Uint64(layout.SyscallEntryAddr(nr))
	if err != nil {
		return 0, fmt.Errorf("richos: syscall table unreadable: %w", err)
	}
	handler, ok := os.syscallHandlers[target]
	if !ok {
		return 0, fmt.Errorf("richos: syscall %d vector %#x points at unmapped code", nr, target)
	}
	return handler(tc, nr), nil
}

// SetMMU routes kernel-privilege writes through a permission-checking MMU.
// Synchronous-introspection guards install one (see internal/syncguard);
// without it, KernelWrite is a plain physical write.
func (os *OS) SetMMU(m *mem.MMU) { os.mmu = m }

// MMU returns the installed MMU, or nil.
func (os *OS) MMU() *mem.MMU { return os.mmu }

// KernelWrite performs a kernel-privilege memory write — the path rootkits
// and kernel modules use. With an MMU installed, writes to write-protected
// pages trap to the synchronous guard exactly as under SPROBES/TZ-RKP
// (§VII-A); raw physical access (image.Mem().Write) models the
// write-what-where exploit channel that bypasses this mediation.
func (os *OS) KernelWrite(addr uint64, data []byte) error {
	if os.mmu != nil {
		return os.mmu.Write(addr, data)
	}
	return os.image.Mem().Write(addr, data)
}

// KernelPutUint64 is KernelWrite for a 64-bit little-endian value.
func (os *OS) KernelPutUint64(addr uint64, v uint64) error {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	return os.KernelWrite(addr, buf[:])
}

// IdleCore reports whether core id currently has neither a running nor a
// ready thread. Tests and diagnostics only.
func (os *OS) IdleCore(id int) bool {
	cs := os.cores[id]
	return cs.current == nil && cs.readyCount() == 0
}

// CurrentThread reports the thread running on core id, or nil. Tests and
// diagnostics only.
func (os *OS) CurrentThread(id int) *Thread { return os.cores[id].current }

// ReadCounter exposes the shared physical counter to modeled software.
func (os *OS) ReadCounter() simclock.Time { return os.platform.ReadCounter() }
