// Package richos models the rich OS of the paper's normal world: a
// Linux-like kernel (the testbed ran OpenEmbedded with lsk-4.4-armlt)
// reduced to the mechanisms the paper's attack and defense actually
// exercise:
//
//   - threads with CPU affinity, scheduled per core by a simplified CFS and
//     a SCHED_FIFO real-time class (KProber-II raises its threads to the
//     maximum FIFO priority, §III-C2);
//   - a per-core scheduling-clock tick at HZ in the CONFIG_NO_HZ_IDLE
//     style — no ticks on idle cores (§III-C1);
//   - a timer-interrupt path that dispatches through the exception vector
//     table *as bytes in kernel memory*, so KProber-I's hijack is a real,
//     introspection-visible modification;
//   - a syscall table dispatched the same way, so the sample GETTID rootkit
//     is a real 8-byte modification (§IV-A2).
//
// Crucially for the paper's threat model, nothing in this package reads a
// core's TrustZone world to make visible decisions for modeled software:
// when the secure world steals a core, threads on it simply stop making
// progress, which is exactly the side channel TZ-Evader measures.
package richos

import (
	"fmt"
	"time"

	"satin/internal/simclock"
)

// Policy is a scheduling class.
type Policy int

// Scheduling classes, mirroring Linux: SCHED_FIFO beats CFS; higher FIFO
// priority beats lower.
const (
	PolicyCFS Policy = iota + 1
	PolicyFIFO
)

// String names the policy like Linux does.
func (p Policy) String() string {
	switch p {
	case PolicyCFS:
		return "SCHED_OTHER"
	case PolicyFIFO:
		return "SCHED_FIFO"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// FIFO priority bounds, as in Linux. KProber-II uses MaxRTPriority
// (sched_get_priority_max(SCHED_FIFO), §IV-A1).
const (
	MinRTPriority = 1
	MaxRTPriority = 99
)

// ThreadState is a thread's lifecycle state.
type ThreadState int

// Thread states.
const (
	StateReady ThreadState = iota + 1
	StateRunning
	StateSleeping
	StateExited
)

// String names the state.
func (s ThreadState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StateExited:
		return "exited"
	default:
		return fmt.Sprintf("ThreadState(%d)", int(s))
	}
}

// Thread is one schedulable entity.
type Thread struct {
	id      int
	name    string
	policy  Policy
	rtPrio  int
	program Program

	// affinity is the set of cores the thread may run on; pinned threads
	// have exactly one. The probers pin one thread per core (§III-B1).
	affinity []int

	state ThreadState
	// core is the core the thread is on (running or queued) or last ran on.
	core int

	// pendingCompute is CPU time the thread still owes before its program
	// is consulted again — the remainder after a preemption or secure-world
	// pause, plus any dispatch latency.
	pendingCompute time.Duration

	// vruntime is the CFS virtual runtime.
	vruntime time.Duration

	// enqueueSeq orders FIFO threads of equal priority.
	enqueueSeq uint64

	wake *simclock.Handle

	// Accounting.
	cpuTime      time.Duration
	schedules    int
	securePauses int
}

// ID reports the thread's identifier.
func (t *Thread) ID() int { return t.id }

// Name reports the thread's name.
func (t *Thread) Name() string { return t.name }

// Policy reports the scheduling class.
func (t *Thread) Policy() Policy { return t.policy }

// RTPriority reports the FIFO priority (0 for CFS threads).
func (t *Thread) RTPriority() int { return t.rtPrio }

// State reports the lifecycle state.
func (t *Thread) State() ThreadState { return t.state }

// Affinity returns the cores the thread may run on. Callers must not mutate
// the returned slice.
func (t *Thread) Affinity() []int { return t.affinity }

// Pinned reports whether the thread is fixed to a single core.
func (t *Thread) Pinned() bool { return len(t.affinity) == 1 }

// LastCore reports the core the thread is running or queued on, or last ran
// on.
func (t *Thread) LastCore() int { return t.core }

// CPUTime reports the total CPU time the thread has consumed. Workload
// throughput measurements are built on this.
func (t *Thread) CPUTime() time.Duration { return t.cpuTime }

// Schedules reports how many times the thread was dispatched.
func (t *Thread) Schedules() int { return t.schedules }

// SecurePauses reports how many times the thread lost its core to the
// secure world mid-run.
func (t *Thread) SecurePauses() int { return t.securePauses }

// allows reports whether the thread may run on core id.
func (t *Thread) allows(id int) bool {
	for _, c := range t.affinity {
		if c == id {
			return true
		}
	}
	return false
}

// String renders like "thread3(reporter-2)".
func (t *Thread) String() string {
	return fmt.Sprintf("thread%d(%s)", t.id, t.name)
}

// beats reports whether a waking thread t should immediately preempt the
// running thread cur: RT beats CFS, and higher RT priority beats lower
// (SCHED_FIFO semantics — equal priority does not preempt).
func (t *Thread) beats(cur *Thread) bool {
	if t.policy == PolicyFIFO && cur.policy == PolicyCFS {
		return true
	}
	if t.policy == PolicyFIFO && cur.policy == PolicyFIFO {
		return t.rtPrio > cur.rtPrio
	}
	return false
}
