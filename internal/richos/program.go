package richos

import (
	"time"

	"satin/internal/simclock"
)

// ActionKind says what a thread wants to do next.
type ActionKind int

// Thread actions.
const (
	// ActionCompute occupies the CPU for Dur of CPU time (wall time may be
	// longer under preemption or secure-world pauses).
	ActionCompute ActionKind = iota + 1
	// ActionSleep blocks the thread for Dur, then it becomes ready.
	ActionSleep
	// ActionYield returns the CPU and requeues the thread.
	ActionYield
	// ActionExit terminates the thread.
	ActionExit
	// ActionBlock parks the thread with no timer: it runs again only when
	// another thread (or kernel code) calls OS.Wake on it. The primitive
	// beneath blocking I/O such as pipe reads.
	ActionBlock
)

// Step is one scheduling decision returned by a Program.
type Step struct {
	Kind ActionKind
	Dur  time.Duration
}

// Convenience constructors for Steps.
func Compute(d time.Duration) Step { return Step{Kind: ActionCompute, Dur: d} }
func Sleep(d time.Duration) Step   { return Step{Kind: ActionSleep, Dur: d} }
func Yield() Step                  { return Step{Kind: ActionYield} }
func Exit() Step                   { return Step{Kind: ActionExit} }
func Block() Step                  { return Step{Kind: ActionBlock} }

// Program is the behavior of a thread: a state machine stepped each time
// the thread has the CPU and owes no pending compute. All side effects
// (reading the shared counter, writing report buffers, invoking syscalls)
// happen inside Next, at the virtual instant it is called.
type Program interface {
	Next(tc *ThreadContext) Step
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(tc *ThreadContext) Step

// Next implements Program.
func (f ProgramFunc) Next(tc *ThreadContext) Step { return f(tc) }

// ThreadContext is what a Program sees while it runs.
type ThreadContext struct {
	os     *OS
	thread *Thread
	coreID int
}

// Now reports the current virtual time. Modeled software may use it freely:
// it is the shared counter CNTPCT_EL0, readable from EL0.
func (tc *ThreadContext) Now() simclock.Time { return tc.os.platform.ReadCounter() }

// OS returns the rich OS the thread runs under.
func (tc *ThreadContext) OS() *OS { return tc.os }

// Thread returns the running thread.
func (tc *ThreadContext) Thread() *Thread { return tc.thread }

// CoreID reports which core the thread is executing on.
func (tc *ThreadContext) CoreID() int { return tc.coreID }

// Syscall performs a system call through the live syscall table in kernel
// memory — the dispatch path the sample rootkit hijacks.
func (tc *ThreadContext) Syscall(nr int) (uint64, error) {
	return tc.os.dispatchSyscall(tc, nr)
}
