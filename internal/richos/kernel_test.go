package richos

import (
	"strings"
	"testing"
	"time"

	"satin/internal/hw"
	"satin/internal/mem"
	"satin/internal/simclock"
)

func TestSyscallBenignDispatch(t *testing.T) {
	e, _, _, os := newRig(t)
	var got uint64
	var gotErr error
	done := false
	if _, err := os.Spawn("caller", PolicyCFS, 0, []int{0}, ProgramFunc(func(tc *ThreadContext) Step {
		if done {
			return Exit()
		}
		got, gotErr = tc.Syscall(mem.GettidNR)
		done = true
		return Compute(time.Microsecond)
	})); err != nil {
		t.Fatal(err)
	}
	e.RunFor(10 * time.Millisecond)
	if gotErr != nil || got != uint64(mem.GettidNR) {
		t.Errorf("Syscall(gettid) = %d, %v; want %d", got, gotErr, mem.GettidNR)
	}
}

func TestSyscallHijackThroughLiveTable(t *testing.T) {
	e, _, im, os := newRig(t)
	// The rootkit pattern: register malicious code in the module arena and
	// rewrite the live table entry to point at it.
	evil := im.ModuleBase() + 0x100
	hijackCalls := 0
	os.RegisterSyscallHandler(evil, func(tc *ThreadContext, nr int) uint64 {
		hijackCalls++
		return 0xBAD
	})
	entry := im.Layout().SyscallEntryAddr(mem.GettidNR)
	if err := im.Mem().PutUint64(entry, evil); err != nil {
		t.Fatal(err)
	}
	var results []uint64
	calls := 0
	if _, err := os.Spawn("victim", PolicyCFS, 0, []int{0}, ProgramFunc(func(tc *ThreadContext) Step {
		calls++
		switch calls {
		case 1:
			v, err := tc.Syscall(mem.GettidNR)
			if err != nil {
				t.Errorf("hijacked syscall errored: %v", err)
			}
			results = append(results, v)
			// Attacker restores the entry (hiding its trace).
			if err := im.RestoreStatic(entry, 8); err != nil {
				t.Errorf("restore: %v", err)
			}
			return Compute(time.Microsecond)
		case 2:
			v, err := tc.Syscall(mem.GettidNR)
			if err != nil {
				t.Errorf("restored syscall errored: %v", err)
			}
			results = append(results, v)
			return Compute(time.Microsecond)
		default:
			return Exit()
		}
	})); err != nil {
		t.Fatal(err)
	}
	e.RunFor(50 * time.Millisecond)
	if hijackCalls != 1 {
		t.Errorf("malicious handler called %d times, want 1", hijackCalls)
	}
	if len(results) != 2 || results[0] != 0xBAD || results[1] != uint64(mem.GettidNR) {
		t.Errorf("results = %v, want [0xBAD, gettid]", results)
	}
}

func TestSyscallOutOfRangeAndUnmapped(t *testing.T) {
	e, _, im, os := newRig(t)
	checked := false
	if _, err := os.Spawn("prober", PolicyCFS, 0, []int{0}, ProgramFunc(func(tc *ThreadContext) Step {
		if checked {
			return Exit()
		}
		checked = true
		if _, err := tc.Syscall(-1); err == nil {
			t.Error("negative syscall accepted")
		}
		if _, err := tc.Syscall(im.Layout().SyscallCount); err == nil {
			t.Error("out-of-range syscall accepted")
		}
		// Point an entry at unmapped code: the call must fail.
		entry := im.Layout().SyscallEntryAddr(5)
		if err := im.Mem().PutUint64(entry, 0xDEAD); err != nil {
			t.Fatal(err)
		}
		if _, err := tc.Syscall(5); err == nil {
			t.Error("unmapped syscall vector dispatched")
		}
		return Compute(time.Microsecond)
	})); err != nil {
		t.Fatal(err)
	}
	e.RunFor(10 * time.Millisecond)
	if !checked {
		t.Fatal("prober never ran")
	}
}

func TestIRQVectorHijack(t *testing.T) {
	e, _, im, os := newRig(t)
	// KProber-I pattern: prober body in the module arena, IRQ vector
	// rewritten to reach it, trampoline back into the kernel tick.
	proberAddr := im.ModuleBase() + 0x2000
	proberTicks := 0
	os.RegisterIRQHandler(proberAddr, func(coreID int) {
		proberTicks++
		os.KernelTick(coreID) // trampoline to the original handler
	})
	if err := im.Mem().PutUint64(im.Layout().IRQVectorAddr(), proberAddr); err != nil {
		t.Fatal(err)
	}
	// A busy thread keeps core 0 out of NO_HZ idle so ticks keep coming.
	if _, err := os.Spawn("busy", PolicyCFS, 0, []int{0}, &busyLoop{quantum: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	e.RunFor(100 * time.Millisecond)
	// HZ=250 ⇒ 25 ticks in 100ms on the busy core.
	if proberTicks < 20 || proberTicks > 30 {
		t.Errorf("hijacked handler ran %d times, want ≈25 (HZ=250)", proberTicks)
	}
	if crashed, msg := os.Crashed(); crashed {
		t.Errorf("kernel crashed: %s", msg)
	}
	// The hijack is visible in memory: introspection diff shows the vector.
	modified := im.Modified()
	if len(modified) == 0 {
		t.Fatal("vector hijack left no memory trace")
	}
	vecAddr := im.Layout().IRQVectorAddr()
	for _, a := range modified {
		if a < vecAddr || a >= vecAddr+8 {
			t.Errorf("unexpected modified byte at %#x", a)
		}
	}
}

func TestIRQVectorToGarbageCrashesKernel(t *testing.T) {
	e, _, im, os := newRig(t)
	if err := im.Mem().PutUint64(im.Layout().IRQVectorAddr(), 0x1234); err != nil {
		t.Fatal(err)
	}
	th, err := os.Spawn("busy", PolicyCFS, 0, []int{0}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(100 * time.Millisecond)
	crashed, msg := os.Crashed()
	if !crashed {
		t.Fatal("kernel survived a garbage IRQ vector")
	}
	if !strings.Contains(msg, "unmapped") {
		t.Errorf("crash message = %q", msg)
	}
	// After the crash nothing runs.
	if th.CPUTime() > 10*time.Millisecond {
		t.Errorf("thread kept running after crash: %v", th.CPUTime())
	}
}

func TestSecureWorldPausesPinnedThread(t *testing.T) {
	e, p, _, os := newRig(t)
	th, err := os.Spawn("pinned", PolicyCFS, 0, []int{2}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var pausedThreads []*Thread
	os.OnSecurePause(func(t *Thread, coreID int) { pausedThreads = append(pausedThreads, t) })

	// Steal core 2 for 20ms starting at t=50ms.
	e.After(50*time.Millisecond, "steal", func() { p.Core(2).SetWorld(hw.SecureWorld) })
	e.After(70*time.Millisecond, "release", func() { p.Core(2).SetWorld(hw.NormalWorld) })
	e.RunFor(100 * time.Millisecond)

	// The thread lost the 20ms window: ~80ms of CPU, not 100.
	if th.CPUTime() < 75*time.Millisecond || th.CPUTime() > 85*time.Millisecond {
		t.Errorf("CPUTime = %v, want ≈80ms (paused during secure window)", th.CPUTime())
	}
	if th.SecurePauses() != 1 {
		t.Errorf("SecurePauses = %d, want 1", th.SecurePauses())
	}
	if len(pausedThreads) != 1 || pausedThreads[0] != th {
		t.Errorf("pause hook saw %v", pausedThreads)
	}
	if th.LastCore() != 2 {
		t.Errorf("pinned thread migrated to core %d", th.LastCore())
	}
}

func TestSecureWorldMigratesUnpinnedThread(t *testing.T) {
	e, p, _, os := newRig(t)
	// Two floating threads; give each its own core initially.
	a, err := os.Spawn("a", PolicyCFS, 0, []int{0, 1}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.Spawn("b", PolicyCFS, 0, []int{0, 1}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Steal whichever core thread a is on.
	var stolen int
	e.After(50*time.Millisecond, "steal", func() {
		stolen = a.LastCore()
		p.Core(stolen).SetWorld(hw.SecureWorld)
	})
	e.RunFor(100 * time.Millisecond)
	// a should have migrated to the other core and kept running (sharing).
	if a.LastCore() == stolen {
		t.Errorf("unpinned thread stayed on stolen core %d", stolen)
	}
	// Both threads keep accumulating CPU: combined ≈ 100ms (one core) +
	// 50ms (second core before steal).
	total := a.CPUTime() + b.CPUTime()
	if total < 140*time.Millisecond {
		t.Errorf("combined CPU = %v, want ≈150ms", total)
	}
}

func TestSleepingPinnedThreadWaitsForSecureExit(t *testing.T) {
	e, p, _, os := newRig(t)
	prog := &periodic{work: 100 * time.Microsecond, sleep: 10 * time.Millisecond}
	if _, err := os.Spawn("reporter", PolicyFIFO, MaxRTPriority, []int{3}, prog); err != nil {
		t.Fatal(err)
	}
	// Steal core 3 from 35ms to 85ms.
	e.After(35*time.Millisecond, "steal", func() { p.Core(3).SetWorld(hw.SecureWorld) })
	e.After(85*time.Millisecond, "release", func() { p.Core(3).SetWorld(hw.NormalWorld) })
	e.RunFor(150 * time.Millisecond)

	// No run instant may fall inside the secure window: the pinned
	// reporter freezes — this IS the side channel TZ-Evader reads.
	for _, at := range prog.ranAt {
		d := at.Duration()
		if d > 36*time.Millisecond && d < 85*time.Millisecond {
			t.Errorf("pinned thread ran at %v inside the secure window", at)
		}
	}
	// And it resumes promptly after release.
	resumed := false
	for _, at := range prog.ranAt {
		d := at.Duration()
		if d >= 85*time.Millisecond && d < 87*time.Millisecond {
			resumed = true
		}
	}
	if !resumed {
		t.Errorf("thread did not resume promptly; runs: %v", prog.ranAt)
	}
}

func TestTickStallsWhileCoreSecure(t *testing.T) {
	e, p, im, os := newRig(t)
	proberAddr := im.ModuleBase() + 0x2000
	var tickTimes []simclock.Time
	os.RegisterIRQHandler(proberAddr, func(coreID int) {
		tickTimes = append(tickTimes, e.Now())
		os.KernelTick(coreID)
	})
	if err := im.Mem().PutUint64(im.Layout().IRQVectorAddr(), proberAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Spawn("busy", PolicyCFS, 0, []int{0}, &busyLoop{quantum: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	e.After(40*time.Millisecond, "steal", func() { p.Core(0).SetWorld(hw.SecureWorld) })
	e.After(80*time.Millisecond, "release", func() { p.Core(0).SetWorld(hw.NormalWorld) })
	e.RunFor(150 * time.Millisecond)
	// Ticks must not fire on the core while it is in the secure world
	// (they pend at the GIC), and must resume after release.
	var during, after int
	for _, at := range tickTimes {
		d := at.Duration()
		if d > 40*time.Millisecond && d < 80*time.Millisecond {
			during++
		}
		if d >= 80*time.Millisecond {
			after++
		}
	}
	if during != 0 {
		t.Errorf("%d ticks fired during the secure window (KProber-I would keep reporting!)", during)
	}
	if after < 10 {
		t.Errorf("only %d ticks after release; tick chain did not resume", after)
	}
}

func TestCurrentThreadAndReadCounter(t *testing.T) {
	e, _, _, os := newRig(t)
	th, err := os.Spawn("busy", PolicyCFS, 0, []int{5}, &busyLoop{quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(5 * time.Millisecond)
	if os.CurrentThread(5) != th {
		t.Error("CurrentThread(5) mismatch")
	}
	if os.IdleCore(5) {
		t.Error("busy core reported idle")
	}
	if os.ReadCounter() != simclock.Time(5*time.Millisecond) {
		t.Errorf("ReadCounter = %v", os.ReadCounter())
	}
}
