package richos

import (
	"testing"
	"time"

	"satin/internal/hw"
)

// pingPonger bounces one byte across two pipes — one side of UnixBench's
// pipe-based context switching benchmark.
type pingPonger struct {
	in, out *Pipe
	// serve is true for the side that starts by reading.
	serve      bool
	sent       int64
	cost       time.Duration
	buf        [1]byte
	needsWrite bool
}

func (p *pingPonger) Next(tc *ThreadContext) Step {
	for {
		if p.needsWrite {
			if _, ok := p.out.Write(tc, p.buf[:]); !ok {
				return Block()
			}
			p.needsWrite = false
			p.sent++
			if p.cost > 0 {
				return Compute(p.cost)
			}
			continue
		}
		if _, ok := p.in.Read(tc, p.buf[:]); !ok {
			return Block()
		}
		p.needsWrite = true
	}
}

func startPingPong(t *testing.T, os *OS, cores []int, cost time.Duration) (*pingPonger, *pingPonger) {
	t.Helper()
	a2b, err := NewPipe(os, 16)
	if err != nil {
		t.Fatal(err)
	}
	b2a, err := NewPipe(os, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Side A starts by writing (kick the ball); side B by reading.
	a := &pingPonger{in: b2a, out: a2b, needsWrite: true, cost: cost}
	b := &pingPonger{in: a2b, out: b2a, cost: cost}
	if _, err := os.Spawn("ping", PolicyCFS, 0, cores, a); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Spawn("pong", PolicyCFS, 0, cores, b); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestPipeValidation(t *testing.T) {
	_, _, _, os := newRig(t)
	if _, err := NewPipe(os, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	p, err := NewPipe(os, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cap() != 8 || p.Len() != 0 {
		t.Errorf("Cap/Len = %d/%d", p.Cap(), p.Len())
	}
}

func TestPipeRingWrap(t *testing.T) {
	_, _, _, os := newRig(t)
	p, err := NewPipe(os, 4)
	if err != nil {
		t.Fatal(err)
	}
	tc := &ThreadContext{os: os, thread: &Thread{}}
	// Fill, drain, refill across the wrap point.
	if n, ok := p.Write(tc, []byte{1, 2, 3}); !ok || n != 3 {
		t.Fatalf("write = %d, %v", n, ok)
	}
	out := make([]byte, 2)
	if n, ok := p.Read(tc, out); !ok || n != 2 || out[0] != 1 || out[1] != 2 {
		t.Fatalf("read = %d, %v, %v", n, ok, out)
	}
	if n, ok := p.Write(tc, []byte{4, 5, 6}); !ok || n != 3 {
		t.Fatalf("wrap write = %d, %v", n, ok)
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (full)", p.Len())
	}
	// Full pipe rejects and registers the writer.
	if _, ok := p.Write(tc, []byte{9}); ok {
		t.Fatal("write to full pipe succeeded")
	}
	got := make([]byte, 8)
	n, ok := p.Read(tc, got)
	if !ok || n != 4 {
		t.Fatalf("drain = %d, %v", n, ok)
	}
	want := []byte{3, 4, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got[:n], want)
		}
	}
	// Empty pipe rejects and registers the reader.
	if _, ok := p.Read(tc, got); ok {
		t.Fatal("read from empty pipe succeeded")
	}
}

func TestPipePingPongSameCore(t *testing.T) {
	// Two threads ping-ponging on one core: every exchange is a pair of
	// block/wake context switches, like the UnixBench benchmark.
	e, _, _, os := newRig(t)
	a, b := startPingPong(t, os, []int{0}, 50*time.Microsecond)
	e.RunFor(time.Second)
	// Each round trip costs ≈2×(50µs compute + switch overhead): expect
	// thousands of exchanges, split evenly.
	if a.sent < 4000 || b.sent < 4000 {
		t.Errorf("exchanges: a=%d b=%d, want ≈8000 each... at least 4000", a.sent, b.sent)
	}
	diff := a.sent - b.sent
	if diff < -1 || diff > 1 {
		t.Errorf("ping/pong unbalanced: a=%d b=%d", a.sent, b.sent)
	}
}

func TestPipePingPongCrossCore(t *testing.T) {
	e, _, _, os := newRig(t)
	a, _ := startPingPong(t, os, []int{0, 1}, 50*time.Microsecond)
	e.RunFor(time.Second)
	if a.sent < 4000 {
		t.Errorf("cross-core exchanges = %d", a.sent)
	}
}

func TestPipePingPongPausedBySecureWorld(t *testing.T) {
	// The ping-pong pair stalls while its cores are in the secure world
	// and resumes afterwards — the disruption behind the context_switching
	// bar in Figure 7.
	e, p, _, os := newRig(t)
	a, _ := startPingPong(t, os, []int{2}, 50*time.Microsecond)
	e.RunFor(500 * time.Millisecond)
	before := a.sent
	p.Core(2).SetWorld(hw.SecureWorld)
	e.RunFor(100 * time.Millisecond)
	during := a.sent
	if during != before {
		t.Errorf("exchanges advanced (%d -> %d) while the core was secure", before, during)
	}
	p.Core(2).SetWorld(hw.NormalWorld)
	e.RunFor(100 * time.Millisecond)
	if a.sent <= during {
		t.Error("ping-pong did not resume after release")
	}
}

func TestWakeSemantics(t *testing.T) {
	e, _, _, os := newRig(t)
	runs := 0
	th, err := os.Spawn("blocker", PolicyCFS, 0, []int{0}, ProgramFunc(func(*ThreadContext) Step {
		runs++
		return Block()
	}))
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(10 * time.Millisecond)
	if runs != 1 || th.State() != StateSleeping {
		t.Fatalf("runs=%d state=%v after block", runs, th.State())
	}
	// Waking a running/ready thread is a no-op; waking the blocked one
	// reschedules it.
	os.Wake(th)
	e.RunFor(10 * time.Millisecond)
	if runs != 2 {
		t.Errorf("runs = %d after wake, want 2", runs)
	}
	// Wake also cancels a timer sleep early.
	slept := 0
	th2, err := os.Spawn("sleeper", PolicyCFS, 0, []int{1}, ProgramFunc(func(*ThreadContext) Step {
		slept++
		return Sleep(time.Hour)
	}))
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(time.Millisecond)
	os.Wake(th2)
	e.RunFor(10 * time.Millisecond)
	if slept != 2 {
		t.Errorf("sleeper ran %d times, want 2 (woken early)", slept)
	}
}
