package richos

import (
	"fmt"
	"time"

	"satin/internal/hw"
	"satin/internal/mem"
	"satin/internal/simclock"
)

// Config tunes the rich OS.
type Config struct {
	// HZ is the scheduling-clock tick frequency per core. Linux configures
	// 100 <= HZ <= 1000 (§III-C1); lsk-4.4 defaults land in the middle.
	HZ int
	// CFSSlice is how long a CFS thread may run before a tick hands the
	// core to a waiting CFS peer.
	CFSSlice time.Duration
	// Seed drives the OS's scheduling-noise randomness.
	Seed uint64
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{HZ: 250, CFSSlice: 6 * time.Millisecond, Seed: 1}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.HZ == 0 {
		c.HZ = d.HZ
	}
	if c.CFSSlice == 0 {
		c.CFSSlice = d.CFSSlice
	}
	return c
}

func (c Config) validate() error {
	if c.HZ < 100 || c.HZ > 1000 {
		return fmt.Errorf("richos: HZ %d outside Linux's [100, 1000]", c.HZ)
	}
	if c.CFSSlice <= 0 {
		return fmt.Errorf("richos: CFSSlice %v must be positive", c.CFSSlice)
	}
	return nil
}

// SyscallHandler is kernel code reached through the syscall table.
type SyscallHandler func(tc *ThreadContext, nr int) uint64

// IRQHandler is kernel code reached through the exception vector table.
type IRQHandler func(coreID int)

// coreState is the per-core scheduler state.
type coreState struct {
	id      int
	current *Thread
	// computeDone fires when the current thread's scheduled CPU chunk ends.
	computeDone  *simclock.Handle
	computeStart simclock.Time
	computeLen   time.Duration
	// sliceStart is when the current thread was dispatched; the tick's CFS
	// round-robin check measures the slice from here.
	sliceStart  simclock.Time
	fifo        []*Thread // ready FIFO threads, (prio desc, enqueue order)
	cfs         []*Thread // ready CFS threads, picked by min vruntime
	minVruntime time.Duration
	tickArmed   bool
	inSecure    bool
}

func (cs *coreState) readyCount() int { return len(cs.fifo) + len(cs.cfs) }

// OS is the modeled rich OS.
type OS struct {
	platform *hw.Platform
	image    *mem.Image
	cfg      Config
	rng      *simclock.RNG

	threads  []*Thread
	cores    []*coreState
	nextSeq  uint64
	crashed  bool
	crashMsg string

	irqHandlers     map[uint64]IRQHandler
	syscallHandlers map[uint64]SyscallHandler
	mmu             *mem.MMU

	onSecurePause []func(t *Thread, coreID int)
}

// NewOS boots the rich OS on the platform with the given kernel image: it
// installs the benign timer-interrupt and syscall handlers behind the
// addresses the pristine kernel image holds, and claims the non-secure
// timer interrupt from the GIC.
func NewOS(p *hw.Platform, image *mem.Image, cfg Config) (*OS, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	os := &OS{
		platform:        p,
		image:           image,
		cfg:             cfg,
		rng:             simclock.NewRNG(cfg.Seed, "richos.sched"),
		irqHandlers:     make(map[uint64]IRQHandler),
		syscallHandlers: make(map[uint64]SyscallHandler),
	}
	os.cores = make([]*coreState, p.NumCores())
	for i := range os.cores {
		os.cores[i] = &coreState{id: i}
	}

	// The benign timer-interrupt handler lives at the address the pristine
	// IRQ exception vector points to.
	layout := image.Layout()
	benignIRQ, err := image.Mem().Uint64(layout.IRQVectorAddr())
	if err != nil {
		return nil, fmt.Errorf("richos: reading IRQ vector: %w", err)
	}
	os.irqHandlers[benignIRQ] = os.KernelTick

	// Benign syscall handlers for the whole table.
	for nr := 0; nr < layout.SyscallCount; nr++ {
		nr := nr
		os.syscallHandlers[image.BenignHandler(nr)] = func(*ThreadContext, int) uint64 {
			return uint64(nr)
		}
	}

	p.GIC().Register(hw.IntNSTimer, os.handleTimerIRQ)
	for _, core := range p.Cores() {
		core.OnWorldChange(os.onWorldChange)
	}
	return os, nil
}

// Platform returns the hardware the OS runs on.
func (os *OS) Platform() *hw.Platform { return os.platform }

// Image returns the kernel image.
func (os *OS) Image() *mem.Image { return os.image }

// Config returns the effective configuration.
func (os *OS) Config() Config { return os.cfg }

// Threads returns all spawned threads. Callers must not mutate the slice.
func (os *OS) Threads() []*Thread { return os.threads }

// Crashed reports whether the kernel took an unrecoverable fault (e.g. an
// exception vector pointing at unmapped code).
func (os *OS) Crashed() (bool, string) { return os.crashed, os.crashMsg }

// OnSecurePause registers fn to run whenever a running thread loses its core
// to the secure world. The workload harness uses it to model the cache and
// pipeline disruption an interruption costs.
func (os *OS) OnSecurePause(fn func(t *Thread, coreID int)) {
	os.onSecurePause = append(os.onSecurePause, fn)
}

// RegisterIRQHandler maps kernel-code address addr to fn, as if code were
// loaded there. KProber-I loads its prober body in the module arena and
// points the IRQ exception vector at it (§IV-A1).
func (os *OS) RegisterIRQHandler(addr uint64, fn IRQHandler) {
	os.irqHandlers[addr] = fn
}

// RegisterSyscallHandler maps kernel-code address addr to fn. The sample
// rootkit registers its malicious GETTID body this way (§IV-A2).
func (os *OS) RegisterSyscallHandler(addr uint64, fn SyscallHandler) {
	os.syscallHandlers[addr] = fn
}

// Spawn creates and starts a thread. affinity lists the cores the thread
// may run on; FIFO threads need a priority in [MinRTPriority, MaxRTPriority]
// while CFS threads must pass 0.
func (os *OS) Spawn(name string, policy Policy, rtPrio int, affinity []int, program Program) (*Thread, error) {
	if program == nil {
		return nil, fmt.Errorf("richos: thread %q has no program", name)
	}
	switch policy {
	case PolicyFIFO:
		if rtPrio < MinRTPriority || rtPrio > MaxRTPriority {
			return nil, fmt.Errorf("richos: FIFO priority %d outside [%d, %d]", rtPrio, MinRTPriority, MaxRTPriority)
		}
	case PolicyCFS:
		if rtPrio != 0 {
			return nil, fmt.Errorf("richos: CFS thread %q must have priority 0, got %d", name, rtPrio)
		}
	default:
		return nil, fmt.Errorf("richos: unknown policy %v", policy)
	}
	if len(affinity) == 0 {
		return nil, fmt.Errorf("richos: thread %q has empty affinity", name)
	}
	seen := make(map[int]bool, len(affinity))
	for _, c := range affinity {
		if c < 0 || c >= os.platform.NumCores() {
			return nil, fmt.Errorf("richos: thread %q affinity includes core %d; platform has %d cores", name, c, os.platform.NumCores())
		}
		if seen[c] {
			return nil, fmt.Errorf("richos: thread %q affinity repeats core %d", name, c)
		}
		seen[c] = true
	}
	t := &Thread{
		id:       len(os.threads),
		name:     name,
		policy:   policy,
		rtPrio:   rtPrio,
		program:  program,
		affinity: append([]int(nil), affinity...),
		state:    StateReady,
		core:     affinity[0],
	}
	os.threads = append(os.threads, t)
	os.place(t)
	return t, nil
}

// AllCores returns the affinity mask covering every core.
func (os *OS) AllCores() []int {
	ids := make([]int, os.platform.NumCores())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// place picks a core for a ready thread and enqueues it there, kicking the
// scheduler if the thread can run immediately.
func (os *OS) place(t *Thread) {
	if t.state != StateReady {
		panic(fmt.Sprintf("richos: place %v in state %v", t, t.state))
	}
	best := -1
	bestScore := int(^uint(0) >> 1)
	for _, cid := range t.affinity {
		cs := os.cores[cid]
		score := cs.readyCount()
		if cs.current != nil {
			score++
		}
		if cs.inSecure {
			// A core the secure world holds makes no progress; avoid it
			// unless it is the only option (pinned threads).
			score += 100
		}
		// Prefer the warm (last) core on ties, then lower IDs.
		if score < bestScore || (score == bestScore && cid == t.core && best != t.core) {
			best, bestScore = cid, score
		}
	}
	os.enqueue(os.cores[best], t)
}

// insert adds a ready thread to the core's queues without any scheduling
// side effects.
func (os *OS) insert(cs *coreState, t *Thread) {
	t.core = cs.id
	switch t.policy {
	case PolicyFIFO:
		t.enqueueSeq = os.nextSeq
		os.nextSeq++
		// Insert keeping (prio desc, seq asc).
		pos := len(cs.fifo)
		for i, other := range cs.fifo {
			if t.rtPrio > other.rtPrio {
				pos = i
				break
			}
		}
		cs.fifo = append(cs.fifo, nil)
		copy(cs.fifo[pos+1:], cs.fifo[pos:])
		cs.fifo[pos] = t
	case PolicyCFS:
		if t.vruntime < cs.minVruntime {
			t.vruntime = cs.minVruntime
		}
		cs.cfs = append(cs.cfs, t)
	}
}

// enqueue inserts a ready thread and kicks the scheduler: an idle core
// dispatches, and a FIFO thread that beats the running one preempts it.
func (os *OS) enqueue(cs *coreState, t *Thread) {
	os.insert(cs, t)
	if cs.inSecure {
		return // the core makes no progress until the secure world leaves
	}
	if cs.current == nil {
		os.dispatch(cs)
		return
	}
	if t.beats(cs.current) {
		os.preempt(cs)
		os.dispatch(cs)
	}
}

// pickNext removes and returns the next thread to run, or nil.
func (cs *coreState) pickNext() *Thread {
	if len(cs.fifo) > 0 {
		t := cs.fifo[0]
		cs.fifo = append(cs.fifo[:0], cs.fifo[1:]...)
		return t
	}
	if len(cs.cfs) == 0 {
		return nil
	}
	min := 0
	for i, t := range cs.cfs {
		if t.vruntime < cs.cfs[min].vruntime {
			min = i
		}
	}
	t := cs.cfs[min]
	cs.cfs = append(cs.cfs[:min], cs.cfs[min+1:]...)
	return t
}

// dispatch picks the next thread for an empty core and starts it.
func (os *OS) dispatch(cs *coreState) {
	if cs.current != nil {
		panic(fmt.Sprintf("richos: dispatch on busy core %d", cs.id))
	}
	if cs.inSecure || os.crashed {
		return
	}
	t := cs.pickNext()
	if t == nil {
		// Idle load balancing: pull a migratable waiter from the most
		// loaded core, like the kernel's idle balancer. Without this, a
		// thread migrated off a secure-world-held core would leave its
		// old core permanently empty after release.
		if donor := os.busiestDonor(cs.id); donor != nil {
			os.pullFrom(donor, cs)
			t = cs.pickNext()
		}
		if t == nil {
			return // idle; NO_HZ_IDLE lets the tick die in handleTimerIRQ
		}
	}
	cs.current = t
	t.state = StateRunning
	t.core = cs.id
	t.schedules++
	cs.sliceStart = os.platform.Engine().Now()
	if t.policy == PolicyCFS && t.vruntime > cs.minVruntime {
		cs.minVruntime = t.vruntime
	}
	// Dispatch latency: runqueue work and the context switch. Modeled as
	// CPU time the thread owes before its program logic runs — it is the
	// baseline jitter in the probers' report times.
	t.pendingCompute += os.platform.Perf().ThreadWakeLatency.Draw(os.rng)
	if !cs.tickArmed {
		os.armTick(cs)
	}
	os.runChunk(cs)
}

// runChunk runs the current thread: either the compute it still owes, or
// its program's next step.
func (os *OS) runChunk(cs *coreState) {
	t := cs.current
	for {
		if t.pendingCompute > 0 {
			cs.computeStart = os.platform.Engine().Now()
			cs.computeLen = t.pendingCompute
			cs.computeDone = os.platform.Engine().After(cs.computeLen,
				fmt.Sprintf("compute-%s-core%d", t.name, cs.id),
				func() { os.computeDone(cs) })
			return
		}
		step := t.program.Next(&ThreadContext{os: os, thread: t, coreID: cs.id})
		switch step.Kind {
		case ActionCompute:
			if step.Dur <= 0 {
				panic(fmt.Sprintf("richos: %v Compute(%v); duration must be positive", t, step.Dur))
			}
			t.pendingCompute = step.Dur
		case ActionSleep:
			if step.Dur <= 0 {
				panic(fmt.Sprintf("richos: %v Sleep(%v); duration must be positive", t, step.Dur))
			}
			os.sleepThread(cs, t, step.Dur)
			return
		case ActionYield:
			t.state = StateReady
			cs.current = nil
			// A yield costs a context switch; bill it as owed compute so a
			// lone yielding thread cannot spin the simulation in place.
			t.pendingCompute += os.platform.Perf().ThreadWakeLatency.Draw(os.rng)
			os.enqueue(cs, t)
			if cs.current == nil {
				os.dispatch(cs)
			}
			return
		case ActionExit:
			t.state = StateExited
			cs.current = nil
			os.dispatch(cs)
			return
		case ActionBlock:
			t.state = StateSleeping
			cs.current = nil
			os.dispatch(cs)
			return
		default:
			panic(fmt.Sprintf("richos: %v returned invalid action %d", t, step.Kind))
		}
	}
}

// computeDone finishes the current CPU chunk and consults the program again.
func (os *OS) computeDone(cs *coreState) {
	t := cs.current
	if t == nil {
		panic(fmt.Sprintf("richos: compute completion on empty core %d", cs.id))
	}
	cs.computeDone = nil
	t.cpuTime += cs.computeLen
	t.vruntime += cs.computeLen
	t.pendingCompute -= cs.computeLen
	if t.pendingCompute < 0 {
		t.pendingCompute = 0
	}
	os.runChunk(cs)
}

// haltCurrent stops the running thread mid-chunk, accounting the CPU time it
// actually got, and returns it. The caller decides where it goes next.
func (os *OS) haltCurrent(cs *coreState) *Thread {
	t := cs.current
	if t == nil {
		return nil
	}
	if cs.computeDone != nil {
		cs.computeDone.Cancel()
		cs.computeDone = nil
		consumed := os.platform.Engine().Now().Sub(cs.computeStart)
		t.cpuTime += consumed
		t.vruntime += consumed
		t.pendingCompute -= consumed
		if t.pendingCompute < 0 {
			t.pendingCompute = 0
		}
	}
	cs.current = nil
	t.state = StateReady
	return t
}

// preempt kicks the running thread back to its queue without dispatching;
// the caller dispatches once afterwards.
func (os *OS) preempt(cs *coreState) {
	t := os.haltCurrent(cs)
	if t == nil {
		return
	}
	// Returning to the queue after preemption costs the switch back in.
	t.pendingCompute += os.platform.Perf().ThreadWakeLatency.Draw(os.rng)
	os.insert(cs, t)
}

// Wake makes a blocked (or timer-sleeping) thread ready immediately — the
// wake side of the Block primitive. Waking a thread that is not sleeping is
// a no-op, matching wake_up_process semantics.
func (os *OS) Wake(t *Thread) {
	if t.state != StateSleeping {
		return
	}
	if t.wake != nil {
		t.wake.Cancel()
		t.wake = nil
	}
	t.state = StateReady
	os.place(t)
}

// sleepThread blocks the current thread for d.
func (os *OS) sleepThread(cs *coreState, t *Thread, d time.Duration) {
	t.state = StateSleeping
	cs.current = nil
	t.wake = os.platform.Engine().After(d, fmt.Sprintf("wake-%s", t.name), func() {
		t.wake = nil
		t.state = StateReady
		os.place(t)
	})
	os.dispatch(cs)
}

// onWorldChange reacts to the secure world taking or releasing a core.
func (os *OS) onWorldChange(core *hw.Core, _, newWorld hw.World) {
	cs := os.cores[core.ID()]
	if newWorld == hw.SecureWorld {
		cs.inSecure = true
		if t := os.haltCurrent(cs); t != nil {
			t.securePauses++
			for _, fn := range os.onSecurePause {
				fn(t, cs.id)
			}
			if t.Pinned() {
				// Fixed affinity: the thread is stuck until the core
				// returns — the side channel of §III-B1.
				os.insert(cs, t)
			} else {
				os.place(t)
			}
		}
		// The kernel migrates waiting threads off a stalled core when
		// their affinity allows it.
		os.migrateWaiters(cs)
		return
	}
	cs.inSecure = false
	if cs.current == nil {
		os.dispatch(cs)
	}
}

// busiestDonor returns the core with the most queued threads that has at
// least one thread allowed to run on core id, or nil.
func (os *OS) busiestDonor(id int) *coreState {
	var donor *coreState
	best := 0
	for _, other := range os.cores {
		if other.id == id {
			continue
		}
		if other.readyCount() <= best {
			continue
		}
		if os.migratableTo(other, id) >= 0 {
			donor = other
			best = other.readyCount()
		}
	}
	return donor
}

// migratableTo finds a queued CFS thread on donor that may run on core id,
// returning its index in donor.cfs or -1. Only CFS threads are pulled: FIFO
// queue order is a priority contract the balancer must not reshuffle.
func (os *OS) migratableTo(donor *coreState, id int) int {
	for i, t := range donor.cfs {
		if !t.Pinned() && t.allows(id) {
			return i
		}
	}
	return -1
}

// pullFrom moves one migratable thread from donor to cs.
func (os *OS) pullFrom(donor, cs *coreState) {
	i := os.migratableTo(donor, cs.id)
	if i < 0 {
		return
	}
	t := donor.cfs[i]
	donor.cfs = append(donor.cfs[:i], donor.cfs[i+1:]...)
	os.insert(cs, t)
}

// migrateWaiters re-places every queued thread that may run elsewhere.
func (os *OS) migrateWaiters(cs *coreState) {
	var stay []*Thread
	var move []*Thread
	for _, t := range cs.fifo {
		if t.Pinned() {
			stay = append(stay, t)
		} else {
			move = append(move, t)
		}
	}
	cs.fifo = stay
	var stayCFS []*Thread
	for _, t := range cs.cfs {
		if t.Pinned() {
			stayCFS = append(stayCFS, t)
		} else {
			move = append(move, t)
		}
	}
	cs.cfs = stayCFS
	for _, t := range move {
		os.place(t)
	}
}

// crash marks the kernel dead: scheduling stops platform-wide.
func (os *OS) crash(msg string) {
	if os.crashed {
		return
	}
	os.crashed = true
	os.crashMsg = msg
	for _, cs := range os.cores {
		os.haltCurrent(cs)
		cs.fifo = nil
		cs.cfs = nil
	}
}
