package faultinject

import (
	"fmt"
	"time"

	"satin/internal/hw"
	"satin/internal/obs"
	"satin/internal/simclock"
	"satin/internal/trace"
	"satin/internal/trustzone"
)

// hotplugRetryGap is how long a deferred offline transition waits for the
// target core to leave the secure world.
const hotplugRetryGap = 50 * time.Microsecond

// Injector is an installed fault plan. All randomness comes from named
// simclock streams seeded at Install, and every draw happens inside engine
// events, so a faulted run is exactly reproducible for a given (seed, plan)
// regardless of worker count.
type Injector struct {
	plan     Plan
	platform *hw.Platform
	monitor  *trustzone.Monitor

	rngJitter *simclock.RNG
	rngIRQ    *simclock.RNG
	rngSwitch *simclock.RNG

	// base is each core's calibrated rates at install; jitter and freq are
	// the composable rescale factors currently applied on top of them
	// (effective = base × jitter / freq).
	base   []hw.CoreRates
	jitter []float64
	freq   []float64

	injected int

	// scheduled tracks the handles of the plan's DVFS and hotplug events, so
	// a checkpoint restore can verify them present (see checkpoint.go).
	scheduled []*simclock.Handle

	bus        *obs.Bus
	totalCtr   *obs.Counter
	dvfsCtr    *obs.Counter
	hotplugCtr *obs.Counter
	delayCtr   *obs.Counter
	dropCtr    *obs.Counter
	spikeCtr   *obs.Counter
}

// Install validates plan against the platform and wires it in: jitter is
// applied to every core immediately, DVFS and hotplug events are scheduled
// on the engine, and the IRQ/switch hooks are installed. An empty plan
// installs no hooks at all — the simulation's hot path is untouched and its
// output byte-identical to an uninstrumented run. bus and reg may be nil.
func Install(plan Plan, plat *hw.Platform, mon *trustzone.Monitor, seed uint64, bus *obs.Bus, reg *obs.Registry) (*Injector, error) {
	if plat == nil {
		return nil, fmt.Errorf("faultinject: nil platform")
	}
	if mon == nil {
		return nil, fmt.Errorf("faultinject: nil monitor")
	}
	if err := plan.Validate(plat.NumCores()); err != nil {
		return nil, err
	}
	in := &Injector{
		plan:       plan,
		platform:   plat,
		monitor:    mon,
		bus:        bus,
		totalCtr:   reg.Counter("fault.injected"),
		dvfsCtr:    reg.Counter("fault.dvfs_steps"),
		hotplugCtr: reg.Counter("fault.hotplug_transitions"),
		delayCtr:   reg.Counter("fault.irq_delays"),
		dropCtr:    reg.Counter("fault.irq_drops"),
		spikeCtr:   reg.Counter("fault.switch_spikes"),
	}
	if plan.Empty() {
		return in, nil
	}
	n := plat.NumCores()
	in.base = make([]hw.CoreRates, n)
	in.jitter = make([]float64, n)
	in.freq = make([]float64, n)
	for i := 0; i < n; i++ {
		in.base[i] = plat.Core(i).Rates()
		in.jitter[i] = 1
		in.freq[i] = 1
	}
	if plan.RateJitter > 0 {
		in.rngJitter = simclock.NewRNG(seed, "faultinject.jitter")
		for i := 0; i < n; i++ {
			j := plan.RateJitter
			in.jitter[i] = 1 - j + 2*j*in.rngJitter.Float64()
			in.applyRates(i)
			in.record(trace.Event{
				At: plat.Engine().Now().Duration(), Kind: trace.KindFault, Core: i, Area: -1,
				Detail: fmt.Sprintf("jitter factor=%.4f", in.jitter[i]),
			}, nil)
		}
	}
	for _, step := range plan.DVFS {
		step := step
		in.scheduleAt(step.At, fmt.Sprintf("fault-dvfs-core%d", step.Core), func() {
			in.applyDVFS(step)
		})
	}
	for _, ev := range plan.Hotplug {
		ev := ev
		in.scheduleAt(ev.At, fmt.Sprintf("fault-hotplug-core%d", ev.Core), func() {
			in.applyHotplug(ev)
		})
	}
	if plan.IRQ.enabled() {
		in.rngIRQ = simclock.NewRNG(seed, "faultinject.irq")
		plat.GIC().SetRaiseInterceptor(in.interceptRaise)
	}
	if plan.Switch.enabled() || plan.RateJitter > 0 {
		if plan.Switch.enabled() {
			in.rngSwitch = simclock.NewRNG(seed, "faultinject.switch")
		}
		mon.SetSwitchPerturb(in.perturbSwitch)
	}
	return in, nil
}

// Plan returns the installed plan.
func (in *Injector) Plan() Plan { return in.plan }

// Injected reports how many faults have been injected so far.
func (in *Injector) Injected() int { return in.injected }

// record counts one injected fault, publishes its trace event, and bumps
// the kind-specific counter.
func (in *Injector) record(ev trace.Event, kindCtr *obs.Counter) {
	in.injected++
	in.totalCtr.Inc()
	kindCtr.Inc()
	in.bus.Publish(ev)
}

// scheduleAt runs fn at virtual time at, or immediately when the engine is
// already past it (an injector installed mid-run).
func (in *Injector) scheduleAt(at time.Duration, name string, fn func()) {
	engine := in.platform.Engine()
	t := simclock.Time(at)
	if t.Before(engine.Now()) {
		fn()
		return
	}
	in.scheduled = append(in.scheduled, engine.At(t, name, fn))
}

// applyRates recomputes and installs core i's effective rates through the
// validated setter.
func (in *Injector) applyRates(i int) {
	scale := in.jitter[i] / in.freq[i]
	if err := in.platform.Core(i).SetRates(in.base[i].Scaled(scale)); err != nil {
		// Plan validation bounds jitter to (0, 2) and factors to > 0, so a
		// rejected rescale means the injector itself is broken.
		panic(fmt.Sprintf("faultinject: rescaling core %d by %v: %v", i, scale, err))
	}
}

// applyDVFS performs one frequency step.
func (in *Injector) applyDVFS(step DVFSStep) {
	cores := []int{step.Core}
	if step.Core == -1 {
		cores = cores[:0]
		for i := 0; i < in.platform.NumCores(); i++ {
			cores = append(cores, i)
		}
	}
	for _, c := range cores {
		in.freq[c] = step.Factor
		in.applyRates(c)
	}
	in.record(trace.Event{
		At: in.platform.Engine().Now().Duration(), Kind: trace.KindFault, Core: step.Core, Area: -1,
		Detail: fmt.Sprintf("dvfs factor=%.4f", step.Factor),
	}, in.dvfsCtr)
}

// applyHotplug performs one hotplug transition, deferring an offline while
// the core executes in the secure world (PSCI CPU_OFF runs from the rich
// OS, which is not scheduled while the core is away).
func (in *Injector) applyHotplug(ev HotplugEvent) {
	core := in.platform.Core(ev.Core)
	if !ev.Online && in.monitor.InSecure(ev.Core) {
		in.platform.Engine().After(hotplugRetryGap, fmt.Sprintf("fault-hotplug-wait-core%d", ev.Core), func() {
			in.applyHotplug(ev)
		})
		return
	}
	if core.Online() == ev.Online {
		return
	}
	core.SetOnline(ev.Online)
	detail := "hotplug offline"
	if ev.Online {
		detail = "hotplug online"
	}
	in.record(trace.Event{
		At: in.platform.Engine().Now().Duration(), Kind: trace.KindFault, Core: ev.Core, Area: -1,
		Detail: detail,
	}, in.hotplugCtr)
}

// interceptRaise implements the GIC fault hook: drop or delay an interrupt
// assertion, completing delivery later via GIC.Deliver (which bypasses this
// interceptor).
func (in *Injector) interceptRaise(id hw.IntID, coreID int) bool {
	u := in.rngIRQ.Float64()
	switch {
	case u < in.plan.IRQ.DropProb:
		in.dropRaise(id, coreID, 1)
		return true
	case u < in.plan.IRQ.DropProb+in.plan.IRQ.DelayProb:
		d := in.plan.IRQ.Delay.Draw(in.rngIRQ)
		in.record(trace.Event{
			At: in.platform.Engine().Now().Duration(), Kind: trace.KindFault, Core: coreID, Area: -1,
			Detail: fmt.Sprintf("irq-delay %v +%v", id, d),
		}, in.delayCtr)
		in.platform.Engine().After(d, fmt.Sprintf("fault-irq-delay-core%d", coreID), func() {
			in.platform.GIC().Deliver(id, coreID)
		})
		return true
	}
	return false
}

// dropRaise models one dropped edge: the source re-asserts after a backoff,
// and after MaxRetries consecutive drops the assertion is delivered
// unconditionally, so no interrupt is ever lost for good.
func (in *Injector) dropRaise(id hw.IntID, coreID, attempt int) {
	in.record(trace.Event{
		At: in.platform.Engine().Now().Duration(), Kind: trace.KindFault, Core: coreID, Area: -1,
		Detail: fmt.Sprintf("irq-drop %v attempt=%d", id, attempt),
	}, in.dropCtr)
	retryDelay := in.plan.IRQ.RetryDelay
	if retryDelay == (simclock.Dist{}) {
		retryDelay = DefaultIRQRetryDelay
	}
	maxRetries := in.plan.IRQ.MaxRetries
	if maxRetries == 0 {
		maxRetries = DefaultIRQMaxRetries
	}
	d := retryDelay.Draw(in.rngIRQ)
	in.platform.Engine().After(d, fmt.Sprintf("fault-irq-retry-core%d", coreID), func() {
		if attempt < maxRetries && in.rngIRQ.Bool(in.plan.IRQ.DropProb) {
			in.dropRaise(id, coreID, attempt+1)
			return
		}
		in.platform.GIC().Deliver(id, coreID)
	})
}

// perturbSwitch implements the monitor's dispatch-latency hook: jittered
// cores stretch (or shrink) every entry's dispatch proportionally, and spike
// faults add a random extra latency to a fraction of entries. The monitor
// charges the returned latency after the core has left the normal world but
// before the payload runs (see Monitor.SetSwitchPerturb).
func (in *Injector) perturbSwitch(coreID int, base time.Duration) time.Duration {
	var extra time.Duration
	if in.plan.RateJitter > 0 {
		extra += time.Duration(float64(base) * (in.jitter[coreID] - 1))
	}
	if in.plan.Switch.enabled() && in.rngSwitch.Bool(in.plan.Switch.SpikeProb) {
		spike := in.plan.Switch.Spike.Draw(in.rngSwitch)
		extra += spike
		in.record(trace.Event{
			At: in.platform.Engine().Now().Duration(), Kind: trace.KindFault, Core: coreID, Area: -1,
			Detail: fmt.Sprintf("switch-spike +%v", spike),
		}, in.spikeCtr)
	}
	return extra
}
