// Package faultinject is the deterministic perturbation layer: it composes
// over the assembled simulation and injects hardware-timing faults without
// touching the hot path when disabled. The SATIN paper's headline result
// (10/10 detections, §VI-B1) rests on a timing race decided by the Table I
// point estimates; real boards drift — DVFS steps, hotplug, interrupt
// latency, world-switch variance (Amacher & Schiavoni measured all four) —
// so this package lets experiments chart where the race flips.
//
// Five fault kinds are modeled, all seeded through simclock's named RNG
// streams so a faulted run stays byte-identical for any worker count:
//
//   - per-core rate jitter: each core's per-byte rates are rescaled once at
//     install by a factor drawn from [1-j, 1+j], modeling part-to-part and
//     thermal spread around the calibration;
//   - DVFS steps: scheduled frequency changes that rescale a core's
//     CoreRates mid-run through the validated hw.Core.SetRates path;
//   - core hotplug: scheduled offline/online transitions that force SATIN's
//     multi-core collaboration to re-route introspection slots;
//   - interrupt delay/drop: a hw.GIC raise interceptor that postpones or
//     drops assertions, dropped edges re-raised with a bounded retry;
//   - switch spikes: extra secure-world entry latency on a fraction of
//     trustzone.Monitor world switches.
//
// A Plan describes what to inject; an Injector (Install) wires it into a
// platform. Every injected fault is published as a trace "fault" event and
// counted in the metrics registry.
package faultinject

import (
	"fmt"
	"math"
	"time"

	"satin/internal/simclock"
)

// DVFSStep is one scheduled frequency change: at virtual time At, the
// target core's clock moves to Factor times the calibrated frequency, so
// its per-byte rates (seconds per byte) scale by 1/Factor. Factor 0.5 halves
// the clock and doubles every per-byte time.
type DVFSStep struct {
	At     time.Duration
	Core   int // core ID, or -1 for all cores
	Factor float64
}

// HotplugEvent is one scheduled hotplug transition for a core. If the core
// is executing in the secure world at At, the transition waits until it
// exits — on hardware the PSCI CPU_OFF call runs from the rich OS, which is
// not scheduled while the core is away.
type HotplugEvent struct {
	At     time.Duration
	Core   int
	Online bool
}

// IRQFaults perturbs interrupt delivery at the GIC. Each Raise is
// independently delayed with probability DelayProb or dropped with
// probability DropProb; a dropped edge is re-raised after RetryDelay, and
// after MaxRetries consecutive drops it is delivered unconditionally —
// bounded loss, so no interrupt is ever lost for good and the simulation
// cannot wedge.
type IRQFaults struct {
	DelayProb float64
	Delay     simclock.Dist
	DropProb  float64
	// RetryDelay is the backoff before a dropped edge re-asserts. Zero
	// value defaults to DefaultIRQRetryDelay.
	RetryDelay simclock.Dist
	// MaxRetries bounds consecutive drops of one assertion. Zero defaults
	// to DefaultIRQMaxRetries.
	MaxRetries int
}

// Default IRQ retry parameters, used when a plan leaves them zero.
var DefaultIRQRetryDelay = simclock.Seconds(50e-6, 100e-6, 200e-6)

// DefaultIRQMaxRetries bounds consecutive drops of one interrupt assertion.
const DefaultIRQMaxRetries = 3

func (f IRQFaults) enabled() bool { return f.DelayProb > 0 || f.DropProb > 0 }

// SwitchFaults adds entry-latency spikes to world switches: with
// probability SpikeProb a secure-world entry spends an extra draw from Spike
// in the secure dispatch path — after the core has left the normal world
// (so its reporters are already frozen) but before the payload runs. Large
// spikes therefore widen TZ-Evader's window instead of merely delaying the
// whole round.
type SwitchFaults struct {
	SpikeProb float64
	Spike     simclock.Dist
}

func (f SwitchFaults) enabled() bool { return f.SpikeProb > 0 }

// Plan describes a deterministic set of perturbations. The zero Plan
// injects nothing, and an empty plan installs nothing: runs are
// byte-identical to an uninstrumented simulation.
type Plan struct {
	// RateJitter j rescales each core's per-byte rates once at install by
	// an independent factor drawn from [1-j, 1+j] (and stretches its world
	// switches by the same factor). Must be in [0, 1).
	RateJitter float64
	DVFS       []DVFSStep
	Hotplug    []HotplugEvent
	IRQ        IRQFaults
	Switch     SwitchFaults
}

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	return p.RateJitter == 0 && len(p.DVFS) == 0 && len(p.Hotplug) == 0 &&
		!p.IRQ.enabled() && !p.Switch.enabled()
}

// Validate checks the plan against a platform with numCores cores.
func (p Plan) Validate(numCores int) error {
	if p.RateJitter < 0 || p.RateJitter >= 1 || math.IsNaN(p.RateJitter) {
		return fmt.Errorf("faultinject: rate jitter %v outside [0, 1)", p.RateJitter)
	}
	for i, s := range p.DVFS {
		if s.At < 0 {
			return fmt.Errorf("faultinject: dvfs step %d at negative time %v", i, s.At)
		}
		if s.Core != -1 && (s.Core < 0 || s.Core >= numCores) {
			return fmt.Errorf("faultinject: dvfs step %d targets core %d of %d", i, s.Core, numCores)
		}
		if !(s.Factor > 0) || math.IsInf(s.Factor, 0) {
			return fmt.Errorf("faultinject: dvfs step %d has non-positive factor %v", i, s.Factor)
		}
	}
	for i, h := range p.Hotplug {
		if h.At < 0 {
			return fmt.Errorf("faultinject: hotplug event %d at negative time %v", i, h.At)
		}
		if h.Core < 0 || h.Core >= numCores {
			return fmt.Errorf("faultinject: hotplug event %d targets core %d of %d", i, h.Core, numCores)
		}
	}
	if err := validProb("irq delay", p.IRQ.DelayProb); err != nil {
		return err
	}
	if err := validProb("irq drop", p.IRQ.DropProb); err != nil {
		return err
	}
	if p.IRQ.DelayProb+p.IRQ.DropProb > 1 {
		return fmt.Errorf("faultinject: irq delay+drop probability %v exceeds 1",
			p.IRQ.DelayProb+p.IRQ.DropProb)
	}
	if p.IRQ.DelayProb > 0 {
		if err := p.IRQ.Delay.Validate(); err != nil {
			return fmt.Errorf("faultinject: irq delay: %w", err)
		}
		if p.IRQ.Delay.Avg <= 0 {
			return fmt.Errorf("faultinject: irq delay avg %v must be positive", p.IRQ.Delay.Avg)
		}
	}
	if p.IRQ.DropProb > 0 && p.IRQ.RetryDelay != (simclock.Dist{}) {
		if err := p.IRQ.RetryDelay.Validate(); err != nil {
			return fmt.Errorf("faultinject: irq retry delay: %w", err)
		}
	}
	if p.IRQ.MaxRetries < 0 {
		return fmt.Errorf("faultinject: irq max retries %d negative", p.IRQ.MaxRetries)
	}
	if err := validProb("switch spike", p.Switch.SpikeProb); err != nil {
		return err
	}
	if p.Switch.SpikeProb > 0 {
		if err := p.Switch.Spike.Validate(); err != nil {
			return fmt.Errorf("faultinject: switch spike: %w", err)
		}
		if p.Switch.Spike.Avg <= 0 {
			return fmt.Errorf("faultinject: switch spike avg %v must be positive", p.Switch.Spike.Avg)
		}
	}
	return nil
}

func validProb(what string, p float64) error {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return fmt.Errorf("faultinject: %s probability %v outside [0, 1]", what, p)
	}
	return nil
}

// ScaledPlan maps a single perturbation magnitude to a plan, for sensitivity
// sweeps. Magnitude 0 is the unperturbed calibration (an empty plan); rising
// magnitudes degrade detection monotonically:
//
//   - secure entries spike an extra 2·mag to 12·mag ms in the dispatch path
//     with probability 0.15·mag (capped 0.9) — the decisive term. The spike
//     lands after the core's reporters freeze but before the checker reads a
//     byte, so once it exceeds the evader's detection-plus-recovery latency
//     (Tns_delay + Tns_recover ≈ 7 ms, Eq. 1/2) that round's trace is gone
//     before the check can see it;
//   - every core's clock drops to 1/(1+mag) of calibration (per-byte check
//     times stretch by 1+mag), charting the overhead axis;
//   - per-core jitter of ±5% per unit magnitude (capped at ±45%);
//   - interrupts delay 20–200 µs with probability 0.03·mag (capped 0.3).
func ScaledPlan(mag float64) Plan {
	if mag <= 0 {
		return Plan{}
	}
	capped := func(p, cap float64) float64 {
		if p > cap {
			return cap
		}
		return p
	}
	return Plan{
		RateJitter: capped(0.05*mag, 0.45),
		DVFS:       []DVFSStep{{At: 0, Core: -1, Factor: 1 / (1 + mag)}},
		Switch: SwitchFaults{
			SpikeProb: capped(0.15*mag, 0.9),
			Spike:     simclock.Seconds(2e-3*mag, 5e-3*mag, 12e-3*mag),
		},
		IRQ: IRQFaults{
			DelayProb: capped(0.03*mag, 0.3),
			Delay:     simclock.Seconds(20e-6, 60e-6, 200e-6),
		},
	}
}
