package faultinject

import (
	"time"

	"satin/internal/simclock"
)

// Checkpoint support. The injector is the one component whose pending events
// are NOT re-armed on restore: a forked scenario is constructed from its own
// member spec, so Install has already scheduled its DVFS and hotplug events
// by the time the snapshot is applied. Those construction-scheduled events
// are reported here as Kept claims — verified present against the live
// pending set, left untouched by the re-arm pass. Their construction-era
// sequence numbers are smaller than any re-armed claim's fresh number, which
// reproduces the from-scratch firing order at equal instants: in the original
// run too, the injector scheduled before anything else fired.
//
// This only works for plans whose observable effects all land strictly after
// the checkpoint instant; ForkableAfter is the gate.

// ClaimOwnerInjector names the injector's Kept claims.
const ClaimOwnerInjector = "faultinject"

// Claims reports the injector's still-pending scheduled fault events as Kept
// claims. Events that already fired are skipped.
func (in *Injector) Claims() []simclock.Claim {
	var claims []simclock.Claim
	for _, h := range in.scheduled {
		if c, ok := h.Claim(ClaimOwnerInjector, -1); ok {
			c.Kept = true
			claims = append(claims, c)
		}
	}
	return claims
}

// ForkableAfter reports whether a run carrying this plan can be forked from a
// checkpoint taken at instant t. Rate jitter, IRQ faults, and switch spikes
// perturb the run from the first instant (or nondeterministically relative to
// the snapshot's claims), so only scheduled DVFS and hotplug faults are
// forkable — and every one must fire strictly after t, or the prefix the
// checkpoint replays would already differ from the faulted run.
func (p Plan) ForkableAfter(t simclock.Time) bool {
	if p.RateJitter != 0 || p.IRQ.enabled() || p.Switch.enabled() {
		return false
	}
	for _, s := range p.DVFS {
		if !simclock.Time(s.At).After(t) {
			return false
		}
	}
	for _, h := range p.Hotplug {
		if !simclock.Time(h.At).After(t) {
			return false
		}
	}
	return true
}

// FirstFaultAt reports the earliest scheduled fault instant, and whether the
// plan schedules any. Campaign prefix grouping uses it to cap the shared
// barrier below every member's first divergence.
func (p Plan) FirstFaultAt() (time.Duration, bool) {
	var first time.Duration
	found := false
	for _, s := range p.DVFS {
		if !found || s.At < first {
			first, found = s.At, true
		}
	}
	for _, h := range p.Hotplug {
		if !found || h.At < first {
			first, found = h.At, true
		}
	}
	return first, found
}
