package faultinject

import (
	"testing"
	"time"

	"satin/internal/hw"
	"satin/internal/simclock"
	"satin/internal/trustzone"
)

func newRig(t *testing.T) (*simclock.Engine, *hw.Platform, *trustzone.Monitor) {
	t.Helper()
	e := simclock.NewEngine()
	p, err := hw.NewJunoR1(e)
	if err != nil {
		t.Fatalf("NewJunoR1: %v", err)
	}
	return e, p, trustzone.NewMonitor(p, 77)
}

func TestInstallValidatesPlan(t *testing.T) {
	_, p, mon := newRig(t)
	bad := Plan{DVFS: []DVFSStep{{Core: p.NumCores(), Factor: 0.5}}}
	if _, err := Install(bad, p, mon, 1, nil, nil); err == nil {
		t.Error("out-of-range DVFS core accepted")
	}
	if _, err := Install(Plan{RateJitter: 1.5}, p, mon, 1, nil, nil); err == nil {
		t.Error("jitter above 1 accepted")
	}
}

func TestEmptyPlanInstallsNothing(t *testing.T) {
	e, p, mon := newRig(t)
	base := p.Core(0).Rates()
	in, err := Install(Plan{}, p, mon, 1, nil, nil)
	if err != nil {
		t.Fatalf("Install(empty): %v", err)
	}
	e.Run()
	if in.Injected() != 0 {
		t.Errorf("empty plan injected %d faults", in.Injected())
	}
	if p.Core(0).Rates() != base {
		t.Error("empty plan touched core rates")
	}
}

func TestRateJitterBounded(t *testing.T) {
	_, p, mon := newRig(t)
	base := make([]hw.CoreRates, p.NumCores())
	for i := range base {
		base[i] = p.Core(i).Rates()
	}
	const j = 0.2
	if _, err := Install(Plan{RateJitter: j}, p, mon, 1, nil, nil); err != nil {
		t.Fatalf("Install: %v", err)
	}
	changed := false
	for i := 0; i < p.NumCores(); i++ {
		got := p.Core(i).Rates().HashPerByte.Avg
		want := base[i].HashPerByte.Avg
		if got < want*(1-j) || got > want*(1+j) {
			t.Errorf("core %d jittered rate %v outside ±%.0f%% of %v", i, got, j*100, want)
		}
		if got != want {
			changed = true
		}
	}
	if !changed {
		t.Error("jitter plan left every core at the calibrated rates")
	}
}

func TestDVFSStepRescalesAtScheduledTime(t *testing.T) {
	e, p, mon := newRig(t)
	base := p.Core(0).Rates()
	plan := Plan{DVFS: []DVFSStep{{At: time.Millisecond, Core: -1, Factor: 0.5}}}
	in, err := Install(plan, p, mon, 1, nil, nil)
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	e.RunUntil(simclock.Time(500 * time.Microsecond))
	if p.Core(0).Rates() != base {
		t.Error("DVFS step applied before its scheduled time")
	}
	e.Run()
	// Factor 0.5 halves the clock: per-byte times double, on every core.
	for i := 0; i < p.NumCores(); i++ {
		got := p.Core(i).Rates().HashPerByte.Avg
		if got != 2*baseFor(t, p, i).HashPerByte.Avg {
			t.Errorf("core %d avg hash rate %v, want doubled calibration", i, got)
		}
	}
	if in.Injected() != 1 {
		t.Errorf("Injected() = %d, want 1 (one DVFS step)", in.Injected())
	}
}

// baseFor rebuilds the calibration rates for core i from the platform's
// perf model (the injector's own base snapshot is not exported).
func baseFor(t *testing.T, p *hw.Platform, i int) hw.CoreRates {
	t.Helper()
	r, ok := p.Perf().Rates[p.Core(i).Type()]
	if !ok {
		t.Fatalf("no calibration for core %d", i)
	}
	return r
}

func TestIRQDelayPostponesDelivery(t *testing.T) {
	e, p, mon := newRig(t)
	_ = mon
	plan := Plan{IRQ: IRQFaults{DelayProb: 1, Delay: simclock.Seconds(100e-6, 200e-6, 400e-6)}}
	in, err := Install(plan, p, mon, 1, nil, nil)
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	g := p.GIC()
	g.Configure(hw.IntSGIFlood, hw.GroupNonSecure)
	var firedAt simclock.Time
	fired := 0
	g.Register(hw.IntSGIFlood, func(int) { fired++; firedAt = e.Now() })
	g.Raise(hw.IntSGIFlood, 0)
	e.Run()
	if fired != 1 {
		t.Fatalf("delayed interrupt fired %d times, want 1", fired)
	}
	if firedAt.Duration() < 100*time.Microsecond {
		t.Errorf("interrupt delivered after %v, want ≥ the 100µs minimum delay", firedAt.Duration())
	}
	if in.Injected() != 1 {
		t.Errorf("Injected() = %d, want 1", in.Injected())
	}
}

func TestIRQDropBoundedRetry(t *testing.T) {
	e, p, mon := newRig(t)
	plan := Plan{IRQ: IRQFaults{DropProb: 1, MaxRetries: 2}}
	in, err := Install(plan, p, mon, 1, nil, nil)
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	g := p.GIC()
	g.Configure(hw.IntSGIFlood, hw.GroupNonSecure)
	fired := 0
	g.Register(hw.IntSGIFlood, func(int) { fired++ })
	g.Raise(hw.IntSGIFlood, 0)
	e.Run()
	// DropProb 1 drops every attempt, so the bounded retry must deliver
	// unconditionally after MaxRetries redrops — nothing is lost for good.
	if fired != 1 {
		t.Fatalf("dropped interrupt fired %d times after retries, want exactly 1", fired)
	}
	if in.Injected() < 2 {
		t.Errorf("Injected() = %d, want ≥ 2 (initial drop plus redrops)", in.Injected())
	}
}

func TestSwitchSpikeDelaysPayloadNotFreeze(t *testing.T) {
	// The spike lands in the secure dispatch path: the core must already be
	// in the secure world (reporters frozen) while the payload is still
	// pending — this asymmetry is what widens TZ-Evader's window.
	e, p, mon := newRig(t)
	plan := Plan{Switch: SwitchFaults{SpikeProb: 1, Spike: simclock.Seconds(5e-3, 5e-3, 5e-3)}}
	if _, err := Install(plan, p, mon, 1, nil, nil); err != nil {
		t.Fatalf("Install: %v", err)
	}
	var frozenAt, payloadAt simclock.Time
	p.Core(0).OnWorldChange(func(_ *hw.Core, _, w hw.World) {
		if w == hw.SecureWorld {
			frozenAt = e.Now()
		}
	})
	if err := mon.RequestSecure(0, func(ctx *trustzone.Context) {
		payloadAt = e.Now()
		ctx.Exit()
	}); err != nil {
		t.Fatalf("RequestSecure: %v", err)
	}
	e.Run()
	if payloadAt == 0 || frozenAt == 0 {
		t.Fatal("secure entry never completed")
	}
	gap := payloadAt.Sub(frozenAt)
	if gap < 5*time.Millisecond {
		t.Errorf("payload started %v after the freeze, want ≥ the 5ms spike", gap)
	}
	if frozenAt.Duration() > 100*time.Microsecond {
		t.Errorf("freeze itself was delayed to %v; the spike must not postpone it", frozenAt.Duration())
	}
}

func TestHotplugDeferredWhileSecure(t *testing.T) {
	e, p, mon := newRig(t)
	plan := Plan{Hotplug: []HotplugEvent{{At: time.Millisecond, Core: 0, Online: false}}}
	if _, err := Install(plan, p, mon, 1, nil, nil); err != nil {
		t.Fatalf("Install: %v", err)
	}
	var exitedAt simclock.Time
	if err := mon.RequestSecure(0, func(ctx *trustzone.Context) {
		ctx.Elapse(5*time.Millisecond, func() {
			exitedAt = e.Now()
			ctx.Exit()
		})
	}); err != nil {
		t.Fatalf("RequestSecure: %v", err)
	}
	e.Run()
	// The PSCI CPU_OFF at t=1ms must wait for the secure payload (running
	// until ≈5ms) instead of unplugging a secure-world core (which panics).
	if p.Core(0).Online() {
		t.Error("core 0 still online after the hotplug event")
	}
	if exitedAt == 0 {
		t.Error("secure payload never finished")
	}
}

func TestScaledPlanShape(t *testing.T) {
	if !ScaledPlan(0).Empty() || !ScaledPlan(-1).Empty() {
		t.Error("non-positive magnitude must map to the empty plan")
	}
	prev := ScaledPlan(0.5)
	if err := prev.Validate(6); err != nil {
		t.Errorf("ScaledPlan(0.5) invalid: %v", err)
	}
	for _, mag := range []float64{1, 2, 4, 8} {
		p := ScaledPlan(mag)
		if err := p.Validate(6); err != nil {
			t.Errorf("ScaledPlan(%g) invalid: %v", mag, err)
		}
		if p.Switch.SpikeProb < prev.Switch.SpikeProb || p.Switch.Spike.Avg < prev.Switch.Spike.Avg {
			t.Errorf("ScaledPlan(%g) spike not monotone vs previous magnitude", mag)
		}
		if len(p.DVFS) != 1 || p.DVFS[0].Factor >= prev.DVFS[0].Factor {
			t.Errorf("ScaledPlan(%g) DVFS factor not strictly decreasing", mag)
		}
		prev = p
	}
}

func TestPlanEmpty(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Error("zero plan not empty")
	}
	for _, p := range []Plan{
		{RateJitter: 0.1},
		{DVFS: []DVFSStep{{Factor: 0.5}}},
		{Hotplug: []HotplugEvent{{Core: 0}}},
		{IRQ: IRQFaults{DelayProb: 0.5, Delay: simclock.Seconds(1e-6, 2e-6, 3e-6)}},
		{Switch: SwitchFaults{SpikeProb: 0.5, Spike: simclock.Seconds(1e-6, 2e-6, 3e-6)}},
	} {
		if p.Empty() {
			t.Errorf("plan %+v reported empty", p)
		}
	}
}
