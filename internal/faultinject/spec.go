package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"satin/internal/simclock"
)

// ParsePlan builds a Plan from a compact spec string, the grammar behind
// `satin-sim -faults=...` (documented in EXPERIMENTS.md):
//
//	spec    = clause *( ";" clause )
//	clause  = "scale:" MAG                                 — ScaledPlan(MAG)
//	        | "jitter:" J                                  — per-core rate jitter ±J
//	        | "dvfs:at=DUR,factor=F[,core=N]"              — frequency step (repeatable)
//	        | "hotplug:core=N,off=DUR[,on=DUR]"            — unplug core N, optionally replug (repeatable)
//	        | "irq:p=P,delay=DUR[,drop=P2][,retry=DUR][,retries=K]" — interrupt delay/drop
//	        | "switch:p=P,spike=DUR"                       — world-switch latency spikes
//
// Durations use Go syntax ("30s", "200us"); a single duration D stands for
// the bounded distribution [D/2, D, 2·D] with mean D. "scale" expands to a
// whole plan and cannot be combined with the sections it would set; the
// repeatable clauses append. The empty string parses to the empty plan.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	seen := map[string]bool{}
	for _, raw := range strings.Split(spec, ";") {
		clause := strings.TrimSpace(raw)
		if clause == "" {
			continue
		}
		kind, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return Plan{}, fmt.Errorf("faultinject: clause %q lacks a ':'", clause)
		}
		kind = strings.TrimSpace(kind)
		if seen[kind] && kind != "dvfs" && kind != "hotplug" {
			return Plan{}, fmt.Errorf("faultinject: duplicate %q clause", kind)
		}
		seen[kind] = true
		var err error
		switch kind {
		case "scale":
			var mag float64
			if mag, err = parseNum(rest); err == nil {
				scaled := ScaledPlan(mag)
				if p.RateJitter != 0 || len(p.DVFS) > 0 || p.IRQ.enabled() || p.Switch.enabled() {
					return Plan{}, fmt.Errorf("faultinject: scale cannot follow jitter/dvfs/irq/switch clauses")
				}
				seen["jitter"], seen["irq"], seen["switch"] = true, true, true
				p.RateJitter = scaled.RateJitter
				p.DVFS = scaled.DVFS
				p.IRQ = scaled.IRQ
				p.Switch = scaled.Switch
			}
		case "jitter":
			p.RateJitter, err = parseNum(rest)
		case "dvfs":
			err = parseDVFS(rest, &p)
		case "hotplug":
			err = parseHotplug(rest, &p)
		case "irq":
			err = parseIRQ(rest, &p)
		case "switch":
			err = parseSwitch(rest, &p)
		default:
			return Plan{}, fmt.Errorf("faultinject: unknown clause kind %q", kind)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("faultinject: clause %q: %w", clause, err)
		}
	}
	return p, nil
}

func parseDVFS(rest string, p *Plan) error {
	step := DVFSStep{Core: -1}
	haveAt, haveFactor := false, false
	err := eachKV(rest, func(k, v string) error {
		var err error
		switch k {
		case "at":
			step.At, err = time.ParseDuration(v)
			haveAt = true
		case "factor":
			step.Factor, err = parseNum(v)
			haveFactor = true
		case "core":
			step.Core, err = strconv.Atoi(v)
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		return err
	})
	if err != nil {
		return err
	}
	if !haveAt || !haveFactor {
		return fmt.Errorf("dvfs needs at= and factor=")
	}
	p.DVFS = append(p.DVFS, step)
	return nil
}

func parseHotplug(rest string, p *Plan) error {
	core := -1
	var off, on time.Duration
	haveOff, haveOn := false, false
	err := eachKV(rest, func(k, v string) error {
		var err error
		switch k {
		case "core":
			core, err = strconv.Atoi(v)
		case "off":
			off, err = time.ParseDuration(v)
			haveOff = true
		case "on":
			on, err = time.ParseDuration(v)
			haveOn = true
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		return err
	})
	if err != nil {
		return err
	}
	if core < 0 {
		return fmt.Errorf("hotplug needs core=")
	}
	if !haveOff && !haveOn {
		return fmt.Errorf("hotplug needs off= and/or on=")
	}
	if haveOff {
		p.Hotplug = append(p.Hotplug, HotplugEvent{At: off, Core: core, Online: false})
	}
	if haveOn {
		if haveOff && on <= off {
			return fmt.Errorf("hotplug on=%v must be after off=%v", on, off)
		}
		p.Hotplug = append(p.Hotplug, HotplugEvent{At: on, Core: core, Online: true})
	}
	return nil
}

func parseIRQ(rest string, p *Plan) error {
	return eachKV(rest, func(k, v string) error {
		var err error
		switch k {
		case "p":
			p.IRQ.DelayProb, err = parseNum(v)
		case "delay":
			p.IRQ.Delay, err = parseDistDuration(v)
		case "drop":
			p.IRQ.DropProb, err = parseNum(v)
		case "retry":
			p.IRQ.RetryDelay, err = parseDistDuration(v)
		case "retries":
			p.IRQ.MaxRetries, err = strconv.Atoi(v)
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		return err
	})
}

func parseSwitch(rest string, p *Plan) error {
	return eachKV(rest, func(k, v string) error {
		var err error
		switch k {
		case "p":
			p.Switch.SpikeProb, err = parseNum(v)
		case "spike":
			p.Switch.Spike, err = parseDistDuration(v)
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		return err
	})
}

// eachKV walks "k=v,k=v" pairs.
func eachKV(rest string, fn func(k, v string) error) error {
	for _, pair := range strings.Split(rest, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("%q is not key=value", pair)
		}
		if err := fn(strings.TrimSpace(k), strings.TrimSpace(v)); err != nil {
			return err
		}
	}
	return nil
}

func parseNum(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

// parseDistDuration reads a bounded duration distribution: either a single
// duration D — shorthand for [D/2, D, 2·D], whose mean-preserving draw
// averages D — or an explicit "min/avg/max" triple ("20µs/60µs/200µs"),
// which Plan.String emits for distributions the shorthand cannot express.
func parseDistDuration(s string) (simclock.Dist, error) {
	s = strings.TrimSpace(s)
	if parts := strings.Split(s, "/"); len(parts) != 1 {
		if len(parts) != 3 {
			return simclock.Dist{}, fmt.Errorf("distribution %q is neither a duration nor min/avg/max", s)
		}
		var ds [3]time.Duration
		for i, p := range parts {
			d, err := time.ParseDuration(strings.TrimSpace(p))
			if err != nil {
				return simclock.Dist{}, err
			}
			ds[i] = d
		}
		dist := simclock.Dist{Min: ds[0], Avg: ds[1], Max: ds[2]}
		if err := dist.Validate(); err != nil {
			return simclock.Dist{}, err
		}
		return dist, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return simclock.Dist{}, err
	}
	if d <= 0 {
		return simclock.Dist{}, fmt.Errorf("duration %v must be positive", d)
	}
	return simclock.Dist{Min: d / 2, Avg: d, Max: 2 * d}, nil
}

// formatDist renders a distribution in the tightest grammar form: the
// single-duration shorthand when the triple is exactly its widening, the
// explicit min/avg/max triple otherwise.
func formatDist(d simclock.Dist) string {
	if d.Avg > 0 && d.Min == d.Avg/2 && d.Max == 2*d.Avg {
		return d.Avg.String()
	}
	return d.Min.String() + "/" + d.Avg.String() + "/" + d.Max.String()
}

// formatNum renders a float in the shortest form that parses back exactly.
func formatNum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String renders the plan in the -faults grammar, one clause per configured
// fault kind, so plans are serializable: ParsePlan(p.String()) reproduces p
// field for field, and the empty plan renders as "". This is the form specs
// and -dump-spec embed.
func (p Plan) String() string {
	var clauses []string
	if p.RateJitter != 0 {
		clauses = append(clauses, "jitter:"+formatNum(p.RateJitter))
	}
	for _, s := range p.DVFS {
		c := "dvfs:at=" + s.At.String() + ",factor=" + formatNum(s.Factor)
		if s.Core != -1 {
			c += ",core=" + strconv.Itoa(s.Core)
		}
		clauses = append(clauses, c)
	}
	for _, h := range p.Hotplug {
		key := "off"
		if h.Online {
			key = "on"
		}
		clauses = append(clauses, fmt.Sprintf("hotplug:core=%d,%s=%s", h.Core, key, h.At))
	}
	if p.IRQ != (IRQFaults{}) {
		var parts []string
		if p.IRQ.DelayProb != 0 {
			parts = append(parts, "p="+formatNum(p.IRQ.DelayProb))
		}
		if p.IRQ.Delay != (simclock.Dist{}) {
			parts = append(parts, "delay="+formatDist(p.IRQ.Delay))
		}
		if p.IRQ.DropProb != 0 {
			parts = append(parts, "drop="+formatNum(p.IRQ.DropProb))
		}
		if p.IRQ.RetryDelay != (simclock.Dist{}) {
			parts = append(parts, "retry="+formatDist(p.IRQ.RetryDelay))
		}
		if p.IRQ.MaxRetries != 0 {
			parts = append(parts, "retries="+strconv.Itoa(p.IRQ.MaxRetries))
		}
		clauses = append(clauses, "irq:"+strings.Join(parts, ","))
	}
	if p.Switch != (SwitchFaults{}) {
		var parts []string
		if p.Switch.SpikeProb != 0 {
			parts = append(parts, "p="+formatNum(p.Switch.SpikeProb))
		}
		if p.Switch.Spike != (simclock.Dist{}) {
			parts = append(parts, "spike="+formatDist(p.Switch.Spike))
		}
		clauses = append(clauses, "switch:"+strings.Join(parts, ","))
	}
	return strings.Join(clauses, ";")
}
