package faultinject

import (
	"testing"
	"time"

	"satin/internal/simclock"
)

func TestParsePlanGrammar(t *testing.T) {
	plan, err := ParsePlan(
		"jitter:0.1; dvfs:at=10s,factor=0.5,core=2; dvfs:at=20s,factor=1.0;" +
			"hotplug:core=1,off=30s,on=200s; irq:p=0.1,delay=100us,drop=0.05,retry=50us,retries=5;" +
			"switch:p=0.2,spike=1ms")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if plan.RateJitter != 0.1 {
		t.Errorf("RateJitter = %v", plan.RateJitter)
	}
	if len(plan.DVFS) != 2 || plan.DVFS[0] != (DVFSStep{At: 10 * time.Second, Core: 2, Factor: 0.5}) ||
		plan.DVFS[1] != (DVFSStep{At: 20 * time.Second, Core: -1, Factor: 1.0}) {
		t.Errorf("DVFS = %+v", plan.DVFS)
	}
	if len(plan.Hotplug) != 2 ||
		plan.Hotplug[0] != (HotplugEvent{At: 30 * time.Second, Core: 1, Online: false}) ||
		plan.Hotplug[1] != (HotplugEvent{At: 200 * time.Second, Core: 1, Online: true}) {
		t.Errorf("Hotplug = %+v", plan.Hotplug)
	}
	if plan.IRQ.DelayProb != 0.1 || plan.IRQ.DropProb != 0.05 || plan.IRQ.MaxRetries != 5 {
		t.Errorf("IRQ = %+v", plan.IRQ)
	}
	if plan.IRQ.Delay != (simclock.Dist{Min: 50 * time.Microsecond, Avg: 100 * time.Microsecond, Max: 200 * time.Microsecond}) {
		t.Errorf("IRQ delay widened wrong: %+v", plan.IRQ.Delay)
	}
	if plan.Switch.SpikeProb != 0.2 || plan.Switch.Spike.Avg != time.Millisecond {
		t.Errorf("Switch = %+v", plan.Switch)
	}
	if err := plan.Validate(6); err != nil {
		t.Errorf("parsed plan invalid: %v", err)
	}
}

func TestParsePlanEmptyAndScale(t *testing.T) {
	for _, spec := range []string{"", "  ", ";;"} {
		plan, err := ParsePlan(spec)
		if err != nil || !plan.Empty() {
			t.Errorf("ParsePlan(%q) = %+v, %v; want empty plan", spec, plan, err)
		}
	}
	plan, err := ParsePlan("scale:2")
	if err != nil {
		t.Fatalf("ParsePlan(scale:2): %v", err)
	}
	if want := ScaledPlan(2); plan.RateJitter != want.RateJitter ||
		plan.Switch != want.Switch || plan.IRQ != want.IRQ ||
		len(plan.DVFS) != 1 || plan.DVFS[0] != want.DVFS[0] {
		t.Errorf("scale:2 = %+v, want ScaledPlan(2) = %+v", plan, want)
	}
	// scale composes with the clause it does not set.
	plan, err = ParsePlan("scale:1;hotplug:core=0,off=5s")
	if err != nil || len(plan.Hotplug) != 1 {
		t.Errorf("scale+hotplug = %+v, %v", plan, err)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus:1",                        // unknown clause
		"jitter",                         // missing colon
		"jitter:x",                       // bad number
		"jitter:0.1;jitter:0.2",          // duplicate non-repeatable clause
		"jitter:0.1;scale:2",             // scale after a clause it would set
		"scale:2;switch:p=0.1,spike=1ms", // clause after scale set it
		"dvfs:factor=0.5",                // missing at=
		"dvfs:at=1s",                     // missing factor=
		"dvfs:at=1s,factor=0.5,x=1",      // unknown key
		"hotplug:off=1s",                 // missing core=
		"hotplug:core=0",                 // missing off=/on=
		"hotplug:core=0,off=10s,on=5s",   // on before off
		"irq:p=0.1,delay=-5us",           // non-positive duration
		"irq:p=0.1,delay",                // not key=value
		"switch:spike=abc",               // bad duration
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
}

func TestPlanValidateErrors(t *testing.T) {
	for name, plan := range map[string]Plan{
		"jitter negative":  {RateJitter: -0.1},
		"jitter one":       {RateJitter: 1},
		"dvfs negative at": {DVFS: []DVFSStep{{At: -time.Second, Factor: 0.5}}},
		"dvfs zero factor": {DVFS: []DVFSStep{{Factor: 0}}},
		"dvfs core range":  {DVFS: []DVFSStep{{Core: 6, Factor: 0.5}}},
		"hotplug core":     {Hotplug: []HotplugEvent{{Core: -1}}},
		"irq prob":         {IRQ: IRQFaults{DelayProb: 1.5}},
		"irq prob sum":     {IRQ: IRQFaults{DelayProb: 0.6, DropProb: 0.6, Delay: simclock.Seconds(1e-6, 2e-6, 3e-6)}},
		"irq bad delay":    {IRQ: IRQFaults{DelayProb: 0.5}},
		"irq neg retries":  {IRQ: IRQFaults{DropProb: 0.5, MaxRetries: -1}},
		"switch prob":      {Switch: SwitchFaults{SpikeProb: 2}},
		"switch bad spike": {Switch: SwitchFaults{SpikeProb: 0.5}},
	} {
		if err := plan.Validate(6); err == nil {
			t.Errorf("%s: plan %+v accepted", name, plan)
		}
	}
}
