package faultinject

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"satin/internal/simclock"
)

func TestParsePlanGrammar(t *testing.T) {
	plan, err := ParsePlan(
		"jitter:0.1; dvfs:at=10s,factor=0.5,core=2; dvfs:at=20s,factor=1.0;" +
			"hotplug:core=1,off=30s,on=200s; irq:p=0.1,delay=100us,drop=0.05,retry=50us,retries=5;" +
			"switch:p=0.2,spike=1ms")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if plan.RateJitter != 0.1 {
		t.Errorf("RateJitter = %v", plan.RateJitter)
	}
	if len(plan.DVFS) != 2 || plan.DVFS[0] != (DVFSStep{At: 10 * time.Second, Core: 2, Factor: 0.5}) ||
		plan.DVFS[1] != (DVFSStep{At: 20 * time.Second, Core: -1, Factor: 1.0}) {
		t.Errorf("DVFS = %+v", plan.DVFS)
	}
	if len(plan.Hotplug) != 2 ||
		plan.Hotplug[0] != (HotplugEvent{At: 30 * time.Second, Core: 1, Online: false}) ||
		plan.Hotplug[1] != (HotplugEvent{At: 200 * time.Second, Core: 1, Online: true}) {
		t.Errorf("Hotplug = %+v", plan.Hotplug)
	}
	if plan.IRQ.DelayProb != 0.1 || plan.IRQ.DropProb != 0.05 || plan.IRQ.MaxRetries != 5 {
		t.Errorf("IRQ = %+v", plan.IRQ)
	}
	if plan.IRQ.Delay != (simclock.Dist{Min: 50 * time.Microsecond, Avg: 100 * time.Microsecond, Max: 200 * time.Microsecond}) {
		t.Errorf("IRQ delay widened wrong: %+v", plan.IRQ.Delay)
	}
	if plan.Switch.SpikeProb != 0.2 || plan.Switch.Spike.Avg != time.Millisecond {
		t.Errorf("Switch = %+v", plan.Switch)
	}
	if err := plan.Validate(6); err != nil {
		t.Errorf("parsed plan invalid: %v", err)
	}
}

func TestParsePlanEmptyAndScale(t *testing.T) {
	for _, spec := range []string{"", "  ", ";;"} {
		plan, err := ParsePlan(spec)
		if err != nil || !plan.Empty() {
			t.Errorf("ParsePlan(%q) = %+v, %v; want empty plan", spec, plan, err)
		}
	}
	plan, err := ParsePlan("scale:2")
	if err != nil {
		t.Fatalf("ParsePlan(scale:2): %v", err)
	}
	if want := ScaledPlan(2); plan.RateJitter != want.RateJitter ||
		plan.Switch != want.Switch || plan.IRQ != want.IRQ ||
		len(plan.DVFS) != 1 || plan.DVFS[0] != want.DVFS[0] {
		t.Errorf("scale:2 = %+v, want ScaledPlan(2) = %+v", plan, want)
	}
	// scale composes with the clause it does not set.
	plan, err = ParsePlan("scale:1;hotplug:core=0,off=5s")
	if err != nil || len(plan.Hotplug) != 1 {
		t.Errorf("scale+hotplug = %+v, %v", plan, err)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus:1",                        // unknown clause
		"jitter",                         // missing colon
		"jitter:x",                       // bad number
		"jitter:0.1;jitter:0.2",          // duplicate non-repeatable clause
		"jitter:0.1;scale:2",             // scale after a clause it would set
		"scale:2;switch:p=0.1,spike=1ms", // clause after scale set it
		"dvfs:factor=0.5",                // missing at=
		"dvfs:at=1s",                     // missing factor=
		"dvfs:at=1s,factor=0.5,x=1",      // unknown key
		"hotplug:off=1s",                 // missing core=
		"hotplug:core=0",                 // missing off=/on=
		"hotplug:core=0,off=10s,on=5s",   // on before off
		"irq:p=0.1,delay=-5us",           // non-positive duration
		"irq:p=0.1,delay",                // not key=value
		"switch:spike=abc",               // bad duration
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
}

// TestPlanStringRoundTrip is the serialization property behind scenario
// specs: for any plan, ParsePlan(p.String()) must reproduce p field for
// field, and String must be a fixed point (formatting is canonical).
func TestPlanStringRoundTrip(t *testing.T) {
	plans := map[string]Plan{
		"empty": {},
		"golden faulted": mustParse(t,
			"jitter:0.05;dvfs:at=5s,factor=0.8;hotplug:core=1,off=2s,on=12s;irq:p=0.05,delay=100us;switch:p=0.1,spike=1ms"),
		"all clauses": mustParse(t,
			"jitter:0.1; dvfs:at=10s,factor=0.5,core=2; dvfs:at=20s,factor=1.0;"+
				"hotplug:core=1,off=30s,on=200s; irq:p=0.1,delay=100us,drop=0.05,retry=50us,retries=5;"+
				"switch:p=0.2,spike=1ms"),
		"asymmetric dists": {
			IRQ:    IRQFaults{DelayProb: 0.25, Delay: simclock.Seconds(20e-6, 60e-6, 200e-6)},
			Switch: SwitchFaults{SpikeProb: 0.5, Spike: simclock.Dist{Min: 0, Avg: time.Millisecond, Max: 7 * time.Millisecond}},
		},
		"irq only retry": {IRQ: IRQFaults{DropProb: 0.01, RetryDelay: simclock.Exact(30 * time.Microsecond)}},
	}
	for _, mag := range []float64{0.25, 0.5, 1, 2, 4, 10} {
		plans[fmt.Sprintf("scaled %g", mag)] = ScaledPlan(mag)
	}
	for name, p := range plans {
		s := p.String()
		re, err := ParsePlan(s)
		if err != nil {
			t.Errorf("%s: ParsePlan(%q): %v", name, s, err)
			continue
		}
		if !reflect.DeepEqual(p, re) {
			t.Errorf("%s: round trip drifted:\n  plan   %+v\n  string %q\n  reparse %+v", name, p, s, re)
		}
		if again := re.String(); again != s {
			t.Errorf("%s: String not canonical: %q then %q", name, s, again)
		}
	}
	if s := (Plan{}).String(); s != "" {
		t.Errorf("empty plan renders %q, want empty string", s)
	}
}

func mustParse(t *testing.T, spec string) Plan {
	t.Helper()
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	return p
}

// TestParseDistTriple covers the explicit min/avg/max form String emits for
// distributions the single-duration shorthand cannot express.
func TestParseDistTriple(t *testing.T) {
	plan, err := ParsePlan("irq:p=0.1,delay=20µs/60µs/200µs")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	want := simclock.Dist{Min: 20 * time.Microsecond, Avg: 60 * time.Microsecond, Max: 200 * time.Microsecond}
	if plan.IRQ.Delay != want {
		t.Errorf("triple dist = %+v, want %+v", plan.IRQ.Delay, want)
	}
	for _, bad := range []string{
		"irq:p=0.1,delay=1us/2us",         // two parts
		"irq:p=0.1,delay=1us/2us/3us/4us", // four parts
		"irq:p=0.1,delay=3us/2us/1us",     // unordered
		"irq:p=0.1,delay=1us/x/3us",       // bad duration
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestPlanValidateErrors(t *testing.T) {
	for name, plan := range map[string]Plan{
		"jitter negative":  {RateJitter: -0.1},
		"jitter one":       {RateJitter: 1},
		"dvfs negative at": {DVFS: []DVFSStep{{At: -time.Second, Factor: 0.5}}},
		"dvfs zero factor": {DVFS: []DVFSStep{{Factor: 0}}},
		"dvfs core range":  {DVFS: []DVFSStep{{Core: 6, Factor: 0.5}}},
		"hotplug core":     {Hotplug: []HotplugEvent{{Core: -1}}},
		"irq prob":         {IRQ: IRQFaults{DelayProb: 1.5}},
		"irq prob sum":     {IRQ: IRQFaults{DelayProb: 0.6, DropProb: 0.6, Delay: simclock.Seconds(1e-6, 2e-6, 3e-6)}},
		"irq bad delay":    {IRQ: IRQFaults{DelayProb: 0.5}},
		"irq neg retries":  {IRQ: IRQFaults{DropProb: 0.5, MaxRetries: -1}},
		"switch prob":      {Switch: SwitchFaults{SpikeProb: 2}},
		"switch bad spike": {Switch: SwitchFaults{SpikeProb: 0.5}},
	} {
		if err := plan.Validate(6); err == nil {
			t.Errorf("%s: plan %+v accepted", name, plan)
		}
	}
}
