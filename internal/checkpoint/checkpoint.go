// Package checkpoint defines the snapshot format for the copy-on-write
// checkpoint/fork mechanism (docs/CHECKPOINT.md): the serializable state of
// a scenario at a claimable virtual instant, and its versioned on-disk
// encoding.
//
// A snapshot is taken at a *claimable instant* — a virtual time at which the
// engine's live pending events are exactly the union of the components'
// claims (no secure-world payload in flight, every core online in the normal
// world). Event callbacks are closures and cannot be serialized, so the
// snapshot stores Claims instead: enough for each owning component to
// rebuild its callbacks at restore time. Memory is captured copy-on-write:
// only pages whose write-generation counter differs from the post-boot
// baseline are stored, plus the full generation array (which the
// introspection's incremental hash cache validates against and must
// therefore be restored exactly).
//
// The assembly and restoration logic lives in the root satin package
// (Scenario.Checkpoint / RestoreSnapshot), which can see the components;
// this package owns the format.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"satin/internal/attack"
	"satin/internal/core"
	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/obs"
	"satin/internal/simclock"
	"satin/internal/trace"
	"satin/internal/trustzone"
)

// State is the JSON-encoded portion of a snapshot: every component's pure
// state, the engine clock, the claims, and the run's observability record.
// Optional components are pointers; nil means the captured scenario did not
// install them, and the restored scenario must match.
type State struct {
	// Now is the claimable instant the snapshot was taken at; Dispatched is
	// the engine's event counter there.
	Now        simclock.Time `json:"now"`
	Dispatched uint64        `json:"dispatched"`

	Cores   []hw.CoreState           `json:"cores"`
	Monitor trustzone.MonitorState   `json:"monitor"`
	Checker introspect.CheckerState  `json:"checker"`

	SATIN      *core.SATINState             `json:"satin,omitempty"`
	Baseline   *introspect.BaselineState    `json:"baseline,omitempty"`
	FastEvader *attack.FastEvaderCheckpoint `json:"fast_evader,omitempty"`
	Rootkit    *attack.RootkitCheckpoint    `json:"rootkit,omitempty"`
	Flood      *attack.FloodCheckpoint      `json:"flood,omitempty"`

	// Claims lists every live pending event, sorted by (when, seq) — the
	// order restore re-arms them in, which reproduces the firing order.
	Claims []simclock.Claim `json:"claims"`

	// Metrics is the raw registry snapshot at the instant (no end-of-run
	// gauge refresh). Timeline is the full bus publish history, replayed
	// into the restored scenario's bus so late-subscribed sinks and the
	// timeline see the prefix.
	Metrics  obs.Snapshot  `json:"metrics"`
	Timeline []trace.Event `json:"timeline"`
}

// Page is one dirty 4 KiB page (the last page of the region may be shorter).
type Page struct {
	Index int
	Data  []byte
}

// Snapshot is a complete checkpoint: the canonical prefix spec it was taken
// under, the component state, and the copy-on-write memory capture.
type Snapshot struct {
	// PrefixSpec is the canonical marshaled spec of the captured run. A
	// member spec resumes from this snapshot only if clearing its divergent
	// sections (faults, run horizon, exports) reproduces these bytes.
	PrefixSpec []byte
	State      State
	// Pages holds the pages whose generation differs from the post-boot
	// baseline; Gens is the full per-page generation array at the instant.
	Pages []Page
	Gens  []uint64
}

// On-disk layout (all integers little-endian):
//
//	magic "SATINCKP" | u32 version
//	u32 specLen | prefix spec bytes
//	u32 stateLen | State JSON
//	u32 pageCount | pageCount × (u32 index | u32 dataLen | data)
//	u32 gensCount | gensCount × u64
//	u32 CRC32-IEEE over everything before it
const (
	Magic   = "SATINCKP"
	Version = 1
)

// Encode renders the snapshot in the on-disk format.
func (s *Snapshot) Encode() ([]byte, error) {
	stateJSON, err := json.Marshal(s.State)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: marshaling state: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString(Magic)
	writeU32(&buf, Version)
	writeU32(&buf, uint32(len(s.PrefixSpec)))
	buf.Write(s.PrefixSpec)
	writeU32(&buf, uint32(len(stateJSON)))
	buf.Write(stateJSON)
	writeU32(&buf, uint32(len(s.Pages)))
	for _, p := range s.Pages {
		writeU32(&buf, uint32(p.Index))
		writeU32(&buf, uint32(len(p.Data)))
		buf.Write(p.Data)
	}
	writeU32(&buf, uint32(len(s.Gens)))
	for _, g := range s.Gens {
		writeU64(&buf, g)
	}
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes(), nil
}

// Decode parses the on-disk format, verifying magic, version, and CRC.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(Magic)+8+4 {
		return nil, fmt.Errorf("checkpoint: file too short for a header")
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("checkpoint: not a checkpoint file (bad magic)")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if want, got := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); want != got {
		return nil, fmt.Errorf("checkpoint: CRC mismatch (file truncated or corrupt)")
	}
	rd := &reader{data: body, off: len(Magic)}
	if v := rd.u32(); v != Version {
		return nil, fmt.Errorf("checkpoint: file version %d unsupported (this build reads version %d)", v, Version)
	}
	snap := &Snapshot{}
	snap.PrefixSpec = append([]byte(nil), rd.take(int(rd.u32()))...)
	stateJSON := rd.take(int(rd.u32()))
	nPages := int(rd.u32())
	for i := 0; i < nPages && rd.err == nil; i++ {
		idx := int(rd.u32())
		pdata := append([]byte(nil), rd.take(int(rd.u32()))...)
		snap.Pages = append(snap.Pages, Page{Index: idx, Data: pdata})
	}
	nGens := int(rd.u32())
	for i := 0; i < nGens && rd.err == nil; i++ {
		snap.Gens = append(snap.Gens, rd.u64())
	}
	if rd.err != nil || rd.off != len(body) {
		return nil, fmt.Errorf("checkpoint: malformed file body")
	}
	if err := json.Unmarshal(stateJSON, &snap.State); err != nil {
		return nil, fmt.Errorf("checkpoint: unmarshaling state: %w", err)
	}
	return snap, nil
}

// WriteFile encodes the snapshot to path.
func WriteFile(path string, s *Snapshot) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: writing %s: %w", path, err)
	}
	return nil
}

// ReadFile reads and decodes the snapshot at path.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading %s: %w", path, err)
	}
	return Decode(data)
}

// reader is a bounds-checked little-endian cursor; the first overrun sets
// err and every later read returns zeros.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.data) {
		r.err = fmt.Errorf("short read")
		return make([]byte, max(n, 0))
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}
