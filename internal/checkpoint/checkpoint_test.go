package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"satin/internal/simclock"
)

// recrc rewrites the trailing CRC so a mutation is seen by the parser
// itself, not caught by the checksum.
func recrc(b []byte) []byte {
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
	return b
}

func sample() *Snapshot {
	return &Snapshot{
		PrefixSpec: []byte(`{"version":1}`),
		State: State{
			Now:        simclock.Time(12345),
			Dispatched: 42,
			Claims:     []simclock.Claim{{Owner: "timer", Name: "core0", When: simclock.Time(20000), Seq: 7}},
		},
		Pages: []Page{{Index: 3, Data: bytes.Repeat([]byte{0xAB}, 4096)}, {Index: 9, Data: []byte{1, 2, 3}}},
		Gens:  []uint64{0, 0, 0, 5, 0, 0, 0, 0, 0, 2},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sample()
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got.PrefixSpec, s.PrefixSpec) {
		t.Error("prefix spec did not round-trip")
	}
	if got.State.Now != s.State.Now || got.State.Dispatched != s.State.Dispatched {
		t.Errorf("clock did not round-trip: got %v/%d", got.State.Now, got.State.Dispatched)
	}
	if len(got.State.Claims) != 1 || got.State.Claims[0] != s.State.Claims[0] {
		t.Errorf("claims did not round-trip: %+v", got.State.Claims)
	}
	if len(got.Pages) != 2 || got.Pages[0].Index != 3 || !bytes.Equal(got.Pages[1].Data, []byte{1, 2, 3}) {
		t.Errorf("pages did not round-trip: %+v", got.Pages)
	}
	if len(got.Gens) != len(s.Gens) || got.Gens[3] != 5 {
		t.Errorf("gens did not round-trip: %v", got.Gens)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := sample().Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		{"short file", func(b []byte) []byte { return b[:8] }, "too short"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"flipped byte", func(b []byte) []byte { b[len(b)/2] ^= 0xFF; return b }, "CRC mismatch"},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-10] }, "CRC mismatch"},
		{"future version", func(b []byte) []byte {
			b[8] = 99 // little-endian u32 version follows the 8-byte magic
			return recrc(b)
		}, "version 99 unsupported"},
		{"trailing garbage", func(b []byte) []byte {
			return recrc(append(b[:len(b)-4], 0, 0, 0, 0, 0, 0, 0, 0))
		}, "malformed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(append([]byte(nil), data...))
			_, err := Decode(mutated)
			if err == nil {
				t.Fatal("Decode accepted a corrupt file")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
