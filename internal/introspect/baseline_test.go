package introspect

import (
	"testing"
	"time"

	"satin/internal/mem"
)

func startBaseline(t *testing.T, r *rig, cfg BaselineConfig) *Baseline {
	t.Helper()
	b, err := NewBaseline(r.plat, r.monitor, r.checker, r.image, 11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBaselineConfigValidation(t *testing.T) {
	r := newRig(t)
	bad := []BaselineConfig{
		{Period: 0, Selection: FixedCore, Technique: DirectHash},
		{Period: time.Second, Selection: FixedCore, Core: 9, Technique: DirectHash},
		{Period: time.Second, Selection: CoreSelection(7), Technique: DirectHash},
		{Period: time.Second, Selection: FixedCore, Technique: Technique(7)},
		{Period: time.Second, Selection: FixedCore, Technique: DirectHash, MaxRounds: -1},
	}
	for i, cfg := range bad {
		if _, err := NewBaseline(r.plat, r.monitor, r.checker, r.image, 1, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestBaselinePeriodicCleanRounds(t *testing.T) {
	r := newRig(t)
	b := startBaseline(t, r, BaselineConfig{
		Period:    8 * time.Second,
		Selection: FixedCore,
		Core:      4,
		Technique: DirectHash,
		MaxRounds: 3,
	})
	r.engine.Run()
	outs := b.Outcomes()
	if len(outs) != 3 {
		t.Fatalf("rounds = %d, want 3", len(outs))
	}
	for i, o := range outs {
		if !o.Clean {
			t.Errorf("round %d flagged a clean kernel", i)
		}
		if o.CoreID != 4 {
			t.Errorf("round %d ran on core %d, want 4", i, o.CoreID)
		}
		// Full-kernel A57 check ≈ 80 ms.
		if o.Elapsed() < 75*time.Millisecond || o.Elapsed() > 95*time.Millisecond {
			t.Errorf("round %d took %v, want ≈80ms", i, o.Elapsed())
		}
	}
	// Rounds are period-spaced.
	gap := outs[1].Started.Sub(outs[0].Started)
	if gap < 8*time.Second || gap > 8*time.Second+200*time.Millisecond {
		t.Errorf("round gap = %v, want ≈8s", gap)
	}
}

func TestBaselineDetectsPersistentRootkit(t *testing.T) {
	r := newRig(t)
	entry := r.image.Layout().SyscallEntryAddr(mem.GettidNR)
	if err := r.image.Mem().PutUint64(entry, r.image.ModuleBase()+0x40); err != nil {
		t.Fatal(err)
	}
	b := startBaseline(t, r, BaselineConfig{
		Period:    time.Second,
		Selection: FixedCore,
		Core:      0,
		Technique: DirectHash,
		MaxRounds: 1,
	})
	r.engine.Run()
	outs := b.Outcomes()
	if len(outs) != 1 || outs[0].Clean {
		t.Errorf("baseline missed an unhidden rootkit: %+v", outs)
	}
}

func TestBaselineRandomCoreAndPeriod(t *testing.T) {
	r := newRig(t)
	b := startBaseline(t, r, BaselineConfig{
		Period:          2 * time.Second,
		RandomizePeriod: true,
		Selection:       RandomCore,
		Technique:       DirectHash,
		MaxRounds:       12,
	})
	var observed []Outcome
	b.OnRound(func(o Outcome) { observed = append(observed, o) })
	r.engine.Run()
	if len(observed) != 12 {
		t.Fatalf("rounds = %d, want 12", len(observed))
	}
	cores := make(map[int]bool)
	var gaps []time.Duration
	for i, o := range observed {
		cores[o.CoreID] = true
		if i > 0 {
			gaps = append(gaps, o.Started.Sub(observed[i-1].Finished))
		}
	}
	if len(cores) < 3 {
		t.Errorf("random selection used only %d cores over 12 rounds", len(cores))
	}
	varied := false
	for _, g := range gaps {
		if g > 2100*time.Millisecond || g < 1900*time.Millisecond {
			varied = true
		}
		if g < 0 || g > 4*time.Second {
			t.Errorf("randomized gap %v outside [0, 2*period]", g)
		}
	}
	if !varied {
		t.Error("randomized periods look fixed")
	}
}

func TestBaselineSnapshotTechnique(t *testing.T) {
	r := newRig(t)
	b := startBaseline(t, r, BaselineConfig{
		Period:    time.Second,
		Selection: FixedCore,
		Core:      1,
		Technique: SnapshotHash,
		MaxRounds: 1,
	})
	r.engine.Run()
	outs := b.Outcomes()
	if len(outs) != 1 || !outs[0].Clean {
		t.Fatalf("snapshot baseline outcome: %+v", outs)
	}
	// A53 snapshot of 11.9 MB ≈ 129 ms.
	if outs[0].Elapsed() < 100*time.Millisecond || outs[0].Elapsed() > 200*time.Millisecond {
		t.Errorf("snapshot round took %v", outs[0].Elapsed())
	}
}

func TestCoreSelectionString(t *testing.T) {
	if FixedCore.String() != "fixed-core" || RandomCore.String() != "random-core" {
		t.Error("selection names wrong")
	}
	if CoreSelection(9).String() == "" {
		t.Error("unknown selection must render")
	}
}
