package introspect

import (
	"testing"
	"testing/quick"
)

func TestDjb2KnownValues(t *testing.T) {
	// djb2 reference: h = 5381; h = h*33 + c.
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 5381},
		{"a", 5381*33 + 'a'},
		{"ab", (5381*33+'a')*33 + 'b'},
	}
	for _, tc := range cases {
		if got := Djb2([]byte(tc.in)); got != tc.want {
			t.Errorf("Djb2(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestHashIncrementalEqualsWhole(t *testing.T) {
	// Property: hashing in arbitrary splits equals hashing whole — the
	// invariant the chunked checker relies on.
	f := func(data []byte, split uint8) bool {
		cut := 0
		if len(data) > 0 {
			cut = int(split) % (len(data) + 1)
		}
		for _, k := range []HashKind{HashDjb2, HashFNV1a} {
			whole := k.Sum(data)
			h := k.seed()
			h = k.update(h, data[:cut])
			h = k.update(h, data[cut:])
			if h != whole {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWordWideKernelsExhaustiveSmall proves the 8-byte kernels bit-identical
// to the byte-at-a-time references on every length from 0 through 33 (both
// sides of the word boundary, plus tails of every residue) with varied
// contents and seeds, and on every possible single byte.
func TestWordWideKernelsExhaustiveSmall(t *testing.T) {
	seeds := []uint64{0, Djb2Seed, FNV1aSeed, ^uint64(0), 0x0123456789abcdef}
	for n := 0; n <= 33; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i*37 + 11)
		}
		for _, h := range seeds {
			if got, want := Djb2Update(h, data), djb2UpdateRef(h, data); got != want {
				t.Fatalf("Djb2Update(h=%#x, len=%d) = %#x, ref %#x", h, n, got, want)
			}
			if got, want := FNV1aUpdate(h, data), fnv1aUpdateRef(h, data); got != want {
				t.Fatalf("FNV1aUpdate(h=%#x, len=%d) = %#x, ref %#x", h, n, got, want)
			}
		}
	}
	for b := 0; b < 256; b++ {
		data := []byte{byte(b)}
		if got, want := Djb2Update(Djb2Seed, data), djb2UpdateRef(Djb2Seed, data); got != want {
			t.Fatalf("Djb2Update single byte %#x = %#x, ref %#x", b, got, want)
		}
		if got, want := FNV1aUpdate(FNV1aSeed, data), fnv1aUpdateRef(FNV1aSeed, data); got != want {
			t.Fatalf("FNV1aUpdate single byte %#x = %#x, ref %#x", b, got, want)
		}
	}
}

// TestWordWideKernelsProperty: same bit-identity over arbitrary data and
// seeds, including word-aligned interior slices.
func TestWordWideKernelsProperty(t *testing.T) {
	f := func(h uint64, data []byte) bool {
		return Djb2Update(h, data) == djb2UpdateRef(h, data) &&
			FNV1aUpdate(h, data) == fnv1aUpdateRef(h, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashDetectsSingleBitFlip(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	for _, k := range []HashKind{HashDjb2, HashFNV1a} {
		orig := k.Sum(data)
		data[2048] ^= 1
		if k.Sum(data) == orig {
			t.Errorf("%v missed a single-bit flip", k)
		}
		data[2048] ^= 1
	}
}

func TestHashKindStrings(t *testing.T) {
	if HashDjb2.String() != "djb2" || HashFNV1a.String() != "fnv1a" {
		t.Error("hash names wrong")
	}
	if HashKind(9).String() == "" {
		t.Error("unknown kind must render")
	}
}
