package introspect

import (
	"testing"
	"time"

	"satin/internal/hw"
	"satin/internal/mem"
	"satin/internal/simclock"
	"satin/internal/trustzone"
)

type rig struct {
	engine  *simclock.Engine
	plat    *hw.Platform
	image   *mem.Image
	monitor *trustzone.Monitor
	checker *Checker
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := simclock.NewEngine()
	p, err := hw.NewJunoR1(e)
	if err != nil {
		t.Fatal(err)
	}
	im, err := mem.NewJunoImage(42)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChecker(im, p.Perf(), 5, HashDjb2, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{engine: e, plat: p, image: im, monitor: trustzone.NewMonitor(p, 3), checker: ch}
}

// checkOn runs one check synchronously-in-sim and returns the result.
func (r *rig) checkOn(t *testing.T, coreID int, tech Technique, addr uint64, size int) Result {
	t.Helper()
	var out Result
	got := false
	err := r.monitor.RequestSecure(coreID, func(ctx *trustzone.Context) {
		if err := r.checker.Check(ctx, tech, addr, size, func(res Result) {
			out = res
			got = true
			ctx.Exit()
		}); err != nil {
			t.Errorf("Check: %v", err)
			ctx.Exit()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	r.engine.Run()
	if !got {
		t.Fatal("check never completed")
	}
	return out
}

func TestNewCheckerValidation(t *testing.T) {
	r := newRig(t)
	if _, err := NewChecker(nil, r.plat.Perf(), 1, HashDjb2, 0); err == nil {
		t.Error("nil image accepted")
	}
	if _, err := NewChecker(r.image, r.plat.Perf(), 1, HashDjb2, -1); err == nil {
		t.Error("negative chunk accepted")
	}
	c, err := NewChecker(r.image, r.plat.Perf(), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash() != HashDjb2 {
		t.Error("default hash should be djb2")
	}
}

func TestCheckValidation(t *testing.T) {
	r := newRig(t)
	err := r.monitor.RequestSecure(0, func(ctx *trustzone.Context) {
		defer ctx.Exit()
		if err := r.checker.Check(ctx, DirectHash, r.image.Layout().Base, 0, nil); err == nil {
			t.Error("zero size accepted")
		}
		if err := r.checker.Check(ctx, DirectHash, 0, 16, nil); err == nil {
			t.Error("unmapped range accepted")
		}
		if err := r.checker.Check(ctx, Technique(9), r.image.Layout().Base, 16, nil); err == nil {
			t.Error("unknown technique accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	r.engine.Run()
}

func TestCleanKernelMatchesGolden(t *testing.T) {
	r := newRig(t)
	layout := r.image.Layout()
	areas, err := mem.BuildAreas(layout, mem.JunoAreaGroups())
	if err != nil {
		t.Fatal(err)
	}
	golden, err := GoldenTable(r.image, HashDjb2, areas)
	if err != nil {
		t.Fatal(err)
	}
	// Check three representative areas on an A57 core.
	for _, idx := range []int{0, 14, 18} {
		a := areas[idx]
		res := r.checkOn(t, 4, DirectHash, a.Addr, a.Size)
		if res.Sum != golden[idx] {
			t.Errorf("clean area %d hash %#x != golden %#x", idx, res.Sum, golden[idx])
		}
	}
}

func TestDirectHashDetectsModification(t *testing.T) {
	r := newRig(t)
	layout := r.image.Layout()
	entry := layout.SyscallEntryAddr(mem.GettidNR)
	if err := r.image.Mem().PutUint64(entry, r.image.ModuleBase()+0x40); err != nil {
		t.Fatal(err)
	}
	areas, err := mem.BuildAreas(layout, mem.JunoAreaGroups())
	if err != nil {
		t.Fatal(err)
	}
	golden, err := GoldenTable(r.image, HashDjb2, areas)
	if err != nil {
		t.Fatal(err)
	}
	res := r.checkOn(t, 4, DirectHash, areas[14].Addr, areas[14].Size)
	if res.Sum == golden[14] {
		t.Error("modified area hashed clean")
	}
	// Neighboring areas remain clean.
	res = r.checkOn(t, 4, DirectHash, areas[13].Addr, areas[13].Size)
	if res.Sum != golden[13] {
		t.Error("unmodified area hashed dirty")
	}
}

func TestCheckTimingMatchesTable1(t *testing.T) {
	// Table I: hashing the full kernel (11,916,240 B) takes
	// size × Ts_1byte: ≈0.080 s average on A57 (6.71 ns/B) and
	// ≈0.127 s on A53 (10.7 ns/B). The paper quotes "the average time for
	// one core to conduct a kernel integrity check is 8.04e-2 s".
	r := newRig(t)
	layout := r.image.Layout()
	size := layout.TotalSize()

	resA57 := r.checkOn(t, 4, DirectHash, layout.Base, size)
	if got := resA57.Elapsed().Seconds(); got < 0.075 || got > 0.095 {
		t.Errorf("A57 full-kernel hash took %.4f s, want ≈0.080 s", got)
	}
	resA53 := r.checkOn(t, 0, DirectHash, layout.Base, size)
	if got := resA53.Elapsed().Seconds(); got < 0.10 || got > 0.145 {
		t.Errorf("A53 full-kernel hash took %.4f s, want ≈0.127 s", got)
	}
	if resA57.Elapsed() >= resA53.Elapsed() {
		t.Error("A57 not faster than A53")
	}
}

func TestSnapshotTimingAndResult(t *testing.T) {
	r := newRig(t)
	layout := r.image.Layout()
	areas, err := mem.BuildAreas(layout, mem.JunoAreaGroups())
	if err != nil {
		t.Fatal(err)
	}
	a := areas[3] // largest
	golden, err := GoldenArea(r.image, HashDjb2, a)
	if err != nil {
		t.Fatal(err)
	}
	res := r.checkOn(t, 4, SnapshotHash, a.Addr, a.Size)
	if res.Sum != golden {
		t.Error("snapshot hash of clean area mismatched golden")
	}
	// Snapshot per-byte ≈ 6.75 ns on A57 ⇒ 876,616 B ≈ 5.9 ms.
	if got := res.Elapsed(); got < 5*time.Millisecond || got > 7*time.Millisecond {
		t.Errorf("snapshot of largest area took %v, want ≈5.9ms", got)
	}
}

func TestSnapshotFreezesBytesAtCapture(t *testing.T) {
	// A write AFTER the capture pass but BEFORE analysis completes must
	// still be detected... from the snapshot's perspective: the snapshot
	// holds the malicious bytes captured earlier even though live memory
	// was restored — the TOCTTOU-resistance of the snapshot technique.
	r := newRig(t)
	layout := r.image.Layout()
	areas, err := mem.BuildAreas(layout, mem.JunoAreaGroups())
	if err != nil {
		t.Fatal(err)
	}
	a := areas[14]
	golden, err := GoldenArea(r.image, HashDjb2, a)
	if err != nil {
		t.Fatal(err)
	}
	entry := layout.SyscallEntryAddr(mem.GettidNR)
	if err := r.image.Mem().PutUint64(entry, r.image.ModuleBase()+0x40); err != nil {
		t.Fatal(err)
	}
	// Restore the entry late in the check: after capture (first ~50% of
	// ~4.2ms), before analysis ends.
	r.engine.After(3*time.Millisecond, "late-restore", func() {
		if err := r.image.RestoreStatic(entry, 8); err != nil {
			t.Error(err)
		}
	})
	res := r.checkOn(t, 4, SnapshotHash, a.Addr, a.Size)
	if res.Sum == golden {
		t.Error("snapshot technique missed bytes restored after capture")
	}
}

func TestDirectHashRaceEvaderWinsWhenRestoredBeforeTouch(t *testing.T) {
	// The core TOCTTOU race of Figure 3: the malicious bytes sit deep in
	// the checked range; the evader restores them before the checker's
	// sequential scan reaches them, so the check comes back clean.
	r := newRig(t)
	layout := r.image.Layout()
	entry := layout.SyscallEntryAddr(mem.GettidNR) // ~9.7 MB into the kernel
	if err := r.image.Mem().PutUint64(entry, r.image.ModuleBase()+0x40); err != nil {
		t.Fatal(err)
	}
	size := layout.TotalSize()
	golden, err := GoldenRange(r.image, HashDjb2, layout.Base, size)
	if err != nil {
		t.Fatal(err)
	}
	// Full scan takes ≈80 ms on A57; the syscall table (~81% in) is
	// touched at ≈65 ms. Restoring at 10 ms beats the scan comfortably.
	r.engine.After(10*time.Millisecond, "evade", func() {
		if err := r.image.RestoreStatic(entry, 8); err != nil {
			t.Error(err)
		}
	})
	res := r.checkOn(t, 4, DirectHash, layout.Base, size)
	if res.Sum != golden {
		t.Error("checker detected bytes that were restored before it touched them; race model broken")
	}
}

func TestDirectHashRaceCheckerWinsWhenRestoredTooLate(t *testing.T) {
	r := newRig(t)
	layout := r.image.Layout()
	entry := layout.SyscallEntryAddr(mem.GettidNR)
	if err := r.image.Mem().PutUint64(entry, r.image.ModuleBase()+0x40); err != nil {
		t.Fatal(err)
	}
	size := layout.TotalSize()
	golden, err := GoldenRange(r.image, HashDjb2, layout.Base, size)
	if err != nil {
		t.Fatal(err)
	}
	// Restore at 75 ms: the scan already passed the syscall table (~65 ms).
	r.engine.After(75*time.Millisecond, "too-late", func() {
		if err := r.image.RestoreStatic(entry, 8); err != nil {
			t.Error(err)
		}
	})
	res := r.checkOn(t, 4, DirectHash, layout.Base, size)
	if res.Sum == golden {
		t.Error("checker missed bytes it touched before they were restored")
	}
}

func TestGoldenTableMatchesAreas(t *testing.T) {
	r := newRig(t)
	areas, err := mem.BuildAreas(r.image.Layout(), mem.JunoAreaGroups())
	if err != nil {
		t.Fatal(err)
	}
	golden, err := GoldenTable(r.image, HashDjb2, areas)
	if err != nil {
		t.Fatal(err)
	}
	if len(golden) != 19 {
		t.Fatalf("golden table has %d entries, want 19", len(golden))
	}
	// All distinct (pseudo-random content makes collisions implausible).
	seen := make(map[uint64]bool)
	for _, h := range golden {
		if seen[h] {
			t.Error("duplicate golden hash")
		}
		seen[h] = true
	}
}

func TestTechniqueStrings(t *testing.T) {
	if DirectHash.String() != "hash" || SnapshotHash.String() != "snapshot" {
		t.Error("technique names wrong")
	}
	if Technique(9).String() == "" {
		t.Error("unknown technique must render")
	}
}

func TestBufferBytesReflectsTechnique(t *testing.T) {
	// Table I's memory claim: direct hashing needs no copy buffer; the
	// snapshot approach buffers the whole range.
	r := newRig(t)
	areas, err := mem.BuildAreas(r.image.Layout(), mem.JunoAreaGroups())
	if err != nil {
		t.Fatal(err)
	}
	a := areas[5]
	direct := r.checkOn(t, 4, DirectHash, a.Addr, a.Size)
	if direct.BufferBytes != 0 {
		t.Errorf("DirectHash BufferBytes = %d, want 0", direct.BufferBytes)
	}
	snap := r.checkOn(t, 4, SnapshotHash, a.Addr, a.Size)
	if snap.BufferBytes != a.Size {
		t.Errorf("SnapshotHash BufferBytes = %d, want %d", snap.BufferBytes, a.Size)
	}
}
