package introspect

import (
	"testing"
)

// FuzzHashIncremental fuzzes the invariant the chunked checker relies on:
// hashing any split of the data equals hashing it whole, for both hash
// kinds.
func FuzzHashIncremental(f *testing.F) {
	f.Add([]byte("the quick brown fox"), 5)
	f.Add([]byte{}, 0)
	f.Add([]byte{0x00, 0xFF, 0x80}, 1)
	// Chunk boundaries: a zero-length first read and a zero-length second
	// read — the cases the chunked checker hits at area edges.
	f.Add([]byte("area boundary"), 0)
	f.Add([]byte("area boundary"), 13)
	// Zero-length data with a nonzero requested cut (clamped to 0).
	f.Add([]byte{}, 7)
	// A single byte split at both boundaries.
	f.Add([]byte{0xAA}, 0)
	f.Add([]byte{0xAA}, 1)
	f.Fuzz(func(t *testing.T, data []byte, cut int) {
		if cut < 0 {
			cut = -cut
		}
		if len(data) > 0 {
			cut %= len(data) + 1
		} else {
			cut = 0
		}
		for _, k := range []HashKind{HashDjb2, HashFNV1a} {
			whole := k.Sum(data)
			h := k.seed()
			h = k.update(h, data[:cut])
			h = k.update(h, data[cut:])
			if h != whole {
				t.Fatalf("%v: split hash %#x != whole %#x (cut %d, len %d)", k, h, whole, cut, len(data))
			}
		}
	})
}

// FuzzHashWordWide fuzzes the word-wide kernels against the byte-at-a-time
// references from arbitrary states: the optimization must be bit-identical
// for every (seed, data, offset) — offsets exercise tails of every residue
// mod 8 and misaligned starts.
func FuzzHashWordWide(f *testing.F) {
	f.Add(uint64(Djb2Seed), []byte("the quick brown fox jumps over"), 0)
	f.Add(uint64(FNV1aSeed), []byte{0xFF, 0x00, 0x80, 0x7F, 1, 2, 3, 4, 5}, 3)
	f.Add(uint64(0), []byte{}, 0)
	f.Add(^uint64(0), []byte("0123456789abcdef"), 7)
	f.Fuzz(func(t *testing.T, h uint64, data []byte, off int) {
		if off < 0 {
			off = -off
		}
		if len(data) > 0 {
			off %= len(data) + 1
		} else {
			off = 0
		}
		sub := data[off:]
		if got, want := Djb2Update(h, sub), djb2UpdateRef(h, sub); got != want {
			t.Fatalf("Djb2Update(h=%#x, len=%d) = %#x, ref %#x", h, len(sub), got, want)
		}
		if got, want := FNV1aUpdate(h, sub), fnv1aUpdateRef(h, sub); got != want {
			t.Fatalf("FNV1aUpdate(h=%#x, len=%d) = %#x, ref %#x", h, len(sub), got, want)
		}
	})
}

// FuzzDjb2Sensitivity fuzzes that flipping any single byte changes the
// digest — the property every integrity alarm in the system rests on.
func FuzzDjb2Sensitivity(f *testing.F) {
	f.Add([]byte("kernel text bytes"), 3, byte(1))
	// Boundary flips: first byte, last byte, and a full-byte inversion.
	f.Add([]byte("kernel text bytes"), 0, byte(0x01))
	f.Add([]byte("kernel text bytes"), 16, byte(0x80))
	f.Add([]byte{0x00}, 0, byte(0xFF))
	f.Fuzz(func(t *testing.T, data []byte, idx int, delta byte) {
		if len(data) == 0 || delta == 0 {
			return
		}
		if idx < 0 {
			idx = -idx
		}
		idx %= len(data)
		orig := Djb2(data)
		data[idx] ^= delta
		if Djb2(data) == orig {
			t.Fatalf("flip at %d (delta %#x) left djb2 unchanged", idx, delta)
		}
	})
}
