package introspect

import (
	"testing"
)

// FuzzHashIncremental fuzzes the invariant the chunked checker relies on:
// hashing any split of the data equals hashing it whole, for both hash
// kinds.
func FuzzHashIncremental(f *testing.F) {
	f.Add([]byte("the quick brown fox"), 5)
	f.Add([]byte{}, 0)
	f.Add([]byte{0x00, 0xFF, 0x80}, 1)
	// Chunk boundaries: a zero-length first read and a zero-length second
	// read — the cases the chunked checker hits at area edges.
	f.Add([]byte("area boundary"), 0)
	f.Add([]byte("area boundary"), 13)
	// Zero-length data with a nonzero requested cut (clamped to 0).
	f.Add([]byte{}, 7)
	// A single byte split at both boundaries.
	f.Add([]byte{0xAA}, 0)
	f.Add([]byte{0xAA}, 1)
	f.Fuzz(func(t *testing.T, data []byte, cut int) {
		if cut < 0 {
			cut = -cut
		}
		if len(data) > 0 {
			cut %= len(data) + 1
		} else {
			cut = 0
		}
		for _, k := range []HashKind{HashDjb2, HashFNV1a} {
			whole := k.Sum(data)
			h := k.seed()
			h = k.update(h, data[:cut])
			h = k.update(h, data[cut:])
			if h != whole {
				t.Fatalf("%v: split hash %#x != whole %#x (cut %d, len %d)", k, h, whole, cut, len(data))
			}
		}
	})
}

// FuzzDjb2Sensitivity fuzzes that flipping any single byte changes the
// digest — the property every integrity alarm in the system rests on.
func FuzzDjb2Sensitivity(f *testing.F) {
	f.Add([]byte("kernel text bytes"), 3, byte(1))
	// Boundary flips: first byte, last byte, and a full-byte inversion.
	f.Add([]byte("kernel text bytes"), 0, byte(0x01))
	f.Add([]byte("kernel text bytes"), 16, byte(0x80))
	f.Add([]byte{0x00}, 0, byte(0xFF))
	f.Fuzz(func(t *testing.T, data []byte, idx int, delta byte) {
		if len(data) == 0 || delta == 0 {
			return
		}
		if idx < 0 {
			idx = -idx
		}
		idx %= len(data)
		orig := Djb2(data)
		data[idx] ^= delta
		if Djb2(data) == orig {
			t.Fatalf("flip at %d (delta %#x) left djb2 unchanged", idx, delta)
		}
	})
}
