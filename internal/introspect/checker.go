package introspect

import (
	"fmt"
	"time"

	"satin/internal/hw"
	"satin/internal/mem"
	"satin/internal/obs"
	"satin/internal/profile"
	"satin/internal/simclock"
	"satin/internal/trustzone"
)

// Technique is the introspection data-acquisition technique of Table I.
type Technique int

// Acquisition techniques.
const (
	// DirectHash reads the live normal-world kernel from the secure world
	// and hashes it in place — the technique the paper finds faster and
	// leaner, and the one SATIN adopts (§IV-B1).
	DirectHash Technique = iota + 1
	// SnapshotHash copies the kernel bytes first, then hashes the frozen
	// copy — the traditional hardware-assisted approach (Copilot,
	// HyperCheck). Once a byte is captured, later normal-world writes
	// cannot change the verdict.
	SnapshotHash
)

// String names the technique as Table I does.
func (t Technique) String() string {
	switch t {
	case DirectHash:
		return "hash"
	case SnapshotHash:
		return "snapshot"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// SnapshotCaptureFraction is the share of a SnapshotHash check spent copying
// bytes out (the capture pass); the remainder is offline analysis of the
// frozen copy. The paper reports only the combined per-byte time (Table I),
// so the split is a modeling assumption — it only influences *when* within
// a check the TOCTTOU window closes, not the check's duration.
const SnapshotCaptureFraction = 0.5

// DefaultChunkSize is how many bytes a checker reads per scheduling event.
// 4 KiB at ~7–11 ns/byte gives ~30–45 µs timing resolution for the race —
// two orders of magnitude finer than the millisecond-scale quantities that
// decide it (Tns_recover, Tns_delay).
const DefaultChunkSize = 4096

// Checker reads and hashes normal-world memory from the secure world.
//
// The wall-clock hot path is allocation-free in steady state: chunk walks
// run through pooled run states instead of per-chunk closures, snapshot
// captures recycle their buffers, and the incremental hash cache (on by
// default; see SetHashCache) skips re-hashing chunks whose pages have not
// been written since they were last folded. None of this moves a single
// virtual-time instant: cached and naive checks are bit-identical.
type Checker struct {
	image *mem.Image
	rng   *simclock.RNG
	hash  HashKind
	chunk int

	// cache memoizes chunk hash transitions; nil when disabled via
	// SetHashCache(false).
	cache *hashCache
	// free lists for the allocation-free hot path.
	hashRuns    []*hashRun
	captureRuns []*captureRun
	bufs        [][]byte

	// Observability (nil unless Observe was called; all nil-safe).
	checks      *obs.Counter
	bytesHashed *obs.Counter
	bytesCopied *obs.Counter
	snapshots   *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	// prof receives one completed span per chunk walked (nil unless
	// SetProfiler was called). The chunk's area is inherited from the
	// enclosing round span, so the checker never needs to know it.
	prof *profile.Profiler
}

// SetProfiler attaches the causal span profiler: every chunk the checker
// walks — hash fold or snapshot copy — becomes a completed span covering
// the chunk's virtual read-plus-elapse interval. Passing nil detaches; the
// detached hot path pays one nil check per chunk.
func (c *Checker) SetProfiler(p *profile.Profiler) { c.prof = p }

// Observe wires the checker's hot path into the metrics registry: bytes
// hashed and snapshot-copied are counted per chunk, at the virtual instant
// the checker touches them (bytes_hashed counts bytes *covered*; a chunk
// served from the hash cache still covers its bytes). reg may be nil.
func (c *Checker) Observe(reg *obs.Registry) {
	c.checks = reg.Counter("introspect.checks")
	c.bytesHashed = reg.Counter("introspect.bytes_hashed")
	c.bytesCopied = reg.Counter("introspect.bytes_copied")
	c.snapshots = reg.Counter("introspect.snapshot_copies")
	c.cacheHits = reg.Counter("introspect.cache_hits")
	c.cacheMisses = reg.Counter("introspect.cache_misses")
}

// NewChecker builds a checker over the image. perf is the platform timing
// model the checker's cores were calibrated from; it is validated here, but
// at check time the per-byte rates come from the core the check runs on
// (Core.Rates), so runtime rescaling — DVFS steps, fault-injected jitter —
// is honored. Pass chunk 0 for DefaultChunkSize and hash 0 for djb2.
func NewChecker(image *mem.Image, perf hw.PerfModel, seed uint64, hash HashKind, chunk int) (*Checker, error) {
	if image == nil {
		return nil, fmt.Errorf("introspect: nil image")
	}
	if err := perf.Validate(); err != nil {
		return nil, fmt.Errorf("introspect: perf model: %w", err)
	}
	if chunk == 0 {
		chunk = DefaultChunkSize
	}
	if chunk < 0 {
		return nil, fmt.Errorf("introspect: chunk size %d must be positive", chunk)
	}
	if hash == 0 {
		hash = HashDjb2
	}
	return &Checker{
		image: image,
		rng:   simclock.NewRNG(seed, "introspect.checker"),
		hash:  hash,
		chunk: chunk,
		cache: newHashCache(),
	}, nil
}

// Hash reports which hash the checker uses.
func (c *Checker) Hash() HashKind { return c.hash }

// SetHashCache enables or disables the incremental hash cache. It is on by
// default; disabling it is the escape hatch the golden byte-identity
// regression uses to prove cached and naive runs agree. Re-enabling starts
// from an empty cache. Results are identical either way — only wall-clock
// time changes.
func (c *Checker) SetHashCache(enabled bool) {
	if !enabled {
		c.cache = nil
		return
	}
	if c.cache == nil {
		c.cache = newHashCache()
	}
}

// HashCacheEnabled reports whether the incremental hash cache is active.
func (c *Checker) HashCacheEnabled() bool { return c.cache != nil }

// CacheStats reports incremental-cache hits and misses since construction
// (both zero when the cache is disabled).
func (c *Checker) CacheStats() (hits, misses uint64) {
	if c.cache == nil {
		return 0, 0
	}
	return c.cache.hits, c.cache.misses
}

// Result is the outcome of one check.
type Result struct {
	Technique Technique
	Addr      uint64
	Size      int
	Sum       uint64
	Started   simclock.Time
	Finished  simclock.Time
	// BufferBytes is the secure-world memory the check needed beyond the
	// hash state: zero for DirectHash, the full range for SnapshotHash —
	// Table I's "it consumes less memory than the snapshot approach".
	BufferBytes int
}

// Elapsed reports how long the check took.
func (r Result) Elapsed() time.Duration { return r.Finished.Sub(r.Started) }

// Check hashes size bytes at addr inside the secure context using the given
// technique and hands the Result to done. Work is chunked: each chunk's
// bytes are read at the virtual instant the checker reaches them, so
// normal-world writes racing the check are honored exactly as on hardware.
// Errors are impossible once the range validates; validation failures are
// reported synchronously.
func (c *Checker) Check(ctx *trustzone.Context, tech Technique, addr uint64, size int, done func(Result)) error {
	if size <= 0 {
		return fmt.Errorf("introspect: check size %d must be positive", size)
	}
	if !c.image.Mem().Contains(addr, size) {
		return fmt.Errorf("introspect: check range [%#x,+%d) unmapped", addr, size)
	}
	// Effective rates of the core the check runs on: the Table I calibration
	// times any DVFS/fault rescaling currently applied to this core.
	rates := ctx.Core().Rates()
	res := Result{Technique: tech, Addr: addr, Size: size, Started: ctx.Now()}
	c.checks.Inc()
	if tech == SnapshotHash {
		c.snapshots.Inc()
	}
	switch tech {
	case DirectHash:
		// One per-byte rate per check, as the paper measures per run.
		rate := rates.HashPerByte.Draw(c.rng)
		r := c.getHashRun()
		r.ctx, r.addr, r.remaining, r.rate = ctx, addr, size, rate
		r.sum = c.hash.seed()
		r.done = func(sum uint64) {
			res.Sum = sum
			res.Finished = ctx.Now()
			done(res)
		}
		r.advance()
	case SnapshotHash:
		total := rates.SnapshotPerByte.Draw(c.rng)
		captureRate := total * SnapshotCaptureFraction
		analysis := secondsDuration(total * (1 - SnapshotCaptureFraction) * float64(size))
		res.BufferBytes = size
		r := c.getCaptureRun()
		r.ctx, r.addr, r.remaining, r.rate = ctx, addr, size, captureRate
		r.buf = c.getBuf(size)
		r.done = func(snapshot []byte) {
			// Analysis of the frozen copy: one block of secure CPU time.
			ctx.Elapse(analysis, func() {
				res.Sum = c.hash.Sum(snapshot)
				c.putBuf(snapshot)
				res.Finished = ctx.Now()
				done(res)
			})
		}
		r.advance()
	default:
		return fmt.Errorf("introspect: unknown technique %v", tech)
	}
	return nil
}

// hashRun is the pooled state of one in-flight DirectHash chunk walk. The
// walk carries its state here instead of in per-chunk closures so a
// steady-state round schedules its chunks without allocating: step is the
// single func value handed to Elapse for every chunk.
type hashRun struct {
	c         *Checker
	ctx       *trustzone.Context
	addr      uint64
	remaining int
	rate      float64
	sum       uint64
	done      func(uint64)
	step      func()
}

func (c *Checker) getHashRun() *hashRun {
	if n := len(c.hashRuns); n > 0 {
		r := c.hashRuns[n-1]
		c.hashRuns = c.hashRuns[:n-1]
		return r
	}
	r := &hashRun{c: c}
	r.step = r.advance
	return r
}

// advance folds the next chunk at the current virtual instant, then elapses
// the chunk's secure CPU time. On completion the run is recycled before
// done fires, so done may immediately start another check.
func (r *hashRun) advance() {
	c := r.c
	if r.remaining == 0 {
		done, sum := r.done, r.sum
		r.ctx, r.done = nil, nil
		c.hashRuns = append(c.hashRuns, r)
		done(sum)
		return
	}
	n := c.chunk
	if n > r.remaining {
		n = r.remaining
	}
	r.sum = c.hashChunk(r.addr, n, r.sum)
	c.bytesHashed.Add(int64(n))
	d := secondsDuration(r.rate * float64(n))
	if c.prof != nil {
		at := r.ctx.Now().Duration()
		c.prof.Complete(profile.SpanHashChunk, r.ctx.Core().ID(), -1, at, at+d)
	}
	r.addr += uint64(n)
	r.remaining -= n
	r.ctx.Elapse(d, r.step)
}

// hashChunk folds the n bytes at addr into h, consulting the incremental
// cache first. Reads — cached or not — happen at the current virtual
// instant, so racing writes are honored exactly as before.
func (c *Checker) hashChunk(addr uint64, n int, h uint64) uint64 {
	m := c.image.Mem()
	if c.cache != nil {
		if out, ok := c.cache.lookup(m, addr, n, h); ok {
			c.cacheHits.Inc()
			return out
		}
	}
	view, err := m.View(addr, n)
	if err != nil {
		panic(fmt.Sprintf("introspect: validated range became unreadable: %v", err))
	}
	out := c.hash.update(h, view)
	if c.cache != nil {
		c.cache.store(m, addr, n, h, out)
		c.cacheMisses.Inc()
	}
	return out
}

// captureRun is the pooled state of one in-flight SnapshotHash capture
// walk, the snapshot-technique analog of hashRun.
type captureRun struct {
	c         *Checker
	ctx       *trustzone.Context
	addr      uint64
	remaining int
	rate      float64
	buf       []byte
	done      func([]byte)
	step      func()
}

func (c *Checker) getCaptureRun() *captureRun {
	if n := len(c.captureRuns); n > 0 {
		r := c.captureRuns[n-1]
		c.captureRuns = c.captureRuns[:n-1]
		return r
	}
	r := &captureRun{c: c}
	r.step = r.advance
	return r
}

// advance copies the next chunk into the capture buffer at the current
// virtual instant, then elapses the chunk's copy time.
func (r *captureRun) advance() {
	c := r.c
	if r.remaining == 0 {
		done, buf := r.done, r.buf
		r.ctx, r.done, r.buf = nil, nil, nil
		c.captureRuns = append(c.captureRuns, r)
		done(buf)
		return
	}
	n := c.chunk
	if n > r.remaining {
		n = r.remaining
	}
	view, err := c.image.Mem().View(r.addr, n)
	if err != nil {
		panic(fmt.Sprintf("introspect: validated range became unreadable: %v", err))
	}
	r.buf = append(r.buf, view...)
	c.bytesCopied.Add(int64(n))
	d := secondsDuration(r.rate * float64(n))
	if c.prof != nil {
		at := r.ctx.Now().Duration()
		c.prof.Complete(profile.SpanSnapshotChunk, r.ctx.Core().ID(), -1, at, at+d)
	}
	r.addr += uint64(n)
	r.remaining -= n
	r.ctx.Elapse(d, r.step)
}

// getBuf returns a capture buffer with capacity >= n and length 0, reusing
// a pooled one when possible.
func (c *Checker) getBuf(n int) []byte {
	for k := len(c.bufs) - 1; k >= 0; k-- {
		if b := c.bufs[k]; cap(b) >= n {
			c.bufs = append(c.bufs[:k], c.bufs[k+1:]...)
			return b[:0]
		}
	}
	return make([]byte, 0, n)
}

// putBuf returns a capture buffer to the pool once its snapshot has been
// analyzed.
func (c *Checker) putBuf(b []byte) {
	c.bufs = append(c.bufs, b)
}

func secondsDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// GoldenArea computes the boot-time (pristine) hash of one area.
func GoldenArea(image *mem.Image, hash HashKind, a mem.Area) (uint64, error) {
	v, err := image.PristineView(a.Addr, a.Size)
	if err != nil {
		return 0, fmt.Errorf("introspect: golden hash of %v: %w", a, err)
	}
	return hash.Sum(v), nil
}

// GoldenTable computes the authorized hash of every area — the table SATIN
// prepares "during booting stage" and stores in secure memory (§V-B).
func GoldenTable(image *mem.Image, hash HashKind, areas []mem.Area) ([]uint64, error) {
	out := make([]uint64, len(areas))
	for i, a := range areas {
		h, err := GoldenArea(image, hash, a)
		if err != nil {
			return nil, err
		}
		out[i] = h
	}
	return out, nil
}

// GoldenRange computes the pristine hash of an arbitrary static-kernel
// range, used by the full-kernel baseline.
func GoldenRange(image *mem.Image, hash HashKind, addr uint64, size int) (uint64, error) {
	v, err := image.PristineView(addr, size)
	if err != nil {
		return 0, fmt.Errorf("introspect: golden hash of [%#x,+%d): %w", addr, size, err)
	}
	return hash.Sum(v), nil
}
