package introspect

import (
	"fmt"
	"time"

	"satin/internal/hw"
	"satin/internal/mem"
	"satin/internal/obs"
	"satin/internal/simclock"
	"satin/internal/trustzone"
)

// Technique is the introspection data-acquisition technique of Table I.
type Technique int

// Acquisition techniques.
const (
	// DirectHash reads the live normal-world kernel from the secure world
	// and hashes it in place — the technique the paper finds faster and
	// leaner, and the one SATIN adopts (§IV-B1).
	DirectHash Technique = iota + 1
	// SnapshotHash copies the kernel bytes first, then hashes the frozen
	// copy — the traditional hardware-assisted approach (Copilot,
	// HyperCheck). Once a byte is captured, later normal-world writes
	// cannot change the verdict.
	SnapshotHash
)

// String names the technique as Table I does.
func (t Technique) String() string {
	switch t {
	case DirectHash:
		return "hash"
	case SnapshotHash:
		return "snapshot"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// SnapshotCaptureFraction is the share of a SnapshotHash check spent copying
// bytes out (the capture pass); the remainder is offline analysis of the
// frozen copy. The paper reports only the combined per-byte time (Table I),
// so the split is a modeling assumption — it only influences *when* within
// a check the TOCTTOU window closes, not the check's duration.
const SnapshotCaptureFraction = 0.5

// DefaultChunkSize is how many bytes a checker reads per scheduling event.
// 4 KiB at ~7–11 ns/byte gives ~30–45 µs timing resolution for the race —
// two orders of magnitude finer than the millisecond-scale quantities that
// decide it (Tns_recover, Tns_delay).
const DefaultChunkSize = 4096

// Checker reads and hashes normal-world memory from the secure world.
type Checker struct {
	image *mem.Image
	rng   *simclock.RNG
	hash  HashKind
	chunk int

	// Observability (nil unless Observe was called; all nil-safe).
	checks      *obs.Counter
	bytesHashed *obs.Counter
	bytesCopied *obs.Counter
	snapshots   *obs.Counter
}

// Observe wires the checker's hot path into the metrics registry: bytes
// hashed and snapshot-copied are counted per chunk, at the virtual instant
// the checker touches them. reg may be nil.
func (c *Checker) Observe(reg *obs.Registry) {
	c.checks = reg.Counter("introspect.checks")
	c.bytesHashed = reg.Counter("introspect.bytes_hashed")
	c.bytesCopied = reg.Counter("introspect.bytes_copied")
	c.snapshots = reg.Counter("introspect.snapshot_copies")
}

// NewChecker builds a checker over the image. perf is the platform timing
// model the checker's cores were calibrated from; it is validated here, but
// at check time the per-byte rates come from the core the check runs on
// (Core.Rates), so runtime rescaling — DVFS steps, fault-injected jitter —
// is honored. Pass chunk 0 for DefaultChunkSize and hash 0 for djb2.
func NewChecker(image *mem.Image, perf hw.PerfModel, seed uint64, hash HashKind, chunk int) (*Checker, error) {
	if image == nil {
		return nil, fmt.Errorf("introspect: nil image")
	}
	if err := perf.Validate(); err != nil {
		return nil, fmt.Errorf("introspect: perf model: %w", err)
	}
	if chunk == 0 {
		chunk = DefaultChunkSize
	}
	if chunk < 0 {
		return nil, fmt.Errorf("introspect: chunk size %d must be positive", chunk)
	}
	if hash == 0 {
		hash = HashDjb2
	}
	return &Checker{
		image: image,
		rng:   simclock.NewRNG(seed, "introspect.checker"),
		hash:  hash,
		chunk: chunk,
	}, nil
}

// Hash reports which hash the checker uses.
func (c *Checker) Hash() HashKind { return c.hash }

// Result is the outcome of one check.
type Result struct {
	Technique Technique
	Addr      uint64
	Size      int
	Sum       uint64
	Started   simclock.Time
	Finished  simclock.Time
	// BufferBytes is the secure-world memory the check needed beyond the
	// hash state: zero for DirectHash, the full range for SnapshotHash —
	// Table I's "it consumes less memory than the snapshot approach".
	BufferBytes int
}

// Elapsed reports how long the check took.
func (r Result) Elapsed() time.Duration { return r.Finished.Sub(r.Started) }

// Check hashes size bytes at addr inside the secure context using the given
// technique and hands the Result to done. Work is chunked: each chunk's
// bytes are read at the virtual instant the checker reaches them, so
// normal-world writes racing the check are honored exactly as on hardware.
// Errors are impossible once the range validates; validation failures are
// reported synchronously.
func (c *Checker) Check(ctx *trustzone.Context, tech Technique, addr uint64, size int, done func(Result)) error {
	if size <= 0 {
		return fmt.Errorf("introspect: check size %d must be positive", size)
	}
	if !c.image.Mem().Contains(addr, size) {
		return fmt.Errorf("introspect: check range [%#x,+%d) unmapped", addr, size)
	}
	// Effective rates of the core the check runs on: the Table I calibration
	// times any DVFS/fault rescaling currently applied to this core.
	rates := ctx.Core().Rates()
	res := Result{Technique: tech, Addr: addr, Size: size, Started: ctx.Now()}
	c.checks.Inc()
	if tech == SnapshotHash {
		c.snapshots.Inc()
	}
	switch tech {
	case DirectHash:
		// One per-byte rate per check, as the paper measures per run.
		rate := rates.HashPerByte.Draw(c.rng)
		c.runChunks(ctx, addr, size, rate, c.hash.seed(), func(sum uint64) {
			res.Sum = sum
			res.Finished = ctx.Now()
			done(res)
		})
	case SnapshotHash:
		total := rates.SnapshotPerByte.Draw(c.rng)
		captureRate := total * SnapshotCaptureFraction
		analysis := secondsDuration(total * (1 - SnapshotCaptureFraction) * float64(size))
		snapshot := make([]byte, 0, size)
		res.BufferBytes = size
		c.captureChunks(ctx, addr, size, captureRate, &snapshot, func() {
			// Analysis of the frozen copy: one block of secure CPU time.
			ctx.Elapse(analysis, func() {
				res.Sum = c.hash.Sum(snapshot)
				res.Finished = ctx.Now()
				done(res)
			})
		})
	default:
		return fmt.Errorf("introspect: unknown technique %v", tech)
	}
	return nil
}

// runChunks incrementally hashes live memory chunk by chunk.
func (c *Checker) runChunks(ctx *trustzone.Context, addr uint64, remaining int, rate float64, sum uint64, done func(uint64)) {
	if remaining == 0 {
		done(sum)
		return
	}
	n := c.chunk
	if n > remaining {
		n = remaining
	}
	// Read the chunk at the instant the checker touches it.
	view, err := c.image.Mem().View(addr, n)
	if err != nil {
		panic(fmt.Sprintf("introspect: validated range became unreadable: %v", err))
	}
	sum = c.hash.update(sum, view)
	c.bytesHashed.Add(int64(n))
	ctx.Elapse(secondsDuration(rate*float64(n)), func() {
		c.runChunks(ctx, addr+uint64(n), remaining-n, rate, sum, done)
	})
}

// captureChunks copies live memory chunk by chunk into *out.
func (c *Checker) captureChunks(ctx *trustzone.Context, addr uint64, remaining int, rate float64, out *[]byte, done func()) {
	if remaining == 0 {
		done()
		return
	}
	n := c.chunk
	if n > remaining {
		n = remaining
	}
	view, err := c.image.Mem().View(addr, n)
	if err != nil {
		panic(fmt.Sprintf("introspect: validated range became unreadable: %v", err))
	}
	*out = append(*out, view...)
	c.bytesCopied.Add(int64(n))
	ctx.Elapse(secondsDuration(rate*float64(n)), func() {
		c.captureChunks(ctx, addr+uint64(n), remaining-n, rate, out, done)
	})
}

func secondsDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// GoldenArea computes the boot-time (pristine) hash of one area.
func GoldenArea(image *mem.Image, hash HashKind, a mem.Area) (uint64, error) {
	v, err := image.PristineView(a.Addr, a.Size)
	if err != nil {
		return 0, fmt.Errorf("introspect: golden hash of %v: %w", a, err)
	}
	return hash.Sum(v), nil
}

// GoldenTable computes the authorized hash of every area — the table SATIN
// prepares "during booting stage" and stores in secure memory (§V-B).
func GoldenTable(image *mem.Image, hash HashKind, areas []mem.Area) ([]uint64, error) {
	out := make([]uint64, len(areas))
	for i, a := range areas {
		h, err := GoldenArea(image, hash, a)
		if err != nil {
			return nil, err
		}
		out[i] = h
	}
	return out, nil
}

// GoldenRange computes the pristine hash of an arbitrary static-kernel
// range, used by the full-kernel baseline.
func GoldenRange(image *mem.Image, hash HashKind, addr uint64, size int) (uint64, error) {
	v, err := image.PristineView(addr, size)
	if err != nil {
		return 0, fmt.Errorf("introspect: golden hash of [%#x,+%d): %w", addr, size, err)
	}
	return hash.Sum(v), nil
}
