package introspect

import (
	"fmt"
	"sort"
)

// Checkpoint support. The checker never holds pending events at a claimable
// instant: its hash/capture walks live entirely inside a secure-world
// residence, which the protocol steps past before capturing, so the pooled
// run structs are all parked on the free lists. What remains is pure state:
// the dispersion RNG, and the incremental hash cache (entries plus its
// internal hit/miss counters — the obs counters ride the registry snapshot
// separately). The baseline service likewise schedules nothing itself — the
// secure timers it programs belong to hw.Core — so its state is the RNG and
// the round record.

// CacheEntry is one memoized chunk transition in serialized form, keyed by
// the chunk's start address.
type CacheEntry struct {
	Addr   uint64 `json:"addr"`
	HIn    uint64 `json:"h_in"`
	HOut   uint64 `json:"h_out"`
	GenSum uint64 `json:"gen_sum"`
}

// CheckerState is the checker's state at a claimable instant.
type CheckerState struct {
	RNG          []byte `json:"rng"`
	CacheEnabled bool   `json:"cache_enabled"`
	// CacheEntries is sorted by Addr so the serialized form is canonical.
	CacheEntries []CacheEntry `json:"cache_entries,omitempty"`
	CacheHits    uint64       `json:"cache_hits"`
	CacheMisses  uint64       `json:"cache_misses"`
}

// CheckpointState captures the checker's state.
func (c *Checker) CheckpointState() (CheckerState, error) {
	rng, err := c.rng.MarshalState()
	if err != nil {
		return CheckerState{}, fmt.Errorf("introspect: marshaling checker rng: %w", err)
	}
	st := CheckerState{RNG: rng}
	if c.cache != nil {
		st.CacheEnabled = true
		st.CacheHits = c.cache.hits
		st.CacheMisses = c.cache.misses
		st.CacheEntries = make([]CacheEntry, 0, len(c.cache.entries))
		for addr, e := range c.cache.entries {
			st.CacheEntries = append(st.CacheEntries, CacheEntry{Addr: addr, HIn: e.hIn, HOut: e.hOut, GenSum: e.genSum})
		}
		sort.Slice(st.CacheEntries, func(i, j int) bool { return st.CacheEntries[i].Addr < st.CacheEntries[j].Addr })
	}
	return st, nil
}

// RestoreState overwrites the checker's state with a captured one. The cache
// configuration must match: a snapshot taken with the cache disabled can only
// restore into a checker whose cache is also disabled, and vice versa —
// cache hits change which instants the walk elapses through, so a mismatch
// would silently fork the timeline.
func (c *Checker) RestoreState(st CheckerState) error {
	if st.CacheEnabled != (c.cache != nil) {
		return fmt.Errorf("introspect: snapshot hash cache enabled=%v, checker has enabled=%v", st.CacheEnabled, c.cache != nil)
	}
	if err := c.rng.RestoreState(st.RNG); err != nil {
		return fmt.Errorf("introspect: restoring checker rng: %w", err)
	}
	if c.cache != nil {
		c.cache.hits = st.CacheHits
		c.cache.misses = st.CacheMisses
		c.cache.entries = make(map[uint64]chunkEntry, len(st.CacheEntries))
		for _, e := range st.CacheEntries {
			c.cache.entries[e.Addr] = chunkEntry{hIn: e.HIn, hOut: e.HOut, genSum: e.GenSum}
		}
	}
	return nil
}

// BaselineState is the baseline service's state at a claimable instant.
type BaselineState struct {
	RNG      []byte    `json:"rng"`
	Rounds   int       `json:"rounds"`
	Outcomes []Outcome `json:"outcomes"`
}

// CheckpointState captures the baseline's state.
func (b *Baseline) CheckpointState() (BaselineState, error) {
	rng, err := b.rng.MarshalState()
	if err != nil {
		return BaselineState{}, fmt.Errorf("introspect: marshaling baseline rng: %w", err)
	}
	return BaselineState{
		RNG:      rng,
		Rounds:   b.rounds,
		Outcomes: append([]Outcome(nil), b.outcomes...),
	}, nil
}

// RestoreState overwrites the baseline's state with a captured one.
func (b *Baseline) RestoreState(st BaselineState) error {
	if err := b.rng.RestoreState(st.RNG); err != nil {
		return fmt.Errorf("introspect: restoring baseline rng: %w", err)
	}
	b.rounds = st.Rounds
	b.outcomes = append(b.outcomes[:0], st.Outcomes...)
	return nil
}
