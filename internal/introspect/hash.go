// Package introspect provides the secure-world introspection substrate
// shared by the baseline checkers and SATIN: the djb2 hash the paper uses
// (§IV-B1), a chunked memory checker whose reads interleave with normal-world
// memory writes in virtual time (reproducing the TOCTTOU race of Figure 3),
// a snapshot-then-hash engine, and the baseline periodic full-kernel
// checker that TZ-Evader defeats.
package introspect

import "encoding/binary"

// Djb2Seed is the djb2 initial value ("hash = 5381").
const Djb2Seed uint64 = 5381

// Powers of the djb2 multiplier, precomputed so the word-wide kernel can
// fold 8 bytes per iteration: applying h = h*33 + c eight times expands to
// h*33^8 + c0*33^7 + c1*33^6 + … + c7, and every multiply below is
// independent of the others, so the CPU pipelines them. All arithmetic is
// mod 2^64 either way, which is what makes the expansion bit-identical to
// the byte loop (proved exhaustively and by fuzzing in hash_test.go).
const (
	djb2p1 = 33
	djb2p2 = djb2p1 * 33
	djb2p3 = djb2p2 * 33
	djb2p4 = djb2p3 * 33
	djb2p5 = djb2p4 * 33
	djb2p6 = djb2p5 * 33
	djb2p7 = djb2p6 * 33
	djb2p8 = djb2p7 * 33
)

// Djb2Update folds data into h with the classic djb2 step
// (hash = hash*33 + c), the hash function the paper's prototype uses
// (§IV-B1, citing Bernstein via the "Hash functions" page). The 64-bit
// variant keeps collisions irrelevant at kernel scale. The kernel processes
// 8 bytes per iteration using the precomputed multiplier powers; the result
// is bit-identical to djb2UpdateRef.
func Djb2Update(h uint64, data []byte) uint64 {
	for len(data) >= 8 {
		w := binary.LittleEndian.Uint64(data)
		h = h*djb2p8 +
			uint64(byte(w))*djb2p7 +
			uint64(byte(w>>8))*djb2p6 +
			uint64(byte(w>>16))*djb2p5 +
			uint64(byte(w>>24))*djb2p4 +
			uint64(byte(w>>32))*djb2p3 +
			uint64(byte(w>>40))*djb2p2 +
			uint64(byte(w>>48))*djb2p1 +
			uint64(byte(w>>56))
		data = data[8:]
	}
	for _, c := range data {
		h = h*33 + uint64(c)
	}
	return h
}

// djb2UpdateRef is the byte-at-a-time reference the word-wide kernel is
// proved against. Tests only.
func djb2UpdateRef(h uint64, data []byte) uint64 {
	for _, c := range data {
		h = h*33 + uint64(c)
	}
	return h
}

// Djb2 hashes data from the seed in one call.
func Djb2(data []byte) uint64 {
	return Djb2Update(Djb2Seed, data)
}

// FNV-1a, offered as the ablation alternative to djb2. Same incremental
// structure, different diffusion.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// FNV1aSeed is the FNV-1a initial value.
const FNV1aSeed = fnvOffset

// FNV1aUpdate folds data into h with FNV-1a. Unlike djb2, the xor-multiply
// step does not distribute over a word, so the kernel loads 8 bytes at a
// time and unrolls the eight dependent steps — same arithmetic, one bounds
// check per word instead of per byte. Bit-identical to fnv1aUpdateRef.
func FNV1aUpdate(h uint64, data []byte) uint64 {
	for len(data) >= 8 {
		w := binary.LittleEndian.Uint64(data)
		h = (h ^ uint64(byte(w))) * fnvPrime
		h = (h ^ uint64(byte(w>>8))) * fnvPrime
		h = (h ^ uint64(byte(w>>16))) * fnvPrime
		h = (h ^ uint64(byte(w>>24))) * fnvPrime
		h = (h ^ uint64(byte(w>>32))) * fnvPrime
		h = (h ^ uint64(byte(w>>40))) * fnvPrime
		h = (h ^ uint64(byte(w>>48))) * fnvPrime
		h = (h ^ uint64(byte(w>>56))) * fnvPrime
		data = data[8:]
	}
	for _, c := range data {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// fnv1aUpdateRef is the byte-at-a-time reference the word-wide kernel is
// proved against. Tests only.
func fnv1aUpdateRef(h uint64, data []byte) uint64 {
	for _, c := range data {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// HashKind selects the hash used by a checker.
type HashKind int

// Supported hashes.
const (
	HashDjb2 HashKind = iota + 1
	HashFNV1a
)

// String names the hash.
func (k HashKind) String() string {
	switch k {
	case HashDjb2:
		return "djb2"
	case HashFNV1a:
		return "fnv1a"
	default:
		return "unknown-hash"
	}
}

// seed returns the initial value for the hash kind.
func (k HashKind) seed() uint64 {
	if k == HashFNV1a {
		return FNV1aSeed
	}
	return Djb2Seed
}

// update folds data into h using the hash kind.
func (k HashKind) update(h uint64, data []byte) uint64 {
	if k == HashFNV1a {
		return FNV1aUpdate(h, data)
	}
	return Djb2Update(h, data)
}

// Sum hashes data in one call using the hash kind.
func (k HashKind) Sum(data []byte) uint64 {
	return k.update(k.seed(), data)
}
