// Package introspect provides the secure-world introspection substrate
// shared by the baseline checkers and SATIN: the djb2 hash the paper uses
// (§IV-B1), a chunked memory checker whose reads interleave with normal-world
// memory writes in virtual time (reproducing the TOCTTOU race of Figure 3),
// a snapshot-then-hash engine, and the baseline periodic full-kernel
// checker that TZ-Evader defeats.
package introspect

// Djb2Seed is the djb2 initial value ("hash = 5381").
const Djb2Seed uint64 = 5381

// Djb2Update folds data into h with the classic djb2 step
// (hash = hash*33 + c), the hash function the paper's prototype uses
// (§IV-B1, citing Bernstein via the "Hash functions" page). The 64-bit
// variant keeps collisions irrelevant at kernel scale.
func Djb2Update(h uint64, data []byte) uint64 {
	for _, c := range data {
		h = h*33 + uint64(c)
	}
	return h
}

// Djb2 hashes data from the seed in one call.
func Djb2(data []byte) uint64 {
	return Djb2Update(Djb2Seed, data)
}

// FNV-1a, offered as the ablation alternative to djb2. Same incremental
// structure, different diffusion.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// FNV1aSeed is the FNV-1a initial value.
const FNV1aSeed = fnvOffset

// FNV1aUpdate folds data into h with FNV-1a.
func FNV1aUpdate(h uint64, data []byte) uint64 {
	for _, c := range data {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// HashKind selects the hash used by a checker.
type HashKind int

// Supported hashes.
const (
	HashDjb2 HashKind = iota + 1
	HashFNV1a
)

// String names the hash.
func (k HashKind) String() string {
	switch k {
	case HashDjb2:
		return "djb2"
	case HashFNV1a:
		return "fnv1a"
	default:
		return "unknown-hash"
	}
}

// seed returns the initial value for the hash kind.
func (k HashKind) seed() uint64 {
	if k == HashFNV1a {
		return FNV1aSeed
	}
	return Djb2Seed
}

// update folds data into h using the hash kind.
func (k HashKind) update(h uint64, data []byte) uint64 {
	if k == HashFNV1a {
		return FNV1aUpdate(h, data)
	}
	return Djb2Update(h, data)
}

// Sum hashes data in one call using the hash kind.
func (k HashKind) Sum(data []byte) uint64 {
	return k.update(k.seed(), data)
}
