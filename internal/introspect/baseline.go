package introspect

import (
	"fmt"
	"time"

	"satin/internal/hw"
	"satin/internal/mem"
	"satin/internal/obs"
	"satin/internal/simclock"
	"satin/internal/trace"
	"satin/internal/trustzone"
)

// CoreSelection says how the baseline picks the core for the next check.
type CoreSelection int

// Core selection policies.
const (
	// FixedCore always checks on one core — the configuration the paper
	// shows is easiest to probe (§IV-B2, observation 3).
	FixedCore CoreSelection = iota + 1
	// RandomCore checks on a uniformly random core each round — the
	// "state of the art" defense that TZ-Evader still beats (§IX).
	RandomCore
)

// String names the policy.
func (s CoreSelection) String() string {
	switch s {
	case FixedCore:
		return "fixed-core"
	case RandomCore:
		return "random-core"
	default:
		return fmt.Sprintf("CoreSelection(%d)", int(s))
	}
}

// BaselineConfig tunes the baseline checker.
type BaselineConfig struct {
	// Period is the time between checks (e.g. 8 s, like Samsung PKM-style
	// periodic measurement).
	Period time.Duration
	// RandomizePeriod adds a uniform deviation in [-Period, +Period] to
	// each wake-up, the "trigger the security checking randomly" defense
	// of §III-B2.
	RandomizePeriod bool
	// Selection picks the checking core.
	Selection CoreSelection
	// Core is the core used when Selection is FixedCore.
	Core int
	// Technique is the acquisition technique.
	Technique Technique
	// MaxRounds stops the checker after that many rounds; 0 means run
	// until the simulation ends.
	MaxRounds int
}

func (c BaselineConfig) validate(numCores int) error {
	if c.Period <= 0 {
		return fmt.Errorf("introspect: baseline period %v must be positive", c.Period)
	}
	switch c.Selection {
	case FixedCore:
		if c.Core < 0 || c.Core >= numCores {
			return fmt.Errorf("introspect: baseline fixed core %d outside [0, %d)", c.Core, numCores)
		}
	case RandomCore:
	default:
		return fmt.Errorf("introspect: unknown core selection %v", c.Selection)
	}
	switch c.Technique {
	case DirectHash, SnapshotHash:
	default:
		return fmt.Errorf("introspect: unknown technique %v", c.Technique)
	}
	if c.MaxRounds < 0 {
		return fmt.Errorf("introspect: MaxRounds %d must be >= 0", c.MaxRounds)
	}
	return nil
}

// Outcome records one completed baseline round.
type Outcome struct {
	Round    int
	CoreID   int
	Started  simclock.Time
	Finished simclock.Time
	Sum      uint64
	// Clean is true when the hash matched the authorized value.
	Clean bool
}

// Elapsed reports the round's duration.
func (o Outcome) Elapsed() time.Duration { return o.Finished.Sub(o.Started) }

// Baseline is the pre-SATIN asynchronous introspection: a periodic
// whole-kernel integrity check running in the secure world, in the style of
// the TSP-based checker the paper builds TZ-Evader against (§IV-A). Each
// round hashes the entire static kernel in one secure-world residence of
// ~80–130 ms — the long window TZ-Evader exploits.
//
// Modeling note: when Selection is RandomCore, the baseline programs the
// *next* core's secure timer directly from the current secure context. Real
// ARMv8-A cannot write another core's timer (§V-D) — working around that
// without leaking the wake-up pattern is precisely SATIN's contribution —
// so this idealization strictly favors the baseline. TZ-Evader beats it
// anyway.
type Baseline struct {
	platform *hw.Platform
	monitor  *trustzone.Monitor
	checker  *Checker
	image    *mem.Image
	cfg      BaselineConfig
	rng      *simclock.RNG

	golden   uint64
	rounds   int
	outcomes []Outcome
	onRound  []func(Outcome)

	// Observability (nil unless Observe was called; all nil-safe).
	bus      *obs.Bus
	roundCtr *obs.Counter
	dirtyCtr *obs.Counter
}

// Observe wires the baseline into the observability layer: each outcome is
// published to bus as a round (or alarm, when dirty) trace event, and reg
// gains round/dirty counters. Either argument may be nil.
func (b *Baseline) Observe(bus *obs.Bus, reg *obs.Registry) {
	b.bus = bus
	b.roundCtr = reg.Counter("baseline.rounds")
	b.dirtyCtr = reg.Counter("baseline.dirty_rounds")
}

// NewBaseline builds the baseline checker. Call Start to arm the first
// wake-up.
func NewBaseline(p *hw.Platform, monitor *trustzone.Monitor, checker *Checker, image *mem.Image, seed uint64, cfg BaselineConfig) (*Baseline, error) {
	if err := cfg.validate(p.NumCores()); err != nil {
		return nil, err
	}
	layout := image.Layout()
	golden, err := GoldenRange(image, checker.Hash(), layout.Base, layout.TotalSize())
	if err != nil {
		return nil, err
	}
	return &Baseline{
		platform: p,
		monitor:  monitor,
		checker:  checker,
		image:    image,
		cfg:      cfg,
		rng:      simclock.NewRNG(seed, "introspect.baseline"),
		golden:   golden,
	}, nil
}

// Start installs the baseline as the platform's secure service and arms the
// first wake-up.
func (b *Baseline) Start() error {
	b.monitor.SetService(b)
	return b.armNext(b.platform, b.platform.Engine().Now())
}

// Outcomes returns every completed round.
func (b *Baseline) Outcomes() []Outcome { return b.outcomes }

// OnRound registers fn to observe each completed round.
func (b *Baseline) OnRound(fn func(Outcome)) { b.onRound = append(b.onRound, fn) }

// OnSecureTimer implements trustzone.Service: one full-kernel check.
func (b *Baseline) OnSecureTimer(ctx *trustzone.Context) {
	layout := b.image.Layout()
	st := ctx.Core().SecureTimer()
	// Quiesce this core's timer while the check runs.
	if err := st.WriteCTL(hw.SecureWorld, false); err != nil {
		panic(fmt.Sprintf("introspect: secure CTL write failed: %v", err))
	}
	err := b.checker.Check(ctx, b.cfg.Technique, layout.Base, layout.TotalSize(), func(res Result) {
		out := Outcome{
			Round:    b.rounds,
			CoreID:   ctx.Core().ID(),
			Started:  res.Started,
			Finished: res.Finished,
			Sum:      res.Sum,
			Clean:    res.Sum == b.golden,
		}
		b.rounds++
		b.outcomes = append(b.outcomes, out)
		b.roundCtr.Inc()
		detail, kind := "clean", trace.KindRound
		if !out.Clean {
			detail, kind = "dirty", trace.KindAlarm
			b.dirtyCtr.Inc()
		}
		b.bus.Publish(trace.Event{At: res.Finished.Duration(), Kind: kind, Core: out.CoreID, Area: -1, Detail: detail})
		for _, fn := range b.onRound {
			fn(out)
		}
		if b.cfg.MaxRounds == 0 || b.rounds < b.cfg.MaxRounds {
			if err := b.armNext(ctx.Platform(), ctx.Now()); err != nil {
				panic(fmt.Sprintf("introspect: rearm failed: %v", err))
			}
		}
		ctx.Exit()
	})
	if err != nil {
		panic(fmt.Sprintf("introspect: baseline check failed to start: %v", err))
	}
}

// armNext programs the secure timer of the next checking core.
func (b *Baseline) armNext(p *hw.Platform, now simclock.Time) error {
	coreID := b.cfg.Core
	if b.cfg.Selection == RandomCore {
		coreID = b.rng.IntN(p.NumCores())
	}
	delay := b.cfg.Period
	if b.cfg.RandomizePeriod {
		// Uniform in [0, 2*Period): Period plus a deviation in [-P, +P).
		delay = time.Duration(b.rng.Float64() * 2 * float64(b.cfg.Period))
	}
	st := p.Core(coreID).SecureTimer()
	if err := st.WriteCVAL(hw.SecureWorld, now.Add(delay)); err != nil {
		return err
	}
	return st.WriteCTL(hw.SecureWorld, true)
}
