package introspect

import (
	"satin/internal/mem"
)

// hashCache is the incremental hash cache: it memoizes the hash-state
// transition of every chunk the checker reads, keyed by the chunk's start
// address and validated by (a) the hash state entering the chunk and (b)
// the write-generation sum of the pages the chunk spans.
//
// Correctness argument (the determinism constraint of the hot-path
// overhaul): a cached transition (hIn → hOut) was recorded when the chunk
// held bytes B. Page generations increase on every Memory.Write, so an
// unchanged generation sum at lookup time proves no write touched those
// pages since the entry was stored — the chunk still holds B — and an equal
// hIn means folding B in again would reproduce hOut exactly. Both checks
// happen at the same virtual instant the naive path would have read the
// bytes, so writes racing a check (the paper's Figure 3 TOCTTOU structure)
// invalidate precisely the chunks they would have changed: cached and naive
// checks return bit-identical sums in every interleaving. The differential
// property tests in cache_test.go drive randomized write/check sequences
// against a naive re-hash to enforce this.
//
// The common case the cache exists for: an attack flips ~8 bytes out of a
// ~12 MB kernel, so all but one chunk of every round after the first full
// scan hits, and steady-state rounds cost two integer compares per 4 KiB
// instead of a hash over them.
type hashCache struct {
	entries map[uint64]chunkEntry
	hits    uint64
	misses  uint64
}

// chunkEntry is one memoized chunk transition.
type chunkEntry struct {
	hIn    uint64 // hash state entering the chunk when stored
	hOut   uint64 // resulting state after folding the chunk's bytes
	genSum uint64 // mem.GenSum over the chunk's pages when stored
}

func newHashCache() *hashCache {
	return &hashCache{entries: make(map[uint64]chunkEntry)}
}

// lookup returns the memoized outgoing hash state for the chunk at
// [addr, addr+n) entered with state hIn, if the entry is still valid at the
// current instant.
func (hc *hashCache) lookup(m *mem.Memory, addr uint64, n int, hIn uint64) (uint64, bool) {
	e, ok := hc.entries[addr]
	if !ok || e.hIn != hIn || e.genSum != m.GenSum(addr, n) {
		hc.misses++
		return 0, false
	}
	hc.hits++
	return e.hOut, true
}

// store memoizes the transition hIn → hOut for the chunk at [addr, addr+n),
// stamped with the pages' current generation sum. Must be called at the
// same virtual instant the bytes were read.
func (hc *hashCache) store(m *mem.Memory, addr uint64, n int, hIn, hOut uint64) {
	hc.entries[addr] = chunkEntry{hIn: hIn, hOut: hOut, genSum: m.GenSum(addr, n)}
}
