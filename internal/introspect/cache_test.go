package introspect

import (
	"testing"
	"time"

	"satin/internal/mem"
	"satin/internal/simclock"
	"satin/internal/trustzone"
)

// TestCacheDifferentialRandomWrites is the differential property test for the
// incremental hash cache: after every randomized batch of writes — small and
// large, page-straddling, overlapping, or none at all — a cached check of the
// area must equal a naive full re-hash of the bytes it read. The memory is
// quiescent during each check, so the naive expectation is just the hash of
// the live bytes; the rounds before it left the cache populated with a mix of
// stale and still-valid entries, which is exactly what the generation
// validation has to sort out.
func TestCacheDifferentialRandomWrites(t *testing.T) {
	r := newRig(t)
	if !r.checker.HashCacheEnabled() {
		t.Fatal("cache must be on by default")
	}
	areas, err := mem.BuildAreas(r.image.Layout(), mem.JunoAreaGroups())
	if err != nil {
		t.Fatal(err)
	}
	a := areas[14]
	rng := simclock.NewRNG(99, "test.cache.differential")
	buf := make([]byte, 64)
	for round := 0; round < 40; round++ {
		for w := rng.IntN(9); w > 0; w-- {
			n := 1 + rng.IntN(len(buf))
			off := uint64(rng.IntN(a.Size - n))
			for i := 0; i < n; i++ {
				buf[i] = byte(rng.Uint64())
			}
			if err := r.image.Mem().Write(a.Addr+off, buf[:n]); err != nil {
				t.Fatal(err)
			}
		}
		view, err := r.image.Mem().View(a.Addr, a.Size)
		if err != nil {
			t.Fatal(err)
		}
		naive := djb2UpdateRef(Djb2Seed, view)
		res := r.checkOn(t, 4, DirectHash, a.Addr, a.Size)
		if res.Sum != naive {
			hits, misses := r.checker.CacheStats()
			t.Fatalf("round %d: cached sum %#x != naive %#x (cache %d hits / %d misses)",
				round, res.Sum, naive, hits, misses)
		}
	}
	hits, misses := r.checker.CacheStats()
	if hits == 0 || misses == 0 {
		t.Errorf("differential rounds exercised no cache traffic: %d hits / %d misses", hits, misses)
	}
}

// TestCacheTransparentUnderRacingWrites runs the Figure 3 TOCTTOU race —
// writes landing mid-check, both before and after the scan touches them — on
// two identical rigs, cache on and cache off. Sums AND virtual timings must
// match exactly: the cache may only change wall-clock time.
func TestCacheTransparentUnderRacingWrites(t *testing.T) {
	run := func(cached bool) []Result {
		r := newRig(t)
		r.checker.SetHashCache(cached)
		layout := r.image.Layout()
		entry := layout.SyscallEntryAddr(mem.GettidNR)
		size := layout.TotalSize()
		var out []Result
		// Warm pass over the whole kernel, then two racing passes: one where
		// the restore beats the scan to the syscall table, one where it loses.
		for pass, restoreAt := range []time.Duration{0, 10 * time.Millisecond, 75 * time.Millisecond} {
			if err := r.image.Mem().PutUint64(entry, r.image.ModuleBase()+0x40); err != nil {
				t.Fatal(err)
			}
			if pass > 0 {
				r.engine.After(restoreAt, "race-restore", func() {
					if err := r.image.RestoreStatic(entry, 8); err != nil {
						t.Error(err)
					}
				})
			} else if err := r.image.RestoreStatic(entry, 8); err != nil {
				t.Fatal(err)
			}
			out = append(out, r.checkOn(t, 4, DirectHash, layout.Base, size))
		}
		return out
	}
	cached, naive := run(true), run(false)
	for i := range cached {
		if cached[i].Sum != naive[i].Sum {
			t.Errorf("pass %d: cached sum %#x != uncached %#x", i, cached[i].Sum, naive[i].Sum)
		}
		if cached[i].Started != naive[i].Started || cached[i].Finished != naive[i].Finished {
			t.Errorf("pass %d: cached timing [%v,%v] != uncached [%v,%v]",
				i, cached[i].Started, cached[i].Finished, naive[i].Started, naive[i].Finished)
		}
	}
	// The mid-scan restore races differ in outcome by construction; make sure
	// the transparency assertion above actually covered both outcomes.
	if cached[1].Sum == cached[2].Sum {
		t.Error("race passes should produce different sums (evader wins vs loses)")
	}
}

// TestCacheStatsAndToggle: a repeat check of an untouched area is served from
// the cache; disabling the cache zeroes the stats and re-enabling starts
// empty — and none of it changes the sum.
func TestCacheStatsAndToggle(t *testing.T) {
	r := newRig(t)
	areas, err := mem.BuildAreas(r.image.Layout(), mem.JunoAreaGroups())
	if err != nil {
		t.Fatal(err)
	}
	a := areas[3]
	first := r.checkOn(t, 4, DirectHash, a.Addr, a.Size)
	hits, misses := r.checker.CacheStats()
	if hits != 0 || misses == 0 {
		t.Fatalf("cold check: %d hits / %d misses, want 0 hits and all misses", hits, misses)
	}
	second := r.checkOn(t, 4, DirectHash, a.Addr, a.Size)
	if second.Sum != first.Sum {
		t.Error("repeat check changed sum")
	}
	if hits, _ = r.checker.CacheStats(); hits != uint64((a.Size+DefaultChunkSize-1)/DefaultChunkSize) {
		t.Errorf("repeat check hit %d chunks, want every chunk", hits)
	}
	// A persistent write invalidates its own chunk via the generation check
	// and every downstream chunk via the hIn chain (their incoming state
	// changed); the untouched prefix still hits. When the write is later
	// undone the re-hashed chunk reproduces its old hOut and the suffix
	// becomes valid again — the steady-state pattern the cache exploits.
	writeOff := uint64(a.Size / 2)
	if err := r.image.Mem().Write(a.Addr+writeOff, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	totalChunks := uint64((a.Size + DefaultChunkSize - 1) / DefaultChunkSize)
	prefixChunks := writeOff / DefaultChunkSize
	hitsBefore, missesBefore := r.checker.CacheStats()
	third := r.checkOn(t, 4, DirectHash, a.Addr, a.Size)
	hitsAfter, missesAfter := r.checker.CacheStats()
	if third.Sum == first.Sum {
		t.Error("check missed the write")
	}
	// Areas are not page-aligned, so the written page can straddle the
	// preceding chunk too: allow one extra miss.
	if got := missesAfter - missesBefore; got < totalChunks-prefixChunks || got > totalChunks-prefixChunks+1 {
		t.Errorf("persistent write invalidated %d chunks, want the ~%d from the write onward",
			got, totalChunks-prefixChunks)
	}
	if got := hitsAfter - hitsBefore; got < prefixChunks-1 || got > prefixChunks {
		t.Errorf("prefix hit %d chunks, want ~%d", got, prefixChunks)
	}

	r.checker.SetHashCache(false)
	if r.checker.HashCacheEnabled() {
		t.Fatal("SetHashCache(false) left cache enabled")
	}
	if h, m := r.checker.CacheStats(); h != 0 || m != 0 {
		t.Errorf("disabled cache reports stats %d/%d", h, m)
	}
	uncached := r.checkOn(t, 4, DirectHash, a.Addr, a.Size)
	if uncached.Sum != third.Sum {
		t.Error("disabling the cache changed the sum")
	}
	r.checker.SetHashCache(true)
	hits, misses = r.checker.CacheStats()
	if hits != 0 || misses != 0 {
		t.Errorf("re-enabled cache not empty: %d hits / %d misses", hits, misses)
	}
	reenabled := r.checkOn(t, 4, DirectHash, a.Addr, a.Size)
	if reenabled.Sum != third.Sum {
		t.Error("re-enabling the cache changed the sum")
	}
}

// TestCacheSnapshotPathUnaffected: SnapshotHash never consults the chunk
// cache (its verdict is fixed at capture time, not read time), so its results
// and buffer accounting are identical either way.
func TestCacheSnapshotPathUnaffected(t *testing.T) {
	r := newRig(t)
	areas, err := mem.BuildAreas(r.image.Layout(), mem.JunoAreaGroups())
	if err != nil {
		t.Fatal(err)
	}
	a := areas[5]
	on := r.checkOn(t, 4, SnapshotHash, a.Addr, a.Size)
	r.checker.SetHashCache(false)
	off := r.checkOn(t, 4, SnapshotHash, a.Addr, a.Size)
	if on.Sum != off.Sum || on.BufferBytes != off.BufferBytes {
		t.Error("snapshot results depend on hash cache")
	}
}

// TestPooledRunsSurviveBackToBackChecks drives many sequential checks through
// one checker to exercise run recycling: a run is returned to the pool before
// its done callback fires, so a callback that immediately starts the next
// check reuses the same struct.
func TestPooledRunsSurviveBackToBackChecks(t *testing.T) {
	r := newRig(t)
	areas, err := mem.BuildAreas(r.image.Layout(), mem.JunoAreaGroups())
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, 4)
	for i := range want {
		v, err := r.image.Mem().View(areas[i].Addr, areas[i].Size)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = djb2UpdateRef(Djb2Seed, v)
	}
	got := make([]uint64, 0, len(want))
	idx := 0
	var launch func(ctx *trustzone.Context)
	launch = func(ctx *trustzone.Context) {
		a := areas[idx]
		err := r.checker.Check(ctx, DirectHash, a.Addr, a.Size, func(res Result) {
			got = append(got, res.Sum)
			idx++
			if idx < len(want) {
				launch(ctx) // chained from inside done: reuses the pooled run
				return
			}
			ctx.Exit()
		})
		if err != nil {
			t.Error(err)
			ctx.Exit()
		}
	}
	if err := r.monitor.RequestSecure(4, launch); err != nil {
		t.Fatal(err)
	}
	r.engine.Run()
	if len(got) != len(want) {
		t.Fatalf("completed %d checks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("chained check %d sum %#x != naive %#x", i, got[i], want[i])
		}
	}
}
