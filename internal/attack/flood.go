package attack

import (
	"fmt"
	"time"

	"satin/internal/hw"
	"satin/internal/simclock"
)

// InterruptFlood is the interference attack that motivates SATIN's
// SCR_EL3.IRQ=0 requirement (§V-B): a compromised rich OS raises software-
// generated interrupts at a high rate toward every core. Under the
// non-preemptive routing SATIN configures, the flood is harmless — the
// interrupts pend while a check runs. Under preemptive routing (the OP-TEE
// style), every interrupt that lands on a checking core preempts the
// payload, stretching the check until the evader's recovery beats it.
type InterruptFlood struct {
	platform *hw.Platform
	engine   *simclock.Engine
	period   time.Duration
	cores    []int
	running  bool
	raised   int
	// tickPending is the next scheduled burst, tracked so a checkpoint can
	// claim it (see checkpoint.go).
	tickPending *simclock.Handle
}

// NewInterruptFlood prepares a flood at the given per-core rate (interrupts
// per second) against the listed cores (nil means all).
func NewInterruptFlood(p *hw.Platform, rate float64, cores []int) (*InterruptFlood, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("attack: flood rate %v must be positive", rate)
	}
	if len(cores) == 0 {
		cores = make([]int, p.NumCores())
		for i := range cores {
			cores[i] = i
		}
	}
	for _, c := range cores {
		if c < 0 || c >= p.NumCores() {
			return nil, fmt.Errorf("attack: flood core %d out of range", c)
		}
	}
	return &InterruptFlood{
		platform: p,
		engine:   p.Engine(),
		period:   time.Duration(float64(time.Second) / rate),
		cores:    cores,
	}, nil
}

// Start configures the SGI line and begins raising interrupts. The
// attacker's own no-op handler services them in the normal world (like the
// IPI handler of a flooding kernel module).
func (f *InterruptFlood) Start() error {
	if f.running {
		return fmt.Errorf("attack: flood already running")
	}
	f.running = true
	gic := f.platform.GIC()
	gic.Configure(hw.IntSGIFlood, hw.GroupNonSecure)
	gic.Register(hw.IntSGIFlood, func(int) {})
	f.tick()
	return nil
}

// Stop halts the flood after the next pending tick.
func (f *InterruptFlood) Stop() { f.running = false }

// Raised reports how many interrupts the flood has asserted.
func (f *InterruptFlood) Raised() int { return f.raised }

func (f *InterruptFlood) tick() {
	f.tickPending = nil
	if !f.running {
		return
	}
	for _, c := range f.cores {
		f.platform.GIC().Raise(hw.IntSGIFlood, c)
		f.raised++
	}
	f.tickPending = f.engine.After(f.period, "sgi-flood", f.tick)
}
