package attack

import (
	"fmt"
	"math"
	"time"

	"satin/internal/hw"
	"satin/internal/simclock"
)

// ThresholdModel is the scalable model of KProber's probing threshold —
// the per-round maximum of the cross-core report-time differences the
// paper's Table II tabulates for probing periods from 8 s to 300 s.
//
// Why a model instead of running the thread-level prober: reproducing
// Table II verbatim means 50 rounds × (8+16+30+120+300) s of probing at a
// 2e-4 s wake interval — about two billion scheduler events. The model
// samples each round's maximum directly from the same three ingredients the
// thread-level simulation exhibits, and the test suite cross-validates it
// against ThreadProber runs at small scale:
//
//  1. Phase offsets: the per-core reporters free-run at Tsleep, so at any
//     instant the pairwise report-time differences are the phase offsets,
//     uniform in [0, Tsleep) and drifting slowly with scheduling jitter. A
//     round's base maximum is the maximum offset over all pairs and drift
//     epochs, approaching Tsleep from below.
//  2. Wake/dispatch jitter: each report is late by the scheduler's wake
//     latency, adding its near-maximum over a round's many samples.
//  3. Cross-core visibility spikes (§IV-B2's "abnormal large delay ... up
//     to 1.3e-3 s"): rare, so short rounds usually see none (Table II's 8 s
//     average ≈ Tsleep + jitter) while long rounds collect several, raising
//     both the average and the extremes.
type ThresholdModel struct {
	// Sleep is the prober's Tsleep.
	Sleep time.Duration
	// WakeJitter is the dispatch-latency distribution of the rich OS.
	WakeJitter simclock.Dist
	// Noise is the cross-core visibility model.
	Noise CrossCoreNoise
	// Pairs is the number of ordered (comparer, peer) pairs probed.
	Pairs int
	// ReadsPerSecond is how many buffer reads per second all comparers
	// perform together, converting Noise.SpikeProb into a spike rate.
	ReadsPerSecond float64
	// DriftPeriod is how long pairwise phases stay put before drifting to
	// fresh offsets.
	DriftPeriod time.Duration
}

// JunoThresholdModel returns the model for the paper's configuration:
// KProber-II on all six Juno cores with Tsleep = 2e-4 s.
func JunoThresholdModel(perf hw.PerfModel) ThresholdModel {
	const cores = 6
	sleep := DefaultProberSleep
	return ThresholdModel{
		Sleep:          sleep,
		WakeJitter:     perf.ThreadWakeLatency,
		Noise:          JunoCrossCoreNoise(),
		Pairs:          cores * (cores - 1),
		ReadsPerSecond: float64(cores*(cores-1)) / sleep.Seconds(),
		DriftPeriod:    20 * time.Second,
	}
}

// SingleCoreModel adapts m to the dedicated single-core prober: one pair,
// a spinning reporter (period SpinQuantum, no sleep-phase term), matching
// §IV-B2's observation that single-core probing is ≈4x more precise.
func (m ThresholdModel) SingleCoreModel() ThresholdModel {
	out := m
	out.Sleep = SpinQuantum
	out.Pairs = 1
	out.ReadsPerSecond = 1 / DefaultProberSleep.Seconds() // one comparer
	return out
}

// Validate checks the model.
func (m ThresholdModel) Validate() error {
	if m.Sleep <= 0 || m.Pairs <= 0 || m.ReadsPerSecond <= 0 || m.DriftPeriod <= 0 {
		return fmt.Errorf("attack: threshold model has non-positive parameters: %+v", m)
	}
	if err := m.WakeJitter.Validate(); err != nil {
		return fmt.Errorf("attack: wake jitter: %w", err)
	}
	return m.Noise.Validate()
}

// SampleRound draws one probing round's threshold (the round's maximum
// observed report-time difference) for the given probing period.
func (m ThresholdModel) SampleRound(period time.Duration, g *simclock.RNG) time.Duration {
	if period <= 0 {
		panic(fmt.Sprintf("attack: probing period %v must be positive", period))
	}
	epochs := int(period / m.DriftPeriod)
	if epochs < 1 {
		epochs = 1
	}
	// Base term: max phase offset over pairs and epochs, plus a
	// near-maximal wake jitter. max of K uniforms on [0, Sleep) sampled
	// via inverse transform U^(1/K).
	k := float64(m.Pairs * epochs)
	maxPhase := time.Duration(float64(m.Sleep) * math.Pow(g.Float64(), 1/k))
	jitter := m.drawNearMaxJitter(g)
	round := maxPhase + jitter

	// Spike term: Poisson-many visibility spikes over the round, each
	// landing on a read with a fresh phase offset.
	rate := m.Noise.SpikeProb * m.ReadsPerSecond
	n := poisson(rate*period.Seconds(), g)
	for i := 0; i < n; i++ {
		spike := time.Duration(g.ExpFloat64() * float64(m.Noise.SpikeMean))
		if spike > m.Noise.SpikeCap {
			spike = m.Noise.SpikeCap
		}
		cand := time.Duration(g.Float64()*float64(m.Sleep)) + m.drawNearMaxJitter(g) + spike
		if cand > round {
			round = cand
		}
	}
	return round
}

// drawNearMaxJitter samples the round-maximum of the wake-jitter term. With
// thousands of reports per round the maximum sits in the top of the jitter
// distribution's range.
func (m ThresholdModel) drawNearMaxJitter(g *simclock.RNG) time.Duration {
	span := float64(m.WakeJitter.Max - m.WakeJitter.Avg)
	return m.WakeJitter.Max - time.Duration(0.3*span*g.Float64())
}

// RoundSet samples `rounds` thresholds for one probing period, the raw data
// behind one Table II row / Figure 4 box.
func (m ThresholdModel) RoundSet(period time.Duration, rounds int, g *simclock.RNG) []time.Duration {
	out := make([]time.Duration, rounds)
	for i := range out {
		out[i] = m.SampleRound(period, g)
	}
	return out
}

// poisson samples a Poisson variate by Knuth's method; fine for the small
// means (≤ ~10) this model produces.
func poisson(mean float64, g *simclock.RNG) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	n := 0
	p := 1.0
	for {
		p *= g.Float64()
		if p <= l {
			return n
		}
		n++
	}
}
