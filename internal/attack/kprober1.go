package attack

import (
	"fmt"
	"time"

	"satin/internal/mem"
	"satin/internal/richos"
)

// KProber1Offset is where the KProber-I body is "loaded" in the module
// arena.
const kprober1Offset = 0x2000

// KProber1 is the timer-interrupt prober of §III-C1: it hijacks the IRQ
// exception vector so the Time Reporter runs inside every timer interrupt,
// guaranteeing a reporting frequency no lower than HZ on every non-idle
// core. Its weakness is also the paper's: the hijack rewrites vector bytes
// inside kernel text, leaving a trace the introspection can find (the
// vector lives in area 0 of the Juno layout).
//
// To keep every core out of NO_HZ idle — so the per-core timer keeps
// ticking — KProber1 optionally spawns a low-priority user-level busy
// thread per core, as the paper describes.
type KProber1 struct {
	os     *richos.OS
	buffer *ReportBuffer

	hijackAddr   uint64
	originalVec  uint64
	installed    bool
	keepBusy     []*richos.Thread
	reportCounts []int
}

// NewKProber1 builds the prober; Install performs the hijack.
func NewKProber1(os *richos.OS, buffer *ReportBuffer) *KProber1 {
	return &KProber1{
		os:           os,
		buffer:       buffer,
		reportCounts: make([]int, os.Platform().NumCores()),
	}
}

// Install hijacks the IRQ vector and, when keepBusy is set, spawns one
// CFS busy thread per core so no core enters NO_HZ idle.
func (k *KProber1) Install(keepBusy bool) error {
	if k.installed {
		return fmt.Errorf("attack: KProber-I already installed")
	}
	image := k.os.Image()
	vecAddr := image.Layout().IRQVectorAddr()
	orig, err := image.Mem().Uint64(vecAddr)
	if err != nil {
		return fmt.Errorf("attack: reading IRQ vector: %w", err)
	}
	k.originalVec = orig
	k.hijackAddr = image.ModuleBase() + kprober1Offset
	// The prober body: report, then trampoline to the original handler.
	k.os.RegisterIRQHandler(k.hijackAddr, func(coreID int) {
		now := k.os.ReadCounter()
		k.buffer.Write(coreID, now, now)
		k.reportCounts[coreID]++
		k.os.KernelTick(coreID)
	})
	// A kernel-privilege write: a synchronous guard protecting the vector
	// table blocks this hijack (§VII-A) until the AP-flip exploit runs.
	if err := k.os.KernelPutUint64(vecAddr, k.hijackAddr); err != nil {
		return fmt.Errorf("attack: rewriting IRQ vector: %w", err)
	}
	k.installed = true
	if keepBusy {
		for _, core := range k.os.AllCores() {
			th, err := k.os.Spawn(fmt.Sprintf("kp1-busy-%d", core), richos.PolicyCFS, 0, []int{core},
				richos.ProgramFunc(func(*richos.ThreadContext) richos.Step {
					return richos.Compute(time.Millisecond)
				}))
			if err != nil {
				return fmt.Errorf("attack: spawning busy thread: %w", err)
			}
			k.keepBusy = append(k.keepBusy, th)
		}
	}
	return nil
}

// Uninstall restores the original vector — the trace-removal KProber-I
// would need to perform if the defender closes in.
func (k *KProber1) Uninstall() error {
	if !k.installed {
		return fmt.Errorf("attack: KProber-I not installed")
	}
	image := k.os.Image()
	if err := k.os.KernelPutUint64(image.Layout().IRQVectorAddr(), k.originalVec); err != nil {
		return fmt.Errorf("attack: restoring IRQ vector: %w", err)
	}
	k.installed = false
	return nil
}

// Installed reports whether the hijack is active.
func (k *KProber1) Installed() bool { return k.installed }

// HijackAddr reports where the prober body lives (module arena).
func (k *KProber1) HijackAddr() uint64 { return k.hijackAddr }

// TraceSize reports how many kernel-text bytes the hijack modifies.
func (k *KProber1) TraceSize() int { return mem.SyscallEntrySize }

// ReportCount reports how many tick-driven reports core c has published.
func (k *KProber1) ReportCount(c int) int { return k.reportCounts[c] }
