package attack

import (
	"fmt"
	"time"

	"satin/internal/richos"
	"satin/internal/simclock"
)

// ProberKind selects the prober implementation.
type ProberKind int

// Prober implementations from the paper.
const (
	// UserProber is the user-level multi-thread prober of §III-B1:
	// ordinary CFS threads, no kernel privilege, stealthy but at the
	// mercy of the scheduler.
	UserProber ProberKind = iota + 1
	// KProberII raises the prober threads to the maximum SCHED_FIFO
	// priority (§III-C2): reliable sub-millisecond probing.
	KProberII
)

// String names the kind.
func (k ProberKind) String() string {
	switch k {
	case UserProber:
		return "user-prober"
	case KProberII:
		return "kprober-II"
	default:
		return fmt.Sprintf("ProberKind(%d)", int(k))
	}
}

// DefaultProberSleep is Tsleep = 2e-4 s, the paper's KProber-II sleep
// interval (§IV-A1); Tns_sched is assumed equal to it.
const DefaultProberSleep = 200 * time.Microsecond

// ProberConfig tunes a ThreadProber.
type ProberConfig struct {
	Kind ProberKind
	// Sleep is the interval between probing rounds of each thread
	// (Tns_sched). Defaults to DefaultProberSleep.
	Sleep time.Duration
	// Threshold is Tns_threshold: staleness beyond it flags the core as
	// having entered the secure world. The detection experiment uses the
	// paper's 1.8e-3 s (§VI-B1).
	Threshold time.Duration
	// Cores lists the cores to probe (one pinned thread each). Empty
	// means all cores.
	Cores []int
	// OnSuspect fires when a core's report goes stale past the threshold.
	OnSuspect func(core int, at simclock.Time)
	// OnRecover fires when a previously suspected core reports again.
	OnRecover func(core int, at simclock.Time)
}

func (c ProberConfig) withDefaults() ProberConfig {
	if c.Sleep == 0 {
		c.Sleep = DefaultProberSleep
	}
	return c
}

func (c ProberConfig) validate() error {
	switch c.Kind {
	case UserProber, KProberII:
	default:
		return fmt.Errorf("attack: unknown prober kind %v", c.Kind)
	}
	if c.Sleep <= 0 {
		return fmt.Errorf("attack: prober sleep %v must be positive", c.Sleep)
	}
	if c.Threshold < 0 {
		return fmt.Errorf("attack: prober threshold %v must be >= 0", c.Threshold)
	}
	return nil
}

// ThreadProber is the full-fidelity prober: one thread pinned per probed
// core, each combining a Time Reporter and a Time Comparer exactly as in
// the paper's Figure 2. It is the ground truth against which the scalable
// models (ThresholdModel, FastEvader) are cross-validated.
type ThreadProber struct {
	os     *richos.OS
	buffer *ReportBuffer
	cfg    ProberConfig

	threads []*richos.Thread
	// suspected[c] is true while core c's report is stale past threshold.
	suspected []bool
	// clearedAt[c] debounces re-suspicion after a clear (see compare).
	clearedAt []simclock.Time

	// maxStaleness is the largest cross-core staleness any comparer
	// observed — the quantity whose per-round maximum Table II calls the
	// probing threshold.
	maxStaleness time.Duration
	observations int
}

// NewThreadProber builds the prober. Call Start to spawn its threads.
func NewThreadProber(os *richos.OS, buffer *ReportBuffer, cfg ProberConfig) (*ThreadProber, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(cfg.Cores) == 0 {
		cfg.Cores = os.AllCores()
	}
	for _, c := range cfg.Cores {
		if c < 0 || c >= os.Platform().NumCores() {
			return nil, fmt.Errorf("attack: prober core %d out of range", c)
		}
	}
	return &ThreadProber{
		os:        os,
		buffer:    buffer,
		cfg:       cfg,
		suspected: make([]bool, os.Platform().NumCores()),
		clearedAt: make([]simclock.Time, os.Platform().NumCores()),
	}, nil
}

// Start spawns the per-core prober threads.
func (p *ThreadProber) Start() error {
	if len(p.threads) != 0 {
		return fmt.Errorf("attack: prober already started")
	}
	policy, prio := richos.PolicyCFS, 0
	if p.cfg.Kind == KProberII {
		// pthread_setschedparam(SCHED_FIFO,
		// sched_get_priority_max(SCHED_FIFO)), as in §IV-A1.
		policy, prio = richos.PolicyFIFO, richos.MaxRTPriority
	}
	for _, core := range p.cfg.Cores {
		core := core
		th, err := p.os.Spawn(
			fmt.Sprintf("prober-%d", core), policy, prio, []int{core},
			richos.ProgramFunc(func(tc *richos.ThreadContext) richos.Step {
				p.probeOnce(tc, core)
				return richos.Sleep(p.cfg.Sleep)
			}))
		if err != nil {
			return fmt.Errorf("attack: spawning prober on core %d: %w", core, err)
		}
		p.threads = append(p.threads, th)
	}
	return nil
}

// probeOnce is one Time Reporter + Time Comparer round on myCore.
func (p *ThreadProber) probeOnce(tc *richos.ThreadContext, myCore int) {
	now := tc.Now()
	p.buffer.Write(myCore, now, now)
	p.compare(now, myCore)
}

// compare runs the Time Comparer: check every probed peer's latest visible
// report against the threshold.
func (p *ThreadProber) compare(now simclock.Time, myCore int) {
	for _, x := range p.cfg.Cores {
		if x == myCore {
			continue
		}
		v, ok := p.buffer.Read(x, now)
		if !ok {
			continue // nothing published yet (startup)
		}
		staleness := now.Sub(v)
		p.observations++
		if staleness > p.maxStaleness {
			p.maxStaleness = staleness
		}
		if p.cfg.Threshold == 0 {
			continue // measurement mode: no suspicion logic
		}
		if staleness > p.cfg.Threshold {
			// Debounce: a delayed-visibility read right after a clear can
			// replay the stale report; genuine re-entry needs at least
			// `threshold` to re-accumulate.
			if !p.suspected[x] && now.Sub(p.clearedAt[x]) > p.cfg.Threshold {
				p.suspected[x] = true
				if p.cfg.OnSuspect != nil {
					p.cfg.OnSuspect(x, now)
				}
			}
		} else if p.suspected[x] {
			p.suspected[x] = false
			p.clearedAt[x] = now
			if p.cfg.OnRecover != nil {
				p.cfg.OnRecover(x, now)
			}
		}
	}
}

// Suspected reports whether core c is currently flagged.
func (p *ThreadProber) Suspected(c int) bool { return p.suspected[c] }

// MaxStaleness returns the largest staleness observed so far — after a
// quiet run this is the empirical Tns_threshold (§VII-B calibration).
func (p *ThreadProber) MaxStaleness() time.Duration { return p.maxStaleness }

// ResetMaxStaleness clears the running maximum, starting a new measurement
// round.
func (p *ThreadProber) ResetMaxStaleness() { p.maxStaleness = 0 }

// Observations reports how many comparisons have run.
func (p *ThreadProber) Observations() int { return p.observations }

// SpinQuantum is the reporting period of the dedicated single-core prober:
// the reporter never sleeps, re-publishing every SpinQuantum of CPU. This
// reproduces the paper's observation that probing a single fixed core is
// ≈4x more precise than probing all cores (§IV-B2).
const SpinQuantum = 50 * time.Microsecond

// SingleCoreProber probes exactly one target core: a spinning Time Reporter
// pinned to the target and a Reporter+Comparer on an observer core
// (§IV-A1's "probe a specific core" deployment).
type SingleCoreProber struct {
	inner    *ThreadProber
	target   int
	observer int
}

// NewSingleCoreProber builds the two-thread prober.
func NewSingleCoreProber(os *richos.OS, buffer *ReportBuffer, target, observer int, cfg ProberConfig) (*SingleCoreProber, error) {
	if target == observer {
		return nil, fmt.Errorf("attack: target and observer must differ")
	}
	cfg.Cores = []int{target, observer}
	inner, err := NewThreadProber(os, buffer, cfg)
	if err != nil {
		return nil, err
	}
	return &SingleCoreProber{inner: inner, target: target, observer: observer}, nil
}

// Start spawns the spinning reporter and the observing comparer.
func (s *SingleCoreProber) Start() error {
	p := s.inner
	policy, prio := richos.PolicyCFS, 0
	if p.cfg.Kind == KProberII {
		policy, prio = richos.PolicyFIFO, richos.MaxRTPriority
	}
	// Spinning reporter on the target core.
	_, err := p.os.Spawn("spin-reporter", policy, prio, []int{s.target},
		richos.ProgramFunc(func(tc *richos.ThreadContext) richos.Step {
			now := tc.Now()
			p.buffer.Write(s.target, now, now)
			return richos.Compute(SpinQuantum)
		}))
	if err != nil {
		return fmt.Errorf("attack: spawning spin reporter: %w", err)
	}
	// Reporter+Comparer on the observer core.
	_, err = p.os.Spawn("observer", policy, prio, []int{s.observer},
		richos.ProgramFunc(func(tc *richos.ThreadContext) richos.Step {
			now := tc.Now()
			p.buffer.Write(s.observer, now, now)
			v, ok := p.buffer.Read(s.target, now)
			if ok {
				staleness := now.Sub(v)
				p.observations++
				if staleness > p.maxStaleness {
					p.maxStaleness = staleness
				}
				if p.cfg.Threshold > 0 {
					if staleness > p.cfg.Threshold {
						if !p.suspected[s.target] && now.Sub(p.clearedAt[s.target]) > p.cfg.Threshold {
							p.suspected[s.target] = true
							if p.cfg.OnSuspect != nil {
								p.cfg.OnSuspect(s.target, now)
							}
						}
					} else if p.suspected[s.target] {
						p.suspected[s.target] = false
						p.clearedAt[s.target] = now
						if p.cfg.OnRecover != nil {
							p.cfg.OnRecover(s.target, now)
						}
					}
				}
			}
			return richos.Sleep(p.cfg.Sleep)
		}))
	if err != nil {
		return fmt.Errorf("attack: spawning observer: %w", err)
	}
	return nil
}

// MaxStaleness mirrors ThreadProber.MaxStaleness.
func (s *SingleCoreProber) MaxStaleness() time.Duration { return s.inner.maxStaleness }

// ResetMaxStaleness mirrors ThreadProber.ResetMaxStaleness.
func (s *SingleCoreProber) ResetMaxStaleness() { s.inner.maxStaleness = 0 }

// Suspected reports whether the target is flagged.
func (s *SingleCoreProber) Suspected() bool { return s.inner.suspected[s.target] }
