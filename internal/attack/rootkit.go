package attack

import (
	"fmt"

	"satin/internal/mem"
	"satin/internal/richos"
	"satin/internal/simclock"
)

// rootkitBodyOffset is where the rootkit's malicious GETTID body is
// "loaded" in the module arena.
const rootkitBodyOffset = 0x100

// RootkitState is the attack-trace state.
type RootkitState int

// Rootkit states.
const (
	// RootkitHidden: the syscall table holds the benign pointer.
	RootkitHidden RootkitState = iota + 1
	// RootkitActive: the table entry points at the malicious body.
	RootkitActive
)

// String names the state.
func (s RootkitState) String() string {
	switch s {
	case RootkitHidden:
		return "hidden"
	case RootkitActive:
		return "active"
	default:
		return fmt.Sprintf("RootkitState(%d)", int(s))
	}
}

// Rootkit is the paper's sample kernel-level attack (§IV-A2): it hijacks
// the GETTID system call by rewriting the call's 8-byte syscall-table
// entry. The modified bytes sit in area 14 of the Juno layout — the M = 8
// bytes of attacking trace that TZ-Evader races to remove.
type Rootkit struct {
	os    *richos.OS
	image *mem.Image

	bodyAddr uint64
	// targets are the static-kernel addresses the attack modifies, 8
	// bytes each. The paper's sample attack has exactly one (the GETTID
	// entry, M = 8); NewRootkitSpread generalizes to larger M.
	targets []uint64
	state   RootkitState
	// Captures is how many times the malicious body ran (e.g. per GETTID
	// call intercepted — the key-logger analogy of §III-A).
	captures int
	// transitions log every install/hide for the experiments.
	transitions []Transition
}

// Transition is one rootkit state change.
type Transition struct {
	At    simclock.Time
	State RootkitState
}

// NewRootkit prepares the rootkit: the malicious body is registered in the
// module arena but the syscall table is untouched until Install.
func NewRootkit(os *richos.OS, image *mem.Image) *Rootkit {
	r := NewRootkitAt(os, image, image.Layout().SyscallEntryAddr(mem.GettidNR))
	os.RegisterSyscallHandler(r.bodyAddr, func(tc *richos.ThreadContext, nr int) uint64 {
		r.captures++
		// Pass through so the victim sees a working syscall.
		return uint64(nr)
	})
	return r
}

// NewRootkitAt prepares a rootkit whose 8-byte trace lands at an arbitrary
// static-kernel address — the generalization the race-analysis sweep of
// §IV-C needs ("supposing the attack bytes appears randomly in the
// kernel"). No syscall handler is registered; the trace is pure bytes.
func NewRootkitAt(os *richos.OS, image *mem.Image, target uint64) *Rootkit {
	return NewRootkitSpread(os, image, []uint64{target})
}

// NewRootkitSpread prepares a rootkit with M = 8*len(targets) bytes of
// attacking trace spread across the given addresses — the general M of the
// paper's race formalization (§III-B2), whose recovery cost
// Tns_recover = M * Tns_1byte is the evader's timing bottleneck (§IV-C
// observation 4).
func NewRootkitSpread(os *richos.OS, image *mem.Image, targets []uint64) *Rootkit {
	return &Rootkit{
		os:       os,
		image:    image,
		bodyAddr: image.ModuleBase() + rootkitBodyOffset,
		targets:  append([]uint64(nil), targets...),
		state:    RootkitHidden,
	}
}

// TraceBytes is M: the number of attacking-trace bytes the evader must
// recover, "one 8-bytes address of the system call table" (§IV-A2).
const TraceBytes = mem.SyscallEntrySize

// entryAddr is the primary hijacked slot (the first target).
func (r *Rootkit) entryAddr() uint64 { return r.targets[0] }

// TargetAddr reports where the (first) trace lands.
func (r *Rootkit) TargetAddr() uint64 { return r.targets[0] }

// TraceSize reports M: the total attacking-trace bytes the evader must
// recover.
func (r *Rootkit) TraceSize() int { return len(r.targets) * mem.SyscallEntrySize }

// Install writes the malicious pointer into the live syscall table. The
// write goes through the kernel-privilege path (OS.KernelWrite): when a
// synchronous guard protects the table, installation faults and is denied —
// the attacker must first run the §VII-A AP-flip exploit (see
// internal/syncguard).
func (r *Rootkit) Install(at simclock.Time) error {
	if r.state == RootkitActive {
		return fmt.Errorf("attack: rootkit already active")
	}
	for i, target := range r.targets {
		if err := r.os.KernelPutUint64(target, r.bodyAddr); err != nil {
			// All-or-nothing: undo what landed before the failure (a
			// half-installed attack would be a free trace for the
			// defender with no benefit for the attacker).
			for _, done := range r.targets[:i] {
				benign, perr := r.image.Pristine(done, mem.SyscallEntrySize)
				if perr == nil {
					_ = r.os.KernelWrite(done, benign)
				}
			}
			return fmt.Errorf("attack: hijacking target %#x: %w", target, err)
		}
	}
	r.state = RootkitActive
	r.transitions = append(r.transitions, Transition{At: at, State: RootkitActive})
	return nil
}

// Hide restores the benign pointer, removing the attacking trace. The
// *time cost* of hiding (Tns_recover) is modeled by the evader thread that
// calls this after computing for the recovery duration; Hide itself is the
// final write.
func (r *Rootkit) Hide(at simclock.Time) error {
	if r.state == RootkitHidden {
		return fmt.Errorf("attack: rootkit already hidden")
	}
	for _, target := range r.targets {
		benign, err := r.image.Pristine(target, mem.SyscallEntrySize)
		if err != nil {
			return fmt.Errorf("attack: reading benign bytes: %w", err)
		}
		if err := r.os.KernelWrite(target, benign); err != nil {
			return fmt.Errorf("attack: restoring target %#x: %w", target, err)
		}
	}
	r.state = RootkitHidden
	r.transitions = append(r.transitions, Transition{At: at, State: RootkitHidden})
	return nil
}

// State reports whether the trace is currently present.
func (r *Rootkit) State() RootkitState { return r.state }

// Captures reports how many syscalls the malicious body intercepted.
func (r *Rootkit) Captures() int { return r.captures }

// Transitions returns the install/hide log.
func (r *Rootkit) Transitions() []Transition { return r.transitions }

// ActiveBetween reports whether the trace was present during the entire
// interval [from, to] — the question the introspection race turns on.
func (r *Rootkit) ActiveBetween(from, to simclock.Time) bool {
	state := RootkitHidden
	// State at instant `from`: replay transitions up to it.
	i := 0
	for ; i < len(r.transitions) && !r.transitions[i].At.After(from); i++ {
		state = r.transitions[i].State
	}
	if state != RootkitActive {
		return false
	}
	for ; i < len(r.transitions) && !r.transitions[i].At.After(to); i++ {
		if r.transitions[i].State != RootkitActive {
			return false
		}
	}
	return true
}
