package attack

import (
	"testing"
	"time"

	"satin/internal/hw"
	"satin/internal/mem"
	"satin/internal/richos"
	"satin/internal/simclock"
)

type rig struct {
	engine *simclock.Engine
	plat   *hw.Platform
	image  *mem.Image
	os     *richos.OS
	buffer *ReportBuffer
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := simclock.NewEngine()
	p, err := hw.NewJunoR1(e)
	if err != nil {
		t.Fatal(err)
	}
	im, err := mem.NewJunoImage(42)
	if err != nil {
		t.Fatal(err)
	}
	os, err := richos.NewOS(p, im, richos.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := NewReportBuffer(p.NumCores(), JunoCrossCoreNoise(), 9)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{engine: e, plat: p, image: im, os: os, buffer: buf}
}

func TestReportBufferBasics(t *testing.T) {
	noNoise := CrossCoreNoise{Base: simclock.Exact(0)}
	b, err := NewReportBuffer(2, noNoise, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumSlots() != 2 {
		t.Errorf("NumSlots = %d", b.NumSlots())
	}
	if _, ok := b.Read(0, 100); ok {
		t.Error("empty slot returned a value")
	}
	b.Write(0, 50, 50)
	v, ok := b.Read(0, 100)
	if !ok || v != 50 {
		t.Errorf("Read = %v, %v; want 50", v, ok)
	}
	// Newest wins with zero delay.
	b.Write(0, 80, 80)
	v, _ = b.Read(0, 100)
	if v != 80 {
		t.Errorf("Read = %v, want 80", v)
	}
}

func TestReportBufferVisibilityDelay(t *testing.T) {
	// With a fixed 10µs delay, a write 5µs ago is invisible; the previous
	// one (20µs old) is returned instead.
	delayed := CrossCoreNoise{Base: simclock.Exact(10 * time.Microsecond)}
	b, err := NewReportBuffer(1, delayed, 1)
	if err != nil {
		t.Fatal(err)
	}
	t0 := simclock.Time(100 * time.Microsecond)
	b.Write(0, t0, t0)
	t1 := t0.Add(15 * time.Microsecond)
	b.Write(0, t1, t1)
	readAt := t1.Add(5 * time.Microsecond)
	v, ok := b.Read(0, readAt)
	if !ok || v != t0 {
		t.Errorf("Read = %v, %v; want the older report %v", v, ok, t0)
	}
	// Once the newer write ages past the delay it becomes visible.
	v, _ = b.Read(0, t1.Add(11*time.Microsecond))
	if v != t1 {
		t.Errorf("Read = %v, want %v", v, t1)
	}
}

func TestReportBufferHistoryCap(t *testing.T) {
	noNoise := CrossCoreNoise{Base: simclock.Exact(0)}
	b, err := NewReportBuffer(1, noNoise, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		at := simclock.Time(i * int(time.Microsecond))
		b.Write(0, at, at)
	}
	if got := len(b.slots[0]); got > reportHistory {
		t.Errorf("history grew to %d entries, cap is %d", got, reportHistory)
	}
	v, ok := b.Read(0, simclock.Time(200*time.Microsecond))
	if !ok || v != simclock.Time(100*time.Microsecond) {
		t.Errorf("newest after wrap = %v, %v", v, ok)
	}
}

func TestNoiseValidation(t *testing.T) {
	if _, err := NewReportBuffer(0, JunoCrossCoreNoise(), 1); err == nil {
		t.Error("zero slots accepted")
	}
	bad := []CrossCoreNoise{
		{Base: simclock.Dist{Min: 5, Avg: 1, Max: 9}},
		{Base: simclock.Exact(0), SpikeProb: -0.1},
		{Base: simclock.Exact(0), SpikeProb: 2},
		{Base: simclock.Exact(0), SpikeProb: 0.5, SpikeMean: 0},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("noise %d accepted", i)
		}
	}
	if err := JunoCrossCoreNoise().Validate(); err != nil {
		t.Errorf("Juno noise invalid: %v", err)
	}
}

func TestProberConfigValidation(t *testing.T) {
	r := newRig(t)
	if _, err := NewThreadProber(r.os, r.buffer, ProberConfig{Kind: ProberKind(9)}); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := NewThreadProber(r.os, r.buffer, ProberConfig{Kind: KProberII, Sleep: -1}); err == nil {
		t.Error("negative sleep accepted")
	}
	if _, err := NewThreadProber(r.os, r.buffer, ProberConfig{Kind: KProberII, Threshold: -1}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := NewThreadProber(r.os, r.buffer, ProberConfig{Kind: KProberII, Cores: []int{42}}); err == nil {
		t.Error("bad core accepted")
	}
}

func TestProberQuietNoSuspicion(t *testing.T) {
	r := newRig(t)
	var suspects []int
	p, err := NewThreadProber(r.os, r.buffer, ProberConfig{
		Kind:      KProberII,
		Threshold: 1800 * time.Microsecond,
		OnSuspect: func(core int, _ simclock.Time) { suspects = append(suspects, core) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(5 * time.Second)
	if len(suspects) != 0 {
		t.Errorf("false positives on a quiet system: %v", suspects)
	}
	if p.Observations() < 10000 {
		t.Errorf("only %d observations in 5s", p.Observations())
	}
	// Staleness on a quiet KProber-II system stays near Tsleep + jitter.
	if p.MaxStaleness() > 1800*time.Microsecond {
		t.Errorf("quiet max staleness %v exceeds the paper's threshold", p.MaxStaleness())
	}
	if p.MaxStaleness() < DefaultProberSleep {
		t.Errorf("max staleness %v below Tsleep; reports cannot be fresher than the sleep period", p.MaxStaleness())
	}
}

func TestProberDetectsSecureEntry(t *testing.T) {
	r := newRig(t)
	var suspectAt, recoverAt simclock.Time
	var suspectCore int
	p, err := NewThreadProber(r.os, r.buffer, ProberConfig{
		Kind:      KProberII,
		Threshold: 1800 * time.Microsecond,
		OnSuspect: func(core int, at simclock.Time) {
			if suspectAt == 0 {
				suspectCore, suspectAt = core, at
			}
		},
		OnRecover: func(core int, at simclock.Time) {
			if recoverAt == 0 {
				recoverAt = at
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	const entry = 2 * time.Second
	const exit = entry + 50*time.Millisecond
	r.engine.After(entry, "steal", func() { r.plat.Core(3).SetWorld(hw.SecureWorld) })
	r.engine.After(exit, "release", func() { r.plat.Core(3).SetWorld(hw.NormalWorld) })
	r.engine.RunFor(3 * time.Second)

	if suspectAt == 0 {
		t.Fatal("prober never flagged the stolen core (false negative)")
	}
	if suspectCore != 3 {
		t.Errorf("flagged core %d, want 3", suspectCore)
	}
	// Detection delay Tns_delay = Tns_sched + Tns_threshold ≈ ≤ 2.2 ms.
	delay := suspectAt.Sub(simclock.Time(entry))
	if delay < time.Millisecond || delay > 3*time.Millisecond {
		t.Errorf("detection delay = %v, want ≈1.8–2.2ms", delay)
	}
	if recoverAt == 0 {
		t.Fatal("prober never saw the core return")
	}
	backDelay := recoverAt.Sub(simclock.Time(exit))
	if backDelay <= 0 || backDelay > 2*time.Millisecond {
		t.Errorf("recovery observation delay = %v", backDelay)
	}
	if p.Suspected(3) {
		t.Error("core 3 still suspected after recovery")
	}
}

func TestUserProberSlowerUnderLoad(t *testing.T) {
	// §III-B2: CFS-scheduled probing degrades when the cores are loaded;
	// KProber-II at FIFO max priority does not.
	measure := func(kind ProberKind) time.Duration {
		r := newRig(t)
		// Load every core with two CPU-bound threads.
		for c := 0; c < r.plat.NumCores(); c++ {
			for j := 0; j < 2; j++ {
				if _, err := r.os.Spawn("load", richos.PolicyCFS, 0, []int{c},
					richos.ProgramFunc(func(*richos.ThreadContext) richos.Step {
						return richos.Compute(time.Millisecond)
					})); err != nil {
					t.Fatal(err)
				}
			}
		}
		p, err := NewThreadProber(r.os, r.buffer, ProberConfig{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Start(); err != nil {
			t.Fatal(err)
		}
		r.engine.RunFor(4 * time.Second)
		return p.MaxStaleness()
	}
	user := measure(UserProber)
	kp2 := measure(KProberII)
	if kp2 > 2*time.Millisecond {
		t.Errorf("KProber-II staleness %v under load; RT priority should protect it", kp2)
	}
	if user < 3*kp2 {
		t.Errorf("user prober (%v) not clearly worse than KProber-II (%v) under load", user, kp2)
	}
}

func TestKProber1ReportsAtTickRate(t *testing.T) {
	r := newRig(t)
	kp1 := NewKProber1(r.os, r.buffer)
	if err := kp1.Install(true); err != nil {
		t.Fatal(err)
	}
	if !kp1.Installed() {
		t.Error("Installed() = false")
	}
	r.engine.RunFor(time.Second)
	// HZ = 250: every busy core reports ≈250 times per second.
	for c := 0; c < r.plat.NumCores(); c++ {
		if n := kp1.ReportCount(c); n < 200 || n > 300 {
			t.Errorf("core %d reported %d times, want ≈250", c, n)
		}
	}
	// The hijack left a real trace in kernel text (area 0).
	if len(r.image.Modified()) == 0 {
		t.Fatal("KProber-I left no memory trace")
	}
	// Double install is rejected.
	if err := kp1.Install(false); err == nil {
		t.Error("double install accepted")
	}
	// Uninstall restores the pristine vector.
	if err := kp1.Uninstall(); err != nil {
		t.Fatal(err)
	}
	if len(r.image.Modified()) != 0 {
		t.Error("uninstall left modified bytes")
	}
	if err := kp1.Uninstall(); err == nil {
		t.Error("double uninstall accepted")
	}
}

func TestSingleCoreProberMorePrecise(t *testing.T) {
	// §IV-B2: probing one fixed core is ≈4x more precise than probing all
	// cores.
	r := newRig(t)
	all, err := NewThreadProber(r.os, r.buffer, ProberConfig{Kind: KProberII})
	if err != nil {
		t.Fatal(err)
	}
	if err := all.Start(); err != nil {
		t.Fatal(err)
	}
	r2 := newRig(t)
	single, err := NewSingleCoreProber(r2.os, r2.buffer, 4, 0, ProberConfig{Kind: KProberII})
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Start(); err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(4 * time.Second)
	r2.engine.RunFor(4 * time.Second)
	ratio := float64(single.MaxStaleness()) / float64(all.MaxStaleness())
	if ratio > 0.5 || ratio < 0.1 {
		t.Errorf("single/all staleness ratio = %.2f (single %v, all %v); want ≈0.25",
			ratio, single.MaxStaleness(), all.MaxStaleness())
	}
}

func TestSingleCoreProberValidation(t *testing.T) {
	r := newRig(t)
	if _, err := NewSingleCoreProber(r.os, r.buffer, 2, 2, ProberConfig{Kind: KProberII}); err == nil {
		t.Error("same target and observer accepted")
	}
}

func TestProberDoubleStart(t *testing.T) {
	r := newRig(t)
	p, err := NewThreadProber(r.os, r.buffer, ProberConfig{Kind: KProberII})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		t.Error("double start accepted")
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []string{
		UserProber.String(), KProberII.String(), ProberKind(9).String(),
		EvaderAttacking.String(), EvaderHiding.String(), EvaderHidden.String(),
		EvaderReinstalling.String(), EvaderState(9).String(),
		EventSuspect.String(), EventHidden.String(), EventCoreBack.String(),
		EventReinstalled.String(), EventKind(9).String(),
		RootkitHidden.String(), RootkitActive.String(), RootkitState(9).String(),
	} {
		if s == "" {
			t.Error("empty stringer output")
		}
	}
}

func TestUserProberLeavesNoKernelTrace(t *testing.T) {
	// §III-B1: "each step of the prober requires no modification with OS
	// kernel privilege, it is stealthy". The user-level prober must leave
	// the static kernel byte-identical — unlike KProber-I.
	r := newRig(t)
	p, err := NewThreadProber(r.os, r.buffer, ProberConfig{Kind: UserProber})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(2 * time.Second)
	if mod := r.image.Modified(); len(mod) != 0 {
		t.Errorf("user prober modified %d kernel bytes", len(mod))
	}
}

func TestFloodValidation(t *testing.T) {
	r := newRig(t)
	if _, err := NewInterruptFlood(r.plat, 0, nil); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewInterruptFlood(r.plat, 1000, []int{99}); err == nil {
		t.Error("bad core accepted")
	}
	f, err := NewInterruptFlood(r.plat, 1000, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		t.Error("double start accepted")
	}
	r.engine.RunFor(100 * time.Millisecond)
	f.Stop()
	raised := f.Raised()
	if raised < 90 || raised > 110 {
		t.Errorf("raised %d interrupts in 100ms at 1kHz, want ≈100", raised)
	}
	r.engine.RunFor(100 * time.Millisecond)
	if f.Raised() > raised+1 {
		t.Errorf("flood kept raising after Stop: %d -> %d", raised, f.Raised())
	}
}
