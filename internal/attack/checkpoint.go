package attack

import (
	"fmt"
	"sort"

	"satin/internal/simclock"
)

// Checkpoint support. The fast evader owns four kinds of pending events —
// per-core detections, recovery observations, and the at-most-one hide or
// reinstall countdown — all tracked by handle so a checkpoint can claim
// them. The rootkit and the interrupt flood are simpler: the rootkit is pure
// state (its memory writes ride the copy-on-write page capture), and the
// flood owns exactly one pending tick.
//
// Naming note: the captured-state structs elsewhere are called XState, but
// RootkitState already names the hidden/active enum, so the attack package
// uses XCheckpoint instead.

// Claim owners for this package's pending events.
const (
	ClaimOwnerFastEvader = "attack.fastevader"
	ClaimOwnerFlood      = "attack.flood"
)

// FastEvaderCheckpoint is the fast evader's state at a claimable instant.
type FastEvaderCheckpoint struct {
	RNG   []byte      `json:"rng"`
	State EvaderState `json:"state"`
	// Suspected lists the cores currently flagged by a comparer, sorted. A
	// core whose suspicion was cleared is equivalent to one never suspected,
	// so cleared entries are not recorded.
	Suspected []int   `json:"suspected"`
	Events    []Event `json:"events"`
}

// CheckpointState captures the evader's state. At a claimable instant every
// core is back in the normal world, so the away-core map must be empty; a
// populated map means the caller did not step to a claimable instant.
func (f *FastEvader) CheckpointState() (FastEvaderCheckpoint, error) {
	if !f.started {
		return FastEvaderCheckpoint{}, fmt.Errorf("attack: checkpointing a fast evader that was never started")
	}
	if len(f.secureCores) != 0 {
		return FastEvaderCheckpoint{}, fmt.Errorf("attack: %d cores are away in the secure world at the checkpoint instant", len(f.secureCores))
	}
	rng, err := f.rng.MarshalState()
	if err != nil {
		return FastEvaderCheckpoint{}, fmt.Errorf("attack: marshaling fast evader rng: %w", err)
	}
	var suspected []int
	for id, s := range f.suspected {
		if s {
			suspected = append(suspected, id)
		}
	}
	sort.Ints(suspected)
	return FastEvaderCheckpoint{
		RNG:       rng,
		State:     f.state,
		Suspected: suspected,
		Events:    append([]Event(nil), f.events...),
	}, nil
}

// Claims reports the evader's pending events: per-core detections (in core
// order), recovery observations (in scheduling order), and the hide or
// reinstall countdown if one is running.
func (f *FastEvader) Claims() []simclock.Claim {
	var claims []simclock.Claim
	cores := make([]int, 0, len(f.pending))
	for id := range f.pending {
		cores = append(cores, id)
	}
	sort.Ints(cores)
	for _, id := range cores {
		if c, ok := f.pending[id].Claim(ClaimOwnerFastEvader, int64(id)); ok {
			claims = append(claims, c)
		}
	}
	for _, re := range f.recoverPending {
		if c, ok := re.h.Claim(ClaimOwnerFastEvader, int64(re.core)); ok {
			claims = append(claims, c)
		}
	}
	if c, ok := f.hidePending.Claim(ClaimOwnerFastEvader, -1); ok {
		claims = append(claims, c)
	}
	if c, ok := f.reinstallPending.Claim(ClaimOwnerFastEvader, -1); ok {
		claims = append(claims, c)
	}
	return claims
}

// RestoreState overwrites the evader's state with a captured one. A freshly
// started evader schedules nothing (Start only installs the rootkit and hooks
// the world-change observable), so there is nothing to cancel; the snapshot's
// pending events are re-armed afterwards via Rearm.
func (f *FastEvader) RestoreState(st FastEvaderCheckpoint) error {
	if !f.started {
		return fmt.Errorf("attack: restoring into a fast evader that was never started")
	}
	if len(f.pending) != 0 || f.hidePending != nil || f.reinstallPending != nil {
		return fmt.Errorf("attack: restoring into a fast evader with pending events")
	}
	if err := f.rng.RestoreState(st.RNG); err != nil {
		return fmt.Errorf("attack: restoring fast evader rng: %w", err)
	}
	f.state = st.State
	f.suspected = make(map[int]bool, len(st.Suspected))
	for _, id := range st.Suspected {
		f.suspected[id] = true
	}
	f.events = append(f.events[:0], st.Events...)
	return nil
}

// Rearm reschedules one claimed pending event at its recorded instant,
// rebuilding the callback the original scheduling site would have installed.
func (f *FastEvader) Rearm(claim simclock.Claim) error {
	switch claim.Name {
	case "fast-evader-detect":
		id := int(claim.Key)
		if id < 0 || id >= f.platform.NumCores() {
			return fmt.Errorf("attack: detect claim for unknown core %d", id)
		}
		if f.pending[id] != nil {
			return fmt.Errorf("attack: core %d already has a pending detection", id)
		}
		f.pending[id] = f.platform.Engine().At(claim.When, claim.Name, func() {
			delete(f.pending, id)
			f.detect(id)
		})
	case "fast-evader-recover":
		id := int(claim.Key)
		if id < 0 || id >= f.platform.NumCores() {
			return fmt.Errorf("attack: recover claim for unknown core %d", id)
		}
		f.armRecover(id, claim.When)
	case "fast-evader-hide":
		if f.hidePending != nil {
			return fmt.Errorf("attack: hide countdown already pending")
		}
		f.armHide(claim.When)
	case "fast-evader-reinstall":
		if f.reinstallPending != nil {
			return fmt.Errorf("attack: reinstall countdown already pending")
		}
		f.armReinstall(claim.When)
	default:
		return fmt.Errorf("attack: fast evader claim names unknown event %q", claim.Name)
	}
	return nil
}

// RootkitCheckpoint is the rootkit's state at a checkpoint. The attacking
// trace bytes themselves ride the memory capture.
type RootkitCheckpoint struct {
	State       RootkitState `json:"state"`
	Captures    int          `json:"captures"`
	Transitions []Transition `json:"transitions"`
}

// CheckpointState captures the rootkit's state.
func (r *Rootkit) CheckpointState() RootkitCheckpoint {
	return RootkitCheckpoint{
		State:       r.state,
		Captures:    r.captures,
		Transitions: append([]Transition(nil), r.transitions...),
	}
}

// RestoreState overwrites the rootkit's state with a captured one. The fresh
// scenario's own Install (run at construction) left a boot-instant
// transition; the snapshot's log replaces it wholesale.
func (r *Rootkit) RestoreState(st RootkitCheckpoint) {
	r.state = st.State
	r.captures = st.Captures
	r.transitions = append(r.transitions[:0], st.Transitions...)
}

// FloodCheckpoint is the interrupt flood's state at a checkpoint.
type FloodCheckpoint struct {
	Running bool `json:"running"`
	Raised  int  `json:"raised"`
}

// CheckpointState captures the flood's state.
func (f *InterruptFlood) CheckpointState() FloodCheckpoint {
	return FloodCheckpoint{Running: f.running, Raised: f.raised}
}

// Claims reports the flood's pending tick, if one is scheduled.
func (f *InterruptFlood) Claims() []simclock.Claim {
	if c, ok := f.tickPending.Claim(ClaimOwnerFlood, -1); ok {
		return []simclock.Claim{c}
	}
	return nil
}

// RestoreState overwrites the flood's state with a captured one, canceling
// the tick the fresh scenario's Start scheduled; the snapshot's tick is
// re-armed afterwards via RearmTick.
func (f *InterruptFlood) RestoreState(st FloodCheckpoint) {
	f.tickPending.Cancel()
	f.tickPending = nil
	f.running = st.Running
	f.raised = st.Raised
}

// RearmTick reschedules the claimed tick at its recorded instant.
func (f *InterruptFlood) RearmTick(claim simclock.Claim) error {
	if f.tickPending != nil {
		return fmt.Errorf("attack: flood tick already pending")
	}
	if claim.Name != "sgi-flood" {
		return fmt.Errorf("attack: flood claim names %q, want %q", claim.Name, "sgi-flood")
	}
	f.tickPending = f.engine.At(claim.When, claim.Name, f.tick)
	return nil
}
