package attack

import (
	"fmt"
	"time"

	"satin/internal/obs"
	"satin/internal/profile"
	"satin/internal/richos"
	"satin/internal/simclock"
	"satin/internal/trace"
)

// EvaderState is the TZ-Evader state machine of §III-C: attack while no
// introspection is suspected, hide when a core vanishes, reinstall when it
// returns.
type EvaderState int

// Evader states.
const (
	EvaderAttacking EvaderState = iota + 1
	EvaderHiding                // spending Tns_recover to remove the trace
	EvaderHidden
	EvaderReinstalling // spending the same cost to re-arm the attack
)

// String names the state.
func (s EvaderState) String() string {
	switch s {
	case EvaderAttacking:
		return "attacking"
	case EvaderHiding:
		return "hiding"
	case EvaderHidden:
		return "hidden"
	case EvaderReinstalling:
		return "reinstalling"
	default:
		return fmt.Sprintf("EvaderState(%d)", int(s))
	}
}

// EventKind classifies evader log entries.
type EventKind int

// Evader event kinds.
const (
	// EventSuspect: a comparer flagged a core as gone secure.
	EventSuspect EventKind = iota + 1
	// EventHidden: the trace restore completed.
	EventHidden
	// EventCoreBack: a suspected core reported again.
	EventCoreBack
	// EventReinstalled: the attack is active again.
	EventReinstalled

	// eventKindEnd is one past the last kind. Adding a kind without
	// extending TraceKind fails the exhaustiveness test that iterates up
	// to this sentinel.
	eventKindEnd
)

// TraceKind maps the evader event kind to its timeline representation.
// Every kind must map: the timeline is the record the experiments and
// exports audit, so a silently dropped kind would hide attacker activity.
// TestEventTraceExhaustive enforces this.
func (k EventKind) TraceKind() (trace.Kind, bool) {
	switch k {
	case EventSuspect:
		return trace.KindSuspect, true
	case EventHidden:
		return trace.KindHidden, true
	case EventCoreBack:
		return trace.KindCoreBack, true
	case EventReinstalled:
		return trace.KindReinstalled, true
	default:
		return "", false
	}
}

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventSuspect:
		return "suspect"
	case EventHidden:
		return "hidden"
	case EventCoreBack:
		return "core-back"
	case EventReinstalled:
		return "reinstalled"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry in the evader's log.
type Event struct {
	At   simclock.Time
	Kind EventKind
	// Core is the flagged core for EventSuspect/EventCoreBack, else -1.
	Core int
}

// Trace converts the log entry to its timeline event, or reports false for
// a kind with no timeline representation (there is none today; see
// EventKind.TraceKind).
func (e Event) Trace() (trace.Event, bool) {
	k, ok := e.Kind.TraceKind()
	if !ok {
		return trace.Event{}, false
	}
	return trace.Event{At: e.At.Duration(), Kind: k, Core: e.Core, Area: -1}, true
}

// evaderObs is the shared observability hookup of the two evaders: the bus
// the log streams to, plus per-kind counters.
type evaderObs struct {
	bus      *obs.Bus
	suspects *obs.Counter
	hides    *obs.Counter
	backs    *obs.Counter
	installs *obs.Counter
}

func newEvaderObs(bus *obs.Bus, reg *obs.Registry) evaderObs {
	return evaderObs{
		bus:      bus,
		suspects: reg.Counter("evader.suspects"),
		hides:    reg.Counter("evader.hides"),
		backs:    reg.Counter("evader.core_backs"),
		installs: reg.Counter("evader.reinstalls"),
	}
}

// record streams one logged event: count it and publish its timeline form.
func (o *evaderObs) record(e Event) {
	switch e.Kind {
	case EventSuspect:
		o.suspects.Inc()
	case EventHidden:
		o.hides.Inc()
	case EventCoreBack:
		o.backs.Inc()
	case EventReinstalled:
		o.installs.Inc()
	}
	if te, ok := e.Trace(); ok {
		o.bus.Publish(te)
	}
}

// ReporterKind selects where the evader's Time Reporters run.
type ReporterKind int

// Reporter deployments.
const (
	// ThreadReporters runs the reporter inside each per-core prober
	// thread (pure KProber-II, the default).
	ThreadReporters ReporterKind = iota + 1
	// TickReporters is the paper's evaluated configuration (§IV-A1):
	// "we implement Time Reporter with KProber-I and Time Comparer with
	// KProber-II". Reports come from the hijacked timer-interrupt path at
	// HZ, so the rich OS should be configured with HZ=1000 (the paper's
	// upper bound) to keep report staleness under the 1.8 ms threshold;
	// KProber-I's busy threads keep every core out of NO_HZ idle.
	TickReporters
)

// String names the kind.
func (k ReporterKind) String() string {
	switch k {
	case ThreadReporters:
		return "thread-reporters"
	case TickReporters:
		return "tick-reporters (KProber-I)"
	default:
		return fmt.Sprintf("ReporterKind(%d)", int(k))
	}
}

// EvaderConfig tunes the full-fidelity evader.
type EvaderConfig struct {
	// Prober configures the probing threads (kind, sleep, threshold).
	// OnSuspect/OnRecover must be nil: the evader wires its own reactions.
	Prober ProberConfig
	// Reporters selects the Time Reporter deployment; zero means
	// ThreadReporters.
	Reporters ReporterKind
	// Seed drives the evader's randomness (recovery-time draws).
	Seed uint64
}

// Evader is the full TZ-Evader: per-core prober threads (Figure 2) fused
// with the hide/reinstall reaction. The thread whose comparer first flags a
// core performs the recovery itself, spending Tns_recover of CPU on its own
// (normal-world) core before the trace write lands — so the recovery
// genuinely races the introspection in virtual time, and even stalls if the
// secure world takes the evader's core mid-recovery.
type Evader struct {
	os      *richos.OS
	rootkit *Rootkit
	buffer  *ReportBuffer
	cfg     EvaderConfig
	rng     *simclock.RNG
	kp1     *KProber1

	state     EvaderState
	suspected []bool
	// busyCore is the core whose evader thread is currently spending
	// Tns_recover on hide/reinstall work. Its own reports pause during the
	// computation, which would look to its peers exactly like a secure
	// entry — so the comparers exempt it (the attacker knows which of its
	// threads is busy). -1 when none.
	busyCore int
	// busyGraceUntil[c] extends the exemption after core c's cleaner
	// finishes: a spike-delayed buffer read (up to the visibility cap,
	// which is below the threshold) can replay the cleaner's silence just
	// after it ends, so observations of c are ignored until fresh reports
	// are guaranteed visible.
	busyGraceUntil []simclock.Time
	// clearedAt debounces re-suspicion: after a core is cleared, a
	// delayed-visibility read can still show staleness past the threshold
	// for up to the visibility-delay cap. A genuine re-entry needs at
	// least `threshold` to re-accumulate, so re-flagging sooner than that
	// is always an artifact.
	clearedAt []simclock.Time
	events    []Event
	obs       evaderObs
	// prof receives evader spans on the dedicated evader track (nil unless
	// SetProfiler was called). One track for all threads: hide and
	// reinstall may run on different cores, but the windows themselves are
	// globally sequential, so they nest there.
	prof *profile.Profiler

	maxStaleness time.Duration
}

// SetProfiler attaches the causal span profiler: every hide reaction opens
// an evasion-window span (closed when the trace is reinstalled) containing
// hide and reinstall child spans. Passing nil detaches.
func (e *Evader) SetProfiler(p *profile.Profiler) { e.prof = p }

// Observe wires the evader into the observability layer: every log entry
// is published to bus and counted in reg. Either argument may be nil.
func (e *Evader) Observe(bus *obs.Bus, reg *obs.Registry) {
	e.obs = newEvaderObs(bus, reg)
}

// NewEvader builds the evader. Call Start to install the rootkit and spawn
// the prober threads.
func NewEvader(os *richos.OS, rootkit *Rootkit, buffer *ReportBuffer, cfg EvaderConfig) (*Evader, error) {
	if cfg.Prober.OnSuspect != nil || cfg.Prober.OnRecover != nil {
		return nil, fmt.Errorf("attack: evader wires its own prober callbacks")
	}
	cfg.Prober = cfg.Prober.withDefaults()
	if cfg.Reporters == 0 {
		cfg.Reporters = ThreadReporters
	}
	if cfg.Reporters != ThreadReporters && cfg.Reporters != TickReporters {
		return nil, fmt.Errorf("attack: unknown reporter kind %v", cfg.Reporters)
	}
	if err := cfg.Prober.validate(); err != nil {
		return nil, err
	}
	if cfg.Prober.Threshold <= 0 {
		return nil, fmt.Errorf("attack: evader needs a positive probing threshold")
	}
	if len(cfg.Prober.Cores) == 0 {
		cfg.Prober.Cores = os.AllCores()
	}
	return &Evader{
		os:             os,
		rootkit:        rootkit,
		buffer:         buffer,
		cfg:            cfg,
		rng:            simclock.NewRNG(cfg.Seed, "attack.evader"),
		state:          EvaderAttacking,
		suspected:      make([]bool, os.Platform().NumCores()),
		clearedAt:      make([]simclock.Time, os.Platform().NumCores()),
		busyCore:       -1,
		busyGraceUntil: make([]simclock.Time, os.Platform().NumCores()),
	}, nil
}

// Start installs the rootkit and spawns one evader thread per probed core.
// With TickReporters it first installs KProber-I (the vector hijack plus
// its per-core busy threads), so reporting rides the timer interrupt.
func (e *Evader) Start() error {
	if err := e.rootkit.Install(e.os.ReadCounter()); err != nil {
		return err
	}
	if e.cfg.Reporters == TickReporters {
		e.kp1 = NewKProber1(e.os, e.buffer)
		if err := e.kp1.Install(true); err != nil {
			return err
		}
	}
	policy, prio := richos.PolicyCFS, 0
	if e.cfg.Prober.Kind == KProberII {
		policy, prio = richos.PolicyFIFO, richos.MaxRTPriority
	}
	for _, core := range e.cfg.Prober.Cores {
		core := core
		prog := &evaderProgram{e: e, myCore: core}
		if _, err := e.os.Spawn(fmt.Sprintf("evader-%d", core), policy, prio, []int{core}, prog); err != nil {
			return fmt.Errorf("attack: spawning evader thread on core %d: %w", core, err)
		}
	}
	return nil
}

// State reports the evader's current phase.
func (e *Evader) State() EvaderState { return e.state }

// KProber1 returns the tick reporter, or nil when ThreadReporters is used.
func (e *Evader) KProber1() *KProber1 { return e.kp1 }

// Events returns the evader's log.
func (e *Evader) Events() []Event { return e.events }

// MaxStaleness reports the largest staleness any comparer observed.
func (e *Evader) MaxStaleness() time.Duration { return e.maxStaleness }

// SuspectEvents returns only the EventSuspect entries — what the paper
// counts when it says KProber "faithfully reported all 190 rounds of
// introspection without any false negative or false positive" (§VI-B1).
func (e *Evader) SuspectEvents() []Event {
	var out []Event
	for _, ev := range e.events {
		if ev.Kind == EventSuspect {
			out = append(out, ev)
		}
	}
	return out
}

func (e *Evader) log(at simclock.Time, kind EventKind, core int) {
	ev := Event{At: at, Kind: kind, Core: core}
	e.events = append(e.events, ev)
	e.obs.record(ev)
}

// evaderPhase is the per-thread continuation.
type evaderPhase int

const (
	phaseProbe evaderPhase = iota
	phaseFinishHide
	phaseFinishReinstall
)

// evaderProgram is the per-core thread body.
type evaderProgram struct {
	e      *Evader
	myCore int
	phase  evaderPhase
}

// Next implements richos.Program.
func (p *evaderProgram) Next(tc *richos.ThreadContext) richos.Step {
	e := p.e
	now := tc.Now()
	switch p.phase {
	case phaseFinishHide:
		p.phase = phaseProbe
		e.busyCore = -1
		e.busyGraceUntil[p.myCore] = now.Add(e.cfg.Prober.Threshold)
		if err := e.rootkit.Hide(now); err != nil {
			panic(fmt.Sprintf("attack: hide failed: %v", err))
		}
		e.state = EvaderHidden
		e.prof.End(profile.SpanEvaderHide, p.myCore, now.Duration())
		e.log(now, EventHidden, -1)
	case phaseFinishReinstall:
		p.phase = phaseProbe
		e.busyCore = -1
		e.busyGraceUntil[p.myCore] = now.Add(e.cfg.Prober.Threshold)
		if err := e.rootkit.Install(now); err != nil {
			panic(fmt.Sprintf("attack: reinstall failed: %v", err))
		}
		e.state = EvaderAttacking
		e.prof.End(profile.SpanEvaderReinstall, p.myCore, now.Duration())
		e.prof.End(profile.SpanEvaderWindow, p.myCore, now.Duration())
		e.log(now, EventReinstalled, -1)
	}

	// Time Reporter (unless KProber-I's tick path reports for us).
	if e.cfg.Reporters == ThreadReporters {
		e.buffer.Write(p.myCore, now, now)
	}
	// Time Comparer.
	anySuspected := false
	for _, x := range e.cfg.Prober.Cores {
		if x == e.busyCore || now.Before(e.busyGraceUntil[x]) {
			continue // our own cleaner, silent (or just silent) by design
		}
		if x == p.myCore {
			if e.suspected[x] {
				// We are running on x, so x is demonstrably back.
				e.suspected[x] = false
				e.clearedAt[x] = now
				e.log(now, EventCoreBack, x)
			}
			continue
		}
		v, ok := e.buffer.Read(x, now)
		if !ok {
			continue
		}
		staleness := now.Sub(v)
		if staleness > e.maxStaleness {
			e.maxStaleness = staleness
		}
		if staleness > e.cfg.Prober.Threshold {
			// Debounce: a delayed-visibility read right after a clear can
			// replay the stale report; genuine re-entry needs at least
			// `threshold` to re-accumulate.
			if !e.suspected[x] && now.Sub(e.clearedAt[x]) > e.cfg.Prober.Threshold {
				e.suspected[x] = true
				e.log(now, EventSuspect, x)
			}
		} else if e.suspected[x] {
			e.suspected[x] = false
			e.clearedAt[x] = now
			e.log(now, EventCoreBack, x)
		}
		anySuspected = anySuspected || e.suspected[x]
	}
	for _, s := range e.suspected {
		anySuspected = anySuspected || s
	}

	// React.
	coreType := e.os.Platform().Core(tc.CoreID()).Type()
	switch e.state {
	case EvaderAttacking:
		if anySuspected {
			e.state = EvaderHiding
			e.busyCore = p.myCore
			p.phase = phaseFinishHide
			e.prof.Begin(profile.SpanEvaderWindow, p.myCore, -1, now.Duration(), "")
			e.prof.Begin(profile.SpanEvaderHide, p.myCore, -1, now.Duration(), "")
			return richos.Compute(e.os.Platform().Perf().RecoverTime(coreType, e.rootkit.TraceSize(), e.rng))
		}
	case EvaderHidden:
		if !anySuspected {
			e.state = EvaderReinstalling
			e.busyCore = p.myCore
			p.phase = phaseFinishReinstall
			e.prof.Begin(profile.SpanEvaderReinstall, p.myCore, -1, now.Duration(), "")
			return richos.Compute(e.os.Platform().Perf().RecoverTime(coreType, e.rootkit.TraceSize(), e.rng))
		}
	}
	return richos.Sleep(e.cfg.Prober.Sleep)
}
