package attack

import (
	"testing"
	"time"

	"satin/internal/hw"
	"satin/internal/mem"
	"satin/internal/richos"
	"satin/internal/simclock"
)

func TestRootkitInstallHideCycle(t *testing.T) {
	r := newRig(t)
	rk := NewRootkit(r.os, r.image)
	if rk.State() != RootkitHidden {
		t.Fatal("fresh rootkit should be hidden")
	}
	if err := rk.Install(10); err != nil {
		t.Fatal(err)
	}
	if rk.State() != RootkitActive {
		t.Error("state after install")
	}
	if err := rk.Install(11); err == nil {
		t.Error("double install accepted")
	}
	// The table entry really points at the malicious body.
	entry := r.image.Layout().SyscallEntryAddr(mem.GettidNR)
	got, err := r.image.Mem().Uint64(entry)
	if err != nil || got == r.image.BenignHandler(mem.GettidNR) {
		t.Errorf("table entry = %#x, %v; want malicious", got, err)
	}
	if len(r.image.Modified()) == 0 {
		t.Error("install left no trace")
	}
	if err := rk.Hide(20); err != nil {
		t.Fatal(err)
	}
	if rk.State() != RootkitHidden {
		t.Error("state after hide")
	}
	if err := rk.Hide(21); err == nil {
		t.Error("double hide accepted")
	}
	if len(r.image.Modified()) != 0 {
		t.Error("hide left residual modifications")
	}
}

func TestRootkitCapturesSyscalls(t *testing.T) {
	r := newRig(t)
	rk := NewRootkit(r.os, r.image)
	if err := rk.Install(0); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if _, err := r.os.Spawn("victim", richos.PolicyCFS, 0, []int{0},
		richos.ProgramFunc(func(tc *richos.ThreadContext) richos.Step {
			calls++
			if calls > 5 {
				return richos.Exit()
			}
			v, err := tc.Syscall(mem.GettidNR)
			if err != nil || v != uint64(mem.GettidNR) {
				t.Errorf("hijacked gettid = %d, %v (must stay transparent)", v, err)
			}
			return richos.Compute(time.Microsecond)
		})); err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(10 * time.Millisecond)
	if rk.Captures() != 5 {
		t.Errorf("Captures = %d, want 5", rk.Captures())
	}
}

func TestRootkitActiveBetween(t *testing.T) {
	r := newRig(t)
	rk := NewRootkit(r.os, r.image)
	mustInstall := func(at simclock.Time) {
		t.Helper()
		if err := rk.Install(at); err != nil {
			t.Fatal(err)
		}
	}
	mustHide := func(at simclock.Time) {
		t.Helper()
		if err := rk.Hide(at); err != nil {
			t.Fatal(err)
		}
	}
	mustInstall(100)
	mustHide(200)
	mustInstall(300)
	cases := []struct {
		from, to simclock.Time
		want     bool
	}{
		{0, 50, false},    // before first install
		{110, 190, true},  // fully inside first active span
		{110, 250, false}, // hide lands inside
		{210, 250, false}, // fully hidden
		{310, 400, true},  // active again, no later transitions
		{100, 200, false}, // boundary: hide at `to` counts as interruption
	}
	for i, tc := range cases {
		if got := rk.ActiveBetween(tc.from, tc.to); got != tc.want {
			t.Errorf("case %d: ActiveBetween(%v, %v) = %v, want %v", i, tc.from, tc.to, got, tc.want)
		}
	}
}

func TestEvaderConfigValidation(t *testing.T) {
	r := newRig(t)
	rk := NewRootkit(r.os, r.image)
	if _, err := NewEvader(r.os, rk, r.buffer, EvaderConfig{
		Prober: ProberConfig{Kind: KProberII, OnSuspect: func(int, simclock.Time) {}},
	}); err == nil {
		t.Error("external OnSuspect accepted")
	}
	if _, err := NewEvader(r.os, rk, r.buffer, EvaderConfig{
		Prober: ProberConfig{Kind: KProberII}, // no threshold
	}); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestEvaderHidesOnSecureEntryAndReinstalls(t *testing.T) {
	r := newRig(t)
	rk := NewRootkit(r.os, r.image)
	ev, err := NewEvader(r.os, rk, r.buffer, EvaderConfig{
		Prober: ProberConfig{Kind: KProberII, Threshold: 1800 * time.Microsecond},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Start(); err != nil {
		t.Fatal(err)
	}
	if rk.State() != RootkitActive {
		t.Fatal("rootkit not installed at start")
	}
	const entry = time.Second
	const exit = entry + 80*time.Millisecond // a full-kernel-check-sized residency
	r.engine.After(entry, "steal", func() { r.plat.Core(4).SetWorld(hw.SecureWorld) })
	r.engine.After(exit, "release", func() { r.plat.Core(4).SetWorld(hw.NormalWorld) })
	r.engine.RunFor(2 * time.Second)

	// Walk the event log: suspect → hidden → core-back → reinstalled.
	var suspectAt, hiddenAt, reinstalledAt simclock.Time
	for _, e := range ev.Events() {
		switch e.Kind {
		case EventSuspect:
			if suspectAt == 0 {
				suspectAt = e.At
			}
		case EventHidden:
			if hiddenAt == 0 {
				hiddenAt = e.At
			}
		case EventReinstalled:
			if reinstalledAt == 0 {
				reinstalledAt = e.At
			}
		}
	}
	if suspectAt == 0 || hiddenAt == 0 || reinstalledAt == 0 {
		t.Fatalf("incomplete cycle: %+v", ev.Events())
	}
	// Detection ≈ entry + threshold (±Tsleep); hide completes Tns_recover
	// (≈5–6.1ms) later; reinstall after the core returns.
	if d := suspectAt.Sub(simclock.Time(entry)); d < time.Millisecond || d > 3*time.Millisecond {
		t.Errorf("suspect delay = %v", d)
	}
	if d := hiddenAt.Sub(suspectAt); d < 4*time.Millisecond || d > 8*time.Millisecond {
		t.Errorf("hide took %v, want ≈Tns_recover (5–6.1ms)", d)
	}
	if reinstalledAt.Before(simclock.Time(exit)) {
		t.Error("reinstalled before the introspection core returned")
	}
	if d := reinstalledAt.Sub(simclock.Time(exit)); d > 10*time.Millisecond {
		t.Errorf("reinstall lagged %v after core return", d)
	}
	if ev.State() != EvaderAttacking {
		t.Errorf("final state = %v, want attacking", ev.State())
	}
	if rk.State() != RootkitActive {
		t.Error("rootkit not re-armed")
	}
	// The trace was absent during [hiddenAt, reinstall-start].
	if rk.ActiveBetween(hiddenAt.Add(time.Microsecond), reinstalledAt.Add(-time.Microsecond)) {
		t.Error("trace present while hidden")
	}
}

func TestEvaderBeatsSlowFullKernelScanLoses60msToucher(t *testing.T) {
	// Race sanity directly against wall-clock arithmetic: with detection
	// at ≈1.8ms and recovery done by ≈8ms, a checker touching the
	// malicious bytes at 65ms into its scan must see them clean, and a
	// checker touching them at 1ms must see them dirty.
	r := newRig(t)
	rk := NewRootkit(r.os, r.image)
	ev, err := NewEvader(r.os, rk, r.buffer, EvaderConfig{
		Prober: ProberConfig{Kind: KProberII, Threshold: 1800 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Start(); err != nil {
		t.Fatal(err)
	}
	const entry = time.Second
	r.engine.After(entry, "steal", func() { r.plat.Core(5).SetWorld(hw.SecureWorld) })
	r.engine.After(entry+80*time.Millisecond, "release", func() { r.plat.Core(5).SetWorld(hw.NormalWorld) })
	r.engine.RunFor(1200 * time.Millisecond)

	t0 := simclock.Time(entry)
	// Touched 1 ms in (small-area SATIN-style): trace still present.
	if !rk.ActiveBetween(t0, t0.Add(time.Millisecond)) {
		t.Error("trace already gone 1ms into the check; evader impossibly fast")
	}
	// Touched 65 ms in (full-kernel baseline): trace long gone.
	if rk.ActiveBetween(t0, t0.Add(65*time.Millisecond)) {
		t.Error("trace still present 65ms into the check; evader failed to hide")
	}
}

func TestFastEvaderMatchesThreadEvaderTimings(t *testing.T) {
	// Cross-validation: the O(1) FastEvader must produce the same cycle
	// (suspect → hidden → reinstalled) with delays statistically matching
	// the thread-level evader on the same scenario.
	run := func(fast bool) (suspect, hidden, reinstalled time.Duration) {
		r := newRig(t)
		rk := NewRootkit(r.os, r.image)
		var events func() []Event
		if fast {
			fe, err := NewFastEvader(r.plat, r.image, rk, DefaultProberSleep, 1800*time.Microsecond, 5)
			if err != nil {
				t.Fatal(err)
			}
			if err := fe.Start(); err != nil {
				t.Fatal(err)
			}
			events = fe.Events
		} else {
			ev, err := NewEvader(r.os, rk, r.buffer, EvaderConfig{
				Prober: ProberConfig{Kind: KProberII, Threshold: 1800 * time.Microsecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := ev.Start(); err != nil {
				t.Fatal(err)
			}
			events = ev.Events
		}
		const entry = time.Second
		r.engine.After(entry, "steal", func() { r.plat.Core(2).SetWorld(hw.SecureWorld) })
		r.engine.After(entry+50*time.Millisecond, "release", func() { r.plat.Core(2).SetWorld(hw.NormalWorld) })
		r.engine.RunFor(2 * time.Second)
		for _, e := range events() {
			switch e.Kind {
			case EventSuspect:
				if suspect == 0 {
					suspect = e.At.Sub(simclock.Time(entry))
				}
			case EventHidden:
				if hidden == 0 {
					hidden = e.At.Sub(simclock.Time(entry))
				}
			case EventReinstalled:
				if reinstalled == 0 {
					reinstalled = e.At.Sub(simclock.Time(entry))
				}
			}
		}
		return suspect, hidden, reinstalled
	}
	ts, th, tr := run(false)
	fs, fh, fr := run(true)
	if ts == 0 || th == 0 || tr == 0 || fs == 0 || fh == 0 || fr == 0 {
		t.Fatalf("incomplete cycles: thread(%v %v %v) fast(%v %v %v)", ts, th, tr, fs, fh, fr)
	}
	within := func(a, b, tol time.Duration) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= tol
	}
	if !within(ts, fs, time.Millisecond) {
		t.Errorf("suspect delay: thread %v vs fast %v", ts, fs)
	}
	if !within(th, fh, 2*time.Millisecond) {
		t.Errorf("hidden delay: thread %v vs fast %v", th, fh)
	}
	if !within(tr, fr, 10*time.Millisecond) {
		t.Errorf("reinstall delay: thread %v vs fast %v", tr, fr)
	}
}

func TestFastEvaderIgnoresBlinkEntries(t *testing.T) {
	// A secure residency far shorter than the threshold never trips the
	// prober: the reporter republishes before staleness crosses it.
	r := newRig(t)
	rk := NewRootkit(r.os, r.image)
	fe, err := NewFastEvader(r.plat, r.image, rk, DefaultProberSleep, 1800*time.Microsecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Start(); err != nil {
		t.Fatal(err)
	}
	r.engine.After(time.Second, "steal", func() { r.plat.Core(1).SetWorld(hw.SecureWorld) })
	r.engine.After(time.Second+300*time.Microsecond, "release", func() { r.plat.Core(1).SetWorld(hw.NormalWorld) })
	r.engine.RunFor(2 * time.Second)
	if n := len(fe.SuspectEvents()); n != 0 {
		t.Errorf("%d suspicions for a 0.3ms residency", n)
	}
	if rk.State() != RootkitActive {
		t.Error("rootkit should still be attacking")
	}
}

func TestFastEvaderValidation(t *testing.T) {
	r := newRig(t)
	rk := NewRootkit(r.os, r.image)
	if _, err := NewFastEvader(r.plat, r.image, rk, 0, time.Millisecond, 1); err == nil {
		t.Error("zero sleep accepted")
	}
	if _, err := NewFastEvader(r.plat, r.image, rk, time.Millisecond, 0, 1); err == nil {
		t.Error("zero threshold accepted")
	}
	fe, err := NewFastEvader(r.plat, r.image, rk, DefaultProberSleep, time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Start(); err != nil {
		t.Fatal(err)
	}
	if err := fe.Start(); err == nil {
		t.Error("double start accepted")
	}
}

func TestCalibrateThreshold(t *testing.T) {
	r := newRig(t)
	finish, err := CalibrateThreshold(r.os, r.buffer, KProberII, 3*time.Second, DefaultThresholdSafety)
	if err != nil {
		t.Fatal(err)
	}
	// Too early: must refuse.
	if _, err := finish(); err == nil {
		t.Error("calibration finished before the window elapsed")
	}
	r.engine.RunFor(3100 * time.Millisecond)
	threshold, err := finish()
	if err != nil {
		t.Fatal(err)
	}
	// A quiet KProber-II run observes maxima near Tsleep + jitter; with
	// the 1.15 safety factor the result lands in the paper's threshold
	// ballpark, well under the 1.8e-3 s used operationally.
	if threshold < 230*time.Microsecond || threshold > 2*time.Millisecond {
		t.Errorf("calibrated threshold = %v", threshold)
	}
	// Validation errors.
	if _, err := CalibrateThreshold(r.os, r.buffer, KProberII, 0, 1.1); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := CalibrateThreshold(r.os, r.buffer, KProberII, time.Second, 0.5); err == nil {
		t.Error("safety < 1 accepted")
	}
}

func TestThresholdModelTable2Shape(t *testing.T) {
	m := JunoThresholdModel(hw.JunoR1PerfModel())
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	g := simclock.NewRNG(1, "tbl2")
	periods := []time.Duration{8 * time.Second, 16 * time.Second, 30 * time.Second, 120 * time.Second, 300 * time.Second}
	var avgs []float64
	var maxAll time.Duration
	for _, p := range periods {
		rounds := m.RoundSet(p, 200, g)
		var sum time.Duration
		for _, v := range rounds {
			sum += v
			if v > maxAll {
				maxAll = v
			}
			if v < 100*time.Microsecond {
				t.Errorf("round threshold %v below plausible floor", v)
			}
		}
		avgs = append(avgs, (sum / time.Duration(len(rounds))).Seconds())
	}
	// Table II shape: averages increase with period.
	for i := 1; i < len(avgs); i++ {
		if avgs[i] <= avgs[i-1] {
			t.Errorf("average threshold not increasing: %v", avgs)
		}
	}
	// 8 s average ≈ 2.61e-4 s (±40%).
	if avgs[0] < 1.8e-4 || avgs[0] > 3.7e-4 {
		t.Errorf("8s average = %.3g, want ≈2.61e-4", avgs[0])
	}
	// 300 s average ≈ 6.61e-4 s (±40%).
	if avgs[4] < 4.0e-4 || avgs[4] > 9.5e-4 {
		t.Errorf("300s average = %.3g, want ≈6.61e-4", avgs[4])
	}
	// Extremes stay under ≈1.8e-3 s, the paper's operational threshold.
	if maxAll > 1800*time.Microsecond {
		t.Errorf("max threshold %v exceeds 1.8e-3 s", maxAll)
	}
}

func TestThresholdModelSingleCoreQuarter(t *testing.T) {
	m := JunoThresholdModel(hw.JunoR1PerfModel())
	s := m.SingleCoreModel()
	g := simclock.NewRNG(2, "single")
	var allSum, singleSum time.Duration
	const n = 300
	for i := 0; i < n; i++ {
		allSum += m.SampleRound(8*time.Second, g)
		singleSum += s.SampleRound(8*time.Second, g)
	}
	ratio := float64(singleSum) / float64(allSum)
	// §IV-B2: single-core threshold ≈ 1/4 of all-core.
	if ratio < 0.15 || ratio > 0.40 {
		t.Errorf("single/all ratio = %.2f, want ≈0.25", ratio)
	}
}

func TestThresholdModelCrossValidatesThreadProber(t *testing.T) {
	// The analytic model's 8s-round prediction must straddle what the
	// thread-level prober actually measures over an 8s quiet run.
	r := newRig(t)
	p, err := NewThreadProber(r.os, r.buffer, ProberConfig{Kind: KProberII})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(8 * time.Second)
	measured := p.MaxStaleness()

	m := JunoThresholdModel(r.plat.Perf())
	g := simclock.NewRNG(4, "xval")
	var sum time.Duration
	const n = 200
	for i := 0; i < n; i++ {
		sum += m.SampleRound(8*time.Second, g)
	}
	predicted := sum / n
	ratio := float64(measured) / float64(predicted)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("thread-level 8s max staleness %v vs model prediction %v (ratio %.2f)",
			measured, predicted, ratio)
	}
}

func TestThresholdModelRejectsBadPeriod(t *testing.T) {
	m := JunoThresholdModel(hw.JunoR1PerfModel())
	g := simclock.NewRNG(1, "bad")
	defer func() {
		if recover() == nil {
			t.Error("non-positive period did not panic")
		}
	}()
	m.SampleRound(0, g)
}

func TestHybridEvaderTickReportersDetectsSATINEntry(t *testing.T) {
	// The paper's evaluated configuration (§IV-A1): Time Reporter via
	// KProber-I (timer-interrupt hijack at HZ=1000) and Time Comparer via
	// KProber-II threads.
	e := simclock.NewEngine()
	p, err := hw.NewJunoR1(e)
	if err != nil {
		t.Fatal(err)
	}
	im, err := mem.NewJunoImage(42)
	if err != nil {
		t.Fatal(err)
	}
	osim, err := richos.NewOS(p, im, richos.Config{Seed: 7, HZ: 1000})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := NewReportBuffer(p.NumCores(), JunoCrossCoreNoise(), 9)
	if err != nil {
		t.Fatal(err)
	}
	rk := NewRootkit(osim, im)
	ev, err := NewEvader(osim, rk, buf, EvaderConfig{
		Prober:    ProberConfig{Kind: KProberII, Threshold: 1800 * time.Microsecond},
		Reporters: TickReporters,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Start(); err != nil {
		t.Fatal(err)
	}
	if ev.KProber1() == nil || !ev.KProber1().Installed() {
		t.Fatal("KProber-I not installed")
	}
	// Let staleness settle, then a check-sized secure residency.
	const entry = 2 * time.Second
	e.After(entry, "steal", func() { p.Core(4).SetWorld(hw.SecureWorld) })
	e.After(entry+50*time.Millisecond, "release", func() { p.Core(4).SetWorld(hw.NormalWorld) })
	e.RunFor(3 * time.Second)

	suspects := ev.SuspectEvents()
	if len(suspects) != 1 {
		t.Fatalf("suspects = %d, want exactly 1 (no FPs at HZ=1000)", len(suspects))
	}
	if suspects[0].Core != 4 {
		t.Errorf("flagged core %d, want 4", suspects[0].Core)
	}
	delay := suspects[0].At.Sub(simclock.Time(entry))
	// Tick reporters are coarser than thread reporters: the last report
	// before entry may already be up to one tick (1 ms at HZ=1000) old,
	// so staleness crosses the threshold anywhere in
	// [threshold - tick, threshold + comparer sleep + jitter].
	if delay < 500*time.Microsecond || delay > 4*time.Millisecond {
		t.Errorf("detection delay = %v", delay)
	}
	// The hide/reinstall cycle still completes.
	if rk.State() != RootkitActive {
		t.Errorf("rootkit state = %v after the cycle", rk.State())
	}
	// And the infrastructure left its tell-tale vector bytes.
	if len(im.Modified()) == 0 {
		t.Error("KProber-I left no trace (rootkit reinstalled + vector hijack expected)")
	}
}

func TestEvaderRejectsUnknownReporterKind(t *testing.T) {
	r := newRig(t)
	rk := NewRootkit(r.os, r.image)
	if _, err := NewEvader(r.os, rk, r.buffer, EvaderConfig{
		Prober:    ProberConfig{Kind: KProberII, Threshold: time.Millisecond},
		Reporters: ReporterKind(9),
	}); err == nil {
		t.Error("bad reporter kind accepted")
	}
}
