package attack

import (
	"testing"
	"time"

	"satin/internal/obs"
	"satin/internal/simclock"
	"satin/internal/trace"
)

// TestEventTraceExhaustive walks every EventKind up to the sentinel and
// demands a timeline mapping: an unmapped kind would silently vanish from
// the exported record of attacker activity.
func TestEventTraceExhaustive(t *testing.T) {
	seen := map[trace.Kind]EventKind{}
	for k := EventKind(1); k < eventKindEnd; k++ {
		tk, ok := k.TraceKind()
		if !ok {
			t.Errorf("EventKind %v (%d) has no trace mapping", k, int(k))
			continue
		}
		if prev, dup := seen[tk]; dup {
			t.Errorf("EventKind %v and %v both map to trace kind %q", prev, k, tk)
		}
		seen[tk] = k
	}
	if _, ok := EventKind(0).TraceKind(); ok {
		t.Error("zero EventKind claims a trace mapping")
	}
	if _, ok := eventKindEnd.TraceKind(); ok {
		t.Error("sentinel EventKind claims a trace mapping")
	}
}

func TestEventTraceFields(t *testing.T) {
	e := Event{At: simclock.Time(3 * time.Second), Kind: EventSuspect, Core: 4}
	te, ok := e.Trace()
	if !ok {
		t.Fatal("EventSuspect did not convert")
	}
	want := trace.Event{At: 3 * time.Second, Kind: trace.KindSuspect, Core: 4, Area: -1}
	if te != want {
		t.Fatalf("Trace() = %+v, want %+v", te, want)
	}
}

// TestEvaderObsRecords checks the shared evader instrumentation: counts by
// kind and one published event per log entry.
func TestEvaderObsRecords(t *testing.T) {
	bus := obs.NewBus()
	reg := obs.NewRegistry()
	var published []trace.Event
	bus.Subscribe(func(e trace.Event) { published = append(published, e) })
	eo := newEvaderObs(bus, reg)
	for _, k := range []EventKind{EventSuspect, EventSuspect, EventHidden, EventCoreBack, EventReinstalled} {
		eo.record(Event{At: 1, Kind: k, Core: -1})
	}
	for name, want := range map[string]int64{
		"evader.suspects":   2,
		"evader.hides":      1,
		"evader.core_backs": 1,
		"evader.reinstalls": 1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if len(published) != 5 {
		t.Fatalf("published %d events, want 5", len(published))
	}
}
