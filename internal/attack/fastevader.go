package attack

import (
	"fmt"
	"time"

	"satin/internal/hw"
	"satin/internal/mem"
	"satin/internal/obs"
	"satin/internal/profile"
	"satin/internal/simclock"
)

// FastEvader is the scalable TZ-Evader used by the long-horizon
// experiments: instead of simulating six 2e-4 s-period prober threads for
// simulated hours (hundreds of millions of events), it reacts to the same
// observable — a core leaving the normal world — through calibrated delay
// draws that reproduce the thread-level evader's behavior:
//
//	detection  = entry + Tns_threshold + (comparer phase − reporter phase)
//	trace gone = detection + Tns_recover (drawn per the cleaning core type)
//	reinstall  = first all-cores-back observation + Tns_recover
//
// The test suite cross-validates these delays against the thread-level
// Evader. FastEvader performs the *same memory writes* through the same
// Rootkit, so from the introspection's point of view the two are
// interchangeable; what FastEvader forgoes is the attacker's own CPU load
// on the rich OS (irrelevant to detection-rate experiments; the overhead
// experiment uses no evader).
type FastEvader struct {
	platform *hw.Platform
	image    *mem.Image
	rootkit  *Rootkit
	rng      *simclock.RNG

	sleep     time.Duration
	threshold time.Duration

	state       EvaderState
	secureCores map[int]simclock.Time // entry times of cores currently away
	suspected   map[int]bool
	events      []Event
	obs         evaderObs
	pending     map[int]*simclock.Handle // detection events per core
	// The remaining pending events, tracked so a checkpoint can claim them
	// (see checkpoint.go): recovery observations (several may be in flight
	// for the same core), and the at-most-one hide or reinstall countdown.
	recoverPending   []recoverEvent
	hidePending      *simclock.Handle
	reinstallPending *simclock.Handle
	started          bool
	// prof receives evader spans on the dedicated evader track (nil unless
	// SetProfiler was called; every emit is nil-safe).
	prof *profile.Profiler
}

// SetProfiler attaches the causal span profiler: every freeze reaction
// opens an evasion-window span (closed when the trace is reinstalled)
// containing hide and reinstall child spans. Passing nil detaches.
func (f *FastEvader) SetProfiler(p *profile.Profiler) { f.prof = p }

// Observe wires the evader into the observability layer: every log entry
// is published to bus and counted in reg. Either argument may be nil.
func (f *FastEvader) Observe(bus *obs.Bus, reg *obs.Registry) {
	f.obs = newEvaderObs(bus, reg)
}

// NewFastEvader builds the evader; Start installs the rootkit and begins
// watching. sleep and threshold mirror ProberConfig's Tsleep and
// Tns_threshold.
func NewFastEvader(p *hw.Platform, image *mem.Image, rootkit *Rootkit, sleep, threshold time.Duration, seed uint64) (*FastEvader, error) {
	if sleep <= 0 || threshold <= 0 {
		return nil, fmt.Errorf("attack: fast evader needs positive sleep (%v) and threshold (%v)", sleep, threshold)
	}
	return &FastEvader{
		platform:    p,
		image:       image,
		rootkit:     rootkit,
		rng:         simclock.NewRNG(seed, "attack.fastevader"),
		sleep:       sleep,
		threshold:   threshold,
		state:       EvaderAttacking,
		secureCores: make(map[int]simclock.Time),
		suspected:   make(map[int]bool),
		pending:     make(map[int]*simclock.Handle),
	}, nil
}

// Start installs the rootkit and hooks the core-availability observable.
func (f *FastEvader) Start() error {
	if f.started {
		return fmt.Errorf("attack: fast evader already started")
	}
	if err := f.rootkit.Install(f.platform.Engine().Now()); err != nil {
		return err
	}
	for _, core := range f.platform.Cores() {
		core.OnWorldChange(f.onWorldChange)
	}
	f.started = true
	return nil
}

// State reports the evader's phase.
func (f *FastEvader) State() EvaderState { return f.state }

// Events returns the evader's log.
func (f *FastEvader) Events() []Event { return f.events }

// SuspectEvents returns only the EventSuspect entries.
func (f *FastEvader) SuspectEvents() []Event {
	var out []Event
	for _, ev := range f.events {
		if ev.Kind == EventSuspect {
			out = append(out, ev)
		}
	}
	return out
}

func (f *FastEvader) log(at simclock.Time, kind EventKind, core int) {
	ev := Event{At: at, Kind: kind, Core: core}
	f.events = append(f.events, ev)
	f.obs.record(ev)
}

func (f *FastEvader) onWorldChange(c *hw.Core, _, newWorld hw.World) {
	engine := f.platform.Engine()
	now := engine.Now()
	if newWorld == hw.SecureWorld {
		f.secureCores[c.ID()] = now
		// The reporter on this core last published up to one sleep ago;
		// its staleness crosses the threshold at entry + threshold -
		// phase_reporter, and the first comparer to notice adds its own
		// phase.
		reporterPhase := time.Duration(f.rng.Float64() * float64(f.sleep))
		comparerPhase := time.Duration(f.rng.Float64() * float64(f.sleep))
		delay := f.threshold - reporterPhase + comparerPhase
		if delay < time.Microsecond {
			delay = time.Microsecond
		}
		id := c.ID()
		f.pending[id] = engine.After(delay, "fast-evader-detect", func() {
			delete(f.pending, id)
			f.detect(id)
		})
		return
	}
	// Core back in the normal world.
	id := c.ID()
	entered, ok := f.secureCores[id]
	if !ok {
		return
	}
	delete(f.secureCores, id)
	if h, ok := f.pending[id]; ok {
		// If the secure residency was too short for staleness to cross
		// the threshold, the detection never happens: the reporter's
		// next publication resets it first.
		if now.Sub(entered)+f.sleep < f.threshold {
			h.Cancel()
			delete(f.pending, id)
		}
		// Otherwise the already-scheduled detection stands (the comparer
		// sees the stale report before a fresh one becomes visible).
	}
	// The returning core's reporter publishes within one sleep; a comparer
	// then observes the recovery.
	delay := time.Duration(f.rng.Float64()*float64(f.sleep)) + time.Duration(f.rng.Float64()*float64(f.sleep))
	if delay < time.Microsecond {
		delay = time.Microsecond
	}
	f.armRecover(id, now.Add(delay))
}

// recoverEvent tracks one pending recovery observation for checkpointing.
type recoverEvent struct {
	core int
	h    *simclock.Handle
}

// armRecover schedules the comparer's recovery observation for core id and
// tracks its handle, pruning entries that already fired so the list stays
// bounded by the in-flight count.
func (f *FastEvader) armRecover(id int, at simclock.Time) {
	live := f.recoverPending[:0]
	for _, re := range f.recoverPending {
		if re.h.Live() {
			live = append(live, re)
		}
	}
	f.recoverPending = live
	h := f.platform.Engine().At(at, "fast-evader-recover", func() { f.recovered(id) })
	f.recoverPending = append(f.recoverPending, recoverEvent{core: id, h: h})
}

// detect is the comparer flagging core id.
func (f *FastEvader) detect(id int) {
	now := f.platform.Engine().Now()
	if f.suspected[id] {
		return
	}
	f.suspected[id] = true
	f.log(now, EventSuspect, id)
	if f.state != EvaderAttacking {
		return
	}
	f.beginHide()
}

// beginHide starts the Tns_recover countdown that ends with the trace
// restored.
func (f *FastEvader) beginHide() {
	f.state = EvaderHiding
	now := f.platform.Engine().Now().Duration()
	f.prof.Begin(profile.SpanEvaderWindow, -1, -1, now, "")
	f.prof.Begin(profile.SpanEvaderHide, -1, -1, now, "")
	recover := f.platform.Perf().RecoverTime(f.cleaningCoreType(), f.rootkit.TraceSize(), f.rng)
	f.armHide(f.platform.Engine().Now().Add(recover))
}

// armHide schedules the end of the hide countdown; split out so a checkpoint
// restore can re-arm it at the claimed instant.
func (f *FastEvader) armHide(at simclock.Time) {
	f.hidePending = f.platform.Engine().At(at, "fast-evader-hide", func() {
		f.hidePending = nil
		if err := f.rootkit.Hide(f.platform.Engine().Now()); err != nil {
			panic(fmt.Sprintf("attack: fast hide failed: %v", err))
		}
		f.state = EvaderHidden
		f.prof.End(profile.SpanEvaderHide, -1, f.platform.Engine().Now().Duration())
		f.log(f.platform.Engine().Now(), EventHidden, -1)
		// The introspection may already have finished (short rounds):
		// the comparers see every core alive, so re-arm right away.
		f.maybeReinstall()
	})
}

// maybeReinstall starts the reinstall countdown if the evader is hidden and
// every core looks alive.
func (f *FastEvader) maybeReinstall() {
	if f.state != EvaderHidden {
		return
	}
	for _, s := range f.suspected {
		if s {
			return
		}
	}
	if len(f.secureCores) > 0 {
		return
	}
	f.state = EvaderReinstalling
	f.prof.Begin(profile.SpanEvaderReinstall, -1, -1, f.platform.Engine().Now().Duration(), "")
	recover := f.platform.Perf().RecoverTime(f.cleaningCoreType(), f.rootkit.TraceSize(), f.rng)
	f.armReinstall(f.platform.Engine().Now().Add(recover))
}

// armReinstall schedules the end of the reinstall countdown; split out so a
// checkpoint restore can re-arm it at the claimed instant.
func (f *FastEvader) armReinstall(at simclock.Time) {
	f.reinstallPending = f.platform.Engine().At(at, "fast-evader-reinstall", func() {
		f.reinstallPending = nil
		if f.state != EvaderReinstalling {
			return
		}
		if err := f.rootkit.Install(f.platform.Engine().Now()); err != nil {
			panic(fmt.Sprintf("attack: fast reinstall failed: %v", err))
		}
		now := f.platform.Engine().Now().Duration()
		f.prof.End(profile.SpanEvaderReinstall, -1, now)
		f.prof.End(profile.SpanEvaderWindow, -1, now)
		f.log(f.platform.Engine().Now(), EventReinstalled, -1)
		// A fresh suspicion may have arrived mid-reinstall: hide again
		// immediately rather than attacking into a running check.
		for _, s := range f.suspected {
			if s {
				f.beginHide()
				return
			}
		}
		f.state = EvaderAttacking
	})
}

// recovered is the comparer seeing core id report again.
func (f *FastEvader) recovered(id int) {
	now := f.platform.Engine().Now()
	if !f.suspected[id] {
		return
	}
	f.suspected[id] = false
	f.log(now, EventCoreBack, id)
	f.maybeReinstall()
}

// cleaningCoreType picks the core the detecting comparer happens to run on:
// uniformly among the cores still in the normal world.
func (f *FastEvader) cleaningCoreType() hw.CoreType {
	var candidates []hw.CoreType
	for _, c := range f.platform.Cores() {
		if _, away := f.secureCores[c.ID()]; !away {
			candidates = append(candidates, c.Type())
		}
	}
	if len(candidates) == 0 {
		// Every core taken (the full-freeze defenses); cleaning will be
		// arbitrarily late anyway — draw the slow type.
		return hw.CortexA53
	}
	return candidates[f.rng.IntN(len(candidates))]
}
