// Package attack implements the paper's normal-world adversary: the
// TZ-Evader evasion attack (§III) and the probing machinery beneath it.
//
// The attack never reads secure-world state. Its only sensor is the CPU
// core availability side channel of §III-B1: a Time Reporter pinned to each
// core publishes the shared counter into a report buffer, and a Time
// Comparer flags a core whose newest visible report is older than a
// calibrated threshold — which happens exactly when the secure world has
// taken that core. Three prober implementations are provided:
//
//   - the user-level multi-thread prober (CFS threads, §III-B1);
//   - KProber-I, reporting from a hijacked timer-interrupt vector
//     (§III-C1) — accurate, but its hijack leaves bytes in kernel text
//     that introspection can find;
//   - KProber-II, FIFO threads at the maximum real-time priority
//     (§III-C2) — the paper's preferred configuration.
//
// On top of the probers, Evader couples a persistent GETTID rootkit with
// hide/reinstall logic racing the introspection (Figure 3), and FastEvader
// provides a calibrated O(1)-per-event emulation for long experiments.
package attack

import (
	"fmt"
	"time"

	"satin/internal/simclock"
)

// reportHistory is how many writes per slot the buffer retains. Visibility
// delays reach ~1.3 ms and reports arrive every ~200 µs, so 16 entries are
// ample to resolve any delayed read.
const reportHistory = 16

// report is one Time Reporter publication.
type report struct {
	value   simclock.Time // the counter value the reporter read
	written simclock.Time // when the write landed in the buffer
}

// ReportBuffer is the shared memory the prober threads communicate through:
// one slot per core, each holding the core's most recent counter
// publications. Reads model cross-core visibility: a reader sees the newest
// write that is at least its drawn visibility delay old, reproducing the
// "cross-core reading delay" the paper identifies as the source of large
// threshold outliers (§IV-B2).
type ReportBuffer struct {
	slots [][]report
	noise CrossCoreNoise
	rng   *simclock.RNG
}

// NewReportBuffer creates a buffer with one slot per core.
func NewReportBuffer(numCores int, noise CrossCoreNoise, seed uint64) (*ReportBuffer, error) {
	if numCores <= 0 {
		return nil, fmt.Errorf("attack: report buffer needs at least one slot, got %d", numCores)
	}
	if err := noise.Validate(); err != nil {
		return nil, err
	}
	b := &ReportBuffer{
		slots: make([][]report, numCores),
		noise: noise,
		rng:   simclock.NewRNG(seed, "attack.buffer"),
	}
	for i := range b.slots {
		b.slots[i] = make([]report, 0, reportHistory)
	}
	return b, nil
}

// NumSlots reports the number of per-core slots.
func (b *ReportBuffer) NumSlots() int { return len(b.slots) }

// Write publishes value into core's slot at instant now.
func (b *ReportBuffer) Write(core int, value, now simclock.Time) {
	s := b.slots[core]
	if len(s) == reportHistory {
		copy(s, s[1:])
		s = s[:reportHistory-1]
	}
	b.slots[core] = append(s, report{value: value, written: now})
}

// Read returns the newest report value of core visible to a reader at
// instant now, modeling the cross-core visibility delay. The second result
// is false if nothing is visible yet (no report old enough).
func (b *ReportBuffer) Read(core int, now simclock.Time) (simclock.Time, bool) {
	delay := b.noise.DrawDelay(b.rng)
	cutoff := now.Add(-delay)
	s := b.slots[core]
	for i := len(s) - 1; i >= 0; i-- {
		if !s[i].written.After(cutoff) {
			return s[i].value, true
		}
	}
	return 0, false
}

// CrossCoreNoise models the latency before one core's buffer write becomes
// visible to a reader on another core. Most reads see near-current data
// (coherent cache hit); rare reads suffer a large delay — the paper
// observed outliers up to 1.3e-3 s that dominate the threshold maxima of
// Table II.
type CrossCoreNoise struct {
	// Base is the common-case visibility jitter.
	Base simclock.Dist
	// SpikeProb is the per-read probability of a delay spike.
	SpikeProb float64
	// Spike is the extra delay of a spike, drawn exponentially with mean
	// SpikeMean and capped at SpikeCap.
	SpikeMean time.Duration
	SpikeCap  time.Duration
}

// Validate checks the model.
func (n CrossCoreNoise) Validate() error {
	if err := n.Base.Validate(); err != nil {
		return fmt.Errorf("attack: cross-core base: %w", err)
	}
	if n.SpikeProb < 0 || n.SpikeProb > 1 {
		return fmt.Errorf("attack: spike probability %v outside [0, 1]", n.SpikeProb)
	}
	if n.SpikeProb > 0 && (n.SpikeMean <= 0 || n.SpikeCap < n.SpikeMean/4) {
		return fmt.Errorf("attack: spike shape invalid (mean %v, cap %v)", n.SpikeMean, n.SpikeCap)
	}
	return nil
}

// DrawDelay samples one visibility delay.
func (n CrossCoreNoise) DrawDelay(g *simclock.RNG) time.Duration {
	d := n.Base.Draw(g)
	if n.SpikeProb > 0 && g.Bool(n.SpikeProb) {
		spike := time.Duration(g.ExpFloat64() * float64(n.SpikeMean))
		if spike > n.SpikeCap {
			spike = n.SpikeCap
		}
		d += spike
	}
	return d
}

// JunoCrossCoreNoise returns the visibility model calibrated so the
// thread-level prober reproduces the paper's Table II thresholds: a
// near-zero common case and spikes whose observed extremes reach
// ≈1.3e-3 s, arriving rarely enough that an 8 s probing round usually sees
// none while a 300 s round sees several (§IV-B2).
func JunoCrossCoreNoise() CrossCoreNoise {
	// Calibration: six comparers each read five peer slots every 2e-4 s
	// ⇒ ~150,000 reads/s. A spike probability of 1.8e-7 per read gives
	// ~0.027 spikes per probing second: an 8 s round usually sees none
	// (average threshold stays near Tsleep + jitter ≈ 2.6e-4 s) while a
	// 300 s round accumulates ~8, pushing its average toward the paper's
	// 6.61e-4 s with extremes near Tsleep + cap ≈ 1.5e-3 s.
	return CrossCoreNoise{
		Base:      simclock.Seconds(0, 1.0e-6, 4.0e-6),
		SpikeProb: 1.8e-7,
		SpikeMean: 165 * time.Microsecond,
		SpikeCap:  1300 * time.Microsecond,
	}
}
