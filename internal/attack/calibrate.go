package attack

import (
	"fmt"
	"time"

	"satin/internal/richos"
)

// DefaultThresholdSafety is the multiplier applied to the largest observed
// staleness when deriving a working threshold. The paper's detection
// experiment uses 1.8e-3 s against observed maxima near 1.77e-3 s — a thin
// margin; the calibrator defaults slightly wider.
const DefaultThresholdSafety = 1.15

// CalibrateThreshold implements the attacker's §VII-B procedure for
// learning Tns_threshold on a device it controls: run the probers for
// `observe` of quiet time (no secure-world activity), take the largest
// staleness ever observed, and pad it with the safety factor. The returned
// closure must be invoked only after the observation window has elapsed on
// the engine; it finalizes and returns the threshold.
//
// Choosing the threshold this way trades detection latency against false
// positives: below the observed maximum the prober would flag phantom
// introspections; far above it, Tns_delay grows and the evader loses races
// it could have won (Equation 1).
func CalibrateThreshold(os *richos.OS, buffer *ReportBuffer, kind ProberKind, observe time.Duration, safety float64) (func() (time.Duration, error), error) {
	if observe <= 0 {
		return nil, fmt.Errorf("attack: observation window %v must be positive", observe)
	}
	if safety < 1 {
		return nil, fmt.Errorf("attack: safety factor %v must be >= 1", safety)
	}
	prober, err := NewThreadProber(os, buffer, ProberConfig{Kind: kind})
	if err != nil {
		return nil, err
	}
	if err := prober.Start(); err != nil {
		return nil, err
	}
	deadline := os.ReadCounter().Add(observe)
	return func() (time.Duration, error) {
		if os.ReadCounter().Before(deadline) {
			return 0, fmt.Errorf("attack: calibration window not yet elapsed (now %v, deadline %v)", os.ReadCounter(), deadline)
		}
		if prober.Observations() == 0 {
			return 0, fmt.Errorf("attack: no observations during calibration")
		}
		return time.Duration(float64(prober.MaxStaleness()) * safety), nil
	}, nil
}
