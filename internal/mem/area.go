package mem

import (
	"fmt"
)

// Area is one introspection unit: a contiguous run of whole sections.
// SATIN's integrity-checking module divides the kernel into areas small
// enough that one area is always fully checked before the evader can react
// (Eq. 2 of the paper).
type Area struct {
	Index    int
	Addr     uint64
	Size     int
	Sections []Section
}

// End reports the first address past the area.
func (a Area) End() uint64 { return a.Addr + uint64(a.Size) }

// Contains reports whether addr falls inside the area.
func (a Area) Contains(addr uint64) bool { return addr >= a.Addr && addr < a.End() }

// String renders like "area14[0xffff...,624008B]".
func (a Area) String() string {
	return fmt.Sprintf("area%d[%#x,%dB]", a.Index, a.Addr, a.Size)
}

// BuildAreas groups the layout's sections into areas. groups[i] lists the
// section indices of area i; the concatenation of all groups must be exactly
// 0..len(Sections)-1 in order, so areas tile the kernel with whole sections
// and no gaps.
func BuildAreas(l Layout, groups [][]int) ([]Area, error) {
	areas := make([]Area, 0, len(groups))
	next := 0
	for i, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("mem: area %d has no sections", i)
		}
		a := Area{Index: i}
		for _, si := range g {
			if si != next {
				return nil, fmt.Errorf("mem: area %d references section %d, want %d (groups must tile in order)", i, si, next)
			}
			s := l.Sections[si]
			if len(a.Sections) == 0 {
				a.Addr = s.Addr
			}
			a.Sections = append(a.Sections, s)
			a.Size += s.Size
			next++
		}
		areas = append(areas, a)
	}
	if next != len(l.Sections) {
		return nil, fmt.Errorf("mem: groups cover %d sections, layout has %d", next, len(l.Sections))
	}
	return areas, nil
}

// PartitionSections greedily groups sections into areas of at most maxSize
// bytes each, never splitting a section. It returns the groups in the format
// BuildAreas accepts, or an error if any single section exceeds maxSize.
// This is the generic divide-and-conquer partitioner; the Juno reproduction
// ships the curated JunoAreaGroups to match the paper's reported 19 areas.
func PartitionSections(sections []Section, maxSize int) ([][]int, error) {
	if maxSize <= 0 {
		return nil, fmt.Errorf("mem: maxSize %d must be positive", maxSize)
	}
	var groups [][]int
	var cur []int
	curSize := 0
	for i, s := range sections {
		if s.Size > maxSize {
			return nil, fmt.Errorf("mem: section %q (%d bytes) exceeds area limit %d", s.Name, s.Size, maxSize)
		}
		if curSize+s.Size > maxSize {
			groups = append(groups, cur)
			cur = nil
			curSize = 0
		}
		cur = append(cur, i)
		curSize += s.Size
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups, nil
}

// AreaContaining returns the index of the area holding addr.
func AreaContaining(areas []Area, addr uint64) (int, error) {
	for _, a := range areas {
		if a.Contains(addr) {
			return a.Index, nil
		}
	}
	return 0, fmt.Errorf("mem: address %#x not in any area", addr)
}

// MaxAreaSize returns the size of the largest area.
func MaxAreaSize(areas []Area) int {
	max := 0
	for _, a := range areas {
		if a.Size > max {
			max = a.Size
		}
	}
	return max
}

// MinAreaSize returns the size of the smallest area, or 0 for no areas.
func MinAreaSize(areas []Area) int {
	if len(areas) == 0 {
		return 0
	}
	min := areas[0].Size
	for _, a := range areas[1:] {
		if a.Size < min {
			min = a.Size
		}
	}
	return min
}
