package mem

import (
	"encoding/binary"
	"fmt"
)

// ModuleArenaSize is the size of the loadable-module arena mapped after the
// static kernel. Attack code (the rootkit body, KProber threads) lives here:
// like real LKM memory it is *not* part of the static region the integrity
// checkers hash, which is why the paper's sample attack is only detectable
// through the 8 bytes it flips inside the syscall table (§IV-A2).
const ModuleArenaSize = 2 << 20

// Image is a booted kernel image: live memory, its layout, and a pristine
// copy of the static region captured at boot (the trusted state the
// secure world hashes during the trusted boot, §V-B).
type Image struct {
	mem        *Memory
	layout     Layout
	moduleBase uint64
	pristine   []byte
}

// NewImage boots an image with the given layout, filling the static kernel
// with deterministic pseudo-random content derived from seed, installing a
// plausible syscall table and exception vector table, and capturing the
// pristine copy.
func NewImage(layout Layout, seed uint64) (*Image, error) {
	if err := layout.Validate(); err != nil {
		return nil, fmt.Errorf("mem: invalid layout: %w", err)
	}
	total := layout.TotalSize()
	m, err := NewMemory(layout.Base, total+ModuleArenaSize)
	if err != nil {
		return nil, err
	}
	im := &Image{
		mem:        m,
		layout:     layout,
		moduleBase: layout.Base + uint64(total),
	}
	im.fill(seed)
	im.pristine = make([]byte, total)
	if err := m.Read(layout.Base, im.pristine); err != nil {
		return nil, err
	}
	return im, nil
}

// NewJunoImage boots the paper's synthetic lsk-4.4-armlt kernel.
func NewJunoImage(seed uint64) (*Image, error) {
	return NewImage(JunoKernelLayout(), seed)
}

// fill populates the static kernel with deterministic content.
func (im *Image) fill(seed uint64) {
	// splitmix64: tiny, deterministic, and good enough to make every byte
	// of "kernel text" unique so hash checks are meaningful.
	state := seed
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	data := im.mem.data[:im.layout.TotalSize()]
	i := 0
	for ; i+8 <= len(data); i += 8 {
		binary.LittleEndian.PutUint64(data[i:], next())
	}
	if i < len(data) {
		v := next()
		for j := 0; i+j < len(data); j++ {
			data[i+j] = byte(v >> (8 * j))
		}
	}
	// Install the syscall table: entry nr points at a distinct "handler"
	// in kernel text.
	for nr := 0; nr < im.layout.SyscallCount; nr++ {
		addr := im.layout.SyscallEntryAddr(nr)
		if err := im.mem.PutUint64(addr, im.BenignHandler(nr)); err != nil {
			panic(err) // unreachable: layout validated
		}
	}
	// Install the exception vector table: each vector begins with the
	// address of its handler (standing in for the branch instruction a
	// real vector holds).
	for v := 0; v < 16; v++ {
		vecAddr := im.layout.VBAR + uint64(v)*VectorSize
		handler := im.layout.Base + 0x2000 + uint64(v)*0x200
		if err := im.mem.PutUint64(vecAddr, handler); err != nil {
			panic(err) // unreachable: layout validated
		}
	}
	// Zero the page-permission table: every page boots writable (no
	// synchronous protections until a guard installs them).
	if im.layout.PTBase != 0 {
		zeros := make([]byte, im.layout.PageCount())
		if err := im.mem.Write(im.layout.PTBase, zeros); err != nil {
			panic(err) // unreachable: layout validated
		}
	}
}

// RecapturePristine refreshes the trusted (golden) copy from live memory.
// The trusted-boot sequence calls it after applying boot-time protections
// (e.g. a synchronous guard setting PTE bits), so the authorized hashes
// describe the protected state rather than the raw image.
func (im *Image) RecapturePristine() error {
	return im.mem.Read(im.layout.Base, im.pristine)
}

// BenignHandler returns the legitimate handler address for syscall nr, the
// value the pristine table holds.
func (im *Image) BenignHandler(nr int) uint64 {
	return im.layout.Base + 0x10000 + uint64(nr)*0x100
}

// Mem exposes the live memory.
func (im *Image) Mem() *Memory { return im.mem }

// Layout exposes the kernel layout.
func (im *Image) Layout() Layout { return im.layout }

// ModuleBase reports the start of the loadable-module arena.
func (im *Image) ModuleBase() uint64 { return im.moduleBase }

// Pristine returns a copy of the n pristine (boot-time) bytes at addr, which
// must lie in the static kernel.
func (im *Image) Pristine(addr uint64, n int) ([]byte, error) {
	if addr < im.layout.Base || addr+uint64(n) > im.layout.End() {
		return nil, fmt.Errorf("mem: pristine range [%#x,+%d) outside static kernel", addr, n)
	}
	off := int(addr - im.layout.Base)
	out := make([]byte, n)
	copy(out, im.pristine[off:off+n])
	return out, nil
}

// PristineView returns a read-only alias of the pristine bytes at addr.
// Callers must not mutate it. It exists so boot-time golden-hash computation
// does not copy megabytes.
func (im *Image) PristineView(addr uint64, n int) ([]byte, error) {
	if addr < im.layout.Base || addr+uint64(n) > im.layout.End() {
		return nil, fmt.Errorf("mem: pristine range [%#x,+%d) outside static kernel", addr, n)
	}
	off := int(addr - im.layout.Base)
	return im.pristine[off : off+n : off+n], nil
}

// Modified returns the addresses (ascending) of static-kernel bytes whose
// live value differs from the pristine copy. Diagnostics and tests use it;
// the introspection mechanisms do not (they only see hashes, like the real
// system).
func (im *Image) Modified() []uint64 {
	var out []uint64
	live := im.mem.data[:im.layout.TotalSize()]
	for i := range live {
		if live[i] != im.pristine[i] {
			out = append(out, im.layout.Base+uint64(i))
		}
	}
	return out
}

// RestoreStatic rewrites the n bytes at addr with their pristine content —
// the model of the evader "recovering the malicious byte as benign".
func (im *Image) RestoreStatic(addr uint64, n int) error {
	p, err := im.Pristine(addr, n)
	if err != nil {
		return err
	}
	return im.mem.Write(addr, p)
}
