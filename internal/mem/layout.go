package mem

import (
	"fmt"
)

// Section is one System.map-derived region of the static kernel: a named,
// contiguous address range. The paper's integrity-checking module guarantees
// "each section of the normal world OS's System.map only belongs to one area
// for introspection" (§VI-A2); partitioning in this package preserves that
// invariant.
type Section struct {
	Name string
	Addr uint64
	Size int
}

// End reports the first address past the section.
func (s Section) End() uint64 { return s.Addr + uint64(s.Size) }

// Layout describes the static kernel image: its base address, its sections
// in address order, and the locations of the two structures the paper's
// attacks manipulate (the syscall table entry the rootkit hijacks and the
// IRQ exception vector KProber-I rewrites).
type Layout struct {
	// Base is the kernel's load address.
	Base uint64
	// Sections lists the System.map sections in ascending address order,
	// contiguous from Base.
	Sections []Section

	// SyscallTableAddr is the address of sys_call_table.
	SyscallTableAddr uint64
	// SyscallCount is the number of 8-byte entries in the table.
	SyscallCount int

	// VBAR is the value of VBAR_EL1: the base of the AArch64 exception
	// vector table.
	VBAR uint64

	// PTBase is the address of the kernel's page-permission table (one
	// byte per static-kernel page; see mem.MMU). Zero means the layout
	// models no page table. Like swapper_pg_dir, it lives inside kernel
	// .data — so tampering with it is visible to area introspection.
	PTBase uint64
}

// The AArch64 exception vector table layout: 16 vectors of 128 bytes. The
// IRQ vector for "current EL with SPx" — the one the rich OS timer interrupt
// takes and KProber-I hijacks — sits at offset 0x280 (§IV-A1).
const (
	VectorSize      = 0x80
	IRQVectorOffset = 0x280
)

// GettidNR is the arm64 syscall number of gettid, the call whose table entry
// the paper's sample rootkit hijacks (§IV-A2).
const GettidNR = 178

// SyscallEntrySize is the width of one syscall-table entry: a 64-bit
// function pointer. "this attack modifies one 8-bytes address of the system
// call table" (§IV-A2).
const SyscallEntrySize = 8

// TotalSize reports the static kernel size in bytes.
func (l Layout) TotalSize() int {
	n := 0
	for _, s := range l.Sections {
		n += s.Size
	}
	return n
}

// End reports the first address past the kernel image.
func (l Layout) End() uint64 { return l.Base + uint64(l.TotalSize()) }

// SyscallEntryAddr returns the address of the table entry for syscall nr.
func (l Layout) SyscallEntryAddr(nr int) uint64 {
	return l.SyscallTableAddr + uint64(nr)*SyscallEntrySize
}

// IRQVectorAddr returns the address of the IRQ exception vector entry.
func (l Layout) IRQVectorAddr() uint64 { return l.VBAR + IRQVectorOffset }

// Section returns the section named name.
func (l Layout) Section(name string) (Section, error) {
	for _, s := range l.Sections {
		if s.Name == name {
			return s, nil
		}
	}
	return Section{}, fmt.Errorf("mem: no section %q", name)
}

// SectionContaining returns the section holding addr.
func (l Layout) SectionContaining(addr uint64) (Section, error) {
	for _, s := range l.Sections {
		if addr >= s.Addr && addr < s.End() {
			return s, nil
		}
	}
	return Section{}, fmt.Errorf("mem: address %#x not in any section", addr)
}

// Validate checks that sections are contiguous from Base, positively sized,
// uniquely named, and that the special structures fall inside the image.
func (l Layout) Validate() error {
	if len(l.Sections) == 0 {
		return fmt.Errorf("mem: layout has no sections")
	}
	names := make(map[string]bool, len(l.Sections))
	next := l.Base
	for i, s := range l.Sections {
		if s.Size <= 0 {
			return fmt.Errorf("mem: section %q has size %d", s.Name, s.Size)
		}
		if s.Addr != next {
			return fmt.Errorf("mem: section %d (%q) at %#x, want contiguous %#x", i, s.Name, s.Addr, next)
		}
		if names[s.Name] {
			return fmt.Errorf("mem: duplicate section name %q", s.Name)
		}
		names[s.Name] = true
		next = s.End()
	}
	tblEnd := l.SyscallEntryAddr(l.SyscallCount)
	if l.SyscallTableAddr < l.Base || tblEnd > l.End() {
		return fmt.Errorf("mem: syscall table [%#x, %#x) outside kernel", l.SyscallTableAddr, tblEnd)
	}
	if l.SyscallCount <= GettidNR {
		return fmt.Errorf("mem: syscall table too small (%d entries) to hold gettid (%d)", l.SyscallCount, GettidNR)
	}
	if l.VBAR < l.Base || l.IRQVectorAddr()+VectorSize > l.End() {
		return fmt.Errorf("mem: vector table at %#x outside kernel", l.VBAR)
	}
	if l.PTBase != 0 {
		ptEnd := l.PTBase + uint64(l.PageCount())
		if l.PTBase < l.Base || ptEnd > l.End() {
			return fmt.Errorf("mem: page table [%#x, %#x) outside kernel", l.PTBase, ptEnd)
		}
	}
	return nil
}

// PageCount reports the number of PageSize pages covering the static
// kernel.
func (l Layout) PageCount() int {
	return (l.TotalSize() + PageSize - 1) / PageSize
}

// junoKernelBase is a typical 4.4-era arm64 kernel virtual base; the exact
// value is immaterial, only the layout geometry matters.
const junoKernelBase = 0xFFFF000008080000

// JunoKernelLayout builds the synthetic lsk-4.4-armlt kernel layout used
// throughout the reproduction. Its geometry matches §IV-C and §VI-A2 of the
// paper exactly:
//
//   - total static kernel size 11,916,240 bytes;
//   - a curated 19-area partition (see JunoAreaGroups) whose largest area is
//     876,616 bytes and smallest is 431,360 bytes;
//   - sys_call_table inside area 14 (the area the paper's detection
//     experiment attacks);
//   - the exception vector table inside area 0 (kernel entry text), so the
//     trace KProber-I leaves is inside the checked region.
func JunoKernelLayout() Layout {
	// Section sizes sum to 11,916,240. Grouping into areas is defined by
	// JunoAreaGroups; the group sums reproduce the paper's area extremes.
	specs := []struct {
		name string
		size int
	}{
		// Area 0: 644,016 — kernel entry, vectors, irq text.
		{".head.text", 65536},
		{".text.entry", 380000}, // holds the exception vector table
		{".text.irq", 198480},
		// Area 1: 624,016.
		{".text.sched", 524016},
		{".text.locking", 100000},
		// Area 2: 604,016.
		{".text.mm", 604016},
		// Area 3: 876,616 — the largest area (§VI-A2).
		{".text.fs", 876616},
		// Area 4: 804,016.
		{".text.net", 804016},
		// Area 5: 624,016.
		{".text.drivers_a", 624016},
		// Area 6: 624,016.
		{".text.drivers_b", 624016},
		// Area 7: 544,016.
		{".text.crypto", 444016},
		{".text.lib", 100000},
		// Area 8: 604,016.
		{".text.arch", 604016},
		// Area 9: 624,016.
		{".rodata_a", 624016},
		// Area 10: 544,016.
		{".rodata_b", 544016},
		// Area 11: 504,016.
		{"__ksymtab", 250000},
		{"__ksymtab_gpl", 150000},
		{"__kcrctab", 104016},
		// Area 12: 531,360.
		{"__param", 80000},
		{"__ex_table", 120000},
		{".notes", 1360},
		{"__bug_table", 330000},
		// Area 13: 704,016.
		{".init.text", 704016},
		// Area 14: 624,008 — holds sys_call_table (§VI-B1 attacks this area).
		{".rodata.syscalls", 624008},
		// Area 15: 624,016.
		{".init.data", 624016},
		// Area 16: 676,672.
		{".data_a", 676672},
		// Area 17: 704,016.
		{".data_b", 704016},
		// Area 18: 431,360 — the smallest area (§VI-A2).
		{".data..percpu", 232000},
		{".bss.static", 199360},
	}
	sections := make([]Section, len(specs))
	addr := uint64(junoKernelBase)
	for i, sp := range specs {
		sections[i] = Section{Name: sp.name, Addr: addr, Size: sp.size}
		addr += uint64(sp.size)
	}
	l := Layout{
		Base:     junoKernelBase,
		Sections: sections,
		// 4.4-era arm64 has ~284 syscalls; the table occupies the head of
		// .rodata.syscalls.
		SyscallCount: 284,
	}
	syscalls, err := l.Section(".rodata.syscalls")
	if err != nil {
		panic(err) // unreachable: the section is defined above
	}
	l.SyscallTableAddr = syscalls.Addr
	entry, err := l.Section(".text.entry")
	if err != nil {
		panic(err) // unreachable
	}
	// VBAR must be 2 KiB aligned; the section start is page-aligned here.
	l.VBAR = entry.Addr
	// The page-permission table occupies the head of .data_b (area 17),
	// as swapper_pg_dir occupies kernel .data on arm64.
	dataB, err := l.Section(".data_b")
	if err != nil {
		panic(err) // unreachable
	}
	l.PTBase = dataB.Addr
	return l
}

// JunoAreaGroups returns the curated grouping of JunoKernelLayout sections
// into the paper's 19 introspection areas: element i lists the indices of
// the sections forming area i, in address order.
func JunoAreaGroups() [][]int {
	return [][]int{
		{0, 1, 2},        // area 0
		{3, 4},           // area 1
		{5},              // area 2
		{6},              // area 3 (largest)
		{7},              // area 4
		{8},              // area 5
		{9},              // area 6
		{10, 11},         // area 7
		{12},             // area 8
		{13},             // area 9
		{14},             // area 10
		{15, 16, 17},     // area 11
		{18, 19, 20, 21}, // area 12
		{22},             // area 13
		{23},             // area 14 (sys_call_table)
		{24},             // area 15
		{25},             // area 16
		{26},             // area 17
		{27, 28},         // area 18 (smallest)
	}
}
