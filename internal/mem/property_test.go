package mem

import (
	"testing"
	"testing/quick"
)

// TestMMUPermissionProperties drives Protect/Unprotect/Write through
// arbitrary sequences and checks the permission model's invariants:
// protect→write faults, unprotect→write succeeds, and protection is
// idempotent.
func TestMMUPermissionProperties(t *testing.T) {
	im, err := NewJunoImage(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMMU(im, nil) // no handler: protected writes error
	if err != nil {
		t.Fatal(err)
	}
	l := im.Layout()
	f := func(pageSel uint16, sizeSel uint16, doubleProtect bool) bool {
		page := uint64(pageSel) % uint64(l.PageCount()-1)
		addr := l.Base + page*PageSize
		size := int(sizeSel%8192) + 1
		if addr+uint64(size) > l.End() {
			size = int(l.End() - addr)
		}
		if err := m.Protect(addr, size); err != nil {
			return false
		}
		if doubleProtect {
			if err := m.Protect(addr, size); err != nil {
				return false // idempotence
			}
		}
		// Every byte in the range is now unwritable.
		if err := m.Write(addr, []byte{0xAA}); err == nil {
			return false
		}
		if err := m.Write(addr+uint64(size)-1, []byte{0xAA}); err == nil {
			return false
		}
		if err := m.Unprotect(addr, size); err != nil {
			return false
		}
		// And writable again.
		b, err := im.Mem().ByteAt(addr)
		if err != nil {
			return false
		}
		if err := m.Write(addr, []byte{b}); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestMemoryWriteReadProperty: what you write is what you read back, for
// arbitrary in-bounds ranges.
func TestMemoryWriteReadProperty(t *testing.T) {
	m, err := NewMemory(0x4000, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := 0x4000 + uint64(off)
		if !m.Contains(addr, len(data)) {
			return true // out of range: nothing to check
		}
		if err := m.Write(addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := m.Read(addr, got); err != nil {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGenerationInvalidationProperty is the contract the introspection
// layer's hash cache is built on: for arbitrary write sequences, GenSum over
// a range changes if and only if some write overlapped the range's pages —
// and equal GenSums guarantee byte-identical contents.
func TestGenerationInvalidationProperty(t *testing.T) {
	const pages = 8
	m, err := NewMemory(0x10000, pages*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// The observed range sits in the middle so writes can land on either side.
	obsAddr := uint64(0x10000 + 2*PageSize + 100)
	obsLen := 3*PageSize + 50
	snapshot := func() []byte {
		out := make([]byte, obsLen)
		if err := m.Read(obsAddr, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	prevSum := m.GenSum(obsAddr, obsLen)
	prevBytes := snapshot()
	f := func(off uint32, n uint16, fill byte) bool {
		addr := 0x10000 + uint64(off)%uint64(pages*PageSize-1)
		size := int(n)%4096 + 1
		if !m.Contains(addr, size) {
			size = int(0x10000 + uint64(pages*PageSize) - addr)
		}
		data := make([]byte, size)
		for i := range data {
			data[i] = fill ^ byte(i)
		}
		if err := m.Write(addr, data); err != nil {
			return false
		}
		// Did the write overlap any page of the observed range?
		obsFirst := (obsAddr - 0x10000) / PageSize
		obsLast := (obsAddr - 0x10000 + uint64(obsLen) - 1) / PageSize
		wFirst := (addr - 0x10000) / PageSize
		wLast := (addr - 0x10000 + uint64(size) - 1) / PageSize
		overlaps := wFirst <= obsLast && obsFirst <= wLast
		sum := m.GenSum(obsAddr, obsLen)
		if overlaps != (sum != prevSum) {
			return false
		}
		bytes := snapshot()
		if sum == prevSum {
			// Unchanged sum must mean unchanged bytes (the cache soundness
			// direction; the converse may not hold and need not).
			for i := range bytes {
				if bytes[i] != prevBytes[i] {
					return false
				}
			}
		}
		prevSum, prevBytes = sum, bytes
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
