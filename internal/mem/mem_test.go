package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMemoryReadWrite(t *testing.T) {
	m, err := NewMemory(0x1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m.Base() != 0x1000 || m.Size() != 64 {
		t.Errorf("Base/Size = %#x/%d", m.Base(), m.Size())
	}
	if err := m.Write(0x1010, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := m.Read(0x1010, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Errorf("Read = %v", buf)
	}
	b, err := m.ByteAt(0x1011)
	if err != nil || b != 2 {
		t.Errorf("ByteAt = %v, %v", b, err)
	}
}

func TestMemoryBounds(t *testing.T) {
	m, err := NewMemory(0x1000, 16)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		addr uint64
		n    int
	}{
		{"below base", 0xFFF, 1},
		{"past end", 0x1010, 1},
		{"straddles end", 0x100F, 2},
		{"negative length", 0x1000, -1},
		{"huge length", 0x1000, 1 << 40},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if m.Contains(tc.addr, tc.n) {
				t.Error("Contains = true, want false")
			}
			if _, err := m.View(tc.addr, tc.n); err == nil {
				t.Error("View succeeded out of bounds")
			}
		})
	}
	if !m.Contains(0x1000, 16) {
		t.Error("full-range Contains = false")
	}
	if !m.Contains(0x100F, 1) {
		t.Error("last-byte Contains = false")
	}
	if !m.Contains(0x1010, 0) {
		t.Error("zero-length at end should be contained")
	}
}

func TestNewMemoryRejectsNonPositiveSize(t *testing.T) {
	if _, err := NewMemory(0, 0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewMemory(0, -5); err == nil {
		t.Error("negative size accepted")
	}
}

func TestMemoryViewAliasesAndSnapshotCopies(t *testing.T) {
	m, err := NewMemory(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0, []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	view, err := m.View(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if view[0] != 1 {
		t.Error("View does not alias live memory")
	}
	if snap[0] != 9 {
		t.Error("Snapshot aliases live memory; want independent copy")
	}
}

func TestMemoryUint64RoundTrip(t *testing.T) {
	m, err := NewMemory(0x100, 16)
	if err != nil {
		t.Fatal(err)
	}
	const v = 0xDEADBEEF12345678
	if err := m.PutUint64(0x104, v); err != nil {
		t.Fatal(err)
	}
	got, err := m.Uint64(0x104)
	if err != nil || got != v {
		t.Errorf("Uint64 = %#x, %v; want %#x", got, err, uint64(v))
	}
	// Little-endian byte order (ARM).
	b, err := m.ByteAt(0x104)
	if err != nil || b != 0x78 {
		t.Errorf("low byte = %#x, want 0x78 (little-endian)", b)
	}
}

func TestJunoKernelLayoutGeometry(t *testing.T) {
	l := JunoKernelLayout()
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The paper's kernel is 11,916,240 bytes (§IV-C).
	if got := l.TotalSize(); got != 11916240 {
		t.Errorf("TotalSize = %d, want 11916240", got)
	}
	// The syscall table must hold gettid.
	if l.SyscallCount <= GettidNR {
		t.Errorf("SyscallCount = %d, must exceed GettidNR %d", l.SyscallCount, GettidNR)
	}
	// The gettid entry lies inside .rodata.syscalls.
	s, err := l.SectionContaining(l.SyscallEntryAddr(GettidNR))
	if err != nil || s.Name != ".rodata.syscalls" {
		t.Errorf("gettid entry in section %q, %v; want .rodata.syscalls", s.Name, err)
	}
	// The IRQ vector lies inside .text.entry.
	s, err = l.SectionContaining(l.IRQVectorAddr())
	if err != nil || s.Name != ".text.entry" {
		t.Errorf("IRQ vector in section %q, %v; want .text.entry", s.Name, err)
	}
}

func TestJunoAreasMatchPaper(t *testing.T) {
	l := JunoKernelLayout()
	areas, err := BuildAreas(l, JunoAreaGroups())
	if err != nil {
		t.Fatal(err)
	}
	// §VI-A2: 19 areas, largest 876,616 bytes, smallest 431,360 bytes.
	if len(areas) != 19 {
		t.Fatalf("len(areas) = %d, want 19", len(areas))
	}
	if got := MaxAreaSize(areas); got != 876616 {
		t.Errorf("largest area = %d, want 876616", got)
	}
	if got := MinAreaSize(areas); got != 431360 {
		t.Errorf("smallest area = %d, want 431360", got)
	}
	// §IV-C: every area respects the race bound of 1,218,351 bytes.
	for _, a := range areas {
		if a.Size >= 1218351 {
			t.Errorf("%v exceeds the evasion-race bound", a)
		}
	}
	// Areas tile the kernel contiguously.
	next := l.Base
	total := 0
	for _, a := range areas {
		if a.Addr != next {
			t.Errorf("%v starts at %#x, want %#x", a, a.Addr, next)
		}
		next = a.End()
		total += a.Size
	}
	if total != l.TotalSize() {
		t.Errorf("areas cover %d bytes, kernel has %d", total, l.TotalSize())
	}
	// §VI-B1: the syscall table lives in area 14.
	idx, err := AreaContaining(areas, l.SyscallEntryAddr(GettidNR))
	if err != nil || idx != 14 {
		t.Errorf("gettid entry in area %d, %v; want 14", idx, err)
	}
	// KProber-I's vector-table trace is inside the checked region (area 0).
	idx, err = AreaContaining(areas, l.IRQVectorAddr())
	if err != nil || idx != 0 {
		t.Errorf("IRQ vector in area %d, %v; want 0", idx, err)
	}
}

func TestBuildAreasRejectsBadGroups(t *testing.T) {
	l := JunoKernelLayout()
	cases := []struct {
		name   string
		groups [][]int
	}{
		{"empty group", [][]int{{}}},
		{"out of order", [][]int{{1, 0}}},
		{"gap", [][]int{{0}, {2}}},
		{"incomplete cover", [][]int{{0, 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := BuildAreas(l, tc.groups); err == nil {
				t.Error("BuildAreas accepted invalid groups")
			}
		})
	}
}

func TestPartitionSectionsGreedy(t *testing.T) {
	sections := []Section{
		{Name: "a", Addr: 0, Size: 400},
		{Name: "b", Addr: 400, Size: 400},
		{Name: "c", Addr: 800, Size: 400},
		{Name: "d", Addr: 1200, Size: 100},
	}
	groups, err := PartitionSections(sections, 900)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy: [a b], [c d].
	if len(groups) != 2 || len(groups[0]) != 2 || len(groups[1]) != 2 {
		t.Errorf("groups = %v", groups)
	}
	// Oversized section is an error.
	if _, err := PartitionSections(sections, 399); err == nil {
		t.Error("oversized section accepted")
	}
	if _, err := PartitionSections(sections, 0); err == nil {
		t.Error("non-positive maxSize accepted")
	}
}

func TestPartitionSectionsProperty(t *testing.T) {
	// Property: for arbitrary section sizes under the cap, the partition
	// tiles in order and every area respects the cap.
	f := func(sizes []uint16) bool {
		const cap = 5000
		sections := make([]Section, 0, len(sizes))
		addr := uint64(0)
		for _, raw := range sizes {
			size := int(raw%cap) + 1
			sections = append(sections, Section{Name: "s", Addr: addr, Size: size})
			addr += uint64(size)
		}
		if len(sections) == 0 {
			return true
		}
		groups, err := PartitionSections(sections, cap)
		if err != nil {
			return false
		}
		next := 0
		for _, g := range groups {
			total := 0
			for _, si := range g {
				if si != next {
					return false
				}
				total += sections[si].Size
				next++
			}
			if total > cap || len(g) == 0 {
				return false
			}
		}
		return next == len(sections)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionThenBuildRoundTrip(t *testing.T) {
	l := JunoKernelLayout()
	groups, err := PartitionSections(l.Sections, 1218350)
	if err != nil {
		t.Fatal(err)
	}
	areas, err := BuildAreas(l, groups)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range areas {
		if a.Size > 1218350 {
			t.Errorf("%v exceeds cap", a)
		}
	}
}

func TestImageBootAndPristine(t *testing.T) {
	im, err := NewJunoImage(7)
	if err != nil {
		t.Fatal(err)
	}
	l := im.Layout()
	// Syscall table entries point at benign handlers.
	got, err := im.Mem().Uint64(l.SyscallEntryAddr(GettidNR))
	if err != nil || got != im.BenignHandler(GettidNR) {
		t.Errorf("gettid entry = %#x, %v; want %#x", got, err, im.BenignHandler(GettidNR))
	}
	// Vector table entries are installed.
	vec, err := im.Mem().Uint64(l.IRQVectorAddr())
	if err != nil || vec == 0 {
		t.Errorf("IRQ vector = %#x, %v; want nonzero", vec, err)
	}
	// Image boots clean.
	if mod := im.Modified(); len(mod) != 0 {
		t.Errorf("freshly booted image has %d modified bytes", len(mod))
	}
	// Deterministic content across boots with the same seed.
	im2, err := NewJunoImage(7)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := im.Pristine(l.Base, 4096)
	b, _ := im2.Pristine(l.Base, 4096)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different images")
	}
	// Different seed produces different content.
	im3, err := NewJunoImage(8)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := im3.Pristine(l.Base, 4096)
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical images")
	}
}

func TestImageModifyAndRestore(t *testing.T) {
	im, err := NewJunoImage(1)
	if err != nil {
		t.Fatal(err)
	}
	l := im.Layout()
	entry := l.SyscallEntryAddr(GettidNR)
	evil := im.ModuleBase() + 0x100
	if err := im.Mem().PutUint64(entry, evil); err != nil {
		t.Fatal(err)
	}
	mod := im.Modified()
	if len(mod) == 0 || len(mod) > 8 {
		t.Errorf("Modified reports %d bytes, want 1..8", len(mod))
	}
	for _, addr := range mod {
		if addr < entry || addr >= entry+8 {
			t.Errorf("modified byte %#x outside hijacked entry", addr)
		}
	}
	if err := im.RestoreStatic(entry, 8); err != nil {
		t.Fatal(err)
	}
	if mod := im.Modified(); len(mod) != 0 {
		t.Errorf("after restore, %d bytes still modified", len(mod))
	}
	got, err := im.Mem().Uint64(entry)
	if err != nil || got != im.BenignHandler(GettidNR) {
		t.Errorf("restored entry = %#x, want benign handler", got)
	}
}

func TestImagePristineBounds(t *testing.T) {
	im, err := NewJunoImage(1)
	if err != nil {
		t.Fatal(err)
	}
	// Module arena has no pristine copy.
	if _, err := im.Pristine(im.ModuleBase(), 8); err == nil {
		t.Error("Pristine of module arena succeeded")
	}
	if _, err := im.PristineView(im.Layout().Base-1, 8); err == nil {
		t.Error("PristineView below base succeeded")
	}
	v, err := im.PristineView(im.Layout().Base, 16)
	if err != nil || len(v) != 16 {
		t.Errorf("PristineView = %d bytes, %v", len(v), err)
	}
}

func TestModuleArenaMapped(t *testing.T) {
	im, err := NewJunoImage(1)
	if err != nil {
		t.Fatal(err)
	}
	// Module arena is writable memory outside the static kernel.
	if err := im.Mem().Write(im.ModuleBase(), []byte{0xAA}); err != nil {
		t.Errorf("module arena write: %v", err)
	}
	if len(im.Modified()) != 0 {
		t.Error("module arena writes must not count as static-kernel modifications")
	}
	if im.ModuleBase() != im.Layout().End() {
		t.Error("module arena should start at kernel end")
	}
}

func TestSectionLookup(t *testing.T) {
	l := JunoKernelLayout()
	s, err := l.Section(".text.fs")
	if err != nil || s.Size != 876616 {
		t.Errorf("Section(.text.fs) = %+v, %v", s, err)
	}
	if _, err := l.Section(".nope"); err == nil {
		t.Error("unknown section lookup succeeded")
	}
	if _, err := l.SectionContaining(l.Base - 1); err == nil {
		t.Error("SectionContaining below base succeeded")
	}
	if _, err := l.SectionContaining(l.End()); err == nil {
		t.Error("SectionContaining at end succeeded")
	}
}

func TestLayoutValidateCatchesDefects(t *testing.T) {
	good := JunoKernelLayout()
	mutate := []struct {
		name string
		fn   func(*Layout)
	}{
		{"no sections", func(l *Layout) { l.Sections = nil }},
		{"gap", func(l *Layout) { l.Sections[1].Addr += 8 }},
		{"zero size", func(l *Layout) { l.Sections[0].Size = 0 }},
		{"duplicate name", func(l *Layout) { l.Sections[1].Name = l.Sections[0].Name }},
		{"syscall table outside", func(l *Layout) { l.SyscallTableAddr = l.End() }},
		{"tiny syscall table", func(l *Layout) { l.SyscallCount = 10 }},
		{"vbar outside", func(l *Layout) { l.VBAR = l.Base - 0x1000 }},
	}
	for _, tc := range mutate {
		t.Run(tc.name, func(t *testing.T) {
			l := JunoKernelLayout()
			l.Sections = append([]Section(nil), good.Sections...)
			tc.fn(&l)
			if err := l.Validate(); err == nil {
				t.Error("defect passed validation")
			}
		})
	}
}

func TestPageGenerationsTrackWrites(t *testing.T) {
	m, err := NewMemory(0x8000, 3*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	base := uint64(0x8000)
	if g := m.PageGen(base); g != 0 {
		t.Fatalf("fresh page generation = %d, want 0", g)
	}
	// A write inside one page bumps that page only.
	if err := m.Write(base+10, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if g := m.PageGen(base); g != 1 {
		t.Fatalf("page 0 generation = %d, want 1", g)
	}
	if g := m.PageGen(base + PageSize); g != 0 {
		t.Fatalf("untouched page 1 generation = %d, want 0", g)
	}
	// A straddling write bumps every page it touches, once each.
	if err := m.Write(base+PageSize-2, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if g0, g1 := m.PageGen(base), m.PageGen(base+PageSize); g0 != 2 || g1 != 1 {
		t.Fatalf("straddle generations = %d,%d, want 2,1", g0, g1)
	}
	// PutUint64 routes through Write and counts too.
	if err := m.PutUint64(base+2*PageSize, 42); err != nil {
		t.Fatal(err)
	}
	if g := m.PageGen(base + 2*PageSize); g != 1 {
		t.Fatalf("page 2 generation after PutUint64 = %d, want 1", g)
	}
	// Zero-length writes bump nothing.
	if err := m.Write(base, nil); err != nil {
		t.Fatal(err)
	}
	if g := m.PageGen(base); g != 2 {
		t.Fatalf("page 0 generation after empty write = %d, want 2", g)
	}
	// Out-of-range addresses report 0 rather than panicking.
	if g := m.PageGen(base - 1); g != 0 {
		t.Fatalf("below-base generation = %d, want 0", g)
	}
	if g := m.PageGen(base + 100*PageSize); g != 0 {
		t.Fatalf("above-end generation = %d, want 0", g)
	}
}

func TestGenSumAndGenerations(t *testing.T) {
	m, err := NewMemory(0, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if s := m.GenSum(0, 4*PageSize); s != 0 {
		t.Fatalf("fresh GenSum = %d, want 0", s)
	}
	if s := m.GenSum(0, 0); s != 0 {
		t.Fatalf("empty-range GenSum = %d, want 0", s)
	}
	for i := 0; i < 3; i++ {
		if err := m.Write(PageSize, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Write(3*PageSize, []byte{9}); err != nil {
		t.Fatal(err)
	}
	// GenSum over all pages = 3 (page 1) + 1 (page 3).
	if s := m.GenSum(0, 4*PageSize); s != 4 {
		t.Fatalf("GenSum all = %d, want 4", s)
	}
	// A sub-range that misses page 3 sums only page 1's writes.
	if s := m.GenSum(0, 2*PageSize); s != 3 {
		t.Fatalf("GenSum pages 0-1 = %d, want 3", s)
	}
	// A one-byte range at the end of page 1 still sees its generation.
	if s := m.GenSum(2*PageSize-1, 1); s != 3 {
		t.Fatalf("GenSum last byte of page 1 = %d, want 3", s)
	}
	gens, err := m.Generations(0, 4*PageSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 3, 0, 1}
	if len(gens) != len(want) {
		t.Fatalf("Generations returned %d pages, want %d", len(gens), len(want))
	}
	for i, g := range gens {
		if g != want[i] {
			t.Fatalf("Generations[%d] = %d, want %d", i, g, want[i])
		}
	}
	// Reuses dst without reallocating when capacity suffices.
	buf := make([]uint64, 0, 8)
	got, err := m.Generations(0, 4*PageSize, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Error("Generations reallocated despite sufficient dst capacity")
	}
	if _, err := m.Generations(0, 5*PageSize, nil); err == nil {
		t.Error("out-of-range Generations must error")
	}
}

func TestSnapshotIntoMatchesSnapshot(t *testing.T) {
	m, err := NewMemory(0x1000, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if err := m.Write(0x1100, data); err != nil {
		t.Fatal(err)
	}
	want, err := m.Snapshot(0x1100, len(data))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := m.SnapshotInto(0x1100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Error("SnapshotInto differs from Snapshot")
	}
	if err := m.SnapshotInto(0x1000+2*PageSize-1, buf); err == nil {
		t.Error("out-of-range SnapshotInto must error")
	}
}
