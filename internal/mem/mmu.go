package mem

import (
	"fmt"
)

// PageSize is the translation granule: 4 KiB, as on the paper's platform.
const PageSize = 4096

// PTE layout: one byte per static-kernel page (a deliberately compact stand-
// in for the 8-byte descriptors of a real table — only the permission bit
// matters to the mechanisms modeled here). Bit 7 mirrors AP[2] of ARMv8-A
// stage-1 descriptors: set = read-only at EL1.
const PTEReadOnly byte = 1 << 7

// FaultHandler screens a write that hit a read-only page — the synchronous-
// introspection trap of §VII-A (SPROBES/TZ-RKP route the fault to the
// secure world for inspection). Returning nil lets the write proceed;
// returning an error denies it.
type FaultHandler func(addr uint64, data []byte) error

// MMU routes kernel-privilege writes through the live page permissions.
// The permission array itself lives *inside* the static kernel image (as
// swapper_pg_dir does in a real kernel's .data), which is what makes the
// paper's §VII-A bypass — flipping AP bits through a write-what-where
// vulnerability — both possible and, in turn, visible to asynchronous
// introspection: the flipped PTE bytes are in a checked area.
type MMU struct {
	mem    *Memory
	layout Layout
	fault  FaultHandler
}

// NewMMU builds the MMU over a booted image. The layout must carry a page
// table (PTBase != 0).
func NewMMU(image *Image, fault FaultHandler) (*MMU, error) {
	layout := image.Layout()
	if layout.PTBase == 0 {
		return nil, fmt.Errorf("mem: layout has no page table")
	}
	return &MMU{mem: image.Mem(), layout: layout, fault: fault}, nil
}

// pteAddr returns the PTE byte governing addr, or an error for addresses
// outside the static kernel (the module arena is always writable — loadable
// module space is not under the static protections).
func (m *MMU) pteAddr(addr uint64) (uint64, bool) {
	if addr < m.layout.Base || addr >= m.layout.End() {
		return 0, false
	}
	page := (addr - m.layout.Base) / PageSize
	return m.layout.PTBase + page, true
}

// ReadOnly reports whether the page holding addr is write-protected.
func (m *MMU) ReadOnly(addr uint64) (bool, error) {
	pte, ok := m.pteAddr(addr)
	if !ok {
		return false, nil
	}
	b, err := m.mem.ByteAt(pte)
	if err != nil {
		return false, fmt.Errorf("mem: reading PTE: %w", err)
	}
	return b&PTEReadOnly != 0, nil
}

// Write performs a kernel-privilege write honoring page permissions: writes
// to read-only pages trap to the fault handler (deny by default when no
// handler is installed). A write spanning pages is checked page by page and
// is all-or-nothing.
func (m *MMU) Write(addr uint64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	first := addr / PageSize
	last := (addr + uint64(len(data)) - 1) / PageSize
	for page := first; page <= last; page++ {
		pageStart := page * PageSize
		if pageStart < addr {
			pageStart = addr
		}
		ro, err := m.ReadOnly(pageStart)
		if err != nil {
			return err
		}
		if ro {
			if m.fault == nil {
				return fmt.Errorf("mem: write to read-only page at %#x", pageStart)
			}
			if err := m.fault(addr, data); err != nil {
				return fmt.Errorf("mem: write to %#x denied: %w", addr, err)
			}
		}
	}
	return m.mem.Write(addr, data)
}

// PutUint64 writes a 64-bit little-endian value through the permission
// check.
func (m *MMU) PutUint64(addr uint64, v uint64) error {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	return m.Write(addr, buf[:])
}

// Protect marks every page overlapping [addr, addr+size) read-only. It
// writes the PTE bytes directly (boot/secure-world privilege); the guarded
// range must lie in the static kernel.
func (m *MMU) Protect(addr uint64, size int) error {
	return m.setPermission(addr, size, true)
}

// Unprotect clears the read-only bit for every page overlapping the range.
func (m *MMU) Unprotect(addr uint64, size int) error {
	return m.setPermission(addr, size, false)
}

func (m *MMU) setPermission(addr uint64, size int, ro bool) error {
	if size <= 0 {
		return fmt.Errorf("mem: protection range size %d must be positive", size)
	}
	for a := addr; a < addr+uint64(size); a += PageSize {
		pte, ok := m.pteAddr(a)
		if !ok {
			return fmt.Errorf("mem: address %#x outside the static kernel", a)
		}
		b, err := m.mem.ByteAt(pte)
		if err != nil {
			return err
		}
		if ro {
			b |= PTEReadOnly
		} else {
			b &^= PTEReadOnly
		}
		if err := m.mem.Write(pte, []byte{b}); err != nil {
			return err
		}
	}
	return nil
}

// PTEAddrOf exposes the PTE byte address governing addr — what the §VII-A
// write-what-where exploit targets.
func (m *MMU) PTEAddrOf(addr uint64) (uint64, error) {
	pte, ok := m.pteAddr(addr)
	if !ok {
		return 0, fmt.Errorf("mem: address %#x outside the static kernel", addr)
	}
	return pte, nil
}
