package mem

import (
	"errors"
	"strings"
	"testing"
)

func newMMURig(t *testing.T, fault FaultHandler) (*Image, *MMU) {
	t.Helper()
	im, err := NewJunoImage(42)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMMU(im, fault)
	if err != nil {
		t.Fatal(err)
	}
	return im, m
}

func TestLayoutCarriesPageTable(t *testing.T) {
	l := JunoKernelLayout()
	if l.PTBase == 0 {
		t.Fatal("Juno layout has no page table")
	}
	// 11,916,240 bytes at 4 KiB per page.
	if got := l.PageCount(); got != 2910 {
		t.Errorf("PageCount = %d, want 2910", got)
	}
	// The table lives inside .data_b — area 17 of the Juno partition — so
	// PTE tampering is introspection-visible.
	s, err := l.SectionContaining(l.PTBase)
	if err != nil || s.Name != ".data_b" {
		t.Errorf("page table in section %q, %v; want .data_b", s.Name, err)
	}
	areas, err := BuildAreas(l, JunoAreaGroups())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := AreaContaining(areas, l.PTBase)
	if err != nil || idx != 17 {
		t.Errorf("page table in area %d, %v; want 17", idx, err)
	}
}

func TestImageBootsAllPagesWritable(t *testing.T) {
	im, m := newMMURig(t, nil)
	l := im.Layout()
	for _, addr := range []uint64{l.Base, l.SyscallTableAddr, l.IRQVectorAddr(), l.End() - 1} {
		ro, err := m.ReadOnly(addr)
		if err != nil {
			t.Fatal(err)
		}
		if ro {
			t.Errorf("page of %#x boots read-only", addr)
		}
	}
	if len(im.Modified()) != 0 {
		t.Error("zeroed page table should be part of the pristine image")
	}
}

func TestMMUWriteThroughWhenWritable(t *testing.T) {
	im, m := newMMURig(t, nil)
	entry := im.Layout().SyscallEntryAddr(GettidNR)
	if err := m.PutUint64(entry, 0x1234); err != nil {
		t.Fatalf("write to writable page failed: %v", err)
	}
	got, err := im.Mem().Uint64(entry)
	if err != nil || got != 0x1234 {
		t.Errorf("entry = %#x, %v", got, err)
	}
	if err := m.Write(entry, nil); err != nil {
		t.Errorf("empty write errored: %v", err)
	}
}

func TestMMUProtectTrapsWrites(t *testing.T) {
	denied := errors.New("screened and denied")
	faults := 0
	im, m := newMMURig(t, func(addr uint64, data []byte) error {
		faults++
		return denied
	})
	l := im.Layout()
	tableSize := l.SyscallCount * SyscallEntrySize
	if err := m.Protect(l.SyscallTableAddr, tableSize); err != nil {
		t.Fatal(err)
	}
	entry := l.SyscallEntryAddr(GettidNR)
	before, err := im.Mem().Uint64(entry)
	if err != nil {
		t.Fatal(err)
	}
	err = m.PutUint64(entry, 0xBAD)
	if !errors.Is(err, denied) {
		t.Fatalf("protected write error = %v, want screened denial", err)
	}
	if faults != 1 {
		t.Errorf("fault handler ran %d times, want 1", faults)
	}
	after, err := im.Mem().Uint64(entry)
	if err != nil || after != before {
		t.Error("denied write modified memory")
	}
	// Raw physical access (the DMA/exploit channel) is NOT mediated.
	if err := im.Mem().PutUint64(entry, before); err != nil {
		t.Errorf("raw write failed: %v", err)
	}
}

func TestMMUNoHandlerDeniesByDefault(t *testing.T) {
	im, m := newMMURig(t, nil)
	l := im.Layout()
	if err := m.Protect(l.VBAR, VectorSize*16); err != nil {
		t.Fatal(err)
	}
	if err := m.PutUint64(l.IRQVectorAddr(), 0xBAD); err == nil {
		t.Error("write to protected page succeeded with no fault handler")
	}
}

func TestMMUFaultHandlerCanAllow(t *testing.T) {
	im, m := newMMURig(t, func(addr uint64, data []byte) error {
		return nil // the screen approves this write
	})
	l := im.Layout()
	if err := m.Protect(l.SyscallTableAddr, 8); err != nil {
		t.Fatal(err)
	}
	if err := m.PutUint64(l.SyscallTableAddr, 0x77); err != nil {
		t.Errorf("approved write failed: %v", err)
	}
	got, err := im.Mem().Uint64(l.SyscallTableAddr)
	if err != nil || got != 0x77 {
		t.Errorf("approved write not applied: %#x, %v", got, err)
	}
}

func TestMMUUnprotect(t *testing.T) {
	im, m := newMMURig(t, nil)
	l := im.Layout()
	if err := m.Protect(l.SyscallTableAddr, 8); err != nil {
		t.Fatal(err)
	}
	if err := m.Unprotect(l.SyscallTableAddr, 8); err != nil {
		t.Fatal(err)
	}
	if err := m.PutUint64(l.SyscallTableAddr, 0x42); err != nil {
		t.Errorf("write after unprotect failed: %v", err)
	}
}

func TestMMUWriteSpanningPages(t *testing.T) {
	im, m := newMMURig(t, nil)
	l := im.Layout()
	// Protect only the second of two adjacent pages; a straddling write
	// must be denied entirely.
	pageBoundary := l.Base + 2*PageSize
	if err := m.Protect(pageBoundary, 8); err != nil {
		t.Fatal(err)
	}
	straddle := pageBoundary - 4
	before, err := im.Mem().Snapshot(straddle, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(straddle, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Fatal("straddling write into protected page succeeded")
	}
	after, err := im.Mem().Snapshot(straddle, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("denied straddling write partially applied")
		}
	}
}

func TestMMUModuleArenaAlwaysWritable(t *testing.T) {
	im, m := newMMURig(t, nil)
	if err := m.Write(im.ModuleBase()+0x10, []byte{0xAA}); err != nil {
		t.Errorf("module arena write through MMU failed: %v", err)
	}
	ro, err := m.ReadOnly(im.ModuleBase())
	if err != nil || ro {
		t.Errorf("module arena reported read-only: %v, %v", ro, err)
	}
}

func TestMMUProtectValidation(t *testing.T) {
	im, m := newMMURig(t, nil)
	if err := m.Protect(im.Layout().Base, 0); err == nil {
		t.Error("zero-size protect accepted")
	}
	if err := m.Protect(im.ModuleBase(), 8); err == nil {
		t.Error("protecting the module arena accepted")
	}
	if _, err := m.PTEAddrOf(im.ModuleBase()); err == nil {
		t.Error("PTEAddrOf outside kernel accepted")
	}
}

func TestAPFlipExploitPath(t *testing.T) {
	// The §VII-A bypass end to end: protected page, write denied; the
	// write-what-where exploit flips the PTE byte through raw physical
	// access; the same write now sails through with NO fault — and the
	// flipped PTE byte is a modification in area 17 that asynchronous
	// introspection can find.
	faults := 0
	im, m := newMMURig(t, func(uint64, []byte) error {
		faults++
		return errors.New("denied")
	})
	l := im.Layout()
	if err := m.Protect(l.SyscallTableAddr, l.SyscallCount*SyscallEntrySize); err != nil {
		t.Fatal(err)
	}
	if err := im.RecapturePristine(); err != nil {
		t.Fatal(err)
	}
	entry := l.SyscallEntryAddr(GettidNR)
	if err := m.PutUint64(entry, 0xBAD); err == nil {
		t.Fatal("hijack succeeded against the guard")
	}

	// write-what-where: clear the read-only bit via raw physical write.
	pte, err := m.PTEAddrOf(entry)
	if err != nil {
		t.Fatal(err)
	}
	b, err := im.Mem().ByteAt(pte)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Mem().Write(pte, []byte{b &^ PTEReadOnly}); err != nil {
		t.Fatal(err)
	}
	faultsBefore := faults
	if err := m.PutUint64(entry, 0xBAD); err != nil {
		t.Fatalf("hijack after AP flip failed: %v", err)
	}
	if faults != faultsBefore {
		t.Error("bypassed write still trapped")
	}
	// The exploit left its own trace: modified bytes in the page table
	// (area 17) and the syscall table (area 14).
	mod := im.Modified()
	sawPTE, sawEntry := false, false
	for _, a := range mod {
		if a == pte {
			sawPTE = true
		}
		if a >= entry && a < entry+8 {
			sawEntry = true
		}
	}
	if !sawPTE || !sawEntry {
		t.Errorf("modified set misses the attack traces: pte=%v entry=%v", sawPTE, sawEntry)
	}
}

func TestNewMMURequiresPageTable(t *testing.T) {
	l := JunoKernelLayout()
	l.PTBase = 0
	im, err := NewImage(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMMU(im, nil); err == nil || !strings.Contains(err.Error(), "page table") {
		t.Errorf("NewMMU without page table: %v", err)
	}
}
