// Package mem models the normal-world physical memory the introspection
// mechanisms inspect: a byte-addressable RAM holding a synthetic rich-OS
// kernel image whose layout mirrors the paper's target (an 11,916,240-byte
// lsk-4.4-armlt kernel divided into 19 System.map-derived areas, §VI-A2),
// plus a loadable-module arena where attack code lives outside the
// statically-checked region.
//
// Memory contents are real bytes: the rootkit genuinely overwrites the
// GETTID syscall-table entry, KProber-I genuinely rewrites the IRQ exception
// vector, and the introspection genuinely hashes what is there at the
// virtual instant each chunk is read. Detection therefore emerges from event
// interleaving — the same TOCTTOU structure as the hardware race in the
// paper's Figure 3 — rather than from a formula.
package mem

import (
	"fmt"
)

// Memory is a contiguous byte-addressable physical memory region.
//
// Every mutation through Write (and the helpers built on it) bumps a
// per-page (4 KiB) generation counter. Generations are the invalidation
// substrate for anything that caches derived views of memory — the
// introspection layer's incremental hash cache keys chunk digests on them —
// and a reusable primitive for future diff-based features: two reads of a
// page with the same generation are guaranteed byte-identical.
type Memory struct {
	base uint64
	data []byte
	// gens[p] counts writes that touched page p since boot. The boot-time
	// fill happens before any observer exists, so it does not count.
	gens []uint64
}

// NewMemory allocates a zeroed region of n bytes starting at physical
// address base.
func NewMemory(base uint64, n int) (*Memory, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mem: size %d must be positive", n)
	}
	return &Memory{
		base: base,
		data: make([]byte, n),
		gens: make([]uint64, (n+PageSize-1)/PageSize),
	}, nil
}

// Base reports the first mapped address.
func (m *Memory) Base() uint64 { return m.base }

// Size reports the mapped length in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Contains reports whether the n-byte range at addr is fully mapped.
func (m *Memory) Contains(addr uint64, n int) bool {
	if n < 0 || addr < m.base {
		return false
	}
	off := addr - m.base
	return off <= uint64(len(m.data)) && uint64(n) <= uint64(len(m.data))-off
}

// check converts addr to an offset, validating the n-byte access.
func (m *Memory) check(addr uint64, n int) (int, error) {
	if !m.Contains(addr, n) {
		return 0, fmt.Errorf("mem: access [%#x, %#x+%d) outside [%#x, %#x)",
			addr, addr, n, m.base, m.base+uint64(len(m.data)))
	}
	return int(addr - m.base), nil
}

// Read copies len(buf) bytes starting at addr into buf.
func (m *Memory) Read(addr uint64, buf []byte) error {
	off, err := m.check(addr, len(buf))
	if err != nil {
		return err
	}
	copy(buf, m.data[off:off+len(buf)])
	return nil
}

// ByteAt returns the byte at addr.
func (m *Memory) ByteAt(addr uint64) (byte, error) {
	off, err := m.check(addr, 1)
	if err != nil {
		return 0, err
	}
	return m.data[off], nil
}

// Write copies data into memory starting at addr and bumps the generation
// of every page the write touches.
func (m *Memory) Write(addr uint64, data []byte) error {
	off, err := m.check(addr, len(data))
	if err != nil {
		return err
	}
	copy(m.data[off:], data)
	if len(data) > 0 {
		for p := off / PageSize; p <= (off+len(data)-1)/PageSize; p++ {
			m.gens[p]++
		}
	}
	return nil
}

// PageGen reports the generation of the page holding addr: how many writes
// have touched it since boot. Addresses outside the region report 0.
func (m *Memory) PageGen(addr uint64) uint64 {
	if addr < m.base {
		return 0
	}
	p := (addr - m.base) / PageSize
	if p >= uint64(len(m.gens)) {
		return 0
	}
	return m.gens[p]
}

// GenSum returns the sum of the generation counters of every page
// overlapping [addr, addr+n). Because generations only ever increase, the
// sum changes if and only if some overlapping page was written — a single
// uint64 compare validates an arbitrary range. The range must be mapped
// (callers validate once up front); n <= 0 sums to 0.
func (m *Memory) GenSum(addr uint64, n int) uint64 {
	if n <= 0 {
		return 0
	}
	off := int(addr - m.base)
	var sum uint64
	for p := off / PageSize; p <= (off+n-1)/PageSize; p++ {
		sum += m.gens[p]
	}
	return sum
}

// Generations appends the generation counters of every page overlapping
// [addr, addr+n) to dst and returns the extended slice. Callers reuse dst
// across queries to keep the read path allocation-free.
func (m *Memory) Generations(addr uint64, n int, dst []uint64) ([]uint64, error) {
	off, err := m.check(addr, n)
	if err != nil {
		return dst, err
	}
	if n == 0 {
		return dst, nil
	}
	for p := off / PageSize; p <= (off+n-1)/PageSize; p++ {
		dst = append(dst, m.gens[p])
	}
	return dst, nil
}

// View returns a read-only view of the n bytes at addr, aliasing the live
// memory. It is how the secure world "directly reads the normal world OS'
// kernel" (§IV-B1) without a copy; callers must not mutate it.
func (m *Memory) View(addr uint64, n int) ([]byte, error) {
	off, err := m.check(addr, n)
	if err != nil {
		return nil, err
	}
	return m.data[off : off+n : off+n], nil
}

// Snapshot returns an independent copy of the n bytes at addr — the
// "capture the snapshot" introspection technique of Table I.
func (m *Memory) Snapshot(addr uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := m.SnapshotInto(addr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SnapshotInto copies len(buf) bytes at addr into buf, the allocation-free
// variant of Snapshot for callers that recycle capture buffers.
func (m *Memory) SnapshotInto(addr uint64, buf []byte) error {
	return m.Read(addr, buf)
}

// PutUint64 writes a 64-bit little-endian value (ARM is little-endian).
func (m *Memory) PutUint64(addr uint64, v uint64) error {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	return m.Write(addr, buf[:])
}

// Uint64 reads a 64-bit little-endian value.
func (m *Memory) Uint64(addr uint64) (uint64, error) {
	var buf [8]byte
	if err := m.Read(addr, buf[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i, b := range buf {
		v |= uint64(b) << (8 * i)
	}
	return v, nil
}
