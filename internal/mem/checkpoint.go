package mem

import "fmt"

// Checkpoint support: page-granular accessors for the copy-on-write memory
// capture. A snapshot never copies the whole region — it records the bytes of
// pages whose generation differs from a baseline taken right after scenario
// construction, plus the full generation array. The generation array must be
// restored exactly (not merely bumped) because the incremental hash cache
// validates entries by generation sums; RestorePage therefore writes bytes
// without touching generations, and SetPageGens installs the recorded array.

// NumPages reports how many 4 KiB pages the region spans (the last page may
// be partial).
func (m *Memory) NumPages() int { return len(m.gens) }

// PageView returns a read-only view of page p's bytes, aliasing the live
// memory. Callers must not mutate it.
func (m *Memory) PageView(p int) ([]byte, error) {
	if p < 0 || p >= len(m.gens) {
		return nil, fmt.Errorf("mem: page %d outside [0, %d)", p, len(m.gens))
	}
	lo := p * PageSize
	hi := lo + PageSize
	if hi > len(m.data) {
		hi = len(m.data)
	}
	return m.data[lo:hi:hi], nil
}

// RestorePage overwrites page p's bytes without bumping its generation —
// the generation array is restored separately via SetPageGens. data must be
// exactly the page's length (PageSize, or the tail for a partial last page).
func (m *Memory) RestorePage(p int, data []byte) error {
	view, err := m.PageView(p)
	if err != nil {
		return err
	}
	if len(data) != len(view) {
		return fmt.Errorf("mem: page %d is %d bytes, restore data is %d", p, len(view), len(data))
	}
	lo := p * PageSize
	copy(m.data[lo:lo+len(data)], data)
	return nil
}

// PageGens returns a copy of the full per-page generation array.
func (m *Memory) PageGens() []uint64 {
	return append([]uint64(nil), m.gens...)
}

// SetPageGens overwrites the full per-page generation array.
func (m *Memory) SetPageGens(gens []uint64) error {
	if len(gens) != len(m.gens) {
		return fmt.Errorf("mem: generation array has %d pages, region has %d", len(gens), len(m.gens))
	}
	copy(m.gens, gens)
	return nil
}
