package profile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"satin/internal/trace"
)

// chrome.go emits the span tree in the Chrome trace_event JSON format
// (the JSON Array Format with "traceEvents", which ui.perfetto.dev and
// chrome://tracing both load). Mapping:
//
//   - pid <core>      = one process per core, named "Core N"
//   - pid cores       = the evader's own process, named "TZ-Evader"
//   - tid 0 / tid 1   = the normal / secure world track inside a core
//   - "X" events      = spans (ts/dur in microseconds of virtual time)
//   - "i" events      = bus instants (alarms, suspects, faults, ...)
//   - "M" events      = process_name / thread_name metadata
//
// The file is written by hand (no maps, fixed field order, fixed float
// formatting) so an export is byte-identical across runs and platforms.

const (
	tidNormal = 0
	tidSecure = 1
)

// usec renders a virtual instant as trace_event microseconds with fixed
// millinanosecond precision ("1947618.933").
func usec(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Microsecond), 'f', 3, 64)
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// WriteChromeTrace writes the run's spans and instants as trace_event
// JSON. Still-open spans are clamped to elapsed. Safe on a nil profiler
// (writes an empty but valid trace).
func (p *Profiler) WriteChromeTrace(w io.Writer, elapsed time.Duration) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	cores := 0
	if p != nil {
		cores = p.cores
	}
	for c := 0; c < cores; c++ {
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"Core %d"}}`, c, c))
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"normal"}}`, c, tidNormal))
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"secure"}}`, c, tidSecure))
	}
	if p != nil {
		ev := p.evaderTrack()
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"TZ-Evader"}}`, ev))
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":0,"args":{"name":"evader"}}`, ev))
	}

	if p != nil {
		for _, sp := range p.Spans() {
			pid := sp.Core
			tid := tidSecure
			if t := p.trackFor(sp.Kind, sp.Core); t == p.evaderTrack() {
				pid, tid = p.evaderTrack(), tidNormal
			}
			dur := sp.Duration(elapsed)
			line := fmt.Sprintf(`{"name":%s,"cat":"span","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"area":%d`,
				jsonString(sp.Kind.String()), usec(sp.Begin), usec(dur), pid, tid, sp.Area)
			if sp.Detail != "" {
				line += `,"detail":` + jsonString(sp.Detail)
			}
			if sp.End == OpenEnd {
				line += `,"clamped":true`
			}
			line += "}}"
			emit(line)
		}
		for _, e := range p.instants {
			pid := e.Core
			tid := tidNormal
			if pid < 0 || pid >= p.cores {
				pid = p.evaderTrack()
			}
			line := fmt.Sprintf(`{"name":%s,"cat":"event","ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":{"area":%d`,
				jsonString(string(e.Kind)), usec(e.At), pid, tid, e.Area)
			if e.Detail != "" {
				line += `,"detail":` + jsonString(e.Detail)
			}
			line += "}}"
			emit(line)
		}
	}

	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("profile: writing chrome trace: %w", err)
	}
	return nil
}

// chromeEvent mirrors the trace_event fields ValidateChromeTrace checks.
type chromeEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ValidateChromeTrace parses r as trace_event JSON and checks the
// invariants Perfetto's importer relies on: the traceEvents array exists,
// every event has a name and a known phase, "X" events carry ts/dur/pid/
// tid with non-negative values, and the complete events on each (pid, tid)
// track nest properly — a span overlaps another only by full containment.
// It returns the number of events checked.
func ValidateChromeTrace(r io.Reader) (int, error) {
	var f chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return 0, fmt.Errorf("profile: chrome trace is not valid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return 0, fmt.Errorf("profile: chrome trace has no traceEvents array")
	}
	type interval struct{ begin, end float64 }
	tracks := map[[2]int][]interval{}
	var trackKeys [][2]int
	for i, e := range f.TraceEvents {
		if e.Name == "" {
			return 0, fmt.Errorf("profile: event %d has no name", i)
		}
		switch e.Ph {
		case "M":
			continue
		case "i", "I":
			if e.Ts == nil || *e.Ts < 0 {
				return 0, fmt.Errorf("profile: instant event %d (%s) lacks a non-negative ts", i, e.Name)
			}
		case "X":
			if e.Ts == nil || e.Dur == nil || e.Pid == nil || e.Tid == nil {
				return 0, fmt.Errorf("profile: complete event %d (%s) must carry ts, dur, pid, tid", i, e.Name)
			}
			if *e.Ts < 0 || *e.Dur < 0 {
				return 0, fmt.Errorf("profile: complete event %d (%s) has negative ts or dur", i, e.Name)
			}
			k := [2]int{*e.Pid, *e.Tid}
			if _, ok := tracks[k]; !ok {
				trackKeys = append(trackKeys, k)
			}
			tracks[k] = append(tracks[k], interval{*e.Ts, *e.Ts + *e.Dur})
		default:
			return 0, fmt.Errorf("profile: event %d (%s) has unsupported phase %q", i, e.Name, e.Ph)
		}
	}
	// Nesting check per track: sort by (begin asc, end desc) and run a
	// stack of enclosing intervals. eps absorbs the ns→µs float rounding.
	const eps = 0.002
	for _, k := range trackKeys {
		iv := tracks[k]
		sort.Slice(iv, func(i, j int) bool {
			if iv[i].begin != iv[j].begin {
				return iv[i].begin < iv[j].begin
			}
			return iv[i].end > iv[j].end
		})
		var stack []interval
		for _, cur := range iv {
			for len(stack) > 0 && stack[len(stack)-1].end <= cur.begin+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && cur.end > stack[len(stack)-1].end+eps {
				return 0, fmt.Errorf("profile: track pid=%d tid=%d: span [%f,%f] partially overlaps [%f,%f]",
					k[0], k[1], cur.begin, cur.end, stack[len(stack)-1].begin, stack[len(stack)-1].end)
			}
			stack = append(stack, cur)
		}
	}
	return len(f.TraceEvents), nil
}

// instantKinds documents which bus kinds the exporter forwards as "i"
// events; used by tests to assert coverage.
var instantKinds = func() []trace.Kind {
	var out []trace.Kind
	for _, k := range trace.Kinds() {
		if k == trace.KindWorldEnter || k == trace.KindRound {
			continue
		}
		out = append(out, k)
	}
	return out
}()
