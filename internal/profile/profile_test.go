package profile

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"satin/internal/trace"
)

const (
	ms = time.Millisecond
	us = time.Microsecond
)

// TestSpanCausality builds the canonical secure-excursion shape by hand and
// checks the parent links and the area-inheritance rule for chunks.
func TestSpanCausality(t *testing.T) {
	p := NewProfiler(2)
	p.Begin(SpanWorldSwitch, 0, -1, 10*ms, "secure-timer")
	p.Begin(SpanSecureDispatch, 0, -1, 10*ms, "")
	p.End(SpanSecureDispatch, 0, 10*ms+3*us)
	p.Begin(SpanRound, 0, 14, 10*ms+3*us, "")
	p.Complete(SpanHashChunk, 0, -1, 10*ms+3*us, 10*ms+5*us)
	p.Complete(SpanHashChunk, 0, -1, 10*ms+5*us, 10*ms+7*us)
	p.End(SpanRound, 0, 11*ms)
	p.End(SpanWorldSwitch, 0, 11*ms+2*us)

	spans := p.Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	ws, disp, round := spans[0], spans[1], spans[2]
	if ws.Parent != -1 {
		t.Errorf("world switch parent = %d, want -1 (root)", ws.Parent)
	}
	if disp.Parent != ws.ID {
		t.Errorf("dispatch parent = %d, want %d (world switch)", disp.Parent, ws.ID)
	}
	if round.Parent != ws.ID {
		t.Errorf("round parent = %d, want %d (world switch; dispatch already closed)", round.Parent, ws.ID)
	}
	for _, chunk := range spans[3:] {
		if chunk.Parent != round.ID {
			t.Errorf("chunk %d parent = %d, want %d (round)", chunk.ID, chunk.Parent, round.ID)
		}
		if chunk.Area != 14 {
			t.Errorf("chunk %d area = %d, want 14 inherited from round", chunk.ID, chunk.Area)
		}
	}
	if ws.End != 11*ms+2*us {
		t.Errorf("world switch end = %v, want %v", ws.End, 11*ms+2*us)
	}
}

// TestEvaderSharedTrack: evader spans nest on the one evader track even when
// the thread-level evader's hide and reinstall run on different cores.
func TestEvaderSharedTrack(t *testing.T) {
	p := NewProfiler(6)
	p.Begin(SpanEvaderWindow, 2, -1, 5*ms, "")
	p.Begin(SpanEvaderHide, 2, -1, 5*ms, "")
	p.End(SpanEvaderHide, 2, 8*ms)
	p.Begin(SpanEvaderReinstall, 4, -1, 9*ms, "") // different core
	p.End(SpanEvaderReinstall, 4, 12*ms)
	p.End(SpanEvaderWindow, 4, 12*ms)

	spans := p.Spans()
	window := spans[0]
	if spans[1].Parent != window.ID || spans[2].Parent != window.ID {
		t.Fatalf("hide parent %d / reinstall parent %d, want both %d",
			spans[1].Parent, spans[2].Parent, window.ID)
	}
	if window.End != 12*ms {
		t.Fatalf("window end = %v, want %v", window.End, 12*ms)
	}
}

// TestEndUnmatchedIgnored: an End with no open span of that kind must not
// corrupt the stacks or close somebody else's span.
func TestEndUnmatchedIgnored(t *testing.T) {
	p := NewProfiler(1)
	p.Begin(SpanWorldSwitch, 0, -1, 1*ms, "")
	p.End(SpanRound, 0, 2*ms) // no round open
	if got := p.Spans()[0].End; got != OpenEnd {
		t.Fatalf("world switch closed by unmatched round End (end=%v)", got)
	}
	p.End(SpanWorldSwitch, 0, 3*ms)
	if got := p.Spans()[0].End; got != 3*ms {
		t.Fatalf("world switch end = %v, want %v", got, 3*ms)
	}
}

// TestSummaryResidencyPartition: Normal + Scan + Switch must equal elapsed
// exactly, including clamped still-open spans.
func TestSummaryResidencyPartition(t *testing.T) {
	p := NewProfiler(2)
	// Core 0: one clean excursion, 2ms total, 1.5ms scanning.
	p.Begin(SpanWorldSwitch, 0, -1, 10*ms, "")
	p.Begin(SpanRound, 0, 3, 10*ms+200*us, "")
	p.End(SpanRound, 0, 10*ms+1700*us)
	p.End(SpanWorldSwitch, 0, 12*ms)
	// Core 1: an excursion still open at run end — clamped to elapsed.
	p.Begin(SpanWorldSwitch, 1, -1, 19*ms, "")

	elapsed := 20 * ms
	s := p.Summary(elapsed)
	if err := s.ResidencyCheck(); err != nil {
		t.Fatal(err)
	}
	c0 := s.Cores[0]
	if c0.Scan != 1500*us || c0.Switch != 500*us || c0.Normal != 18*ms {
		t.Fatalf("core 0 residency scan=%v switch=%v normal=%v, want 1.5ms/500µs/18ms", c0.Scan, c0.Switch, c0.Normal)
	}
	c1 := s.Cores[1]
	if c1.Normal != 19*ms || c1.Switch != 1*ms {
		t.Fatalf("core 1 residency normal=%v switch=%v, want 19ms/1ms (open span clamped)", c1.Normal, c1.Switch)
	}
	if s.WorldSwitches != 2 || s.Rounds != 1 {
		t.Fatalf("counts: %d switches %d rounds, want 2/1", s.WorldSwitches, s.Rounds)
	}
}

// TestRaceMargin: the live view is min(window) - max(round).
func TestRaceMargin(t *testing.T) {
	p := NewProfiler(1)
	p.Begin(SpanRound, 0, 1, 0, "")
	p.End(SpanRound, 0, 4*ms)
	p.Begin(SpanEvaderWindow, -1, -1, 10*ms, "")
	p.End(SpanEvaderWindow, -1, 21*ms)
	p.Begin(SpanEvaderWindow, -1, -1, 30*ms, "")
	p.End(SpanEvaderWindow, -1, 39*ms)

	margin, ok := p.Summary(50 * ms).RaceMargin()
	if !ok {
		t.Fatal("race margin not observable with a round and two windows")
	}
	if want := 9*ms - 4*ms; margin != want {
		t.Fatalf("race margin = %v, want %v", margin, want)
	}
}

// TestOnEventDetectionLatency: alarm latency counts from the last instant
// the rootkit trace became present (the last reinstall, or boot).
func TestOnEventDetectionLatency(t *testing.T) {
	p := NewProfiler(1)
	p.OnEvent(trace.Event{At: 5 * time.Second, Kind: trace.KindReinstalled, Core: -1, Area: -1})
	p.OnEvent(trace.Event{At: 8 * time.Second, Kind: trace.KindAlarm, Core: -1, Area: 14})
	s := p.Summary(10 * time.Second)
	if len(s.Latencies) != 1 || s.Latencies[0] != 3*time.Second {
		t.Fatalf("latencies = %v, want [3s]", s.Latencies)
	}
	// World-enter and round instants are subsumed by spans, not recorded.
	p.OnEvent(trace.Event{At: 9 * time.Second, Kind: trace.KindWorldEnter, Core: 0, Area: -1})
	if n := len(p.Instants()); n != 2 {
		t.Fatalf("instants = %d, want 2 (world-enter skipped)", n)
	}
}

// TestMergeSeedOrder: merging is pure summation/concatenation in input
// order, so the merged render is reproducible from per-seed parts.
func TestMergeSeedOrder(t *testing.T) {
	a := Summary{Seeds: 1, Elapsed: 10 * ms,
		Cores:  []Residency{{Core: 0, Normal: 9 * ms, Scan: 1 * ms}},
		Rounds: 2, Windows: []time.Duration{11 * ms},
		MaxRound: 2 * ms, MinWindow: 11 * ms, HasWindow: true}
	b := Summary{Seeds: 1, Elapsed: 20 * ms,
		Cores:  []Residency{{Core: 0, Normal: 18 * ms, Scan: 2 * ms}},
		Rounds: 3, Windows: []time.Duration{9 * ms},
		MaxRound: 3 * ms, MinWindow: 9 * ms, HasWindow: true}
	m := Merge([]Summary{a, b})
	if m.Seeds != 2 || m.Elapsed != 30*ms || m.Rounds != 5 {
		t.Fatalf("merge totals wrong: %+v", m)
	}
	if err := m.ResidencyCheck(); err != nil {
		t.Fatal(err)
	}
	if m.MaxRound != 3*ms || m.MinWindow != 9*ms {
		t.Fatalf("merge extremes: maxRound=%v minWindow=%v", m.MaxRound, m.MinWindow)
	}
	if len(m.Windows) != 2 || m.Windows[0] != 11*ms || m.Windows[1] != 9*ms {
		t.Fatalf("window pool order not preserved: %v", m.Windows)
	}
	if Merge([]Summary{a, b}).Render() != m.Render() {
		t.Fatal("repeated merge not byte-identical")
	}
}

// TestChromeTraceRoundTrip: the exporter's output must satisfy our own
// Perfetto-shape validator (well-formed JSON, metadata, nested X events).
func TestChromeTraceRoundTrip(t *testing.T) {
	p := NewProfiler(2)
	p.Begin(SpanWorldSwitch, 0, -1, 10*ms, "secure-timer")
	p.Begin(SpanRound, 0, 14, 10*ms+3*us, "")
	p.Complete(SpanHashChunk, 0, -1, 10*ms+3*us, 10*ms+5*us)
	p.End(SpanRound, 0, 11*ms)
	p.End(SpanWorldSwitch, 0, 11*ms+2*us)
	p.Begin(SpanEvaderWindow, -1, -1, 12*ms, "")
	p.End(SpanEvaderWindow, -1, 25*ms)
	p.OnEvent(trace.Event{At: 11 * ms, Kind: trace.KindAlarm, Core: -1, Area: 14})

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf, 30*ms); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateChromeTrace rejected our own export: %v\n%s", err, buf.String())
	}
	if n == 0 {
		t.Fatal("validator saw no events")
	}
	for _, want := range []string{`"Core 0"`, `"TZ-Evader"`, `"world-switch"`, `"displayTimeUnit":"ms"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}

// TestChromeTraceNilProfiler: a nil profiler still writes a valid, empty
// trace (the CLI path never special-cases).
func TestChromeTraceNilProfiler(t *testing.T) {
	var p *Profiler
	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf, time.Second); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	if _, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("nil profiler's trace invalid: %v", err)
	}
}

// TestValidateChromeTraceRejects: overlapping non-nested X events on one
// thread are exactly what the span model promises never to produce.
func TestValidateChromeTraceRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"overlap": `{"traceEvents":[
{"name":"a","ph":"X","ts":0,"dur":10,"pid":0,"tid":0,"cat":"span"},
{"name":"b","ph":"X","ts":5,"dur":10,"pid":0,"tid":0,"cat":"span"}]}`,
		"no-events": `{"notTraceEvents":[]}`,
		"bad-phase": `{"traceEvents":[{"name":"a","ph":"Q","pid":0,"tid":0}]}`,
	} {
		if _, err := ValidateChromeTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validator accepted malformed trace", name)
		}
	}
}

// TestNilProfilerZeroAllocs locks the detached-profiler contract: every emit
// on a nil handle is free.
func TestNilProfilerZeroAllocs(t *testing.T) {
	var p *Profiler
	e := trace.Event{At: time.Second, Kind: trace.KindAlarm, Core: -1, Area: 14}
	if n := testing.AllocsPerRun(200, func() {
		p.Begin(SpanWorldSwitch, 0, -1, 0, "")
		p.End(SpanWorldSwitch, 0, 0)
		p.Complete(SpanHashChunk, 0, -1, 0, 0)
		p.OnEvent(e)
	}); n != 0 {
		t.Fatalf("nil profiler emits allocate %v allocs/op, want 0", n)
	}
}
