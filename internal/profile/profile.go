// Package profile is the causal span layer over the simulation's virtual
// time: typed intervals (world switches, secure dispatches, introspection
// rounds, per-chunk hash walks, evader freeze→reinstall windows) with
// parent/child causality links, assembled deterministically as the run
// executes.
//
// The paper's argument is a timing race — the evader's recovery window
// against the checker's scan latency — and flat point events cannot show
// where inside a round that race is won or lost. Spans can: each one is an
// interval on a track (one secure track per core, one track for the
// evader), nested by causality (world-switch ⊃ secure-dispatch ⊃ round ⊃
// hash chunks; evader window ⊃ hide/reinstall), and carried entirely in
// integer nanoseconds of virtual time so every view derived from them is
// byte-identical across runs and worker counts.
//
// The profiler follows the repository's nil-handle discipline: every method
// returns immediately on a nil *Profiler, so components wired with
// SetProfiler pay nothing when no profiler is attached (locked by
// AllocsPerRun tests). Attached, it additionally subscribes to the obs.Bus
// to fold the existing point events in as instants — it never publishes,
// so attaching a profiler cannot change a run's event stream or goldens.
package profile

import (
	"time"

	"satin/internal/obs"
	"satin/internal/trace"
)

// SpanKind classifies a span.
type SpanKind uint8

// Span kinds, in causal nesting order.
const (
	// SpanWorldSwitch covers a full secure-world excursion on one core:
	// from the SMC/timer request through re-entry into the normal world.
	SpanWorldSwitch SpanKind = iota
	// SpanSecureDispatch is the entry half of a world switch: request to
	// payload dispatch (context save, monitor transit, injected latency).
	SpanSecureDispatch
	// SpanRound is one introspection round: area pick through verdict.
	SpanRound
	// SpanHashChunk is one chunk of a hashing walk inside a round.
	SpanHashChunk
	// SpanSnapshotChunk is one chunk of a snapshot capture inside a round.
	SpanSnapshotChunk
	// SpanEvaderWindow is a full evader evasion window: the reaction to a
	// secure entry (freeze detection) through trace reinstallation.
	SpanEvaderWindow
	// SpanEvaderHide covers the evader's cleanup: freeze reaction until
	// the rootkit trace is hidden.
	SpanEvaderHide
	// SpanEvaderReinstall covers the evader's recovery: decision to
	// reinstall until the trace is back.
	SpanEvaderReinstall

	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	SpanWorldSwitch:     "world-switch",
	SpanSecureDispatch:  "secure-dispatch",
	SpanRound:           "round",
	SpanHashChunk:       "hash-chunk",
	SpanSnapshotChunk:   "snapshot-chunk",
	SpanEvaderWindow:    "evader-window",
	SpanEvaderHide:      "evader-hide",
	SpanEvaderReinstall: "evader-reinstall",
}

// String names the kind.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "unknown"
}

// OpenEnd marks a span whose End has not been recorded yet. Summaries and
// exports clamp such spans to the run's elapsed time.
const OpenEnd = time.Duration(-1)

// Span is one typed interval of virtual time.
type Span struct {
	// ID is the span's index in the profiler's span list.
	ID int32
	// Parent is the enclosing span's ID, or -1 for a root span.
	Parent int32
	// Kind classifies the span.
	Kind SpanKind
	// Core is the core the span ran on, or -1 for the evader track.
	Core int
	// Area is the introspection area involved, or -1.
	Area int
	// Begin and End are virtual instants since boot. End is OpenEnd while
	// the span is open.
	Begin, End time.Duration
	// Detail is a free-form annotation (switch reason, reroute note).
	Detail string
}

// Duration is the span's length, clamping open spans to elapsed.
func (s Span) Duration(elapsed time.Duration) time.Duration {
	end := s.End
	if end == OpenEnd || end > elapsed {
		end = elapsed
	}
	if end < s.Begin {
		return 0
	}
	return end - s.Begin
}

// Spans live in fixed-size blocks so recording one never moves the ones
// before it — a long detection run records tens of thousands of chunk
// spans, and slice-growth copies were the profiler's whole attached
// overhead.
const (
	spanBlockShift = 13
	spanBlockSize  = 1 << spanBlockShift // 8192 spans (512 KiB) per block
	spanBlockMask  = spanBlockSize - 1
)

// Profiler collects spans and bus instants for one run. Construct with
// NewProfiler; a nil Profiler is a valid zero-cost handle on which every
// method is a no-op.
//
// Track discipline: monitor/round/chunk spans live on the owning core's
// secure track; evader spans live on one dedicated evader track (a thread
// evader's hide and reinstall may run on different cores, but the windows
// themselves are globally sequential, so they nest on a single track).
type Profiler struct {
	cores  int
	blocks [][]Span  // fixed-size span blocks, append-only
	count  int32     // total spans recorded
	flat   []Span    // lazy flattened view handed out by Spans()
	stacks [][]int32 // per track: open span IDs, innermost last
	// instants are the bus point events folded in for export (all kinds
	// except world-enter and round, which the spans subsume).
	instants []trace.Event

	// Live-derived quantities, updated as spans close.
	maxRound   time.Duration
	minWindow  time.Duration
	hasWindow  bool
	lastActive time.Duration // last instant the rootkit trace was present
	windows    []time.Duration
	latencies  []time.Duration

	// Optional registry handles (nil unless Observe was called).
	detLatHist *obs.Histogram
	windowHist *obs.Histogram
	marginG    *obs.Gauge
}

// NewProfiler returns a profiler for a platform with the given core count.
func NewProfiler(cores int) *Profiler {
	if cores < 1 {
		cores = 1
	}
	return &Profiler{
		cores:  cores,
		stacks: make([][]int32, cores+1), // +1: the evader track
	}
}

// Attached reports whether a profiler is present. Safe on nil.
func (p *Profiler) Attached() bool { return p != nil }

// evaderTrack is the index of the dedicated evader track.
func (p *Profiler) evaderTrack() int { return p.cores }

// appendSpan records s in block storage, assigning its ID.
func (p *Profiler) appendSpan(s Span) int32 {
	s.ID = p.count
	b := int(s.ID) >> spanBlockShift
	if b == len(p.blocks) {
		p.blocks = append(p.blocks, make([]Span, 0, spanBlockSize))
	}
	p.blocks[b] = append(p.blocks[b], s)
	p.count++
	p.flat = nil
	return s.ID
}

// spanAt returns the stored span with the given ID; the pointer stays valid
// for the profiler's lifetime (blocks never reallocate).
func (p *Profiler) spanAt(id int32) *Span {
	return &p.blocks[id>>spanBlockShift][id&spanBlockMask]
}

func (p *Profiler) trackFor(kind SpanKind, core int) int {
	switch kind {
	case SpanEvaderWindow, SpanEvaderHide, SpanEvaderReinstall:
		return p.evaderTrack()
	}
	if core < 0 || core >= p.cores {
		return p.evaderTrack()
	}
	return core
}

// Begin opens a span at virtual instant `at`. The parent is the innermost
// open span on the same track. detail must not force an allocation on the
// caller's hot path — pass constants or strings built only when a profiler
// is attached.
func (p *Profiler) Begin(kind SpanKind, core, area int, at time.Duration, detail string) {
	if p == nil {
		return
	}
	t := p.trackFor(kind, core)
	parent := int32(-1)
	if n := len(p.stacks[t]); n > 0 {
		parent = p.stacks[t][n-1]
	}
	id := p.appendSpan(Span{
		Parent: parent, Kind: kind, Core: core, Area: area,
		Begin: at, End: OpenEnd, Detail: detail,
	})
	p.stacks[t] = append(p.stacks[t], id)
}

// End closes the innermost open span of the given kind on the kind's track
// at virtual instant `at`. Unmatched Ends are ignored.
func (p *Profiler) End(kind SpanKind, core int, at time.Duration) {
	if p == nil {
		return
	}
	t := p.trackFor(kind, core)
	st := p.stacks[t]
	for i := len(st) - 1; i >= 0; i-- {
		sp := p.spanAt(st[i])
		if sp.Kind != kind {
			continue
		}
		sp.End = at
		p.stacks[t] = append(st[:i], st[i+1:]...)
		p.flat = nil
		p.onClose(*sp)
		return
	}
}

// Complete records a span whose duration is already known (the checker
// schedules each chunk's virtual cost up front). The parent is the
// innermost open span on the track; a negative area inherits the enclosing
// round's area, which is how per-area chunk attribution works without the
// checker knowing which area it is walking.
func (p *Profiler) Complete(kind SpanKind, core, area int, begin, end time.Duration) {
	if p == nil {
		return
	}
	t := p.trackFor(kind, core)
	parent := int32(-1)
	if n := len(p.stacks[t]); n > 0 {
		parent = p.stacks[t][n-1]
	}
	if area < 0 && parent >= 0 {
		area = p.spanAt(parent).Area
	}
	id := p.appendSpan(Span{
		Parent: parent, Kind: kind, Core: core, Area: area,
		Begin: begin, End: end,
	})
	p.onClose(*p.spanAt(id))
}

// onClose maintains the live race-margin view and the window/latency pools.
func (p *Profiler) onClose(s Span) {
	d := s.End - s.Begin
	switch s.Kind {
	case SpanRound:
		if d > p.maxRound {
			p.maxRound = d
		}
		p.updateMargin()
	case SpanEvaderWindow:
		if !p.hasWindow || d < p.minWindow {
			p.minWindow = d
			p.hasWindow = true
		}
		p.windows = append(p.windows, d)
		p.windowHist.Observe(int64(d))
		p.updateMargin()
	}
}

// updateMargin refreshes the live race-margin gauge: the narrowest evasion
// window seen so far minus the widest introspection round. A positive
// margin means every observed freeze→reinstall cycle out-lasted the
// longest round — the evader is exposed for whole checks at a time; a
// negative margin means the evader has demonstrated a recovery faster than
// the slowest scan, i.e. the race of Eq. 1/2 is genuinely open.
func (p *Profiler) updateMargin() {
	if p.marginG == nil || !p.hasWindow || p.maxRound == 0 {
		return
	}
	p.marginG.Set(int64(p.minWindow - p.maxRound))
}

// OnEvent is the bus subscription: it folds published point events in as
// instants for export and derives detection latency (alarm minus the last
// instant the rootkit trace became present). Safe on nil, so it can be
// subscribed unconditionally.
func (p *Profiler) OnEvent(e trace.Event) {
	if p == nil {
		return
	}
	switch e.Kind {
	case trace.KindWorldEnter, trace.KindRound:
		// Subsumed by SpanWorldSwitch / SpanRound.
		return
	case trace.KindReinstalled:
		p.lastActive = e.At
	case trace.KindAlarm:
		lat := e.At - p.lastActive
		p.latencies = append(p.latencies, lat)
		p.detLatHist.Observe(int64(lat))
	}
	p.instants = append(p.instants, e)
}

// Histogram bucket bounds (ns). Evasion windows live in the tens of
// milliseconds (Tns_recover draws); detection latencies in the seconds-to-
// minutes range (rounds until the dirty area is scheduled).
var (
	windowBounds = []int64{
		int64(5 * time.Millisecond), int64(10 * time.Millisecond),
		int64(20 * time.Millisecond), int64(50 * time.Millisecond),
		int64(100 * time.Millisecond), int64(200 * time.Millisecond),
		int64(500 * time.Millisecond),
	}
	latencyBounds = []int64{
		int64(1 * time.Second), int64(4 * time.Second),
		int64(16 * time.Second), int64(64 * time.Second),
		int64(128 * time.Second), int64(256 * time.Second),
	}
)

// Observe registers the profiler's derived metrics on reg:
// profile.detection_latency_ns and profile.evasion_window_ns histograms,
// and the live profile.race_margin_ns gauge. Nil-safe on both sides.
func (p *Profiler) Observe(reg *obs.Registry) {
	if p == nil {
		return
	}
	p.detLatHist = reg.Histogram("profile.detection_latency_ns", latencyBounds)
	p.windowHist = reg.Histogram("profile.evasion_window_ns", windowBounds)
	p.marginG = reg.Gauge("profile.race_margin_ns")
}

// Spans returns the recorded spans in creation order, flattened lazily from
// block storage. The slice is cached between calls — callers must not
// mutate it.
func (p *Profiler) Spans() []Span {
	if p == nil {
		return nil
	}
	if p.flat == nil && p.count > 0 {
		p.flat = make([]Span, 0, p.count)
		for _, blk := range p.blocks {
			p.flat = append(p.flat, blk...)
		}
	}
	return p.flat
}

// SpanCount reports how many spans were recorded. Safe on nil.
func (p *Profiler) SpanCount() int {
	if p == nil {
		return 0
	}
	return int(p.count)
}

// Instants returns the folded-in bus point events, in publish order.
func (p *Profiler) Instants() []trace.Event {
	if p == nil {
		return nil
	}
	return p.instants
}
