package profile

import (
	"fmt"
	"strings"
	"time"

	"satin/internal/stats"
)

// Residency is one core's virtual-time attribution. The three buckets
// partition elapsed time exactly: Normal + Scan + Switch == Elapsed, in
// integer nanoseconds, for every core.
type Residency struct {
	Core int
	// Normal is time outside any secure excursion.
	Normal time.Duration
	// Scan is time inside introspection rounds (the useful secure work).
	Scan time.Duration
	// Switch is secure-excursion time not spent scanning: context
	// save/restore, monitor transit, injected latency, dormant entries.
	Switch time.Duration
}

// Summary is the derived profile of one run (or, after Merge, of a sweep).
// Every field is computed from integer virtual-time spans, so rendering a
// Summary is byte-identical across runs and worker counts.
type Summary struct {
	// Seeds counts the runs merged into this summary (1 for a single run).
	Seeds int
	// Elapsed is the total virtual time covered (summed across seeds).
	Elapsed time.Duration
	// Cores holds per-core attribution, index == core ID.
	Cores []Residency

	// Span counts.
	WorldSwitches int
	Rounds        int
	Chunks        int

	// Windows are the evader freeze→reinstall windows, in close order
	// (concatenated seed-by-seed after Merge).
	Windows []time.Duration
	// Latencies are the detection latencies (alarm minus last instant the
	// rootkit trace became present), in alarm order.
	Latencies []time.Duration

	// MaxRound and MinWindow feed the race margin. HasWindow guards
	// MinWindow's zero value.
	MaxRound  time.Duration
	MinWindow time.Duration
	HasWindow bool
}

// RaceMargin is MinWindow - MaxRound: positive when every observed evasion
// window out-lasted the longest round, negative when the evader has
// demonstrated a recovery faster than the slowest scan. ok is false when
// either side is missing (no windows or no rounds closed).
func (s Summary) RaceMargin() (margin time.Duration, ok bool) {
	if !s.HasWindow || s.MaxRound == 0 {
		return 0, false
	}
	return s.MinWindow - s.MaxRound, true
}

// Summary derives the attribution view at the given elapsed virtual time,
// clamping any still-open spans to it.
func (p *Profiler) Summary(elapsed time.Duration) Summary {
	s := Summary{Seeds: 1, Elapsed: elapsed}
	if p == nil {
		return s
	}
	s.Cores = make([]Residency, p.cores)
	excursion := make([]time.Duration, p.cores)
	scan := make([]time.Duration, p.cores)
	for _, sp := range p.Spans() {
		d := sp.Duration(elapsed)
		switch sp.Kind {
		case SpanWorldSwitch:
			s.WorldSwitches++
			if sp.Core >= 0 && sp.Core < p.cores {
				excursion[sp.Core] += d
			}
		case SpanRound:
			s.Rounds++
			if sp.Core >= 0 && sp.Core < p.cores {
				scan[sp.Core] += d
			}
		case SpanHashChunk, SpanSnapshotChunk:
			s.Chunks++
		}
	}
	for c := 0; c < p.cores; c++ {
		r := &s.Cores[c]
		r.Core = c
		r.Scan = scan[c]
		r.Switch = excursion[c] - scan[c]
		if r.Switch < 0 {
			// A round outlived its excursion can only mean a clamping
			// artifact at run end; fold the difference into Scan.
			r.Scan = excursion[c]
			r.Switch = 0
		}
		r.Normal = elapsed - excursion[c]
	}
	s.Windows = append([]time.Duration(nil), p.windows...)
	s.Latencies = append([]time.Duration(nil), p.latencies...)
	s.MaxRound = p.maxRound
	s.MinWindow = p.minWindow
	s.HasWindow = p.hasWindow
	return s
}

// Merge folds per-seed summaries into one, preserving seed order: elapsed
// and residencies sum, window/latency pools concatenate, the race margin
// takes the tightest window against the widest round. Merging is pure
// slice iteration, so a merged summary is byte-identical no matter how
// many workers produced the inputs — the inputs themselves are collected
// into a seed-indexed slice by the sweep drivers.
func Merge(sums []Summary) Summary {
	var m Summary
	for _, s := range sums {
		m.Seeds += s.Seeds
		m.Elapsed += s.Elapsed
		for len(m.Cores) < len(s.Cores) {
			m.Cores = append(m.Cores, Residency{Core: len(m.Cores)})
		}
		for i, r := range s.Cores {
			m.Cores[i].Normal += r.Normal
			m.Cores[i].Scan += r.Scan
			m.Cores[i].Switch += r.Switch
		}
		m.WorldSwitches += s.WorldSwitches
		m.Rounds += s.Rounds
		m.Chunks += s.Chunks
		m.Windows = append(m.Windows, s.Windows...)
		m.Latencies = append(m.Latencies, s.Latencies...)
		if s.MaxRound > m.MaxRound {
			m.MaxRound = s.MaxRound
		}
		if s.HasWindow && (!m.HasWindow || s.MinWindow < m.MinWindow) {
			m.MinWindow = s.MinWindow
			m.HasWindow = true
		}
	}
	return m
}

func pct(part, whole time.Duration) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}

func distLine(name string, xs []time.Duration, unit time.Duration, suffix string) string {
	if len(xs) == 0 {
		return fmt.Sprintf("%s: none observed\n", name)
	}
	f := make([]float64, len(xs))
	for i, x := range xs {
		f[i] = float64(x) / float64(unit)
	}
	d := stats.NewDist(f)
	return fmt.Sprintf("%s: n=%d min=%.3f p50=%.3f p90=%.3f max=%.3f mean=%.3f %s\n",
		name, d.N, d.Min, d.P50, d.P90, d.Max, d.Mean, suffix)
}

// Render writes the attribution table plus the histogram-style summaries.
func (s Summary) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Per-core virtual-time attribution (%d seed(s), %v elapsed virtual time):\n", s.Seeds, s.Elapsed)
	t := stats.NewTable("core", "normal%", "scan%", "switch%", "scan", "switch")
	for _, r := range s.Cores {
		total := r.Normal + r.Scan + r.Switch
		t.AddRow(
			fmt.Sprintf("%d", r.Core),
			fmt.Sprintf("%.3f", pct(r.Normal, total)),
			fmt.Sprintf("%.3f", pct(r.Scan, total)),
			fmt.Sprintf("%.3f", pct(r.Switch, total)),
			r.Scan.String(),
			r.Switch.String(),
		)
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "world-switches=%d rounds=%d chunks=%d\n", s.WorldSwitches, s.Rounds, s.Chunks)
	sb.WriteString(distLine("evasion window", s.Windows, time.Millisecond, "ms"))
	sb.WriteString(distLine("detection latency", s.Latencies, time.Second, "s"))
	if margin, ok := s.RaceMargin(); ok {
		fmt.Fprintf(&sb, "race margin (min window - max round): %v\n", margin)
	} else {
		sb.WriteString("race margin: not observable (need both a closed round and an evasion window)\n")
	}
	return sb.String()
}

// ResidencyCheck verifies the attribution invariant: for every core,
// Normal + Scan + Switch must equal Elapsed exactly (integer ns). A
// non-nil error names the first violating core. Seeds > 1 compares against
// the summed elapsed.
func (s Summary) ResidencyCheck() error {
	for _, r := range s.Cores {
		if got := r.Normal + r.Scan + r.Switch; got != s.Elapsed {
			return fmt.Errorf("profile: core %d residency sums to %v, elapsed is %v", r.Core, got, s.Elapsed)
		}
	}
	return nil
}
