package simclock

import (
	"fmt"
	"sort"
)

// This file is the engine half of the checkpoint/fork protocol (see
// internal/checkpoint and docs/CHECKPOINT.md). Event callbacks are closures
// and cannot be serialized, so a snapshot never stores the queue itself.
// Instead every component that owns pending events reports a Claim for each
// one; a checkpoint is valid only at a *claimable instant* — when the
// engine's live pending set is exactly the union of the claims. On restore,
// a freshly constructed scenario cancels its own construction-era events and
// re-arms each claim through the owning component, in (when, seq) order, so
// the continuation fires in exactly the order the original run would have.

// PendingEvent describes one live (non-canceled) queued event, without its
// callback.
type PendingEvent struct {
	When Time
	Seq  uint64
	Name string
}

// PendingLive lists every live pending event in firing order. Canceled
// events still sitting in the heap are excluded (they would never fire).
func (e *Engine) PendingLive() []PendingEvent {
	out := make([]PendingEvent, 0, e.queue.len())
	for _, ev := range e.queue.items {
		if ev.canceled {
			continue
		}
		out = append(out, PendingEvent{When: ev.when, Seq: ev.seq, Name: ev.name})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].When != out[j].When {
			return out[i].When < out[j].When
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Claim is one component's declaration of ownership of a pending event. Owner
// names the component ("hw.timer", "core.satin", ...), Key is a component-
// chosen argument (typically a core ID) sufficient to rebuild the callback,
// and Name is the event's scheduled name, which the component uses to pick
// the right callback when one owner schedules several kinds. Seq orders
// same-instant claims at capture time; it is not stable across a restore
// (re-armed events get fresh sequence numbers in claim order, which preserves
// the firing order — the only thing outputs can observe).
//
// A Kept claim marks an event the restored scenario's own construction
// already scheduled (fault-injection DVFS/hotplug events): it is verified
// present at restore but not re-armed.
type Claim struct {
	Owner string `json:"owner"`
	Key   int64  `json:"key"`
	Name  string `json:"name"`
	When  Time   `json:"when"`
	Seq   uint64 `json:"seq"`
	Kept  bool   `json:"kept,omitempty"`
}

// Live reports whether the handle's event is still queued: neither fired nor
// canceled. Components that keep handle lists use it to prune stale entries.
func (h *Handle) Live() bool {
	return h != nil && h.ev != nil && !h.canceled && h.ev.gen == h.gen
}

// Claim builds the claim for this handle's event. It reports false if the
// event already fired or was canceled — the handle owner should then drop its
// stale reference rather than claim a dead event.
func (h *Handle) Claim(owner string, key int64) (Claim, bool) {
	if !h.Live() {
		return Claim{}, false
	}
	return Claim{Owner: owner, Key: key, Name: h.ev.name, When: h.when, Seq: h.seq}, true
}

// SortClaims orders claims by (when, seq) — capture-side firing order, the
// order restore must re-arm them in.
func SortClaims(claims []Claim) {
	sort.Slice(claims, func(i, j int) bool {
		if claims[i].When != claims[j].When {
			return claims[i].When < claims[j].When
		}
		return claims[i].Seq < claims[j].Seq
	})
}

// VerifyClaims checks that the live pending set and the claim set are the
// same multiset of events: every live event is claimed by exactly one claim
// (matched by sequence number, cross-checked on instant and name) and no
// claim is stale. A mismatch means some component schedules events the
// checkpoint protocol does not know about, so the instant is not claimable.
func (e *Engine) VerifyClaims(claims []Claim) error {
	bySeq := make(map[uint64]Claim, len(claims))
	for _, c := range claims {
		if prev, dup := bySeq[c.Seq]; dup {
			return fmt.Errorf("simclock: claims %q/%q and %q/%q both claim event seq %d",
				prev.Owner, prev.Name, c.Owner, c.Name, c.Seq)
		}
		bySeq[c.Seq] = c
	}
	live := e.PendingLive()
	for _, ev := range live {
		c, ok := bySeq[ev.Seq]
		if !ok {
			return fmt.Errorf("simclock: pending event %q at %v (seq %d) is unclaimed", ev.Name, ev.When, ev.Seq)
		}
		if c.When != ev.When || c.Name != ev.Name {
			return fmt.Errorf("simclock: claim %q/%q (at %v) does not match pending event %q at %v",
				c.Owner, c.Name, c.When, ev.Name, ev.When)
		}
		delete(bySeq, ev.Seq)
	}
	for _, c := range bySeq {
		return fmt.Errorf("simclock: claim %q/%q at %v (seq %d) matches no pending event — stale handle",
			c.Owner, c.Name, c.When, c.Seq)
	}
	return nil
}

// RestoreClock moves the clock to the checkpoint instant and restores the
// dispatch counter, the two pieces of engine state a snapshot carries. It is
// called mid-restore, after the fresh scenario's construction-era events have
// been canceled but before claims are re-armed; any live event still queued
// before the new instant would be a causality violation and is rejected.
// Canceled events below the new instant are harmless — they are lazily
// discarded without touching the clock.
func (e *Engine) RestoreClock(now Time, dispatched uint64) error {
	for _, ev := range e.queue.items {
		if !ev.canceled && ev.when < now {
			return fmt.Errorf("simclock: cannot restore clock to %v: live event %q still pending at %v", now, ev.name, ev.when)
		}
	}
	e.now = now
	e.dispatched = dispatched
	return nil
}
