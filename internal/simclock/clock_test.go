package simclock

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(1500 * time.Millisecond)
	if got := t1.Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
	if got := t1.Sub(t0); got != 1500*time.Millisecond {
		t.Errorf("Sub = %v, want 1.5s", got)
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Error("Before/After ordering wrong")
	}
	if got := t1.String(); got != "1.5s" {
		t.Errorf("String() = %q, want \"1.5s\"", got)
	}
	if got := t1.Duration(); got != 1500*time.Millisecond {
		t.Errorf("Duration() = %v, want 1.5s", got)
	}
}

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.After(30*time.Millisecond, "c", func() { order = append(order, "c") })
	e.After(10*time.Millisecond, "a", func() { order = append(order, "a") })
	e.After(20*time.Millisecond, "b", func() { order = append(order, "b") })
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != Time(30*time.Millisecond) {
		t.Errorf("Now() = %v, want 30ms", e.Now())
	}
}

func TestEngineSameInstantFiresInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Millisecond, "ev", func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of schedule order: %v", order)
		}
	}
}

func TestEngineEventsScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(time.Millisecond, "tick", tick)
		}
	}
	e.After(time.Millisecond, "tick", tick)
	e.Run()
	if count != 100 {
		t.Errorf("count = %d, want 100", count)
	}
	if e.Now() != Time(100*time.Millisecond) {
		t.Errorf("Now() = %v, want 100ms", e.Now())
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.After(10*time.Millisecond, "later", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(Time(5*time.Millisecond), "past", func() {})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.After(time.Millisecond, "doomed", func() { fired = true })
	kept := 0
	e.After(2*time.Millisecond, "kept", func() { kept++ })
	h.Cancel()
	if !h.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if kept != 1 {
		t.Error("non-canceled event did not fire")
	}
	// Cancel after run and double-cancel are no-ops.
	h.Cancel()
	var nilHandle *Handle
	nilHandle.Cancel() // must not panic
	if nilHandle.Canceled() {
		t.Error("nil handle reports canceled")
	}
}

func TestHandleWhen(t *testing.T) {
	e := NewEngine()
	h := e.After(7*time.Millisecond, "x", func() {})
	if h.When() != Time(7*time.Millisecond) {
		t.Errorf("When() = %v, want 7ms", h.When())
	}
	var nilHandle *Handle
	if nilHandle.When() != 0 {
		t.Error("nil handle When() != 0")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 9 * time.Millisecond} {
		d := d
		e.After(d, "ev", func() { fired = append(fired, d) })
	}
	e.RunUntil(Time(5 * time.Millisecond))
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (boundary inclusive)", len(fired))
	}
	if e.Now() != Time(5*time.Millisecond) {
		t.Errorf("Now() = %v, want 5ms", e.Now())
	}
	// Clock advances to the target even with no events there.
	e.RunUntil(Time(7 * time.Millisecond))
	if e.Now() != Time(7*time.Millisecond) {
		t.Errorf("Now() = %v, want 7ms", e.Now())
	}
	e.RunFor(2 * time.Millisecond)
	if len(fired) != 3 {
		t.Errorf("fired %d events after RunFor, want 3", len(fired))
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.After(time.Duration(i)*time.Millisecond, "ev", func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 (engine stopped)", count)
	}
	if !e.Stopped() {
		t.Error("Stopped() = false")
	}
	if e.Step() {
		t.Error("Step() returned true after Stop")
	}
	if e.Pending() == 0 {
		t.Error("pending events discarded by Stop; want them retained")
	}
}

func TestEventQueueHeapProperty(t *testing.T) {
	// Property: popping a queue filled with arbitrary times yields a
	// non-decreasing sequence, with ties broken by insertion order.
	f := func(delays []uint16) bool {
		var q eventQueue
		for i, d := range delays {
			q.push(&event{when: Time(d), seq: uint64(i)})
		}
		prevWhen := Time(-1)
		prevSeq := uint64(0)
		for {
			ev := q.pop()
			if ev == nil {
				break
			}
			if ev.when < prevWhen {
				return false
			}
			if ev.when == prevWhen && ev.seq < prevSeq {
				return false
			}
			prevWhen, prevSeq = ev.when, ev.seq
		}
		return q.len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminismAndStreamIndependence(t *testing.T) {
	a1 := NewRNG(42, "alpha")
	a2 := NewRNG(42, "alpha")
	b := NewRNG(42, "beta")
	sawDifferent := false
	for i := 0; i < 100; i++ {
		va1, va2, vb := a1.Uint64(), a2.Uint64(), b.Uint64()
		if va1 != va2 {
			t.Fatal("same seed+stream produced different sequences")
		}
		if va1 != vb {
			sawDifferent = true
		}
	}
	if !sawDifferent {
		t.Error("different streams produced identical sequences")
	}
}

func TestRNGDurationBetween(t *testing.T) {
	g := NewRNG(1, "t")
	lo, hi := 100*time.Microsecond, 300*time.Microsecond
	for i := 0; i < 1000; i++ {
		d := g.DurationBetween(lo, hi)
		if d < lo || d > hi {
			t.Fatalf("DurationBetween out of range: %v", d)
		}
	}
	if g.DurationBetween(lo, lo) != lo {
		t.Error("degenerate range should return lo")
	}
	defer func() {
		if recover() == nil {
			t.Error("lo > hi did not panic")
		}
	}()
	g.DurationBetween(hi, lo)
}

func TestRNGBoolProbability(t *testing.T) {
	g := NewRNG(7, "bool")
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if g.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("Bool(0.25) frequency = %v, want ~0.25", got)
	}
}

func TestDistValidate(t *testing.T) {
	cases := []struct {
		name string
		d    Dist
		ok   bool
	}{
		{"valid", Seconds(1e-6, 2e-6, 3e-6), true},
		{"degenerate", Exact(time.Microsecond), true},
		{"negative min", Dist{Min: -1, Avg: 0, Max: 1}, false},
		{"avg below min", Dist{Min: 10, Avg: 5, Max: 20}, false},
		{"avg above max", Dist{Min: 10, Avg: 30, Max: 20}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.d.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate() error = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestDistDrawBoundsAndMean(t *testing.T) {
	g := NewRNG(3, "dist")
	// Deliberately asymmetric, like the paper's A53 snapshot figures.
	d := Seconds(9.24e-9, 1.08e-8, 1.57e-8)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := d.Draw(g)
		if v < d.Min || v > d.Max {
			t.Fatalf("draw %v outside [%v, %v]", v, d.Min, d.Max)
		}
		sum += float64(v)
	}
	mean := sum / n
	if math.Abs(mean-float64(d.Avg))/float64(d.Avg) > 0.02 {
		t.Errorf("sample mean %.4g, want ~%.4g (within 2%%)", mean, float64(d.Avg))
	}
}

func TestDistDrawDegenerate(t *testing.T) {
	g := NewRNG(4, "deg")
	d := Exact(5 * time.Microsecond)
	for i := 0; i < 10; i++ {
		if got := d.Draw(g); got != 5*time.Microsecond {
			t.Fatalf("degenerate draw = %v, want 5µs", got)
		}
	}
}

func TestDistDrawProperty(t *testing.T) {
	// Property: for any ordered triple, draws stay within bounds.
	g := NewRNG(5, "prop")
	f := func(a, b, c uint32) bool {
		vals := []time.Duration{time.Duration(a), time.Duration(b), time.Duration(c)}
		// Order them.
		if vals[0] > vals[1] {
			vals[0], vals[1] = vals[1], vals[0]
		}
		if vals[1] > vals[2] {
			vals[1], vals[2] = vals[2], vals[1]
		}
		if vals[0] > vals[1] {
			vals[0], vals[1] = vals[1], vals[0]
		}
		d := Dist{Min: vals[0], Avg: vals[1], Max: vals[2]}
		for i := 0; i < 20; i++ {
			v := d.Draw(g)
			if v < d.Min || v > d.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScheduleNoHandleOrdering(t *testing.T) {
	// Schedule/ScheduleAfter interleave with At/After in strict (time, seq)
	// order: the no-handle fast path must not perturb determinism.
	e := NewEngine()
	var got []int
	e.Schedule(20, "c", func() { got = append(got, 3) })
	e.At(10, "a", func() { got = append(got, 1) })
	e.ScheduleAfter(10, "b", func() { got = append(got, 2) }) // same instant as "a", scheduled later
	e.ScheduleAfter(30, "d", func() { got = append(got, 4) })
	e.Run()
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

func TestHandleSemanticsUnderRecycling(t *testing.T) {
	// Event structs are recycled after firing. A Handle taken before the fire
	// must keep reporting its own event's fate even when the struct now hosts
	// a different event.
	e := NewEngine()
	fired := map[string]bool{}
	h1 := e.At(10, "first", func() { fired["first"] = true })
	e.Run()
	if !fired["first"] {
		t.Fatal("first event never fired")
	}
	// The recycled struct now hosts "second".
	h2 := e.At(20, "second", func() { fired["second"] = true })
	// Canceling the stale handle must not withdraw the new occupant.
	h1.Cancel()
	if h1.Canceled() {
		t.Error("cancel after fire must be a no-op")
	}
	if h1.When() != 10 {
		t.Errorf("stale handle When = %v, want its own instant 10", h1.When())
	}
	e.Run()
	if !fired["second"] {
		t.Error("stale-handle Cancel withdrew a recycled event")
	}
	if h2.Canceled() {
		t.Error("live handle reports canceled")
	}
	if h2.When() != 20 {
		t.Errorf("h2.When = %v, want 20", h2.When())
	}
}

func TestCancelChurnKeepsQueueBounded(t *testing.T) {
	// The rearm pattern (schedule far out, cancel, reschedule) used to leave
	// every canceled event in the heap until its instant passed. With
	// compaction the pending count stays proportional to the live events.
	e := NewEngine()
	fires := 0
	e.Schedule(1_000_000, "anchor", func() { fires++ })
	for i := 0; i < 10_000; i++ {
		h := e.At(Time(500_000+i), "churn", func() { t.Error("canceled event fired") })
		h.Cancel()
		if p := e.Pending(); p > 2*compactMinCanceled+2 {
			t.Fatalf("after %d cancels, %d events pending; compaction not bounding the heap", i+1, p)
		}
	}
	e.Run()
	if fires != 1 {
		t.Errorf("anchor fired %d times, want 1", fires)
	}
	if e.Pending() != 0 {
		t.Errorf("%d events pending after drain", e.Pending())
	}
}

func TestCompactionPreservesFireOrder(t *testing.T) {
	// Interleave live and canceled events so compaction triggers mid-build,
	// then verify the survivors still fire in exact (time, seq) order.
	e := NewEngine()
	var got []Time
	for i := 0; i < 500; i++ {
		when := Time((i*7919)%1000 + 1) // scrambled instants
		if i%3 == 0 {
			e.At(when, "live", func() { got = append(got, e.Now()) })
		} else {
			e.At(when, "doomed", func() { t.Error("canceled event fired") }).Cancel()
		}
	}
	e.Run()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events fired out of order: %v after %v", got[i], got[i-1])
		}
	}
	if len(got) != 167 {
		t.Errorf("fired %d live events, want 167", len(got))
	}
}

func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() {
		if n++; n < 1000 {
			e.ScheduleAfter(10, "tick", tick)
		}
	}
	e.ScheduleAfter(10, "tick", tick)
	allocs := testing.AllocsPerRun(1, func() {
		n = 0
		e.ScheduleAfter(10, "tick", tick)
		e.Run()
	})
	// The free list makes the periodic-event steady state allocation-free;
	// allow a fraction for the run's warm-up.
	if allocs > 5 {
		t.Errorf("steady-state run allocated %.0f times for 1000 events", allocs)
	}
}
