package simclock

import (
	"fmt"
	"math"
	"time"
)

// Dist is a bounded duration distribution characterized by its minimum,
// mean, and maximum — the three values the SATIN paper reports for every
// timing quantity (Tables I and II). Draws are piecewise uniform on
// [Min, Avg] and [Avg, Max] with the branch probability chosen so the
// expectation equals Avg exactly:
//
//	P(low branch) = (Max-Avg) / (Max-Min)
//
// This keeps calibrated simulations' sample means convergent to the paper's
// reported averages while respecting the reported extremes.
type Dist struct {
	Min time.Duration
	Avg time.Duration
	Max time.Duration
}

// Validate reports an error unless Min <= Avg <= Max and Min >= 0.
func (d Dist) Validate() error {
	if d.Min < 0 {
		return fmt.Errorf("simclock: Dist min %v is negative", d.Min)
	}
	if d.Avg < d.Min || d.Avg > d.Max {
		return fmt.Errorf("simclock: Dist not ordered: min %v, avg %v, max %v", d.Min, d.Avg, d.Max)
	}
	return nil
}

// Draw samples one duration, rounded to the nearest nanosecond. A degenerate
// distribution (Min == Max) always returns Min.
func (d Dist) Draw(g *RNG) time.Duration {
	if d.Max == d.Min {
		return d.Min
	}
	pLow := float64(d.Max-d.Avg) / float64(d.Max-d.Min)
	var v float64
	if g.Float64() < pLow {
		v = float64(d.Min) + g.Float64()*float64(d.Avg-d.Min)
	} else {
		v = float64(d.Avg) + g.Float64()*float64(d.Max-d.Avg)
	}
	return time.Duration(math.Round(v))
}

// FloatDist is the float-valued counterpart of Dist, used for quantities too
// fine for nanosecond quantization — chiefly per-byte inspection rates, which
// the paper reports at ~6.7–10.8 ns/byte (Table I). Sampling is the same
// mean-preserving piecewise-uniform scheme as Dist.
type FloatDist struct {
	Min float64
	Avg float64
	Max float64
}

// Validate reports an error unless Min <= Avg <= Max and Min >= 0.
func (d FloatDist) Validate() error {
	if d.Min < 0 {
		return fmt.Errorf("simclock: FloatDist min %v is negative", d.Min)
	}
	if d.Avg < d.Min || d.Avg > d.Max {
		return fmt.Errorf("simclock: FloatDist not ordered: min %v, avg %v, max %v", d.Min, d.Avg, d.Max)
	}
	return nil
}

// Draw samples one value.
func (d FloatDist) Draw(g *RNG) float64 {
	if d.Max == d.Min {
		return d.Min
	}
	pLow := (d.Max - d.Avg) / (d.Max - d.Min)
	if g.Float64() < pLow {
		return d.Min + g.Float64()*(d.Avg-d.Min)
	}
	return d.Avg + g.Float64()*(d.Max-d.Avg)
}

// Exact returns a degenerate distribution that always draws v. Useful in
// tests that need timing to be a fixed constant.
func Exact(v time.Duration) Dist { return Dist{Min: v, Avg: v, Max: v} }

// Seconds builds a Dist from floating-point seconds, matching how the paper
// reports quantities (e.g. 2.61e-4 s).
func Seconds(min, avg, max float64) Dist {
	return Dist{
		Min: time.Duration(min * float64(time.Second)),
		Avg: time.Duration(avg * float64(time.Second)),
		Max: time.Duration(max * float64(time.Second)),
	}
}
