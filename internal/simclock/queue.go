package simclock

// event is a single scheduled callback. Event structs are owned by the
// engine and recycled through a free list once they fire or are discarded;
// gen counts reuses so stale Handles (see clock.go) can detect that their
// event has moved on.
type event struct {
	when     Time
	seq      uint64
	gen      uint64
	name     string
	fn       func()
	canceled bool
	index    int // position in the heap, maintained by eventQueue
}

// eventQueue is a binary min-heap of events ordered by (when, seq). The seq
// tiebreak makes same-instant events fire in scheduling order, which is what
// keeps whole-simulation runs reproducible. The zero value is ready to use.
type eventQueue struct {
	items []*event
}

func (q *eventQueue) len() int { return len(q.items) }

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (q *eventQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *eventQueue) push(ev *event) {
	ev.index = len(q.items)
	q.items = append(q.items, ev)
	q.up(ev.index)
}

// peek returns the earliest event without removing it, or nil if empty.
func (q *eventQueue) peek() *event {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// pop removes and returns the earliest event, or nil if the queue is empty.
func (q *eventQueue) pop() *event {
	if len(q.items) == 0 {
		return nil
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.swap(0, last)
	q.items[last] = nil
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	top.index = -1
	return top
}

// compact removes every canceled event from the heap in one pass, handing
// each to recycle, then re-establishes the heap property. Firing order is
// unaffected: canceled events would never fire, and the survivors' pop
// order is fully determined by the (when, seq) comparator regardless of
// internal array layout.
func (q *eventQueue) compact(recycle func(*event)) {
	kept := q.items[:0]
	for _, ev := range q.items {
		if ev.canceled {
			recycle(ev)
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = kept
	for i, ev := range q.items {
		ev.index = i
	}
	for i := len(q.items)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			break
		}
		q.swap(i, smallest)
		i = smallest
	}
}
