package simclock

import (
	"hash/fnv"
	"math/rand/v2"
	"time"
)

// RNG is a deterministic random stream for one simulation component. Streams
// are derived from a root seed plus a stream name, so adding a new component
// (or reordering draws inside one) never perturbs the randomness any other
// component observes — the property that keeps calibrated experiments stable
// across refactors.
type RNG struct {
	r *rand.Rand
	// src is the stream's PCG source, retained so checkpointing can
	// serialize and restore the stream position (rand.Rand itself holds no
	// state beyond its source).
	src *rand.PCG
}

// NewRNG derives the stream named name from the root seed.
func NewRNG(seed uint64, name string) *RNG {
	h := fnv.New64a()
	// Writes to hash.Hash never fail.
	_, _ = h.Write([]byte(name))
	src := rand.NewPCG(seed, h.Sum64())
	return &RNG{r: rand.New(src), src: src}
}

// MarshalState serializes the stream's current position. Restoring it with
// RestoreState resumes the stream exactly where it was: the next draw after a
// restore equals the next draw after the marshal.
func (g *RNG) MarshalState() ([]byte, error) { return g.src.MarshalBinary() }

// RestoreState rewinds (or fast-forwards) the stream to a position captured
// by MarshalState.
func (g *RNG) RestoreState(state []byte) error { return g.src.UnmarshalBinary(state) }

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform value in [0, n). n must be positive.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// DurationBetween returns a uniform duration in [lo, hi]. It panics if
// lo > hi, which always indicates a mis-specified model.
func (g *RNG) DurationBetween(lo, hi time.Duration) time.Duration {
	if lo > hi {
		panic("simclock: DurationBetween with lo > hi")
	}
	if lo == hi {
		return lo
	}
	return lo + time.Duration(g.r.Int64N(int64(hi-lo)+1))
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// NormFloat64 returns a standard normal value.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }
