package simclock

import (
	"testing"
	"time"
)

// TestDispatchedCountsFiredEvents: the engine's throughput counter counts
// exactly the events that fired — canceled events never count.
func TestDispatchedCountsFiredEvents(t *testing.T) {
	e := NewEngine()
	if e.Dispatched() != 0 {
		t.Fatalf("fresh engine dispatched %d", e.Dispatched())
	}
	for i := 0; i < 5; i++ {
		e.After(time.Duration(i+1)*time.Millisecond, "tick", func() {})
	}
	canceled := e.After(10*time.Millisecond, "canceled", func() {
		t.Error("canceled event fired")
	})
	canceled.Cancel()
	e.Run()
	if e.Dispatched() != 5 {
		t.Fatalf("Dispatched() = %d, want 5", e.Dispatched())
	}
	// Rescheduling from inside a handler still counts each firing.
	n := 0
	var rearm func()
	rearm = func() {
		n++
		if n < 3 {
			e.After(time.Millisecond, "rearm", rearm)
		}
	}
	e.After(time.Millisecond, "rearm", rearm)
	e.Run()
	if e.Dispatched() != 8 {
		t.Fatalf("Dispatched() = %d after rearm chain, want 8", e.Dispatched())
	}
}
