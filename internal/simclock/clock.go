// Package simclock provides the deterministic discrete-event engine that
// drives every simulation in this repository.
//
// All timing in the SATIN reproduction is virtual: nothing sleeps, and a
// simulated second costs only as much wall time as the events scheduled
// within it. Virtual instants are represented by Time (nanoseconds since
// simulation boot) and spans by the standard time.Duration, so simulator
// code reads like ordinary Go time code while remaining fully repeatable.
//
// Determinism guarantees:
//
//   - Events fire in (time, sequence) order; two events scheduled for the
//     same instant fire in the order they were scheduled.
//   - All randomness flows through RNG streams derived from a single seed
//     (see rng.go), one named stream per component.
//   - The engine is single-goroutine; simulated concurrency (six CPU cores,
//     many threads) is modeled, never executed in parallel.
package simclock

import (
	"fmt"
	"time"
)

// Time is an instant in virtual time, expressed as nanoseconds since the
// simulation booted. The zero Time is the boot instant.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the span t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds reports t as floating-point seconds since boot.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Duration reports t as the span since boot.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String formats t like a time.Duration measured from boot, e.g. "1.5s".
func (t Time) String() string { return time.Duration(t).String() }

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct one with NewEngine.
type Engine struct {
	now        Time
	queue      eventQueue
	nextSeq    uint64
	dispatched uint64
	stopped    bool
	// free holds fired or discarded event structs for reuse, so steady-state
	// scheduling allocates nothing. Events carry a generation counter bumped
	// on recycle; Handles snapshot it so a stale Handle can never cancel the
	// struct's next occupant.
	free []*event
	// canceledPending counts canceled events still sitting in the heap.
	// When they pile up (see maybeCompact) the queue is compacted in one
	// pass so churny cancel-heavy workloads keep the heap bounded by the
	// number of live events.
	canceledPending int
}

// compactMinCanceled is the floor below which compaction is never worth the
// linear pass. Above it, compaction triggers once canceled events outnumber
// live ones (see maybeCompact).
const compactMinCanceled = 64

// NewEngine returns an engine with the clock at the boot instant and an
// empty event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// schedule validates t, fills a (possibly recycled) event struct, and pushes
// it onto the heap.
func (e *Engine) schedule(t Time, name string, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("simclock: event %q scheduled at %v, before now %v", name, t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.when = t
	ev.seq = e.nextSeq
	ev.name = name
	ev.fn = fn
	ev.canceled = false
	e.nextSeq++
	e.queue.push(ev)
	return ev
}

// recycle bumps the event's generation (invalidating outstanding Handles) and
// returns the struct to the free list with its references cleared.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.name = ""
	e.free = append(e.free, ev)
}

// At schedules fn to run at instant t. Scheduling an event in the past is a
// programming error and panics: in a discrete-event simulation a past event
// means the model is broken, and continuing would silently corrupt causality.
// The name is used in error messages and traces.
func (e *Engine) At(t Time, name string, fn func()) *Handle {
	ev := e.schedule(t, name, fn)
	return &Handle{engine: e, ev: ev, gen: ev.gen, when: t, seq: ev.seq}
}

// After schedules fn to run d after the current instant. A negative d panics
// (see At); a zero d runs after the current event completes, in scheduling
// order.
func (e *Engine) After(d time.Duration, name string, fn func()) *Handle {
	return e.At(e.now.Add(d), name, fn)
}

// Schedule is At without a cancel handle: the hot path for fire-and-forget
// events. With no Handle to allocate and the event struct drawn from the
// free list, steady-state scheduling through here allocates nothing.
func (e *Engine) Schedule(t Time, name string, fn func()) {
	e.schedule(t, name, fn)
}

// ScheduleAfter is After without a cancel handle; see Schedule.
func (e *Engine) ScheduleAfter(d time.Duration, name string, fn func()) {
	e.schedule(e.now.Add(d), name, fn)
}

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty or the engine has been stopped.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	for {
		ev := e.queue.pop()
		if ev == nil {
			return false
		}
		if ev.canceled {
			e.canceledPending--
			e.recycle(ev)
			continue
		}
		e.now = ev.when
		e.dispatched++
		fn := ev.fn
		// Recycle before firing: fn routinely schedules the next occurrence
		// of a periodic activity, and handing it this struct back keeps the
		// free list at its steady-state size. The generation bump means any
		// Handle still pointing here sees its event as gone, not reused.
		e.recycle(ev)
		fn()
		return true
	}
}

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// peekLive returns the earliest non-canceled event without firing it,
// discarding canceled events from the top of the heap along the way.
func (e *Engine) peekLive() *event {
	for {
		ev := e.queue.peek()
		if ev == nil || !ev.canceled {
			return ev
		}
		e.queue.pop()
		e.canceledPending--
		e.recycle(ev)
	}
}

// RunUntil fires events up to and including instant t, then advances the
// clock to t. Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t Time) {
	for !e.stopped {
		ev := e.peekLive()
		if ev == nil || ev.when > t {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor fires events for the span d from the current instant. It is
// shorthand for RunUntil(Now().Add(d)).
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now.Add(d))
}

// Stop halts the engine: subsequent Step/Run calls return immediately.
// Pending events stay queued so state can be inspected post mortem.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending reports the number of events currently queued, including events
// that were canceled but not yet discarded. Intended for tests and
// diagnostics.
func (e *Engine) Pending() int { return e.queue.len() }

// Dispatched reports how many events have fired since boot — the engine's
// own throughput counter, maintained unconditionally (one increment per
// event) so observability snapshots can read it without hooking the hot
// path.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Handle identifies a scheduled event and allows canceling it. Because event
// structs are recycled after firing, the Handle snapshots the event's
// generation and scheduled instant at creation; it never reads a recycled
// struct's new contents.
type Handle struct {
	engine   *Engine
	ev       *event
	gen      uint64
	when     Time
	seq      uint64
	canceled bool
}

// Cancel withdraws the event. Canceling an already-fired or already-canceled
// event is a no-op. A nil handle is also a no-op, so callers can Cancel
// unconditionally.
func (h *Handle) Cancel() {
	if h == nil || h.ev == nil || h.canceled {
		return
	}
	if h.ev.gen != h.gen {
		return // already fired and recycled
	}
	h.canceled = true
	h.ev.canceled = true
	h.engine.canceledPending++
	h.engine.maybeCompact()
}

// Canceled reports whether the event was withdrawn before firing.
func (h *Handle) Canceled() bool {
	return h != nil && h.canceled
}

// When reports the instant the event is (or was) scheduled for.
func (h *Handle) When() Time {
	if h == nil || h.ev == nil {
		return 0
	}
	return h.when
}

// maybeCompact sweeps canceled events out of the heap once they both exceed
// a fixed floor and outnumber the live events. The double condition keeps
// the amortized cost linear in the number of cancels while bounding the heap
// at roughly twice the live-event count under any cancel pattern.
func (e *Engine) maybeCompact() {
	if e.canceledPending < compactMinCanceled || e.canceledPending*2 < e.queue.len() {
		return
	}
	e.queue.compact(e.recycle)
	e.canceledPending = 0
}
