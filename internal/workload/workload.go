// Package workload provides the UnixBench-shaped benchmark suite used to
// reproduce the paper's Figure 7 (SATIN's normal-world overhead).
//
// Each workload is modeled as a CPU-bound iteration loop with a calibrated
// *warm-state penalty*: when the secure world steals the workload's core
// mid-run, the thread migrates (or waits) and then spends extra CPU time
// rebuilding its working state — caches, TLB entries, page-cache locality,
// pipe scheduling affinity — before useful iterations resume. Workloads
// whose inner loop is dominated by tiny syscalls (file copy with a 256-byte
// buffer, pipe-based context switching) have the largest penalties, which
// is exactly where the paper measures its overhead spikes (3.556% and
// 3.912%); compute-bound kernels (Dhrystone, Whetstone) barely notice.
//
// The penalties are calibrated to the paper's measured degradations — the
// substitution DESIGN.md documents: we reproduce the *mechanism* (stolen
// core time plus per-interruption disruption) and fit its one free
// parameter per workload to the published bars.
package workload

import (
	"fmt"
	"time"

	"satin/internal/richos"
)

// Spec describes one benchmark program.
type Spec struct {
	// Name matches the UnixBench program it stands in for.
	Name string
	// Quantum is the CPU time of one scored iteration.
	Quantum time.Duration
	// PausePenalty is the extra (unscored) CPU time an interruption
	// costs before useful work resumes.
	PausePenalty time.Duration
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if s.Quantum <= 0 {
		return fmt.Errorf("workload: %s quantum %v must be positive", s.Name, s.Quantum)
	}
	if s.PausePenalty < 0 {
		return fmt.Errorf("workload: %s penalty %v must be >= 0", s.Name, s.PausePenalty)
	}
	return nil
}

// UnixBench returns the twelve standard UnixBench programs with penalties
// calibrated to Figure 7.
func UnixBench() []Spec {
	// Calibration: with each core waking every 8 s, a floating task is
	// interrupted about once per 6 s — more often than the naive 1/8 s
	// because after each migration it tends to land on a core whose wake
	// is still pending in the current queue generation (the effect the
	// paper notes: "the test program happens to stay right at the
	// random-selected core more times than other cases"). Degradation is
	// therefore ≈ penalty / 6 s: Figure 7's two spikes (file copy 256 B:
	// 3.556%; pipe-based context switching: 3.912%) pin their penalties
	// near 213 ms and 235 ms, and the remaining ten programs (≈0.1%
	// each) land in single-digit milliseconds.
	q := 2 * time.Millisecond
	return []Spec{
		{Name: "dhrystone2", Quantum: q, PausePenalty: 4500 * time.Microsecond},
		{Name: "whetstone", Quantum: q, PausePenalty: 4500 * time.Microsecond},
		{Name: "execl", Quantum: q, PausePenalty: 7500 * time.Microsecond},
		{Name: "file_copy_1024B", Quantum: q, PausePenalty: 9 * time.Millisecond},
		{Name: "file_copy_256B", Quantum: q, PausePenalty: 213 * time.Millisecond},
		{Name: "file_copy_4096B", Quantum: q, PausePenalty: 7 * time.Millisecond},
		{Name: "pipe_throughput", Quantum: q, PausePenalty: 7500 * time.Microsecond},
		{Name: "context_switching", Quantum: q, PausePenalty: 235 * time.Millisecond},
		{Name: "process_creation", Quantum: q, PausePenalty: 7 * time.Millisecond},
		{Name: "shell_scripts_1", Quantum: q, PausePenalty: 5 * time.Millisecond},
		{Name: "shell_scripts_8", Quantum: q, PausePenalty: 6 * time.Millisecond},
		{Name: "syscall_overhead", Quantum: q, PausePenalty: 4500 * time.Microsecond},
	}
}

// program is the benchmark loop: score an iteration, pay any pending
// interruption penalty first.
type program struct {
	spec Spec
	// penalty is unscored CPU time owed after interruptions.
	penalty time.Duration
	// payingPenalty marks that the current compute is penalty, not work.
	payingPenalty bool
	iterations    int64
}

// Next implements richos.Program.
func (p *program) Next(*richos.ThreadContext) richos.Step {
	if p.payingPenalty {
		p.payingPenalty = false
	} else {
		p.iterations++
	}
	if p.penalty > 0 {
		d := p.penalty
		p.penalty = 0
		p.payingPenalty = true
		return richos.Compute(d)
	}
	return richos.Compute(p.spec.Quantum)
}

// CoLocationFactor is the share of the pause penalty charged to a
// co-located task when the interrupted one migrates onto its core: on a
// fully loaded system the displaced task's arrival perturbs its neighbor's
// warm state too, which is why the paper's 6-task average (0.848%) exceeds
// its 1-task average (0.711%).
const CoLocationFactor = 0.45

// Bench is a running benchmark instance: `tasks` copies of one program, as
// in the paper's 1-task and 6-task configurations.
type Bench struct {
	spec     Spec
	programs []*program
	threads  []*richos.Thread
}

// Start launches `tasks` copies of spec on the OS, floating across all
// cores like real UnixBench processes, and hooks the secure-pause
// notification to charge the warm-state penalty.
func Start(os *richos.OS, spec Spec, tasks int) (*Bench, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if tasks <= 0 {
		return nil, fmt.Errorf("workload: tasks %d must be positive", tasks)
	}
	b := &Bench{spec: spec}
	owner := make(map[*richos.Thread]*program, tasks)
	for i := 0; i < tasks; i++ {
		prog := &program{spec: spec}
		th, err := os.Spawn(fmt.Sprintf("%s-%d", spec.Name, i), richos.PolicyCFS, 0, os.AllCores(), prog)
		if err != nil {
			return nil, fmt.Errorf("workload: spawning %s: %w", spec.Name, err)
		}
		owner[th] = prog
		b.programs = append(b.programs, prog)
		b.threads = append(b.threads, th)
	}
	os.OnSecurePause(func(t *richos.Thread, _ int) {
		prog, ok := owner[t]
		if !ok {
			return
		}
		prog.penalty += spec.PausePenalty
		// Charge the co-location disturbance to a sibling, if any: the
		// migrated victim lands on (and perturbs) a busy peer's core.
		for _, sib := range b.programs {
			if sib != prog {
				sib.penalty += time.Duration(CoLocationFactor * float64(spec.PausePenalty))
				break
			}
		}
	})
	return b, nil
}

// Iterations reports the total scored iterations across all tasks.
func (b *Bench) Iterations() int64 {
	var sum int64
	for _, p := range b.programs {
		sum += p.iterations
	}
	return sum
}

// Pauses reports how many secure-world interruptions the tasks absorbed.
func (b *Bench) Pauses() int {
	n := 0
	for _, t := range b.threads {
		n += t.SecurePauses()
	}
	return n
}

// Spec returns the benchmark's spec.
func (b *Bench) Spec() Spec { return b.spec }
