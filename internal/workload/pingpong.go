package workload

import (
	"fmt"
	"time"

	"satin/internal/richos"
)

// PingPong is a structural pipe-based context-switching benchmark: two
// threads bounce a byte through a pair of richos.Pipes, each exchange
// costing two block/wake context switches — the actual shape of
// UnixBench's "Pipe-based Context Switching". Unlike the calibrated Spec
// workloads, it carries no fitted warm-state penalty: any degradation under
// SATIN is purely the structural stall of losing a core mid-exchange. The
// overhead-decomposition experiment uses it to show how much of the paper's
// 3.9% context-switching bar is structural (very little) versus
// warm-state disruption (almost all of it).
type PingPong struct {
	sides []*pingPongSide
}

type pingPongSide struct {
	in, out    *richos.Pipe
	needsWrite bool
	cost       time.Duration
	exchanges  int64
	buf        [1]byte
}

// Next implements richos.Program.
func (s *pingPongSide) Next(tc *richos.ThreadContext) richos.Step {
	for {
		if s.needsWrite {
			if _, ok := s.out.Write(tc, s.buf[:]); !ok {
				return richos.Block()
			}
			s.needsWrite = false
			s.exchanges++
			if s.cost > 0 {
				return richos.Compute(s.cost)
			}
			continue
		}
		if _, ok := s.in.Read(tc, s.buf[:]); !ok {
			return richos.Block()
		}
		s.needsWrite = true
	}
}

// StartPingPong launches `pairs` ping-pong pairs floating across all cores,
// each side computing `cost` per exchange (modeling the benchmark's
// per-iteration work).
func StartPingPong(os *richos.OS, pairs int, cost time.Duration) (*PingPong, error) {
	if pairs <= 0 {
		return nil, fmt.Errorf("workload: pairs %d must be positive", pairs)
	}
	if cost <= 0 {
		return nil, fmt.Errorf("workload: per-exchange cost %v must be positive", cost)
	}
	pp := &PingPong{}
	for i := 0; i < pairs; i++ {
		a2b, err := richos.NewPipe(os, 16)
		if err != nil {
			return nil, err
		}
		b2a, err := richos.NewPipe(os, 16)
		if err != nil {
			return nil, err
		}
		a := &pingPongSide{in: b2a, out: a2b, needsWrite: true, cost: cost}
		b := &pingPongSide{in: a2b, out: b2a, cost: cost}
		if _, err := os.Spawn(fmt.Sprintf("ping-%d", i), richos.PolicyCFS, 0, os.AllCores(), a); err != nil {
			return nil, err
		}
		if _, err := os.Spawn(fmt.Sprintf("pong-%d", i), richos.PolicyCFS, 0, os.AllCores(), b); err != nil {
			return nil, err
		}
		pp.sides = append(pp.sides, a, b)
	}
	return pp, nil
}

// Exchanges reports the total one-way messages across all pairs.
func (p *PingPong) Exchanges() int64 {
	var sum int64
	for _, s := range p.sides {
		sum += s.exchanges
	}
	return sum
}
