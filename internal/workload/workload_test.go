package workload

import (
	"testing"
	"time"

	"satin/internal/hw"
	"satin/internal/mem"
	"satin/internal/richos"
	"satin/internal/simclock"
)

func newRig(t *testing.T) (*simclock.Engine, *hw.Platform, *richos.OS) {
	t.Helper()
	e := simclock.NewEngine()
	p, err := hw.NewJunoR1(e)
	if err != nil {
		t.Fatal(err)
	}
	im, err := mem.NewJunoImage(42)
	if err != nil {
		t.Fatal(err)
	}
	os, err := richos.NewOS(p, im, richos.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return e, p, os
}

func TestUnixBenchSuite(t *testing.T) {
	specs := UnixBench()
	if len(specs) != 12 {
		t.Fatalf("suite has %d programs, want 12 (UnixBench)", len(specs))
	}
	names := make(map[string]bool)
	var worst Spec
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Errorf("duplicate program %s", s.Name)
		}
		names[s.Name] = true
		if s.PausePenalty > worst.PausePenalty {
			worst = s
		}
	}
	// Figure 7's worst case is pipe-based context switching.
	if worst.Name != "context_switching" {
		t.Errorf("worst penalty is %s, want context_switching", worst.Name)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Name: "", Quantum: time.Millisecond},
		{Name: "x", Quantum: 0},
		{Name: "x", Quantum: time.Millisecond, PausePenalty: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestStartValidation(t *testing.T) {
	_, _, os := newRig(t)
	if _, err := Start(os, Spec{Name: "x", Quantum: 0}, 1); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := Start(os, UnixBench()[0], 0); err == nil {
		t.Error("zero tasks accepted")
	}
}

func TestBenchAccumulatesIterations(t *testing.T) {
	e, _, os := newRig(t)
	b, err := Start(os, UnixBench()[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(10 * time.Second)
	// 2ms quantum on a dedicated core: ≈5000 iterations in 10s, minus
	// small scheduling costs.
	if it := b.Iterations(); it < 4700 || it > 5000 {
		t.Errorf("Iterations = %d, want ≈4950", it)
	}
	if b.Pauses() != 0 {
		t.Errorf("Pauses = %d with no secure activity", b.Pauses())
	}
	if b.Spec().Name != "dhrystone2" {
		t.Errorf("Spec().Name = %q", b.Spec().Name)
	}
}

func TestSixTasksUseAllCores(t *testing.T) {
	e, _, os := newRig(t)
	b, err := Start(os, UnixBench()[0], 6)
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(10 * time.Second)
	// Six floating tasks on six cores: ≈6x the single-task score.
	if it := b.Iterations(); it < 28000 || it > 30000 {
		t.Errorf("Iterations = %d, want ≈29700", it)
	}
}

func TestPausePenaltyReducesScore(t *testing.T) {
	// Two identical runs; in one, a core is stolen periodically. The
	// penalized run must score measurably lower, by roughly
	// pauses × penalty / quantum iterations.
	run := func(steal bool) (int64, int) {
		e, p, os := newRig(t)
		spec := Spec{Name: "victim", Quantum: 2 * time.Millisecond, PausePenalty: 100 * time.Millisecond}
		b, err := Start(os, spec, 6) // all cores busy: no free core to migrate to
		if err != nil {
			t.Fatal(err)
		}
		if steal {
			for i := 0; i < 5; i++ {
				at := time.Duration(i+1) * 4 * time.Second
				core := i % 6
				e.After(at, "steal", func() { p.Core(core).SetWorld(hw.SecureWorld) })
				e.After(at+6*time.Millisecond, "release", func() { p.Core(core).SetWorld(hw.NormalWorld) })
			}
		}
		e.RunFor(25 * time.Second)
		return b.Iterations(), b.Pauses()
	}
	clean, _ := run(false)
	dirty, pauses := run(true)
	if pauses != 5 {
		t.Fatalf("pauses = %d, want 5", pauses)
	}
	lost := clean - dirty
	// Expected loss ≈ 5 × (100ms×1.45 co-located penalty + ~6ms stall) / 2ms ≈ 380
	// iterations; allow wide tolerance for scheduling detail.
	if lost < 150 || lost > 450 {
		t.Errorf("lost %d iterations (clean %d, dirty %d), want ≈380", lost, clean, dirty)
	}
}
