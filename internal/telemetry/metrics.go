// Package telemetry is the wall-clock, process-level observability layer
// for the distributed campaign stack: metrics with Prometheus text-format
// exposition, a wall-clock span timeline exported as Chrome trace_event
// JSON, straggler/anomaly reports, and structured-logging setup.
//
// It is deliberately separate from the deterministic virtual-time pair
// `internal/obs`/`internal/profile`: those measure what happens *inside* a
// simulated universe and are part of the reproducible result surface
// (goldens include their output), while telemetry measures the machinery
// *around* the universes — lease churn, upload verification, HTTP latency,
// real seconds per cell. Telemetry is a side channel: nothing in this
// package may feed back into result bytes, and the distributed smoke tests
// pin that by scraping /metrics mid-run while still requiring the merged
// campaign file to match its committed golden byte for byte.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count with an atomic hot path.
// All methods are safe on a nil receiver (a no-op handle), mirroring
// obs.Counter so components can hold un-wired handles at zero cost.
type Counter struct{ v atomic.Int64 }

// Add increases the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value reports the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value with an atomic hot path. Nil-safe.
type Gauge struct{ v atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Value reports the stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// Histogram counts float64 observations into fixed cumulative-at-exposition
// buckets. Bounds are inclusive upper edges in ascending order; an implicit
// +Inf bucket catches the rest. The observe path is lock-free: one atomic
// add per bucket plus a CAS loop for the float sum. Nil-safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, non-cumulative
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// metric kind strings (also the Prometheus TYPE values).
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labeled instance inside a family.
type series struct {
	labels string // rendered `{k="v",...}` suffix, "" for unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   string
	bounds []float64 // histogram families only
	series map[string]*series
	order  []string // series keys in registration order (sorted at write)
}

// Registry holds the process's telemetry metrics. Registration (Counter/
// Gauge/Histogram) takes a mutex and caches the handle; the returned
// handles are the atomic hot path — hold them, don't re-look them up per
// event. The zero value is not usable; construct with NewRegistry. All
// methods are safe on a nil registry and return nil (no-op) handles.
//
// Contract: registering the same (name, labels) twice returns the first
// instance; registering a name under a different kind, or a histogram name
// with different bounds, panics — metric identity is code-static, so a
// mismatch is a programming error best caught loudly at wire-up.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns the counter `name` with the given label pairs
// ("k1", "v1", "k2", "v2", ...), creating it on first use. help is kept
// from the first registration of the family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.series(name, help, kindCounter, nil, labels).c
}

// Gauge returns the gauge `name` with the given label pairs. Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.series(name, help, kindGauge, nil, labels).g
}

// Histogram returns the histogram `name` with the given bucket bounds and
// label pairs. Every series of one family shares the family's bounds (the
// first registration wins; differing bounds panic). Nil-safe.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds must be strictly ascending", name))
		}
	}
	return r.series(name, help, kindHistogram, bounds, labels).h
}

// series resolves (name, labels) to its instance, creating the family and
// the series (with its concrete metric) under the lock as needed.
func (r *Registry) series(name, help, kind string, bounds []float64, labels []string) *series {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	key := renderLabels(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: append([]float64(nil), bounds...), series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q already registered as a %s, cannot re-register as a %s", name, f.kind, kind))
	}
	if kind == kindHistogram && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("telemetry: histogram %q already registered with different bounds", name))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// renderLabels builds the deterministic `{k="v",...}` suffix: pairs sorted
// by key, values escaped. Empty labels render as "".
func renderLabels(name string, kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: metric %q has an odd label list (want k,v pairs)", name))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if !validName(kv[i]) || strings.Contains(kv[i], ":") {
			panic(fmt.Sprintf("telemetry: metric %q has an invalid label name %q", name, kv[i]))
		}
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel splices one extra label (e.g. le) into a rendered label suffix.
func withLabel(labels, k, v string) string {
	extra := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// string, histograms as cumulative `_bucket{le=...}` plus `_sum`/`_count`.
// The output is deterministic for a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot the family/series structure under one lock; the atomic
	// values are read afterwards (each sample is individually consistent,
	// which is all a scrape promises).
	type famSnap struct {
		name, help, kind string
		bounds           []float64
		series           []*series
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]famSnap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		snap := famSnap{name: f.name, help: f.help, kind: f.kind, bounds: f.bounds}
		for _, key := range keys {
			snap.series = append(snap.series, f.series[key])
		}
		fams = append(fams, snap)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, strconv.FormatInt(s.c.Value(), 10))
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.g.Value()))
			case kindHistogram:
				cum := int64(0)
				for i, bound := range f.bounds {
					cum += s.h.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", formatFloat(bound)), cum)
				}
				cum += s.h.counts[len(f.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, formatFloat(s.h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, s.h.Count())
			}
		}
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("telemetry: writing metrics: %w", err)
	}
	return nil
}
