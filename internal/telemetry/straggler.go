package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// straggler.go distills a campaign's wall-clock record into the questions
// an operator actually asks when a 10k-cell job is slower than it should
// be: which cells were slow, which shard dragged, how much worker time was
// spent idle, and how often leases had to be reassigned.

// CellTiming is one completed cell's wall-clock cost.
type CellTiming struct {
	Index int `json:"index"`
	// Shard is the shard that reported the cell, or -1 for a local
	// (unsharded) run.
	Shard int `json:"shard"`
	// Ms is the cell's wall-clock duration in milliseconds.
	Ms float64 `json:"ms"`
}

// ShardTiming is one shard's wall-clock lease record.
type ShardTiming struct {
	Shard int `json:"shard"`
	// Leases counts how many times the shard was handed out; every lease
	// after the first is a re-lease (a worker died or went quiet).
	Leases int `json:"leases"`
	// ActiveMs is total time the shard spent under a live lease; IdleMs is
	// time it spent waiting for one (including the gap after an expiry).
	ActiveMs float64 `json:"active_ms"`
	IdleMs   float64 `json:"idle_ms"`
	Done     bool    `json:"done"`
}

// StragglerReport is the straggler/anomaly summary for one campaign.
type StragglerReport struct {
	// TimedCells counts the cells with a wall-clock record.
	TimedCells int `json:"timed_cells"`
	// SlowestCells holds the top cells by duration, slowest first.
	SlowestCells []CellTiming `json:"slowest_cells,omitempty"`
	// ReLeases totals lease reassignments across shards (0 on a healthy
	// run: every shard finished under its first lease).
	ReLeases int `json:"re_leases"`
	// SlowestShard is the shard with the most active time, or -1 when no
	// shard data exists (a local run).
	SlowestShard int `json:"slowest_shard"`
	// IdleMs totals shard idle time — wall-clock the fleet spent with a
	// shard assigned to nobody.
	IdleMs float64 `json:"idle_ms"`
	// Shards echoes the per-shard record the totals were built from.
	Shards []ShardTiming `json:"shards,omitempty"`
}

// BuildStragglerReport folds per-cell and per-shard timings into a report.
// topN bounds SlowestCells (<=0 means 5). cells and shards may each be
// empty; an entirely empty input returns nil (nothing to report).
func BuildStragglerReport(cells []CellTiming, shards []ShardTiming, topN int) *StragglerReport {
	if len(cells) == 0 && len(shards) == 0 {
		return nil
	}
	if topN <= 0 {
		topN = 5
	}
	r := &StragglerReport{TimedCells: len(cells), SlowestShard: -1}
	sorted := append([]CellTiming(nil), cells...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Ms != sorted[j].Ms {
			return sorted[i].Ms > sorted[j].Ms
		}
		return sorted[i].Index < sorted[j].Index
	})
	if len(sorted) > topN {
		sorted = sorted[:topN]
	}
	r.SlowestCells = sorted
	slowest := -1.0
	for _, sh := range shards {
		if sh.Leases > 1 {
			r.ReLeases += sh.Leases - 1
		}
		r.IdleMs += sh.IdleMs
		if sh.ActiveMs > slowest {
			slowest = sh.ActiveMs
			r.SlowestShard = sh.Shard
		}
	}
	r.Shards = append([]ShardTiming(nil), shards...)
	return r
}

// fmtMs renders a millisecond quantity compactly (1.2s past a second).
func fmtMs(ms float64) string {
	d := time.Duration(ms * float64(time.Millisecond))
	if d >= time.Second {
		return d.Truncate(10 * time.Millisecond).String()
	}
	return d.Truncate(time.Millisecond).String()
}

// Render writes the human-readable report, one indented line per fact, in
// the shape `satin-serve -status` and `benchtables -progress` print.
func (r *StragglerReport) Render(w io.Writer, indent string) {
	if r == nil {
		return
	}
	if len(r.Shards) > 0 {
		fmt.Fprintf(w, "%sstragglers: %d re-lease(s), idle %s", indent, r.ReLeases, fmtMs(r.IdleMs))
		if r.SlowestShard >= 0 {
			fmt.Fprintf(w, ", slowest shard %d", r.SlowestShard)
		}
		fmt.Fprintln(w)
		for _, sh := range r.Shards {
			state := "running"
			if sh.Done {
				state = "done"
			}
			fmt.Fprintf(w, "%s  shard %d: %d lease(s), active %s, idle %s, %s\n",
				indent, sh.Shard, sh.Leases, fmtMs(sh.ActiveMs), fmtMs(sh.IdleMs), state)
		}
	}
	if len(r.SlowestCells) > 0 {
		fmt.Fprintf(w, "%sslowest cells:", indent)
		for i, c := range r.SlowestCells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if c.Shard >= 0 {
				fmt.Fprintf(w, " %d (%s, shard %d)", c.Index, fmtMs(c.Ms), c.Shard)
			} else {
				fmt.Fprintf(w, " %d (%s)", c.Index, fmtMs(c.Ms))
			}
		}
		fmt.Fprintln(w)
	}
}
