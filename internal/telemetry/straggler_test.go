package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBuildStragglerReportEmpty(t *testing.T) {
	if r := BuildStragglerReport(nil, nil, 5); r != nil {
		t.Fatalf("empty input produced %+v", r)
	}
	var nilReport *StragglerReport
	var buf bytes.Buffer
	nilReport.Render(&buf, "  ") // must not panic
	if buf.Len() != 0 {
		t.Fatalf("nil report rendered %q", buf.String())
	}
}

func TestBuildStragglerReport(t *testing.T) {
	cells := []CellTiming{
		{Index: 0, Shard: 0, Ms: 10},
		{Index: 1, Shard: 0, Ms: 250},
		{Index: 2, Shard: 1, Ms: 250},
		{Index: 3, Shard: 1, Ms: 40},
	}
	shards := []ShardTiming{
		{Shard: 0, Leases: 1, ActiveMs: 300, IdleMs: 5, Done: true},
		{Shard: 1, Leases: 3, ActiveMs: 900, IdleMs: 120, Done: false},
	}
	r := BuildStragglerReport(cells, shards, 3)
	if r.TimedCells != 4 {
		t.Fatalf("TimedCells = %d", r.TimedCells)
	}
	if r.ReLeases != 2 {
		t.Fatalf("ReLeases = %d, want 2", r.ReLeases)
	}
	if r.SlowestShard != 1 {
		t.Fatalf("SlowestShard = %d, want 1", r.SlowestShard)
	}
	if r.IdleMs != 125 {
		t.Fatalf("IdleMs = %v, want 125", r.IdleMs)
	}
	// Sorted by Ms desc then Index asc; capped at topN.
	if len(r.SlowestCells) != 3 ||
		r.SlowestCells[0].Index != 1 || r.SlowestCells[1].Index != 2 || r.SlowestCells[2].Index != 3 {
		t.Fatalf("SlowestCells = %+v", r.SlowestCells)
	}

	var buf bytes.Buffer
	r.Render(&buf, "  ")
	out := buf.String()
	for _, want := range []string{
		"  stragglers: 2 re-lease(s)",
		"slowest shard 1",
		"  shard 0: 1 lease(s)",
		"done",
		"  shard 1: 3 lease(s)",
		"running",
		"slowest cells: 1 (250ms, shard 0), 2 (250ms, shard 1), 3 (40ms, shard 1)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	// The report must survive a JSON round trip (it rides on -status -json).
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back StragglerReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.ReLeases != r.ReLeases || len(back.SlowestCells) != len(r.SlowestCells) {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestBuildStragglerReportLocalRun(t *testing.T) {
	cells := []CellTiming{{Index: 5, Shard: -1, Ms: 1500}, {Index: 2, Shard: -1, Ms: 3}}
	r := BuildStragglerReport(cells, nil, 0) // topN<=0 defaults to 5
	if r.SlowestShard != -1 || r.ReLeases != 0 || len(r.Shards) != 0 {
		t.Fatalf("local report = %+v", r)
	}
	var buf bytes.Buffer
	r.Render(&buf, "")
	out := buf.String()
	if strings.Contains(out, "stragglers:") {
		t.Fatalf("local run should not print shard summary:\n%s", out)
	}
	if !strings.Contains(out, "slowest cells: 5 (1.5s), 2 (3ms)") {
		t.Fatalf("render = %q", out)
	}
}
