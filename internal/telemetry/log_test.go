package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("lease granted", "job", "c1", "shard", 2)
	if out := buf.String(); !strings.Contains(out, "lease granted") || !strings.Contains(out, "shard=2") {
		t.Fatalf("text output = %q", out)
	}

	buf.Reset()
	log, err = NewLogger(&buf, LogJSON)
	if err != nil {
		t.Fatal(err)
	}
	log.Warn("lease expired", "job", "c1", "shard", 0, "token", "t-1")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json output not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "lease expired" || rec["job"] != "c1" || rec["token"] != "t-1" {
		t.Fatalf("record = %v", rec)
	}
	if rec["level"] != "WARN" {
		t.Fatalf("level = %v", rec["level"])
	}

	if _, err := NewLogger(&buf, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestNopLoggerSilent(t *testing.T) {
	log := NopLogger()
	// Must not panic and must not write anywhere observable.
	log.Error("dropped", "k", "v")
	if log.Enabled(nil, slog.LevelError) {
		t.Fatal("nop logger enabled at Error")
	}
}
