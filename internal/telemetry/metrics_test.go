package telemetry

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeHistogramBasics: values accumulate; nil handles no-op.
func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("t_gauge", "help")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	h := r.Histogram("t_hist", "help", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Fatalf("hist count=%d sum=%v, want 4/106.5", h.Count(), h.Sum())
	}

	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	nilC.Inc()
	nilG.Set(1)
	nilH.Observe(1)
	if nilC.Value() != 0 || nilG.Value() != 0 || nilH.Count() != 0 {
		t.Fatal("nil handles must read zero")
	}
	var nilR *Registry
	nilR.Counter("x", "").Inc()
	if err := nilR.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil registry write: %v", err)
	}
}

// TestSameSeriesIsOneInstance: re-registering (name, labels) returns the
// first instance; different labels are distinct series.
func TestSameSeriesIsOneInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "", "job", "c1")
	b := r.Counter("dup_total", "", "job", "c1")
	if a != b {
		t.Fatal("same (name, labels) produced two instances")
	}
	other := r.Counter("dup_total", "", "job", "c2")
	if other == a {
		t.Fatal("different labels shared an instance")
	}
}

// TestKindMismatchPanics: one name, two kinds is a loud programming error.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind re-registration did not panic")
		}
	}()
	r.Gauge("clash", "")
}

// TestHistogramBoundsMismatchPanics: a family's bounds are fixed at first
// registration.
func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", "", []float64{1, 2}, "shard", "0")
	defer func() {
		if recover() == nil {
			t.Fatal("bounds mismatch did not panic")
		}
	}()
	r.Histogram("h", "", []float64{1, 3}, "shard", "1")
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels string
	value  float64
}

// parseProm is a strict parser for the subset of the Prometheus text
// format the registry emits: it fails the test on any malformed line,
// wrong TYPE declaration order, or unparseable value — the acceptance
// check that /metrics output is machine-valid, not eyeballed.
func parseProm(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = map[string]string{}
	declared := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) < 1 || parts[0] == "" {
				t.Fatalf("malformed HELP line %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type in %q", line)
			}
			if declared[parts[0]] {
				t.Fatalf("duplicate TYPE for %s", parts[0])
			}
			declared[parts[0]] = true
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("sample line %q has no value", line)
		}
		id, valText := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("sample %q value: %v", line, err)
		}
		name, labels := id, ""
		if i := strings.IndexByte(id, '{'); i >= 0 {
			name, labels = id[:i], id[i:]
			if !strings.HasSuffix(labels, "}") {
				t.Fatalf("unterminated labels in %q", line)
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) && declared[strings.TrimSuffix(name, suffix)] {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if !declared[base] {
			t.Fatalf("sample %q precedes its TYPE declaration", line)
		}
		samples = append(samples, promSample{name: name, labels: labels, value: v})
	}
	return types, samples
}

func findSample(samples []promSample, name, labels string) (float64, bool) {
	for _, s := range samples {
		if s.name == name && s.labels == labels {
			return s.value, true
		}
	}
	return 0, false
}

// TestWritePrometheusFormat: the exposition parses strictly, carries every
// registered family, and renders histograms cumulatively.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("satin_leases_granted_total", "Leases granted.").Add(3)
	r.Gauge("satin_job_cells_done", "Cells done.", "job", "c1").Set(7)
	h := r.Histogram("satin_cell_duration_seconds", "Cell wall time.", []float64{0.1, 1}, "job", "c1", "shard", "0")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	types, samples := parseProm(t, buf.String())
	if types["satin_leases_granted_total"] != "counter" ||
		types["satin_job_cells_done"] != "gauge" ||
		types["satin_cell_duration_seconds"] != "histogram" {
		t.Fatalf("types = %v", types)
	}
	if v, ok := findSample(samples, "satin_leases_granted_total", ""); !ok || v != 3 {
		t.Fatalf("counter sample = %v, %v", v, ok)
	}
	if v, ok := findSample(samples, "satin_job_cells_done", `{job="c1"}`); !ok || v != 7 {
		t.Fatalf("gauge sample = %v, %v", v, ok)
	}
	// Cumulative buckets: 0.1 → 1, 1 → 2, +Inf → 3; labels sorted (job
	// before shard) with le spliced last.
	for _, want := range []struct {
		labels string
		v      float64
	}{
		{`{job="c1",shard="0",le="0.1"}`, 1},
		{`{job="c1",shard="0",le="1"}`, 2},
		{`{job="c1",shard="0",le="+Inf"}`, 3},
	} {
		if v, ok := findSample(samples, "satin_cell_duration_seconds_bucket", want.labels); !ok || v != want.v {
			t.Fatalf("bucket %s = %v (ok=%v), want %v\n%s", want.labels, v, ok, want.v, buf.String())
		}
	}
	if v, ok := findSample(samples, "satin_cell_duration_seconds_sum", `{job="c1",shard="0"}`); !ok || math.Abs(v-5.55) > 1e-9 {
		t.Fatalf("sum = %v, %v", v, ok)
	}
	if v, ok := findSample(samples, "satin_cell_duration_seconds_count", `{job="c1",shard="0"}`); !ok || v != 3 {
		t.Fatalf("count = %v, %v", v, ok)
	}
}

// TestWritePrometheusDeterministic: two writes of the same state are
// byte-identical regardless of registration interleaving.
func TestWritePrometheusDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, job := range order {
			r.Counter("c_total", "h", "job", job).Inc()
			r.Gauge("b_gauge", "h").Set(1)
			r.Gauge("a_gauge", "h").Set(2)
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]string{"z", "a", "m"})
	b := build([]string{"m", "z", "a"})
	if a != b {
		t.Fatalf("exposition depends on registration order:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "# TYPE a_gauge gauge") {
		t.Fatalf("missing TYPE line:\n%s", a)
	}
}

// TestLabelEscaping: quotes, backslashes, and newlines survive the wire.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", "detail", "a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `esc_total{detail="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
}

// TestConcurrentHotPath: handles race-free under parallel updates and a
// concurrent scrape (run with -race).
func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "")
	h := r.Histogram("hot_seconds", "", []float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
			// Concurrent registration of new series must not upset a scrape.
			r.Counter("hot_total", "", "job", strconv.Itoa(j)).Inc()
		}
	}()
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d", c.Value(), h.Count())
	}
}
