package telemetry

import (
	"fmt"
	"io"
	"log/slog"
)

// log.go standardizes structured logging for the distributed campaign
// binaries: every satin-serve mode (and the benchtables worker path) logs
// through a slog.Logger built here, with job/shard/worker/lease fields
// attached at the call sites, so a fleet's logs are grep-able by cell and
// machine-parseable when shipped.

// Log formats accepted by NewLogger (the `-log-format` flag values).
const (
	LogText = "text"
	LogJSON = "json"
)

// NewLogger builds a structured logger writing to w in the given format
// ("text" or "json"). An empty format means text. Timestamps are kept —
// this is wall-clock territory by definition.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case "", LogText:
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want %s or %s)", format, LogText, LogJSON)
	}
}

// NopLogger returns a logger that discards everything — the default for
// components whose caller did not wire logging, so call sites never need a
// nil check.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}
