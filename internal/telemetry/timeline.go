package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// timeline.go renders wall-clock spans in the Chrome trace_event JSON
// format — the same "traceEvents" array ui.perfetto.dev and
// chrome://tracing load, and the same structural invariants
// profile.ValidateChromeTrace checks (`satin-sim -lint-chrome`). Where
// internal/profile plots virtual time inside one simulated universe, this
// writer plots real seconds across a distributed campaign: the coordinator
// maps jobs, shards, leases, cells, and merges onto processes and tracks.
//
// Mapping:
//
//   - pid = one per distinct Span.Process, in first-appearance order
//   - tid = one per distinct Span.Thread inside a process, ditto
//   - "X" events = spans (ts/dur in microseconds of wall-clock time,
//     relative to the caller's chosen zero)
//   - "M" events = process_name / thread_name metadata
//
// The file is written by hand (no maps, fixed field order, fixed float
// formatting) so an export depends only on the span list.

// Span is one wall-clock interval on a named track.
type Span struct {
	// Process and Thread name the track. All spans sharing a Process share
	// a trace pid; all sharing (Process, Thread) share a tid.
	Process string
	Thread  string
	// Name is the span label; Detail an optional annotation.
	Name   string
	Detail string
	// Begin and End are offsets from the timeline zero. Spans on one
	// (Process, Thread) track must nest (overlap only by containment) —
	// that is the validator's invariant, and the caller's layout duty.
	Begin, End time.Duration
	// Open marks a span still running at export time; its End is the
	// caller's clamp instant and the event is annotated "clamped".
	Open bool
}

// wallUsec renders a wall-clock offset as trace_event microseconds with
// fixed millinanosecond precision, matching the profile exporter.
func wallUsec(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Microsecond))
}

func jsonEscape(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// WriteChromeTrace writes the spans as trace_event JSON. Track ids are
// assigned by first appearance, so the output is a pure function of the
// span slice.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	// Assign pids/tids by first appearance and emit the metadata up front.
	pidOf := map[string]int{}
	type track struct{ process, thread string }
	tidOf := map[track]int{}
	tidNext := map[string]int{}
	var metaLines []string
	for _, sp := range spans {
		if _, ok := pidOf[sp.Process]; !ok {
			pid := len(pidOf)
			pidOf[sp.Process] = pid
			metaLines = append(metaLines, fmt.Sprintf(
				`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
				pid, jsonEscape(sp.Process)))
		}
		tk := track{sp.Process, sp.Thread}
		if _, ok := tidOf[tk]; !ok {
			tid := tidNext[sp.Process]
			tidNext[sp.Process]++
			tidOf[tk] = tid
			metaLines = append(metaLines, fmt.Sprintf(
				`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				pidOf[sp.Process], tid, jsonEscape(sp.Thread)))
		}
	}
	for _, line := range metaLines {
		emit(line)
	}

	for _, sp := range spans {
		begin, end := sp.Begin, sp.End
		if begin < 0 {
			begin = 0
		}
		if end < begin {
			end = begin
		}
		line := fmt.Sprintf(`{"name":%s,"cat":"wall","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{`,
			jsonEscape(sp.Name), wallUsec(begin), wallUsec(end-begin),
			pidOf[sp.Process], tidOf[track{sp.Process, sp.Thread}])
		sep := ""
		if sp.Detail != "" {
			line += `"detail":` + jsonEscape(sp.Detail)
			sep = ","
		}
		if sp.Open {
			line += sep + `"clamped":true`
		}
		line += "}}"
		emit(line)
	}

	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("telemetry: writing chrome trace: %w", err)
	}
	return nil
}
