package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"satin/internal/profile"
)

func sampleSpans() []Span {
	return []Span{
		{Process: "campaign c1", Thread: "job", Name: "job c1", Begin: 0, End: 100 * time.Millisecond},
		{Process: "campaign c1", Thread: "shard 0", Name: "lease #1", Detail: "worker w1", Begin: 5 * time.Millisecond, End: 60 * time.Millisecond},
		{Process: "campaign c1", Thread: "shard 0", Name: "cell 0", Begin: 6 * time.Millisecond, End: 30 * time.Millisecond},
		{Process: "campaign c1", Thread: "shard 0", Name: "cell 1", Begin: 30 * time.Millisecond, End: 59 * time.Millisecond},
		{Process: "campaign c1", Thread: "merge", Name: "merge", Begin: 90 * time.Millisecond, End: 100 * time.Millisecond},
	}
}

// TestWriteChromeTracePassesLint: the wall-clock exporter's output must
// satisfy the same structural validator as the virtual-time profiler
// (the -lint-chrome machinery) — valid JSON, metadata before events,
// nested spans per track.
func TestWriteChromeTracePassesLint(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if n, err := profile.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("trace fails -lint-chrome validation: %v\n%s", err, buf.String())
	} else if n == 0 {
		t.Fatal("validator saw zero events")
	}
}

// TestWriteChromeTraceContent: track assignment, args, and clamping.
func TestWriteChromeTraceContent(t *testing.T) {
	spans := sampleSpans()
	spans = append(spans, Span{
		Process: "campaign c1", Thread: "shard 1", Name: "lease #1",
		Begin: -5 * time.Millisecond, End: 2 * time.Millisecond, Open: true,
	})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var metas, events int
	threadTids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
			if ev.Name == "thread_name" {
				var args struct {
					Name string `json:"name"`
				}
				if err := json.Unmarshal(ev.Args, &args); err != nil {
					t.Fatal(err)
				}
				threadTids[args.Name] = ev.Tid
			}
		case "X":
			events++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// 1 process + 4 threads (job, shard 0, merge, shard 1).
	if metas != 5 {
		t.Fatalf("meta events = %d, want 5", metas)
	}
	if events != len(spans) {
		t.Fatalf("X events = %d, want %d", events, len(spans))
	}
	// tids assigned in first-appearance order within the process.
	want := map[string]int{"job": 0, "shard 0": 1, "merge": 2, "shard 1": 3}
	for name, tid := range want {
		if threadTids[name] != tid {
			t.Fatalf("thread %q tid = %d, want %d (%v)", name, threadTids[name], tid, threadTids)
		}
	}
	// Negative begin clamps to 0; Open span is annotated.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Tid == want["shard 1"] {
			if ev.Ts != 0 {
				t.Fatalf("clamped span ts = %v, want 0", ev.Ts)
			}
			if !strings.Contains(string(ev.Args), `"clamped":true`) {
				t.Fatalf("open span missing clamped arg: %s", ev.Args)
			}
		}
	}
	// Detail annotation survives.
	if !strings.Contains(buf.String(), `"detail":"worker w1"`) {
		t.Fatalf("missing detail arg:\n%s", buf.String())
	}
}

// TestWriteChromeTraceDeterministic: identical span lists produce
// byte-identical files.
func TestWriteChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same spans differ")
	}
}

// TestWriteChromeTraceEmpty: an empty span list is still a valid trace.
func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := profile.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("empty trace invalid: %v\n%s", err, buf.String())
	}
}
