package core

import (
	"time"

	"satin/internal/simclock"
)

// WakeQueue implements §V-D's multi-core collaboration: a queue of n
// wake-up times in secure memory, randomly assigned to the n cores. Each
// core, when it wakes, extracts its assigned slot to program its own secure
// timer for the next generation — no cross-core interrupts, so the normal
// world never sees which core wakes next or when. When all n slots are
// extracted, the queue refreshes with n new times and a new random
// assignment.
//
// Times within a generation are spaced tp apart (plus the ±tp uniform
// deviation of §V-C when enabled), so system-wide the average gap between
// consecutive introspection rounds is tp while any individual gap ranges
// over [0, 2·tp].
type WakeQueue struct {
	tp        time.Duration
	deviation bool
	rng       *simclock.RNG

	slots      []simclock.Time
	assignment []int // assignment[coreID] = slot index
	taken      []bool
	horizon    simclock.Time // end of the current generation's schedule
	refreshes  int
}

// NewWakeQueue builds the queue for n cores and seeds the first generation
// starting at now — the trusted-boot initialization of §V-C.
func NewWakeQueue(n int, tp time.Duration, deviation bool, rng *simclock.RNG, now simclock.Time) *WakeQueue {
	q := &WakeQueue{tp: tp, deviation: deviation, rng: rng}
	q.slots = make([]simclock.Time, n)
	q.assignment = make([]int, n)
	q.taken = make([]bool, n)
	q.horizon = now
	q.refresh()
	q.refreshes = 0
	return q
}

// refresh generates n new wake times continuing from the horizon and a new
// random core→slot assignment.
func (q *WakeQueue) refresh() {
	base := q.horizon
	for k := range q.slots {
		t := base.Add(time.Duration(k+1) * q.tp)
		if q.deviation {
			// td uniform in [-tp, +tp] (§V-C).
			dev := time.Duration((q.rng.Float64()*2 - 1) * float64(q.tp))
			t = t.Add(dev)
		}
		if t.Before(base) {
			t = base
		}
		q.slots[k] = t
	}
	perm := q.rng.Perm(len(q.slots))
	copy(q.assignment, perm)
	for i := range q.taken {
		q.taken[i] = false
	}
	q.horizon = base.Add(time.Duration(len(q.slots)) * q.tp)
	q.refreshes++
}

// Next extracts the wake time assigned to slot owner `owner` (a
// participating core's index). If the owner's slot in the current
// generation is already taken, the queue refreshes first (every owner
// extracts exactly once per generation, so a second request means a new
// generation has begun). The returned time is never before now: a deviation
// that landed in the past is clamped, matching a timer whose condition is
// already met firing immediately.
func (q *WakeQueue) Next(owner int, now simclock.Time) simclock.Time {
	slot := q.assignment[owner]
	if q.taken[slot] {
		q.refresh()
		slot = q.assignment[owner]
	}
	q.taken[slot] = true
	t := q.slots[slot]
	if t.Before(now) {
		t = now
	}
	return t
}

// Pending reports how many slots of the current generation are still
// unextracted — the queue depth an observability gauge tracks.
func (q *WakeQueue) Pending() int {
	n := 0
	for _, tk := range q.taken {
		if !tk {
			n++
		}
	}
	return n
}

// AllTaken reports whether the current generation is exhausted.
func (q *WakeQueue) AllTaken() bool {
	for _, tk := range q.taken {
		if !tk {
			return false
		}
	}
	return true
}

// Refreshes reports how many generations have been regenerated after boot.
func (q *WakeQueue) Refreshes() int { return q.refreshes }
