package core

import (
	"fmt"
	"sort"

	"satin/internal/simclock"
)

// Checkpoint support. SATIN's pending events are the per-core secure timer
// fires (owned by hw.Core) and, under hotplug fault plans, the re-routed
// wake events in the orphans map — the only events this service claims
// itself. Everything else is pure state: the area set, the wake queue, the
// round/alarm record, and the selection RNG.

// ClaimOwnerSATIN names SATIN's re-routed wake claims in a checkpoint.
const ClaimOwnerSATIN = "core.satin"

// SATINState is the service's state at a claimable instant.
type SATINState struct {
	RNG             []byte          `json:"rng"`
	AreaRemaining   []int           `json:"area_remaining"`
	AreaRefills     int             `json:"area_refills"`
	QueueSlots      []simclock.Time `json:"queue_slots"`
	QueueAssignment []int           `json:"queue_assignment"`
	QueueTaken      []bool          `json:"queue_taken"`
	QueueHorizon    simclock.Time   `json:"queue_horizon"`
	QueueRefreshes  int             `json:"queue_refreshes"`
	Rounds          []Round         `json:"rounds"`
	Alarms          []Alarm         `json:"alarms"`
	Uncovered       []int           `json:"uncovered"`
	Reroutes        int             `json:"reroutes"`
}

// CheckpointState captures the service's state.
func (s *SATIN) CheckpointState() (SATINState, error) {
	if !s.started {
		return SATINState{}, fmt.Errorf("core: checkpointing a SATIN that was never started")
	}
	rng, err := s.rng.MarshalState()
	if err != nil {
		return SATINState{}, fmt.Errorf("core: marshaling SATIN rng: %w", err)
	}
	uncovered := make([]int, 0, len(s.uncovered))
	for owner := range s.uncovered {
		uncovered = append(uncovered, owner)
	}
	sort.Ints(uncovered)
	return SATINState{
		RNG:             rng,
		AreaRemaining:   append([]int(nil), s.areaSet.remaining...),
		AreaRefills:     s.areaSet.refills,
		QueueSlots:      append([]simclock.Time(nil), s.queue.slots...),
		QueueAssignment: append([]int(nil), s.queue.assignment...),
		QueueTaken:      append([]bool(nil), s.queue.taken...),
		QueueHorizon:    s.queue.horizon,
		QueueRefreshes:  s.queue.refreshes,
		Rounds:          append([]Round(nil), s.rounds...),
		Alarms:          append([]Alarm(nil), s.alarms...),
		Uncovered:       uncovered,
		Reroutes:        s.reroutes,
	}, nil
}

// Claims reports SATIN's pending re-routed wake events, in slot-owner order.
func (s *SATIN) Claims() ([]simclock.Claim, error) {
	owners := make([]int, 0, len(s.orphans))
	for owner := range s.orphans {
		owners = append(owners, owner)
	}
	sort.Ints(owners)
	var claims []simclock.Claim
	for _, owner := range owners {
		c, ok := s.orphans[owner].Claim(ClaimOwnerSATIN, int64(owner))
		if !ok {
			return nil, fmt.Errorf("core: orphan slot %d holds a stale handle", owner)
		}
		claims = append(claims, c)
	}
	return claims, nil
}

// RestoreState overwrites the service's state with a captured one. SATIN
// schedules no events at construction (the secure timers it programs belong
// to hw.Core), so there is nothing to cancel; re-routed wakes from the
// snapshot are re-armed afterwards via RearmOrphan.
func (s *SATIN) RestoreState(st SATINState) error {
	if !s.started {
		return fmt.Errorf("core: restoring into a SATIN that was never started")
	}
	if len(s.orphans) != 0 {
		return fmt.Errorf("core: restoring into a SATIN with %d live re-routed wakes", len(s.orphans))
	}
	if len(st.QueueSlots) != len(s.queue.slots) {
		return fmt.Errorf("core: snapshot wake queue has %d slots, scenario has %d", len(st.QueueSlots), len(s.queue.slots))
	}
	if err := s.rng.RestoreState(st.RNG); err != nil {
		return fmt.Errorf("core: restoring SATIN rng: %w", err)
	}
	s.areaSet.remaining = append(s.areaSet.remaining[:0], st.AreaRemaining...)
	s.areaSet.refills = st.AreaRefills
	copy(s.queue.slots, st.QueueSlots)
	copy(s.queue.assignment, st.QueueAssignment)
	copy(s.queue.taken, st.QueueTaken)
	s.queue.horizon = st.QueueHorizon
	s.queue.refreshes = st.QueueRefreshes
	s.rounds = append(s.rounds[:0], st.Rounds...)
	s.alarms = append(s.alarms[:0], st.Alarms...)
	s.uncovered = make(map[int]bool, len(st.Uncovered))
	for _, owner := range st.Uncovered {
		s.uncovered[owner] = true
	}
	s.reroutes = st.Reroutes
	s.queueDepth.Set(int64(s.queue.Pending()))
	return nil
}

// RearmOrphan reschedules one claimed re-routed wake at its recorded
// instant, rebuilding the callback scheduleOrphan (or its retry path) would
// have installed.
func (s *SATIN) RearmOrphan(claim simclock.Claim) error {
	owner := int(claim.Key)
	if owner < 0 || owner >= len(s.partCores) {
		return fmt.Errorf("core: re-routed wake claim for unknown slot owner %d", owner)
	}
	if s.orphans[owner] != nil {
		return fmt.Errorf("core: slot owner %d already has a re-routed wake", owner)
	}
	slotName := fmt.Sprintf("satin-reroute-slot%d", owner)
	retryName := fmt.Sprintf("satin-reroute-retry%d", owner)
	if claim.Name != slotName && claim.Name != retryName {
		return fmt.Errorf("core: claim names %q, want %q or %q", claim.Name, slotName, retryName)
	}
	s.orphans[owner] = s.platform.Engine().At(claim.When, claim.Name, func() {
		s.coverOrphan(owner)
	})
	return nil
}
