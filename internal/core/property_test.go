package core

import (
	"testing"
	"testing/quick"
	"time"

	"satin/internal/simclock"
)

// TestWakeQueueProperties drives the queue through arbitrary extraction
// patterns and checks the coordination invariants §V-D requires:
//
//  1. within one generation every owner gets a distinct slot;
//  2. wake times never precede the caller's `now`;
//  3. generations advance the schedule (the horizon grows by n*tp each
//     refresh), so rounds never stall.
func TestWakeQueueProperties(t *testing.T) {
	f := func(seed uint64, nOwners uint8, gens uint8) bool {
		n := int(nOwners%6) + 1
		generations := int(gens%5) + 1
		tp := time.Second
		rng := simclock.NewRNG(seed, "wq-prop")
		q := NewWakeQueue(n, tp, true, rng, 0)
		now := simclock.Time(0)
		for g := 0; g < generations; g++ {
			seen := make(map[simclock.Time]bool, n)
			var genMax simclock.Time
			for owner := 0; owner < n; owner++ {
				w := q.Next(owner, now)
				if w.Before(now) {
					return false // invariant 2
				}
				// Distinctness: clamped times can collide only at `now`;
				// un-clamped assigned times must be distinct.
				if w != now && seen[w] {
					return false // invariant 1
				}
				seen[w] = true
				if w.After(genMax) {
					genMax = w
				}
			}
			if !q.AllTaken() {
				return false
			}
			// Advance roughly through the generation.
			if genMax.After(now) {
				now = genMax
			}
		}
		// invariant 3: refreshes happened as generations were consumed.
		return q.Refreshes() == generations-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAreaSetProperties checks the without-replacement selection for
// arbitrary set sizes: every pass is a permutation of all areas.
func TestAreaSetProperties(t *testing.T) {
	f := func(seed uint64, size uint8, passes uint8) bool {
		n := int(size%40) + 1
		p := int(passes%4) + 1
		s := NewAreaSet(n, simclock.NewRNG(seed, "as-prop"))
		for pass := 0; pass < p; pass++ {
			seen := make(map[int]bool, n)
			for i := 0; i < n; i++ {
				a := s.Pick()
				if a < 0 || a >= n || seen[a] {
					return false
				}
				seen[a] = true
			}
		}
		return s.Refills() == p-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestRaceBoundMonotonicity: Equation 2's bound grows with the attacker's
// latencies and shrinks with defender speed — the direction every design
// argument in §V leans on.
func TestRaceBoundMonotonicity(t *testing.T) {
	base := RaceBound(DefaultTnsSched, DefaultTnsThreshold, DefaultTnsRecover, DefaultTsSwitch, DefaultTsPerByte)
	slowerAttacker := RaceBound(DefaultTnsSched, DefaultTnsThreshold, DefaultTnsRecover+time.Millisecond, DefaultTsSwitch, DefaultTsPerByte)
	if slowerAttacker <= base {
		t.Error("slower recovery should widen the safe-area bound")
	}
	fasterDefender := RaceBound(DefaultTnsSched, DefaultTnsThreshold, DefaultTnsRecover, DefaultTsSwitch, DefaultTsPerByte/2)
	if fasterDefender <= base {
		t.Error("faster per-byte inspection should widen the bound")
	}
	tighterProber := RaceBound(DefaultTnsSched, DefaultTnsThreshold/2, DefaultTnsRecover, DefaultTsSwitch, DefaultTsPerByte)
	if tighterProber >= base {
		t.Error("a faster prober should shrink the bound")
	}
}
