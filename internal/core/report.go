package core

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"satin/internal/simclock"
)

// SignedAlarm is one alarm record as delivered off the device: the alarm's
// facts plus an HMAC-SHA256 tag computed with a secure-world key, so "the
// server side or the device user" (§V-B) can verify the report was produced
// by the secure world and not forged or tampered with by the compromised
// rich OS that has to carry it off the device.
type SignedAlarm struct {
	// Sequence numbers make suppression detectable: a gap in the sequence
	// the server receives means the rich OS dropped a report.
	Sequence uint64
	Round    int
	Area     int
	At       simclock.Time
	// Sum is the offending hash the checker observed.
	Sum uint64
	// Tag authenticates all of the above.
	Tag [sha256.Size]byte
}

// alarmBytes serializes the authenticated fields.
func alarmBytes(seq uint64, a Alarm, sum uint64) []byte {
	buf := make([]byte, 0, 40)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.Round))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.Area))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.At))
	buf = binary.LittleEndian.AppendUint64(buf, sum)
	return buf
}

// Reporter signs alarms with a secure-world key. It lives in the secure
// world: the normal world never sees the key, only the signed records it is
// asked to transport.
type Reporter struct {
	key      []byte
	sequence uint64
	log      []SignedAlarm
}

// NewReporter creates a reporter with the given device key (provisioned
// during the trusted boot). The key must be non-empty.
func NewReporter(key []byte) (*Reporter, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("core: reporter needs a non-empty key")
	}
	r := &Reporter{key: append([]byte(nil), key...)}
	return r, nil
}

// Attach subscribes the reporter to a SATIN instance's alarms.
func (r *Reporter) Attach(s *SATIN) {
	s.OnAlarm(func(a Alarm) {
		sum := uint64(0)
		if a.Round < len(s.Rounds()) {
			sum = s.Rounds()[a.Round].Sum
		}
		r.Sign(a, sum)
	})
}

// Sign produces and logs the signed record for an alarm.
func (r *Reporter) Sign(a Alarm, sum uint64) SignedAlarm {
	rec := SignedAlarm{
		Sequence: r.sequence,
		Round:    a.Round,
		Area:     a.Area,
		At:       a.At,
		Sum:      sum,
	}
	mac := hmac.New(sha256.New, r.key)
	// Writes to hash.Hash never fail.
	_, _ = mac.Write(alarmBytes(rec.Sequence, a, sum))
	copy(rec.Tag[:], mac.Sum(nil))
	r.sequence++
	r.log = append(r.log, rec)
	return rec
}

// Reports returns every signed record, in sequence order.
func (r *Reporter) Reports() []SignedAlarm { return r.log }

// VerifyAlarm checks a record's tag against the key — what the receiving
// server does. It returns false for any tampered field or wrong key.
func VerifyAlarm(key []byte, rec SignedAlarm) bool {
	mac := hmac.New(sha256.New, key)
	_, _ = mac.Write(alarmBytes(rec.Sequence, Alarm{Round: rec.Round, Area: rec.Area, At: rec.At}, rec.Sum))
	return hmac.Equal(mac.Sum(nil), rec.Tag[:])
}

// VerifySequence checks a batch for completeness: records must be in
// sequence order starting at `from` with no gaps — a gap means the
// compromised transport dropped an alarm.
func VerifySequence(from uint64, recs []SignedAlarm) error {
	want := from
	for i, rec := range recs {
		if rec.Sequence != want {
			return fmt.Errorf("core: report %d has sequence %d, want %d (suppressed alarm?)", i, rec.Sequence, want)
		}
		want++
	}
	return nil
}
