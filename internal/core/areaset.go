package core

import (
	"satin/internal/simclock"
)

// AreaSet implements §V-B's pseudo-random area selection without
// replacement: each round draws a uniformly random remaining area; when the
// set empties it is refilled with all areas. Every m consecutive rounds
// therefore cover the entire kernel exactly once, while the normal world
// cannot predict which area any given round will touch.
type AreaSet struct {
	total     int
	remaining []int
	rng       *simclock.RNG
	refills   int
}

// NewAreaSet builds a set over areas 0..total-1.
func NewAreaSet(total int, rng *simclock.RNG) *AreaSet {
	s := &AreaSet{total: total, rng: rng}
	s.refill()
	s.refills = 0 // the initial fill is not a refill
	return s
}

func (s *AreaSet) refill() {
	s.remaining = make([]int, s.total)
	for i := range s.remaining {
		s.remaining[i] = i
	}
	s.refills++
}

// Pick removes and returns a uniformly random remaining area index,
// refilling first if the set is empty (setarea == NULL in the paper's
// notation).
func (s *AreaSet) Pick() int {
	if len(s.remaining) == 0 {
		s.refill()
	}
	i := s.rng.IntN(len(s.remaining))
	area := s.remaining[i]
	last := len(s.remaining) - 1
	s.remaining[i] = s.remaining[last]
	s.remaining = s.remaining[:last]
	return area
}

// Remaining reports how many areas are left in the current pass.
func (s *AreaSet) Remaining() int { return len(s.remaining) }

// Refills reports how many times the set has been refilled — the number of
// completed full-kernel passes.
func (s *AreaSet) Refills() int { return s.refills }
