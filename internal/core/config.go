// Package core implements SATIN — the paper's contribution: a Secure and
// Trustworthy Asynchronous INtrospection mechanism for multi-core ARM
// TrustZone platforms that defeats the TZ-Evader evasion attack (§V).
//
// SATIN wins the race of Equation 1 from the defender's side by making
// every introspection round too short to evade and its schedule impossible
// to predict or exploit:
//
//   - The integrity-checking module divides the kernel into areas small
//     enough (Equation 2) that one area is fully checked before the evader
//     can detect the secure entry and scrub its trace, and picks areas
//     pseudo-randomly without replacement so coverage is guaranteed every m
//     rounds while the next target stays unpredictable.
//   - The self-activation module wakes the secure world from per-core
//     secure timers the normal world cannot read or disturb, at times
//     drawn as tp ± uniform deviation, so wake-ups are unpredictable.
//   - Multi-core collaboration rotates rounds across all cores through a
//     wake-up time queue in secure memory (no cross-core interrupts, which
//     a prober could observe), so the checking core is unpredictable too.
package core

import (
	"fmt"
	"time"

	"satin/internal/introspect"
)

// Paper-calibrated race parameters (§IV-C): the inputs to Equation 2's
// area-size bound.
const (
	// DefaultTnsSched is the evader's probing interval Tns_sched.
	DefaultTnsSched = 200 * time.Microsecond
	// DefaultTnsThreshold is the worst-case (largest, i.e. slowest to
	// trip) probing threshold the paper measured.
	DefaultTnsThreshold = 1800 * time.Microsecond
	// DefaultTnsRecover is the attacker's worst-case trace recovery time.
	DefaultTnsRecover = 6130 * time.Microsecond
	// DefaultTsSwitch is the world-switch cost.
	DefaultTsSwitch = 3600 * time.Nanosecond
	// DefaultTsPerByte is the fastest per-byte inspection rate (A57).
	DefaultTsPerByte = 6.67e-9
)

// RaceBound computes Equation 2's area-size bound: the largest area (in
// bytes) the checker is guaranteed to finish before the evader can remove
// its trace, given the race parameters. With the paper's §IV-C numbers it
// reproduces their 1,218,351-byte bound.
func RaceBound(tnsSched, tnsThreshold, tnsRecover, tsSwitch time.Duration, tsPerByte float64) int {
	window := tnsSched + tnsThreshold + tnsRecover - tsSwitch
	if window <= 0 || tsPerByte <= 0 {
		return 0
	}
	return int(window.Seconds() / tsPerByte)
}

// DefaultRaceBound is RaceBound with the paper's calibrated parameters.
func DefaultRaceBound() int {
	return RaceBound(DefaultTnsSched, DefaultTnsThreshold, DefaultTnsRecover, DefaultTsSwitch, DefaultTsPerByte)
}

// Config tunes SATIN.
type Config struct {
	// Tgoal is the period within which every kernel area must be scanned
	// at least once; the base wake period is tp = Tgoal / m for m areas
	// (§V-C). The paper's experiment runs with tp ≈ 8 s.
	Tgoal time.Duration
	// Technique is the acquisition technique; SATIN defaults to
	// DirectHash, which Table I shows is faster and leaner.
	Technique introspect.Technique
	// RandomDeviation applies the ±tp uniform deviation to each wake-up.
	// Disabling it (ablation) makes wake times predictable.
	RandomDeviation bool
	// FixedCore, when >= 0, pins every round to one core (ablation); -1
	// uses the multi-core collaboration of §V-D.
	FixedCore int
	// MaxRounds stops SATIN after that many rounds; 0 means run forever.
	MaxRounds int
	// AreaBound is the Equation 2 bound areas are validated against.
	// Zero means DefaultRaceBound.
	AreaBound int
	// AllowUnsafeAreas skips the bound validation (ablation: whole-kernel
	// "areas" that lose the race).
	AllowUnsafeAreas bool
	// Seed drives area selection and wake-time randomness.
	Seed uint64
}

// DefaultConfig returns the paper's experimental configuration: 19 areas
// scanned within Tgoal = 19×8 s, direct hashing, random deviation, all
// cores.
func DefaultConfig() Config {
	return Config{
		Tgoal:           19 * 8 * time.Second,
		Technique:       introspect.DirectHash,
		RandomDeviation: true,
		FixedCore:       -1,
		Seed:            1,
	}
}

func (c Config) withDefaults() Config {
	if c.Technique == 0 {
		c.Technique = introspect.DirectHash
	}
	if c.AreaBound == 0 {
		c.AreaBound = DefaultRaceBound()
	}
	return c
}

func (c Config) validate(numCores, numAreas int) error {
	if c.Tgoal <= 0 {
		return fmt.Errorf("core: Tgoal %v must be positive", c.Tgoal)
	}
	if numAreas == 0 {
		return fmt.Errorf("core: no areas to check")
	}
	if c.FixedCore < -1 || c.FixedCore >= numCores {
		return fmt.Errorf("core: fixed core %d outside [-1, %d)", c.FixedCore, numCores)
	}
	if c.MaxRounds < 0 {
		return fmt.Errorf("core: MaxRounds %d must be >= 0", c.MaxRounds)
	}
	switch c.Technique {
	case introspect.DirectHash, introspect.SnapshotHash:
	default:
		return fmt.Errorf("core: unknown technique %v", c.Technique)
	}
	return nil
}

// BasePeriod returns tp = Tgoal / m.
func (c Config) BasePeriod(numAreas int) time.Duration {
	return c.Tgoal / time.Duration(numAreas)
}
