package core

import (
	"testing"
	"time"

	"satin/internal/attack"
	"satin/internal/introspect"
	"satin/internal/richos"
)

// TestSATINBeatsFastEvader is the headline result (§VI-B1) at reduced
// scale: SATIN checks every area before the evader can scrub, so each pass
// over the attacked area raises an alarm even though the evader detects
// every single round.
func TestSATINBeatsFastEvader(t *testing.T) {
	r := newRig(t)
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second // tp = 1 s for test speed; rounds still ≪ tp
	cfg.MaxRounds = 57           // three full passes
	s := newSATIN(t, r, cfg)

	rootkit := attack.NewRootkit(mustOS(t, r), r.image)
	evader, err := attack.NewFastEvader(r.plat, r.image, rootkit, attack.DefaultProberSleep, 1800*time.Microsecond, 77)
	if err != nil {
		t.Fatal(err)
	}
	if err := evader.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(90 * time.Second)

	rounds := s.Rounds()
	if len(rounds) != 57 {
		t.Fatalf("rounds = %d, want 57", len(rounds))
	}
	// The evader's prober flagged every round (no false negatives), and
	// raised no phantom suspicions (no false positives).
	suspects := evader.SuspectEvents()
	if len(suspects) != len(rounds) {
		t.Errorf("evader flagged %d rounds of %d", len(suspects), len(rounds))
	}
	// Every pass over area 14 caught the rootkit: 3 alarms, all area 14.
	alarms := s.Alarms()
	if len(alarms) != 3 {
		t.Fatalf("alarms = %d, want 3 (one per pass)", len(alarms))
	}
	for _, a := range alarms {
		if a.Area != 14 {
			t.Errorf("alarm in area %d, want 14", a.Area)
		}
	}
}

// TestSATINBeatsThreadEvader repeats the headline result against the
// full-fidelity thread-level evader (one pass, to bound simulation cost).
func TestSATINBeatsThreadEvader(t *testing.T) {
	r := newRig(t)
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 19
	s := newSATIN(t, r, cfg)

	os := mustOS(t, r)
	buf, err := attack.NewReportBuffer(r.plat.NumCores(), attack.JunoCrossCoreNoise(), 9)
	if err != nil {
		t.Fatal(err)
	}
	rootkit := attack.NewRootkit(os, r.image)
	evader, err := attack.NewEvader(os, rootkit, buf, attack.EvaderConfig{
		Prober: attack.ProberConfig{Kind: attack.KProberII, Threshold: 1800 * time.Microsecond},
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := evader.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(30 * time.Second)

	rounds := s.Rounds()
	if len(rounds) != 19 {
		t.Fatalf("rounds = %d, want 19", len(rounds))
	}
	alarms := s.Alarms()
	if len(alarms) != 1 || alarms[0].Area != 14 {
		t.Fatalf("alarms = %+v, want one alarm in area 14", alarms)
	}
	if got := len(evader.SuspectEvents()); got != 19 {
		t.Errorf("evader flagged %d of 19 rounds", got)
	}
}

// TestBaselineLosesToThreadEvader closes the loop: the same evader that
// SATIN catches walks right past the full-kernel baseline, because the
// malicious bytes sit ~81%% into the scan and are long restored by then.
func TestBaselineLosesToThreadEvader(t *testing.T) {
	r := newRig(t)
	os := mustOS(t, r)
	buf, err := attack.NewReportBuffer(r.plat.NumCores(), attack.JunoCrossCoreNoise(), 9)
	if err != nil {
		t.Fatal(err)
	}
	rootkit := attack.NewRootkit(os, r.image)
	evader, err := attack.NewEvader(os, rootkit, buf, attack.EvaderConfig{
		Prober: attack.ProberConfig{Kind: attack.KProberII, Threshold: 1800 * time.Microsecond},
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := evader.Start(); err != nil {
		t.Fatal(err)
	}
	baseline, err := introspect.NewBaseline(r.plat, r.monitor, r.checker, r.image, 11, introspect.BaselineConfig{
		Period:          2 * time.Second,
		RandomizePeriod: true,
		Selection:       introspect.RandomCore,
		Technique:       introspect.DirectHash,
		MaxRounds:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := baseline.Start(); err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(25 * time.Second)

	outs := baseline.Outcomes()
	if len(outs) != 5 {
		t.Fatalf("baseline rounds = %d, want 5", len(outs))
	}
	for i, o := range outs {
		if !o.Clean {
			t.Errorf("baseline round %d detected the rootkit; the evader should have hidden in time", i)
		}
	}
	// And yet the attack is real: the rootkit spends almost all its time
	// active.
	if rootkit.State() != attack.RootkitActive {
		t.Error("rootkit should be active between checks")
	}
}

// mustOS boots a rich OS on the rig's platform (needed by the attack side).
func mustOS(t *testing.T, r *rig) *richos.OS {
	t.Helper()
	os, err := richos.NewOS(r.plat, r.image, richos.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return os
}
