package core

import (
	"testing"

	"satin/internal/mem"
	"satin/internal/simclock"
)

// FuzzAreaSetPasses fuzzes §V-B's selection-without-replacement invariant:
// for any area count, seed, and number of passes, every `total` consecutive
// picks cover areas 0..total-1 exactly once, and Remaining/Refills track
// the pass structure. The detection guarantee (each full scan checks the
// attacked area exactly once) rests on this.
func FuzzAreaSetPasses(f *testing.F) {
	f.Add(uint8(19), uint64(1), uint8(3)) // the Juno partition, a few passes
	f.Add(uint8(1), uint64(7), uint8(5))  // degenerate single area
	f.Add(uint8(2), uint64(42), uint8(1)) // smallest nontrivial set
	f.Add(uint8(64), uint64(0), uint8(2)) // larger than the paper's m
	f.Fuzz(func(t *testing.T, total8 uint8, seed uint64, passes8 uint8) {
		total := int(total8)
		passes := int(passes8)%4 + 1
		if total == 0 {
			return
		}
		s := NewAreaSet(total, simclock.NewRNG(seed, "fuzz-areaset"))
		if s.Refills() != 0 {
			t.Fatalf("fresh set reports %d refills, want 0", s.Refills())
		}
		for p := 0; p < passes; p++ {
			seen := make([]bool, total)
			for i := 0; i < total; i++ {
				if got, want := s.Remaining(), total-i; got != want && !(i == 0 && got == 0) {
					// Remaining is total-i mid-pass; at a pass boundary the
					// set may be empty until the next Pick refills it.
					t.Fatalf("pass %d pick %d: Remaining = %d, want %d", p, i, got, want)
				}
				a := s.Pick()
				if a < 0 || a >= total {
					t.Fatalf("pass %d: Pick returned %d, outside [0,%d)", p, a, total)
				}
				if seen[a] {
					t.Fatalf("pass %d: area %d picked twice before the pass completed", p, a)
				}
				seen[a] = true
			}
			for a, ok := range seen {
				if !ok {
					t.Fatalf("pass %d: area %d never picked", p, a)
				}
			}
		}
	})
}

// FuzzAreaPartition fuzzes the divide-and-conquer partitioning invariants
// behind Equation 2: for any section-size vector and any positive bound,
// PartitionSections + BuildAreas must yield areas that are disjoint, tile
// the kernel with no gaps (cover it completely), and each respect the size
// bound — or fail loudly when a single section exceeds the bound.
func FuzzAreaPartition(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40}, uint32(64))
	f.Add([]byte{1, 1, 1}, uint32(1))
	f.Add([]byte{255, 255}, uint32(255))
	f.Add([]byte{7}, uint32(3)) // single oversize section: must error
	f.Fuzz(func(t *testing.T, rawSizes []byte, bound32 uint32) {
		if len(rawSizes) == 0 || len(rawSizes) > 64 {
			return
		}
		maxSize := int(bound32%4096) + 1
		layout := mem.Layout{Base: 0xffff000008080000}
		addr := layout.Base
		oversize := false
		for i, b := range rawSizes {
			size := int(b) + 1
			if size > maxSize {
				oversize = true
			}
			layout.Sections = append(layout.Sections, mem.Section{
				Name: string(rune('a'+i%26)) + ".sec",
				Addr: addr,
				Size: size,
			})
			addr += uint64(size)
		}
		groups, err := mem.PartitionSections(layout.Sections, maxSize)
		if oversize {
			if err == nil {
				t.Fatalf("section larger than bound %d did not error", maxSize)
			}
			return
		}
		if err != nil {
			t.Fatalf("PartitionSections: %v", err)
		}
		areas, err := mem.BuildAreas(layout, groups)
		if err != nil {
			t.Fatalf("BuildAreas rejected PartitionSections output: %v", err)
		}
		// Eq. 2 size bound: no area exceeds maxSize.
		for _, a := range areas {
			if a.Size > maxSize {
				t.Fatalf("%v exceeds bound %d", a, maxSize)
			}
			if a.Size <= 0 {
				t.Fatalf("%v has non-positive size", a)
			}
		}
		// Disjoint and covering: areas tile [Base, End) contiguously.
		next := layout.Base
		for _, a := range areas {
			if a.Addr != next {
				t.Fatalf("%v starts at %#x, want %#x (gap or overlap)", a, a.Addr, next)
			}
			next = a.End()
		}
		if next != layout.End() {
			t.Fatalf("areas end at %#x, kernel ends at %#x", next, layout.End())
		}
		// Every byte belongs to exactly one area (AreaContaining agrees).
		for _, a := range areas {
			if idx, err := mem.AreaContaining(areas, a.Addr); err != nil || idx != a.Index {
				t.Fatalf("AreaContaining(%#x) = %d, %v; want %d", a.Addr, idx, err, a.Index)
			}
		}
	})
}
