package core

import (
	"fmt"
	"time"

	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/mem"
	"satin/internal/obs"
	"satin/internal/profile"
	"satin/internal/simclock"
	"satin/internal/trace"
	"satin/internal/trustzone"
)

// minRearmGap is the earliest a core may be re-armed after finishing a
// round: comfortably past the world exit's Ts_switch (≤3.6 µs), so the next
// secure timer interrupt always finds the core back in the normal world.
const minRearmGap = 10 * time.Microsecond

// Round records one completed SATIN introspection round.
type Round struct {
	Index    int
	Area     int
	CoreID   int
	Started  simclock.Time // secure payload start (after Ts_switch)
	Finished simclock.Time
	Sum      uint64
	Clean    bool
}

// Elapsed reports the round's checking duration.
func (r Round) Elapsed() time.Duration { return r.Finished.Sub(r.Started) }

// Alarm is raised when an area's hash mismatches its authorized value —
// the signal SATIN would forward "to the server side or the device user"
// (§V-B).
type Alarm struct {
	Round int
	Area  int
	At    simclock.Time
}

// SATIN is the secure-world introspection service. It implements
// trustzone.Service: the secure monitor dispatches it whenever any core's
// secure timer fires.
type SATIN struct {
	platform *hw.Platform
	monitor  *trustzone.Monitor
	image    *mem.Image
	checker  *introspect.Checker
	cfg      Config
	rng      *simclock.RNG

	areas  []mem.Area
	golden []uint64
	tp     time.Duration

	areaSet *AreaSet
	queue   *WakeQueue
	// partIndex maps a core ID to its slot-owner index in the wake queue
	// (only participating cores have entries).
	partIndex map[int]int
	// partCores lists participating core IDs by slot-owner index — the
	// inverse of partIndex.
	partCores []int

	rounds  []Round
	alarms  []Alarm
	onRound []func(Round)
	onAlarm []func(Alarm)
	started bool

	// Hotplug re-routing state (§V-D collaboration under core unplug): when
	// a participating core goes offline, its wake-queue slot is served by
	// SMC-driven rounds on a surviving core until it returns.
	orphans   map[int]*simclock.Handle // slot-owner index → pending re-routed wake
	uncovered map[int]bool             // slots stalled because every core is offline
	reroutes  int

	// Observability (nil unless Observe was called; all nil-safe).
	bus        *obs.Bus
	roundCtr   *obs.Counter
	alarmCtr   *obs.Counter
	roundHist  *obs.Histogram
	areaHists  []*obs.Histogram
	queueDepth *obs.Gauge
	rerouteCtr *obs.Counter
	// prof receives per-round spans, nested inside the monitor's
	// world-switch span on the same core track (nil unless SetProfiler was
	// called; every emit is nil-safe).
	prof *profile.Profiler
}

// RoundBuckets returns histogram bounds (ns) for per-round check durations:
// the paper's area checks land in the low milliseconds (≤1.2 MB at
// ~6.7–10.7 ns/B), so the bounds step 2 ms up to 16 ms.
func RoundBuckets() []int64 {
	return []int64{2e6, 4e6, 6e6, 8e6, 10e6, 12e6, 16e6}
}

// New assembles SATIN over the given areas. The golden hash table is
// computed from the image's pristine (trusted-boot) content. Areas must
// respect the Equation 2 bound unless cfg.AllowUnsafeAreas is set.
func New(p *hw.Platform, monitor *trustzone.Monitor, image *mem.Image, checker *introspect.Checker, areas []mem.Area, cfg Config) (*SATIN, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(p.NumCores(), len(areas)); err != nil {
		return nil, err
	}
	if !cfg.AllowUnsafeAreas {
		for _, a := range areas {
			if a.Size >= cfg.AreaBound {
				return nil, fmt.Errorf("core: %v violates the race bound of %d bytes (Equation 2); the evader would win", a, cfg.AreaBound)
			}
		}
	}
	golden, err := introspect.GoldenTable(image, checker.Hash(), areas)
	if err != nil {
		return nil, err
	}
	return &SATIN{
		platform: p,
		monitor:  monitor,
		image:    image,
		checker:  checker,
		cfg:      cfg,
		rng:      simclock.NewRNG(cfg.Seed, "core.satin"),
		areas:    areas,
		golden:   golden,
		tp:       cfg.BasePeriod(len(areas)),
	}, nil
}

// NewJuno assembles SATIN with the paper's 19-area Juno partition and
// default configuration overridden by cfg.
func NewJuno(p *hw.Platform, monitor *trustzone.Monitor, image *mem.Image, checker *introspect.Checker, cfg Config) (*SATIN, error) {
	areas, err := mem.BuildAreas(image.Layout(), mem.JunoAreaGroups())
	if err != nil {
		return nil, err
	}
	return New(p, monitor, image, checker, areas, cfg)
}

// Observe wires SATIN into the observability layer: completed rounds and
// alarms are published to bus as trace events, and reg gains round/alarm
// counters, an all-areas round-duration histogram plus one per area, and a
// wake-queue depth gauge. Call before Start. Either argument may be nil.
func (s *SATIN) Observe(bus *obs.Bus, reg *obs.Registry) {
	s.bus = bus
	s.roundCtr = reg.Counter("satin.rounds")
	s.alarmCtr = reg.Counter("satin.alarms")
	s.roundHist = reg.Histogram("satin.round_ns", RoundBuckets())
	if reg != nil {
		s.areaHists = make([]*obs.Histogram, len(s.areas))
		for i := range s.areas {
			s.areaHists[i] = reg.Histogram(fmt.Sprintf("satin.round_ns[area=%02d]", i), RoundBuckets())
		}
	}
	s.queueDepth = reg.Gauge("satin.queue_pending")
	s.rerouteCtr = reg.Counter("satin.rerouted_rounds")
}

// SetProfiler attaches the causal span profiler: each round becomes a span
// from area pick to verdict, carrying the area index, nested inside the
// world switch that hosts it. Passing nil detaches.
func (s *SATIN) SetProfiler(p *profile.Profiler) { s.prof = p }

// Start performs the trusted-boot initialization: install SATIN as the
// secure service, build the wake-up queue, and program every
// participating core's secure timer with its first wake time.
func (s *SATIN) Start() error {
	if s.started {
		return fmt.Errorf("core: SATIN already started")
	}
	s.started = true
	s.monitor.SetService(s)
	s.areaSet = NewAreaSet(len(s.areas), s.rng)
	now := s.platform.Engine().Now()

	cores := s.participatingCores()
	s.partIndex = make(map[int]int, len(cores))
	for i, coreID := range cores {
		s.partIndex[coreID] = i
	}
	s.partCores = cores
	s.orphans = make(map[int]*simclock.Handle)
	s.uncovered = make(map[int]bool)
	s.queue = NewWakeQueue(len(cores), s.tp, s.cfg.RandomDeviation, s.rng, now)
	for _, coreID := range cores {
		if err := s.armCore(coreID, s.queue.Next(s.partIndex[coreID], now)); err != nil {
			return err
		}
		s.platform.Core(coreID).OnHotplug(s.onHotplug)
	}
	return nil
}

// participatingCores lists the cores that take introspection turns.
func (s *SATIN) participatingCores() []int {
	if s.cfg.FixedCore >= 0 {
		return []int{s.cfg.FixedCore}
	}
	ids := make([]int, s.platform.NumCores())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// armCore writes a core's secure timer with secure privilege.
func (s *SATIN) armCore(coreID int, at simclock.Time) error {
	st := s.platform.Core(coreID).SecureTimer()
	if err := st.WriteCVAL(hw.SecureWorld, at); err != nil {
		return fmt.Errorf("core: arming core %d: %w", coreID, err)
	}
	if err := st.WriteCTL(hw.SecureWorld, true); err != nil {
		return fmt.Errorf("core: enabling core %d timer: %w", coreID, err)
	}
	return nil
}

// OnSecureTimer implements trustzone.Service: one SATIN round.
func (s *SATIN) OnSecureTimer(ctx *trustzone.Context) {
	st := ctx.Core().SecureTimer()
	// §VI-A1: stop the secure timer while the round runs.
	if err := st.WriteCTL(hw.SecureWorld, false); err != nil {
		panic(fmt.Sprintf("core: stopping secure timer: %v", err))
	}
	if s.budgetExhausted() {
		// Budget exhausted: let this core stay dormant.
		ctx.Exit()
		return
	}
	s.runRound(ctx, "", func(ctx *trustzone.Context) {
		// §V-C/§V-D: take the next wake time from the queue and restart
		// this core's own timer; then return to the normal world.
		if !s.budgetExhausted() {
			next := s.queue.Next(s.partIndex[ctx.Core().ID()], ctx.Now())
			s.queueDepth.Set(int64(s.queue.Pending()))
			// A deviation can land the assigned time in the past; fire
			// no earlier than after this round's world exit completes,
			// or the interrupt would assert while we still hold the core.
			earliest := ctx.Now().Add(minRearmGap)
			if next.Before(earliest) {
				next = earliest
			}
			if err := s.armCore(ctx.Core().ID(), next); err != nil {
				panic(err)
			}
		}
		ctx.Exit()
	})
}

// runRound performs one introspection round inside the secure context: pick
// a random unchecked area, hash it, record the verdict, then hand the
// context to after (which re-arms a timer or schedules the next re-routed
// wake, and exits the secure world). detail annotates the round's profiler
// span ("" for an ordinary timer-driven round).
func (s *SATIN) runRound(ctx *trustzone.Context, detail string, after func(*trustzone.Context)) {
	areaIdx := s.areaSet.Pick()
	area := s.areas[areaIdx]
	roundIdx := len(s.rounds)
	s.prof.Begin(profile.SpanRound, ctx.Core().ID(), areaIdx, ctx.Now().Duration(), detail)
	err := s.checker.Check(ctx, s.cfg.Technique, area.Addr, area.Size, func(res introspect.Result) {
		round := Round{
			Index:    roundIdx,
			Area:     areaIdx,
			CoreID:   ctx.Core().ID(),
			Started:  res.Started,
			Finished: res.Finished,
			Sum:      res.Sum,
			Clean:    res.Sum == s.golden[areaIdx],
		}
		s.rounds = append(s.rounds, round)
		s.prof.End(profile.SpanRound, round.CoreID, res.Finished.Duration())
		s.roundCtr.Inc()
		elapsed := int64(round.Elapsed())
		s.roundHist.Observe(elapsed)
		if s.areaHists != nil {
			s.areaHists[areaIdx].Observe(elapsed)
		}
		detail := "clean"
		if !round.Clean {
			detail = "dirty"
		}
		s.bus.Publish(trace.Event{At: res.Finished.Duration(), Kind: trace.KindRound, Core: round.CoreID, Area: areaIdx, Detail: detail})
		if !round.Clean {
			alarm := Alarm{Round: roundIdx, Area: areaIdx, At: res.Finished}
			s.alarms = append(s.alarms, alarm)
			s.alarmCtr.Inc()
			s.bus.Publish(trace.Event{At: res.Finished.Duration(), Kind: trace.KindAlarm, Core: -1, Area: areaIdx})
			for _, fn := range s.onAlarm {
				fn(alarm)
			}
		}
		for _, fn := range s.onRound {
			fn(round)
		}
		after(ctx)
	})
	if err != nil {
		panic(fmt.Sprintf("core: SATIN round failed to start: %v", err))
	}
}

// budgetExhausted reports whether the configured MaxRounds budget is spent.
func (s *SATIN) budgetExhausted() bool {
	return s.cfg.MaxRounds > 0 && len(s.rounds) >= s.cfg.MaxRounds
}

// orphanRetryGap is how long a re-routed wake waits before retrying when
// every candidate cover core is momentarily busy in the secure world.
const orphanRetryGap = 100 * time.Microsecond

// onHotplug reacts to a participating core going offline or coming back.
// Offline: park the core's secure timer (its pending wake is lost with the
// core) and migrate its wake-queue slot to SMC-driven rounds on a surviving
// core — the multi-core collaboration of §V-D continued under hotplug.
// Online: cancel the migration and restore the core's own timer.
func (s *SATIN) onHotplug(c *hw.Core, online bool) {
	owner, ok := s.partIndex[c.ID()]
	if !ok || !s.started {
		return
	}
	now := s.platform.Engine().Now()
	if !online {
		st := c.SecureTimer()
		if err := st.WriteCTL(hw.SecureWorld, false); err != nil {
			panic(fmt.Sprintf("core: parking offline core %d timer: %v", c.ID(), err))
		}
		s.bus.Publish(trace.Event{At: now.Duration(), Kind: trace.KindFault, Core: c.ID(), Area: -1, Detail: "satin: core offline, slot re-routed"})
		s.scheduleOrphan(owner)
		return
	}
	delete(s.uncovered, owner)
	if h := s.orphans[owner]; h != nil {
		h.Cancel()
		delete(s.orphans, owner)
	}
	s.bus.Publish(trace.Event{At: now.Duration(), Kind: trace.KindFault, Core: c.ID(), Area: -1, Detail: "satin: core online, slot restored"})
	if !s.budgetExhausted() {
		if err := s.armCore(c.ID(), s.queue.Next(owner, now)); err != nil {
			panic(err)
		}
	}
	// Slots may have stalled while every participating core was offline;
	// resume their coverage now that one is back.
	s.retryUncovered()
}

// scheduleOrphan draws the offline owner's next wake from the queue and
// schedules a re-routed round for it.
func (s *SATIN) scheduleOrphan(owner int) {
	if s.budgetExhausted() {
		return
	}
	engine := s.platform.Engine()
	at := s.queue.Next(owner, engine.Now())
	s.queueDepth.Set(int64(s.queue.Pending()))
	s.orphans[owner] = engine.At(at, fmt.Sprintf("satin-reroute-slot%d", owner), func() {
		s.coverOrphan(owner)
	})
}

// coverOrphan runs one re-routed round for an offline owner's slot on the
// lowest-numbered available participating core, via the SMC path.
func (s *SATIN) coverOrphan(owner int) {
	delete(s.orphans, owner)
	if s.budgetExhausted() {
		return
	}
	engine := s.platform.Engine()
	retry := func() {
		s.orphans[owner] = engine.After(orphanRetryGap, fmt.Sprintf("satin-reroute-retry%d", owner), func() {
			s.coverOrphan(owner)
		})
	}
	cover := s.pickCoverCore()
	if cover < 0 {
		if s.anyOnlineParticipant() {
			// All candidates are momentarily busy in the secure world.
			retry()
			return
		}
		// Every participating core is unplugged; onHotplug resumes this
		// slot when one returns.
		s.uncovered[owner] = true
		return
	}
	s.reroutes++
	s.rerouteCtr.Inc()
	s.bus.Publish(trace.Event{At: engine.Now().Duration(), Kind: trace.KindFault, Core: cover, Area: -1, Detail: fmt.Sprintf("satin: rerouted round for slot %d", owner)})
	// The span detail ties the rerouted round back to the fault that caused
	// it; built only when a profiler is attached so the detached path stays
	// allocation-free.
	var spanDetail string
	if s.prof.Attached() {
		spanDetail = fmt.Sprintf("rerouted slot %d", owner)
	}
	err := s.monitor.RequestSecure(cover, func(ctx *trustzone.Context) {
		s.runRound(ctx, spanDetail, func(ctx *trustzone.Context) {
			// Keep covering while the slot's own core stays offline.
			if !s.platform.Core(s.partCores[owner]).Online() {
				s.scheduleOrphan(owner)
			}
			ctx.Exit()
		})
	})
	if err != nil {
		// The cover core slipped into the secure world in the meantime.
		retry()
	}
}

// pickCoverCore returns the lowest-numbered participating core that is
// online and outside the secure world, or -1 if none qualifies right now.
func (s *SATIN) pickCoverCore() int {
	for _, coreID := range s.partCores {
		if s.platform.Core(coreID).Online() && !s.monitor.InSecure(coreID) {
			return coreID
		}
	}
	return -1
}

// anyOnlineParticipant reports whether any participating core is online.
func (s *SATIN) anyOnlineParticipant() bool {
	for _, coreID := range s.partCores {
		if s.platform.Core(coreID).Online() {
			return true
		}
	}
	return false
}

// retryUncovered resumes coverage for slots that stalled with every core
// offline, in slot order for determinism.
func (s *SATIN) retryUncovered() {
	if len(s.uncovered) == 0 {
		return
	}
	owners := make([]int, 0, len(s.uncovered))
	for owner := range s.uncovered {
		owners = append(owners, owner)
	}
	for i := 1; i < len(owners); i++ {
		for j := i; j > 0 && owners[j] < owners[j-1]; j-- {
			owners[j], owners[j-1] = owners[j-1], owners[j]
		}
	}
	for _, owner := range owners {
		delete(s.uncovered, owner)
		s.scheduleOrphan(owner)
	}
}

// ReroutedRounds reports how many rounds ran on a substitute core because
// the slot's own core was offline.
func (s *SATIN) ReroutedRounds() int { return s.reroutes }

// Rounds returns all completed rounds.
func (s *SATIN) Rounds() []Round { return s.rounds }

// Alarms returns all raised alarms.
func (s *SATIN) Alarms() []Alarm { return s.alarms }

// OnRound registers an observer for completed rounds.
func (s *SATIN) OnRound(fn func(Round)) { s.onRound = append(s.onRound, fn) }

// OnAlarm registers an observer for alarms.
func (s *SATIN) OnAlarm(fn func(Alarm)) { s.onAlarm = append(s.onAlarm, fn) }

// Areas returns the introspection areas.
func (s *SATIN) Areas() []mem.Area { return s.areas }

// BasePeriod returns tp.
func (s *SATIN) BasePeriod() time.Duration { return s.tp }

// FullScans reports how many complete kernel passes have finished.
func (s *SATIN) FullScans() int { return len(s.rounds) / len(s.areas) }

// AreaRounds returns the rounds that checked the given area, in order.
func (s *SATIN) AreaRounds(area int) []Round {
	var out []Round
	for _, r := range s.rounds {
		if r.Area == area {
			out = append(out, r)
		}
	}
	return out
}
