package core

import (
	"fmt"
	"time"

	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/mem"
	"satin/internal/obs"
	"satin/internal/simclock"
	"satin/internal/trace"
	"satin/internal/trustzone"
)

// minRearmGap is the earliest a core may be re-armed after finishing a
// round: comfortably past the world exit's Ts_switch (≤3.6 µs), so the next
// secure timer interrupt always finds the core back in the normal world.
const minRearmGap = 10 * time.Microsecond

// Round records one completed SATIN introspection round.
type Round struct {
	Index    int
	Area     int
	CoreID   int
	Started  simclock.Time // secure payload start (after Ts_switch)
	Finished simclock.Time
	Sum      uint64
	Clean    bool
}

// Elapsed reports the round's checking duration.
func (r Round) Elapsed() time.Duration { return r.Finished.Sub(r.Started) }

// Alarm is raised when an area's hash mismatches its authorized value —
// the signal SATIN would forward "to the server side or the device user"
// (§V-B).
type Alarm struct {
	Round int
	Area  int
	At    simclock.Time
}

// SATIN is the secure-world introspection service. It implements
// trustzone.Service: the secure monitor dispatches it whenever any core's
// secure timer fires.
type SATIN struct {
	platform *hw.Platform
	monitor  *trustzone.Monitor
	image    *mem.Image
	checker  *introspect.Checker
	cfg      Config
	rng      *simclock.RNG

	areas  []mem.Area
	golden []uint64
	tp     time.Duration

	areaSet *AreaSet
	queue   *WakeQueue
	// partIndex maps a core ID to its slot-owner index in the wake queue
	// (only participating cores have entries).
	partIndex map[int]int

	rounds  []Round
	alarms  []Alarm
	onRound []func(Round)
	onAlarm []func(Alarm)
	started bool

	// Observability (nil unless Observe was called; all nil-safe).
	bus        *obs.Bus
	roundCtr   *obs.Counter
	alarmCtr   *obs.Counter
	roundHist  *obs.Histogram
	areaHists  []*obs.Histogram
	queueDepth *obs.Gauge
}

// RoundBuckets returns histogram bounds (ns) for per-round check durations:
// the paper's area checks land in the low milliseconds (≤1.2 MB at
// ~6.7–10.7 ns/B), so the bounds step 2 ms up to 16 ms.
func RoundBuckets() []int64 {
	return []int64{2e6, 4e6, 6e6, 8e6, 10e6, 12e6, 16e6}
}

// New assembles SATIN over the given areas. The golden hash table is
// computed from the image's pristine (trusted-boot) content. Areas must
// respect the Equation 2 bound unless cfg.AllowUnsafeAreas is set.
func New(p *hw.Platform, monitor *trustzone.Monitor, image *mem.Image, checker *introspect.Checker, areas []mem.Area, cfg Config) (*SATIN, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(p.NumCores(), len(areas)); err != nil {
		return nil, err
	}
	if !cfg.AllowUnsafeAreas {
		for _, a := range areas {
			if a.Size >= cfg.AreaBound {
				return nil, fmt.Errorf("core: %v violates the race bound of %d bytes (Equation 2); the evader would win", a, cfg.AreaBound)
			}
		}
	}
	golden, err := introspect.GoldenTable(image, checker.Hash(), areas)
	if err != nil {
		return nil, err
	}
	return &SATIN{
		platform: p,
		monitor:  monitor,
		image:    image,
		checker:  checker,
		cfg:      cfg,
		rng:      simclock.NewRNG(cfg.Seed, "core.satin"),
		areas:    areas,
		golden:   golden,
		tp:       cfg.BasePeriod(len(areas)),
	}, nil
}

// NewJuno assembles SATIN with the paper's 19-area Juno partition and
// default configuration overridden by cfg.
func NewJuno(p *hw.Platform, monitor *trustzone.Monitor, image *mem.Image, checker *introspect.Checker, cfg Config) (*SATIN, error) {
	areas, err := mem.BuildAreas(image.Layout(), mem.JunoAreaGroups())
	if err != nil {
		return nil, err
	}
	return New(p, monitor, image, checker, areas, cfg)
}

// Observe wires SATIN into the observability layer: completed rounds and
// alarms are published to bus as trace events, and reg gains round/alarm
// counters, an all-areas round-duration histogram plus one per area, and a
// wake-queue depth gauge. Call before Start. Either argument may be nil.
func (s *SATIN) Observe(bus *obs.Bus, reg *obs.Registry) {
	s.bus = bus
	s.roundCtr = reg.Counter("satin.rounds")
	s.alarmCtr = reg.Counter("satin.alarms")
	s.roundHist = reg.Histogram("satin.round_ns", RoundBuckets())
	if reg != nil {
		s.areaHists = make([]*obs.Histogram, len(s.areas))
		for i := range s.areas {
			s.areaHists[i] = reg.Histogram(fmt.Sprintf("satin.round_ns[area=%02d]", i), RoundBuckets())
		}
	}
	s.queueDepth = reg.Gauge("satin.queue_pending")
}

// Start performs the trusted-boot initialization: install SATIN as the
// secure service, build the wake-up queue, and program every
// participating core's secure timer with its first wake time.
func (s *SATIN) Start() error {
	if s.started {
		return fmt.Errorf("core: SATIN already started")
	}
	s.started = true
	s.monitor.SetService(s)
	s.areaSet = NewAreaSet(len(s.areas), s.rng)
	now := s.platform.Engine().Now()

	cores := s.participatingCores()
	s.partIndex = make(map[int]int, len(cores))
	for i, coreID := range cores {
		s.partIndex[coreID] = i
	}
	s.queue = NewWakeQueue(len(cores), s.tp, s.cfg.RandomDeviation, s.rng, now)
	for _, coreID := range cores {
		if err := s.armCore(coreID, s.queue.Next(s.partIndex[coreID], now)); err != nil {
			return err
		}
	}
	return nil
}

// participatingCores lists the cores that take introspection turns.
func (s *SATIN) participatingCores() []int {
	if s.cfg.FixedCore >= 0 {
		return []int{s.cfg.FixedCore}
	}
	ids := make([]int, s.platform.NumCores())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// armCore writes a core's secure timer with secure privilege.
func (s *SATIN) armCore(coreID int, at simclock.Time) error {
	st := s.platform.Core(coreID).SecureTimer()
	if err := st.WriteCVAL(hw.SecureWorld, at); err != nil {
		return fmt.Errorf("core: arming core %d: %w", coreID, err)
	}
	if err := st.WriteCTL(hw.SecureWorld, true); err != nil {
		return fmt.Errorf("core: enabling core %d timer: %w", coreID, err)
	}
	return nil
}

// OnSecureTimer implements trustzone.Service: one SATIN round.
func (s *SATIN) OnSecureTimer(ctx *trustzone.Context) {
	st := ctx.Core().SecureTimer()
	// §VI-A1: stop the secure timer while the round runs.
	if err := st.WriteCTL(hw.SecureWorld, false); err != nil {
		panic(fmt.Sprintf("core: stopping secure timer: %v", err))
	}
	if s.cfg.MaxRounds > 0 && len(s.rounds) >= s.cfg.MaxRounds {
		// Budget exhausted: let this core stay dormant.
		ctx.Exit()
		return
	}
	areaIdx := s.areaSet.Pick()
	area := s.areas[areaIdx]
	roundIdx := len(s.rounds)
	err := s.checker.Check(ctx, s.cfg.Technique, area.Addr, area.Size, func(res introspect.Result) {
		round := Round{
			Index:    roundIdx,
			Area:     areaIdx,
			CoreID:   ctx.Core().ID(),
			Started:  res.Started,
			Finished: res.Finished,
			Sum:      res.Sum,
			Clean:    res.Sum == s.golden[areaIdx],
		}
		s.rounds = append(s.rounds, round)
		s.roundCtr.Inc()
		elapsed := int64(round.Elapsed())
		s.roundHist.Observe(elapsed)
		if s.areaHists != nil {
			s.areaHists[areaIdx].Observe(elapsed)
		}
		detail := "clean"
		if !round.Clean {
			detail = "dirty"
		}
		s.bus.Publish(trace.Event{At: res.Finished.Duration(), Kind: trace.KindRound, Core: round.CoreID, Area: areaIdx, Detail: detail})
		if !round.Clean {
			alarm := Alarm{Round: roundIdx, Area: areaIdx, At: res.Finished}
			s.alarms = append(s.alarms, alarm)
			s.alarmCtr.Inc()
			s.bus.Publish(trace.Event{At: res.Finished.Duration(), Kind: trace.KindAlarm, Core: -1, Area: areaIdx})
			for _, fn := range s.onAlarm {
				fn(alarm)
			}
		}
		for _, fn := range s.onRound {
			fn(round)
		}
		// §V-C/§V-D: take the next wake time from the queue and restart
		// this core's own timer; then return to the normal world.
		if s.cfg.MaxRounds == 0 || len(s.rounds) < s.cfg.MaxRounds {
			next := s.queue.Next(s.partIndex[ctx.Core().ID()], ctx.Now())
			s.queueDepth.Set(int64(s.queue.Pending()))
			// A deviation can land the assigned time in the past; fire
			// no earlier than after this round's world exit completes,
			// or the interrupt would assert while we still hold the core.
			earliest := ctx.Now().Add(minRearmGap)
			if next.Before(earliest) {
				next = earliest
			}
			if err := s.armCore(ctx.Core().ID(), next); err != nil {
				panic(err)
			}
		}
		ctx.Exit()
	})
	if err != nil {
		panic(fmt.Sprintf("core: SATIN round failed to start: %v", err))
	}
}

// Rounds returns all completed rounds.
func (s *SATIN) Rounds() []Round { return s.rounds }

// Alarms returns all raised alarms.
func (s *SATIN) Alarms() []Alarm { return s.alarms }

// OnRound registers an observer for completed rounds.
func (s *SATIN) OnRound(fn func(Round)) { s.onRound = append(s.onRound, fn) }

// OnAlarm registers an observer for alarms.
func (s *SATIN) OnAlarm(fn func(Alarm)) { s.onAlarm = append(s.onAlarm, fn) }

// Areas returns the introspection areas.
func (s *SATIN) Areas() []mem.Area { return s.areas }

// BasePeriod returns tp.
func (s *SATIN) BasePeriod() time.Duration { return s.tp }

// FullScans reports how many complete kernel passes have finished.
func (s *SATIN) FullScans() int { return len(s.rounds) / len(s.areas) }

// AreaRounds returns the rounds that checked the given area, in order.
func (s *SATIN) AreaRounds(area int) []Round {
	var out []Round
	for _, r := range s.rounds {
		if r.Area == area {
			out = append(out, r)
		}
	}
	return out
}
