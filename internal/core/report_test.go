package core

import (
	"testing"
	"time"

	"satin/internal/mem"
)

func TestReporterSignAndVerify(t *testing.T) {
	key := []byte("secure-world-device-key")
	r, err := NewReporter(key)
	if err != nil {
		t.Fatal(err)
	}
	a := Alarm{Round: 7, Area: 14, At: 1000}
	rec := r.Sign(a, 0xDEAD)
	if !VerifyAlarm(key, rec) {
		t.Fatal("genuine record failed verification")
	}
	// Any tampering breaks the tag.
	tampered := rec
	tampered.Area = 3
	if VerifyAlarm(key, tampered) {
		t.Error("area tampering went undetected")
	}
	tampered = rec
	tampered.Sum = 0xBEEF
	if VerifyAlarm(key, tampered) {
		t.Error("sum tampering went undetected")
	}
	tampered = rec
	tampered.Sequence++
	if VerifyAlarm(key, tampered) {
		t.Error("sequence tampering went undetected")
	}
	// Wrong key fails.
	if VerifyAlarm([]byte("other key"), rec) {
		t.Error("wrong key verified")
	}
}

func TestNewReporterValidation(t *testing.T) {
	if _, err := NewReporter(nil); err == nil {
		t.Error("empty key accepted")
	}
}

func TestVerifySequenceDetectsSuppression(t *testing.T) {
	key := []byte("k")
	r, err := NewReporter(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		r.Sign(Alarm{Round: i, Area: 14, At: 0}, uint64(i))
	}
	recs := r.Reports()
	if err := VerifySequence(0, recs); err != nil {
		t.Errorf("complete batch rejected: %v", err)
	}
	// Drop the middle report: the rich OS suppressing an alarm.
	gapped := append(append([]SignedAlarm(nil), recs[:2]...), recs[3])
	if err := VerifySequence(0, gapped); err == nil {
		t.Error("suppressed alarm went undetected")
	}
	// Reordering is also detected.
	swapped := []SignedAlarm{recs[1], recs[0]}
	if err := VerifySequence(0, swapped); err == nil {
		t.Error("reordered batch accepted")
	}
}

func TestReporterAttachedToSATIN(t *testing.T) {
	r := newRig(t)
	entry := r.image.Layout().SyscallEntryAddr(mem.GettidNR)
	if err := r.image.Mem().PutUint64(entry, r.image.ModuleBase()+0x100); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 19
	s := newSATIN(t, r, cfg)
	key := []byte("device-key")
	rep, err := NewReporter(key)
	if err != nil {
		t.Fatal(err)
	}
	rep.Attach(s)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(40 * time.Second)
	reports := rep.Reports()
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
	rec := reports[0]
	if rec.Area != 14 {
		t.Errorf("report area = %d, want 14", rec.Area)
	}
	if !VerifyAlarm(key, rec) {
		t.Error("attached report failed verification")
	}
	if err := VerifySequence(0, reports); err != nil {
		t.Error(err)
	}
	// The signed sum is the dirty hash the round observed.
	round := s.Rounds()[rec.Round]
	if round.Sum != rec.Sum || round.Clean {
		t.Errorf("report sum %#x vs round sum %#x (clean=%v)", rec.Sum, round.Sum, round.Clean)
	}
}
