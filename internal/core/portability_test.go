package core

import (
	"testing"
	"time"

	"satin/internal/attack"
	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/mem"
	"satin/internal/richos"
	"satin/internal/simclock"
	"satin/internal/trustzone"
)

// TestSATINPortableToGenericTEE exercises §VII-D: SATIN's architecture
// needs only multiple cores, a high-privileged mode, and a secure timer.
// The same SATIN code runs unchanged on the non-TrustZone generic platform
// and still defeats the evader.
func TestSATINPortableToGenericTEE(t *testing.T) {
	e := simclock.NewEngine()
	p, err := hw.NewGenericTEE(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCores() != 8 {
		t.Fatalf("NumCores = %d", p.NumCores())
	}
	if _, err := p.FirstCoreOfType(hw.GenericCore); err != nil {
		t.Fatal(err)
	}
	im, err := mem.NewJunoImage(9)
	if err != nil {
		t.Fatal(err)
	}
	osim, err := richos.NewOS(p, im, richos.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checker, err := introspect.NewChecker(im, p.Perf(), 5, introspect.HashDjb2, 0)
	if err != nil {
		t.Fatal(err)
	}
	monitor := trustzone.NewMonitor(p, 3)

	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 19
	s, err := NewJuno(p, monitor, im, checker, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rootkit := attack.NewRootkit(osim, im)
	evader, err := attack.NewFastEvader(p, im, rootkit, attack.DefaultProberSleep, 1800*time.Microsecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := evader.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	e.RunFor(60 * time.Second)

	if got := len(s.Rounds()); got != 19 {
		t.Fatalf("rounds = %d, want 19", got)
	}
	alarms := s.Alarms()
	if len(alarms) != 1 || alarms[0].Area != 14 {
		t.Fatalf("alarms = %+v, want one in area 14", alarms)
	}
	// The wake rotation uses all eight cores over a few passes.
	cores := make(map[int]bool)
	for _, r := range s.Rounds() {
		cores[r.CoreID] = true
	}
	if len(cores) < 5 {
		t.Errorf("rounds used %d of 8 cores", len(cores))
	}
}

func TestGenericTEEValidation(t *testing.T) {
	e := simclock.NewEngine()
	if _, err := hw.NewGenericTEE(e, 0); err == nil {
		t.Error("zero cores accepted")
	}
}
