package core

import (
	"testing"
	"time"

	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/mem"
	"satin/internal/simclock"
	"satin/internal/trustzone"
)

type rig struct {
	engine  *simclock.Engine
	plat    *hw.Platform
	image   *mem.Image
	monitor *trustzone.Monitor
	checker *introspect.Checker
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := simclock.NewEngine()
	p, err := hw.NewJunoR1(e)
	if err != nil {
		t.Fatal(err)
	}
	im, err := mem.NewJunoImage(42)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := introspect.NewChecker(im, p.Perf(), 5, introspect.HashDjb2, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{engine: e, plat: p, image: im, monitor: trustzone.NewMonitor(p, 3), checker: ch}
}

func newSATIN(t *testing.T, r *rig, cfg Config) *SATIN {
	t.Helper()
	s, err := NewJuno(r.plat, r.monitor, r.image, r.checker, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRaceBoundMatchesPaper(t *testing.T) {
	// §IV-C: S <= 1,218,351 bytes with the paper's parameters.
	got := DefaultRaceBound()
	if got < 1218000 || got > 1219000 {
		t.Errorf("DefaultRaceBound = %d, want ≈1218351", got)
	}
	if RaceBound(0, 0, 0, time.Second, 1) != 0 {
		t.Error("non-positive window should yield 0")
	}
	if RaceBound(time.Second, 0, 0, 0, 0) != 0 {
		t.Error("non-positive rate should yield 0")
	}
}

func TestConfigValidation(t *testing.T) {
	r := newRig(t)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero Tgoal", func(c *Config) { c.Tgoal = 0 }},
		{"bad fixed core", func(c *Config) { c.FixedCore = 6 }},
		{"below -1 fixed core", func(c *Config) { c.FixedCore = -2 }},
		{"negative rounds", func(c *Config) { c.MaxRounds = -1 }},
		{"bad technique", func(c *Config) { c.Technique = introspect.Technique(9) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			if _, err := NewJuno(r.plat, r.monitor, r.image, r.checker, cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestUnsafeAreasRejected(t *testing.T) {
	r := newRig(t)
	layout := r.image.Layout()
	// A single whole-kernel "area" violates Equation 2.
	whole := []mem.Area{{Index: 0, Addr: layout.Base, Size: layout.TotalSize(), Sections: layout.Sections}}
	cfg := DefaultConfig()
	if _, err := New(r.plat, r.monitor, r.image, r.checker, whole, cfg); err == nil {
		t.Error("whole-kernel area accepted without AllowUnsafeAreas")
	}
	cfg.AllowUnsafeAreas = true
	if _, err := New(r.plat, r.monitor, r.image, r.checker, whole, cfg); err != nil {
		t.Errorf("AllowUnsafeAreas did not override: %v", err)
	}
}

func TestAreaSetCoversAllWithoutReplacement(t *testing.T) {
	rng := simclock.NewRNG(1, "areaset")
	s := NewAreaSet(19, rng)
	for pass := 0; pass < 3; pass++ {
		seen := make(map[int]bool)
		for i := 0; i < 19; i++ {
			a := s.Pick()
			if a < 0 || a >= 19 {
				t.Fatalf("Pick returned %d", a)
			}
			if seen[a] {
				t.Fatalf("area %d picked twice in pass %d", a, pass)
			}
			seen[a] = true
		}
		if len(seen) != 19 {
			t.Fatalf("pass %d covered %d areas", pass, len(seen))
		}
	}
	if s.Refills() != 2 {
		t.Errorf("Refills = %d, want 2 (initial fill excluded)", s.Refills())
	}
}

func TestAreaSetOrderIsRandomized(t *testing.T) {
	rng := simclock.NewRNG(7, "areaset2")
	s := NewAreaSet(19, rng)
	first := make([]int, 19)
	for i := range first {
		first[i] = s.Pick()
	}
	second := make([]int, 19)
	for i := range second {
		second[i] = s.Pick()
	}
	same := true
	for i := range first {
		if first[i] != second[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two passes picked identical orders; selection must be randomized")
	}
}

func TestWakeQueueGenerations(t *testing.T) {
	rng := simclock.NewRNG(3, "wq")
	const n = 6
	tp := 8 * time.Second
	q := NewWakeQueue(n, tp, true, rng, 0)
	// Generation 1: each owner extracts once; all times within (0, n*tp + tp].
	times := make([]simclock.Time, n)
	for i := 0; i < n; i++ {
		times[i] = q.Next(i, 0)
		if times[i].Duration() > time.Duration(n+1)*tp {
			t.Errorf("gen1 time %v beyond horizon+tp", times[i])
		}
	}
	if !q.AllTaken() {
		t.Error("generation not exhausted after n extractions")
	}
	// A new extraction triggers a refresh continuing past the horizon.
	next := q.Next(0, times[0])
	if next.Duration() < time.Duration(n-1)*tp {
		t.Errorf("gen2 time %v does not continue the schedule", next)
	}
	if q.Refreshes() != 1 {
		t.Errorf("Refreshes = %d, want 1", q.Refreshes())
	}
}

func TestWakeQueueAverageGapIsTp(t *testing.T) {
	rng := simclock.NewRNG(5, "wq-avg")
	const n = 6
	tp := 8 * time.Second
	q := NewWakeQueue(n, tp, true, rng, 0)
	// Simulate many generations: collect every wake time.
	var all []simclock.Time
	now := simclock.Time(0)
	for gen := 0; gen < 40; gen++ {
		for i := 0; i < n; i++ {
			w := q.Next(i, now)
			all = append(all, w)
			if w.After(now) {
				now = w
			}
		}
	}
	first, last := all[0], all[0]
	for _, w := range all {
		if w.Before(first) {
			first = w
		}
		if w.After(last) {
			last = w
		}
	}
	avgGap := last.Sub(first) / time.Duration(len(all)-1)
	// §V-C/§VI-B: average time between two rounds is tp.
	if avgGap < 7*time.Second || avgGap > 9*time.Second {
		t.Errorf("average wake gap = %v, want ≈%v", avgGap, tp)
	}
}

func TestWakeQueueNoDeviationIsRegular(t *testing.T) {
	rng := simclock.NewRNG(5, "wq-fixed")
	tp := 8 * time.Second
	q := NewWakeQueue(1, tp, false, rng, 0)
	t1 := q.Next(0, 0)
	t2 := q.Next(0, t1)
	t3 := q.Next(0, t2)
	if t1.Duration() != tp || t2.Sub(t1) != tp || t3.Sub(t2) != tp {
		t.Errorf("fixed-period wakes = %v %v %v, want multiples of %v", t1, t2, t3, tp)
	}
}

func TestSATINCleanKernelScansAllAreas(t *testing.T) {
	r := newRig(t)
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second // tp = 1s to keep the test fast
	cfg.MaxRounds = 19
	s := newSATIN(t, r, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Error("double start accepted")
	}
	r.engine.RunFor(40 * time.Second)
	rounds := s.Rounds()
	if len(rounds) != 19 {
		t.Fatalf("rounds = %d, want 19", len(rounds))
	}
	if len(s.Alarms()) != 0 {
		t.Errorf("clean kernel raised %d alarms", len(s.Alarms()))
	}
	// One full pass covers every area exactly once.
	seen := make(map[int]int)
	coresUsed := make(map[int]bool)
	for _, rd := range rounds {
		seen[rd.Area]++
		coresUsed[rd.CoreID] = true
		if !rd.Clean {
			t.Errorf("round %d dirty on clean kernel", rd.Index)
		}
	}
	if len(seen) != 19 {
		t.Errorf("pass covered %d areas, want 19", len(seen))
	}
	for a, n := range seen {
		if n != 1 {
			t.Errorf("area %d checked %d times in one pass", a, n)
		}
	}
	if s.FullScans() != 1 {
		t.Errorf("FullScans = %d, want 1", s.FullScans())
	}
	// Multi-core collaboration: several cores served.
	if len(coresUsed) < 3 {
		t.Errorf("only %d cores served rounds", len(coresUsed))
	}
}

func TestSATINRoundDurationUnderRaceWindow(t *testing.T) {
	r := newRig(t)
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 19
	s := newSATIN(t, r, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(40 * time.Second)
	// Every round must finish before the evader's earliest possible
	// scrub: Tns_delay + Tns_recover ≈ 2e-3 + 4.96e-3 ≈ 7ms... the
	// *guarantee* (Eq. 2 with worst-case attacker 6.13ms + threshold
	// 1.8ms) allows up to ~8.1ms at A57 speed; A53 rounds on the largest
	// area run ≈10ms, still under the attacker's *typical* window. Check
	// the design inequality the paper actually relies on: area bytes
	// under the bound.
	for _, rd := range s.Rounds() {
		if s.Areas()[rd.Area].Size >= DefaultRaceBound() {
			t.Errorf("round %d checked an area above the race bound", rd.Index)
		}
		if rd.Elapsed() <= 0 || rd.Elapsed() > 15*time.Millisecond {
			t.Errorf("round %d took %v", rd.Index, rd.Elapsed())
		}
	}
}

func TestSATINDetectsUnhiddenRootkit(t *testing.T) {
	r := newRig(t)
	// A rootkit that never hides (no evasion): flagged on the first pass.
	entry := r.image.Layout().SyscallEntryAddr(mem.GettidNR)
	if err := r.image.Mem().PutUint64(entry, r.image.ModuleBase()+0x100); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 19
	s := newSATIN(t, r, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var alarms []Alarm
	s.OnAlarm(func(a Alarm) { alarms = append(alarms, a) })
	r.engine.RunFor(40 * time.Second)
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1", len(alarms))
	}
	if alarms[0].Area != 14 {
		t.Errorf("alarm in area %d, want 14 (syscall table)", alarms[0].Area)
	}
}

func TestSATINFixedCoreAblation(t *testing.T) {
	r := newRig(t)
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 10
	cfg.FixedCore = 4
	s := newSATIN(t, r, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(60 * time.Second)
	rounds := s.Rounds()
	if len(rounds) != 10 {
		t.Fatalf("rounds = %d, want 10", len(rounds))
	}
	for _, rd := range rounds {
		if rd.CoreID != 4 {
			t.Errorf("round on core %d with FixedCore=4", rd.CoreID)
		}
	}
}

func TestSATINWakeGapsWithinTwoTp(t *testing.T) {
	r := newRig(t)
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second // tp = 1s
	cfg.MaxRounds = 38
	s := newSATIN(t, r, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	r.engine.RunFor(80 * time.Second)
	rounds := s.Rounds()
	if len(rounds) != 38 {
		t.Fatalf("rounds = %d, want 38", len(rounds))
	}
	// System-wide round starts: consecutive gaps within [0, ~2*tp], and
	// actually varied (random deviation).
	tp := s.BasePeriod()
	varied := false
	for i := 1; i < len(rounds); i++ {
		gap := rounds[i].Started.Sub(rounds[i-1].Started)
		if gap < 0 || gap > 2*tp+tp/2 {
			t.Errorf("round gap %d = %v outside [0, 2tp]", i, gap)
		}
		if gap < tp*3/4 || gap > tp*5/4 {
			varied = true
		}
	}
	if !varied {
		t.Error("round gaps all ≈tp; random deviation not visible")
	}
	avg := rounds[len(rounds)-1].Started.Sub(rounds[0].Started) / time.Duration(len(rounds)-1)
	if avg < tp*3/4 || avg > tp*5/4 {
		t.Errorf("average gap %v, want ≈tp=%v", avg, tp)
	}
}

func TestSATINTimersSecuredAgainstNormalWorld(t *testing.T) {
	// The self-activation anchor: normal-world code cannot read or disarm
	// the wake-up schedule.
	r := newRig(t)
	cfg := DefaultConfig()
	cfg.MaxRounds = 1
	s := newSATIN(t, r, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for _, c := range r.plat.Cores() {
		if _, err := c.SecureTimer().ReadCVAL(hw.NormalWorld); err == nil {
			t.Errorf("core %d wake time readable from normal world", c.ID())
		}
		if err := c.SecureTimer().WriteCTL(hw.NormalWorld, false); err == nil {
			t.Errorf("core %d timer disarmable from normal world", c.ID())
		}
	}
}
