package experiment

import (
	"fmt"
	"time"

	"satin/internal/attack"
	"satin/internal/core"
	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/mem"
	"satin/internal/richos"
	"satin/internal/simclock"
	"satin/internal/stats"
	"satin/internal/syncguard"
	"satin/internal/trustzone"
)

// SyncBypassResult reproduces §VII-A and §VII-C: the synchronous guard
// blocks the rootkit; the write-what-where AP-flip bypasses it silently;
// asynchronous introspection then catches both the hijack and the bypass's
// own trace.
type SyncBypassResult struct {
	// InstallDenied: the guard rejected the first hijack attempt.
	InstallDenied bool
	// GuardTraps is how many writes the guard screened.
	GuardTraps int
	// BypassSucceeded: after the AP flip, the hijack landed.
	BypassSucceeded bool
	// GuardSawBypass: whether the post-exploit hijack reached the screen
	// (§VII-A says it must not: "without triggering the corresponding
	// synchronous introspection").
	GuardSawBypass bool
	// DirtyAreas are the areas one full asynchronous pass flagged
	// (expected: 14, the syscall table, and 17, the flipped PTE).
	DirtyAreas []int
}

// Render prints the layered-defense story.
func (r SyncBypassResult) Render() string {
	tbl := stats.NewTable("Stage", "Outcome")
	verdict := func(b bool, yes, no string) string {
		if b {
			return yes
		}
		return no
	}
	tbl.AddRow("rootkit vs synchronous guard", verdict(r.InstallDenied, "DENIED (trapped and screened)", "installed?!"))
	tbl.AddRow("guard traps", fmt.Sprintf("%d", r.GuardTraps))
	tbl.AddRow("AP-flip write-what-where", verdict(r.BypassSucceeded, "hijack landed", "failed"))
	tbl.AddRow("guard saw the bypassed write", verdict(r.GuardSawBypass, "yes?!", "no (bypass is silent)"))
	areas := ""
	for i, a := range r.DirtyAreas {
		if i > 0 {
			areas += " "
		}
		areas += fmt.Sprintf("%d", a)
	}
	tbl.AddRow("async introspection flags areas", areas+"  (14 = syscall table, 17 = flipped PTE)")
	return tbl.String()
}

// RunSyncBypass runs the layered-defense experiment end to end.
func RunSyncBypass(seed uint64) (SyncBypassResult, error) {
	rig, err := NewRig(seed)
	if err != nil {
		return SyncBypassResult{}, err
	}
	guard := syncguard.New(rig.OS)
	if err := guard.Install(); err != nil {
		return SyncBypassResult{}, err
	}
	var result SyncBypassResult

	rootkit := attack.NewRootkit(rig.OS, rig.Image)
	result.InstallDenied = rootkit.Install(0) != nil
	result.GuardTraps = guard.Trapped()

	layout := rig.Image.Layout()
	entry := layout.SyscallEntryAddr(mem.GettidNR)
	if _, err := syncguard.APFlipExploit(rig.Image, entry, mem.SyscallEntrySize); err != nil {
		return SyncBypassResult{}, err
	}
	trapsBefore := guard.Trapped()
	result.BypassSucceeded = rootkit.Install(1) == nil
	result.GuardSawBypass = guard.Trapped() != trapsBefore

	// One asynchronous pass over every area against the post-protection
	// golden hashes.
	areas, err := rig.JunoAreas()
	if err != nil {
		return SyncBypassResult{}, err
	}
	golden, err := introspect.GoldenTable(rig.Image, rig.Checker.Hash(), areas)
	if err != nil {
		return SyncBypassResult{}, err
	}
	var scan func(i int)
	scan = func(i int) {
		if i == len(areas) {
			return
		}
		err := rig.Monitor.RequestSecure(4, func(ctx *trustzone.Context) {
			cerr := rig.Checker.Check(ctx, introspect.DirectHash, areas[i].Addr, areas[i].Size, func(res introspect.Result) {
				if res.Sum != golden[i] {
					result.DirtyAreas = append(result.DirtyAreas, i)
				}
				ctx.Exit()
				rig.Engine.After(time.Millisecond, "next-area", func() { scan(i + 1) })
			})
			if cerr != nil {
				panic(cerr) // unreachable: areas validated
			}
		})
		if err != nil {
			panic(err) // unreachable: core free between areas
		}
	}
	scan(0)
	rig.Engine.Run()
	return result, nil
}

// UserProberResult reproduces §III-B1's user-level prober evaluation: on a
// loaded system (one CFS hog per core, like the paper's OpenEmbedded
// testbed), a pure EL0 prober (no kernel privilege) calibrates its
// threshold, then detects a full-kernel-check-sized secure residency with
// Tns_delay well under the check's duration. The paper measured
// Tns_delay < 5.97e-3 s against an 8.04e-2 s check.
type UserProberResult struct {
	// Threshold is the calibrated Tns_threshold.
	Threshold time.Duration
	// Delay is the measured Tns_delay against a live secure entry.
	Delay time.Duration
	// CheckDuration is the secure residency it had to beat.
	CheckDuration time.Duration
}

// Capable reports the paper's conclusion: the prober detects the check
// while it is still running.
func (r UserProberResult) Capable() bool { return r.Delay < r.CheckDuration }

// Render prints the measurement.
func (r UserProberResult) Render() string {
	tbl := stats.NewTable("Quantity", "Measured", "Paper")
	tbl.AddRow("calibrated threshold", stats.SciSeconds(r.Threshold.Seconds()), "—")
	tbl.AddRow("Tns_delay", stats.SciSeconds(r.Delay.Seconds()), "< 5.97e-03 s")
	tbl.AddRow("kernel check duration", stats.SciSeconds(r.CheckDuration.Seconds()), "8.04e-02 s")
	verdict := "prober detects the check in flight"
	if !r.Capable() {
		verdict = "prober too slow"
	}
	tbl.AddRow("verdict", verdict, "capable")
	return tbl.String()
}

// loadEveryCore spawns one CFS busy thread per core: the prober must share
// the machine, as on the paper's OpenEmbedded testbed.
func loadEveryCore(rig *Rig) error {
	for c := 0; c < rig.Plat.NumCores(); c++ {
		if _, err := rig.OS.Spawn(fmt.Sprintf("load-%d", c), richos.PolicyCFS, 0, []int{c},
			richos.ProgramFunc(func(*richos.ThreadContext) richos.Step {
				return richos.Compute(time.Millisecond)
			})); err != nil {
			return err
		}
	}
	return nil
}

// RunUserProber calibrates and evaluates the user-level prober on a loaded
// system.
func RunUserProber(seed uint64) (UserProberResult, error) {
	rig, err := NewRig(seed)
	if err != nil {
		return UserProberResult{}, err
	}
	if err := loadEveryCore(rig); err != nil {
		return UserProberResult{}, err
	}
	buffer, err := attack.NewReportBuffer(rig.Plat.NumCores(), attack.JunoCrossCoreNoise(), seed+4)
	if err != nil {
		return UserProberResult{}, err
	}
	// Calibration run (§VII-B) with user-level (CFS) probing threads.
	finish, err := attack.CalibrateThreshold(rig.OS, buffer, attack.UserProber, 5*time.Second, attack.DefaultThresholdSafety)
	if err != nil {
		return UserProberResult{}, err
	}
	rig.Engine.RunFor(5*time.Second + 100*time.Millisecond)
	threshold, err := finish()
	if err != nil {
		return UserProberResult{}, err
	}

	// Fresh rig for the measurement run.
	rig2, err := NewRig(seed + 50)
	if err != nil {
		return UserProberResult{}, err
	}
	if err := loadEveryCore(rig2); err != nil {
		return UserProberResult{}, err
	}
	buffer2, err := attack.NewReportBuffer(rig2.Plat.NumCores(), attack.JunoCrossCoreNoise(), seed+5)
	if err != nil {
		return UserProberResult{}, err
	}
	var suspectAt simclock.Time
	prober, err := attack.NewThreadProber(rig2.OS, buffer2, attack.ProberConfig{
		Kind:      attack.UserProber,
		Threshold: threshold,
		OnSuspect: func(core int, at simclock.Time) {
			if suspectAt == 0 {
				suspectAt = at
			}
		},
	})
	if err != nil {
		return UserProberResult{}, err
	}
	if err := prober.Start(); err != nil {
		return UserProberResult{}, err
	}
	// One A53 full-kernel-check-sized residency: ≈127 ms.
	const entry = 2 * time.Second
	check := 127 * time.Millisecond
	rig2.Engine.After(entry, "steal", func() { rig2.Plat.Core(1).SetWorld(hw.SecureWorld) })
	rig2.Engine.After(entry+check, "release", func() { rig2.Plat.Core(1).SetWorld(hw.NormalWorld) })
	rig2.Engine.RunFor(3 * time.Second)
	if suspectAt == 0 {
		return UserProberResult{}, fmt.Errorf("experiment: user prober missed the check entirely")
	}
	return UserProberResult{
		Threshold:     threshold,
		Delay:         suspectAt.Sub(simclock.Time(entry)),
		CheckDuration: check,
	}, nil
}

// KProber1ExposureResult reproduces §III-C1's caveat: KProber-I's vector
// hijack is itself an attacking trace. SATIN flags area 0 (which holds the
// exception vector table) on every pass, even with no rootkit installed.
type KProber1ExposureResult struct {
	Passes      int
	Area0Alarms int
}

// Render prints the result.
func (r KProber1ExposureResult) Render() string {
	tbl := stats.NewTable("Quantity", "Value")
	tbl.AddRow("full kernel passes", fmt.Sprintf("%d", r.Passes))
	tbl.AddRow("area-0 alarms (vector hijack trace)", fmt.Sprintf("%d", r.Area0Alarms))
	return tbl.String()
}

// RunKProber1Exposure installs KProber-I (and nothing else) and runs SATIN
// for the given number of passes.
func RunKProber1Exposure(seed uint64, passes int) (KProber1ExposureResult, error) {
	if passes <= 0 {
		return KProber1ExposureResult{}, fmt.Errorf("experiment: passes %d must be positive", passes)
	}
	rig, err := NewRig(seed)
	if err != nil {
		return KProber1ExposureResult{}, err
	}
	buffer, err := attack.NewReportBuffer(rig.Plat.NumCores(), attack.JunoCrossCoreNoise(), seed+4)
	if err != nil {
		return KProber1ExposureResult{}, err
	}
	kp1 := attack.NewKProber1(rig.OS, buffer)
	if err := kp1.Install(true); err != nil {
		return KProber1ExposureResult{}, err
	}
	areas, err := rig.JunoAreas()
	if err != nil {
		return KProber1ExposureResult{}, err
	}
	cfg := core.DefaultConfig()
	cfg.Tgoal = time.Duration(len(areas)) * time.Second
	cfg.MaxRounds = passes * len(areas)
	cfg.Seed = seed + 6
	satin, err := core.New(rig.Plat, rig.Monitor, rig.Image, rig.Checker, areas, cfg)
	if err != nil {
		return KProber1ExposureResult{}, err
	}
	if err := satin.Start(); err != nil {
		return KProber1ExposureResult{}, err
	}
	// KProber-I's busy threads tick forever: bounded horizon.
	rig.Engine.RunFor(time.Duration(cfg.MaxRounds+len(areas)) * 2 * time.Second)
	result := KProber1ExposureResult{Passes: satin.FullScans()}
	for _, a := range satin.Alarms() {
		if a.Area == 0 {
			result.Area0Alarms++
		}
	}
	return result, nil
}
