package experiment

import (
	"context"
	"fmt"
	"io"
	"time"

	"satin/internal/runner"
)

// The experiment registry: every runnable experiment registered under its
// CLI name, with a uniform dispatch surface. `benchtables -only=<name>`,
// the per-experiment shorthand flags, and the campaign cell executor all
// route through this table instead of hand-rolled switch statements — one
// place to add an experiment, one contract to satisfy.

// RunConfig parameterizes the single-seed (paper-layout) form of a
// registered experiment.
type RunConfig struct {
	// Seed is the root seed of the deterministic universe.
	Seed uint64
	// Quick shrinks long-running experiments (Fig 7's window, the
	// sensitivity grid) for smoke runs.
	Quick bool
	// Seeds and Workers feed experiments that are multi-seed by
	// construction (sensitivity) even in single-seed dispatch.
	Seeds   int
	Workers int
}

// Definition is one registry entry. Run renders the paper's single-seed
// form (section header included). Sweep, when non-nil, runs the multi-seed
// distribution form and returns the sweep plus its section title. Trial,
// when non-nil, runs one seed and flattens it to sweep metrics — the form
// the campaign cell executor dispatches through.
type Definition struct {
	Name  string
	Run   func(out io.Writer, rc RunConfig) error
	Sweep func(ctx context.Context, seed uint64, opt Options) (*runner.Sweep, string, error)
	Trial func(ctx context.Context, seed uint64) (runner.Metrics, error)
}

// Sweepable reports whether the experiment has a multi-seed form.
func (d Definition) Sweepable() bool { return d.Sweep != nil }

// Registry returns every registered experiment in presentation order — the
// order `benchtables` (no flags) runs them in.
func Registry() []Definition {
	return registry
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (Definition, bool) {
	for _, d := range registry {
		if d.Name == name {
			return d, true
		}
	}
	return Definition{}, false
}

// Names lists the registered experiment names in presentation order.
func Names() []string {
	names := make([]string, len(registry))
	for i, d := range registry {
		names[i] = d.Name
	}
	return names
}

// section prints a benchtables section header.
func section(out io.Writer, title string) {
	fmt.Fprintf(out, "\n=== %s ===\n", title)
}

var registry = []Definition{
	{Name: "table1", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunTable1(rc.Seed)
		if err != nil {
			return err
		}
		section(out, "Table I — Secure World Introspection Time (paper: A53 hash avg 1.07e-8 s, A57 hash avg 6.71e-9 s)")
		fmt.Fprint(out, res.Render())
		return nil
	}},
	{Name: "switch", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunSwitch(rc.Seed)
		if err != nil {
			return err
		}
		section(out, "Ts_switch (§IV-B1; paper: 2.38e-6 s – 3.60e-6 s, similar across core types)")
		fmt.Fprint(out, res.Render())
		return nil
	}},
	{Name: "recover", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunRecover(rc.Seed)
		if err != nil {
			return err
		}
		section(out, "Tns_recover (§IV-B2; paper: A53 avg 5.80e-3 s, A57 avg 4.96e-3 s)")
		fmt.Fprint(out, res.Render())
		return nil
	}},
	{Name: "table2", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunTable2(rc.Seed)
		if err != nil {
			return err
		}
		section(out, "Table II — Probing Threshold on Multi-Core (paper: avg 2.61e-4 s @8s ... 6.61e-4 s @300s)")
		fmt.Fprint(out, res.Render())
		return nil
	}},
	{Name: "table2thread", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunTable2ThreadLevel(rc.Seed, 8*time.Second, 3)
		if err != nil {
			return err
		}
		section(out, "Table II cross-validation — thread-level prober vs the calibrated model (8 s rounds)")
		fmt.Fprint(out, res.Render())
		return nil
	}},
	{Name: "fig3", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunFig3(rc.Seed)
		if err != nil {
			return err
		}
		section(out, "Figure 3 — Race Condition Between Two Worlds (measured timelines)")
		fmt.Fprint(out, RenderFig3(res))
		return nil
	}},
	{Name: "fig4", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunTable2(rc.Seed + 100)
		if err != nil {
			return err
		}
		section(out, "Figure 4 — KProber Probing Threshold Stability (box plots)")
		fmt.Fprint(out, res.RenderFig4())
		fmt.Fprintln(out)
		fmt.Fprint(out, res.ChartFig4(64))
		return nil
	}},
	{Name: "singlecore", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunSingleCore(rc.Seed, 8*time.Second)
		if err != nil {
			return err
		}
		section(out, "Single-core probing (§IV-B2; paper: ≈1/4 of the all-core threshold)")
		fmt.Fprint(out, res.Render())
		return nil
	}},
	{Name: "race", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunRace(rc.Seed)
		if err != nil {
			return err
		}
		section(out, "Race-condition analysis (§IV-C; paper: S ≤ 1,218,351 B, ≈90% unprotected)")
		fmt.Fprint(out, res.Render())
		return nil
	}, Sweep: func(ctx context.Context, seed uint64, opt Options) (*runner.Sweep, string, error) {
		sw, err := RunRaceSweep(ctx, seed, opt)
		return sw, "Race-condition analysis, multi-seed (§IV-C; paper: ≈90% unprotected)", err
	}, Trial: TrialRace},
	{Name: "evasion", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunEvasion(rc.Seed, 10, 8*time.Second)
		if err != nil {
			return err
		}
		section(out, "TZ-Evader vs baseline introspection (§IV premise; expected: 100% evasion)")
		fmt.Fprint(out, res.Render())
		return nil
	}, Sweep: func(ctx context.Context, seed uint64, opt Options) (*runner.Sweep, string, error) {
		sw, err := RunEvasionSweep(ctx, seed, 10, 8*time.Second, opt)
		return sw, "TZ-Evader vs baseline, multi-seed (§IV premise; expected: 100% evasion)", err
	}, Trial: TrialEvasion},
	{Name: "detection", Run: func(out io.Writer, rc RunConfig) error {
		cfg := DefaultDetectionConfig()
		cfg.Seed = rc.Seed
		res, err := RunDetection(cfg)
		if err != nil {
			return err
		}
		section(out, "SATIN detection experiment (§VI-B1)")
		fmt.Fprint(out, res.Render())
		return nil
	}, Sweep: func(ctx context.Context, seed uint64, opt Options) (*runner.Sweep, string, error) {
		cfg := DefaultDetectionConfig()
		cfg.Seed = seed
		sw, err := RunDetectionSweep(ctx, cfg, opt)
		return sw, "SATIN detection experiment, multi-seed (§VI-B1; paper: 10/10, 0 FP/FN at seed 1)", err
	}, Trial: TrialDetection},
	{Name: "fig7", Run: func(out io.Writer, rc RunConfig) error {
		cfg := DefaultFig7Config()
		cfg.Seed = rc.Seed
		if rc.Quick {
			cfg.Window = 60 * time.Second
		}
		res, err := RunFig7(cfg)
		if err != nil {
			return err
		}
		section(out, "Figure 7 — SATIN Overhead (paper: avg 0.711% 1-task / 0.848% 6-task; spikes: file copy 256B 3.556%, context switching 3.912%)")
		fmt.Fprint(out, res.Render())
		fmt.Fprintln(out, "\n1-task degradation:")
		fmt.Fprint(out, res.Chart(1, 50))
		fmt.Fprintln(out, "6-task degradation:")
		fmt.Fprint(out, res.Chart(6, 50))
		return nil
	}},
	{Name: "ablation", Run: func(out io.Writer, rc RunConfig) error {
		cfg := DefaultAblationConfig()
		cfg.Seed = rc.Seed
		res, err := RunAblation(cfg)
		if err != nil {
			return err
		}
		section(out, "Ablation — SATIN design choices vs best-response evaders (DESIGN.md E11)")
		fmt.Fprint(out, res.Render())
		return nil
	}},
	{Name: "decompose", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunDecomposition(rc.Seed, 240*time.Second)
		if err != nil {
			return err
		}
		section(out, "Overhead decomposition — structural stall vs fitted warm-state penalty (context switching)")
		fmt.Fprint(out, res.Render())
		return nil
	}},
	{Name: "msweep", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunMSweep(rc.Seed, 0.5)
		if err != nil {
			return err
		}
		section(out, "Trace-size sweep — Tns_recover is the evader's bottleneck (§IV-C observation 4)")
		fmt.Fprint(out, res.Render())
		return nil
	}},
	{Name: "flood", Run: func(out io.Writer, rc RunConfig) error {
		cfg := DefaultFloodConfig()
		cfg.Seed = rc.Seed
		res, err := RunFlood(cfg)
		if err != nil {
			return err
		}
		section(out, fmt.Sprintf("Interrupt-flood ablation — why SATIN requires SCR_EL3.IRQ=0 (§II-B/§V-B); %.0f SGIs/s per core", res.Rate))
		fmt.Fprint(out, res.Render())
		return nil
	}},
	{Name: "syncbypass", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunSyncBypass(rc.Seed)
		if err != nil {
			return err
		}
		section(out, "Layered defense — synchronous guard, AP-flip bypass, asynchronous catch (§VII-A/§VII-C)")
		fmt.Fprint(out, res.Render())
		return nil
	}},
	{Name: "userprober", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunUserProber(rc.Seed)
		if err != nil {
			return err
		}
		section(out, "User-level prober (§III-B1; paper: Tns_delay < 5.97e-3 s vs 8.04e-2 s check)")
		fmt.Fprint(out, res.Render())
		return nil
	}},
	{Name: "kprober1", Run: func(out io.Writer, rc RunConfig) error {
		res, err := RunKProber1Exposure(rc.Seed, 3)
		if err != nil {
			return err
		}
		section(out, "KProber-I self-exposure — the vector hijack is introspection-visible (§III-C1)")
		fmt.Fprint(out, res.Render())
		return nil
	}},
	{Name: "sensitivity", Run: func(out io.Writer, rc RunConfig) error {
		// The sensitivity chart is multi-seed by construction: every
		// magnitude is its own detection sweep, so -seeds and -workers
		// apply here even without the generic sweep path.
		cfg := DefaultSensitivityConfig()
		cfg.Detection.Seed = rc.Seed
		cfg.Workers = rc.Workers
		if rc.Seeds > 1 {
			cfg.Seeds = rc.Seeds
		}
		if rc.Quick {
			cfg.Magnitudes = []float64{0, 2, 6}
			cfg.Detection.FullScans = 4
		}
		res, err := RunSensitivity(context.Background(), cfg, nil)
		if err != nil {
			return err
		}
		section(out, fmt.Sprintf("Fault-injection sensitivity — detection probability vs perturbation magnitude (%d seeds each)", cfg.Seeds))
		fmt.Fprint(out, res.Render())
		if fb := res.FirstBreak(); fb >= 0 {
			fmt.Fprintf(out, "first magnitude breaking 10/10 detection: %g\n", fb)
		} else {
			fmt.Fprintln(out, "detection never degraded across the charted magnitudes")
		}
		return nil
	}},
}
