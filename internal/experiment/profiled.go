package experiment

import (
	"context"
	"fmt"
	"sync"
	"time"

	"satin/internal/profile"
	"satin/internal/runner"
	"satin/internal/stats"
)

// Profiled sweeps: the detection experiment rerun with the causal span
// profiler attached to every seed's rig. Per-seed summaries are collected
// in a seed-indexed slice and merged in seed order, so the aggregate
// attribution — like every other sweep output — is byte-identical for any
// worker count.

// ProfileMetrics flattens one seed's span attribution into sweep samples.
func ProfileMetrics(s profile.Summary) runner.Metrics {
	var normal, scan, sw float64
	for _, c := range s.Cores {
		normal += c.Normal.Seconds()
		scan += c.Scan.Seconds()
		sw += c.Switch.Seconds()
	}
	total := normal + scan + sw
	frac := func(x float64) float64 {
		if total == 0 {
			return 0
		}
		return x / total
	}
	m := runner.Metrics{}.Add("scan residency", frac(scan))
	m = m.Add("switch residency", frac(sw))
	m = m.Add("world switches", float64(s.WorldSwitches))
	m = m.Add("hash chunks", float64(s.Chunks))
	if len(s.Windows) > 0 {
		m = m.Add("evasion window p50 (ms)", stats.NewDist(durationsToSeconds(s.Windows)).P50*1e3)
	}
	if len(s.Latencies) > 0 {
		m = m.Add("detection latency p50 (s)", stats.NewDist(durationsToSeconds(s.Latencies)).P50)
	}
	if margin, ok := s.RaceMargin(); ok {
		m = m.Add("race margin (ms)", margin.Seconds()*1e3)
	}
	return m
}

// RunDetectionProfileSweep runs the §VI-B1 detection experiment with the
// profiler attached for seeds cfg.Seed..cfg.Seed+opt.Seeds-1 across the
// worker pool. It returns the per-seed metric sweep plus the merged
// attribution summary over every successful seed, both deterministic in the
// worker count.
func RunDetectionProfileSweep(ctx context.Context, cfg DetectionConfig, opt Options) (*runner.Sweep, profile.Summary, error) {
	seeds := opt.Seeds
	if seeds < 1 {
		return nil, profile.Summary{}, fmt.Errorf("experiment: profile sweep needs at least 1 seed, got %d", seeds)
	}
	base := cfg.Seed
	// Seed-indexed, written concurrently by the pool (one distinct slot per
	// trial) and read only after the sweep returns.
	perSeed := make([]*profile.Summary, seeds)
	var mu sync.Mutex
	sweep, err := runner.RunSweepObserved(ctx, "SATIN detection, profiled (§VI-B1)", base, seeds, opt.Workers, opt.Progress,
		func(_ context.Context, seed uint64) (runner.Metrics, error) {
			c := cfg
			c.Seed = seed
			c.Profile = true
			res, err := RunDetection(c)
			if err != nil {
				return nil, err
			}
			if res.Profile == nil {
				return nil, fmt.Errorf("experiment: profiled run for seed %d produced no summary", seed)
			}
			mu.Lock()
			perSeed[seed-base] = res.Profile
			mu.Unlock()
			return DetectionMetrics(res).Extend(ProfileMetrics(*res.Profile)), nil
		})
	if err != nil {
		return nil, profile.Summary{}, err
	}
	ordered := make([]profile.Summary, 0, seeds)
	for _, s := range perSeed {
		if s != nil {
			ordered = append(ordered, *s)
		}
	}
	return sweep, profile.Merge(ordered), nil
}

// durationsToSeconds converts a duration pool for stats aggregation.
func durationsToSeconds(ds []time.Duration) []float64 {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return xs
}
