package experiment

import (
	"fmt"
	"time"

	"satin/internal/attack"
	"satin/internal/core"
	"satin/internal/introspect"
	"satin/internal/stats"
)

// EvasionResult reproduces the premise of §IV/§VI: TZ-Evader defeats the
// state-of-the-art baseline (random-period, random-core, full-kernel
// asynchronous introspection), while the attack stays active essentially
// the whole time.
type EvasionResult struct {
	Rounds        int
	CleanVerdicts int
	// EvasionRate is the fraction of rounds the baseline reported clean
	// despite the persistent rootkit (paper's implication: 100% for a
	// trace deep in the kernel).
	EvasionRate float64
	// SuspectEvents is how many introspection entries the evader's prober
	// flagged.
	SuspectEvents int
	// ActiveFraction approximates the share of time the rootkit spent
	// attacking (vs hidden for evasion).
	ActiveFraction float64
}

// Render prints the result.
func (r EvasionResult) Render() string {
	tbl := stats.NewTable("Quantity", "Value")
	tbl.AddRow("baseline rounds", fmt.Sprintf("%d", r.Rounds))
	tbl.AddRow("clean verdicts (evaded)", fmt.Sprintf("%d", r.CleanVerdicts))
	tbl.AddRow("evasion success rate", stats.Pct(r.EvasionRate))
	tbl.AddRow("prober suspect events", fmt.Sprintf("%d", r.SuspectEvents))
	tbl.AddRow("rootkit active fraction", stats.Pct(r.ActiveFraction))
	return tbl.String()
}

// RunEvasion races TZ-Evader against `rounds` rounds of the randomized
// full-kernel baseline with the paper's GETTID rootkit (trace ≈81% into
// the kernel).
func RunEvasion(seed uint64, rounds int, period time.Duration) (EvasionResult, error) {
	if rounds <= 0 || period <= 0 {
		return EvasionResult{}, fmt.Errorf("experiment: rounds %d and period %v must be positive", rounds, period)
	}
	rig, err := NewRig(seed)
	if err != nil {
		return EvasionResult{}, err
	}
	rootkit := attack.NewRootkit(rig.OS, rig.Image)
	evader, err := attack.NewFastEvader(rig.Plat, rig.Image, rootkit,
		attack.DefaultProberSleep, core.DefaultTnsThreshold, seed+7)
	if err != nil {
		return EvasionResult{}, err
	}
	if err := evader.Start(); err != nil {
		return EvasionResult{}, err
	}
	baseline, err := introspect.NewBaseline(rig.Plat, rig.Monitor, rig.Checker, rig.Image, seed+11, introspect.BaselineConfig{
		Period:          period,
		RandomizePeriod: true,
		Selection:       introspect.RandomCore,
		Technique:       introspect.DirectHash,
		MaxRounds:       rounds,
	})
	if err != nil {
		return EvasionResult{}, err
	}
	if err := baseline.Start(); err != nil {
		return EvasionResult{}, err
	}
	rig.Engine.Run()

	outs := baseline.Outcomes()
	result := EvasionResult{Rounds: len(outs), SuspectEvents: len(evader.SuspectEvents())}
	for _, o := range outs {
		if o.Clean {
			result.CleanVerdicts++
		}
	}
	if len(outs) > 0 {
		result.EvasionRate = float64(result.CleanVerdicts) / float64(len(outs))
	}
	result.ActiveFraction = activeFraction(rootkit, rig)
	return result, nil
}

// activeFraction integrates the rootkit's active time over the run.
func activeFraction(rootkit *attack.Rootkit, rig *Rig) float64 {
	total := rig.Engine.Now()
	if total == 0 {
		return 0
	}
	var active time.Duration
	var activeSince = -1
	transitions := rootkit.Transitions()
	for _, tr := range transitions {
		if tr.State == attack.RootkitActive {
			if activeSince < 0 {
				activeSince = int(tr.At)
			}
		} else if activeSince >= 0 {
			active += tr.At.Duration() - time.Duration(activeSince)
			activeSince = -1
		}
	}
	if activeSince >= 0 {
		active += total.Duration() - time.Duration(activeSince)
	}
	return active.Seconds() / total.Duration().Seconds()
}
