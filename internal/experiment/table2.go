package experiment

import (
	"time"

	"satin/internal/attack"
	"satin/internal/hw"
	"satin/internal/simclock"
	"satin/internal/stats"
)

// Table2Periods are the probing periods of Table II.
func Table2Periods() []time.Duration {
	return []time.Duration{
		8 * time.Second,
		16 * time.Second,
		30 * time.Second,
		120 * time.Second,
		300 * time.Second,
	}
}

// Table2Rounds is the paper's sample count per period ("we repeat the
// measurement 50 times").
const Table2Rounds = 50

// Table2Row is one probing period's threshold statistics.
type Table2Row struct {
	Period time.Duration
	// Thresholds are the per-round maxima in seconds.
	Thresholds stats.Summary
	// Box is the five-number summary rendered in Figure 4.
	Box stats.BoxPlot
}

// Table2Result reproduces Table II ("Probing Threshold on Multi-Core") and
// carries the box-plot data of Figure 4.
type Table2Result struct {
	Rows []Table2Row
}

// Render prints Table II in the paper's layout.
func (r Table2Result) Render() string {
	tbl := stats.NewTable("Probing Period", "Average", "Max", "Min")
	for _, row := range r.Rows {
		tbl.AddRow(
			row.Period.String(),
			stats.SciSeconds(row.Thresholds.Mean),
			stats.SciSeconds(row.Thresholds.Max),
			stats.SciSeconds(row.Thresholds.Min),
		)
	}
	return tbl.String()
}

// RenderFig4 prints the Figure 4 box-plot data (per-period five-number
// summaries plus outliers).
func (r Table2Result) RenderFig4() string {
	tbl := stats.NewTable("Period", "LowWhisk", "Q1", "Median", "Q3", "HighWhisk", "Outliers")
	for _, row := range r.Rows {
		outliers := ""
		for i, o := range row.Box.Outliers {
			if i > 0 {
				outliers += " "
			}
			outliers += stats.Sci(o)
		}
		tbl.AddRow(
			row.Period.String(),
			stats.Sci(row.Box.LowerWhisk),
			stats.Sci(row.Box.Q1),
			stats.Sci(row.Box.Median),
			stats.Sci(row.Box.Q3),
			stats.Sci(row.Box.UpperWhisk),
			outliers,
		)
	}
	return tbl.String()
}

// ChartFig4 renders Figure 4 as an ASCII box-and-whisker chart.
func (r Table2Result) ChartFig4(width int) string {
	labels := make([]string, len(r.Rows))
	boxes := make([]stats.BoxPlot, len(r.Rows))
	for i, row := range r.Rows {
		labels[i] = row.Period.String()
		boxes[i] = row.Box
	}
	return stats.BoxPlotChart(labels, boxes, width, stats.Sci)
}

// RunTable2 samples 50 probing rounds per period from the calibrated
// threshold model (see attack.ThresholdModel for why the model, not the
// thread-level prober, generates the full-scale table, and the attack test
// suite for the cross-validation between the two). The model itself cannot
// fail; the error return normalizes the entry-point contract so registry
// dispatch needs no special cases.
func RunTable2(seed uint64) (Table2Result, error) {
	m := attack.JunoThresholdModel(hw.JunoR1PerfModel())
	g := simclock.NewRNG(seed, "experiment.table2")
	var result Table2Result
	for _, period := range Table2Periods() {
		rounds := m.RoundSet(period, Table2Rounds, g)
		xs := make([]float64, len(rounds))
		for i, d := range rounds {
			xs[i] = d.Seconds()
		}
		result.Rows = append(result.Rows, Table2Row{
			Period:     period,
			Thresholds: stats.Summarize(xs),
			Box:        stats.NewBoxPlot(xs),
		})
	}
	return result, nil
}

// SingleCoreResult reproduces §IV-B2's single-core-probing observation: the
// average threshold when probing one fixed core is ≈1/4 of the all-core
// threshold.
type SingleCoreResult struct {
	Period     time.Duration
	AllCores   stats.Summary
	SingleCore stats.Summary
	Ratio      float64
}

// Render prints the comparison.
func (r SingleCoreResult) Render() string {
	tbl := stats.NewTable("Probing Target", "Average Threshold", "Ratio")
	tbl.AddRow("all 6 cores", stats.SciSeconds(r.AllCores.Mean), "1.00")
	tbl.AddRow("single fixed core", stats.SciSeconds(r.SingleCore.Mean), stats.Sci(r.Ratio))
	return tbl.String()
}

// RunSingleCore compares all-core and single-core probing thresholds at the
// given period. The model itself cannot fail; the error return normalizes
// the entry-point contract so registry dispatch needs no special cases.
func RunSingleCore(seed uint64, period time.Duration) (SingleCoreResult, error) {
	m := attack.JunoThresholdModel(hw.JunoR1PerfModel())
	s := m.SingleCoreModel()
	g := simclock.NewRNG(seed, "experiment.singlecore")
	toXs := func(ds []time.Duration) []float64 {
		xs := make([]float64, len(ds))
		for i, d := range ds {
			xs[i] = d.Seconds()
		}
		return xs
	}
	all := stats.Summarize(toXs(m.RoundSet(period, Table2Rounds, g)))
	single := stats.Summarize(toXs(s.RoundSet(period, Table2Rounds, g)))
	return SingleCoreResult{
		Period:     period,
		AllCores:   all,
		SingleCore: single,
		Ratio:      single.Mean / all.Mean,
	}, nil
}
