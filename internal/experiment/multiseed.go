package experiment

import (
	"context"
	"time"

	"satin/internal/runner"
)

// Multi-seed sweeps. The paper reports its headline results from one run of
// one universe (10/10 detections, 0 FP/FN in §VI-B1; ~90% evasion in
// §IV-C) — statistical claims about a timing race, asserted from a single
// Monte Carlo sample. These variants rerun each experiment across N
// independent seeds on a worker pool and aggregate per-seed metrics into
// distributions, so the reproduction can state detection and evasion
// *rates* with spread. Aggregation is in seed order and byte-identical for
// any worker count.

// Options configures the multi-seed form of an experiment: how many
// independent seeds to run, how wide the worker pool is, and an optional
// live completion observer. One struct instead of the historical
// Run*Sweep/Run*SweepObserved pairs: every sweep entry point takes a ctx
// and an Options, so the registry and the campaign engine can dispatch any
// experiment uniformly.
type Options struct {
	// Seeds is the number of independent seeds (trials); must be >= 1.
	Seeds int
	// Workers bounds the worker pool (0 or negative = GOMAXPROCS).
	Workers int
	// Progress, when non-nil, observes per-trial completions live. Notices
	// arrive in completion order with wall-clock durations — diagnostics
	// only, never part of deterministic output.
	Progress runner.Progress
}

// DetectionMetrics flattens one seed's DetectionResult into sweep samples.
func DetectionMetrics(r DetectionResult) runner.Metrics {
	m := runner.Metrics{}.Add("detection rate", ratio(r.Detections, r.AttackedAreaChecks))
	m = m.Add("rounds", float64(r.Rounds))
	m = m.Add("area-14 checks", float64(r.AttackedAreaChecks))
	m = m.Add("prober false negatives", float64(r.FalseNegatives))
	m = m.Add("prober false positives", float64(r.FalsePositives))
	m = m.Add("area-14 gap (s)", r.MeanAttackedAreaGap.Seconds())
	return m.Add("full-scan time (s)", r.MeanFullScanTime.Seconds())
}

// TrialDetection runs one seed of the §VI-B1 detection experiment at the
// paper's default configuration and flattens it to sweep metrics — the
// registry's per-seed dispatch form.
func TrialDetection(_ context.Context, seed uint64) (runner.Metrics, error) {
	cfg := DefaultDetectionConfig()
	cfg.Seed = seed
	res, err := RunDetection(cfg)
	if err != nil {
		return nil, err
	}
	return DetectionMetrics(res), nil
}

// RunDetectionSweep runs the §VI-B1 detection experiment for seeds
// cfg.Seed..cfg.Seed+opt.Seeds-1 across the worker pool.
func RunDetectionSweep(ctx context.Context, cfg DetectionConfig, opt Options) (*runner.Sweep, error) {
	base := cfg.Seed
	return runner.RunSweepObserved(ctx, "SATIN detection (§VI-B1)", base, opt.Seeds, opt.Workers, opt.Progress,
		func(_ context.Context, seed uint64) (runner.Metrics, error) {
			c := cfg
			c.Seed = seed
			res, err := RunDetection(c)
			if err != nil {
				return nil, err
			}
			return DetectionMetrics(res), nil
		})
}

// EvasionMetrics flattens one seed's EvasionResult into sweep samples.
func EvasionMetrics(r EvasionResult) runner.Metrics {
	m := runner.Metrics{}.Add("evasion rate", r.EvasionRate)
	m = m.Add("baseline rounds", float64(r.Rounds))
	m = m.Add("clean verdicts", float64(r.CleanVerdicts))
	m = m.Add("prober suspect events", float64(r.SuspectEvents))
	return m.Add("rootkit active fraction", r.ActiveFraction)
}

// TrialEvasion runs one seed of the §IV TZ-Evader-vs-baseline experiment at
// the benchtables defaults (10 rounds, 8 s period) and flattens it to sweep
// metrics.
func TrialEvasion(_ context.Context, seed uint64) (runner.Metrics, error) {
	res, err := RunEvasion(seed, 10, 8*time.Second)
	if err != nil {
		return nil, err
	}
	return EvasionMetrics(res), nil
}

// RunEvasionSweep runs the §IV TZ-Evader-vs-baseline experiment for seeds
// base..base+opt.Seeds-1 across the worker pool.
func RunEvasionSweep(ctx context.Context, base uint64, rounds int, period time.Duration, opt Options) (*runner.Sweep, error) {
	return runner.RunSweepObserved(ctx, "TZ-Evader vs baseline (§IV)", base, opt.Seeds, opt.Workers, opt.Progress,
		func(_ context.Context, seed uint64) (runner.Metrics, error) {
			res, err := RunEvasion(seed, rounds, period)
			if err != nil {
				return nil, err
			}
			return EvasionMetrics(res), nil
		})
}

// RaceMetrics flattens one seed's RaceResult into sweep samples.
func RaceMetrics(r RaceResult) runner.Metrics {
	m := runner.Metrics{}.Add("unprotected (empirical)", r.UnprotectedEmpirical)
	m = m.Add("unprotected (analytic)", r.UnprotectedAnalytic)
	return m.Add("S bound (bytes)", float64(r.SBound))
}

// TrialRace runs one seed of the §IV-C race analysis and flattens it to
// sweep metrics.
func TrialRace(_ context.Context, seed uint64) (runner.Metrics, error) {
	res, err := RunRace(seed)
	if err != nil {
		return nil, err
	}
	return RaceMetrics(res), nil
}

// RunRaceSweep runs the §IV-C race analysis for seeds
// base..base+opt.Seeds-1 across the worker pool.
func RunRaceSweep(ctx context.Context, base uint64, opt Options) (*runner.Sweep, error) {
	return runner.RunSweepObserved(ctx, "race-condition analysis (§IV-C)", base, opt.Seeds, opt.Workers, opt.Progress,
		func(_ context.Context, seed uint64) (runner.Metrics, error) {
			return TrialRace(ctx, seed)
		})
}

// ratio divides, reporting 0 for an empty denominator.
func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
