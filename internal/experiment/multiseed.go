package experiment

import (
	"context"
	"time"

	"satin/internal/runner"
)

// Multi-seed sweeps. The paper reports its headline results from one run of
// one universe (10/10 detections, 0 FP/FN in §VI-B1; ~90% evasion in
// §IV-C) — statistical claims about a timing race, asserted from a single
// Monte Carlo sample. These variants rerun each experiment across N
// independent seeds on a worker pool and aggregate per-seed metrics into
// distributions, so the reproduction can state detection and evasion
// *rates* with spread. Aggregation is in seed order and byte-identical for
// any worker count.

// DetectionMetrics flattens one seed's DetectionResult into sweep samples.
func DetectionMetrics(r DetectionResult) runner.Metrics {
	m := runner.Metrics{}.Add("detection rate", ratio(r.Detections, r.AttackedAreaChecks))
	m = m.Add("rounds", float64(r.Rounds))
	m = m.Add("area-14 checks", float64(r.AttackedAreaChecks))
	m = m.Add("prober false negatives", float64(r.FalseNegatives))
	m = m.Add("prober false positives", float64(r.FalsePositives))
	m = m.Add("area-14 gap (s)", r.MeanAttackedAreaGap.Seconds())
	return m.Add("full-scan time (s)", r.MeanFullScanTime.Seconds())
}

// RunDetectionSweep runs the §VI-B1 detection experiment for seeds
// cfg.Seed..cfg.Seed+seeds-1 across the worker pool.
func RunDetectionSweep(ctx context.Context, cfg DetectionConfig, seeds, workers int) (*runner.Sweep, error) {
	return RunDetectionSweepObserved(ctx, cfg, seeds, workers, nil)
}

// RunDetectionSweepObserved is RunDetectionSweep with a live per-trial
// progress observer (may be nil).
func RunDetectionSweepObserved(ctx context.Context, cfg DetectionConfig, seeds, workers int, progress runner.Progress) (*runner.Sweep, error) {
	base := cfg.Seed
	return runner.RunSweepObserved(ctx, "SATIN detection (§VI-B1)", base, seeds, workers, progress,
		func(_ context.Context, seed uint64) (runner.Metrics, error) {
			c := cfg
			c.Seed = seed
			res, err := RunDetection(c)
			if err != nil {
				return nil, err
			}
			return DetectionMetrics(res), nil
		})
}

// EvasionMetrics flattens one seed's EvasionResult into sweep samples.
func EvasionMetrics(r EvasionResult) runner.Metrics {
	m := runner.Metrics{}.Add("evasion rate", r.EvasionRate)
	m = m.Add("baseline rounds", float64(r.Rounds))
	m = m.Add("clean verdicts", float64(r.CleanVerdicts))
	m = m.Add("prober suspect events", float64(r.SuspectEvents))
	return m.Add("rootkit active fraction", r.ActiveFraction)
}

// RunEvasionSweep runs the §IV TZ-Evader-vs-baseline experiment for seeds
// base..base+seeds-1 across the worker pool.
func RunEvasionSweep(ctx context.Context, base uint64, seeds, workers, rounds int, period time.Duration) (*runner.Sweep, error) {
	return RunEvasionSweepObserved(ctx, base, seeds, workers, rounds, period, nil)
}

// RunEvasionSweepObserved is RunEvasionSweep with a live per-trial progress
// observer (may be nil).
func RunEvasionSweepObserved(ctx context.Context, base uint64, seeds, workers, rounds int, period time.Duration, progress runner.Progress) (*runner.Sweep, error) {
	return runner.RunSweepObserved(ctx, "TZ-Evader vs baseline (§IV)", base, seeds, workers, progress,
		func(_ context.Context, seed uint64) (runner.Metrics, error) {
			res, err := RunEvasion(seed, rounds, period)
			if err != nil {
				return nil, err
			}
			return EvasionMetrics(res), nil
		})
}

// RaceMetrics flattens one seed's RaceResult into sweep samples.
func RaceMetrics(r RaceResult) runner.Metrics {
	m := runner.Metrics{}.Add("unprotected (empirical)", r.UnprotectedEmpirical)
	m = m.Add("unprotected (analytic)", r.UnprotectedAnalytic)
	return m.Add("S bound (bytes)", float64(r.SBound))
}

// RunRaceSweep runs the §IV-C race analysis for seeds base..base+seeds-1
// across the worker pool.
func RunRaceSweep(ctx context.Context, base uint64, seeds, workers int) (*runner.Sweep, error) {
	return RunRaceSweepObserved(ctx, base, seeds, workers, nil)
}

// RunRaceSweepObserved is RunRaceSweep with a live per-trial progress
// observer (may be nil).
func RunRaceSweepObserved(ctx context.Context, base uint64, seeds, workers int, progress runner.Progress) (*runner.Sweep, error) {
	return runner.RunSweepObserved(ctx, "race-condition analysis (§IV-C)", base, seeds, workers, progress,
		func(_ context.Context, seed uint64) (runner.Metrics, error) {
			res, err := RunRace(seed)
			if err != nil {
				return nil, err
			}
			return RaceMetrics(res), nil
		})
}

// ratio divides, reporting 0 for an empty denominator.
func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
