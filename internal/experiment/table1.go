package experiment

import (
	"fmt"
	"time"

	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/simclock"
	"satin/internal/stats"
	"satin/internal/trustzone"
)

// Table1Repetitions is the paper's sample count: "Each measurement is
// repeated 50 times" (§IV-B1).
const Table1Repetitions = 50

// Table1Cell is one (core type, technique) measurement set: the per-byte
// introspection time statistics of Table I.
type Table1Cell struct {
	Core      hw.CoreType
	Technique introspect.Technique
	// PerByte are the per-check per-byte times in seconds.
	PerByte stats.Summary
}

// Table1Result reproduces Table I ("Secure World Introspection Time").
type Table1Result struct {
	Cells []Table1Cell
}

// Cell returns the measurement set for (core, tech).
func (r Table1Result) Cell(core hw.CoreType, tech introspect.Technique) (Table1Cell, error) {
	for _, c := range r.Cells {
		if c.Core == core && c.Technique == tech {
			return c, nil
		}
	}
	return Table1Cell{}, fmt.Errorf("experiment: no Table I cell for %v/%v", core, tech)
}

// Render prints the table in the paper's layout.
func (r Table1Result) Render() string {
	tbl := stats.NewTable("Core-Time", "Hash 1-Byte", "Snapshot 1-byte")
	for _, core := range []hw.CoreType{hw.CortexA53, hw.CortexA57} {
		rows := []struct {
			label string
			pick  func(stats.Summary) float64
		}{
			{"Average", func(s stats.Summary) float64 { return s.Mean }},
			{"Max", func(s stats.Summary) float64 { return s.Max }},
			{"Min", func(s stats.Summary) float64 { return s.Min }},
		}
		for _, row := range rows {
			hashCell, err := r.Cell(core, introspect.DirectHash)
			if err != nil {
				continue
			}
			snapCell, err := r.Cell(core, introspect.SnapshotHash)
			if err != nil {
				continue
			}
			tbl.AddRow(
				fmt.Sprintf("%v-%s", core, row.label),
				stats.SciSeconds(row.pick(hashCell.PerByte)),
				stats.SciSeconds(row.pick(snapCell.PerByte)),
			)
		}
	}
	return tbl.String()
}

// RunTable1 reproduces Table I: 50 repetitions of hashing and
// snapshot-hashing the full kernel on one A53 and one A57 core, reporting
// per-byte times.
func RunTable1(seed uint64) (Table1Result, error) {
	var result Table1Result
	for _, core := range []hw.CoreType{hw.CortexA53, hw.CortexA57} {
		for _, tech := range []introspect.Technique{introspect.DirectHash, introspect.SnapshotHash} {
			samples, err := measurePerByte(seed, core, tech, Table1Repetitions)
			if err != nil {
				return Table1Result{}, err
			}
			result.Cells = append(result.Cells, Table1Cell{
				Core:      core,
				Technique: tech,
				PerByte:   stats.Summarize(samples),
			})
		}
	}
	return result, nil
}

// measurePerByte runs reps sequential full-kernel checks and returns the
// per-byte elapsed times.
func measurePerByte(seed uint64, core hw.CoreType, tech introspect.Technique, reps int) ([]float64, error) {
	rig, err := NewRig(seed)
	if err != nil {
		return nil, err
	}
	target, err := rig.Plat.FirstCoreOfType(core)
	if err != nil {
		return nil, err
	}
	layout := rig.Image.Layout()
	size := layout.TotalSize()
	samples := make([]float64, 0, reps)
	var launch func(i int)
	var launchErr error
	launch = func(i int) {
		if i == reps {
			return
		}
		err := rig.Monitor.RequestSecure(target.ID(), func(ctx *trustzone.Context) {
			cerr := rig.Checker.Check(ctx, tech, layout.Base, size, func(res introspect.Result) {
				samples = append(samples, res.Elapsed().Seconds()/float64(size))
				ctx.Exit()
				rig.Engine.After(time.Millisecond, "next-rep", func() { launch(i + 1) })
			})
			if cerr != nil {
				launchErr = cerr
				ctx.Exit()
			}
		})
		if err != nil {
			launchErr = err
		}
	}
	launch(0)
	rig.Engine.Run()
	if launchErr != nil {
		return nil, launchErr
	}
	if len(samples) != reps {
		return nil, fmt.Errorf("experiment: collected %d samples, want %d", len(samples), reps)
	}
	return samples, nil
}

// SwitchResult reproduces the §IV-B1 Ts_switch measurement: 50 world
// switches on an A53 and an A57 core.
type SwitchResult struct {
	A53 stats.Summary // seconds
	A57 stats.Summary
}

// Render prints the measurement.
func (r SwitchResult) Render() string {
	tbl := stats.NewTable("Core", "Ts_switch Avg", "Max", "Min")
	tbl.AddRow("A53", stats.SciSeconds(r.A53.Mean), stats.SciSeconds(r.A53.Max), stats.SciSeconds(r.A53.Min))
	tbl.AddRow("A57", stats.SciSeconds(r.A57.Mean), stats.SciSeconds(r.A57.Max), stats.SciSeconds(r.A57.Min))
	return tbl.String()
}

// RunSwitch measures Ts_switch 50 times per core type.
func RunSwitch(seed uint64) (SwitchResult, error) {
	rig, err := NewRig(seed)
	if err != nil {
		return SwitchResult{}, err
	}
	measure := func(coreID int) []float64 {
		var samples []float64
		var launch func(i int)
		launch = func(i int) {
			if i == Table1Repetitions {
				return
			}
			requested := rig.Engine.Now()
			if err := rig.Monitor.RequestSecure(coreID, func(ctx *trustzone.Context) {
				samples = append(samples, ctx.Now().Sub(requested).Seconds())
				ctx.Exit()
				rig.Engine.After(100*time.Microsecond, "next-switch", func() { launch(i + 1) })
			}); err != nil {
				panic(err) // unreachable: core IDs validated below
			}
		}
		launch(0)
		rig.Engine.Run()
		return samples
	}
	a53, err := rig.Plat.FirstCoreOfType(hw.CortexA53)
	if err != nil {
		return SwitchResult{}, err
	}
	a57, err := rig.Plat.FirstCoreOfType(hw.CortexA57)
	if err != nil {
		return SwitchResult{}, err
	}
	return SwitchResult{
		A53: stats.Summarize(measure(a53.ID())),
		A57: stats.Summarize(measure(a57.ID())),
	}, nil
}

// RecoverResult reproduces the §IV-B2 Tns_recover measurement: 50
// recoveries of the 8-byte syscall-table trace per core type.
type RecoverResult struct {
	A53 stats.Summary // seconds
	A57 stats.Summary
}

// Render prints the measurement.
func (r RecoverResult) Render() string {
	tbl := stats.NewTable("Core", "Tns_recover Avg", "Max", "Min")
	tbl.AddRow("A53", stats.SciSeconds(r.A53.Mean), stats.SciSeconds(r.A53.Max), stats.SciSeconds(r.A53.Min))
	tbl.AddRow("A57", stats.SciSeconds(r.A57.Mean), stats.SciSeconds(r.A57.Max), stats.SciSeconds(r.A57.Min))
	return tbl.String()
}

// RunRecover samples the calibrated recovery model 50 times per core type.
// The model itself cannot fail; the error return normalizes the entry-point
// contract so registry dispatch needs no special cases.
func RunRecover(seed uint64) (RecoverResult, error) {
	perf := hw.JunoR1PerfModel()
	g := simclock.NewRNG(seed, "experiment.recover")
	sample := func(ct hw.CoreType) []float64 {
		out := make([]float64, Table1Repetitions)
		for i := range out {
			out[i] = perf.RecoverTime(ct, 8, g).Seconds()
		}
		return out
	}
	return RecoverResult{
		A53: stats.Summarize(sample(hw.CortexA53)),
		A57: stats.Summarize(sample(hw.CortexA57)),
	}, nil
}
