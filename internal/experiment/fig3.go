package experiment

import (
	"fmt"
	"strings"
	"time"

	"satin/internal/attack"
	"satin/internal/core"
	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/stats"
	"satin/internal/trustzone"
)

// Fig3Result reproduces Figure 3 ("Race Condition Between Two Worlds on
// Multi-Core System") with *measured* instants from one simulated race:
// the secure world's entry and byte-touch timeline against the evader's
// probe-detect-recover timeline, for a race each side wins.
type Fig3Result struct {
	// TStart is the introspection request (the secure timer interrupt).
	TStart time.Duration
	// SecureStart is t_start + Ts_switch: the check begins.
	SecureStart time.Duration
	// TouchMalicious is when the scan reached the malicious bytes.
	TouchMalicious time.Duration
	// EvaderDetect is t_start + Tns_delay: the comparer flags the core.
	EvaderDetect time.Duration
	// TraceGone is EvaderDetect + Tns_recover: the bytes are benign again.
	TraceGone time.Duration
	// Detected says who won.
	Detected bool
	// Scenario labels the run ("baseline full kernel" / "SATIN area").
	Scenario string
}

// Render draws the two timelines, one per world, as the paper's figure
// does.
func (r Fig3Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s ---\n", r.Scenario)
	rel := func(t time.Duration) string {
		return fmt.Sprintf("t+%8s", (t - r.TStart).Truncate(time.Microsecond))
	}
	fmt.Fprintf(&sb, "secure world: %s request  %s check starts (Ts_switch)  %s touches malicious bytes\n",
		rel(r.TStart), rel(r.SecureStart), rel(r.TouchMalicious))
	fmt.Fprintf(&sb, "normal world: %s attack live  %s prober detects (Tns_delay)  %s trace recovered (Tns_recover)\n",
		rel(r.TStart), rel(r.EvaderDetect), rel(r.TraceGone))
	verdict := "EVADED: recovery (%s) beat the touch (%s)\n"
	if r.Detected {
		verdict = "DETECTED: touch (%[2]s) beat the recovery (%[1]s)\n"
	}
	fmt.Fprintf(&sb, verdict, rel(r.TraceGone), rel(r.TouchMalicious))
	return sb.String()
}

// RunFig3 runs the race twice — once against a whole-kernel baseline check
// (the evader wins) and once against a SATIN-sized area check (the defender
// wins) — and returns both measured timelines.
func RunFig3(seed uint64) ([]Fig3Result, error) {
	baseline, err := fig3Race(seed, false)
	if err != nil {
		return nil, err
	}
	satinSized, err := fig3Race(seed, true)
	if err != nil {
		return nil, err
	}
	return []Fig3Result{baseline, satinSized}, nil
}

// RenderFig3 renders both timelines.
func RenderFig3(results []Fig3Result) string {
	var sb strings.Builder
	sb.WriteString("Race parameters (calibrated): Ts_switch " + stats.SciSeconds(2.95e-6) +
		", Ts_1byte(A57) " + stats.SciSeconds(6.71e-9) +
		", Tns_delay ≈ " + stats.SciSeconds(2.0e-3) +
		", Tns_recover ≈ " + stats.SciSeconds(5.4e-3) + "\n")
	for _, r := range results {
		sb.WriteString(r.Render())
	}
	return sb.String()
}

// fig3Race runs one instrumented race on an A57 core with the trace in
// area 14. satinSized selects the checked range: the whole kernel (baseline)
// or just area 14 (SATIN-sized round).
func fig3Race(seed uint64, satinSized bool) (Fig3Result, error) {
	rig, err := NewRig(seed)
	if err != nil {
		return Fig3Result{}, err
	}
	areas, err := rig.JunoAreas()
	if err != nil {
		return Fig3Result{}, err
	}
	area := areas[14]
	// The trace sits mid-area so both outcomes are unambiguous.
	target := area.Addr + uint64(area.Size/2)
	rootkit := attack.NewRootkitAt(rig.OS, rig.Image, target)
	evader, err := attack.NewFastEvader(rig.Plat, rig.Image, rootkit,
		attack.DefaultProberSleep, core.DefaultTnsThreshold, seed+7)
	if err != nil {
		return Fig3Result{}, err
	}
	if err := evader.Start(); err != nil {
		return Fig3Result{}, err
	}

	checkAddr, checkSize := rig.Image.Layout().Base, rig.Image.Layout().TotalSize()
	scenario := "baseline: whole-kernel check, trace ~82% deep"
	if satinSized {
		checkAddr, checkSize = area.Addr, area.Size
		scenario = "SATIN: single-area check (area 14), same trace"
	}
	golden, err := introspect.GoldenRange(rig.Image, rig.Checker.Hash(), checkAddr, checkSize)
	if err != nil {
		return Fig3Result{}, err
	}
	a57, err := rig.Plat.FirstCoreOfType(hw.CortexA57)
	if err != nil {
		return Fig3Result{}, err
	}

	const tStart = 100 * time.Millisecond
	result := Fig3Result{TStart: tStart, Scenario: scenario}
	rig.Engine.After(tStart, "race", func() {
		err := rig.Monitor.RequestSecure(a57.ID(), func(ctx *trustzone.Context) {
			result.SecureStart = ctx.Now().Duration()
			// Touch time of the malicious bytes: offset into the checked
			// range at the drawn scan rate — read off the result below.
			cerr := rig.Checker.Check(ctx, introspect.DirectHash, checkAddr, checkSize, func(res introspect.Result) {
				offset := float64(target - checkAddr)
				perByte := res.Elapsed().Seconds() / float64(checkSize)
				result.TouchMalicious = result.SecureStart + time.Duration(offset*perByte*float64(time.Second))
				result.Detected = res.Sum != golden
				ctx.Exit()
			})
			if cerr != nil {
				panic(cerr) // unreachable: range validated
			}
		})
		if err != nil {
			panic(err) // unreachable: core free
		}
	})
	rig.Engine.Run()

	for _, e := range evader.Events() {
		switch e.Kind {
		case attack.EventSuspect:
			if result.EvaderDetect == 0 {
				result.EvaderDetect = e.At.Duration()
			}
		case attack.EventHidden:
			if result.TraceGone == 0 {
				result.TraceGone = e.At.Duration()
			}
		}
	}
	if result.EvaderDetect == 0 || result.TraceGone == 0 {
		return Fig3Result{}, fmt.Errorf("experiment: evader never reacted in the Fig 3 race")
	}
	return result, nil
}
