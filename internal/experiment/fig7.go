package experiment

import (
	"fmt"
	"time"

	"satin/internal/core"
	"satin/internal/stats"
	"satin/internal/workload"
)

// Fig7Config tunes the overhead study.
type Fig7Config struct {
	// Specs are the benchmark programs; nil means the full UnixBench
	// suite.
	Specs []workload.Spec
	// Tasks are the concurrency levels; nil means {1, 6} as in the paper.
	Tasks []int
	// Window is each run's measurement window.
	Window time.Duration
	// PerCoreWakePeriod is how often each core's secure timer wakes for
	// introspection (paper's overhead experiment: the self-activation
	// module wakes the secure world "across all cores").
	PerCoreWakePeriod time.Duration
	Seed              uint64
}

// DefaultFig7Config returns the paper-scale configuration.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		Tasks: []int{1, 6},
		// 240 s keeps the 1-task interruption count (Poisson, mean ≈30)
		// tight enough that per-program bars are stable.
		Window:            240 * time.Second,
		PerCoreWakePeriod: 8 * time.Second,
		Seed:              1,
	}
}

func (c Fig7Config) withDefaults() Fig7Config {
	if c.Specs == nil {
		c.Specs = workload.UnixBench()
	}
	if c.Tasks == nil {
		c.Tasks = []int{1, 6}
	}
	if c.Window == 0 {
		c.Window = 240 * time.Second
	}
	if c.PerCoreWakePeriod == 0 {
		c.PerCoreWakePeriod = 8 * time.Second
	}
	return c
}

// Fig7Row is one benchmark's degradation at one concurrency level.
type Fig7Row struct {
	Name  string
	Tasks int
	// BaselineScore and SATINScore are total iterations with SATIN off/on.
	BaselineScore int64
	SATINScore    int64
	// Degradation is 1 - SATINScore/BaselineScore.
	Degradation float64
	// Pauses is how many secure interruptions the tasks absorbed.
	Pauses int
}

// Fig7Result reproduces Figure 7 ("SATIN Overhead").
type Fig7Result struct {
	Rows []Fig7Row
}

// Average returns the mean degradation at a concurrency level (paper:
// 0.711% for 1-task, 0.848% for 6-task).
func (r Fig7Result) Average(tasks int) float64 {
	var sum float64
	n := 0
	for _, row := range r.Rows {
		if row.Tasks == tasks {
			sum += row.Degradation
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Row returns the entry for (name, tasks).
func (r Fig7Result) Row(name string, tasks int) (Fig7Row, error) {
	for _, row := range r.Rows {
		if row.Name == name && row.Tasks == tasks {
			return row, nil
		}
	}
	return Fig7Row{}, fmt.Errorf("experiment: no Fig7 row %s/%d-task", name, tasks)
}

// Render prints the two series of Figure 7.
func (r Fig7Result) Render() string {
	tasks := []int{}
	seen := map[int]bool{}
	for _, row := range r.Rows {
		if !seen[row.Tasks] {
			seen[row.Tasks] = true
			tasks = append(tasks, row.Tasks)
		}
	}
	header := []string{"Benchmark"}
	for _, tk := range tasks {
		header = append(header, fmt.Sprintf("%d-task degradation", tk))
	}
	tbl := stats.NewTable(header...)
	names := []string{}
	seenName := map[string]bool{}
	for _, row := range r.Rows {
		if !seenName[row.Name] {
			seenName[row.Name] = true
			names = append(names, row.Name)
		}
	}
	for _, name := range names {
		cells := []string{name}
		for _, tk := range tasks {
			row, err := r.Row(name, tk)
			if err != nil {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, stats.Pct(row.Degradation))
		}
		tbl.AddRow(cells...)
	}
	avg := []string{"AVERAGE"}
	for _, tk := range tasks {
		avg = append(avg, stats.Pct(r.Average(tk)))
	}
	tbl.AddRow(avg...)
	return tbl.String()
}

// Chart renders one concurrency level's bars as an ASCII chart.
func (r Fig7Result) Chart(tasks, width int) string {
	var labels []string
	var values []float64
	for _, row := range r.Rows {
		if row.Tasks == tasks {
			labels = append(labels, row.Name)
			values = append(values, row.Degradation)
		}
	}
	return stats.BarChart(labels, values, width, stats.Pct)
}

// RunFig7 measures each benchmark's throughput with SATIN off and on and
// reports the normalized degradation.
func RunFig7(cfg Fig7Config) (Fig7Result, error) {
	cfg = cfg.withDefaults()
	var result Fig7Result
	for _, spec := range cfg.Specs {
		for _, tasks := range cfg.Tasks {
			base, _, err := fig7Run(cfg, spec, tasks, false)
			if err != nil {
				return Fig7Result{}, err
			}
			withSATIN, pauses, err := fig7Run(cfg, spec, tasks, true)
			if err != nil {
				return Fig7Result{}, err
			}
			row := Fig7Row{
				Name:          spec.Name,
				Tasks:         tasks,
				BaselineScore: base,
				SATINScore:    withSATIN,
				Pauses:        pauses,
			}
			if base > 0 {
				row.Degradation = 1 - float64(withSATIN)/float64(base)
			}
			result.Rows = append(result.Rows, row)
		}
	}
	return result, nil
}

// fig7Run measures one benchmark configuration.
func fig7Run(cfg Fig7Config, spec workload.Spec, tasks int, withSATIN bool) (score int64, pauses int, err error) {
	rig, err := NewRig(cfg.Seed)
	if err != nil {
		return 0, 0, err
	}
	bench, err := workload.Start(rig.OS, spec, tasks)
	if err != nil {
		return 0, 0, err
	}
	if withSATIN {
		areas, err := rig.JunoAreas()
		if err != nil {
			return 0, 0, err
		}
		satinCfg := core.DefaultConfig()
		// Per-core wake period P with n cores means a system-wide round
		// every P/n, i.e. Tgoal = m*P/n.
		satinCfg.Tgoal = time.Duration(len(areas)) * cfg.PerCoreWakePeriod / time.Duration(rig.Plat.NumCores())
		satinCfg.Seed = cfg.Seed + 13
		satin, err := core.New(rig.Plat, rig.Monitor, rig.Image, rig.Checker, areas, satinCfg)
		if err != nil {
			return 0, 0, err
		}
		if err := satin.Start(); err != nil {
			return 0, 0, err
		}
	}
	rig.Engine.RunFor(cfg.Window)
	return bench.Iterations(), bench.Pauses(), nil
}
