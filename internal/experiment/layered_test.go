package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestSyncBypassLayeredDefense(t *testing.T) {
	res, err := RunSyncBypass(21)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InstallDenied {
		t.Error("guard failed to deny the initial hijack")
	}
	if res.GuardTraps == 0 {
		t.Error("guard trapped nothing")
	}
	if !res.BypassSucceeded {
		t.Error("AP-flip bypass failed")
	}
	if res.GuardSawBypass {
		t.Error("bypassed write reached the screen; §VII-A says it must be silent")
	}
	if len(res.DirtyAreas) != 2 || res.DirtyAreas[0] != 14 || res.DirtyAreas[1] != 17 {
		t.Errorf("dirty areas = %v, want [14 17]", res.DirtyAreas)
	}
	if !strings.Contains(res.Render(), "DENIED") {
		t.Error("render missing stages")
	}
}

func TestUserProberCapable(t *testing.T) {
	res, err := RunUserProber(22)
	if err != nil {
		t.Fatal(err)
	}
	// §III-B1's conclusion: the user prober detects a typical kernel
	// integrity check while it runs (paper: 5.97e-3 s vs 8.04e-2 s).
	if !res.Capable() {
		t.Errorf("user prober delay %v >= check duration %v", res.Delay, res.CheckDuration)
	}
	if res.Delay <= 0 || res.Delay > 20*time.Millisecond {
		t.Errorf("Tns_delay = %v, want single-digit milliseconds", res.Delay)
	}
	if res.Threshold <= 0 {
		t.Error("calibration produced no threshold")
	}
	if !strings.Contains(res.Render(), "Tns_delay") {
		t.Error("render missing rows")
	}
}

func TestKProber1ExposedBySATIN(t *testing.T) {
	res, err := RunKProber1Exposure(23, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes < 2 {
		t.Fatalf("completed %d passes, want >= 2", res.Passes)
	}
	// §III-C1: the vector hijack is introspection-visible — every pass
	// over area 0 flags it.
	if res.Area0Alarms < 2 {
		t.Errorf("area-0 alarms = %d over %d passes; KProber-I's trace should be caught every pass", res.Area0Alarms, res.Passes)
	}
	if !strings.Contains(res.Render(), "area-0") {
		t.Error("render missing rows")
	}
	if _, err := RunKProber1Exposure(1, 0); err == nil {
		t.Error("zero passes accepted")
	}
}

func TestFig3RaceTimelines(t *testing.T) {
	res, err := RunFig3(31)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	baseline, satinSized := res[0], res[1]
	if baseline.Detected {
		t.Error("baseline whole-kernel check should lose the Figure 3 race")
	}
	if !satinSized.Detected {
		t.Error("SATIN-sized area check should win the Figure 3 race")
	}
	for _, r := range res {
		if !(r.TStart < r.SecureStart && r.SecureStart < r.TouchMalicious) {
			t.Errorf("%s: secure timeline out of order: %+v", r.Scenario, r)
		}
		if !(r.TStart < r.EvaderDetect && r.EvaderDetect < r.TraceGone) {
			t.Errorf("%s: evader timeline out of order: %+v", r.Scenario, r)
		}
		// Consistency: the verdict must match the instants.
		if r.Detected != (r.TouchMalicious < r.TraceGone) {
			t.Errorf("%s: verdict inconsistent with instants: %+v", r.Scenario, r)
		}
	}
	out := RenderFig3(res)
	for _, needle := range []string{"EVADED", "DETECTED", "Ts_switch"} {
		if !strings.Contains(out, needle) {
			t.Errorf("render missing %q", needle)
		}
	}
}

func TestTable2ThreadLevelAgreesWithModel(t *testing.T) {
	res, err := RunTable2ThreadLevel(33, 8*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	// Cross-validation: the thread-level measurement and the calibrated
	// model agree within a factor of two on the mean (both ≈2.6e-4 s).
	ratio := res.AgreementRatio()
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("agreement ratio = %.2f (measured %.3g, model %.3g)",
			ratio, res.Measured.Mean, res.Model.Mean)
	}
	if !strings.Contains(res.Render(), "agreement") {
		t.Error("render missing agreement line")
	}
	if _, err := RunTable2ThreadLevel(1, 0, 1); err == nil {
		t.Error("zero period accepted")
	}
}

func TestMSweepCrossover(t *testing.T) {
	res, err := RunMSweep(35, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != len(MSweepSizes()) {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	// Recovery time grows with M (monotone within draw noise) and the
	// verdicts are monotone: once detected, every larger M is detected.
	seenDetected := false
	for i, tr := range res.Trials {
		if tr.RecoverTime <= 0 {
			t.Errorf("M=%d: no recovery observed", tr.M)
		}
		if i > 0 && tr.RecoverTime < res.Trials[i-1].RecoverTime {
			t.Errorf("M=%d: recovery %v shorter than smaller trace's %v", tr.M, tr.RecoverTime, res.Trials[i-1].RecoverTime)
		}
		if seenDetected && !tr.Detected {
			t.Errorf("M=%d evaded after a smaller M was detected", tr.M)
		}
		seenDetected = seenDetected || tr.Detected
	}
	// The paper's M=8 always evades a whole-kernel check at depth 50%.
	if res.Trials[0].Detected {
		t.Error("M=8 should evade")
	}
	// Large traces cannot be scrubbed in time.
	if !res.Trials[len(res.Trials)-1].Detected {
		t.Error("M=192 should be detected")
	}
	// Measured crossover within a factor ~2 of the Eq. 1 prediction.
	measured := res.MeasuredCrossoverM()
	if measured < 0 {
		t.Fatal("no crossover observed")
	}
	pred := res.PredictedCrossoverM
	if measured < pred/2 || measured > pred*2 {
		t.Errorf("measured crossover M=%d vs predicted %d", measured, pred)
	}
	if !strings.Contains(res.Render(), "crossover") {
		t.Error("render missing prediction line")
	}
	if _, err := RunMSweep(1, 0); err == nil {
		t.Error("bad depth accepted")
	}
}

func TestOverheadDecomposition(t *testing.T) {
	res, err := RunDecomposition(37, 240*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The structural stall is real but small: positive, well under the
	// calibrated bar.
	if res.Structural < 0 || res.Structural > 0.02 {
		t.Errorf("structural degradation = %.4f, want small positive", res.Structural)
	}
	if res.Calibrated < 0.02 || res.Calibrated > 0.07 {
		t.Errorf("calibrated degradation = %.4f, want ≈0.039", res.Calibrated)
	}
	if res.StructuralShare() > 0.5 {
		t.Errorf("structural share = %.2f; the warm-state penalty should dominate", res.StructuralShare())
	}
	if !strings.Contains(res.Render(), "structural share") {
		t.Error("render missing summary line")
	}
	if _, err := RunDecomposition(1, 0); err == nil {
		t.Error("zero window accepted")
	}
}
