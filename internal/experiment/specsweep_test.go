package experiment

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"satin/internal/runner"
	"satin/internal/spec"
)

// sweepTemplate is a minimal valid spec template for sweep tests.
func sweepTemplate() spec.Spec {
	var s spec.Spec
	s.Version = spec.CurrentVersion
	s.Name = "sweep under test"
	s.Defense.Kind = spec.DefenseSATIN
	s.Defense.SATIN = &spec.SATINConfig{MaxRounds: 19}
	s.Evader.Kind = spec.EvaderFast
	s.Run.ToCompletion = true
	return s
}

// TestRunSpecSweepInstantiatesSeeds: the injected trial sees one canonical
// instantiation per seed, with the root seed substituted and the defense
// seed left for derivation.
func TestRunSpecSweepInstantiatesSeeds(t *testing.T) {
	var mu sync.Mutex
	got := map[uint64]spec.Spec{}
	trial := func(s spec.Spec) (runner.Metrics, error) {
		mu.Lock()
		got[s.Seed] = s
		mu.Unlock()
		return runner.Metrics{}.Add("seed", float64(s.Seed)), nil
	}
	sw, err := RunSpecSweep(context.Background(), sweepTemplate(), 7, 4, 2, nil, trial)
	if err != nil {
		t.Fatalf("RunSpecSweep: %v", err)
	}
	if want := []uint64{7, 8, 9, 10}; !reflect.DeepEqual(sw.Seeds, want) {
		t.Fatalf("sweep seeds = %v, want %v", sw.Seeds, want)
	}
	for seed := uint64(7); seed <= 10; seed++ {
		inst, ok := got[seed]
		if !ok {
			t.Fatalf("trial never saw seed %d (saw %v)", seed, got)
		}
		if inst.Name != "sweep under test" || inst.Defense.Kind != spec.DefenseSATIN {
			t.Errorf("instantiation at seed %d lost template fields: %+v", seed, inst)
		}
		if inst.Defense.SATIN == nil || inst.Defense.SATIN.Seed != 0 {
			t.Errorf("instantiation at seed %d should keep the defense seed derivable, got %+v", seed, inst.Defense.SATIN)
		}
	}
}

// TestRunSpecSweepWorkerInvariance: the rendered sweep is byte-identical
// for any worker count.
func TestRunSpecSweepWorkerInvariance(t *testing.T) {
	trial := func(s spec.Spec) (runner.Metrics, error) {
		return runner.Metrics{}.Add("twice seed", float64(2*s.Seed)), nil
	}
	render := func(workers int) string {
		sw, err := RunSpecSweep(context.Background(), sweepTemplate(), 1, 8, workers, nil, trial)
		if err != nil {
			t.Fatalf("RunSpecSweep(workers=%d): %v", workers, err)
		}
		return sw.Render()
	}
	base := render(1)
	for _, workers := range []int{2, 4, 8} {
		if out := render(workers); out != base {
			t.Errorf("workers=%d renders differently:\n%s\nvs workers=1:\n%s", workers, out, base)
		}
	}
}

// TestRunSpecSweepRejectsBadInputs: a nil trial and an invalid template
// both fail before any trial runs.
func TestRunSpecSweepRejectsBadInputs(t *testing.T) {
	if _, err := RunSpecSweep(context.Background(), sweepTemplate(), 1, 2, 1, nil, nil); err == nil {
		t.Error("nil trial accepted")
	}
	bad := sweepTemplate()
	bad.Defense.Kind = "warp drive"
	ran := false
	trial := func(spec.Spec) (runner.Metrics, error) {
		ran = true
		return nil, nil
	}
	_, err := RunSpecSweep(context.Background(), bad, 1, 2, 1, nil, trial)
	if err == nil || !strings.Contains(err.Error(), "spec template") {
		t.Errorf("invalid template error = %v, want wrapped spec template error", err)
	}
	if ran {
		t.Error("trial ran despite invalid template")
	}
}

// TestRunSpecSweepTrialErrors: trial failures become per-seed Failures, not
// sweep errors.
func TestRunSpecSweepTrialErrors(t *testing.T) {
	trial := func(s spec.Spec) (runner.Metrics, error) {
		if s.Seed == 2 {
			return nil, fmt.Errorf("boom at %d", s.Seed)
		}
		return runner.Metrics{}.Add("ok", 1), nil
	}
	sw, err := RunSpecSweep(context.Background(), sweepTemplate(), 1, 3, 1, nil, trial)
	if err != nil {
		t.Fatalf("RunSpecSweep: %v", err)
	}
	if want := []uint64{1, 3}; !reflect.DeepEqual(sw.Seeds, want) {
		t.Errorf("sweep seeds = %v, want %v", sw.Seeds, want)
	}
	if len(sw.Failures) != 1 || sw.Failures[0].Seed != 2 {
		t.Errorf("failures = %+v, want exactly seed 2", sw.Failures)
	}
}
