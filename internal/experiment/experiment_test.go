package experiment

import (
	"strings"
	"testing"
	"time"

	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/stats"
	"satin/internal/workload"
)

func TestRigAssembly(t *testing.T) {
	rig, err := NewRig(1)
	if err != nil {
		t.Fatal(err)
	}
	areas, err := rig.JunoAreas()
	if err != nil {
		t.Fatal(err)
	}
	if len(areas) != 19 {
		t.Errorf("areas = %d, want 19", len(areas))
	}
}

func TestTable1ReproducesPaper(t *testing.T) {
	res, err := RunTable1(1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table I averages (seconds per byte).
	want := []struct {
		core hw.CoreType
		tech introspect.Technique
		avg  float64
	}{
		{hw.CortexA53, introspect.DirectHash, 1.07e-8},
		{hw.CortexA53, introspect.SnapshotHash, 1.08e-8},
		{hw.CortexA57, introspect.DirectHash, 6.71e-9},
		{hw.CortexA57, introspect.SnapshotHash, 6.75e-9},
	}
	for _, w := range want {
		cell, err := res.Cell(w.core, w.tech)
		if err != nil {
			t.Fatal(err)
		}
		if cell.PerByte.N != Table1Repetitions {
			t.Errorf("%v/%v: N = %d, want 50", w.core, w.tech, cell.PerByte.N)
		}
		if e := stats.RelErr(cell.PerByte.Mean, w.avg); e > 0.10 {
			t.Errorf("%v/%v: mean %.3g, paper %.3g (rel err %.2f)", w.core, w.tech, cell.PerByte.Mean, w.avg, e)
		}
	}
	// Shape: hash <= snapshot on average; A57 faster than A53.
	a53h, _ := res.Cell(hw.CortexA53, introspect.DirectHash)
	a53s, _ := res.Cell(hw.CortexA53, introspect.SnapshotHash)
	a57h, _ := res.Cell(hw.CortexA57, introspect.DirectHash)
	if a53h.PerByte.Mean > a53s.PerByte.Mean*1.02 {
		t.Error("direct hash slower than snapshot on A53; Table I says otherwise")
	}
	if a57h.PerByte.Mean >= a53h.PerByte.Mean {
		t.Error("A57 not faster than A53")
	}
	out := res.Render()
	for _, needle := range []string{"A53-Average", "A57-Min", "Hash 1-Byte", "Snapshot 1-byte"} {
		if !strings.Contains(out, needle) {
			t.Errorf("rendered table missing %q:\n%s", needle, out)
		}
	}
}

func TestSwitchReproducesPaper(t *testing.T) {
	res, err := RunSwitch(2)
	if err != nil {
		t.Fatal(err)
	}
	// §IV-B1: 2.38e-6 s to 3.60e-6 s, similar on both core types.
	for _, s := range []stats.Summary{res.A53, res.A57} {
		if s.N != Table1Repetitions {
			t.Errorf("N = %d, want 50", s.N)
		}
		if s.Min < 2.38e-6 || s.Max > 3.60e-6 {
			t.Errorf("Ts_switch range [%.3g, %.3g] outside paper's [2.38e-6, 3.60e-6]", s.Min, s.Max)
		}
	}
	if stats.RelErr(res.A53.Mean, res.A57.Mean) > 0.1 {
		t.Errorf("A53 (%.3g) and A57 (%.3g) switch times should be similar", res.A53.Mean, res.A57.Mean)
	}
	if !strings.Contains(res.Render(), "Ts_switch") {
		t.Error("render missing header")
	}
}

func TestRecoverReproducesPaper(t *testing.T) {
	res, err := RunRecover(3)
	if err != nil {
		t.Fatal(err)
	}
	// §IV-B2: A53 average 5.80e-3 s, A57 average 4.96e-3 s.
	if e := stats.RelErr(res.A53.Mean, 5.80e-3); e > 0.05 {
		t.Errorf("A53 recover mean %.3g, paper 5.80e-3", res.A53.Mean)
	}
	if e := stats.RelErr(res.A57.Mean, 4.96e-3); e > 0.05 {
		t.Errorf("A57 recover mean %.3g, paper 4.96e-3", res.A57.Mean)
	}
	// Worst case ≈ 6.13e-3 s.
	if res.A53.Max > 6.2e-3 {
		t.Errorf("A53 recover max %.3g exceeds the paper's worst case", res.A53.Max)
	}
	if !strings.Contains(res.Render(), "Tns_recover") {
		t.Error("render missing header")
	}
}

func TestTable2ReproducesPaper(t *testing.T) {
	res, err := RunTable2(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	// Paper Table II averages.
	paperAvg := []float64{2.61e-4, 3.54e-4, 4.21e-4, 5.26e-4, 6.61e-4}
	for i, row := range res.Rows {
		if row.Thresholds.N != Table2Rounds {
			t.Errorf("period %v: N = %d, want 50", row.Period, row.Thresholds.N)
		}
		if e := stats.RelErr(row.Thresholds.Mean, paperAvg[i]); e > 0.45 {
			t.Errorf("period %v: avg %.3g, paper %.3g (rel err %.2f)", row.Period, row.Thresholds.Mean, paperAvg[i], e)
		}
	}
	// Shape: averages strictly increase with period; extremes ≤ ~1.8e-3.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Thresholds.Mean <= res.Rows[i-1].Thresholds.Mean {
			t.Errorf("averages not increasing at row %d", i)
		}
	}
	for _, row := range res.Rows {
		if row.Thresholds.Max > 1.9e-3 {
			t.Errorf("period %v: max %.3g exceeds the paper's ≈1.8e-3 envelope", row.Period, row.Thresholds.Max)
		}
	}
	if !strings.Contains(res.Render(), "Probing Period") {
		t.Error("Table II render missing header")
	}
	fig4 := res.RenderFig4()
	if !strings.Contains(fig4, "Median") {
		t.Error("Fig 4 render missing header")
	}
}

func TestFig4BoxesOrdered(t *testing.T) {
	res, err := RunTable2(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		b := row.Box
		if !(b.LowerWhisk <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.UpperWhisk) {
			t.Errorf("period %v: box not ordered: %+v", row.Period, b)
		}
	}
}

func TestSingleCoreReproducesQuarterRatio(t *testing.T) {
	res, err := RunSingleCore(6, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// §IV-B2: single-core threshold ≈ 1/4 of all-core.
	if res.Ratio < 0.15 || res.Ratio > 0.40 {
		t.Errorf("ratio = %.2f, paper says ≈0.25", res.Ratio)
	}
	if !strings.Contains(res.Render(), "single fixed core") {
		t.Error("render missing row")
	}
}

func TestRaceReproducesPaper(t *testing.T) {
	res, err := RunRace(7)
	if err != nil {
		t.Fatal(err)
	}
	// §IV-C: S ≈ 1,218,351 bytes; ≈90% of the 11,916,240-byte kernel
	// unprotected.
	if res.SBound < 1218000 || res.SBound > 1219000 {
		t.Errorf("S bound = %d, paper 1218351", res.SBound)
	}
	if res.KernelSize != 11916240 {
		t.Errorf("kernel = %d, paper 11916240", res.KernelSize)
	}
	if res.UnprotectedAnalytic < 0.88 || res.UnprotectedAnalytic > 0.92 {
		t.Errorf("analytic unprotected = %.3f, paper ≈0.90", res.UnprotectedAnalytic)
	}
	if res.UnprotectedEmpirical < 0.80 || res.UnprotectedEmpirical > 0.95 {
		t.Errorf("empirical unprotected = %.3f, want ≈0.90", res.UnprotectedEmpirical)
	}
	// Detected trials must be the shallow ones.
	for _, tr := range res.Sweep {
		if tr.Fraction > 0.15 && tr.Detected {
			t.Errorf("trace at %.0f%% detected; full-kernel scan should lose that race", tr.Fraction*100)
		}
		if tr.Fraction < 0.05 && !tr.Detected {
			t.Errorf("trace at %.0f%% evaded; scan reaches it before recovery", tr.Fraction*100)
		}
	}
	if !strings.Contains(res.Render(), "S bound") {
		t.Error("render missing rows")
	}
}

func TestEvasionDefeatsBaseline(t *testing.T) {
	res, err := RunEvasion(8, 6, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 6 {
		t.Fatalf("rounds = %d, want 6", res.Rounds)
	}
	if res.EvasionRate != 1.0 {
		t.Errorf("evasion rate = %.2f, want 1.0 (trace ≈81%% deep)", res.EvasionRate)
	}
	if res.SuspectEvents < res.Rounds {
		t.Errorf("prober flagged %d of %d rounds", res.SuspectEvents, res.Rounds)
	}
	// APT economics: the attack is active nearly all the time. (Each 2 s
	// baseline round hides the trace for ≈90 ms; the paper's 8 s periods
	// push this above 0.97.)
	if res.ActiveFraction < 0.90 {
		t.Errorf("active fraction = %.3f, want > 0.90", res.ActiveFraction)
	}
	if !strings.Contains(res.Render(), "evasion success rate") {
		t.Error("render missing rows")
	}
	// Validation.
	if _, err := RunEvasion(1, 0, time.Second); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestDetectionReproducesPaper(t *testing.T) {
	cfg := DefaultDetectionConfig()
	// Keep CI fast: 4 full scans at tp = 2 s; assertions scale.
	cfg.FullScans = 4
	cfg.PerRoundPeriod = 2 * time.Second
	res, err := RunDetection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRounds := cfg.FullScans * 19
	if res.Rounds != wantRounds {
		t.Fatalf("rounds = %d, want %d", res.Rounds, wantRounds)
	}
	if res.AttackedAreaChecks != cfg.FullScans {
		t.Errorf("area-14 checks = %d, want %d", res.AttackedAreaChecks, cfg.FullScans)
	}
	if res.Detections != cfg.FullScans {
		t.Errorf("detections = %d, want %d (all recovery efforts fail)", res.Detections, cfg.FullScans)
	}
	if res.FalseNegatives != 0 || res.FalsePositives != 0 {
		t.Errorf("prober FN=%d FP=%d, want 0/0", res.FalseNegatives, res.FalsePositives)
	}
	// Mean gap between area-14 checks ≈ m*tp = 38 s (±50%: randomized).
	if res.MeanAttackedAreaGap < 19*time.Second || res.MeanAttackedAreaGap > 60*time.Second {
		t.Errorf("mean area-14 gap = %v, want ≈38s", res.MeanAttackedAreaGap)
	}
	// Full scan ≈ m*tp = 38 s.
	if res.MeanFullScanTime < 25*time.Second || res.MeanFullScanTime > 50*time.Second {
		t.Errorf("mean full scan = %v, want ≈38s", res.MeanFullScanTime)
	}
	if !strings.Contains(res.Render(), "area-14 checks") {
		t.Error("render missing rows")
	}
	if _, err := RunDetection(DetectionConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestFig7ShapeSmall(t *testing.T) {
	// A reduced Fig 7: three representative workloads, short window. The
	// full-scale run is the benchmark harness's job.
	specs := workload.UnixBench()
	cfg := Fig7Config{
		Specs:  []workload.Spec{specs[0], specs[4], specs[7]}, // dhrystone, file_copy_256B, context_switching
		Tasks:  []int{1, 6},
		Window: 60 * time.Second,
		Seed:   9,
	}
	res, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.BaselineScore <= 0 || row.SATINScore <= 0 {
			t.Errorf("%s/%d-task: degenerate scores %d/%d", row.Name, row.Tasks, row.BaselineScore, row.SATINScore)
		}
		if row.Degradation < -0.01 || row.Degradation > 0.10 {
			t.Errorf("%s/%d-task: degradation %.4f out of plausible range", row.Name, row.Tasks, row.Degradation)
		}
	}
	// Shape: the two syscall-bound workloads degrade more than dhrystone.
	dhry, _ := res.Row("dhrystone2", 1)
	fc, _ := res.Row("file_copy_256B", 1)
	cs, _ := res.Row("context_switching", 1)
	if fc.Degradation <= dhry.Degradation || cs.Degradation <= dhry.Degradation {
		t.Errorf("worst-case workloads not worse: dhry %.4f, fc256 %.4f, ctxsw %.4f",
			dhry.Degradation, fc.Degradation, cs.Degradation)
	}
	if !strings.Contains(res.Render(), "AVERAGE") {
		t.Error("render missing average row")
	}
}

func TestAblationOrdering(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Depths = 5
	cfg.ScansPerDepth = 1
	res, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := res.Row(VariantFull)
	if err != nil {
		t.Fatal(err)
	}
	noDev, err := res.Row(VariantNoDeviation)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := res.Row(VariantWholeKernel)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := res.Row(VariantFixedCore)
	if err != nil {
		t.Fatal(err)
	}
	if full.Rate() < 0.8 {
		t.Errorf("full SATIN detection rate %.2f, want >= 0.8", full.Rate())
	}
	if noDev.Rate() > 0.2 {
		t.Errorf("no-deviation rate %.2f; predictable wakes should be evadable", noDev.Rate())
	}
	if whole.Rate() > 0.3 {
		t.Errorf("whole-kernel rate %.2f; Equation 2 violation should lose", whole.Rate())
	}
	if fixed.Rate() > full.Rate() {
		t.Errorf("fixed-core rate %.2f exceeds full design %.2f", fixed.Rate(), full.Rate())
	}
	if !strings.Contains(res.Render(), "Detection rate") {
		t.Error("render missing header")
	}
	if _, err := RunAblation(AblationConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestDetectionStableAcrossSeeds(t *testing.T) {
	// The verdict-level outcomes must not depend on the seed: across
	// several deterministic universes, SATIN detects every pass over the
	// attacked area and the prober stays FP/FN-free.
	for seed := uint64(100); seed < 105; seed++ {
		cfg := DefaultDetectionConfig()
		cfg.FullScans = 2
		cfg.PerRoundPeriod = 2 * time.Second
		cfg.Seed = seed
		res, err := RunDetection(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Detections != res.AttackedAreaChecks {
			t.Errorf("seed %d: %d/%d detections", seed, res.Detections, res.AttackedAreaChecks)
		}
		if res.FalseNegatives != 0 || res.FalsePositives != 0 {
			t.Errorf("seed %d: FN=%d FP=%d", seed, res.FalseNegatives, res.FalsePositives)
		}
	}
}

func TestEvasionStableAcrossSeeds(t *testing.T) {
	for seed := uint64(200); seed < 204; seed++ {
		res, err := RunEvasion(seed, 4, 2*time.Second)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.EvasionRate != 1.0 {
			t.Errorf("seed %d: evasion rate %.2f, want 1.0", seed, res.EvasionRate)
		}
	}
}
