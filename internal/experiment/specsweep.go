package experiment

import (
	"context"
	"fmt"

	"satin/internal/runner"
	"satin/internal/spec"
)

// SpecTrial builds and drives the scenario one instantiated spec describes
// and reduces the run to sweep metrics. The facade provides the canonical
// implementation (satin.RunSpecTrial); it is injected rather than imported
// because the root package's own tests import this package, so experiment
// must never import satin.
type SpecTrial func(spec.Spec) (runner.Metrics, error)

// RunSpecSweep sweeps a spec template across seeds baseSeed..baseSeed+seeds-1:
// each trial runs spec.Instantiate(template, seed) — the root seed replaced,
// every other field carried verbatim (a zero defense seed keeps deriving from
// the root, an explicit one stays pinned) — and the per-seed metrics are
// aggregated in seed order, so output is byte-identical for any worker count.
// The template is canonicalized once up front; an invalid template fails the
// sweep before any trial runs.
func RunSpecSweep(ctx context.Context, tmpl spec.Spec, baseSeed uint64, seeds, workers int, progress runner.Progress, trial SpecTrial) (*runner.Sweep, error) {
	if trial == nil {
		return nil, fmt.Errorf("experiment: spec sweep needs a trial function")
	}
	c, err := spec.Canonicalize(tmpl)
	if err != nil {
		return nil, fmt.Errorf("experiment: spec template: %w", err)
	}
	name := c.Name
	if name == "" {
		name = "spec sweep"
	}
	return runner.RunSweepObserved(ctx, name, baseSeed, seeds, workers, progress,
		func(_ context.Context, seed uint64) (runner.Metrics, error) {
			return trial(spec.Instantiate(c, seed))
		})
}
