package experiment

import (
	"context"
	"strings"
	"testing"
)

// smallSensitivityConfig keeps the sweep fast enough for CI while leaving
// the timing race intact.
func smallSensitivityConfig() SensitivityConfig {
	cfg := DefaultSensitivityConfig()
	cfg.Magnitudes = []float64{0, 2, 6}
	cfg.Seeds = 4
	cfg.Detection.FullScans = 4
	return cfg
}

// TestSensitivityMonotoneDegradation is the acceptance property: detection
// probability must degrade monotonically (non-strictly) as the perturbation
// magnitude rises, and must actually fall across the charted range.
func TestSensitivityMonotoneDegradation(t *testing.T) {
	res, err := RunSensitivity(context.Background(), smallSensitivityConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(res.Points))
	}
	for i, p := range res.Points {
		t.Logf("mag=%g detection mean=%.3f min=%.3f max=%.3f", p.Magnitude, p.Detection.Mean, p.Detection.Min, p.Detection.Max)
		if i > 0 && p.Detection.Mean > res.Points[i-1].Detection.Mean+1e-9 {
			t.Errorf("detection rate rose from %.3f to %.3f between mag %g and %g",
				res.Points[i-1].Detection.Mean, p.Detection.Mean, res.Points[i-1].Magnitude, p.Magnitude)
		}
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.Detection.Mean != 1 {
		t.Errorf("unperturbed detection mean = %.3f, want 1.0 (the paper's 10/10)", first.Detection.Mean)
	}
	if last.Detection.Mean >= first.Detection.Mean {
		t.Errorf("detection never degraded: mag %g mean %.3f vs mag %g mean %.3f",
			first.Magnitude, first.Detection.Mean, last.Magnitude, last.Detection.Mean)
	}
	if first.Evasion.Mean != 0 {
		t.Errorf("unperturbed evasion mean = %.3f, want 0", first.Evasion.Mean)
	}
}

// TestSensitivityRender checks the chart includes every magnitude row.
func TestSensitivityRender(t *testing.T) {
	res, err := RunSensitivity(context.Background(), smallSensitivityConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, col := range []string{"Magnitude", "Detection mean", "p25..p75", "Evasion mean"} {
		if !strings.Contains(out, col) {
			t.Errorf("render lacks column %q:\n%s", col, out)
		}
	}
	if fb := res.FirstBreak(); fb != 2 {
		t.Errorf("FirstBreak() = %g, want 2 (the first degraded magnitude in this range)", fb)
	}
}

// TestSensitivityValidation rejects empty sweeps.
func TestSensitivityValidation(t *testing.T) {
	if _, err := RunSensitivity(context.Background(), SensitivityConfig{Seeds: 1}, nil); err == nil {
		t.Error("no magnitudes accepted")
	}
	cfg := DefaultSensitivityConfig()
	cfg.Seeds = 0
	if _, err := RunSensitivity(context.Background(), cfg, nil); err == nil {
		t.Error("zero seeds accepted")
	}
}
