package experiment

import (
	"strings"
	"testing"
	"time"

	"satin/internal/trustzone"
)

func TestFloodAblationShape(t *testing.T) {
	cfg := DefaultFloodConfig()
	cfg.Depths = 4 // keep CI fast; the bench runs the default sweep
	res, err := RunFlood(cfg)
	if err != nil {
		t.Fatal(err)
	}
	np, err := res.Row(trustzone.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := res.Row(trustzone.Preemptive)
	if err != nil {
		t.Fatal(err)
	}
	// SATIN's SCR_EL3.IRQ=0 configuration: the flood is inert.
	if np.Rate() != 1.0 {
		t.Errorf("non-preemptive detection rate = %.2f, want 1.0", np.Rate())
	}
	if np.Preemptions != 0 {
		t.Errorf("non-preemptive saw %d preemptions, want 0", np.Preemptions)
	}
	if np.MeanRound > 10*time.Millisecond {
		t.Errorf("non-preemptive mean round %v; flood should not stretch it", np.MeanRound)
	}
	// Preemptive routing: the flood stretches checks well past the race
	// window and detection collapses for all but shallow traces.
	if pe.Rate() > 0.5 {
		t.Errorf("preemptive detection rate = %.2f; the flood should defeat most depths", pe.Rate())
	}
	if pe.MeanRound < 3*np.MeanRound {
		t.Errorf("preemptive mean round %v not clearly stretched vs %v", pe.MeanRound, np.MeanRound)
	}
	if pe.Preemptions == 0 {
		t.Error("preemptive mode recorded no preemptions under a 30kHz flood")
	}
	if !strings.Contains(res.Render(), "non-preemptive") {
		t.Error("render missing rows")
	}
	if _, err := RunFlood(FloodConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}
