package experiment

import (
	"fmt"
	"time"

	"satin/internal/attack"
	"satin/internal/core"
	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/stats"
	"satin/internal/trustzone"
)

// RaceResult reproduces the §IV-C race-condition analysis: the analytic S
// bound of Equation 2, the fraction of the kernel it leaves unprotected
// against TZ-Evader under full-kernel introspection, and an empirical sweep
// that validates both by racing a fast evader against a whole-kernel check
// with the trace planted at varying depths.
type RaceResult struct {
	// SBound is Equation 2's byte bound (paper: 1,218,351).
	SBound int
	// KernelSize is the scanned kernel's size (paper: 11,916,240).
	KernelSize int
	// UnprotectedAnalytic = 1 - SBound/KernelSize (paper: ≈90%).
	UnprotectedAnalytic float64
	// Sweep holds one entry per planted trace depth.
	Sweep []RaceTrial
	// UnprotectedEmpirical is the fraction of sweep trials the evader won.
	UnprotectedEmpirical float64
}

// RaceTrial is one planted-depth race.
type RaceTrial struct {
	// Fraction is the trace's depth into the kernel (0..1).
	Fraction float64
	// Detected reports whether the whole-kernel check caught the trace.
	Detected bool
}

// Render prints the analysis.
func (r RaceResult) Render() string {
	tbl := stats.NewTable("Quantity", "Value")
	tbl.AddRow("S bound (Eq. 2)", fmt.Sprintf("%d bytes", r.SBound))
	tbl.AddRow("kernel size", fmt.Sprintf("%d bytes", r.KernelSize))
	tbl.AddRow("unprotected (analytic)", stats.Pct(r.UnprotectedAnalytic))
	tbl.AddRow("unprotected (empirical sweep)", stats.Pct(r.UnprotectedEmpirical))
	out := tbl.String() + "\n"
	sweep := stats.NewTable("Trace depth", "Detected by full-kernel check")
	for _, tr := range r.Sweep {
		verdict := "EVADED"
		if tr.Detected {
			verdict = "detected"
		}
		sweep.AddRow(fmt.Sprintf("%.0f%%", tr.Fraction*100), verdict)
	}
	return out + sweep.String()
}

// RaceSweepPoints is the number of planted depths in the empirical sweep.
const RaceSweepPoints = 20

// RunRace computes the analytic bound and runs the empirical sweep: for
// each depth, a whole-kernel A57 check races a fast evader whose 8-byte
// trace sits at that depth.
func RunRace(seed uint64) (RaceResult, error) {
	result := RaceResult{
		SBound: core.DefaultRaceBound(),
	}
	for i := 0; i < RaceSweepPoints; i++ {
		frac := (float64(i) + 0.5) / RaceSweepPoints
		detected, kernelSize, err := raceTrial(seed+uint64(i)*101, frac)
		if err != nil {
			return RaceResult{}, err
		}
		result.KernelSize = kernelSize
		result.Sweep = append(result.Sweep, RaceTrial{Fraction: frac, Detected: detected})
		if !detected {
			result.UnprotectedEmpirical += 1.0 / RaceSweepPoints
		}
	}
	result.UnprotectedAnalytic = 1 - float64(result.SBound)/float64(result.KernelSize)
	return result, nil
}

// raceTrial plants the trace at depth frac and runs one whole-kernel check
// on an A57 core against a fast evader.
func raceTrial(seed uint64, frac float64) (detected bool, kernelSize int, err error) {
	rig, err := NewRig(seed)
	if err != nil {
		return false, 0, err
	}
	layout := rig.Image.Layout()
	kernelSize = layout.TotalSize()
	// Plant the 8-byte trace, aligned and clamped inside the kernel.
	offset := uint64(frac * float64(kernelSize))
	if offset+8 > uint64(kernelSize) {
		offset = uint64(kernelSize) - 8
	}
	target := layout.Base + offset
	rootkit := attack.NewRootkitAt(rig.OS, rig.Image, target)
	evader, err := attack.NewFastEvader(rig.Plat, rig.Image, rootkit,
		attack.DefaultProberSleep, core.DefaultTnsThreshold, seed+7)
	if err != nil {
		return false, 0, err
	}
	if err := evader.Start(); err != nil {
		return false, 0, err
	}
	golden, err := introspect.GoldenRange(rig.Image, rig.Checker.Hash(), layout.Base, kernelSize)
	if err != nil {
		return false, 0, err
	}
	a57, err := rig.Plat.FirstCoreOfType(hw.CortexA57)
	if err != nil {
		return false, 0, err
	}
	clean := true
	// Give the evader a moment of steady state, then check.
	rig.Engine.After(100*time.Millisecond, "check", func() {
		err := rig.Monitor.RequestSecure(a57.ID(), func(ctx *trustzone.Context) {
			cerr := rig.Checker.Check(ctx, introspect.DirectHash, layout.Base, kernelSize, func(res introspect.Result) {
				clean = res.Sum == golden
				ctx.Exit()
			})
			if cerr != nil {
				panic(cerr) // unreachable: range validated by construction
			}
		})
		if err != nil {
			panic(err) // unreachable: core exists and is free
		}
	})
	rig.Engine.Run()
	return !clean, kernelSize, nil
}
