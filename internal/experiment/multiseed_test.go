package experiment

import (
	"context"
	"testing"
	"time"
)

// sweepCfg is a reduced detection config so multi-seed tests stay fast; the
// full 10-scan configuration is exercised by the serial detection tests.
func sweepCfg() DetectionConfig {
	cfg := DefaultDetectionConfig()
	cfg.FullScans = 2
	return cfg
}

// TestDeterminismSweepWorkerInvariance is the ISSUE's determinism
// regression: a multi-seed sweep must render byte-identical aggregated
// output with workers=1 and workers=8. This is what lets EXPERIMENTS.md
// quote sweep numbers without pinning a worker count.
func TestDeterminismSweepWorkerInvariance(t *testing.T) {
	cfg := sweepCfg()
	serial, err := RunDetectionSweep(context.Background(), cfg, Options{Seeds: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunDetectionSweep(context.Background(), cfg, Options{Seeds: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Render(), parallel.Render(); s != p {
		t.Errorf("workers=1 and workers=8 disagree:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", s, p)
	}
}

// TestDeterminismSweepMatchesSerialDriver pins the sweep's per-seed numbers
// to the existing single-seed drivers: seed 1 inside a sweep must reproduce
// exactly what RunDetection/RunEvasion report when called directly, so
// adding the runner cannot silently shift EXPERIMENTS.md's numbers.
func TestDeterminismSweepMatchesSerialDriver(t *testing.T) {
	cfg := sweepCfg()
	direct, err := RunDetection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := RunDetectionSweep(context.Background(), cfg, Options{Seeds: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Failures) != 0 {
		t.Fatalf("sweep failures: %+v", sw.Failures)
	}
	want := DetectionMetrics(direct)
	for _, s := range want {
		samples := sw.Samples(s.Name)
		if len(samples) != 3 {
			t.Fatalf("metric %q has %d samples, want 3", s.Name, len(samples))
		}
		if samples[0] != s.Value {
			t.Errorf("metric %q: sweep seed 1 = %v, serial driver = %v", s.Name, samples[0], s.Value)
		}
	}

	evDirect, err := RunEvasion(1, 5, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	evSweep, err := RunEvasionSweep(context.Background(), 1, 5, 8*time.Second, Options{Seeds: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range EvasionMetrics(evDirect) {
		if got := evSweep.Samples(s.Name); len(got) != 2 || got[0] != s.Value {
			t.Errorf("evasion metric %q: sweep = %v, serial seed 1 = %v", s.Name, got, s.Value)
		}
	}
}

// TestDetectionSweepRates sanity-checks the aggregate the paper's claim
// rests on: across seeds, the detection rate stays 1.0 (every pass over the
// attacked area raises the alarm) with zero prober false reports.
func TestDetectionSweepRates(t *testing.T) {
	sw, err := RunDetectionSweep(context.Background(), sweepCfg(), Options{Seeds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Failures) != 0 {
		t.Fatalf("failures: %+v", sw.Failures)
	}
	if d := sw.Dist("detection rate"); d.Min != 1 || d.Max != 1 {
		t.Errorf("detection rate over seeds = %+v, want constant 1.0", d)
	}
	if d := sw.Dist("prober false negatives"); d.Max != 0 {
		t.Errorf("false negatives over seeds = %+v, want constant 0", d)
	}
	if d := sw.Dist("prober false positives"); d.Max != 0 {
		t.Errorf("false positives over seeds = %+v, want constant 0", d)
	}
}

// TestRaceSweepTracksAnalyticBound: the empirical unprotected fraction
// should straddle the analytic ≈90% bound across seeds, not just at seed 1.
func TestRaceSweepTracksAnalyticBound(t *testing.T) {
	if testing.Short() {
		t.Skip("race sweep is ~1s per seed")
	}
	sw, err := RunRaceSweep(context.Background(), 1, Options{Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Failures) != 0 {
		t.Fatalf("failures: %+v", sw.Failures)
	}
	d := sw.Dist("unprotected (empirical)")
	if d.Min < 0.75 || d.Max > 1 {
		t.Errorf("unprotected fraction over seeds = %+v, want within [0.75, 1]", d)
	}
	if a := sw.Dist("unprotected (analytic)"); a.Min != a.Max {
		t.Errorf("analytic bound varies across seeds: %+v", a)
	}
}
