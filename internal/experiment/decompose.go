package experiment

import (
	"fmt"
	"time"

	"satin/internal/core"
	"satin/internal/stats"
	"satin/internal/workload"
)

// DecompositionResult splits the Figure 7 context-switching overhead into
// its two components:
//
//   - Structural: a pipe ping-pong pair built on the simulator's real
//     block/wake and pipe primitives, with no fitted parameters. Its only
//     loss under SATIN is the stall while a core is held.
//   - Calibrated: the Spec-based context_switching workload, whose
//     warm-state penalty is fitted to the paper's 3.912% bar.
//
// The gap between the two is the share of the paper's measured overhead
// that the mechanical stall cannot explain — the cache/TLB/affinity
// disruption the calibrated penalty stands in for. DESIGN.md documents this
// as the one fitted component of the Figure 7 reproduction; this experiment
// bounds how much work that fit is doing.
type DecompositionResult struct {
	// Structural is the degradation of the unfitted ping-pong benchmark.
	Structural float64
	// Calibrated is the degradation of the fitted context_switching spec.
	Calibrated float64
	// PaperBar is the value the paper reports (3.912%).
	PaperBar float64
}

// StructuralShare is Structural / Calibrated: how much of the modeled bar
// the mechanics alone produce.
func (r DecompositionResult) StructuralShare() float64 {
	if r.Calibrated == 0 {
		return 0
	}
	return r.Structural / r.Calibrated
}

// Render prints the decomposition.
func (r DecompositionResult) Render() string {
	tbl := stats.NewTable("Component", "Degradation", "Note")
	tbl.AddRow("structural stall (unfitted ping-pong)", stats.Pct(r.Structural), "block/wake + pipes, no fitted parameters")
	tbl.AddRow("calibrated workload (context_switching)", stats.Pct(r.Calibrated), "warm-state penalty fitted to the paper")
	tbl.AddRow("paper's bar", stats.Pct(r.PaperBar), "Fig. 7, pipe-based context switching")
	return tbl.String() +
		fmt.Sprintf("structural share of the modeled bar: %.0f%% — the rest is warm-state disruption\n",
			r.StructuralShare()*100)
}

// RunDecomposition measures both components over the given window with the
// paper's per-core 8 s wake schedule.
func RunDecomposition(seed uint64, window time.Duration) (DecompositionResult, error) {
	if window <= 0 {
		return DecompositionResult{}, fmt.Errorf("experiment: window %v must be positive", window)
	}
	result := DecompositionResult{PaperBar: 0.03912}

	// Structural: pipe ping-pong, one pair, 50 µs per exchange.
	structural := func(withSATIN bool) (int64, error) {
		rig, err := NewRig(seed)
		if err != nil {
			return 0, err
		}
		pp, err := workload.StartPingPong(rig.OS, 1, 50*time.Microsecond)
		if err != nil {
			return 0, err
		}
		if withSATIN {
			if err := startFig7SATIN(rig, seed); err != nil {
				return 0, err
			}
		}
		rig.Engine.RunFor(window)
		return pp.Exchanges(), nil
	}
	base, err := structural(false)
	if err != nil {
		return DecompositionResult{}, err
	}
	under, err := structural(true)
	if err != nil {
		return DecompositionResult{}, err
	}
	if base > 0 {
		result.Structural = 1 - float64(under)/float64(base)
	}

	// Calibrated: the fitted context_switching spec at the same schedule.
	var spec workload.Spec
	for _, s := range workload.UnixBench() {
		if s.Name == "context_switching" {
			spec = s
		}
	}
	cfg := Fig7Config{Specs: []workload.Spec{spec}, Tasks: []int{1}, Window: window, Seed: seed}
	fig7, err := RunFig7(cfg)
	if err != nil {
		return DecompositionResult{}, err
	}
	row, err := fig7.Row("context_switching", 1)
	if err != nil {
		return DecompositionResult{}, err
	}
	result.Calibrated = row.Degradation
	return result, nil
}

// startFig7SATIN installs SATIN with the overhead experiment's schedule
// (each core waking every 8 s).
func startFig7SATIN(rig *Rig, seed uint64) error {
	areas, err := rig.JunoAreas()
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Tgoal = time.Duration(len(areas)) * 8 * time.Second / time.Duration(rig.Plat.NumCores())
	cfg.Seed = seed + 13
	satin, err := core.New(rig.Plat, rig.Monitor, rig.Image, rig.Checker, areas, cfg)
	if err != nil {
		return err
	}
	return satin.Start()
}
