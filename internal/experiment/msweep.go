package experiment

import (
	"fmt"
	"time"

	"satin/internal/attack"
	"satin/internal/core"
	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/mem"
	"satin/internal/stats"
	"satin/internal/trustzone"
)

// MSweepTrial is one trace-size race.
type MSweepTrial struct {
	// M is the attacking-trace size in bytes.
	M int
	// RecoverTime is the evader's measured Tns_recover = M * Tns_1byte.
	RecoverTime time.Duration
	// Detected reports whether the whole-kernel check caught the trace.
	Detected bool
}

// MSweepResult quantifies §IV-C's observation 4: "the timing bottleneck of
// TZ-Evader is the time period for recovering its attacking trace
// Tns_recover". Against a fixed whole-kernel check with the trace anchored
// mid-kernel, growing M grows the recovery time linearly until the evader
// can no longer finish before the scan arrives — the crossover Equation 1
// predicts.
type MSweepResult struct {
	// TouchDepth is the anchor depth (fraction of the kernel).
	TouchDepth float64
	// PredictedCrossoverM is Equation 1 solved for M at this depth.
	PredictedCrossoverM int
	Trials              []MSweepTrial
}

// MeasuredCrossoverM returns the smallest M that was detected, or -1 if the
// evader won every trial.
func (r MSweepResult) MeasuredCrossoverM() int {
	for _, t := range r.Trials {
		if t.Detected {
			return t.M
		}
	}
	return -1
}

// Render prints the sweep.
func (r MSweepResult) Render() string {
	tbl := stats.NewTable("M (trace bytes)", "Tns_recover", "Whole-kernel check outcome")
	for _, t := range r.Trials {
		verdict := "EVADED"
		if t.Detected {
			verdict = "detected"
		}
		tbl.AddRow(fmt.Sprintf("%d", t.M), t.RecoverTime.Truncate(time.Microsecond).String(), verdict)
	}
	return tbl.String() +
		fmt.Sprintf("trace anchored at %.0f%% of the kernel; Eq. 1 predicts the crossover at M ≈ %d bytes\n",
			r.TouchDepth*100, r.PredictedCrossoverM)
}

// MSweepSizes are the trace sizes swept (bytes, multiples of the 8-byte
// unit the rootkit writes).
func MSweepSizes() []int { return []int{8, 16, 24, 32, 40, 48, 64, 96, 128, 192} }

// RunMSweep races each trace size against one whole-kernel A57 check with
// the trace anchored at the given depth.
func RunMSweep(seed uint64, depth float64) (MSweepResult, error) {
	if depth <= 0 || depth >= 1 {
		return MSweepResult{}, fmt.Errorf("experiment: depth %v must be in (0, 1)", depth)
	}
	result := MSweepResult{TouchDepth: depth}
	// Equation 1 solved for M: the evader wins while
	// Tns_delay + M*Tns_1byte < Ts_switch + S*Ts_1byte, with S = depth *
	// kernel. Use the calibrated averages.
	layout := mem.JunoKernelLayout()
	touch := depth * float64(layout.TotalSize()) * 6.71e-9 // A57 scan to the anchor
	delay := (core.DefaultTnsSched + core.DefaultTnsThreshold).Seconds()
	// Tns_1byte for recovery, A53 average: 5.80 ms / 8 B = 7.25e-4 s/B
	// (the slow-cleaner case, as the paper's worst-case analysis uses).
	const perByte = 7.25e-4
	result.PredictedCrossoverM = int((touch - delay) / perByte)

	for _, m := range MSweepSizes() {
		trial, err := runMSweepTrial(seed, depth, m)
		if err != nil {
			return MSweepResult{}, fmt.Errorf("experiment: M=%d: %w", m, err)
		}
		result.Trials = append(result.Trials, trial)
	}
	return result, nil
}

func runMSweepTrial(seed uint64, depth float64, m int) (MSweepTrial, error) {
	if m%mem.SyscallEntrySize != 0 || m <= 0 {
		return MSweepTrial{}, fmt.Errorf("experiment: M %d must be a positive multiple of 8", m)
	}
	rig, err := NewRig(seed + uint64(m)*13)
	if err != nil {
		return MSweepTrial{}, err
	}
	layout := rig.Image.Layout()
	kernelSize := layout.TotalSize()
	// Spread the trace's 8-byte units from the anchor, 64 bytes apart.
	anchor := layout.Base + uint64(depth*float64(kernelSize))
	var targets []uint64
	for i := 0; i < m/mem.SyscallEntrySize; i++ {
		targets = append(targets, anchor+uint64(i)*64)
	}
	rootkit := attack.NewRootkitSpread(rig.OS, rig.Image, targets)
	evader, err := attack.NewFastEvader(rig.Plat, rig.Image, rootkit,
		attack.DefaultProberSleep, core.DefaultTnsThreshold, seed+7)
	if err != nil {
		return MSweepTrial{}, err
	}
	if err := evader.Start(); err != nil {
		return MSweepTrial{}, err
	}
	golden, err := introspect.GoldenRange(rig.Image, rig.Checker.Hash(), layout.Base, kernelSize)
	if err != nil {
		return MSweepTrial{}, err
	}
	a57, err := rig.Plat.FirstCoreOfType(hw.CortexA57)
	if err != nil {
		return MSweepTrial{}, err
	}
	trial := MSweepTrial{M: m}
	rig.Engine.After(100*time.Millisecond, "check", func() {
		err := rig.Monitor.RequestSecure(a57.ID(), func(ctx *trustzone.Context) {
			cerr := rig.Checker.Check(ctx, introspect.DirectHash, layout.Base, kernelSize, func(res introspect.Result) {
				trial.Detected = res.Sum != golden
				ctx.Exit()
			})
			if cerr != nil {
				panic(cerr) // unreachable: range validated
			}
		})
		if err != nil {
			panic(err) // unreachable: core free
		}
	})
	rig.Engine.Run()

	// Measured recovery time: suspect -> hidden gap from the event log.
	var suspectAt, hiddenAt time.Duration
	for _, e := range evader.Events() {
		switch e.Kind {
		case attack.EventSuspect:
			if suspectAt == 0 {
				suspectAt = e.At.Duration()
			}
		case attack.EventHidden:
			if hiddenAt == 0 {
				hiddenAt = e.At.Duration()
			}
		}
	}
	if hiddenAt > suspectAt && suspectAt > 0 {
		trial.RecoverTime = hiddenAt - suspectAt
	}
	return trial, nil
}
