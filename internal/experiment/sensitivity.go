package experiment

import (
	"context"
	"fmt"

	"satin/internal/faultinject"
	"satin/internal/runner"
	"satin/internal/stats"
)

// Sensitivity sweep: how fragile is the paper's 10/10 detection result when
// hardware timing drifts? Each magnitude m maps to faultinject.ScaledPlan(m)
// — all cores slowed to 1/(1+m) of calibration plus proportional jitter,
// switch spikes, and interrupt delays — and the §VI-B1 detection experiment
// reruns across N seeds under that plan. Slowing the secure side is
// one-sided: the evader's recovery runs in the normal world at calibrated
// speed, so rising magnitude widens its window and detection probability
// can only degrade. The sweep charts where the Equation 1/2 race flips.

// SensitivityConfig tunes the sweep.
type SensitivityConfig struct {
	// Magnitudes are the perturbation magnitudes to chart, typically
	// starting at 0 (the unperturbed calibration).
	Magnitudes []float64
	// Seeds is how many independent seeds to run per magnitude.
	Seeds int
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int
	// Detection is the per-seed experiment; its Faults field is overwritten
	// per magnitude.
	Detection DetectionConfig
}

// DefaultSensitivityConfig charts five magnitudes at the paper's detection
// parameters, eight seeds each.
func DefaultSensitivityConfig() SensitivityConfig {
	return SensitivityConfig{
		Magnitudes: []float64{0, 0.5, 1, 2, 4},
		Seeds:      8,
		Detection:  DefaultDetectionConfig(),
	}
}

// SensitivityPoint aggregates one magnitude's seeds.
type SensitivityPoint struct {
	Magnitude float64
	// Detection and Evasion are the per-seed detection-rate and
	// evasion-rate distributions (evasion = 1 - detection: the fraction of
	// attacked-area checks the evader survived).
	Detection stats.Dist
	Evasion   stats.Dist
	// Sweep is the full per-magnitude aggregate, for CSV export or deeper
	// inspection.
	Sweep *runner.Sweep
}

// SensitivityResult is the charted sweep.
type SensitivityResult struct {
	Seeds  int
	Points []SensitivityPoint
}

// RunSensitivity runs the detection experiment across cfg.Magnitudes ×
// cfg.Seeds. Magnitudes run serially (each is itself a multi-seed sweep on
// the worker pool); points aggregate in magnitude order, so output is
// byte-identical for any worker count.
func RunSensitivity(ctx context.Context, cfg SensitivityConfig, progress runner.Progress) (SensitivityResult, error) {
	if len(cfg.Magnitudes) == 0 {
		return SensitivityResult{}, fmt.Errorf("experiment: sensitivity needs at least one magnitude")
	}
	if cfg.Seeds <= 0 {
		return SensitivityResult{}, fmt.Errorf("experiment: sensitivity needs seeds > 0, got %d", cfg.Seeds)
	}
	res := SensitivityResult{Seeds: cfg.Seeds}
	for _, mag := range cfg.Magnitudes {
		mag := mag
		dc := cfg.Detection
		dc.Faults = faultinject.ScaledPlan(mag)
		sw, err := runner.RunSweepObserved(ctx,
			fmt.Sprintf("sensitivity mag=%g", mag), dc.Seed, cfg.Seeds, cfg.Workers, progress,
			func(_ context.Context, seed uint64) (runner.Metrics, error) {
				c := dc
				c.Seed = seed
				r, err := RunDetection(c)
				if err != nil {
					return nil, err
				}
				det := ratio(r.Detections, r.AttackedAreaChecks)
				m := runner.Metrics{}.Add("detection rate", det)
				m = m.Add("evasion rate", 1-det)
				return m.Add("area-14 checks", float64(r.AttackedAreaChecks)), nil
			})
		if err != nil {
			return SensitivityResult{}, err
		}
		if len(sw.Failures) > 0 {
			return SensitivityResult{}, fmt.Errorf("experiment: sensitivity mag=%g: seed %d failed: %s",
				mag, sw.Failures[0].Seed, sw.Failures[0].Err)
		}
		res.Points = append(res.Points, SensitivityPoint{
			Magnitude: mag,
			Detection: sw.Dist("detection rate"),
			Evasion:   sw.Dist("evasion rate"),
			Sweep:     sw,
		})
	}
	return res, nil
}

// Render prints the magnitude chart: detection probability with its
// confidence band (mean, p25–p75, min–max across seeds) and the mirror
// evasion rate.
func (r SensitivityResult) Render() string {
	tbl := stats.NewTable("Magnitude", "Detection mean", "p25..p75", "min..max", "Evasion mean")
	for _, p := range r.Points {
		tbl.AddRow(
			fmt.Sprintf("%g", p.Magnitude),
			stats.Pct(p.Detection.Mean),
			fmt.Sprintf("%s..%s", stats.Pct(p.Detection.P25), stats.Pct(p.Detection.P75)),
			fmt.Sprintf("%s..%s", stats.Pct(p.Detection.Min), stats.Pct(p.Detection.Max)),
			stats.Pct(p.Evasion.Mean),
		)
	}
	return tbl.String()
}

// FirstBreak returns the lowest magnitude whose mean detection rate fell
// below 1.0 (the paper's 10/10), or -1 if detection never degraded.
func (r SensitivityResult) FirstBreak() float64 {
	for _, p := range r.Points {
		if p.Detection.Mean < 1 {
			return p.Magnitude
		}
	}
	return -1
}
