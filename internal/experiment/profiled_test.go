package experiment

import (
	"context"
	"testing"
)

func quickProfileCfg(seed uint64) DetectionConfig {
	cfg := DefaultDetectionConfig()
	cfg.Seed = seed
	cfg.FullScans = 1
	return cfg
}

// TestProfileDoesNotPerturbRun: attaching the profiler to the detection rig
// must leave every headline number untouched — the profiler observes, it
// never schedules.
func TestProfileDoesNotPerturbRun(t *testing.T) {
	plain, err := RunDetection(quickProfileCfg(1))
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	cfg := quickProfileCfg(1)
	cfg.Profile = true
	profiled, err := RunDetection(cfg)
	if err != nil {
		t.Fatalf("profiled run: %v", err)
	}
	if profiled.Profile == nil {
		t.Fatal("profiled run returned no summary")
	}
	got, want := profiled, plain
	got.Profile = nil
	if got != want {
		t.Fatalf("profiler perturbed the run:\nprofiled %+v\nplain    %+v", got, want)
	}
	if err := profiled.Profile.ResidencyCheck(); err != nil {
		t.Fatal(err)
	}
	if profiled.Profile.Rounds != plain.Rounds {
		t.Fatalf("profile counted %d rounds, run had %d", profiled.Profile.Rounds, plain.Rounds)
	}
}

// TestProfileSweepWorkerInvariance: the merged attribution and the per-seed
// metric distributions must be byte-identical for 1 worker and 8.
func TestProfileSweepWorkerInvariance(t *testing.T) {
	cfg := quickProfileCfg(1)
	const seeds = 3
	sw1, m1, err := RunDetectionProfileSweep(context.Background(), cfg, Options{Seeds: seeds, Workers: 1})
	if err != nil {
		t.Fatalf("1-worker sweep: %v", err)
	}
	sw8, m8, err := RunDetectionProfileSweep(context.Background(), cfg, Options{Seeds: seeds, Workers: 8})
	if err != nil {
		t.Fatalf("8-worker sweep: %v", err)
	}
	if sw1.Render() != sw8.Render() {
		t.Fatalf("sweep render differs across worker counts:\n--- 1 worker ---\n%s--- 8 workers ---\n%s", sw1.Render(), sw8.Render())
	}
	if m1.Render() != m8.Render() {
		t.Fatalf("merged attribution differs across worker counts:\n--- 1 worker ---\n%s--- 8 workers ---\n%s", m1.Render(), m8.Render())
	}
	if m1.Seeds != seeds {
		t.Fatalf("merged %d seeds, want %d", m1.Seeds, seeds)
	}
	if err := m1.ResidencyCheck(); err != nil {
		t.Fatal(err)
	}
}
