package experiment_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"satin/internal/experiment"
)

// TestRegistryNames: names are unique, non-empty, and Lookup agrees with
// the presentation order Registry returns.
func TestRegistryNames(t *testing.T) {
	defs := experiment.Registry()
	if len(defs) == 0 {
		t.Fatal("empty registry")
	}
	names := experiment.Names()
	if len(names) != len(defs) {
		t.Fatalf("Names() has %d entries, Registry() %d", len(names), len(defs))
	}
	seen := map[string]bool{}
	for i, d := range defs {
		if d.Name == "" {
			t.Fatalf("registry entry %d has no name", i)
		}
		if seen[d.Name] {
			t.Fatalf("registry repeats %q", d.Name)
		}
		seen[d.Name] = true
		if names[i] != d.Name {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], d.Name)
		}
		if d.Run == nil {
			t.Fatalf("experiment %q has no single-seed form", d.Name)
		}
		got, ok := experiment.Lookup(d.Name)
		if !ok || got.Name != d.Name {
			t.Fatalf("Lookup(%q) = %v, %v", d.Name, got.Name, ok)
		}
	}
	if _, ok := experiment.Lookup("not-an-experiment"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
}

// TestRegistrySweepablesHaveTrials: every experiment with a multi-seed form
// also has the per-seed trial form the campaign executor dispatches.
func TestRegistrySweepablesHaveTrials(t *testing.T) {
	for _, d := range experiment.Registry() {
		if d.Sweepable() != (d.Trial != nil) {
			t.Errorf("experiment %q: sweep %v but trial %v — campaign cells and -seeds sweeps must agree",
				d.Name, d.Sweepable(), d.Trial != nil)
		}
	}
}

// TestRegistryRunRendersSection: registry dispatch prints the experiment's
// section header — the layout benchtables' full-suite output is made of.
func TestRegistryRunRendersSection(t *testing.T) {
	def, ok := experiment.Lookup("recover")
	if !ok {
		t.Fatal("recover not registered")
	}
	var buf bytes.Buffer
	if err := def.Run(&buf, experiment.RunConfig{Seed: 1}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== Tns_recover") {
		t.Fatalf("output missing section header:\n%s", out)
	}
	if !strings.Contains(out, "A53") {
		t.Fatalf("output missing the rendered table:\n%s", out)
	}
}

// TestRegistryTrialMatchesSweep: one seed through the trial form produces
// the same metrics the sweep aggregates for that seed.
func TestRegistryTrialMatchesSweep(t *testing.T) {
	def, ok := experiment.Lookup("race")
	if !ok {
		t.Fatal("race not registered")
	}
	metrics, err := def.Trial(context.Background(), 1)
	if err != nil {
		t.Fatalf("Trial: %v", err)
	}
	sw, _, err := def.Sweep(context.Background(), 1, experiment.Options{Seeds: 1, Workers: 1})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	var csv bytes.Buffer
	if err := sw.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, m := range metrics {
		if !strings.Contains(csv.String(), m.Name) {
			t.Errorf("sweep CSV missing trial metric %q", m.Name)
		}
	}
}
