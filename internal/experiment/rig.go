package experiment

import (
	"fmt"

	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/mem"
	"satin/internal/richos"
	"satin/internal/simclock"
	"satin/internal/trustzone"
)

// Rig is a fully assembled Juno r1 testbed: platform, secure monitor,
// booted kernel image, rich OS, and a checker.
type Rig struct {
	Engine  *simclock.Engine
	Plat    *hw.Platform
	Image   *mem.Image
	Monitor *trustzone.Monitor
	OS      *richos.OS
	Checker *introspect.Checker
}

// NewRig assembles the standard testbed with deterministic streams derived
// from seed.
func NewRig(seed uint64) (*Rig, error) {
	e := simclock.NewEngine()
	p, err := hw.NewJunoR1(e)
	if err != nil {
		return nil, fmt.Errorf("experiment: platform: %w", err)
	}
	im, err := mem.NewJunoImage(seed)
	if err != nil {
		return nil, fmt.Errorf("experiment: image: %w", err)
	}
	os, err := richos.NewOS(p, im, richos.Config{Seed: seed + 1})
	if err != nil {
		return nil, fmt.Errorf("experiment: rich OS: %w", err)
	}
	ch, err := introspect.NewChecker(im, p.Perf(), seed+2, introspect.HashDjb2, 0)
	if err != nil {
		return nil, fmt.Errorf("experiment: checker: %w", err)
	}
	return &Rig{
		Engine:  e,
		Plat:    p,
		Image:   im,
		Monitor: trustzone.NewMonitor(p, seed+3),
		OS:      os,
		Checker: ch,
	}, nil
}

// JunoAreas returns the 19-area partition of the rig's kernel.
func (r *Rig) JunoAreas() ([]mem.Area, error) {
	return mem.BuildAreas(r.Image.Layout(), mem.JunoAreaGroups())
}
