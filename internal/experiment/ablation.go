package experiment

import (
	"fmt"
	"time"

	"satin/internal/attack"
	"satin/internal/core"
	"satin/internal/mem"
	"satin/internal/stats"
)

// AblationVariant identifies one degraded SATIN configuration.
type AblationVariant int

// Ablation variants, one per design choice §V motivates.
const (
	// VariantFull is SATIN as designed: small areas, random area order,
	// random deviation, random core.
	VariantFull AblationVariant = iota + 1
	// VariantFixedCore pins every round to one (A53) core; the attacker
	// answers with the ≈4x more precise single-core prober (§IV-B2),
	// shrinking its threshold and thus its reaction time.
	VariantFixedCore
	// VariantNoDeviation drops the ±tp randomness; wake times become
	// predictable, so the evader hides *before* each check instead of
	// probing (§V-C's threat).
	VariantNoDeviation
	// VariantWholeKernel checks the entire kernel as one "area",
	// violating Equation 2 — the pre-SATIN baseline structure.
	VariantWholeKernel
)

// String names the variant.
func (v AblationVariant) String() string {
	switch v {
	case VariantFull:
		return "SATIN (full design)"
	case VariantFixedCore:
		return "fixed A53 core"
	case VariantNoDeviation:
		return "no random deviation"
	case VariantWholeKernel:
		return "whole-kernel area"
	default:
		return fmt.Sprintf("AblationVariant(%d)", int(v))
	}
}

// AblationRow is one variant's outcome across the trace-depth sweep.
type AblationRow struct {
	Variant AblationVariant
	// Passes is the total number of checks of the attacked region across
	// all depths.
	Passes int
	// Detections is how many raised an alarm.
	Detections int
}

// Rate is the detection rate across the sweep — the fraction of
// (depth, pass) combinations the variant protects.
func (r AblationRow) Rate() float64 {
	if r.Passes == 0 {
		return 0
	}
	return float64(r.Detections) / float64(r.Passes)
}

// AblationResult compares SATIN's design choices (E11 in DESIGN.md): each
// variant faces its best-response evader, with the 8-byte trace planted at
// varying depths inside the attacked area (the paper's own attack sits near
// the area start, where every variant succeeds; depth is what separates
// them).
type AblationResult struct {
	Rows []AblationRow
}

// Row returns the entry for variant v.
func (r AblationResult) Row(v AblationVariant) (AblationRow, error) {
	for _, row := range r.Rows {
		if row.Variant == v {
			return row, nil
		}
	}
	return AblationRow{}, fmt.Errorf("experiment: no ablation row for %v", v)
}

// Render prints the comparison.
func (r AblationResult) Render() string {
	tbl := stats.NewTable("Variant", "Checks of attacked region", "Detections", "Detection rate")
	for _, row := range r.Rows {
		tbl.AddRow(row.Variant.String(),
			fmt.Sprintf("%d", row.Passes),
			fmt.Sprintf("%d", row.Detections),
			stats.Pct(row.Rate()))
	}
	return tbl.String()
}

// AblationConfig tunes the ablation.
type AblationConfig struct {
	// Depths is how many trace positions to sweep inside the attacked
	// area.
	Depths int
	// ScansPerDepth is how many full kernel passes each depth gets.
	ScansPerDepth int
	// PerRoundPeriod is tp.
	PerRoundPeriod time.Duration
	Seed           uint64
}

// DefaultAblationConfig keeps the runs short but conclusive.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{Depths: 8, ScansPerDepth: 2, PerRoundPeriod: time.Second, Seed: 1}
}

// RunAblation evaluates each variant against the strongest evader that
// variant allows.
func RunAblation(cfg AblationConfig) (AblationResult, error) {
	if cfg.Depths <= 0 || cfg.ScansPerDepth <= 0 || cfg.PerRoundPeriod <= 0 {
		return AblationResult{}, fmt.Errorf("experiment: invalid ablation config %+v", cfg)
	}
	var result AblationResult
	for _, v := range []AblationVariant{VariantFull, VariantFixedCore, VariantNoDeviation, VariantWholeKernel} {
		row := AblationRow{Variant: v}
		for d := 0; d < cfg.Depths; d++ {
			frac := (float64(d) + 0.5) / float64(cfg.Depths)
			passes, detections, err := runAblationTrial(cfg, v, frac, uint64(d))
			if err != nil {
				return AblationResult{}, fmt.Errorf("experiment: variant %v depth %.2f: %w", v, frac, err)
			}
			row.Passes += passes
			row.Detections += detections
		}
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

// runAblationTrial runs one variant with the trace planted at fraction frac
// of the attacked area.
func runAblationTrial(cfg AblationConfig, v AblationVariant, frac float64, salt uint64) (passes, detections int, err error) {
	rig, err := NewRig(cfg.Seed + uint64(v)*1000 + salt*31)
	if err != nil {
		return 0, 0, err
	}
	areas, err := rig.JunoAreas()
	if err != nil {
		return 0, 0, err
	}
	attackedArea := 14

	satinCfg := core.DefaultConfig()
	satinCfg.Seed = cfg.Seed + 3 + salt
	switch v {
	case VariantFixedCore:
		satinCfg.FixedCore = 0 // an A53 core: slower per-byte, weaker defense
	case VariantNoDeviation:
		satinCfg.RandomDeviation = false
	case VariantWholeKernel:
		layout := rig.Image.Layout()
		areas = []mem.Area{{Index: 0, Addr: layout.Base, Size: layout.TotalSize(), Sections: layout.Sections}}
		satinCfg.AllowUnsafeAreas = true
		attackedArea = 0
	}
	satinCfg.Tgoal = time.Duration(len(areas)) * cfg.PerRoundPeriod
	satinCfg.MaxRounds = cfg.ScansPerDepth * len(areas)
	satin, err := core.New(rig.Plat, rig.Monitor, rig.Image, rig.Checker, areas, satinCfg)
	if err != nil {
		return 0, 0, err
	}

	// Plant the trace at the requested depth of the attacked area.
	target := areas[attackedArea].Addr + uint64(frac*float64(areas[attackedArea].Size))
	if target+8 > areas[attackedArea].End() {
		target = areas[attackedArea].End() - 8
	}
	rootkit := attack.NewRootkitAt(rig.OS, rig.Image, target)

	if v == VariantNoDeviation {
		// Predictable schedule: the evader hides shortly before each
		// deterministic wake and reinstalls after the round — no probing
		// needed.
		if err := schedulePredictiveEvader(rig, rootkit, satinCfg.BasePeriod(len(areas)), satinCfg.MaxRounds, areas); err != nil {
			return 0, 0, err
		}
	} else {
		threshold := core.DefaultTnsThreshold
		sleep := attack.DefaultProberSleep
		if v == VariantFixedCore {
			// Single-core probing: spinning reporter, ≈4x tighter
			// threshold (§IV-B2).
			threshold /= 4
			sleep = attack.SpinQuantum
		}
		evader, err := attack.NewFastEvader(rig.Plat, rig.Image, rootkit, sleep, threshold, cfg.Seed+9+salt)
		if err != nil {
			return 0, 0, err
		}
		if err := evader.Start(); err != nil {
			return 0, 0, err
		}
	}
	if err := satin.Start(); err != nil {
		return 0, 0, err
	}
	rig.Engine.Run()

	passes = len(satin.AreaRounds(attackedArea))
	for _, a := range satin.Alarms() {
		if a.Area == attackedArea {
			detections++
		}
	}
	return passes, detections, nil
}

// schedulePredictiveEvader models the attacker against a deterministic
// schedule: with no deviation, system-wide wakes land exactly at k*tp
// boundaries, so the evader hides ahead of each and reinstalls after the
// longest possible round.
func schedulePredictiveEvader(rig *Rig, rootkit *attack.Rootkit, tp time.Duration, maxRounds int, areas []mem.Area) error {
	if err := rootkit.Install(rig.Engine.Now()); err != nil {
		return err
	}
	// Longest round: largest area at A53 speed, plus switches and margin.
	longest := time.Duration(float64(mem.MaxAreaSize(areas))*1.2e-8*float64(time.Second)) + time.Millisecond
	const margin = 2 * time.Millisecond
	base := rig.Engine.Now()
	for k := 1; k <= maxRounds+6; k++ {
		wake := time.Duration(k) * tp
		rig.Engine.At(base.Add(wake-margin), "predict-hide", func() {
			if rootkit.State() == attack.RootkitActive {
				if err := rootkit.Hide(rig.Engine.Now()); err != nil {
					panic(err) // unreachable: state checked
				}
			}
		})
		rig.Engine.At(base.Add(wake+longest), "predict-reinstall", func() {
			if rootkit.State() == attack.RootkitHidden {
				if err := rootkit.Install(rig.Engine.Now()); err != nil {
					panic(err) // unreachable: state checked
				}
			}
		})
	}
	return nil
}
