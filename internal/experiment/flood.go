package experiment

import (
	"fmt"
	"time"

	"satin/internal/attack"
	"satin/internal/core"
	"satin/internal/stats"
	"satin/internal/trustzone"
)

// FloodConfig tunes the interrupt-interference ablation.
type FloodConfig struct {
	// Rate is the per-core SGI flood rate (interrupts/second).
	Rate float64
	// Depths sweeps the trace position inside the attacked area.
	Depths int
	// ScansPerDepth is how many full passes each depth gets.
	ScansPerDepth int
	// PerRoundPeriod is tp.
	PerRoundPeriod time.Duration
	Seed           uint64
}

// DefaultFloodConfig uses a 30 kHz flood — strong but well within what a
// kernel-privileged attacker can generate with SGIs.
func DefaultFloodConfig() FloodConfig {
	return FloodConfig{
		Rate:           30000,
		Depths:         6,
		ScansPerDepth:  1,
		PerRoundPeriod: time.Second,
		Seed:           1,
	}
}

// FloodRow is one routing mode's outcome.
type FloodRow struct {
	Routing trustzone.RoutingMode
	// Passes and Detections count checks of the attacked area across the
	// depth sweep.
	Passes     int
	Detections int
	// MeanRound is the average attacked-area round duration — the stretch
	// the flood induces.
	MeanRound time.Duration
	// Preemptions counts secure-payload preemptions across all cores.
	Preemptions int
}

// Rate is the detection rate.
func (r FloodRow) Rate() float64 {
	if r.Passes == 0 {
		return 0
	}
	return float64(r.Detections) / float64(r.Passes)
}

// FloodResult is the §II-B/§V-B ablation: SATIN's non-preemptive secure
// mode versus OP-TEE-style preemptive routing, both under an interrupt
// flood from the compromised rich OS.
type FloodResult struct {
	Rate float64
	Rows []FloodRow
}

// Row returns the entry for a routing mode.
func (r FloodResult) Row(mode trustzone.RoutingMode) (FloodRow, error) {
	for _, row := range r.Rows {
		if row.Routing == mode {
			return row, nil
		}
	}
	return FloodRow{}, fmt.Errorf("experiment: no flood row for %v", mode)
}

// Render prints the comparison.
func (r FloodResult) Render() string {
	tbl := stats.NewTable("NS interrupt routing", "Checks", "Detections", "Detection rate", "Avg round", "Preemptions")
	for _, row := range r.Rows {
		tbl.AddRow(row.Routing.String(),
			fmt.Sprintf("%d", row.Passes),
			fmt.Sprintf("%d", row.Detections),
			stats.Pct(row.Rate()),
			row.MeanRound.Truncate(time.Microsecond).String(),
			fmt.Sprintf("%d", row.Preemptions))
	}
	return tbl.String()
}

// RunFlood runs the ablation: SATIN vs the fast evader, with the trace
// swept across depths of area 14, under an SGI flood, once per routing
// mode.
func RunFlood(cfg FloodConfig) (FloodResult, error) {
	if cfg.Rate <= 0 || cfg.Depths <= 0 || cfg.ScansPerDepth <= 0 || cfg.PerRoundPeriod <= 0 {
		return FloodResult{}, fmt.Errorf("experiment: invalid flood config %+v", cfg)
	}
	result := FloodResult{Rate: cfg.Rate}
	for _, mode := range []trustzone.RoutingMode{trustzone.NonPreemptive, trustzone.Preemptive} {
		row := FloodRow{Routing: mode}
		var roundSum time.Duration
		rounds := 0
		for d := 0; d < cfg.Depths; d++ {
			frac := (float64(d) + 0.5) / float64(cfg.Depths)
			trial, err := runFloodTrial(cfg, mode, frac, uint64(d))
			if err != nil {
				return FloodResult{}, fmt.Errorf("experiment: %v depth %.2f: %w", mode, frac, err)
			}
			row.Passes += trial.Passes
			row.Detections += trial.Detections
			row.Preemptions += trial.Preemptions
			roundSum += trial.MeanRound * time.Duration(trial.Passes)
			rounds += trial.Passes
		}
		if rounds > 0 {
			row.MeanRound = roundSum / time.Duration(rounds)
		}
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

func runFloodTrial(cfg FloodConfig, mode trustzone.RoutingMode, frac float64, salt uint64) (FloodRow, error) {
	rig, err := NewRig(cfg.Seed + salt*17)
	if err != nil {
		return FloodRow{}, err
	}
	rig.Monitor.SetRouting(mode)
	areas, err := rig.JunoAreas()
	if err != nil {
		return FloodRow{}, err
	}
	const attacked = 14
	satinCfg := core.DefaultConfig()
	satinCfg.Tgoal = time.Duration(len(areas)) * cfg.PerRoundPeriod
	satinCfg.MaxRounds = cfg.ScansPerDepth * len(areas)
	satinCfg.Seed = cfg.Seed + 3 + salt
	satin, err := core.New(rig.Plat, rig.Monitor, rig.Image, rig.Checker, areas, satinCfg)
	if err != nil {
		return FloodRow{}, err
	}
	target := areas[attacked].Addr + uint64(frac*float64(areas[attacked].Size))
	if target+8 > areas[attacked].End() {
		target = areas[attacked].End() - 8
	}
	rootkit := attack.NewRootkitAt(rig.OS, rig.Image, target)
	evader, err := attack.NewFastEvader(rig.Plat, rig.Image, rootkit,
		attack.DefaultProberSleep, core.DefaultTnsThreshold, cfg.Seed+9+salt)
	if err != nil {
		return FloodRow{}, err
	}
	if err := evader.Start(); err != nil {
		return FloodRow{}, err
	}
	flood, err := attack.NewInterruptFlood(rig.Plat, cfg.Rate, nil)
	if err != nil {
		return FloodRow{}, err
	}
	if err := flood.Start(); err != nil {
		return FloodRow{}, err
	}
	if err := satin.Start(); err != nil {
		return FloodRow{}, err
	}
	// The flood never stops, so drive a bounded horizon covering every
	// randomized wake.
	rig.Engine.RunFor(time.Duration(satinCfg.MaxRounds+len(areas)) * 2 * cfg.PerRoundPeriod)

	row := FloodRow{Routing: mode}
	var roundSum time.Duration
	for _, r := range satin.AreaRounds(attacked) {
		row.Passes++
		roundSum += r.Elapsed()
	}
	if row.Passes > 0 {
		row.MeanRound = roundSum / time.Duration(row.Passes)
	}
	for _, a := range satin.Alarms() {
		if a.Area == attacked {
			row.Detections++
		}
	}
	for c := 0; c < rig.Plat.NumCores(); c++ {
		row.Preemptions += rig.Monitor.Preemptions(c)
	}
	return row, nil
}
