package experiment

import (
	"fmt"
	"time"

	"satin/internal/attack"
	"satin/internal/core"
	"satin/internal/faultinject"
	"satin/internal/obs"
	"satin/internal/profile"
	"satin/internal/stats"
)

// DetectionConfig tunes the §VI-B1 detection experiment.
type DetectionConfig struct {
	// FullScans is how many complete kernel passes to run (paper: 10,
	// i.e. 190 rounds over 19 areas).
	FullScans int
	// PerRoundPeriod is tp, the average time between consecutive rounds
	// (paper: ≈8 s).
	PerRoundPeriod time.Duration
	// Threshold is the evader's probing threshold (paper: 1.8e-3 s).
	Threshold time.Duration
	Seed      uint64
	// Faults is the perturbation plan installed over the rig; the zero
	// plan reproduces the paper's unperturbed run exactly.
	Faults faultinject.Plan
	// Profile attaches the causal span profiler to the rig and fills
	// DetectionResult.Profile. The profiler only observes — the run's
	// trace, rounds, and verdicts are byte-identical either way.
	Profile bool
}

// DefaultDetectionConfig returns the paper's §VI-B1 parameters.
func DefaultDetectionConfig() DetectionConfig {
	return DetectionConfig{
		FullScans:      10,
		PerRoundPeriod: 8 * time.Second,
		Threshold:      1800 * time.Microsecond,
		Seed:           1,
	}
}

// DetectionResult reproduces the §VI-B1 numbers.
type DetectionResult struct {
	// Rounds ran in total (paper: 190).
	Rounds int
	// AttackedAreaChecks is how often the attacked area (14) was checked
	// (paper: 10).
	AttackedAreaChecks int
	// Detections is how many of those checks raised the alarm (paper: 10
	// of 10 — every recovery effort failed).
	Detections int
	// SuspectEvents is how many rounds the evader's prober flagged.
	SuspectEvents int
	// FalseNegatives: introspection entries the prober missed.
	FalseNegatives int
	// FalsePositives: prober suspicions with no introspection entry.
	FalsePositives int
	// MeanAttackedAreaGap is the average time between consecutive checks
	// of the attacked area (paper: 141 s).
	MeanAttackedAreaGap time.Duration
	// MeanFullScanTime is the average duration of one complete kernel
	// pass (paper: ≈152 s).
	MeanFullScanTime time.Duration
	// Profile is the run's span attribution, present only when
	// DetectionConfig.Profile was set.
	Profile *profile.Summary
}

// Render prints the paper-vs-measured summary.
func (r DetectionResult) Render() string {
	tbl := stats.NewTable("Quantity", "Measured", "Paper")
	tbl.AddRow("introspection rounds", fmt.Sprintf("%d", r.Rounds), "190")
	tbl.AddRow("area-14 checks", fmt.Sprintf("%d", r.AttackedAreaChecks), "10")
	tbl.AddRow("detections", fmt.Sprintf("%d", r.Detections), "10")
	tbl.AddRow("prober false negatives", fmt.Sprintf("%d", r.FalseNegatives), "0")
	tbl.AddRow("prober false positives", fmt.Sprintf("%d", r.FalsePositives), "0")
	tbl.AddRow("avg gap between area-14 checks", fmt.Sprintf("%.0f s", r.MeanAttackedAreaGap.Seconds()), "141 s")
	tbl.AddRow("avg full-scan time", fmt.Sprintf("%.0f s", r.MeanFullScanTime.Seconds()), "≈152 s")
	return tbl.String()
}

// RunDetection executes the paper's headline experiment: SATIN (19 areas,
// random areas, random cores, random deviation) versus TZ-Evader attacking
// the syscall table in area 14.
func RunDetection(cfg DetectionConfig) (DetectionResult, error) {
	if cfg.FullScans <= 0 || cfg.PerRoundPeriod <= 0 || cfg.Threshold <= 0 {
		return DetectionResult{}, fmt.Errorf("experiment: invalid detection config %+v", cfg)
	}
	rig, err := NewRig(cfg.Seed)
	if err != nil {
		return DetectionResult{}, err
	}
	areas, err := rig.JunoAreas()
	if err != nil {
		return DetectionResult{}, err
	}
	satinCfg := core.DefaultConfig()
	satinCfg.Tgoal = time.Duration(len(areas)) * cfg.PerRoundPeriod
	satinCfg.MaxRounds = cfg.FullScans * len(areas)
	satinCfg.Seed = cfg.Seed + 5
	satin, err := core.New(rig.Plat, rig.Monitor, rig.Image, rig.Checker, areas, satinCfg)
	if err != nil {
		return DetectionResult{}, err
	}
	rootkit := attack.NewRootkit(rig.OS, rig.Image)
	evader, err := attack.NewFastEvader(rig.Plat, rig.Image, rootkit,
		attack.DefaultProberSleep, cfg.Threshold, cfg.Seed+9)
	if err != nil {
		return DetectionResult{}, err
	}
	// The rig path has no observability wiring of its own; when profiling is
	// requested, hang a private bus off the components so the profiler sees
	// the alarm/reinstall instants alongside the spans. The profiler only
	// subscribes, so the run itself is unchanged.
	var prof *profile.Profiler
	var bus *obs.Bus
	if cfg.Profile {
		bus = obs.NewBus()
		prof = profile.NewProfiler(rig.Plat.NumCores())
		bus.Subscribe(prof.OnEvent)
		rig.Monitor.Observe(bus, nil)
		satin.Observe(bus, nil)
		evader.Observe(bus, nil)
		rig.Monitor.SetProfiler(prof)
		rig.Checker.SetProfiler(prof)
		satin.SetProfiler(prof)
		evader.SetProfiler(prof)
	}
	if err := evader.Start(); err != nil {
		return DetectionResult{}, err
	}
	if err := satin.Start(); err != nil {
		return DetectionResult{}, err
	}
	// Perturbations compose over the assembled rig; the empty plan installs
	// nothing and leaves the run byte-identical.
	if _, err := faultinject.Install(cfg.Faults, rig.Plat, rig.Monitor, cfg.Seed+8, bus, nil); err != nil {
		return DetectionResult{}, err
	}
	rig.Engine.Run()

	rounds := satin.Rounds()
	result := DetectionResult{Rounds: len(rounds)}
	if prof.Attached() {
		s := prof.Summary(rig.Engine.Now().Duration())
		result.Profile = &s
	}

	attacked := satin.AreaRounds(14)
	result.AttackedAreaChecks = len(attacked)
	for _, a := range satin.Alarms() {
		if a.Area == 14 {
			result.Detections++
		}
	}
	var gaps []float64
	for i := 1; i < len(attacked); i++ {
		gaps = append(gaps, attacked[i].Started.Sub(attacked[i-1].Started).Seconds())
	}
	if len(gaps) > 0 {
		result.MeanAttackedAreaGap = time.Duration(stats.Mean(gaps) * float64(time.Second))
	}
	// Full-scan time: rounds grouped by pass of 19.
	var scans []float64
	for s := 0; s+len(areas) <= len(rounds); s += len(areas) {
		scans = append(scans, rounds[s+len(areas)-1].Finished.Sub(rounds[s].Started).Seconds())
	}
	if len(scans) > 0 {
		result.MeanFullScanTime = time.Duration(stats.Mean(scans) * float64(time.Second))
	}

	// Prober fidelity: match suspect events to introspection rounds (the
	// quantity the paper counts: "KProber can faithfully report all 190
	// rounds of introspection"). A round's detection window runs from its
	// secure entry to entry + threshold + probing slack. Entries that run
	// no check (the post-budget dormant wakes, whose residency is far
	// below the threshold) are rightly invisible to the prober and are
	// not rounds.
	suspects := evader.SuspectEvents()
	result.SuspectEvents = len(suspects)
	used := make([]bool, len(suspects))
	for _, round := range rounds {
		found := false
		for i, s := range suspects {
			if used[i] || s.Core != round.CoreID {
				continue
			}
			d := s.At.Sub(round.Started)
			if d >= 0 && d <= cfg.Threshold+2*attack.DefaultProberSleep {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			result.FalseNegatives++
		}
	}
	for i := range suspects {
		if !used[i] {
			result.FalsePositives++
		}
	}
	return result, nil
}
