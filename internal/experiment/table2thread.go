package experiment

import (
	"fmt"
	"time"

	"satin/internal/attack"
	"satin/internal/simclock"
	"satin/internal/stats"
)

// Table2ThreadResult validates the Table II threshold model against the
// full thread-level prober: the same per-round maxima, measured by actually
// running six KProber-II threads on the simulated rich OS instead of
// sampling the calibrated model. Full paper scale (50 rounds × five
// periods) would cost billions of scheduler events; this driver runs a
// reduced round count at one period and prints both numbers side by side.
type Table2ThreadResult struct {
	Period time.Duration
	Rounds int
	// Measured summarizes the thread-level per-round maxima (seconds).
	Measured stats.Summary
	// Model summarizes the calibrated sampler at the same period.
	Model stats.Summary
}

// AgreementRatio is measured mean / model mean — the cross-validation
// figure (≈1 means the scalable model is faithful).
func (r Table2ThreadResult) AgreementRatio() float64 {
	if r.Model.Mean == 0 {
		return 0
	}
	return r.Measured.Mean / r.Model.Mean
}

// Render prints the comparison.
func (r Table2ThreadResult) Render() string {
	tbl := stats.NewTable("Source", "Rounds", "Avg threshold", "Max", "Min")
	tbl.AddRow("thread-level prober (simulated)",
		fmt.Sprintf("%d", r.Measured.N),
		stats.SciSeconds(r.Measured.Mean), stats.SciSeconds(r.Measured.Max), stats.SciSeconds(r.Measured.Min))
	tbl.AddRow("calibrated model (Table II source)",
		fmt.Sprintf("%d", r.Model.N),
		stats.SciSeconds(r.Model.Mean), stats.SciSeconds(r.Model.Max), stats.SciSeconds(r.Model.Min))
	return tbl.String() + fmt.Sprintf("agreement (measured/model mean): %.2f\n", r.AgreementRatio())
}

// RunTable2ThreadLevel measures `rounds` probing rounds of the given period
// with the real thread-level prober and compares them with the model.
func RunTable2ThreadLevel(seed uint64, period time.Duration, rounds int) (Table2ThreadResult, error) {
	if period <= 0 || rounds <= 0 {
		return Table2ThreadResult{}, fmt.Errorf("experiment: period %v and rounds %d must be positive", period, rounds)
	}
	rig, err := NewRig(seed)
	if err != nil {
		return Table2ThreadResult{}, err
	}
	buffer, err := attack.NewReportBuffer(rig.Plat.NumCores(), attack.JunoCrossCoreNoise(), seed+4)
	if err != nil {
		return Table2ThreadResult{}, err
	}
	prober, err := attack.NewThreadProber(rig.OS, buffer, attack.ProberConfig{Kind: attack.KProberII})
	if err != nil {
		return Table2ThreadResult{}, err
	}
	if err := prober.Start(); err != nil {
		return Table2ThreadResult{}, err
	}
	// Record the per-round maximum at each period boundary. Skip a warmup
	// round so thread start-up transients don't pollute round 1.
	var maxima []float64
	for k := 1; k <= rounds+1; k++ {
		k := k
		rig.Engine.At(simclock.Time(k)*simclock.Time(period), "round-boundary", func() {
			if k > 1 {
				maxima = append(maxima, prober.MaxStaleness().Seconds())
			}
			prober.ResetMaxStaleness()
		})
	}
	rig.Engine.RunUntil(simclock.Time(rounds+1) * simclock.Time(period))

	model := attack.JunoThresholdModel(rig.Plat.Perf())
	g := simclock.NewRNG(seed+9, "experiment.table2thread")
	modelRounds := model.RoundSet(period, 200, g)
	modelXs := make([]float64, len(modelRounds))
	for i, d := range modelRounds {
		modelXs[i] = d.Seconds()
	}
	return Table2ThreadResult{
		Period:   period,
		Rounds:   len(maxima),
		Measured: stats.Summarize(maxima),
		Model:    stats.Summarize(modelXs),
	}, nil
}
