// Package experiment contains one driver per table and figure of the
// paper's evaluation, plus the ablations DESIGN.md calls out. Each driver
// assembles its own platform, runs the simulation, and returns a typed
// result with a Render method that prints the same rows or series the
// paper reports.
//
// # Catalog
//
// Paper tables and figures:
//
//   - RunTable1 — Table I, secure-world introspection time per byte
//     (hash vs snapshot, A53 vs A57; 50 repetitions per cell).
//   - RunTable2 / Table2Result.RenderFig4 / ChartFig4 — Table II and
//     Figure 4, the probing threshold across five periods, from the
//     calibrated ThresholdModel.
//   - RunTable2ThreadLevel — the same quantity measured by the actual
//     six-thread prober, cross-validating the model (agreement ≈ 0.98).
//   - RunFig3 — Figure 3, the two-world race timeline with measured
//     instants, for a losing (whole-kernel) and winning (SATIN-area) check.
//   - RunFig7 — Figure 7, normalized UnixBench degradation under SATIN,
//     1-task and 6-task.
//
// Scalar measurements quoted in the paper's text:
//
//   - RunSwitch — Ts_switch (§IV-B1).
//   - RunRecover — Tns_recover (§IV-B2).
//   - RunSingleCore — single-core vs all-core probing precision (§IV-B2).
//   - RunUserProber — the user-level prober's Tns_delay (§III-B1).
//
// System-level experiments:
//
//   - RunRace — the §IV-C race analysis: Equation 2's S bound and the
//     ≈90% unprotected fraction, validated by a 20-depth empirical sweep.
//   - RunMSweep — §IV-C observation 4: the trace-size (M) crossover where
//     Tns_recover stops beating the scan.
//   - RunEvasion — TZ-Evader defeating the randomized whole-kernel
//     baseline (the paper's premise).
//   - RunDetection — the §VI-B1 headline experiment: 190 SATIN rounds,
//     10/10 detections, 0 prober false positives/negatives.
//   - RunAblation — SATIN's design choices (random core, random
//     deviation, divided areas) against best-response evaders.
//   - RunFlood — the §II-B/§V-B interrupt-routing ablation: an SGI flood
//     against non-preemptive vs preemptive secure execution.
//   - RunSyncBypass — §VII-A/§VII-C: synchronous guard, AP-flip bypass,
//     asynchronous catch of both traces.
//   - RunKProber1Exposure — §III-C1: SATIN flagging KProber-I's own
//     vector hijack.
//   - RunSensitivity — robustness of the §VI-B1 result under deterministic
//     fault injection: detection probability and evasion rate vs
//     perturbation magnitude (faultinject.ScaledPlan), with per-magnitude
//     confidence bands across seeds.
//
// Every driver returns a typed result with a Render method producing the
// paper-layout text table; cmd/benchtables prints them all and
// EXPERIMENTS.md records paper-vs-measured.
package experiment
