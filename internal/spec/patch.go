package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Patch sets one field of the spec, addressed by a dotted JSON path
// ("evader.kind", "defense.satin.max_rounds"), to a raw JSON value, and
// re-parses the result through the strict decoder. Patching at the JSON
// layer rather than via reflection keeps the full parse contract in the
// loop: an unknown path fails with the decoder's unknown-field error, a
// type mismatch fails with the decoder's type error, and uint64 fields
// (seeds, rootkit addresses) never round-trip through float64.
//
// Intermediate objects are created as needed, so a grid axis can set
// "defense.satin.max_rounds" on a template whose satin section is absent.
// The value must be a JSON scalar (string, number, or boolean): scalars
// are the only values whose canonical form survives Marshal/Parse
// byte-identically, which the campaign grid round trip depends on.
//
// Patch does not validate semantics — compose with Canonicalize, which a
// typo'd enum or out-of-range value will fail loudly.
func Patch(s Spec, path string, value json.RawMessage) (Spec, error) {
	if path == "" {
		return Spec{}, fmt.Errorf("spec: patch: empty path")
	}
	compact, err := compactScalar(value)
	if err != nil {
		return Spec{}, fmt.Errorf("spec: patch %q: %w", path, err)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		return Spec{}, fmt.Errorf("spec: patch %q: marshal: %w", path, err)
	}
	patched, err := setPath(blob, strings.Split(path, "."), compact)
	if err != nil {
		return Spec{}, fmt.Errorf("spec: patch %q: %w", path, err)
	}
	out, err := Parse(patched)
	if err != nil {
		return Spec{}, fmt.Errorf("spec: patch %q: %w", path, err)
	}
	return out, nil
}

// compactScalar verifies the value is a single JSON scalar and returns its
// compact encoding.
func compactScalar(value json.RawMessage) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, value); err != nil {
		return nil, fmt.Errorf("value %s: %w", value, err)
	}
	c := buf.Bytes()
	if len(c) == 0 {
		return nil, fmt.Errorf("empty value")
	}
	switch c[0] {
	case '{', '[':
		return nil, fmt.Errorf("value %s: grid values must be JSON scalars (string, number, or boolean)", c)
	case 'n':
		return nil, fmt.Errorf("null is not a grid value (omit the axis instead)")
	}
	return json.RawMessage(c), nil
}

// setPath walks the object blob down the path segments, creating missing
// intermediate objects, and sets the leaf to value.
func setPath(blob []byte, path []string, value json.RawMessage) ([]byte, error) {
	if len(path) == 0 {
		return value, nil
	}
	obj := map[string]json.RawMessage{}
	if len(blob) > 0 {
		if err := json.Unmarshal(blob, &obj); err != nil {
			return nil, fmt.Errorf("segment %q is not an object: %w", path[0], err)
		}
	}
	child, err := setPath(obj[path[0]], path[1:], value)
	if err != nil {
		return nil, err
	}
	obj[path[0]] = child
	return json.Marshal(obj)
}
