// Fuzz targets for the scenario spec, in an external test package so they
// can drive satin.FromSpec: the root package imports internal/spec, so the
// reverse import is only legal from _test code.
package spec_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"satin"
	"satin/internal/spec"
)

// seedCorpus feeds every committed conformance spec plus handwritten edge
// cases to a fuzz target.
func seedCorpus(f *testing.F) {
	f.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "specs", "*.json"))
	if err != nil || len(files) == 0 {
		f.Fatalf("no seed corpus under testdata/specs (err %v)", err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatalf("reading %s: %v", file, err)
		}
		f.Add(data)
	}
	for _, s := range []string{
		`{}`,
		`{"version": 1}`,
		`{"version": 1, "run": {"to_completion": true}}`,
		`{"version": 1, "seed": 0, "defense": {"kind": "baseline"}, "evader": {"kind": "thread"}, "run": {"for": "1m"}}`,
		`{"version": 1, "evader": {"kind": "fast", "rootkit_addr": 1}, "run": {"for": "1s"}}`,
		`{"version": 1, "faults": "scale:2;hotplug:core=0,off=5s", "defense": {"kind": "satin"}, "run": {"for": "10s"}}`,
		`{"version": 1, "workload": {"flood_rate": 1e9}, "defense": {"kind": "none"}, "evader": {"kind": "fast"}, "run": {"for": "1s"}}`,
	} {
		f.Add([]byte(s))
	}
}

// FuzzParseSpec is the end-to-end robustness property: any input that
// parses and validates must canonicalize and build a Scenario without
// panicking. Build errors are legal (validation is semantic, the builder
// has physical constraints like kernel address ranges); crashes are not.
func FuzzParseSpec(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := spec.Parse(data)
		if err != nil {
			return
		}
		if spec.Validate(s) != nil {
			return
		}
		c, err := spec.Canonicalize(s)
		if err != nil {
			t.Fatalf("spec passed Validate but failed Canonicalize: %v", err)
		}
		if _, err := satin.FromSpec(c); err != nil {
			return
		}
	})
}

// FuzzSpecRoundTrip is the serialization property: for any valid input,
// the canonical form survives Marshal→Parse with DeepEqual identity and
// Canonicalize is a fixed point.
func FuzzSpecRoundTrip(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := spec.Parse(data)
		if err != nil || spec.Validate(s) != nil {
			return
		}
		c, err := spec.Canonicalize(s)
		if err != nil {
			t.Fatalf("spec passed Validate but failed Canonicalize: %v", err)
		}
		b, err := spec.Marshal(c)
		if err != nil {
			t.Fatalf("Marshal(canonical): %v", err)
		}
		re, err := spec.Parse(b)
		if err != nil {
			t.Fatalf("Parse(Marshal(canonical)): %v\n%s", err, b)
		}
		if !reflect.DeepEqual(c, re) {
			t.Fatalf("round trip drifted\ncanonical: %+v\nreparsed:  %+v\njson:\n%s", c, re, b)
		}
		c2, err := spec.Canonicalize(re)
		if err != nil || !reflect.DeepEqual(c, c2) {
			t.Fatalf("Canonicalize not idempotent (err %v)", err)
		}
	})
}
