package spec

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// validSpec is a baseline every rejection test mutates: the golden-corpus
// clean scenario.
func validSpec() Spec {
	return Spec{
		Version: CurrentVersion,
		Seed:    1,
		Defense: Defense{Kind: DefenseSATIN, SATIN: &SATINConfig{
			Tgoal:     Duration(19 * time.Second),
			MaxRounds: 19,
		}},
		Evader: Evader{Kind: EvaderFast},
		Run:    Run{ToCompletion: true},
	}
}

func boolPtr(v bool) *bool    { return &v }
func intPtr(v int) *int       { return &v }
func u64Ptr(v uint64) *uint64 { return &v }

// TestValidateRejections drives every invalid-field class through Validate
// and pins its distinct error message, so spec-generating tooling can
// triage rejections by substring.
func TestValidateRejections(t *testing.T) {
	cases := map[string]struct {
		mutate func(*Spec)
		want   string
	}{
		"bad version": {
			func(s *Spec) { s.Version = 99 },
			"version 99 unsupported"},
		"unknown profile": {
			func(s *Spec) { s.Hardware = &Hardware{Profile: "raspi"} },
			`unknown hardware profile "raspi"`},
		"unknown defense kind": {
			func(s *Spec) { s.Defense.Kind = "firewall" },
			`unknown defense kind "firewall"`},
		"defense section without kind": {
			func(s *Spec) { s.Defense.Kind = DefenseNone },
			"defense sections set but defense.kind"},
		"satin with baseline section": {
			func(s *Spec) { s.Defense.Baseline = &BaselineConfig{} },
			"conflicts with a baseline section"},
		"baseline with satin section": {
			func(s *Spec) {
				s.Defense = Defense{Kind: DefenseBaseline,
					SATIN:    &SATINConfig{},
					Baseline: &BaselineConfig{Period: Duration(time.Second), MaxRounds: 5}}
			},
			"conflicts with a satin section"},
		"negative tgoal": {
			func(s *Spec) { s.Defense.SATIN.Tgoal = Duration(-time.Second) },
			"defense.satin.tgoal -1s is negative"},
		"unknown satin technique": {
			func(s *Spec) { s.Defense.SATIN.Technique = "photograph" },
			`unknown defense.satin.technique "photograph"`},
		"satin fixed core range": {
			func(s *Spec) { s.Defense.SATIN.FixedCore = intPtr(6) },
			"defense.satin.fixed_core 6 outside [-1, 6)"},
		"negative satin max rounds": {
			func(s *Spec) { s.Defense.SATIN.MaxRounds = -1 },
			"defense.satin.max_rounds -1 is negative"},
		"negative area bound": {
			func(s *Spec) { s.Defense.SATIN.AreaBound = -1 },
			"defense.satin.area_bound -1 is negative"},
		"negative baseline period": {
			func(s *Spec) {
				s.Defense = Defense{Kind: DefenseBaseline,
					Baseline: &BaselineConfig{Period: Duration(-time.Second), MaxRounds: 5}}
			},
			"defense.baseline.period -1s is negative"},
		"unknown core selection": {
			func(s *Spec) {
				s.Defense = Defense{Kind: DefenseBaseline,
					Baseline: &BaselineConfig{Selection: "spiral", MaxRounds: 5}}
			},
			`unknown core selection "spiral"`},
		"baseline core range": {
			func(s *Spec) {
				s.Defense = Defense{Kind: DefenseBaseline,
					Baseline: &BaselineConfig{Selection: SelectFixed, Core: 9, MaxRounds: 5}}
			},
			"defense.baseline.core 9 outside [0, 6)"},
		"unknown baseline technique": {
			func(s *Spec) {
				s.Defense = Defense{Kind: DefenseBaseline,
					Baseline: &BaselineConfig{Technique: "xerox", MaxRounds: 5}}
			},
			`unknown defense.baseline.technique "xerox"`},
		"negative baseline max rounds": {
			func(s *Spec) {
				s.Defense = Defense{Kind: DefenseBaseline,
					Baseline: &BaselineConfig{MaxRounds: -2}}
			},
			"defense.baseline.max_rounds -2 is negative"},
		"unknown evader kind": {
			func(s *Spec) { s.Evader.Kind = "quantum" },
			`unknown evader kind "quantum"`},
		"evader params without evader": {
			func(s *Spec) { s.Evader = Evader{Kind: EvaderNone, Sleep: Duration(time.Millisecond)} },
			"evader timing parameters set without an evader"},
		"rootkit addr without evader": {
			func(s *Spec) { s.Evader = Evader{Kind: EvaderNone, RootkitAddr: u64Ptr(0x1000)} },
			"evader.rootkit_addr set without an evader"},
		"negative sleep": {
			func(s *Spec) { s.Evader.Sleep = Duration(-time.Microsecond) },
			"evader.sleep -1µs is negative"},
		"negative threshold": {
			func(s *Spec) { s.Evader.Threshold = Duration(-time.Microsecond) },
			"evader.threshold -1µs is negative"},
		"unknown guard": {
			func(s *Spec) { s.Guard = "maybe" },
			`unknown guard mode "maybe"`},
		"unknown routing": {
			func(s *Spec) { s.Routing = "quantum" },
			`unknown routing "quantum"`},
		"negative flood rate": {
			func(s *Spec) { s.Workload = &Workload{FloodRate: -5} },
			"workload.flood_rate -5 is negative"},
		"malformed fault plan": {
			func(s *Spec) { s.Faults = "jitter:lots" },
			"spec: faults:"},
		"fault plan out of range": {
			func(s *Spec) { s.Faults = "hotplug:core=9,off=1s" },
			"targets core 9 of 6"},
		"negative run horizon": {
			func(s *Spec) { s.Run = Run{For: Duration(-time.Second)} },
			"run.for -1s is negative"},
		"run both set": {
			func(s *Spec) { s.Run = Run{For: Duration(time.Second), ToCompletion: true} },
			"mutually exclusive"},
		"run neither set": {
			func(s *Spec) { s.Run = Run{} },
			`run needs either "for" or "to_completion"`},
		"to_completion with thread evader": {
			func(s *Spec) { s.Evader.Kind = EvaderThread },
			"cannot drain a thread evader"},
		"to_completion with flood": {
			func(s *Spec) { s.Workload = &Workload{FloodRate: 100} },
			"cannot drain an interrupt flood"},
		"to_completion unbounded": {
			func(s *Spec) { s.Defense.SATIN.MaxRounds = 0 },
			"needs a bounded defense"},
		"export duplicate path": {
			func(s *Spec) { s.Export = &Export{Trace: "out.jsonl", Timeline: "out.jsonl"} },
			`both write to "out.jsonl"`},
		"export without observability": {
			func(s *Spec) {
				s.Observability = boolPtr(false)
				s.Export = &Export{Trace: "out.jsonl"}
			},
			"export.trace needs observability"},
		"export without profiling": {
			func(s *Spec) {
				s.Profiling = boolPtr(false)
				s.Export = &Export{ChromeTrace: "spans.json"}
			},
			"export.chrome_trace needs profiling"},
	}
	seen := map[string]string{}
	for name, tc := range cases {
		s := validSpec()
		tc.mutate(&s)
		err := Validate(s)
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", name, err, tc.want)
		}
		// Distinctness: no two classes may collapse onto one message.
		if prev, dup := seen[err.Error()]; dup {
			t.Errorf("%s and %s share the error message %q", name, prev, err)
		}
		seen[err.Error()] = name
	}
}

func TestParseStrictness(t *testing.T) {
	for name, data := range map[string]string{
		"unknown key":      `{"version": 1, "defence": {"kind": "none"}, "run": {"for": "1s"}}`,
		"missing version":  `{"seed": 1, "run": {"for": "1s"}}`,
		"future version":   `{"version": 2, "run": {"for": "1s"}}`,
		"numeric duration": `{"version": 1, "run": {"for": 1000000}}`,
		"trailing data":    `{"version": 1, "run": {"for": "1s"}} {"version": 1}`,
		"not json":         `tp=8s scans=10`,
	} {
		if _, err := Parse([]byte(name + ":dummy")[:0]); err == nil {
			t.Fatal("empty input accepted")
		}
		if _, err := Parse([]byte(data)); err == nil {
			t.Errorf("%s: Parse accepted %s", name, data)
		}
	}
}

// TestCanonicalizeRoundTrip is the tentpole guarantee: canonical specs
// survive Marshal→Parse with DeepEqual identity, and Canonicalize is
// idempotent.
func TestCanonicalizeRoundTrip(t *testing.T) {
	specs := map[string]Spec{
		"clean": validSpec(),
		"kitchen sink": {
			Version: CurrentVersion,
			Name:    "kitchen sink",
			Seed:    7,
			Defense: Defense{Kind: DefenseSATIN, SATIN: &SATINConfig{
				Tgoal:            Duration(40 * time.Second),
				Technique:        TechniqueSnapshot,
				RandomDeviation:  boolPtr(false),
				FixedCore:        intPtr(2),
				MaxRounds:        19,
				AreaBound:        1 << 20,
				AllowUnsafeAreas: true,
				Seed:             42,
			}},
			Evader: Evader{Kind: EvaderFast, Sleep: Duration(100 * time.Microsecond),
				Threshold: Duration(2 * time.Millisecond), RootkitAddr: u64Ptr(0xffff000008000000)},
			Guard:         GuardBypassed,
			Routing:       RoutingPreemptive,
			Faults:        "scale:1.5",
			Observability: boolPtr(true),
			HashCache:     boolPtr(false),
			Profiling:     boolPtr(true),
			Run:           Run{ToCompletion: true},
			Export:        &Export{Trace: "run.jsonl", ChromeTrace: "spans.json"},
		},
		"baseline thread": {
			Version: CurrentVersion,
			Seed:    3,
			Defense: Defense{Kind: DefenseBaseline, Baseline: &BaselineConfig{
				RandomizePeriod: true, MaxRounds: 5}},
			Evader:   Evader{Kind: EvaderThread},
			Workload: &Workload{FloodRate: 1000},
			Run:      Run{For: Duration(2 * time.Minute)},
		},
		"empty workload and export dropped": func() Spec {
			s := validSpec()
			s.Workload = &Workload{}
			s.Export = &Export{}
			return s
		}(),
	}
	for name, s := range specs {
		c, err := Canonicalize(s)
		if err != nil {
			t.Errorf("%s: Canonicalize: %v", name, err)
			continue
		}
		b, err := Marshal(c)
		if err != nil {
			t.Errorf("%s: Marshal: %v", name, err)
			continue
		}
		re, err := Parse(b)
		if err != nil {
			t.Errorf("%s: Parse(Marshal): %v\n%s", name, err, b)
			continue
		}
		if !reflect.DeepEqual(c, re) {
			t.Errorf("%s: round trip drifted\ncanonical: %+v\nreparsed:  %+v\njson:\n%s", name, c, re, b)
		}
		c2, err := Canonicalize(re)
		if err != nil || !reflect.DeepEqual(c, c2) {
			t.Errorf("%s: Canonicalize not idempotent (err %v)\nfirst:  %+v\nsecond: %+v", name, err, c, c2)
		}
	}
}

func TestCanonicalizeDefaults(t *testing.T) {
	c, err := Canonicalize(validSpec())
	if err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	if c.Hardware == nil || c.Hardware.Profile != DefaultProfile {
		t.Errorf("hardware = %+v, want %s", c.Hardware, DefaultProfile)
	}
	if c.Guard != GuardOff || c.Routing != RoutingNonPreemptive {
		t.Errorf("guard %q routing %q, want off/nonpreemptive", c.Guard, c.Routing)
	}
	sat := c.Defense.SATIN
	if sat.Technique != TechniqueDirect || sat.RandomDeviation == nil || !*sat.RandomDeviation ||
		sat.FixedCore == nil || *sat.FixedCore != -1 {
		t.Errorf("satin defaults not materialized: %+v", sat)
	}
	if sat.Seed != 0 {
		t.Errorf("satin seed %d materialized; zero must stay zero (derive from root)", sat.Seed)
	}
	if time.Duration(c.Evader.Sleep) != 200*time.Microsecond ||
		time.Duration(c.Evader.Threshold) != 1800*time.Microsecond {
		t.Errorf("evader defaults = %v/%v, want 200µs/1.8ms", c.Evader.Sleep, c.Evader.Threshold)
	}
	// Fault plans canonicalize to Plan.String()'s fixed point.
	s := validSpec()
	s.Faults = " jitter:0.05 ; irq:p=0.05,delay=100us "
	c, err = Canonicalize(s)
	if err != nil {
		t.Fatalf("Canonicalize(faults): %v", err)
	}
	if want := "jitter:0.05;irq:p=0.05,delay=100µs"; c.Faults != want {
		t.Errorf("faults normalized to %q, want %q", c.Faults, want)
	}
}

func TestInstantiate(t *testing.T) {
	tmpl := validSpec()
	tmpl.Evader.RootkitAddr = u64Ptr(42)
	inst := Instantiate(tmpl, 9)
	if inst.Seed != 9 {
		t.Errorf("seed = %d, want 9", inst.Seed)
	}
	// Deep clone: mutating the instance never aliases the template.
	*inst.Evader.RootkitAddr = 7
	inst.Defense.SATIN.MaxRounds = 999
	if *tmpl.Evader.RootkitAddr != 42 || tmpl.Defense.SATIN.MaxRounds != 19 {
		t.Errorf("Instantiate aliased the template: %+v", tmpl)
	}
}
