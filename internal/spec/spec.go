// Package spec defines the versioned, serializable description of one
// simulation cell: hardware profile, workload, evader choice and parameters,
// defense configuration, fault plan, run horizon, and export switches — the
// complete recipe for one deterministic run. Every ROADMAP north-star item
// (the campaign engine, the co-evolution tournament, new scenario families)
// consumes this artifact: a spec can be stored, diffed, sharded across
// machines, swept over seeds, and fuzzed, none of which ad-hoc facade options
// or CLI flags allow.
//
// The contract has three parts:
//
//   - Parse reads strict JSON: unknown keys are rejected (forward
//     compatibility — a spec written by a newer build fails loudly instead
//     of being half-applied) and the version field is mandatory.
//   - Validate checks every semantic rule with a distinct error per field
//     class, so corpus tooling can triage rejections.
//   - Canonicalize fills defaults and normalizes the fault-plan string; on
//     the canonical form the round trip is lossless and idempotent:
//     Parse(Marshal(c)) == c exactly (reflect.DeepEqual).
//
// The conformance corpus under testdata/specs/ pins this contract to the
// repository's golden traces: every committed spec reproduces its golden
// byte-identically through `satin-sim -spec` (make spec-corpus-check).
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"satin/internal/attack"
	"satin/internal/core"
	"satin/internal/faultinject"
)

// CurrentVersion is the spec format this build reads and writes.
const CurrentVersion = 1

// Enum values for the spec's string-typed fields. Strings, not Go enum ints,
// so a spec is meaningful without this package's source.
const (
	DefenseSATIN    = "satin"
	DefenseBaseline = "baseline"
	DefenseNone     = "none"

	EvaderFast   = "fast"
	EvaderThread = "thread"
	EvaderNone   = "none"

	TechniqueDirect   = "direct"
	TechniqueSnapshot = "snapshot"

	SelectFixed  = "fixed"
	SelectRandom = "random"

	GuardOff      = "off"
	GuardOn       = "on"
	GuardBypassed = "bypassed"

	RoutingNonPreemptive = "nonpreemptive"
	RoutingPreemptive    = "preemptive"
)

// DefaultProfile is the board every scenario models today.
const DefaultProfile = "juno-r1"

// Profiles maps each known hardware profile to its core count. Only the
// Juno r1 board the paper measured is buildable; the table is the extension
// point for alternative boards.
var Profiles = map[string]int{DefaultProfile: 6}

// defaultBaselinePeriod is the paper's tp ≈ 8 s measurement period.
const defaultBaselinePeriod = 8 * time.Second

// Duration is a time.Duration that serializes as a Go duration string
// ("19s", "200µs") instead of a bare nanosecond count, so specs stay
// readable and diffable.
type Duration time.Duration

// MarshalJSON renders the duration as a quoted Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON parses a quoted Go duration string; bare numbers are
// rejected so a spec never silently means nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a quoted Go duration string like \"8s\"")
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Spec is one complete scenario description. The zero value is not runnable;
// Canonicalize fills defaults and Validate states what is wrong. Optional
// sections are pointers (and booleans with non-false defaults are *bool) so
// "unset" is distinguishable from an explicit zero — the property the
// lossless round trip rests on.
type Spec struct {
	// Version must be CurrentVersion.
	Version int `json:"version"`
	// Name labels the spec in sweep output; purely descriptive.
	Name string `json:"name,omitempty"`
	// Seed is the root seed every deterministic stream derives from.
	// Instantiate overrides it per sweep trial.
	Seed uint64 `json:"seed"`
	// Hardware selects the simulated board; nil means juno-r1.
	Hardware *Hardware `json:"hardware,omitempty"`
	// Defense selects and tunes the introspection side.
	Defense Defense `json:"defense"`
	// Evader selects and tunes the attack side.
	Evader Evader `json:"evader"`
	// Guard is the §VII-A synchronous guard mode: off | on | bypassed.
	Guard string `json:"guard,omitempty"`
	// Routing is the §II-B NS-interrupt routing: nonpreemptive | preemptive.
	Routing string `json:"routing,omitempty"`
	// Workload adds background interference; nil means none.
	Workload *Workload `json:"workload,omitempty"`
	// Faults is a fault-injection plan in the -faults grammar; Canonicalize
	// rewrites it to Plan.String()'s normal form.
	Faults string `json:"faults,omitempty"`
	// Observability enables the event bus, timeline, and metrics registry;
	// nil means enabled.
	Observability *bool `json:"observability,omitempty"`
	// HashCache enables the checker's incremental hash cache; nil means
	// enabled.
	HashCache *bool `json:"hash_cache,omitempty"`
	// Profiling attaches the causal span profiler; nil means "only if an
	// export needs it" (chrome_trace or profile set).
	Profiling *bool `json:"profiling,omitempty"`
	// Run is the drive instruction: a fixed horizon or drain-to-completion.
	Run Run `json:"run"`
	// Export lists artifact files the run should write; nil means none.
	Export *Export `json:"export,omitempty"`
}

// Hardware selects the simulated board.
type Hardware struct {
	// Profile names a row of Profiles; empty means juno-r1.
	Profile string `json:"profile,omitempty"`
}

// Defense selects the introspection mechanism. Exactly the section matching
// Kind may be present; a missing section means that mechanism's defaults.
type Defense struct {
	// Kind is satin | baseline | none (empty means none).
	Kind     string          `json:"kind"`
	SATIN    *SATINConfig    `json:"satin,omitempty"`
	Baseline *BaselineConfig `json:"baseline,omitempty"`
}

// SATINConfig mirrors core.Config field for field in serializable form.
type SATINConfig struct {
	// Tgoal is the full-coverage period; zero means the paper's 152 s.
	Tgoal Duration `json:"tgoal"`
	// Technique is direct | snapshot; empty means direct.
	Technique string `json:"technique,omitempty"`
	// RandomDeviation applies ±tp wake-up deviation; nil means true.
	RandomDeviation *bool `json:"random_deviation,omitempty"`
	// FixedCore pins rounds to one core; nil means -1 (multi-core).
	FixedCore *int `json:"fixed_core,omitempty"`
	// MaxRounds bounds the run; 0 means run forever.
	MaxRounds int `json:"max_rounds,omitempty"`
	// AreaBound overrides the Equation 2 bound; 0 means the default.
	AreaBound int `json:"area_bound,omitempty"`
	// AllowUnsafeAreas skips the bound validation (ablation).
	AllowUnsafeAreas bool `json:"allow_unsafe_areas,omitempty"`
	// Seed drives area selection and wake-time randomness. 0 means "derive
	// from the root seed" (root+2, the facade convention), which is what
	// lets a sweep template follow Instantiate's per-trial seed.
	Seed uint64 `json:"seed,omitempty"`
}

// BaselineConfig mirrors introspect.BaselineConfig in serializable form.
type BaselineConfig struct {
	// Period is the time between checks; zero means the paper's 8 s.
	Period Duration `json:"period"`
	// RandomizePeriod adds the §III-B2 random trigger deviation.
	RandomizePeriod bool `json:"randomize_period,omitempty"`
	// Selection is fixed | random; empty means random.
	Selection string `json:"selection,omitempty"`
	// Core is the checking core when Selection is fixed.
	Core int `json:"core,omitempty"`
	// Technique is direct | snapshot; empty means direct.
	Technique string `json:"technique,omitempty"`
	// MaxRounds bounds the run; 0 means run until the simulation ends.
	MaxRounds int `json:"max_rounds,omitempty"`
}

// Evader selects the attack side.
type Evader struct {
	// Kind is fast | thread | none (empty means none).
	Kind string `json:"kind"`
	// Sleep is the prober interval Tsleep; zero means the paper's 200µs.
	Sleep Duration `json:"sleep,omitempty"`
	// Threshold is the probing threshold; zero means the paper's 1.8ms.
	Threshold Duration `json:"threshold,omitempty"`
	// RootkitAddr plants the trace at an arbitrary static-kernel address
	// instead of the GETTID table entry.
	RootkitAddr *uint64 `json:"rootkit_addr,omitempty"`
}

// Workload adds background interference to the scenario.
type Workload struct {
	// FloodRate is the §V-B SGI flood rate per core (interrupts/second);
	// 0 disables.
	FloodRate float64 `json:"flood_rate,omitempty"`
}

// Run says how to drive the scenario: exactly one of For or ToCompletion.
type Run struct {
	// For advances virtual time by a fixed horizon.
	For Duration `json:"for,omitempty"`
	// ToCompletion drains every pending event; it needs a bounded defense
	// and no perpetual event sources (thread evader, flood).
	ToCompletion bool `json:"to_completion,omitempty"`
}

// Export lists artifact files the run writes. Path suffixes select formats
// the same way the satin-sim flags do (.csv, .json).
type Export struct {
	// Timeline writes the merged event timeline (.json for JSON, else text).
	Timeline string `json:"timeline,omitempty"`
	// Trace streams events live as they happen (.csv for CSV, else JSONL).
	Trace string `json:"trace,omitempty"`
	// Metrics writes the end-of-run metrics snapshot (.csv or text).
	Metrics string `json:"metrics,omitempty"`
	// ChromeTrace writes a Chrome/Perfetto trace_event span profile.
	ChromeTrace string `json:"chrome_trace,omitempty"`
	// Profile writes the per-core virtual-time attribution table.
	Profile string `json:"profile,omitempty"`
}

// Parse decodes a spec from strict JSON: unknown keys, trailing data, and
// missing or mismatched versions are errors. Parse does not validate
// semantics — compose with Validate or Canonicalize.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("spec: parse: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return Spec{}, fmt.Errorf("spec: trailing data after the spec object")
	}
	if s.Version == 0 {
		return Spec{}, fmt.Errorf(`spec: missing version (this build writes "version": %d)`, CurrentVersion)
	}
	if s.Version != CurrentVersion {
		return Spec{}, fmt.Errorf("spec: version %d unsupported (this build reads version %d)", s.Version, CurrentVersion)
	}
	return s, nil
}

// Marshal renders the spec as indented JSON with a trailing newline — the
// committed-file form. Marshal(Canonicalize(s)) then Parse is lossless.
func Marshal(s Spec) ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: marshal: %w", err)
	}
	return append(b, '\n'), nil
}

// Cores resolves the spec's hardware profile to its core count.
func (s Spec) Cores() (int, error) {
	profile := DefaultProfile
	if s.Hardware != nil && s.Hardware.Profile != "" {
		profile = s.Hardware.Profile
	}
	cores, ok := Profiles[profile]
	if !ok {
		return 0, fmt.Errorf("spec: unknown hardware profile %q (known: %s)", profile, DefaultProfile)
	}
	return cores, nil
}

// ObservabilityEnabled resolves the tri-state flag (nil means enabled).
func (s Spec) ObservabilityEnabled() bool {
	return s.Observability == nil || *s.Observability
}

// HashCacheEnabled resolves the tri-state flag (nil means enabled).
func (s Spec) HashCacheEnabled() bool {
	return s.HashCache == nil || *s.HashCache
}

// ProfilingEnabled resolves the tri-state flag: explicit setting wins,
// otherwise profiling turns on exactly when an export needs the profiler.
func (s Spec) ProfilingEnabled() bool {
	if s.Profiling != nil {
		return *s.Profiling
	}
	return s.Export != nil && (s.Export.ChromeTrace != "" || s.Export.Profile != "")
}

// boundedDefense reports whether the defense is guaranteed to stop on its
// own (MaxRounds set), which ToCompletion runs require.
func (s Spec) boundedDefense() bool {
	switch s.Defense.Kind {
	case DefenseSATIN:
		return s.Defense.SATIN != nil && s.Defense.SATIN.MaxRounds > 0
	case DefenseBaseline:
		return s.Defense.Baseline != nil && s.Defense.Baseline.MaxRounds > 0
	}
	return false
}

// Validate checks every semantic rule. Each invalid-field class yields its
// own error message (the rejection tests enumerate them), so tooling that
// generates or mutates specs can triage failures without re-parsing prose.
func Validate(s Spec) error {
	if s.Version != 0 && s.Version != CurrentVersion {
		return fmt.Errorf("spec: version %d unsupported (this build reads version %d)", s.Version, CurrentVersion)
	}
	cores, err := s.Cores()
	if err != nil {
		return err
	}
	if err := validateDefense(s.Defense, cores); err != nil {
		return err
	}
	if err := validateEvader(s.Evader); err != nil {
		return err
	}
	switch s.Guard {
	case "", GuardOff, GuardOn, GuardBypassed:
	default:
		return fmt.Errorf("spec: unknown guard mode %q (off | on | bypassed)", s.Guard)
	}
	switch s.Routing {
	case "", RoutingNonPreemptive, RoutingPreemptive:
	default:
		return fmt.Errorf("spec: unknown routing %q (nonpreemptive | preemptive)", s.Routing)
	}
	if s.Workload != nil {
		if math.IsNaN(s.Workload.FloodRate) || math.IsInf(s.Workload.FloodRate, 0) {
			return fmt.Errorf("spec: workload.flood_rate %v is not finite", s.Workload.FloodRate)
		}
		if s.Workload.FloodRate < 0 {
			return fmt.Errorf("spec: workload.flood_rate %v is negative", s.Workload.FloodRate)
		}
	}
	if s.Faults != "" {
		plan, err := faultinject.ParsePlan(s.Faults)
		if err != nil {
			return fmt.Errorf("spec: faults: %w", err)
		}
		if err := plan.Validate(cores); err != nil {
			return fmt.Errorf("spec: faults: %w", err)
		}
	}
	if err := validateRun(s); err != nil {
		return err
	}
	return validateExport(s)
}

func validateDefense(d Defense, cores int) error {
	switch d.Kind {
	case "", DefenseNone:
		if d.SATIN != nil || d.Baseline != nil {
			return fmt.Errorf("spec: defense sections set but defense.kind is %q", d.Kind)
		}
		return nil
	case DefenseSATIN:
		if d.Baseline != nil {
			return fmt.Errorf("spec: defense.kind %q conflicts with a baseline section", d.Kind)
		}
		return validateSATIN(d.SATIN, cores)
	case DefenseBaseline:
		if d.SATIN != nil {
			return fmt.Errorf("spec: defense.kind %q conflicts with a satin section", d.Kind)
		}
		return validateBaseline(d.Baseline, cores)
	default:
		return fmt.Errorf("spec: unknown defense kind %q (satin | baseline | none)", d.Kind)
	}
}

func validateSATIN(c *SATINConfig, cores int) error {
	if c == nil {
		return nil
	}
	if c.Tgoal < 0 {
		return fmt.Errorf("spec: defense.satin.tgoal %v is negative", time.Duration(c.Tgoal))
	}
	if err := validateTechnique("defense.satin.technique", c.Technique); err != nil {
		return err
	}
	if c.FixedCore != nil && (*c.FixedCore < -1 || *c.FixedCore >= cores) {
		return fmt.Errorf("spec: defense.satin.fixed_core %d outside [-1, %d)", *c.FixedCore, cores)
	}
	if c.MaxRounds < 0 {
		return fmt.Errorf("spec: defense.satin.max_rounds %d is negative", c.MaxRounds)
	}
	if c.AreaBound < 0 {
		return fmt.Errorf("spec: defense.satin.area_bound %d is negative", c.AreaBound)
	}
	return nil
}

func validateBaseline(c *BaselineConfig, cores int) error {
	if c == nil {
		return nil
	}
	if c.Period < 0 {
		return fmt.Errorf("spec: defense.baseline.period %v is negative", time.Duration(c.Period))
	}
	switch c.Selection {
	case "", SelectRandom:
	case SelectFixed:
		if c.Core < 0 || c.Core >= cores {
			return fmt.Errorf("spec: defense.baseline.core %d outside [0, %d)", c.Core, cores)
		}
	default:
		return fmt.Errorf("spec: unknown core selection %q (fixed | random)", c.Selection)
	}
	if err := validateTechnique("defense.baseline.technique", c.Technique); err != nil {
		return err
	}
	if c.MaxRounds < 0 {
		return fmt.Errorf("spec: defense.baseline.max_rounds %d is negative", c.MaxRounds)
	}
	return nil
}

func validateTechnique(field, v string) error {
	switch v {
	case "", TechniqueDirect, TechniqueSnapshot:
		return nil
	default:
		return fmt.Errorf("spec: unknown %s %q (direct | snapshot)", field, v)
	}
}

func validateEvader(e Evader) error {
	switch e.Kind {
	case "", EvaderNone:
		if e.Sleep != 0 || e.Threshold != 0 {
			return fmt.Errorf("spec: evader timing parameters set without an evader (kind %q)", e.Kind)
		}
		if e.RootkitAddr != nil {
			return fmt.Errorf("spec: evader.rootkit_addr set without an evader (kind %q)", e.Kind)
		}
		return nil
	case EvaderFast, EvaderThread:
		if e.Sleep < 0 {
			return fmt.Errorf("spec: evader.sleep %v is negative", time.Duration(e.Sleep))
		}
		if e.Threshold < 0 {
			return fmt.Errorf("spec: evader.threshold %v is negative", time.Duration(e.Threshold))
		}
		return nil
	default:
		return fmt.Errorf("spec: unknown evader kind %q (fast | thread | none)", e.Kind)
	}
}

func validateRun(s Spec) error {
	if s.Run.For < 0 {
		return fmt.Errorf("spec: run.for %v is negative", time.Duration(s.Run.For))
	}
	if s.Run.ToCompletion && s.Run.For > 0 {
		return fmt.Errorf("spec: run.for and run.to_completion are mutually exclusive")
	}
	if !s.Run.ToCompletion && s.Run.For == 0 {
		return fmt.Errorf(`spec: run needs either "for" or "to_completion": true`)
	}
	if s.Run.ToCompletion {
		if s.Evader.Kind == EvaderThread {
			return fmt.Errorf("spec: run.to_completion cannot drain a thread evader's perpetual events; use run.for")
		}
		if s.Workload != nil && s.Workload.FloodRate > 0 {
			return fmt.Errorf("spec: run.to_completion cannot drain an interrupt flood's perpetual events; use run.for")
		}
		if !s.boundedDefense() {
			return fmt.Errorf("spec: run.to_completion needs a bounded defense (set max_rounds)")
		}
	}
	return nil
}

func validateExport(s Spec) error {
	if s.Export == nil {
		return nil
	}
	paths := map[string]string{}
	for _, e := range []struct{ field, path string }{
		{"export.timeline", s.Export.Timeline},
		{"export.trace", s.Export.Trace},
		{"export.metrics", s.Export.Metrics},
		{"export.chrome_trace", s.Export.ChromeTrace},
		{"export.profile", s.Export.Profile},
	} {
		if e.path == "" {
			continue
		}
		if prev, dup := paths[e.path]; dup {
			return fmt.Errorf("spec: %s and %s both write to %q", prev, e.field, e.path)
		}
		paths[e.path] = e.field
	}
	if !s.ObservabilityEnabled() {
		for _, e := range []struct{ field, path string }{
			{"export.timeline", s.Export.Timeline},
			{"export.trace", s.Export.Trace},
			{"export.metrics", s.Export.Metrics},
		} {
			if e.path != "" {
				return fmt.Errorf("spec: %s needs observability, which the spec disables", e.field)
			}
		}
	}
	if s.Profiling != nil && !*s.Profiling {
		for _, e := range []struct{ field, path string }{
			{"export.chrome_trace", s.Export.ChromeTrace},
			{"export.profile", s.Export.Profile},
		} {
			if e.path != "" {
				return fmt.Errorf("spec: %s needs profiling, which the spec disables", e.field)
			}
		}
	}
	return nil
}

// Canonicalize validates the spec and returns its normal form: defaults
// materialized, the fault plan rewritten to Plan.String()'s fixed point,
// empty optional sections dropped. Canonical specs are the committed-corpus
// form; on them Marshal/Parse round trips losslessly and Canonicalize is
// idempotent. One deliberate non-default: a zero defense seed is NOT
// materialized, because zero means "derive from the root seed", the hook
// Instantiate-based sweeps rely on.
func Canonicalize(s Spec) (Spec, error) {
	c := s.Clone()
	if c.Version == 0 {
		c.Version = CurrentVersion
	}
	if c.Hardware == nil {
		c.Hardware = &Hardware{}
	}
	if c.Hardware.Profile == "" {
		c.Hardware.Profile = DefaultProfile
	}
	if c.Defense.Kind == "" {
		c.Defense.Kind = DefenseNone
	}
	if c.Evader.Kind == "" {
		c.Evader.Kind = EvaderNone
	}
	if c.Guard == "" {
		c.Guard = GuardOff
	}
	if c.Routing == "" {
		c.Routing = RoutingNonPreemptive
	}
	switch c.Defense.Kind {
	case DefenseSATIN:
		if c.Defense.SATIN == nil {
			c.Defense.SATIN = &SATINConfig{}
		}
		sat := c.Defense.SATIN
		if sat.Tgoal == 0 {
			sat.Tgoal = Duration(core.DefaultConfig().Tgoal)
		}
		if sat.Technique == "" {
			sat.Technique = TechniqueDirect
		}
		if sat.RandomDeviation == nil {
			v := true
			sat.RandomDeviation = &v
		}
		if sat.FixedCore == nil {
			v := -1
			sat.FixedCore = &v
		}
	case DefenseBaseline:
		if c.Defense.Baseline == nil {
			c.Defense.Baseline = &BaselineConfig{}
		}
		b := c.Defense.Baseline
		if b.Period == 0 {
			b.Period = Duration(defaultBaselinePeriod)
		}
		if b.Selection == "" {
			b.Selection = SelectRandom
		}
		if b.Technique == "" {
			b.Technique = TechniqueDirect
		}
	}
	if c.Evader.Kind == EvaderFast || c.Evader.Kind == EvaderThread {
		if c.Evader.Sleep == 0 {
			c.Evader.Sleep = Duration(attack.DefaultProberSleep)
		}
		if c.Evader.Threshold == 0 {
			c.Evader.Threshold = Duration(core.DefaultTnsThreshold)
		}
	}
	if c.Workload != nil && *c.Workload == (Workload{}) {
		c.Workload = nil
	}
	if c.Export != nil && *c.Export == (Export{}) {
		c.Export = nil
	}
	if err := Validate(c); err != nil {
		return Spec{}, err
	}
	if c.Faults != "" {
		plan, err := faultinject.ParsePlan(c.Faults)
		if err != nil {
			return Spec{}, fmt.Errorf("spec: faults: %w", err)
		}
		c.Faults = plan.String()
	}
	return c, nil
}

// Clone deep-copies the spec; mutating the copy never aliases the original.
func (s Spec) Clone() Spec {
	c := s
	c.Hardware = clonePtr(s.Hardware)
	c.Defense.SATIN = clonePtr(s.Defense.SATIN)
	if c.Defense.SATIN != nil {
		c.Defense.SATIN.RandomDeviation = clonePtr(c.Defense.SATIN.RandomDeviation)
		c.Defense.SATIN.FixedCore = clonePtr(c.Defense.SATIN.FixedCore)
	}
	c.Defense.Baseline = clonePtr(s.Defense.Baseline)
	c.Evader.RootkitAddr = clonePtr(s.Evader.RootkitAddr)
	c.Workload = clonePtr(s.Workload)
	c.Observability = clonePtr(s.Observability)
	c.HashCache = clonePtr(s.HashCache)
	c.Profiling = clonePtr(s.Profiling)
	c.Export = clonePtr(s.Export)
	return c
}

func clonePtr[T any](p *T) *T {
	if p == nil {
		return nil
	}
	v := *p
	return &v
}

// Instantiate stamps one sweep trial out of a template: a deep clone with
// the root seed replaced. A zero defense seed in the template keeps deriving
// from the new root (root+2), so every trial gets an independent schedule;
// an explicit defense seed is carried verbatim, pinning the defense schedule
// while the rest of the world varies — both behaviors the determinism sweeps
// depend on.
func Instantiate(tmpl Spec, seed uint64) Spec {
	c := tmpl.Clone()
	c.Seed = seed
	return c
}
