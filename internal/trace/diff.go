package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// diff.go aligns two exported event streams and reports where and by how
// much they diverge. This is the regression gate for perf work: a change
// that is supposed to only make the simulator faster must leave the virtual
// timeline untouched, so diffing its trace export against a golden run must
// come back identical. A change to the timing model shows up here as
// per-span latency deltas that either fit an explicit budget or fail.

// GroupKey identifies an alignment group: events are matched occurrence by
// occurrence within the same (kind, core, area) stream.
type GroupKey struct {
	Kind Kind
	Core int
	Area int
}

func (k GroupKey) String() string {
	return fmt.Sprintf("%s/core=%d/area=%d", k.Kind, k.Core, k.Area)
}

// GroupDelta summarizes the timestamp deltas of one aligned group.
type GroupDelta struct {
	Key GroupKey
	// CountA and CountB are the occurrence counts in each stream.
	CountA, CountB int
	// Matched is min(CountA, CountB): the occurrences compared pairwise.
	Matched int
	// MaxAbs is the largest |At(b) - At(a)| over matched occurrences.
	MaxAbs time.Duration
	// SumAbs accumulates |At(b) - At(a)| over matched occurrences.
	SumAbs time.Duration
	// DetailMismatches counts matched occurrences whose Detail differs.
	DetailMismatches int
}

// MeanAbs is the mean absolute timestamp delta over matched occurrences.
func (g GroupDelta) MeanAbs() time.Duration {
	if g.Matched == 0 {
		return 0
	}
	return g.SumAbs / time.Duration(g.Matched)
}

// Divergence pinpoints the first structural difference between two streams.
type Divergence struct {
	// Index is the position (in stream order) of the first event whose
	// (kind, core, area, detail) differs between the streams, or the length
	// of the shorter stream when one is a prefix of the other.
	Index int
	// A and B are the events at Index (zero Event if past the end).
	A, B Event
	// Reason is a one-line human explanation.
	Reason string
}

// DiffReport is the outcome of aligning two event streams.
type DiffReport struct {
	// EventsA and EventsB are the stream lengths.
	EventsA, EventsB int
	// Groups holds one entry per (kind, core, area) seen in either stream,
	// sorted by descending MaxAbs then by key for determinism.
	Groups []GroupDelta
	// Structural is non-nil when the streams differ in more than timing:
	// different event sequences, counts, or details.
	Structural *Divergence
	// MaxAbs is the largest matched timestamp delta across all groups.
	MaxAbs time.Duration
}

// Identical reports byte-level agreement: same sequences, same instants.
func (r DiffReport) Identical() bool {
	return r.Structural == nil && r.MaxAbs == 0
}

// WithinBudget reports whether the streams align structurally and every
// matched timestamp delta fits the budget. A zero budget demands identical
// virtual timing.
func (r DiffReport) WithinBudget(budget time.Duration) bool {
	return r.Structural == nil && r.MaxAbs <= budget
}

func eventShape(e Event) string {
	return fmt.Sprintf("%s core=%d area=%d %q", e.Kind, e.Core, e.Area, e.Detail)
}

// Diff aligns streams a and b by (kind, core, area), pairing the i-th
// occurrence in each group, and reports per-group latency deltas plus the
// first structural divergence, if any. Inputs are compared in the order
// given (an export is already in publish order; callers diffing unordered
// collections should sort first).
func Diff(a, b []Event) DiffReport {
	rep := DiffReport{EventsA: len(a), EventsB: len(b)}

	// First structural divergence: the first position where the streams
	// disagree on anything but the timestamp.
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Kind != b[i].Kind || a[i].Core != b[i].Core || a[i].Area != b[i].Area {
			rep.Structural = &Divergence{
				Index: i, A: a[i], B: b[i],
				Reason: fmt.Sprintf("event %d differs: %s vs %s", i, eventShape(a[i]), eventShape(b[i])),
			}
			break
		}
		if a[i].Detail != b[i].Detail {
			rep.Structural = &Divergence{
				Index: i, A: a[i], B: b[i],
				Reason: fmt.Sprintf("event %d detail differs: %q vs %q (%s)", i, a[i].Detail, b[i].Detail, GroupKey{a[i].Kind, a[i].Core, a[i].Area}),
			}
			break
		}
	}
	if rep.Structural == nil && len(a) != len(b) {
		d := &Divergence{Index: n}
		if len(a) > len(b) {
			d.A = a[n]
			d.Reason = fmt.Sprintf("stream A has %d extra event(s), first: %s", len(a)-len(b), eventShape(a[n]))
		} else {
			d.B = b[n]
			d.Reason = fmt.Sprintf("stream B has %d extra event(s), first: %s", len(b)-len(a), eventShape(b[n]))
		}
		rep.Structural = d
	}

	// Per-group occurrence alignment. Keys are collected in first-seen
	// order, then the report is sorted for a deterministic rendering.
	type grouped struct {
		ats []time.Duration
		det []string
	}
	idx := map[GroupKey]int{}
	var keys []GroupKey
	ga := map[GroupKey]*grouped{}
	gb := map[GroupKey]*grouped{}
	collect := func(events []Event, into map[GroupKey]*grouped) {
		for _, e := range events {
			k := GroupKey{e.Kind, e.Core, e.Area}
			if _, ok := idx[k]; !ok {
				idx[k] = len(keys)
				keys = append(keys, k)
			}
			g := into[k]
			if g == nil {
				g = &grouped{}
				into[k] = g
			}
			g.ats = append(g.ats, e.At)
			g.det = append(g.det, e.Detail)
		}
	}
	collect(a, ga)
	collect(b, gb)

	for _, k := range keys {
		da, db := ga[k], gb[k]
		if da == nil {
			da = &grouped{}
		}
		if db == nil {
			db = &grouped{}
		}
		gd := GroupDelta{Key: k, CountA: len(da.ats), CountB: len(db.ats)}
		gd.Matched = gd.CountA
		if gd.CountB < gd.Matched {
			gd.Matched = gd.CountB
		}
		for i := 0; i < gd.Matched; i++ {
			d := db.ats[i] - da.ats[i]
			if d < 0 {
				d = -d
			}
			gd.SumAbs += d
			if d > gd.MaxAbs {
				gd.MaxAbs = d
			}
			if da.det[i] != db.det[i] {
				gd.DetailMismatches++
			}
		}
		if gd.MaxAbs > rep.MaxAbs {
			rep.MaxAbs = gd.MaxAbs
		}
		rep.Groups = append(rep.Groups, gd)
	}
	sort.Slice(rep.Groups, func(i, j int) bool {
		gi, gj := rep.Groups[i], rep.Groups[j]
		if gi.MaxAbs != gj.MaxAbs {
			return gi.MaxAbs > gj.MaxAbs
		}
		if gi.Key.Kind != gj.Key.Kind {
			return gi.Key.Kind < gj.Key.Kind
		}
		if gi.Key.Core != gj.Key.Core {
			return gi.Key.Core < gj.Key.Core
		}
		return gi.Key.Area < gj.Key.Area
	})
	return rep
}

// Render writes a human-readable report. budget is the tolerance the
// verdict line is judged against.
func (r DiffReport) Render(budget time.Duration) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace diff: %d events vs %d events, %d alignment group(s)\n",
		r.EventsA, r.EventsB, len(r.Groups))
	if r.Identical() {
		sb.WriteString("streams are identical: zero divergence\n")
	}
	if r.Structural != nil {
		fmt.Fprintf(&sb, "first divergence: %s\n", r.Structural.Reason)
	}
	shown := 0
	for _, g := range r.Groups {
		if g.MaxAbs == 0 && g.CountA == g.CountB && g.DetailMismatches == 0 {
			continue
		}
		if shown == 0 {
			sb.WriteString("diverging groups (by max |delta|):\n")
		}
		if shown >= 10 {
			sb.WriteString("  ...\n")
			break
		}
		fmt.Fprintf(&sb, "  %-40s n=%d/%d max=%v mean=%v", g.Key, g.CountA, g.CountB, g.MaxAbs, g.MeanAbs())
		if g.DetailMismatches > 0 {
			fmt.Fprintf(&sb, " detail-mismatches=%d", g.DetailMismatches)
		}
		sb.WriteByte('\n')
		shown++
	}
	if r.WithinBudget(budget) {
		fmt.Fprintf(&sb, "PASS (max delta %v within budget %v)\n", r.MaxAbs, budget)
	} else {
		fmt.Fprintf(&sb, "FAIL (max delta %v, budget %v)\n", r.MaxAbs, budget)
	}
	return sb.String()
}
