package trace

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestTimelineOrdersEvents(t *testing.T) {
	var tl Timeline
	tl.Add(
		Event{At: 30 * time.Millisecond, Kind: KindAlarm, Core: 1, Area: 14},
		Event{At: 10 * time.Millisecond, Kind: KindWorldEnter, Core: 1, Area: -1},
		Event{At: 20 * time.Millisecond, Kind: KindSuspect, Core: 1, Area: -1},
	)
	ev := tl.Events()
	if len(ev) != 3 || tl.Len() != 3 {
		t.Fatalf("events = %d", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatalf("events out of order: %v", ev)
		}
	}
	if ev[0].Kind != KindWorldEnter || ev[2].Kind != KindAlarm {
		t.Errorf("order wrong: %v", ev)
	}
}

func TestTimelineStableForEqualInstants(t *testing.T) {
	var tl Timeline
	tl.Add(
		Event{At: time.Millisecond, Kind: KindWorldEnter, Detail: "first"},
		Event{At: time.Millisecond, Kind: KindRound, Detail: "second"},
	)
	ev := tl.Events()
	if ev[0].Detail != "first" || ev[1].Detail != "second" {
		t.Errorf("equal-instant order not stable: %v", ev)
	}
}

func TestTimelineAddAfterSort(t *testing.T) {
	var tl Timeline
	tl.Add(Event{At: 2 * time.Millisecond, Kind: KindRound})
	_ = tl.Events()
	tl.Add(Event{At: time.Millisecond, Kind: KindWorldEnter})
	ev := tl.Events()
	if ev[0].Kind != KindWorldEnter {
		t.Error("late-added earlier event not re-sorted")
	}
}

func TestFilter(t *testing.T) {
	var tl Timeline
	tl.Add(
		Event{At: 1, Kind: KindWorldEnter},
		Event{At: 2, Kind: KindAlarm},
		Event{At: 3, Kind: KindSuspect},
		Event{At: 4, Kind: KindAlarm},
	)
	alarms := tl.Filter(KindAlarm)
	if len(alarms) != 2 {
		t.Errorf("filtered %d alarms, want 2", len(alarms))
	}
	both := tl.Filter(KindAlarm, KindSuspect)
	if len(both) != 3 {
		t.Errorf("filtered %d, want 3", len(both))
	}
	if len(tl.Filter()) != 0 {
		t.Error("empty filter should match nothing")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 1500 * time.Microsecond, Kind: KindAlarm, Core: 4, Area: 14, Detail: "dirty"}
	s := e.String()
	for _, needle := range []string{"alarm", "core=4", "area=14", "dirty", "1.5ms"} {
		if !strings.Contains(s, needle) {
			t.Errorf("String() = %q missing %q", s, needle)
		}
	}
	// Negative core/area are suppressed.
	s = Event{At: time.Millisecond, Kind: KindRound, Core: -1, Area: -1}.String()
	if strings.Contains(s, "core=") || strings.Contains(s, "area=") {
		t.Errorf("String() = %q should omit core/area", s)
	}
}

func TestWriteText(t *testing.T) {
	var tl Timeline
	tl.Add(
		Event{At: time.Millisecond, Kind: KindWorldEnter, Core: 0, Area: -1},
		Event{At: 2 * time.Millisecond, Kind: KindRound, Core: 0, Area: 3},
	)
	var buf bytes.Buffer
	if err := tl.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var tl Timeline
	tl.Add(
		Event{At: time.Millisecond, Kind: KindSuspect, Core: 2, Area: -1, Detail: "staleness"},
		Event{At: 2 * time.Millisecond, Kind: KindHidden, Core: -1, Area: -1},
	)
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []Event
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[0].Kind != KindSuspect || decoded[0].Detail != "staleness" {
		t.Errorf("round trip = %+v", decoded)
	}
}

func TestTimelineSortProperty(t *testing.T) {
	f := func(offsets []uint32) bool {
		var tl Timeline
		for _, o := range offsets {
			tl.Add(Event{At: time.Duration(o), Kind: KindRound})
		}
		ev := tl.Events()
		if len(ev) != len(offsets) {
			return false
		}
		return sort.SliceIsSorted(ev, func(i, j int) bool { return ev[i].At < ev[j].At })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
