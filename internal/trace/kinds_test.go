package trace

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestKindsComplete: Kinds() must enumerate every declared kind exactly
// once — it is the source of the String() pad width and of the profiler's
// instant filter, so a kind missing here silently misaligns both.
func TestKindsComplete(t *testing.T) {
	want := []Kind{
		KindWorldEnter, KindRound, KindAlarm, KindSuspect, KindHidden,
		KindCoreBack, KindReinstalled, KindGuardDeny, KindFault, KindCell,
	}
	got := Kinds()
	if len(got) != len(want) {
		t.Fatalf("Kinds() has %d entries, want %d", len(got), len(want))
	}
	seen := map[Kind]bool{}
	for i, k := range got {
		if k != want[i] {
			t.Errorf("Kinds()[%d] = %q, want %q (declaration order)", i, k, want[i])
		}
		if seen[k] {
			t.Errorf("Kinds() repeats %q", k)
		}
		seen[k] = true
	}
}

// TestKindPadDerived: the pad is the longest kind name plus one column of
// breathing room — today that is len("reinstalled")+1 == 12, which keeps
// the checked-in goldens stable. A longer kind added later widens every
// line together instead of breaking alignment for just that kind.
func TestKindPadDerived(t *testing.T) {
	longest := 0
	for _, k := range Kinds() {
		if len(k) > longest {
			longest = len(k)
		}
	}
	if kindPad != longest+1 {
		t.Fatalf("kindPad = %d, want longest kind (%d) + 1", kindPad, longest)
	}
	if kindPad != 12 {
		t.Fatalf("kindPad = %d, want 12 — widening it drifts every checked-in golden; regenerate them deliberately", kindPad)
	}
}

// TestEventStringAlignment: every kind renders at the same column width, so
// timeline text stays a grid whatever mix of kinds a run emits.
func TestEventStringAlignment(t *testing.T) {
	var widths []int
	for _, k := range Kinds() {
		e := Event{At: 3 * time.Second, Kind: k, Core: 1, Area: 2}
		s := e.String()
		// The kind column ends where the padded field does; measure up to
		// the first space run following the kind name.
		idx := strings.Index(s, string(k))
		if idx < 0 {
			t.Fatalf("String() for %q does not contain the kind: %q", k, s)
		}
		rest := s[idx:]
		pad := len(rest) - len(strings.TrimLeft(rest[len(k):], " ")) // kind + trailing spaces
		widths = append(widths, idx+pad)
	}
	for i := 1; i < len(widths); i++ {
		if widths[i] != widths[0] {
			t.Fatalf("kind column width varies: %v (kinds %v)", widths, Kinds())
		}
	}
}

// TestCheckOrdered: non-decreasing passes; the first regression is named
// with both positions.
func TestCheckOrdered(t *testing.T) {
	ok := []Event{
		{At: 1 * time.Second, Kind: KindRound},
		{At: 1 * time.Second, Kind: KindAlarm}, // ties are fine
		{At: 2 * time.Second, Kind: KindRound},
	}
	if err := CheckOrdered(ok); err != nil {
		t.Fatalf("ordered stream rejected: %v", err)
	}
	if err := CheckOrdered(nil); err != nil {
		t.Fatalf("empty stream rejected: %v", err)
	}
	bad := []Event{
		{At: 1 * time.Second, Kind: KindRound},
		{At: 3 * time.Second, Kind: KindRound},
		{At: 2 * time.Second, Kind: KindAlarm},
	}
	err := CheckOrdered(bad)
	if err == nil {
		t.Fatal("out-of-order stream accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "2") || !strings.Contains(msg, fmt.Sprint(2*time.Second)) {
		t.Fatalf("error does not name the offending position/time: %q", msg)
	}
}
