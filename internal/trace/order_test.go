package trace

import (
	"testing"
	"time"
)

// TestTieOrderMatchesPostHocMerge: at one instant, world entries precede
// rounds, rounds precede alarms, alarms precede evader reactions —
// regardless of arrival order. This is the invariant that lets a timeline
// filled by live bus subscription render byte-identically to the original
// post-hoc component-log merge.
func TestTieOrderMatchesPostHocMerge(t *testing.T) {
	at := 5 * time.Second
	var tl Timeline
	// Arrive in deliberately scrambled order.
	tl.Observe(Event{At: at, Kind: KindSuspect, Core: 1, Area: -1})
	tl.Observe(Event{At: at, Kind: KindAlarm, Core: -1, Area: 17})
	tl.Observe(Event{At: at, Kind: KindRound, Core: 1, Area: 17, Detail: "dirty"})
	tl.Observe(Event{At: at, Kind: KindWorldEnter, Core: 1, Area: -1})
	got := tl.Events()
	want := []Kind{KindWorldEnter, KindRound, KindAlarm, KindSuspect}
	for i, k := range want {
		if got[i].Kind != k {
			t.Fatalf("position %d: kind %q, want %q (full order: %v)", i, got[i].Kind, k, kinds(got))
		}
	}
}

// TestTieOrderStableWithinRank: events with equal time and rank keep
// arrival order (the component logs are chronological, so stability
// preserves their relative order).
func TestTieOrderStableWithinRank(t *testing.T) {
	at := time.Second
	var tl Timeline
	tl.Observe(Event{At: at, Kind: KindWorldEnter, Core: 0, Area: -1})
	tl.Observe(Event{At: at, Kind: KindWorldEnter, Core: 5, Area: -1})
	tl.Observe(Event{At: at, Kind: KindSuspect, Core: 2, Area: -1})
	tl.Observe(Event{At: at, Kind: KindHidden, Core: -1, Area: -1})
	got := tl.Events()
	if got[0].Core != 0 || got[1].Core != 5 {
		t.Errorf("same-rank world entries reordered: %v", kinds(got))
	}
	if got[2].Kind != KindSuspect || got[3].Kind != KindHidden {
		t.Errorf("same-rank evader events reordered: %v", kinds(got))
	}
}

// TestTimeOrderBeatsRank: rank only breaks ties; time dominates.
func TestTimeOrderBeatsRank(t *testing.T) {
	var tl Timeline
	tl.Observe(Event{At: 2 * time.Second, Kind: KindWorldEnter, Core: 0, Area: -1})
	tl.Observe(Event{At: time.Second, Kind: KindSuspect, Core: 0, Area: -1})
	got := tl.Events()
	if got[0].Kind != KindSuspect {
		t.Fatalf("earlier suspect sorted after later world-enter: %v", kinds(got))
	}
}

func kinds(events []Event) []Kind {
	out := make([]Kind, len(events))
	for i, e := range events {
		out[i] = e.Kind
	}
	return out
}
