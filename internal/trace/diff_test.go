package trace

import (
	"strings"
	"testing"
	"time"
)

func ev(at time.Duration, kind Kind, core, area int, detail string) Event {
	return Event{At: at, Kind: kind, Core: core, Area: area, Detail: detail}
}

// TestDiffIdentical: a stream diffed against itself is zero divergence.
func TestDiffIdentical(t *testing.T) {
	events := []Event{
		ev(1*time.Second, KindWorldEnter, 0, -1, "secure-timer"),
		ev(2*time.Second, KindRound, 0, 14, "clean"),
		ev(3*time.Second, KindAlarm, -1, 14, ""),
	}
	rep := Diff(events, events)
	if !rep.Identical() {
		t.Fatalf("self-diff not identical: %+v", rep)
	}
	if !rep.WithinBudget(0) {
		t.Fatal("self-diff out of zero budget")
	}
	if !strings.Contains(rep.Render(0), "zero divergence") {
		t.Fatalf("render missing zero-divergence line:\n%s", rep.Render(0))
	}
}

// TestDiffTimingDeltas: shifted timestamps with identical structure are a
// timing-only divergence — within a generous budget, beyond a tight one.
func TestDiffTimingDeltas(t *testing.T) {
	a := []Event{
		ev(1*time.Second, KindRound, 0, 3, ""),
		ev(2*time.Second, KindRound, 0, 3, ""),
		ev(5*time.Second, KindRound, 1, 4, ""),
	}
	b := []Event{
		ev(1*time.Second+2*time.Millisecond, KindRound, 0, 3, ""),
		ev(2*time.Second+5*time.Millisecond, KindRound, 0, 3, ""),
		ev(5*time.Second, KindRound, 1, 4, ""),
	}
	rep := Diff(a, b)
	if rep.Structural != nil {
		t.Fatalf("pure timing shift reported as structural: %s", rep.Structural.Reason)
	}
	if rep.MaxAbs != 5*time.Millisecond {
		t.Fatalf("MaxAbs = %v, want 5ms", rep.MaxAbs)
	}
	g := rep.Groups[0]
	if g.Key != (GroupKey{KindRound, 0, 3}) || g.Matched != 2 {
		t.Fatalf("top group = %+v, want round/core=0/area=3 with 2 matches", g)
	}
	if g.MeanAbs() != 3500*time.Microsecond {
		t.Fatalf("MeanAbs = %v, want 3.5ms", g.MeanAbs())
	}
	if rep.WithinBudget(time.Millisecond) {
		t.Fatal("5ms delta passed a 1ms budget")
	}
	if !rep.WithinBudget(5 * time.Millisecond) {
		t.Fatal("5ms delta failed a 5ms budget")
	}
}

// TestDiffStructural: a different event shape at position i is pinned as the
// first divergence and fails any budget.
func TestDiffStructural(t *testing.T) {
	a := []Event{
		ev(1*time.Second, KindRound, 0, 3, ""),
		ev(2*time.Second, KindAlarm, -1, 3, ""),
	}
	b := []Event{
		ev(1*time.Second, KindRound, 0, 3, ""),
		ev(2*time.Second, KindAlarm, -1, 9, ""),
	}
	rep := Diff(a, b)
	if rep.Structural == nil || rep.Structural.Index != 1 {
		t.Fatalf("structural divergence not found at index 1: %+v", rep.Structural)
	}
	if rep.WithinBudget(time.Hour) {
		t.Fatal("structural divergence passed a huge budget")
	}
}

// TestDiffDetailMismatch: same (kind, core, area) but different detail is
// structural — the payloads differ, not just the timing.
func TestDiffDetailMismatch(t *testing.T) {
	a := []Event{ev(1*time.Second, KindRound, 0, 3, "clean")}
	b := []Event{ev(1*time.Second, KindRound, 0, 3, "dirty")}
	rep := Diff(a, b)
	if rep.Structural == nil {
		t.Fatal("detail mismatch not reported as structural")
	}
	if !strings.Contains(rep.Structural.Reason, "detail differs") {
		t.Fatalf("reason = %q", rep.Structural.Reason)
	}
}

// TestDiffExtraEvents: a truncated stream is structural, pointing at the
// first unmatched event.
func TestDiffExtraEvents(t *testing.T) {
	a := []Event{
		ev(1*time.Second, KindRound, 0, 3, ""),
		ev(2*time.Second, KindRound, 0, 4, ""),
	}
	rep := Diff(a, a[:1])
	if rep.Structural == nil || rep.Structural.Index != 1 {
		t.Fatalf("extra-event divergence = %+v, want index 1", rep.Structural)
	}
	if !strings.Contains(rep.Structural.Reason, "stream A has 1 extra event(s)") {
		t.Fatalf("reason = %q", rep.Structural.Reason)
	}
	// The group view still counts both sides.
	for _, g := range rep.Groups {
		if g.Key == (GroupKey{KindRound, 0, 4}) && (g.CountA != 1 || g.CountB != 0) {
			t.Fatalf("group counts = %d/%d, want 1/0", g.CountA, g.CountB)
		}
	}
}

// TestDiffRenderDeterministic: two renders of the same diff are identical
// (group ordering is fully tie-broken).
func TestDiffRenderDeterministic(t *testing.T) {
	var a, b []Event
	for i := 0; i < 20; i++ {
		a = append(a, ev(time.Duration(i)*time.Second, KindRound, i%3, i%5, ""))
		b = append(b, ev(time.Duration(i)*time.Second+time.Duration(i)*time.Millisecond, KindRound, i%3, i%5, ""))
	}
	r1 := Diff(a, b).Render(0)
	r2 := Diff(a, b).Render(0)
	if r1 != r2 {
		t.Fatal("diff render not deterministic")
	}
}
