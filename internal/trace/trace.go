// Package trace assembles human- and machine-readable timelines of a
// simulation run: world switches, introspection rounds, alarms, and evader
// reactions merged into one time-ordered event stream. The components
// already keep their own logs (trustzone.Monitor.Switches,
// core.SATIN.Rounds/Alarms, attack evader Events); this package merges and
// renders them.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Kind classifies a timeline event.
type Kind string

// Event kinds.
const (
	KindWorldEnter  Kind = "world-enter"
	KindRound       Kind = "round"
	KindAlarm       Kind = "alarm"
	KindSuspect     Kind = "suspect"
	KindHidden      Kind = "hidden"
	KindCoreBack    Kind = "core-back"
	KindReinstalled Kind = "reinstalled"
	KindGuardDeny   Kind = "guard-deny"
)

// Event is one timeline entry.
type Event struct {
	// At is the virtual instant, as a duration since boot.
	At time.Duration `json:"at_ns"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Core is the core involved, or -1.
	Core int `json:"core"`
	// Area is the introspection area involved, or -1.
	Area int `json:"area"`
	// Detail is a free-form annotation.
	Detail string `json:"detail,omitempty"`
}

// String renders one line.
func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%12v] %-12s", e.At.Truncate(time.Microsecond), e.Kind)
	if e.Core >= 0 {
		fmt.Fprintf(&sb, " core=%d", e.Core)
	}
	if e.Area >= 0 {
		fmt.Fprintf(&sb, " area=%d", e.Area)
	}
	if e.Detail != "" {
		fmt.Fprintf(&sb, " %s", e.Detail)
	}
	return sb.String()
}

// Timeline is a collection of events, sorted on demand.
type Timeline struct {
	events []Event
	sorted bool
}

// Add appends events.
func (t *Timeline) Add(events ...Event) {
	t.events = append(t.events, events...)
	t.sorted = false
}

// Events returns the events in time order (stable for equal instants).
func (t *Timeline) Events() []Event {
	if !t.sorted {
		sort.SliceStable(t.events, func(i, j int) bool {
			return t.events[i].At < t.events[j].At
		})
		t.sorted = true
	}
	return t.events
}

// Filter returns the ordered events matching any of the kinds.
func (t *Timeline) Filter(kinds ...Kind) []Event {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range t.Events() {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// Len reports the event count.
func (t *Timeline) Len() int { return len(t.events) }

// WriteText renders one line per event.
func (t *Timeline) WriteText(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return fmt.Errorf("trace: writing text: %w", err)
		}
	}
	return nil
}

// WriteJSON renders the ordered events as a JSON array.
func (t *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t.Events()); err != nil {
		return fmt.Errorf("trace: writing JSON: %w", err)
	}
	return nil
}
