// Package trace assembles human- and machine-readable timelines of a
// simulation run: world switches, introspection rounds, alarms, and evader
// reactions merged into one time-ordered event stream. The components
// already keep their own logs (trustzone.Monitor.Switches,
// core.SATIN.Rounds/Alarms, attack evader Events); this package merges and
// renders them.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Kind classifies a timeline event.
type Kind string

// Event kinds.
const (
	KindWorldEnter  Kind = "world-enter"
	KindRound       Kind = "round"
	KindAlarm       Kind = "alarm"
	KindSuspect     Kind = "suspect"
	KindHidden      Kind = "hidden"
	KindCoreBack    Kind = "core-back"
	KindReinstalled Kind = "reinstalled"
	KindGuardDeny   Kind = "guard-deny"
	// KindFault marks an injected perturbation (DVFS step, hotplug
	// transition, delayed/dropped interrupt, switch-latency spike) or the
	// system's reaction to one (a SATIN round re-routed off an offline
	// core). Detail carries the specifics.
	KindFault Kind = "fault"
	// KindCell marks one completed campaign cell. Unlike every other kind
	// it is wall-clock territory: campaigns run across universes, so At is
	// always zero, Area carries the cell index, and Detail the cell label
	// and outcome.
	KindCell Kind = "cell"
)

// Kinds lists every event kind, in declaration order. New kinds must be
// added here: the timeline column width is derived from this set, and the
// exhaustiveness is what keeps rendered timelines column-stable.
func Kinds() []Kind {
	return []Kind{
		KindWorldEnter, KindRound, KindAlarm, KindSuspect, KindHidden,
		KindCoreBack, KindReinstalled, KindGuardDeny, KindFault, KindCell,
	}
}

// kindPad is the column width the Kind field is left-padded to: the longest
// kind plus one space of separation. Derived, not hard-coded, so adding a
// longer kind widens every line instead of silently breaking alignment.
// (Widening it changes the rendered timelines — regenerate the goldens.)
var kindPad = func() int {
	w := 0
	for _, k := range Kinds() {
		if len(k) > w {
			w = len(k)
		}
	}
	return w + 1
}()

// Event is one timeline entry.
type Event struct {
	// At is the virtual instant, as a duration since boot.
	At time.Duration `json:"at_ns"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Core is the core involved, or -1.
	Core int `json:"core"`
	// Area is the introspection area involved, or -1.
	Area int `json:"area"`
	// Detail is a free-form annotation.
	Detail string `json:"detail,omitempty"`
}

// String renders one line.
func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%12v] %-*s", e.At.Truncate(time.Microsecond), kindPad, string(e.Kind))
	if e.Core >= 0 {
		fmt.Fprintf(&sb, " core=%d", e.Core)
	}
	if e.Area >= 0 {
		fmt.Fprintf(&sb, " area=%d", e.Area)
	}
	if e.Detail != "" {
		fmt.Fprintf(&sb, " %s", e.Detail)
	}
	return sb.String()
}

// kindRank orders events sharing an instant: world entries precede the
// rounds they enabled, rounds precede the alarms they raised (a dirty
// round's Finished IS its alarm's At), and evader reactions come last.
// This reproduces the grouping of the original post-hoc timeline merge, so
// a timeline filled by streaming subscription renders byte-identically to
// one assembled from the component logs after the run.
func kindRank(k Kind) int {
	switch k {
	case KindWorldEnter:
		return 0
	case KindRound:
		return 1
	case KindAlarm:
		return 2
	case KindSuspect, KindHidden, KindCoreBack, KindReinstalled:
		return 3
	default:
		return 4
	}
}

// Timeline is a collection of events, sorted on demand. It doubles as a
// bus sink: subscribe its Add method to stream events in as they happen.
type Timeline struct {
	events []Event
	sorted bool
}

// Add appends events.
func (t *Timeline) Add(events ...Event) {
	t.events = append(t.events, events...)
	t.sorted = false
}

// Observe appends one event — the allocation-light single-event form of
// Add, suitable as a bus subscriber.
func (t *Timeline) Observe(e Event) {
	t.events = append(t.events, e)
	t.sorted = false
}

// Events returns the events in (time, kind rank) order, stable within ties.
func (t *Timeline) Events() []Event {
	if !t.sorted {
		sort.SliceStable(t.events, func(i, j int) bool {
			if t.events[i].At != t.events[j].At {
				return t.events[i].At < t.events[j].At
			}
			return kindRank(t.events[i].Kind) < kindRank(t.events[j].Kind)
		})
		t.sorted = true
	}
	return t.events
}

// Filter returns the ordered events matching any of the kinds.
func (t *Timeline) Filter(kinds ...Kind) []Event {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range t.Events() {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// Len reports the event count.
func (t *Timeline) Len() int { return len(t.events) }

// CheckpointEvents returns a copy of the events in their current storage
// order — insertion (publish) order on a timeline that was never sorted.
// Restoring the copy via RestoreEvents reproduces Events()'s output exactly:
// the (time, kind rank) sort is stable, so storage order only matters within
// rank ties, and it round-trips unchanged.
func (t *Timeline) CheckpointEvents() []Event {
	return append([]Event(nil), t.events...)
}

// RestoreEvents replaces the timeline's contents with events, in order.
func (t *Timeline) RestoreEvents(events []Event) {
	t.events = append(t.events[:0], events...)
	t.sorted = false
}

// WriteText renders one line per event.
func (t *Timeline) WriteText(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return fmt.Errorf("trace: writing text: %w", err)
		}
	}
	return nil
}

// CheckOrdered verifies that the events' timestamps are non-decreasing, as
// every stream exported by a live run must be (the bus publishes in engine
// dispatch order). It returns an error naming the first out-of-order pair.
func CheckOrdered(events []Event) error {
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			return fmt.Errorf("trace: event %d (%s at %v) precedes event %d (%s at %v): stream is out of order",
				i, events[i].Kind, events[i].At, i-1, events[i-1].Kind, events[i-1].At)
		}
	}
	return nil
}

// WriteJSON renders the ordered events as a JSON array.
func (t *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t.Events()); err != nil {
		return fmt.Errorf("trace: writing JSON: %w", err)
	}
	return nil
}
