package obs

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"satin/internal/trace"
)

// Format selects a streaming export encoding.
type Format int

// Stream formats.
const (
	// JSONL writes one JSON object per event per line (the same field
	// names as trace.Event's JSON encoding).
	JSONL Format = iota + 1
	// CSV writes a header then one `at_ns,kind,core,area,detail` row per
	// event.
	CSV
)

// String names the format.
func (f Format) String() string {
	switch f {
	case JSONL:
		return "jsonl"
	case CSV:
		return "csv"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// StreamSink writes every published event to w as it happens — the live
// export behind `satin-sim -trace-out`. Events stream in publish order
// (chronological per the single-threaded engine), so the output of a
// fixed-seed run is byte-identical across runs and worker counts. A write
// error latches: later events are dropped and Err reports the first
// failure.
type StreamSink struct {
	bw     *bufio.Writer
	cw     *csv.Writer
	format Format
	events int
	err    error
}

// NewStreamSink builds a sink over w. For CSV the header row is written
// immediately. Subscribe its OnEvent to a bus, then Flush when the run ends.
func NewStreamSink(w io.Writer, format Format) (*StreamSink, error) {
	s := &StreamSink{format: format}
	switch format {
	case JSONL:
		s.bw = bufio.NewWriter(w)
	case CSV:
		s.cw = csv.NewWriter(w)
		if err := s.cw.Write([]string{"at_ns", "kind", "core", "area", "detail"}); err != nil {
			return nil, fmt.Errorf("obs: writing CSV header: %w", err)
		}
	default:
		return nil, fmt.Errorf("obs: unknown stream format %v", format)
	}
	return s, nil
}

// OnEvent implements SinkFunc.
func (s *StreamSink) OnEvent(e trace.Event) {
	if s.err != nil {
		return
	}
	switch s.format {
	case JSONL:
		data, err := json.Marshal(e)
		if err != nil {
			s.err = fmt.Errorf("obs: encoding event: %w", err)
			return
		}
		data = append(data, '\n')
		if _, err := s.bw.Write(data); err != nil {
			s.err = fmt.Errorf("obs: streaming event: %w", err)
			return
		}
	case CSV:
		rec := []string{
			strconv.FormatInt(int64(e.At), 10),
			string(e.Kind),
			strconv.Itoa(e.Core),
			strconv.Itoa(e.Area),
			e.Detail,
		}
		if err := s.cw.Write(rec); err != nil {
			s.err = fmt.Errorf("obs: streaming event: %w", err)
			return
		}
	}
	s.events++
}

// Events reports how many events were written.
func (s *StreamSink) Events() int { return s.events }

// Flush drains buffered output and reports the first error seen.
func (s *StreamSink) Flush() error {
	if s.bw != nil {
		if err := s.bw.Flush(); err != nil && s.err == nil {
			s.err = fmt.Errorf("obs: flushing stream: %w", err)
		}
	}
	if s.cw != nil {
		s.cw.Flush()
		if err := s.cw.Error(); err != nil && s.err == nil {
			s.err = fmt.Errorf("obs: flushing stream: %w", err)
		}
	}
	return s.err
}

// Err reports the first write error, or nil.
func (s *StreamSink) Err() error { return s.err }

// ReadJSONL parses a JSONL event stream back into events — the validation
// half of the streaming export, used by tests and the CI trace smoke check.
func ReadJSONL(r io.Reader) ([]trace.Event, error) {
	var out []trace.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e trace.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if e.Kind == "" {
			return nil, fmt.Errorf("obs: trace line %d: missing event kind", line)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return out, nil
}
