package obs

import (
	"errors"
	"testing"
	"time"

	"satin/internal/trace"
)

func busEvent(at time.Duration) trace.Event {
	return trace.Event{At: at, Kind: trace.KindRound, Core: 0, Area: 1}
}

// TestUnsubscribeSelfDuringPublish: a sink removing itself mid-publish must
// not derail the iteration — the remaining sinks still see the event, and
// the removed sink sees nothing further.
func TestUnsubscribeSelfDuringPublish(t *testing.T) {
	b := NewBus()
	var firstCalls, lastCalls int
	var id int
	id = b.Subscribe(func(trace.Event) {
		firstCalls++
		b.Unsubscribe(id)
	})
	b.Subscribe(func(trace.Event) { lastCalls++ })

	b.Publish(busEvent(1))
	b.Publish(busEvent(2))
	if firstCalls != 1 {
		t.Errorf("self-unsubscribing sink called %d times, want 1", firstCalls)
	}
	if lastCalls != 2 {
		t.Errorf("surviving sink called %d times, want 2 (iteration derailed)", lastCalls)
	}
	if got := b.Subscribers(); got != 1 {
		t.Errorf("Subscribers() = %d, want 1 after compaction", got)
	}
}

// TestUnsubscribePeerDuringPublish: removing a later peer mid-publish
// tombstones it for the current event; removing an earlier peer must not
// shift the indices under the live iteration (the pre-fix bug: a splice
// during range made Publish skip the next subscriber).
func TestUnsubscribePeerDuringPublish(t *testing.T) {
	b := NewBus()
	var aCalls, bCalls, cCalls int
	var idB, idC int
	idA := b.Subscribe(func(trace.Event) {
		aCalls++
		b.Unsubscribe(idC) // later peer: must not run for this event
	})
	idB = b.Subscribe(func(trace.Event) {
		bCalls++
		b.Unsubscribe(idA) // earlier peer: indices must stay stable
	})
	idC = b.Subscribe(func(trace.Event) { cCalls++ })
	_ = idB

	b.Publish(busEvent(1))
	if aCalls != 1 || bCalls != 1 || cCalls != 0 {
		t.Fatalf("first publish calls = %d/%d/%d, want 1/1/0", aCalls, bCalls, cCalls)
	}
	b.Publish(busEvent(2))
	if aCalls != 1 || bCalls != 2 || cCalls != 0 {
		t.Fatalf("second publish calls = %d/%d/%d, want 1/2/0", aCalls, bCalls, cCalls)
	}
	if got := b.Subscribers(); got != 1 {
		t.Fatalf("Subscribers() = %d, want 1", got)
	}
}

// TestSubscribeDuringPublish: a sink added mid-publish first sees the next
// event, never the in-flight one.
func TestSubscribeDuringPublish(t *testing.T) {
	b := NewBus()
	var got []time.Duration
	added := false
	b.Subscribe(func(e trace.Event) {
		if !added {
			added = true
			b.Subscribe(func(e trace.Event) { got = append(got, e.At) })
		}
	})
	b.Publish(busEvent(1))
	b.Publish(busEvent(2))
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("mid-publish subscriber saw %v, want [2ns]", got)
	}
}

// TestRecursivePublishWithUnsubscribe: sinks may publish recursively; a
// tombstone created inside the inner publish must survive until the
// outermost frame compacts, not be compacted mid-iteration.
func TestRecursivePublishWithUnsubscribe(t *testing.T) {
	b := NewBus()
	var inner, tail int
	var idTail int
	b.Subscribe(func(e trace.Event) {
		if e.At == 1 {
			b.Publish(busEvent(99)) // recursive frame
			b.Unsubscribe(idTail)
		}
	})
	b.Subscribe(func(e trace.Event) {
		if e.At == 99 {
			inner++
		}
	})
	idTail = b.Subscribe(func(e trace.Event) {
		if e.At != 99 {
			tail++
		}
	})
	b.Publish(busEvent(1))
	b.Publish(busEvent(2))
	if inner != 1 {
		t.Errorf("recursive publish reached inner sink %d times, want 1", inner)
	}
	// The tail sink saw the recursive event's frame (At=99 filtered out) and
	// was removed after it, so it never counts the outer events 1 or 2... it
	// is tombstoned after the inner publish but before the outer frame
	// reaches it, so Publish skips it for event 1 as well.
	if tail != 0 {
		t.Errorf("unsubscribed tail sink counted %d events, want 0", tail)
	}
	if got := b.Subscribers(); got != 2 {
		t.Errorf("Subscribers() = %d, want 2", got)
	}
}

// TestPublishStillAllocationFree: the re-entrancy bookkeeping must not cost
// an allocation on the hot path.
func TestPublishStillAllocationFree(t *testing.T) {
	b := NewBus()
	sink := 0
	b.Subscribe(func(trace.Event) { sink++ })
	e := busEvent(1)
	if n := testing.AllocsPerRun(200, func() { b.Publish(e) }); n != 0 {
		t.Fatalf("Publish allocates %v allocs/op with a subscriber, want 0", n)
	}
}

// failingWriter fails every write after the first n bytes.
type failingWriter struct {
	n   int
	err error
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) <= w.n {
		w.n -= len(p)
		return len(p), nil
	}
	n := w.n
	w.n = 0
	return n, w.err
}

// TestStreamSinkJSONLWriteError: a failing writer must surface through
// Err/Flush, and the sink must stop counting events after the failure.
func TestStreamSinkJSONLWriteError(t *testing.T) {
	boom := errors.New("disk full")
	sink, err := NewStreamSink(&failingWriter{n: 8, err: boom}, JSONL)
	if err != nil {
		t.Fatalf("NewStreamSink: %v", err)
	}
	// The bufio layer defers the failure until its buffer fills or Flush
	// runs; either way the error must latch and be reported.
	for i := 0; i < 10000; i++ {
		sink.OnEvent(busEvent(time.Duration(i)))
	}
	if err := sink.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush = %v, want wrapped %v", err, boom)
	}
	if !errors.Is(sink.Err(), boom) {
		t.Fatalf("Err = %v, want wrapped %v", sink.Err(), boom)
	}
	if sink.Events() >= 10000 {
		t.Fatalf("sink counted all %d events despite write failure", sink.Events())
	}
}

// TestStreamSinkCSVWriteError: same contract for the CSV encoding.
func TestStreamSinkCSVWriteError(t *testing.T) {
	boom := errors.New("pipe closed")
	sink, err := NewStreamSink(&failingWriter{n: 64, err: boom}, CSV)
	if err != nil {
		t.Fatalf("NewStreamSink: %v", err)
	}
	for i := 0; i < 10000; i++ {
		sink.OnEvent(busEvent(time.Duration(i)))
	}
	if err := sink.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush = %v, want wrapped %v", err, boom)
	}
}

// TestStreamSinkCSVHeaderError: a writer that fails immediately breaks CSV
// construction (the header write) — csv.Writer buffers, so the failure
// must at latest surface on Flush.
func TestStreamSinkCSVHeaderError(t *testing.T) {
	boom := errors.New("readonly fs")
	sink, err := NewStreamSink(&failingWriter{n: 0, err: boom}, CSV)
	if err != nil {
		if !errors.Is(err, boom) {
			t.Fatalf("NewStreamSink = %v, want wrapped %v", err, boom)
		}
		return
	}
	if err := sink.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush = %v, want wrapped %v", err, boom)
	}
}
