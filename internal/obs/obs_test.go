package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"satin/internal/trace"
)

func TestBusSubscribeOrder(t *testing.T) {
	b := NewBus()
	var order []string
	b.Subscribe(func(trace.Event) { order = append(order, "a") })
	b.Subscribe(func(trace.Event) { order = append(order, "b") })
	b.Subscribe(func(trace.Event) { order = append(order, "c") })
	b.Publish(trace.Event{Kind: trace.KindRound})
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("subscribers ran in order %q, want abc", got)
	}
}

func TestBusUnsubscribePreservesOrder(t *testing.T) {
	b := NewBus()
	var order []string
	b.Subscribe(func(trace.Event) { order = append(order, "a") })
	id := b.Subscribe(func(trace.Event) { order = append(order, "b") })
	b.Subscribe(func(trace.Event) { order = append(order, "c") })
	b.Unsubscribe(id)
	if n := b.Subscribers(); n != 2 {
		t.Fatalf("Subscribers() = %d after unsubscribe, want 2", n)
	}
	b.Publish(trace.Event{Kind: trace.KindRound})
	if got := strings.Join(order, ""); got != "ac" {
		t.Fatalf("remaining subscribers ran in order %q, want ac", got)
	}
	// Unknown and repeated unsubscribes are no-ops.
	b.Unsubscribe(id)
	b.Unsubscribe(999)
	if n := b.Subscribers(); n != 2 {
		t.Fatalf("Subscribers() = %d after redundant unsubscribes, want 2", n)
	}
}

func TestBusNilSafe(t *testing.T) {
	var b *Bus
	b.Publish(trace.Event{Kind: trace.KindRound}) // must not panic
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("nil bus has %d subscribers", n)
	}
}

// TestPublishNoSubscribersAllocates locks the zero-overhead claim: with no
// sinks attached, Publish must not allocate.
func TestPublishNoSubscribersAllocates(t *testing.T) {
	b := NewBus()
	e := trace.Event{At: time.Second, Kind: trace.KindRound, Core: 1, Area: 2, Detail: "clean"}
	if n := testing.AllocsPerRun(100, func() { b.Publish(e) }); n != 0 {
		t.Fatalf("Publish with no subscribers allocates %.1f per call, want 0", n)
	}
	var nilBus *Bus
	if n := testing.AllocsPerRun(100, func() { nilBus.Publish(e) }); n != 0 {
		t.Fatalf("nil-bus Publish allocates %.1f per call, want 0", n)
	}
}

// TestMetricOpsAllocationFree locks the hot-path cost of the handles,
// wired or nil.
func TestMetricOpsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []int64{10, 20, 30})
	var nc *Counter
	var nh *Histogram
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(7)
		h.Observe(15)
		nc.Inc()
		nh.Observe(15)
	}); n != 0 {
		t.Fatalf("metric ops allocate %.1f per call, want 0", n)
	}
}

func TestNilRegistryHandles(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(3)
	r.Histogram("h", []int64{1}).Observe(5)
	if v := r.Counter("c").Value(); v != 0 {
		t.Fatalf("nil-registry counter = %d", v)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 20})
	for _, v := range []int64{5, 10, 11, 20, 21, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 5+10+11+20+21+1000 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	row, ok := r.Snapshot().Get("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	want := []Bucket{{LE: 10, Count: 2}, {LE: 20, Count: 2}, {LE: InfBucket, Count: 2}}
	if len(row.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", row.Buckets, want)
	}
	for i := range want {
		if row.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, row.Buckets[i], want[i])
		}
	}
	if row.Min != 5 || row.Max != 1000 {
		t.Fatalf("min=%d max=%d, want 5/1000", row.Min, row.Max)
	}
}

func TestRegistryHandlesAreCached(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter returned distinct handles for one name")
	}
	if r.Histogram("h", []int64{1}) != r.Histogram("h", []int64{9}) {
		t.Error("Histogram returned distinct handles for one name")
	}
}

// TestRegistryRejectsCrossKindNames: one name, one kind — re-registering a
// name as a different kind panics instead of producing two metrics that
// collide in Snapshot/Get.
func TestRegistryRejectsCrossKindNames(t *testing.T) {
	mustPanic := func(what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", what)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("c")
	r.Gauge("g")
	r.Histogram("h", []int64{1})
	mustPanic("counter name as gauge", func() { r.Gauge("c") })
	mustPanic("counter name as histogram", func() { r.Histogram("c", []int64{1}) })
	mustPanic("gauge name as counter", func() { r.Counter("g") })
	mustPanic("histogram name as gauge", func() { r.Gauge("h") })
	// Same kind remains a cache hit, and the guard leaves the original
	// handles untouched.
	if r.Counter("c") == nil || r.Gauge("g") == nil || r.Histogram("h", nil) == nil {
		t.Error("guard clobbered an existing handle")
	}
	if got := len(r.Snapshot().Rows); got != 3 {
		t.Errorf("snapshot has %d rows, want 3", got)
	}
}

// TestSnapshotDeterministic: identical activity on two registries renders
// identically, regardless of creation order.
func TestSnapshotDeterministic(t *testing.T) {
	a := NewRegistry()
	a.Counter("one").Inc()
	a.Gauge("two").Set(2)
	a.Histogram("three", []int64{5}).Observe(3)

	b := NewRegistry()
	b.Histogram("three", []int64{5}).Observe(3)
	b.Gauge("two").Set(2)
	b.Counter("one").Inc()

	if a.Snapshot().String() != b.Snapshot().String() {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", a.Snapshot(), b.Snapshot())
	}
	// Zero-valued metrics stay visible: row presence depends on wiring,
	// not on run activity.
	c := NewRegistry()
	c.Counter("never")
	if _, ok := c.Snapshot().Get("never"); !ok {
		t.Error("zero counter dropped from snapshot")
	}
}

func TestSnapshotCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Histogram("lat", []int64{10}).Observe(4)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"name,type,field,value\n",
		"hits,counter,value,3\n",
		"lat,histogram,count,1\n",
		"lat,histogram,le10,1\n",
		"lat,histogram,le+inf,0\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("CSV missing %q:\n%s", want, got)
		}
	}
}

func TestStreamSinkJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s, err := NewStreamSink(&buf, JSONL)
	if err != nil {
		t.Fatal(err)
	}
	in := []trace.Event{
		{At: time.Second, Kind: trace.KindWorldEnter, Core: 0, Area: -1, Detail: "secure-timer"},
		{At: 2 * time.Second, Kind: trace.KindAlarm, Core: -1, Area: 17},
	}
	for _, e := range in {
		s.OnEvent(e)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Events() != len(in) {
		t.Fatalf("Events() = %d, want %d", s.Events(), len(in))
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d: %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestStreamSinkCSVHeader(t *testing.T) {
	var buf bytes.Buffer
	s, err := NewStreamSink(&buf, CSV)
	if err != nil {
		t.Fatal(err)
	}
	s.OnEvent(trace.Event{At: time.Millisecond, Kind: trace.KindRound, Core: 3, Area: 7, Detail: "clean"})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "at_ns,kind,core,area,detail\n1000000,round,3,7,clean\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestStreamSinkUnknownFormat(t *testing.T) {
	if _, err := NewStreamSink(&bytes.Buffer{}, Format(0)); err == nil {
		t.Fatal("NewStreamSink accepted Format(0)")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Error("ReadJSONL accepted malformed JSON")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"at_ns":1}` + "\n")); err == nil {
		t.Error("ReadJSONL accepted an event without a kind")
	}
	events, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Errorf("blank lines: events=%v err=%v", events, err)
	}
}
